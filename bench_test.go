package minshare

// Benchmark harness: one family per experiment id of DESIGN.md (E1-E10),
// plus the ablation benches for the design choices DESIGN.md calls out.
// `go test -bench=. -benchmem` regenerates the measured side of every
// table; cmd/experiments prints the paper-vs-model comparison around
// these numbers.

import (
	"context"
	"fmt"
	"math/big"
	"math/rand"
	"sort"
	"testing"
	"time"

	"minshare/internal/aggregate"
	"minshare/internal/circuit"
	"minshare/internal/core"
	"minshare/internal/costmodel"
	"minshare/internal/docshare"
	"minshare/internal/garble"
	"minshare/internal/group"
	"minshare/internal/kenc"
	"minshare/internal/medical"
	"minshare/internal/obs"
	"minshare/internal/oracle"
	"minshare/internal/ot"
	"minshare/internal/query"
	"minshare/internal/reldb"
	"minshare/internal/selection"
	"minshare/internal/transport"
	"minshare/internal/wire"
	"minshare/internal/yao"
)

// benchGroup is the modulus used by the protocol benchmarks.  The
// paper's parameter is 1024 bits; protocol benches use 512 to keep the
// suite's wall time reasonable while the dedicated C_e benches cover
// every modulus size including 1024 and 2048.
var benchGroup = group.MustBuiltin(group.Bits512)

func benchSets(n int) (vR, vS [][]byte) {
	common := make([][]byte, n/2)
	for i := range common {
		common[i] = []byte(fmt.Sprintf("common-%06d", i))
	}
	vR = append([][]byte{}, common...)
	vS = append([][]byte{}, common...)
	for i := 0; i < n-len(common); i++ {
		vR = append(vR, []byte(fmt.Sprintf("r-%06d", i)))
		vS = append(vS, []byte(fmt.Sprintf("s-%06d", i)))
	}
	return
}

// runPairBench runs one protocol pair over a pipe with a byte meter on
// the receiver endpoint and both endpoints attributed to obs sessions;
// it returns the meter and the combined (R+S) counter snapshot so
// benchmarks can report observed crypto-op counts next to wall time.
func runPairBench(b *testing.B, recvFn, sendFn func(ctx context.Context, conn transport.Conn) error) (*transport.Meter, obs.CounterSnapshot) {
	b.Helper()
	ctx := context.Background()
	connR, connS := transport.Pipe()
	defer connR.Close()
	meter := transport.NewMeter(connR)
	reg := obs.NewRegistry()
	sessR := reg.StartSession(obs.SessionInfo{Role: "receiver"})
	sessS := reg.StartSession(obs.SessionInfo{Role: "sender"})
	ch := make(chan error, 1)
	go func() {
		err := sendFn(obs.WithSession(ctx, sessS), connS)
		sessS.End(err)
		ch <- err
	}()
	rErr := recvFn(obs.WithSession(ctx, sessR), meter)
	sessR.End(rErr)
	if rErr != nil {
		b.Fatal(rErr)
	}
	if err := <-ch; err != nil {
		b.Fatal(err)
	}
	return meter, reg.Global().Snapshot()
}

// --- E1: §6.1 computation (full protocol wall time per set size) ---

func benchmarkIntersection(b *testing.B, n int) {
	vR, vS := benchSets(n)
	cfg := core.Config{Group: benchGroup}
	b.ReportMetric(float64(costmodel.IntersectionOps(n, n).Ce), "Ce-ops")
	var snap obs.CounterSnapshot
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, snap = runPairBench(b,
			func(ctx context.Context, conn transport.Conn) error {
				_, err := core.IntersectionReceiver(ctx, cfg, conn, vR)
				return err
			},
			func(ctx context.Context, conn transport.Conn) error {
				_, err := core.IntersectionSender(ctx, cfg, conn, vS)
				return err
			})
	}
	b.ReportMetric(float64(snap.ModExps()), "modexp-ops")
}

func BenchmarkE1_Intersection_n32(b *testing.B)  { benchmarkIntersection(b, 32) }
func BenchmarkE1_Intersection_n128(b *testing.B) { benchmarkIntersection(b, 128) }

func benchmarkEquijoin(b *testing.B, n int) {
	vR, vS := benchSets(n)
	recs := make([]core.JoinRecord, len(vS))
	for i, v := range vS {
		recs[i] = core.JoinRecord{Value: v, Ext: []byte("payload for " + string(v))}
	}
	cfg := core.Config{Group: benchGroup}
	b.ReportMetric(float64(costmodel.JoinOps(n, n, n/2).Ce), "Ce-ops")
	var snap obs.CounterSnapshot
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, snap = runPairBench(b,
			func(ctx context.Context, conn transport.Conn) error {
				_, err := core.EquijoinReceiver(ctx, cfg, conn, vR)
				return err
			},
			func(ctx context.Context, conn transport.Conn) error {
				_, err := core.EquijoinSender(ctx, cfg, conn, recs)
				return err
			})
	}
	b.ReportMetric(float64(snap.ModExps()), "modexp-ops")
}

func BenchmarkE1_Equijoin_n32(b *testing.B)  { benchmarkEquijoin(b, 32) }
func BenchmarkE1_Equijoin_n128(b *testing.B) { benchmarkEquijoin(b, 128) }

func BenchmarkE1_IntersectionSize_n64(b *testing.B) {
	vR, vS := benchSets(64)
	cfg := core.Config{Group: benchGroup}
	for i := 0; i < b.N; i++ {
		runPairBench(b,
			func(ctx context.Context, conn transport.Conn) error {
				_, err := core.IntersectionSizeReceiver(ctx, cfg, conn, vR)
				return err
			},
			func(ctx context.Context, conn transport.Conn) error {
				_, err := core.IntersectionSizeSender(ctx, cfg, conn, vS)
				return err
			})
	}
}

func BenchmarkE1_EquijoinSize_n64(b *testing.B) {
	vR, vS := benchSets(64)
	// Add duplicates so the multiset path is exercised.
	vR = append(vR, vR[:8]...)
	vS = append(vS, vS[:4]...)
	cfg := core.Config{Group: benchGroup}
	for i := 0; i < b.N; i++ {
		runPairBench(b,
			func(ctx context.Context, conn transport.Conn) error {
				_, err := core.EquijoinSizeReceiver(ctx, cfg, conn, vR)
				return err
			},
			func(ctx context.Context, conn transport.Conn) error {
				_, err := core.EquijoinSizeSender(ctx, cfg, conn, vS)
				return err
			})
	}
}

// --- E2: §6.1 communication (bytes per protocol run) ---

func BenchmarkE2_IntersectionBytes_n64(b *testing.B) {
	const n = 64
	vR, vS := benchSets(n)
	cfg := core.Config{Group: benchGroup}
	var bytes int64
	for i := 0; i < b.N; i++ {
		m, _ := runPairBench(b,
			func(ctx context.Context, conn transport.Conn) error {
				_, err := core.IntersectionReceiver(ctx, cfg, conn, vR)
				return err
			},
			func(ctx context.Context, conn transport.Conn) error {
				_, err := core.IntersectionSender(ctx, cfg, conn, vS)
				return err
			})
		bytes = m.TotalBytes()
	}
	b.ReportMetric(float64(bytes), "wire-bytes")
	b.ReportMetric(costmodel.IntersectionCommBits(n, n, benchGroup.Bits())/8, "formula-bytes")
}

// --- E3: §6.2.1 document sharing (one private pair comparison) ---

func BenchmarkE3_DocSharePair_100words(b *testing.B) {
	mk := func(prefix string) docshare.Document {
		ws := make([]string, 100)
		for i := range ws {
			if i < 30 {
				ws[i] = fmt.Sprintf("shared-%d", i)
			} else {
				ws[i] = fmt.Sprintf("%s-%d", prefix, i)
			}
		}
		return docshare.Document{ID: prefix, Words: ws}
	}
	docsR := []docshare.Document{mk("r")}
	docsS := []docshare.Document{mk("s")}
	cfg := core.Config{Group: benchGroup}
	for i := 0; i < b.N; i++ {
		ctx := context.Background()
		connR, connS := transport.Pipe()
		ch := make(chan error, 1)
		go func() { ch <- docshare.MatchSender(ctx, cfg, connS, docsS) }()
		if _, err := docshare.MatchReceiver(ctx, cfg, connR, docsR, docshare.DiceLike, 0.1); err != nil {
			b.Fatal(err)
		}
		if err := <-ch; err != nil {
			b.Fatal(err)
		}
		connR.Close()
	}
}

// --- E4: §6.2.2 medical study (full four-cell run) ---

func BenchmarkE4_MedicalStudy_n100(b *testing.B) {
	tR, tS := reldb.GenPeopleTables(100, 0.4, 0.6, 0.3, 5)
	cfg := core.Config{Group: benchGroup}
	for i := 0; i < b.N; i++ {
		if _, err := medical.RunStudy(context.Background(), cfg, cfg, cfg, tR, tS); err != nil {
			b.Fatal(err)
		}
	}
}

// --- E5: Appendix A.1.2 circuit construction ---

func BenchmarkE5_BruteForceCircuit_w16_n16(b *testing.B) {
	var gates int
	for i := 0; i < b.N; i++ {
		c := circuit.BruteForceIntersection(16, 16, 16)
		gates = c.NumGates()
	}
	b.ReportMetric(float64(gates), "gates")
	b.ReportMetric(costmodel.BruteForceGates(16, 16), "model-gates")
}

func BenchmarkE5_Garble_w16_n8(b *testing.B) {
	c := circuit.BruteForceIntersection(16, 8, 8)
	rng := rand.New(rand.NewSource(1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := garble.Garble(c, rng); err != nil {
			b.Fatal(err)
		}
	}
}

// --- E6: Appendix A.2 computation primitives (C_e and C_r per size) ---

func benchmarkCe(b *testing.B, size group.Size) {
	g := group.MustBuiltin(size)
	rng := rand.New(rand.NewSource(1))
	x, _ := g.RandomElement(rng)
	e, _ := g.RandomExponent(rng)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = g.Exp(x, e)
	}
}

func BenchmarkE6_Ce_512(b *testing.B)  { benchmarkCe(b, group.Bits512) }
func BenchmarkE6_Ce_768(b *testing.B)  { benchmarkCe(b, group.Bits768) }
func BenchmarkE6_Ce_1024(b *testing.B) { benchmarkCe(b, group.Bits1024) }
func BenchmarkE6_Ce_1536(b *testing.B) { benchmarkCe(b, group.Bits1536) }
func BenchmarkE6_Ce_2048(b *testing.B) { benchmarkCe(b, group.Bits2048) }

func BenchmarkE6_Cr_PRF(b *testing.B) {
	// One garbled-gate PRF evaluation (the C_r of Appendix A): garble a
	// 1-gate circuit once, then repeatedly evaluate it (2 PRF calls/op).
	cb := circuit.NewBuilder()
	in := cb.GarblerInputs(1)
	e := cb.EvaluatorInputs(1)
	cb.Output(cb.AND(in[0], e[0]))
	c := cb.MustBuild()
	gc, err := garble.Garble(c, rand.New(rand.NewSource(1)))
	if err != nil {
		b.Fatal(err)
	}
	gl, _ := gc.GarblerInputLabeled([]bool{true})
	f, _, _ := gc.EvaluatorInputLabeled(0)
	el := []garble.LabeledInput{f}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := garble.Evaluate(c, gc.Tables, gc.OutputPermutes, gl, el); err != nil {
			b.Fatal(err)
		}
	}
}

// --- E7: Appendix A.2 communication — covered numerically by
// cmd/experiments; here the real OT transfer cost per input bit ---

func BenchmarkE7_OTPerInputBit(b *testing.B) {
	g := group.MustBuiltin(group.Bits256) // k1 ≈ 100-bit security → small group
	rng := rand.New(rand.NewSource(1))
	sender, err := ot.NewSender(g, rng)
	if err != nil {
		b.Fatal(err)
	}
	receiver, err := ot.NewReceiver(g, sender.PublicC(), rng)
	if err != nil {
		b.Fatal(err)
	}
	m0 := make([]byte, garble.LabelLen+1)
	m1 := make([]byte, garble.LabelLen+1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ch, err := receiver.Choose(i%2 == 0)
		if err != nil {
			b.Fatal(err)
		}
		ct, err := sender.Transfer(ch.PK0, m0, m1)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := receiver.Open(ch, ct); err != nil {
			b.Fatal(err)
		}
	}
}

// --- E8: §3.2.2 hashing ---

func BenchmarkE8_HashToGroup_1024(b *testing.B) {
	o := oracle.New(group.MustBuiltin(group.Bits1024))
	var buf [8]byte
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf[0] = byte(i)
		buf[1] = byte(i >> 8)
		_ = o.Hash(buf[:])
	}
}

// --- E9: real garbled-circuit PSI vs our protocol ---

func BenchmarkE9_YaoPSI_n8_w16(b *testing.B) {
	sVals := []uint64{0, 1, 2, 3, 4, 5, 6, 7}
	rVals := []uint64{0, 1, 2, 3, 100, 101, 102, 103}
	for i := 0; i < b.N; i++ {
		ctx := context.Background()
		connG, connE := transport.Pipe()
		ch := make(chan error, 1)
		go func() {
			ch <- yao.RunGarbler(ctx, yao.Config{Group: group.MustBuiltin(group.Bits256), Width: 16}, connG, sVals)
		}()
		if _, err := yao.RunEvaluator(ctx, yao.Config{Group: group.MustBuiltin(group.Bits256), Width: 16}, connE, rVals); err != nil {
			b.Fatal(err)
		}
		if err := <-ch; err != nil {
			b.Fatal(err)
		}
		connG.Close()
	}
}

func BenchmarkE9_OursPSI_n8(b *testing.B) {
	benchmarkIntersection(b, 8)
}

// --- E10: §5.2 leakage path (multiset protocol with heavy duplicates) ---

func BenchmarkE10_JoinSizeDuplicates(b *testing.B) {
	var vR, vS [][]byte
	for i := 0; i < 16; i++ {
		for d := 0; d <= i%4; d++ {
			vR = append(vR, []byte(fmt.Sprintf("v-%d", i)))
		}
		for d := 0; d <= (i+1)%4; d++ {
			vS = append(vS, []byte(fmt.Sprintf("v-%d", i)))
		}
	}
	cfg := core.Config{Group: benchGroup}
	for i := 0; i < b.N; i++ {
		runPairBench(b,
			func(ctx context.Context, conn transport.Conn) error {
				_, err := core.EquijoinSizeReceiver(ctx, cfg, conn, vR)
				return err
			},
			func(ctx context.Context, conn transport.Conn) error {
				_, err := core.EquijoinSizeSender(ctx, cfg, conn, vS)
				return err
			})
	}
}

// --- Ablations (DESIGN.md §4) ---

// Ablation 1: hash-to-QR by squaring (ours) vs rejection sampling.
func BenchmarkAblation_HashSquare(b *testing.B) {
	BenchmarkE8_HashToGroup_1024(b)
}

func BenchmarkAblation_HashRejection(b *testing.B) {
	o := oracle.New(group.MustBuiltin(group.Bits1024))
	var buf [8]byte
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf[0], buf[1] = byte(i), byte(i>>8)
		_ = o.HashRejection(buf[:])
	}
}

// Ablation 2: K multiplicative (perfect secrecy) vs hybrid (arbitrary payload).
func benchmarkKCipher(b *testing.B, c kenc.Cipher, payload int) {
	g := benchGroup
	kappa, _ := g.RandomElement(rand.New(rand.NewSource(1)))
	pt := make([]byte, payload)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ct, err := c.Encrypt(kappa, pt)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := c.Decrypt(kappa, ct); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblation_KMultiplicative_32B(b *testing.B) {
	benchmarkKCipher(b, kenc.NewMultiplicative(benchGroup), 32)
}

func BenchmarkAblation_KHybrid_32B(b *testing.B) {
	benchmarkKCipher(b, kenc.NewHybrid(benchGroup), 32)
}

func BenchmarkAblation_KHybrid_4KiB(b *testing.B) {
	benchmarkKCipher(b, kenc.NewHybrid(benchGroup), 4096)
}

// Ablation 4: parallel encryption scaling (the paper's P).
func benchmarkParallelism(b *testing.B, p int) {
	vR, vS := benchSets(64)
	cfg := core.Config{Group: benchGroup, Parallelism: p}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		runPairBench(b,
			func(ctx context.Context, conn transport.Conn) error {
				_, err := core.IntersectionReceiver(ctx, cfg, conn, vR)
				return err
			},
			func(ctx context.Context, conn transport.Conn) error {
				_, err := core.IntersectionSender(ctx, cfg, conn, vS)
				return err
			})
	}
}

func BenchmarkAblation_Parallel_P1(b *testing.B) { benchmarkParallelism(b, 1) }
func BenchmarkAblation_Parallel_P4(b *testing.B) { benchmarkParallelism(b, 4) }

// Ablation 5: sorting cost vs encryption cost (the paper's
// nCe ≫ n·log n·Cs assumption).
func BenchmarkAblation_SortThousandElements(b *testing.B) {
	g := benchGroup
	rng := rand.New(rand.NewSource(1))
	elems := make([]*big.Int, 1000)
	for i := range elems {
		elems[i], _ = g.RandomElement(rng)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cp := append([]*big.Int(nil), elems...)
		sort.Slice(cp, func(a, b int) bool { return cp[a].Cmp(cp[b]) < 0 })
	}
}

// --- Extension benches: selection, aggregation, SQL front end ---

// BenchmarkExt_Selection_n16 measures one full symmetric-PIR selection
// (the Section 2.4 / future-work operation) over 16 records.
func BenchmarkExt_Selection_n16(b *testing.B) {
	records := make([][]byte, 16)
	for i := range records {
		records[i] = []byte(fmt.Sprintf("record-%02d: some payload bytes", i))
	}
	cfg := selection.Config{Group: group.MustBuiltin(group.Bits256)}
	for i := 0; i < b.N; i++ {
		ctx := context.Background()
		connR, connS := transport.Pipe()
		ch := make(chan error, 1)
		go func() { ch <- selection.Sender(ctx, cfg, connS, records) }()
		if _, err := selection.Receiver(ctx, cfg, connR, i%len(records)); err != nil {
			b.Fatal(err)
		}
		if err := <-ch; err != nil {
			b.Fatal(err)
		}
		connR.Close()
	}
}

// BenchmarkExt_GroupByCounts measures the generalized Figure 2 study
// (2 bool columns on R × 1 on S = 8 third-party intersection sizes).
func BenchmarkExt_GroupByCounts(b *testing.B) {
	tR := reldb.NewTable("R", reldb.MustSchema(
		reldb.Column{Name: "id", Type: reldb.TypeInt},
		reldb.Column{Name: "f1", Type: reldb.TypeBool},
		reldb.Column{Name: "f2", Type: reldb.TypeBool},
	))
	tS := reldb.NewTable("S", reldb.MustSchema(
		reldb.Column{Name: "id", Type: reldb.TypeInt},
		reldb.Column{Name: "g", Type: reldb.TypeBool},
	))
	for i := 0; i < 40; i++ {
		tR.MustInsert(reldb.Int(int64(i)), reldb.Bool(i%2 == 0), reldb.Bool(i%3 == 0))
		tS.MustInsert(reldb.Int(int64(i+20)), reldb.Bool(i%2 == 1))
	}
	spec := aggregate.StudySpec{
		TableR: tR, IDColR: "id", GroupByR: []string{"f1", "f2"},
		TableS: tS, IDColS: "id", GroupByS: []string{"g"},
	}
	cfg := core.Config{Group: benchGroup}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := aggregate.GroupByCounts(context.Background(), cfg, cfg, cfg, spec); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkExt_SQLMedicalQuery measures the paper's SQL query end to end
// (parse + plan + four third-party intersection sizes).
func BenchmarkExt_SQLMedicalQuery(b *testing.B) {
	tR, tS := reldb.GenPeopleTables(60, 0.4, 0.6, 0.3, 3)
	q, err := query.Parse(`select t_r.pattern, t_s.reaction, count(*)
		from t_r, t_s where t_r.personid = t_s.personid and t_s.drug = true
		group by t_r.pattern, t_s.reaction`)
	if err != nil {
		b.Fatal(err)
	}
	cfg := core.Config{Group: benchGroup}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := query.Execute(context.Background(), cfg, cfg, cfg, q, tR, tS); err != nil {
			b.Fatal(err)
		}
	}
}

// --- S25: streaming pipelined execution vs legacy lock-step ---

// runLatencyPair runs one intersection over a pipe whose two directions
// are modelled as the paper's T1 link (Section 6.2) with the given RTT:
// each endpoint's sends pass through a store-and-forward Latency
// decorator, so transfer time and propagation delay are both real wall
// time for the protocol.
func runLatencyPair(b *testing.B, cfg core.Config, rtt time.Duration, vR, vS [][]byte) {
	b.Helper()
	ctx := context.Background()
	connR, connS := transport.Pipe()
	latR := transport.NewLatency(connR, rtt).WithBandwidth(transport.T1.BitsPerSecond)
	latS := transport.NewLatency(connS, rtt).WithBandwidth(transport.T1.BitsPerSecond)
	defer latR.Close()
	defer latS.Close()
	ch := make(chan error, 1)
	go func() {
		_, err := core.IntersectionSender(ctx, cfg, latS, vS)
		ch <- err
	}()
	if _, err := core.IntersectionReceiver(ctx, cfg, latR, vR); err != nil {
		b.Fatal(err)
	}
	if err := <-ch; err != nil {
		b.Fatal(err)
	}
}

// BenchmarkIntersectionPipelined measures the S25 tentpole: the same
// |V| = 5000 intersection on a modelled T1 WAN, legacy one-shot frames
// (ChunkSize 0) against the streaming pipeline (ChunkSize 256).  Legacy
// serializes three vector transfers end to end; streaming overlaps the
// two exchange directions and ships the aligned reply chunk by chunk
// right behind Y_S, so roughly one whole vector transfer disappears
// from the critical path at every RTT.
func BenchmarkIntersectionPipelined(b *testing.B) {
	const n = 5000
	const chunk = 256
	vR, vS := benchSets(n)
	g := group.MustBuiltin(group.Bits256) // link-bound regime: Ce ≪ transfer time
	for _, rtt := range []time.Duration{2 * time.Millisecond, 10 * time.Millisecond, 40 * time.Millisecond} {
		for _, mode := range []struct {
			name  string
			chunk int
		}{{"legacy", 0}, {"pipelined", chunk}} {
			b.Run(fmt.Sprintf("rtt=%s/%s", rtt, mode.name), func(b *testing.B) {
				cfg := core.Config{Group: g, ChunkSize: mode.chunk}
				for i := 0; i < b.N; i++ {
					runLatencyPair(b, cfg, rtt, vR, vS)
				}
			})
		}
	}
}

// --- PR4: encrypted-set cache, cold vs warm sender (BENCH_PR4.json) ---

// cacheBenchSets builds an asymmetric workload: a large server-side set
// (the cached table) queried by a small client set — the repeated-query
// regime the cache targets.  Half the client values are shared.
func cacheBenchSets(nS, nR int) (vR [][]byte, recs []core.JoinRecord) {
	recs = make([]core.JoinRecord, nS)
	for i := range recs {
		v := []byte(fmt.Sprintf("s-%06d", i))
		recs[i] = core.JoinRecord{Value: v, Ext: []byte("payload for " + string(v))}
	}
	vR = make([][]byte, nR)
	for i := range vR {
		if i < nR/2 {
			vR[i] = []byte(fmt.Sprintf("s-%06d", i)) // shared with S
		} else {
			vR[i] = []byte(fmt.Sprintf("r-%06d", i))
		}
	}
	return vR, recs
}

// benchmarkEquijoinCache measures one equijoin session end to end, with
// the sender either recomputing its encrypted table every run (cold:
// the cache is rotated before each iteration) or replaying it (warm:
// populated once before the timer starts).  The asymmetry nS ≫ nR makes
// the sender's 2|V_S| bulk modexps dominate a cold run; a warm run pays
// only the 5|V_R| per-session work (costmodel.JoinOpsWarm).
func benchmarkEquijoinCache(b *testing.B, warm bool) {
	const nS, nR = 5000, 200
	vR, recs := cacheBenchSets(nS, nR)
	g := group.MustBuiltin(group.Bits256)
	cache := core.NewSenderSetCache(0, nil)
	cfgS := core.Config{Group: g, SetCache: cache, CacheKey: core.SetCacheKey{
		PeerHost: "bench-peer", Table: "t", Version: 1, Protocol: wire.ProtoEquijoin,
	}}
	cfgR := core.Config{Group: g}

	runOnce := func() {
		ctx := context.Background()
		connR, connS := transport.Pipe()
		defer connR.Close()
		ch := make(chan error, 1)
		go func() {
			_, err := core.EquijoinSender(ctx, cfgS, connS, recs)
			ch <- err
		}()
		res, err := core.EquijoinReceiver(ctx, cfgR, connR, vR)
		if err != nil {
			b.Fatal(err)
		}
		if err := <-ch; err != nil {
			b.Fatal(err)
		}
		if len(res.Matches) != nR/2 {
			b.Fatalf("matches = %d, want %d", len(res.Matches), nR/2)
		}
	}

	b.ReportMetric(float64(costmodel.JoinOps(nS, nR, nR/2).Ce), "Ce-cold")
	b.ReportMetric(float64(costmodel.JoinOpsWarm(nS, nR, nR/2).Ce), "Ce-warm")
	if warm {
		runOnce() // populate the cache, untimed
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !warm {
			cache.Rotate()
		}
		runOnce()
	}
}

func BenchmarkEquijoinCacheCold(b *testing.B) { benchmarkEquijoinCache(b, false) }
func BenchmarkEquijoinCacheWarm(b *testing.B) { benchmarkEquijoinCache(b, true) }

// --- PR6: observability instrumentation overhead (BENCH_PR6.json) ---

// benchmarkObsOverhead measures the same intersection end to end with
// the endpoints either detached (no obs session on the context — every
// instrumentation branch must collapse to a nil check, so this is the
// baseline) or attached (sessions, phase spans, per-frame transport
// histograms, chunk timers and the flight recorder all live).  The
// acceptance criterion for the tracing layer is that the two are
// indistinguishable at protocol scale: the crypto dominates and the
// instrumentation's atomic adds vanish in the noise.
func benchmarkObsOverhead(b *testing.B, attached bool) {
	n := 256
	if testing.Short() {
		n = 16
	}
	vR, vS := benchSets(n)
	cfg := core.Config{Group: group.MustBuiltin(group.Bits256)}
	reg := obs.NewRegistry()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ctxR, ctxS := context.Background(), context.Background()
		var sessR, sessS *obs.Session
		if attached {
			sessR = reg.StartSession(obs.SessionInfo{Protocol: "intersection", Role: "receiver"})
			sessS = reg.StartSession(obs.SessionInfo{Protocol: "intersection", Role: "sender"})
			ctxR = obs.WithSession(ctxR, sessR)
			ctxS = obs.WithSession(ctxS, sessS)
		}
		connR, connS := transport.Pipe()
		ch := make(chan error, 1)
		go func() {
			_, err := core.IntersectionSender(ctxS, cfg, connS, vS)
			sessS.End(err)
			ch <- err
		}()
		_, rErr := core.IntersectionReceiver(ctxR, cfg, connR, vR)
		sessR.End(rErr)
		if rErr != nil {
			b.Fatal(rErr)
		}
		if err := <-ch; err != nil {
			b.Fatal(err)
		}
		connR.Close()
	}
}

func BenchmarkObsOverheadIntersectionDetached(b *testing.B) { benchmarkObsOverhead(b, false) }
func BenchmarkObsOverheadIntersectionAttached(b *testing.B) { benchmarkObsOverhead(b, true) }

// BenchmarkObsOverheadSpanDetached pins the detached fast path at the
// operation level: without a session, StartSpan returns nil and End is a
// nil check — zero allocations, single-digit nanoseconds.
func BenchmarkObsOverheadSpanDetached(b *testing.B) {
	ctx := context.Background()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sp := obs.StartSpan(ctx, "bench")
		sp.End()
	}
}

// BenchmarkObsOverheadHistogramRecord is the cost each instrumented
// frame/chunk pays when a session IS attached: one lock-free bucket add.
func BenchmarkObsOverheadHistogramRecord(b *testing.B) {
	var lat obs.Latencies
	h := lat.Hist(obs.LatChunkPipeline)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Record(time.Duration(i))
	}
}

// --- PR8: shard-parallel execution (BENCH_PR8.json) ---

// shardBenchParams picks the sharded-bench regime: a set size and link
// where one party's encryption time and the critical-path transfer time
// are the same order of magnitude, so overlapping them (which is all a
// single-processor host can gain) is visible in wall time.
func shardBenchParams() (n int, g *group.Group, bw float64, rtt time.Duration) {
	if testing.Short() {
		return 64, group.MustBuiltin(group.Bits256), 20_000_000, time.Millisecond
	}
	return 2000, group.MustBuiltin(group.Bits512), 4_500_000, 10 * time.Millisecond
}

// shardedWallModel reports the costmodel's closed-form wall estimates
// next to the measured numbers: per-modexp cost is calibrated live, the
// compute term is the full Section 6.1 Ce census at that cost, and the
// comm term is the wire census over the modelled link.  The p=8 row is
// the projection a multi-processor host would see (compute divides by
// min(k, p)); on this single-processor host only the overlap term of
// the k=8/p=1 row is realizable.
func shardedWallModel(b *testing.B, n int, g *group.Group, bw float64, rtt time.Duration, k int) {
	b.Helper()
	rng := rand.New(rand.NewSource(1))
	x, _ := g.RandomElement(rng)
	e, _ := g.RandomExponent(rng)
	// Best of several batches: the calibration must not absorb a noisy
	// neighbour's timeslice, or the model rows jump run to run.
	const calib = 32
	perExp := time.Duration(1 << 62)
	for batch := 0; batch < 3; batch++ {
		start := time.Now()
		for i := 0; i < calib; i++ {
			x = g.Exp(x, e)
		}
		if d := time.Since(start) / calib; d < perExp {
			perExp = d
		}
	}

	compute := time.Duration(costmodel.IntersectionOps(n, n).Ce) * perExp
	w := costmodel.IntersectionWireCost(n, n, g.ElementLen())
	comm := time.Duration(float64(8*(w.PayloadBytesSent+w.PayloadBytesRecv))/bw*float64(time.Second)) + 2*rtt
	b.ReportMetric(float64(compute+comm), "model-seq-ns")
	b.ReportMetric(float64(costmodel.ShardedWallEstimate(compute, comm, k, 1)), "model-p1-ns")
	b.ReportMetric(float64(costmodel.ShardedWallEstimate(compute, comm, k, 8)), "model-p8-ns")
}

// benchmarkIntersectionSharded runs one intersection over a modelled
// link with the given shard count; k = 1 is the classic single session
// (byte-identical wire format), k = 8 splits the run into eight
// sub-sessions multiplexed on the same connection, so each shard's
// encrypted vectors transfer while other shards are still encrypting —
// the two lock-step stages pipeline.  Backend and sets are identical
// across k; only the negotiated shard count changes.
func benchmarkIntersectionSharded(b *testing.B, shards int) {
	n, g, bw, rtt := shardBenchParams()
	vR, vS := benchSets(n)
	cfg := core.Config{Group: g, Shards: shards}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ctx := context.Background()
		connR, connS := transport.Pipe()
		latR := transport.NewLatency(connR, rtt).WithBandwidth(bw)
		latS := transport.NewLatency(connS, rtt).WithBandwidth(bw)
		ch := make(chan error, 1)
		go func() {
			_, err := core.IntersectionSender(ctx, cfg, latS, vS)
			ch <- err
		}()
		res, err := core.IntersectionReceiver(ctx, cfg, latR, vR)
		if err != nil {
			b.Fatal(err)
		}
		if err := <-ch; err != nil {
			b.Fatal(err)
		}
		if len(res.Values) != n/2 {
			b.Fatalf("|intersection| = %d, want %d", len(res.Values), n/2)
		}
		latR.Close()
		latS.Close()
	}
	b.StopTimer()
	if shards > 1 {
		// Reported after the loop: ResetTimer discards earlier metrics.
		shardedWallModel(b, n, g, bw, rtt, shards)
	}
}

func BenchmarkIntersectionSharded(b *testing.B) {
	for _, k := range []int{1, 8} {
		b.Run(fmt.Sprintf("k=%d", k), func(b *testing.B) { benchmarkIntersectionSharded(b, k) })
	}
}

// BenchmarkE5_SortedCircuit builds the real sort-based intersection-size
// circuit (the appendix's ordered-array construction) at n=64.
func BenchmarkE5_SortedCircuit_w16_n64(b *testing.B) {
	var gates int
	for i := 0; i < b.N; i++ {
		gates = circuit.SortedIntersectionSize(16, 64, 64).NumGates()
	}
	b.ReportMetric(float64(gates), "gates")
	b.ReportMetric(costmodel.BruteForceGates(64, 16), "brute-model-gates")
}
