module minshare

go 1.22
