package commutative

import (
	"io"
	"math/big"

	"minshare/internal/group"
	"minshare/internal/obs"
)

// observed wraps a Scheme so every key generation, encryption and
// decryption is recorded in an obs.Counters chain.  Because EncryptAll
// and DecryptAll drive the wrapped Scheme per element, worker-pool
// operations are counted with no extra plumbing.
type observed struct {
	inner Scheme
	c     *obs.Counters
}

// Observed returns inner with its operations counted into c.  A nil c
// returns inner unchanged, so callers can wrap unconditionally.
func Observed(inner Scheme, c *obs.Counters) Scheme {
	if c == nil {
		return inner
	}
	return &observed{inner: inner, c: c}
}

// Backend implements Scheme.
func (o *observed) Backend() group.Backend { return o.inner.Backend() }

// GenerateKey implements Scheme.
func (o *observed) GenerateKey(r io.Reader) (*Key, error) {
	o.c.AddKeyGens(1)
	return o.inner.GenerateKey(r)
}

// Encrypt implements Scheme: one C_e exponentiation.
func (o *observed) Encrypt(k *Key, x *big.Int) (*big.Int, error) {
	o.c.AddModExpEncrypts(1)
	return o.inner.Encrypt(k, x)
}

// Decrypt implements Scheme: one C_e exponentiation (the exponent
// inversion is modular arithmetic, not an exponentiation, so it is not
// counted).
func (o *observed) Decrypt(k *Key, y *big.Int) (*big.Int, error) {
	o.c.AddModExpDecrypts(1)
	return o.inner.Decrypt(k, y)
}
