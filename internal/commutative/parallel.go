package commutative

import (
	"context"
	"fmt"
	"math/big"
	"runtime"
	"sync"
)

// EncryptAll encrypts every element of xs under key k using up to
// parallelism worker goroutines and returns the results in input order.
//
// The paper's application estimates (Section 6.2) assume "P processors
// that we can utilize in parallel ... a default value of P = 10": bulk
// exponentiation is embarrassingly parallel, and EncryptAll is that
// worker pool.  parallelism <= 0 selects GOMAXPROCS.
func EncryptAll(ctx context.Context, s Scheme, k *Key, xs []*big.Int, parallelism int) ([]*big.Int, error) {
	return EncryptAllAt(ctx, s, k, xs, parallelism, 0)
}

// EncryptAllAt is EncryptAll for a slice that starts at index base of a
// larger vector: errors name the global index base+i, so a mid-stream
// failure in chunk 3 of a streamed operation points at the right
// element of V, not at the chunk-local offset.
func EncryptAllAt(ctx context.Context, s Scheme, k *Key, xs []*big.Int, parallelism, base int) ([]*big.Int, error) {
	return mapAll(ctx, xs, parallelism, base, func(x *big.Int) (*big.Int, error) {
		return s.Encrypt(k, x)
	})
}

// DecryptAll is the decryption counterpart of EncryptAll.
func DecryptAll(ctx context.Context, s Scheme, k *Key, ys []*big.Int, parallelism int) ([]*big.Int, error) {
	return DecryptAllAt(ctx, s, k, ys, parallelism, 0)
}

// DecryptAllAt is the decryption counterpart of EncryptAllAt.
func DecryptAllAt(ctx context.Context, s Scheme, k *Key, ys []*big.Int, parallelism, base int) ([]*big.Int, error) {
	return mapAll(ctx, ys, parallelism, base, func(y *big.Int) (*big.Int, error) {
		return s.Decrypt(k, y)
	})
}

// mapAll applies f to every element of xs with up to parallelism
// concurrent workers, preserving input order in the result.  base is
// the index of xs[0] within the caller's full vector; error messages
// report base-relative ("global") element indices.
//
// The parallelism contract (pinned by TestMapAllDefaultsToGOMAXPROCS):
// parallelism <= 0 selects runtime.GOMAXPROCS(0) at call time — the
// paper's "P processors that we can utilize in parallel" default — and
// any requested value is capped at len(xs), since a worker per element
// is the most the feeder can ever keep busy.  Exactly min(parallelism,
// len(xs)) workers are started; each holds at most one element
// in flight.
func mapAll(ctx context.Context, xs []*big.Int, parallelism, base int, f func(*big.Int) (*big.Int, error)) ([]*big.Int, error) {
	if parallelism <= 0 {
		parallelism = runtime.GOMAXPROCS(0)
	}
	if parallelism > len(xs) {
		parallelism = len(xs)
	}
	out := make([]*big.Int, len(xs))
	if len(xs) == 0 {
		return out, nil
	}
	if parallelism <= 1 {
		for i, x := range xs {
			if err := ctx.Err(); err != nil {
				return nil, fmt.Errorf("commutative: bulk operation cancelled: %w", err)
			}
			y, err := f(x)
			if err != nil {
				return nil, fmt.Errorf("commutative: element %d: %w", base+i, err)
			}
			out[i] = y
		}
		return out, nil
	}

	var (
		wg       sync.WaitGroup
		errOnce  sync.Once
		firstErr error
		next     = make(chan int)
		quit     = make(chan struct{})
	)
	fail := func(err error) {
		errOnce.Do(func() {
			firstErr = err
			close(quit)
		})
	}

	wg.Add(parallelism)
	for w := 0; w < parallelism; w++ {
		go func() {
			defer wg.Done()
			for i := range next {
				// Observe cancellation between elements, exactly like the
				// serial path: a cancelled bulk operation must stop after
				// at most one in-flight exponentiation per worker, not
				// grind through whatever the feeder already queued.
				if err := ctx.Err(); err != nil {
					fail(fmt.Errorf("commutative: bulk operation cancelled: %w", err))
					return
				}
				y, err := f(xs[i])
				if err != nil {
					fail(fmt.Errorf("commutative: element %d: %w", base+i, err))
					return
				}
				out[i] = y
			}
		}()
	}

feed:
	for i := range xs {
		// Cancellation and failure take priority over handing out more
		// work: the three-way select below picks randomly among ready
		// cases, so without this check a cancelled feed could keep
		// dispatching elements as long as workers keep up.
		if err := ctx.Err(); err != nil {
			fail(fmt.Errorf("commutative: bulk operation cancelled: %w", err))
			break
		}
		select {
		case <-quit:
			break feed
		default:
		}
		select {
		case next <- i:
		case <-quit:
			break feed
		case <-ctx.Done():
			fail(fmt.Errorf("commutative: bulk operation cancelled: %w", ctx.Err()))
			break feed
		}
	}
	close(next)
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}
	return out, nil
}
