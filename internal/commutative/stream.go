package commutative

import (
	"context"
	"math/big"
)

// Chunk is one in-order slice of a streamed bulk operation.  Off is the
// index of Elems[0] within the input vector.  A chunk with Err != nil is
// terminal: the channel is closed immediately after it and Elems is nil.
type Chunk struct {
	Off   int
	Elems []*big.Int
	Err   error
}

// EncryptStream encrypts xs under k in chunks of chunkSize elements,
// emitting completed chunks in input order on the returned channel.
// Each chunk runs through the same worker pool as EncryptAll (with the
// given parallelism), so chunk i+1 is being exponentiated while the
// consumer ships chunk i — the producer half of the protocol pipeline.
//
// chunkSize <= 0 emits the whole vector as a single chunk.  The channel
// is buffered one chunk deep: the producer stays at most one chunk
// ahead of the consumer.  The consumer must drain the channel or cancel
// ctx; after an error chunk the channel closes without further sends.
func EncryptStream(ctx context.Context, s Scheme, k *Key, xs []*big.Int, chunkSize, parallelism int) <-chan Chunk {
	return mapStream(ctx, xs, chunkSize, func(chunk []*big.Int, off int) ([]*big.Int, error) {
		return EncryptAllAt(ctx, s, k, chunk, parallelism, off)
	})
}

// DecryptStream is the decryption counterpart of EncryptStream.
func DecryptStream(ctx context.Context, s Scheme, k *Key, ys []*big.Int, chunkSize, parallelism int) <-chan Chunk {
	return mapStream(ctx, ys, chunkSize, func(chunk []*big.Int, off int) ([]*big.Int, error) {
		return DecryptAllAt(ctx, s, k, chunk, parallelism, off)
	})
}

// mapStream's f receives each chunk together with its base offset in
// xs, so chunk-level failures can name the global element index.
func mapStream(ctx context.Context, xs []*big.Int, chunkSize int, f func([]*big.Int, int) ([]*big.Int, error)) <-chan Chunk {
	if chunkSize <= 0 {
		chunkSize = len(xs)
		if chunkSize == 0 {
			chunkSize = 1
		}
	}
	out := make(chan Chunk, 1)
	go func() {
		defer close(out)
		for off := 0; off < len(xs); off += chunkSize {
			end := off + chunkSize
			if end > len(xs) {
				end = len(xs)
			}
			ys, err := f(xs[off:end], off)
			if err != nil {
				select {
				case out <- Chunk{Off: off, Err: err}:
				case <-ctx.Done():
				}
				return
			}
			select {
			case out <- Chunk{Off: off, Elems: ys}:
			case <-ctx.Done():
				return
			}
		}
	}()
	return out
}
