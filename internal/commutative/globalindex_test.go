package commutative

import (
	"context"
	"errors"
	"math/big"
	"math/rand"
	"strings"
	"testing"
)

// failOn wraps a Scheme so operations on one designated element fail,
// letting tests pin exactly which index an error message names.
type failOn struct {
	Scheme
	bad *big.Int
}

var errBoom = errors.New("boom")

func (f *failOn) Encrypt(k *Key, x *big.Int) (*big.Int, error) {
	if x.Cmp(f.bad) == 0 {
		return nil, errBoom
	}
	return f.Scheme.Encrypt(k, x)
}

func (f *failOn) Decrypt(k *Key, y *big.Int) (*big.Int, error) {
	if y.Cmp(f.bad) == 0 {
		return nil, errBoom
	}
	return f.Scheme.Decrypt(k, y)
}

// TestStreamErrorsNameGlobalIndex is the regression test for the
// chunk-local error-index bug: a failure in chunk 3 of a streamed bulk
// operation must report the element's index in the full vector V, not
// its offset within the chunk.
func TestStreamErrorsNameGlobalIndex(t *testing.T) {
	s := testScheme(t)
	rng := rand.New(rand.NewSource(11))
	k, err := s.GenerateKey(rng)
	if err != nil {
		t.Fatal(err)
	}
	xs := streamTestVector(t, s, 16, 12)
	const badIdx, chunkSize = 13, 4 // chunk 3, local offset 1
	fs := &failOn{Scheme: s, bad: xs[badIdx]}

	for _, parallelism := range []int{1, 3} {
		var chunkErr error
		for c := range EncryptStream(context.Background(), fs, k, xs, chunkSize, parallelism) {
			if c.Err != nil {
				chunkErr = c.Err
			}
		}
		if chunkErr == nil {
			t.Fatalf("parallelism=%d: stream succeeded, want element %d to fail", parallelism, badIdx)
		}
		if !errors.Is(chunkErr, errBoom) {
			t.Fatalf("parallelism=%d: err = %v, want wrapped errBoom", parallelism, chunkErr)
		}
		if !strings.Contains(chunkErr.Error(), "element 13") {
			t.Errorf("parallelism=%d: err %q names the wrong index, want global \"element 13\"", parallelism, chunkErr)
		}
		if strings.Contains(chunkErr.Error(), "element 1:") {
			t.Errorf("parallelism=%d: err %q reports the chunk-local index", parallelism, chunkErr)
		}
	}
}

// TestAllAtOffsetsErrors pins the base-offset plumbing of the *At
// variants on both the serial and the parallel mapAll path.
func TestAllAtOffsetsErrors(t *testing.T) {
	s := testScheme(t)
	rng := rand.New(rand.NewSource(13))
	k, err := s.GenerateKey(rng)
	if err != nil {
		t.Fatal(err)
	}
	xs := streamTestVector(t, s, 6, 14)
	fs := &failOn{Scheme: s, bad: xs[2]}

	for _, tc := range []struct {
		name string
		call func() error
	}{
		{"encrypt serial", func() error {
			_, err := EncryptAllAt(context.Background(), fs, k, xs, 1, 100)
			return err
		}},
		{"encrypt parallel", func() error {
			_, err := EncryptAllAt(context.Background(), fs, k, xs, 3, 100)
			return err
		}},
		{"decrypt serial", func() error {
			_, err := DecryptAllAt(context.Background(), fs, k, xs, 1, 100)
			return err
		}},
	} {
		err := tc.call()
		if err == nil {
			t.Fatalf("%s: succeeded, want failure at element 102", tc.name)
		}
		if !strings.Contains(err.Error(), "element 102") {
			t.Errorf("%s: err %q, want base-shifted \"element 102\"", tc.name, err)
		}
	}
}
