package commutative

import (
	"context"
	"math/big"
	"testing"

	"minshare/internal/group"
)

func TestNewCachedSetMatchesBulkEncryption(t *testing.T) {
	g := group.TestGroup()
	s := NewPowerFn(g)
	k, err := s.GenerateKey(nil)
	if err != nil {
		t.Fatal(err)
	}
	xs := []*big.Int{big.NewInt(9), big.NewInt(4), big.NewInt(25)}

	cs, err := NewCachedSet(context.Background(), s, k, xs, 2)
	if err != nil {
		t.Fatal(err)
	}
	if cs.Key() != k || cs.Len() != len(xs) || cs.Payload() != nil {
		t.Fatalf("cached set shape: key %v, len %d, payload %v", cs.Key() == k, cs.Len(), cs.Payload())
	}

	// Same ciphertext set as direct encryption, in sorted order.
	want := map[string]bool{}
	for _, x := range xs {
		y, err := s.Encrypt(k, x)
		if err != nil {
			t.Fatal(err)
		}
		want[y.String()] = true
	}
	prev := big.NewInt(-1)
	for _, e := range cs.Elems() {
		if !want[e.String()] {
			t.Errorf("element %v not a ciphertext of the input set", e)
		}
		if e.Cmp(prev) < 0 {
			t.Error("elements not sorted")
		}
		prev = e
	}
}

func TestCachedSetFromSortedValidatesPayload(t *testing.T) {
	g := group.TestGroup()
	s := NewPowerFn(g)
	k, err := s.GenerateKey(nil)
	if err != nil {
		t.Fatal(err)
	}
	elems := []*big.Int{big.NewInt(3), big.NewInt(5)}
	if _, err := CachedSetFromSorted(k, elems, [][]byte{{1}}); err == nil {
		t.Error("mismatched payload length accepted, want error")
	}
	cs, err := CachedSetFromSorted(k, elems, [][]byte{{1}, {2, 3}})
	if err != nil {
		t.Fatal(err)
	}
	bare, err := CachedSetFromSorted(k, elems, nil)
	if err != nil {
		t.Fatal(err)
	}
	if cs.MemoryBytes() <= bare.MemoryBytes() {
		t.Errorf("payload not charged: %d <= %d", cs.MemoryBytes(), bare.MemoryBytes())
	}
}

// TestCachedSetMemoryChargesWordAlignedStorage pins the element
// accounting against the backend element width: big.Int allocates
// whole 64-bit words, so a 32-byte EC point encoding whose top bytes
// happen to be small must be charged the same four words as one with a
// full-width top byte.  An earlier version charged ceil(bitLen/8) and
// so undercounted exactly those elements.
func TestCachedSetMemoryChargesWordAlignedStorage(t *testing.T) {
	s := NewPowerFn(group.TestGroup())
	k, err := s.GenerateKey(nil)
	if err != nil {
		t.Fatal(err)
	}
	mem := func(e *big.Int) int64 {
		t.Helper()
		cs, err := CachedSetFromSorted(k, []*big.Int{e}, nil)
		if err != nil {
			t.Fatal(err)
		}
		return cs.MemoryBytes()
	}

	full := new(big.Int).Lsh(big.NewInt(1), 255)  // bit length 256: 4 words
	short := new(big.Int).Lsh(big.NewInt(1), 199) // bit length 200: still 4 words
	tiny := new(big.Int).Lsh(big.NewInt(1), 63)   // bit length 64: 1 word

	if mem(full) != mem(short) {
		t.Errorf("same word count charged differently: 256-bit %d vs 200-bit %d", mem(full), mem(short))
	}
	if diff := mem(full) - mem(tiny); diff != 3*8 {
		t.Errorf("4-word vs 1-word element charge differs by %d, want 24", diff)
	}
}
