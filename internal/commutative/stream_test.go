package commutative

import (
	"context"
	"math/big"
	"math/rand"
	"runtime"
	"sync"
	"testing"
	"time"
)

func streamTestVector(t testing.TB, s *PowerFn, n int, seed int64) []*big.Int {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	xs := make([]*big.Int, n)
	for i := range xs {
		var err error
		if xs[i], err = qr(t, s).RandomElement(rng); err != nil {
			t.Fatal(err)
		}
	}
	return xs
}

func TestEncryptStreamMatchesEncryptAll(t *testing.T) {
	s := testScheme(t)
	rng := rand.New(rand.NewSource(2))
	k, err := s.GenerateKey(rng)
	if err != nil {
		t.Fatal(err)
	}
	xs := streamTestVector(t, s, 17, 3)
	want, err := EncryptAll(context.Background(), s, k, xs, 2)
	if err != nil {
		t.Fatal(err)
	}

	for _, chunkSize := range []int{0, 1, 4, 16, 17, 100} {
		var got []*big.Int
		chunks := 0
		for c := range EncryptStream(context.Background(), s, k, xs, chunkSize, 2) {
			if c.Err != nil {
				t.Fatalf("chunkSize=%d: chunk error: %v", chunkSize, c.Err)
			}
			if c.Off != len(got) {
				t.Fatalf("chunkSize=%d: chunk at offset %d, want %d (out of order)", chunkSize, c.Off, len(got))
			}
			got = append(got, c.Elems...)
			chunks++
		}
		if len(got) != len(want) {
			t.Fatalf("chunkSize=%d: got %d elements, want %d", chunkSize, len(got), len(want))
		}
		for i := range want {
			if got[i].Cmp(want[i]) != 0 {
				t.Fatalf("chunkSize=%d: element %d differs from EncryptAll", chunkSize, i)
			}
		}
		if chunkSize >= 1 && chunkSize <= len(xs) {
			wantChunks := (len(xs) + chunkSize - 1) / chunkSize
			if chunks != wantChunks {
				t.Errorf("chunkSize=%d: %d chunks, want %d", chunkSize, chunks, wantChunks)
			}
		}
	}
}

func TestDecryptStreamRoundTrip(t *testing.T) {
	s := testScheme(t)
	rng := rand.New(rand.NewSource(4))
	k, err := s.GenerateKey(rng)
	if err != nil {
		t.Fatal(err)
	}
	xs := streamTestVector(t, s, 9, 5)
	ys, err := EncryptAll(context.Background(), s, k, xs, 1)
	if err != nil {
		t.Fatal(err)
	}
	var back []*big.Int
	for c := range DecryptStream(context.Background(), s, k, ys, 4, 2) {
		if c.Err != nil {
			t.Fatal(c.Err)
		}
		back = append(back, c.Elems...)
	}
	for i := range xs {
		if back[i].Cmp(xs[i]) != 0 {
			t.Fatalf("element %d did not round-trip", i)
		}
	}
}

func TestEncryptStreamEmptyVector(t *testing.T) {
	s := testScheme(t)
	rng := rand.New(rand.NewSource(6))
	k, err := s.GenerateKey(rng)
	if err != nil {
		t.Fatal(err)
	}
	ch := EncryptStream(context.Background(), s, k, nil, 4, 2)
	if c, ok := <-ch; ok {
		t.Fatalf("empty vector emitted a chunk: %+v", c)
	}
}

func TestEncryptStreamErrorIsTerminal(t *testing.T) {
	s := testScheme(t)
	rng := rand.New(rand.NewSource(7))
	k, err := s.GenerateKey(rng)
	if err != nil {
		t.Fatal(err)
	}
	xs := streamTestVector(t, s, 8, 8)
	xs[5] = big.NewInt(0) // not a group element: chunk 2 of 4 fails
	var chunks []Chunk
	for c := range EncryptStream(context.Background(), s, k, xs, 2, 1) {
		chunks = append(chunks, c)
	}
	last := chunks[len(chunks)-1]
	if last.Err == nil {
		t.Fatal("stream over a bad element completed without error")
	}
	if last.Off != 4 {
		t.Errorf("error chunk at offset %d, want 4", last.Off)
	}
	for _, c := range chunks[:len(chunks)-1] {
		if c.Err != nil {
			t.Error("error chunk was not the last chunk")
		}
	}
}

func TestEncryptStreamCancelDoesNotLeak(t *testing.T) {
	s := testScheme(t)
	rng := rand.New(rand.NewSource(9))
	k, err := s.GenerateKey(rng)
	if err != nil {
		t.Fatal(err)
	}
	xs := streamTestVector(t, s, 32, 10)
	before := runtime.NumGoroutine()
	for i := 0; i < 4; i++ {
		ctx, cancel := context.WithCancel(context.Background())
		ch := EncryptStream(ctx, s, k, xs, 2, 1)
		<-ch // take one chunk, then walk away
		cancel()
	}
	// The producer goroutines must observe the cancellation and exit.
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if n := runtime.NumGoroutine(); n > before {
		t.Errorf("goroutines grew from %d to %d after cancelled streams", before, n)
	}
}

// TestDecryptConcurrentSharedKey exercises the lazily cached decryption
// inverse from many goroutines; run under -race it proves the cache is
// safe for the concurrent per-chunk decrypts the core pipeline issues.
func TestDecryptConcurrentSharedKey(t *testing.T) {
	s := testScheme(t)
	rng := rand.New(rand.NewSource(11))
	k, err := s.GenerateKey(rng)
	if err != nil {
		t.Fatal(err)
	}
	xs := streamTestVector(t, s, 8, 12)
	ys, err := EncryptAll(context.Background(), s, k, xs, 1)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i, y := range ys {
				x, err := s.Decrypt(k, y)
				if err != nil {
					t.Error(err)
					return
				}
				if x.Cmp(xs[i]) != 0 {
					t.Errorf("concurrent decrypt of element %d wrong", i)
					return
				}
			}
		}()
	}
	wg.Wait()
}
