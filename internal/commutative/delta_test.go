package commutative

import (
	"context"
	"errors"
	"math/big"
	"testing"

	"minshare/internal/group"
	"minshare/internal/obs"
)

func deltaFixture(t *testing.T, payload bool) (Scheme, *CachedSet, []*big.Int) {
	t.Helper()
	s := NewPowerFn(group.TestGroup())
	k, err := s.GenerateKey(nil)
	if err != nil {
		t.Fatal(err)
	}
	xs := []*big.Int{big.NewInt(9), big.NewInt(4), big.NewInt(25), big.NewInt(16)}
	cs, err := NewCachedSet(context.Background(), s, k, xs, 2)
	if err != nil {
		t.Fatal(err)
	}
	if payload {
		p := make([][]byte, cs.Len())
		for i := range p {
			p[i] = []byte{byte(i)}
		}
		cs, err = CachedSetFromSorted(k, cs.Elems(), p)
		if err != nil {
			t.Fatal(err)
		}
	}
	return s, cs, xs
}

func TestApplyDeltaMatchesFullRebuild(t *testing.T) {
	s, cs, _ := deltaFixture(t, false)
	ctx := context.Background()

	next, d, err := cs.ApplyDelta(ctx, s,
		[]*big.Int{big.NewInt(36), big.NewInt(49)}, nil, []*big.Int{big.NewInt(4)},
		nil, nil, 2)
	if err != nil {
		t.Fatal(err)
	}
	// The upgraded set must equal a cold rebuild over the final values.
	want, err := NewCachedSet(ctx, s, cs.Key(),
		[]*big.Int{big.NewInt(9), big.NewInt(25), big.NewInt(16), big.NewInt(36), big.NewInt(49)}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if next.Len() != want.Len() {
		t.Fatalf("upgraded len %d, want %d", next.Len(), want.Len())
	}
	for i := range want.Elems() {
		if next.Elems()[i].Cmp(want.Elems()[i]) != 0 {
			t.Fatalf("element %d = %v, want %v", i, next.Elems()[i], want.Elems()[i])
		}
	}
	if len(d.Inserted) != 2 || len(d.Deleted) != 1 || len(d.Updated) != 0 {
		t.Fatalf("delta shape ins/upd/del = %d/%d/%d, want 2/0/1",
			len(d.Inserted), len(d.Updated), len(d.Deleted))
	}
	for i := 1; i < len(d.Inserted); i++ {
		if d.Inserted[i].Cmp(d.Inserted[i-1]) < 0 {
			t.Error("CipherDelta.Inserted not sorted")
		}
	}
	// The original set is untouched.
	if cs.Len() != 4 {
		t.Errorf("original set mutated: len %d", cs.Len())
	}
	if next.MemoryBytes() <= 0 || next.MemoryBytes() == cs.MemoryBytes() {
		t.Errorf("memory not recomputed: %d vs %d", next.MemoryBytes(), cs.MemoryBytes())
	}
}

func TestApplyDeltaPayloadUpdate(t *testing.T) {
	s, cs, xs := deltaFixture(t, true)
	ctx := context.Background()

	next, d, err := cs.ApplyDelta(ctx, s,
		[]*big.Int{big.NewInt(36)}, []*big.Int{xs[1]}, []*big.Int{xs[0]},
		[][]byte{{0xaa}}, [][]byte{{0xbb}}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if next.Len() != 4 || len(next.Payload()) != 4 {
		t.Fatalf("upgraded shape %d elems / %d payloads, want 4/4", next.Len(), len(next.Payload()))
	}
	// Payloads stay aligned: the updated element carries the new payload,
	// the inserted one its payload, survivors keep theirs.
	encUpd, err := s.Encrypt(cs.Key(), xs[1])
	if err != nil {
		t.Fatal(err)
	}
	encIns, err := s.Encrypt(cs.Key(), big.NewInt(36))
	if err != nil {
		t.Fatal(err)
	}
	found := map[string]bool{}
	for i, e := range next.Elems() {
		switch {
		case e.Cmp(encUpd) == 0:
			if string(next.Payload()[i]) != "\xbb" {
				t.Errorf("updated element payload = %x, want bb", next.Payload()[i])
			}
			found["upd"] = true
		case e.Cmp(encIns) == 0:
			if string(next.Payload()[i]) != "\xaa" {
				t.Errorf("inserted element payload = %x, want aa", next.Payload()[i])
			}
			found["ins"] = true
		}
	}
	if !found["upd"] || !found["ins"] {
		t.Fatalf("updated/inserted elements not found in upgraded set: %v", found)
	}
	if len(d.Updated) != 1 || string(d.UpdatedPayload[0]) != "\xbb" {
		t.Errorf("CipherDelta.Updated = %d entries, payload %x", len(d.Updated), d.UpdatedPayload)
	}

	ups, pay := d.Upserts()
	if len(ups) != 2 || len(pay) != 2 {
		t.Fatalf("Upserts = %d elems / %d payloads, want 2/2", len(ups), len(pay))
	}
	if ups[0].Cmp(ups[1]) >= 0 {
		t.Error("Upserts not sorted")
	}
	for i, e := range ups {
		want := "\xaa"
		if e.Cmp(encUpd) == 0 {
			want = "\xbb"
		}
		if string(pay[i]) != want {
			t.Errorf("upsert %d payload = %x, want %x", i, pay[i], want)
		}
	}
}

func TestApplyDeltaConflicts(t *testing.T) {
	s, cs, xs := deltaFixture(t, false)
	ctx := context.Background()

	cases := []struct {
		name          string
		ins, upd, del []*big.Int
	}{
		{"delete absent", nil, nil, []*big.Int{big.NewInt(64)}},
		{"delete twice", nil, nil, []*big.Int{xs[0], xs[0]}},
		{"insert present", []*big.Int{xs[2]}, nil, nil},
		{"insert duplicate", []*big.Int{big.NewInt(36), big.NewInt(36)}, nil, nil},
	}
	for _, tc := range cases {
		if _, _, err := cs.ApplyDelta(ctx, s, tc.ins, tc.upd, tc.del, nil, nil, 1); !errors.Is(err, ErrDeltaConflict) {
			t.Errorf("%s: err = %v, want ErrDeltaConflict", tc.name, err)
		}
	}

	// Update of an absent value conflicts too (payload-carrying set).
	_, csp, _ := deltaFixture(t, true)
	if _, _, err := csp.ApplyDelta(ctx, s, nil, []*big.Int{big.NewInt(64)}, nil, nil, [][]byte{{1}}, 1); !errors.Is(err, ErrDeltaConflict) {
		t.Errorf("update absent: err = %v, want ErrDeltaConflict", err)
	}
}

func TestApplyDeltaValidation(t *testing.T) {
	s, cs, xs := deltaFixture(t, false)
	ctx := context.Background()
	if _, _, err := cs.ApplyDelta(ctx, s, nil, []*big.Int{xs[0]}, nil, nil, [][]byte{{1}}, 1); err == nil || errors.Is(err, ErrDeltaConflict) {
		t.Errorf("update against payload-less set: err = %v, want plain error", err)
	}
	_, csp, _ := deltaFixture(t, true)
	if _, _, err := csp.ApplyDelta(ctx, s, []*big.Int{big.NewInt(36)}, nil, nil, nil, nil, 1); err == nil || errors.Is(err, ErrDeltaConflict) {
		t.Errorf("misaligned insert payload: err = %v, want plain error", err)
	}
}

// ApplyDelta's C_e bill is exactly the churn — the whole point of the
// delta path.
func TestApplyDeltaCountsChurnOnly(t *testing.T) {
	s, cs, xs := deltaFixture(t, true)
	reg := obs.NewRegistry()
	sess := reg.StartSession(obs.SessionInfo{Protocol: "delta-count"})
	counted := Observed(s, sess.Counters())

	_, _, err := cs.ApplyDelta(context.Background(), counted,
		[]*big.Int{big.NewInt(36), big.NewInt(49)}, []*big.Int{xs[1]}, []*big.Int{xs[0]},
		[][]byte{{1}, {2}}, [][]byte{{3}}, 2)
	if err != nil {
		t.Fatal(err)
	}
	snap := sess.Counters().Snapshot()
	if snap.ModExpEncrypts != 4 {
		t.Errorf("C_e = %d, want 4 (2 ins + 1 upd + 1 del)", snap.ModExpEncrypts)
	}
	if snap.ModExpDecrypts != 0 || snap.KeyGens != 0 {
		t.Errorf("unexpected ops: decrypts %d, keygens %d", snap.ModExpDecrypts, snap.KeyGens)
	}
}
