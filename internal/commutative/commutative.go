// Package commutative implements the commutative encryption primitive of
// Section 3.2.1 of the paper (Definition 2) together with decorators used
// by the cost-analysis experiments.
//
// A commutative encryption F is a family of bijections f_e over a domain
// DomF such that f_e ∘ f_e' = f_e' ∘ f_e for all keys e, e', each f_e is
// invertible in polynomial time given e, and — under the Decisional
// Diffie-Hellman assumption — seeing (x, f_e(x)) does not help encrypting
// or decrypting any independent value (Property 4).
//
// The concrete scheme, Example 1 of the paper, is the Pohlig-Hellman
// power function over quadratic residues modulo a safe prime p:
//
//	f_e(x) = x^e mod p,   e ∈ [1, q-1],  q = (p-1)/2
//
// Powers commute, each f_e is a bijection on QR(p) with inverse
// f_{e^{-1} mod q}, and DDH over QR(p) gives Property 4.
//
// Nothing in Definition 2 requires that particular group, and this
// package is written against group.Backend rather than the safe-prime
// group: PowerFn over the Curve25519 backend is the same scheme with
// f_e(x) = e·x over hashed-to-curve points (a scalar multiplication
// instead of a modular exponentiation), at the same DDH security for a
// fraction of the C_e cost.
package commutative

import (
	"errors"
	"io"
	"math/big"
	"sync"
	"sync/atomic"

	"minshare/internal/group"
)

// ErrNilKey is returned when an operation receives a nil key.
var ErrNilKey = errors.New("commutative: nil key")

// Key is a secret commutative-encryption key: a scalar in the key space
// of the backend that produced it ([1, q-1] for QR(p), [1, ℓ-1] for the
// Curve25519 subgroup).  Keys are produced by a Scheme and must never be
// shared between backends or between groups of different parameters.
type Key struct {
	e *group.Scalar

	// Decryption inverse e⁻¹ mod the key-space order, computed once on
	// first Decrypt.  A bulk decryptSet of n elements would otherwise
	// pay n modular inversions for the same exponent.
	invOnce sync.Once
	inv     *group.Scalar
	invErr  error
}

// inverse returns the decryption scalar for backend b, caching it after
// the first call.  Safe for concurrent use.
func (k *Key) inverse(b group.Backend) (*group.Scalar, error) {
	k.invOnce.Do(func() {
		k.inv, k.invErr = b.InvertScalar(k.e)
	})
	return k.inv, k.invErr
}

// Exponent returns a copy of the key's secret scalar value.  It is
// exposed for serialization in tools; protocol code never needs it.
func (k *Key) Exponent() *big.Int { return k.e.Big() }

// Scheme is a commutative encryption over a fixed domain, in the sense
// of Definition 2 of the paper.  Implementations must be safe for
// concurrent use.
type Scheme interface {
	// Backend returns the underlying domain DomF (QR(p), or the
	// Curve25519 prime-order subgroup).
	Backend() group.Backend
	// GenerateKey draws a fresh uniform key from KeyF.  The randomness
	// source defaults to crypto/rand when nil.
	GenerateKey(r io.Reader) (*Key, error)
	// Encrypt computes f_e(x).  x must be a group element.
	Encrypt(k *Key, x *big.Int) (*big.Int, error)
	// Decrypt computes f_e^{-1}(y) (Property 3 of Definition 2).
	Decrypt(k *Key, y *big.Int) (*big.Int, error)
}

// PowerFn is the commutative-encryption scheme of Example 1 generalized
// over a backend: f_e = Apply(e, ·), the Pohlig-Hellman power function
// when the backend is QR(p) and hashed-to-curve scalar multiplication
// when it is the Curve25519 subgroup.
type PowerFn struct {
	b group.Backend
}

// NewPowerFn returns the scheme over backend b.
func NewPowerFn(b group.Backend) *PowerFn {
	return &PowerFn{b: b}
}

// Backend implements Scheme.
func (s *PowerFn) Backend() group.Backend { return s.b }

// GenerateKey implements Scheme: a uniform scalar from the backend's
// key space.
func (s *PowerFn) GenerateKey(r io.Reader) (*Key, error) {
	e, err := s.b.RandomScalar(r)
	if err != nil {
		return nil, err
	}
	return &Key{e: e}, nil
}

// KeyFromExponent wraps an explicit exponent as a Key, validating that
// it lies in the backend's key space.  Used by deterministic tests and
// key persistence.
func (s *PowerFn) KeyFromExponent(e *big.Int) (*Key, error) {
	sc, err := s.b.ScalarFromBig(e)
	if err != nil {
		return nil, errors.New("commutative: exponent outside key space")
	}
	return &Key{e: sc}, nil
}

// Encrypt implements Scheme: f_e(x), one C_e operation.
func (s *PowerFn) Encrypt(k *Key, x *big.Int) (*big.Int, error) {
	if k == nil || k.e == nil {
		return nil, ErrNilKey
	}
	return s.b.Apply(k.e, x)
}

// Decrypt implements Scheme: f_e^{-1}(y) = Apply(e⁻¹, y) (Property 3).
func (s *PowerFn) Decrypt(k *Key, y *big.Int) (*big.Int, error) {
	if k == nil || k.e == nil {
		return nil, ErrNilKey
	}
	inv, err := k.inverse(s.b)
	if err != nil {
		return nil, err
	}
	return s.b.Apply(inv, y)
}

// Counting wraps a Scheme and counts encryption and decryption calls.
// The experiment harness uses it to verify the operation-count formulas
// of Section 6.1 exactly (each call costs one C_e).
type Counting struct {
	inner Scheme

	encrypts atomic.Int64
	decrypts atomic.Int64
	keygens  atomic.Int64
}

// NewCounting wraps inner with operation counters.
func NewCounting(inner Scheme) *Counting {
	return &Counting{inner: inner}
}

// Backend implements Scheme.
func (c *Counting) Backend() group.Backend { return c.inner.Backend() }

// GenerateKey implements Scheme.
func (c *Counting) GenerateKey(r io.Reader) (*Key, error) {
	c.keygens.Add(1)
	return c.inner.GenerateKey(r)
}

// Encrypt implements Scheme.
func (c *Counting) Encrypt(k *Key, x *big.Int) (*big.Int, error) {
	c.encrypts.Add(1)
	return c.inner.Encrypt(k, x)
}

// Decrypt implements Scheme.
func (c *Counting) Decrypt(k *Key, y *big.Int) (*big.Int, error) {
	c.decrypts.Add(1)
	return c.inner.Decrypt(k, y)
}

// Encrypts returns the number of Encrypt calls so far.
func (c *Counting) Encrypts() int64 { return c.encrypts.Load() }

// Decrypts returns the number of Decrypt calls so far.
func (c *Counting) Decrypts() int64 { return c.decrypts.Load() }

// Ops returns encrypts + decrypts: the total number of C_e operations in
// the sense of the Section 6.1 cost model.
func (c *Counting) Ops() int64 { return c.Encrypts() + c.Decrypts() }

// Reset zeroes all counters.
func (c *Counting) Reset() {
	c.encrypts.Store(0)
	c.decrypts.Store(0)
	c.keygens.Store(0)
}
