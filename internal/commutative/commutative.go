// Package commutative implements the commutative encryption primitive of
// Section 3.2.1 of the paper (Definition 2) together with decorators used
// by the cost-analysis experiments.
//
// A commutative encryption F is a family of bijections f_e over a domain
// DomF such that f_e ∘ f_e' = f_e' ∘ f_e for all keys e, e', each f_e is
// invertible in polynomial time given e, and — under the Decisional
// Diffie-Hellman assumption — seeing (x, f_e(x)) does not help encrypting
// or decrypting any independent value (Property 4).
//
// The concrete scheme, Example 1 of the paper, is the Pohlig-Hellman
// power function over quadratic residues modulo a safe prime p:
//
//	f_e(x) = x^e mod p,   e ∈ [1, q-1],  q = (p-1)/2
//
// Powers commute, each f_e is a bijection on QR(p) with inverse
// f_{e^{-1} mod q}, and DDH over QR(p) gives Property 4.
package commutative

import (
	"errors"
	"io"
	"math/big"
	"sync"
	"sync/atomic"

	"minshare/internal/group"
)

// ErrNilKey is returned when an operation receives a nil key.
var ErrNilKey = errors.New("commutative: nil key")

// Key is a secret commutative-encryption key (an exponent in [1, q-1]).
// Keys are produced by a Scheme and must not be shared between groups of
// different moduli.
type Key struct {
	e *big.Int

	// Decryption inverse e⁻¹ mod q, computed once on first Decrypt.  A
	// bulk decryptSet of n elements would otherwise pay n modular
	// inversions for the same exponent.
	invOnce sync.Once
	inv     *big.Int
	invErr  error
}

// inverse returns e⁻¹ mod q for the group g, caching it after the first
// call.  Safe for concurrent use.
func (k *Key) inverse(g *group.Group) (*big.Int, error) {
	k.invOnce.Do(func() {
		k.inv, k.invErr = g.InvExponent(k.e)
	})
	return k.inv, k.invErr
}

// Exponent returns a copy of the key's secret exponent.  It is exposed
// for serialization in tools; protocol code never needs it.
func (k *Key) Exponent() *big.Int { return new(big.Int).Set(k.e) }

// Scheme is a commutative encryption over a fixed group, in the sense of
// Definition 2 of the paper.  Implementations must be safe for concurrent
// use.
type Scheme interface {
	// Group returns the underlying domain DomF = QR(p).
	Group() *group.Group
	// GenerateKey draws a fresh uniform key from KeyF.  The randomness
	// source defaults to crypto/rand when nil.
	GenerateKey(r io.Reader) (*Key, error)
	// Encrypt computes f_e(x).  x must be a group element.
	Encrypt(k *Key, x *big.Int) (*big.Int, error)
	// Decrypt computes f_e^{-1}(y) (Property 3 of Definition 2).
	Decrypt(k *Key, y *big.Int) (*big.Int, error)
}

// PowerFn is the Pohlig-Hellman power-function scheme of Example 1.
type PowerFn struct {
	g *group.Group
}

// NewPowerFn returns the power-function scheme over g.
func NewPowerFn(g *group.Group) *PowerFn {
	return &PowerFn{g: g}
}

// Group implements Scheme.
func (s *PowerFn) Group() *group.Group { return s.g }

// GenerateKey implements Scheme: a uniform exponent in [1, q-1].
func (s *PowerFn) GenerateKey(r io.Reader) (*Key, error) {
	e, err := s.g.RandomExponent(r)
	if err != nil {
		return nil, err
	}
	return &Key{e: e}, nil
}

// KeyFromExponent wraps an explicit exponent as a Key, validating that it
// lies in [1, q-1].  Used by deterministic tests and key persistence.
func (s *PowerFn) KeyFromExponent(e *big.Int) (*Key, error) {
	if e == nil || e.Sign() <= 0 || e.Cmp(s.g.Q()) >= 0 {
		return nil, errors.New("commutative: exponent outside [1, q-1]")
	}
	return &Key{e: new(big.Int).Set(e)}, nil
}

// Encrypt implements Scheme: f_e(x) = x^e mod p.
func (s *PowerFn) Encrypt(k *Key, x *big.Int) (*big.Int, error) {
	if k == nil || k.e == nil {
		return nil, ErrNilKey
	}
	if !s.g.Contains(x) {
		return nil, group.ErrNotInGroup
	}
	return s.g.Exp(x, k.e), nil
}

// Decrypt implements Scheme: f_e^{-1}(y) = y^{e^{-1} mod q} mod p.
func (s *PowerFn) Decrypt(k *Key, y *big.Int) (*big.Int, error) {
	if k == nil || k.e == nil {
		return nil, ErrNilKey
	}
	if !s.g.Contains(y) {
		return nil, group.ErrNotInGroup
	}
	inv, err := k.inverse(s.g)
	if err != nil {
		return nil, err
	}
	return s.g.Exp(y, inv), nil
}

// Counting wraps a Scheme and counts encryption and decryption calls.
// The experiment harness uses it to verify the operation-count formulas
// of Section 6.1 exactly (each call costs one C_e).
type Counting struct {
	inner Scheme

	encrypts atomic.Int64
	decrypts atomic.Int64
	keygens  atomic.Int64
}

// NewCounting wraps inner with operation counters.
func NewCounting(inner Scheme) *Counting {
	return &Counting{inner: inner}
}

// Group implements Scheme.
func (c *Counting) Group() *group.Group { return c.inner.Group() }

// GenerateKey implements Scheme.
func (c *Counting) GenerateKey(r io.Reader) (*Key, error) {
	c.keygens.Add(1)
	return c.inner.GenerateKey(r)
}

// Encrypt implements Scheme.
func (c *Counting) Encrypt(k *Key, x *big.Int) (*big.Int, error) {
	c.encrypts.Add(1)
	return c.inner.Encrypt(k, x)
}

// Decrypt implements Scheme.
func (c *Counting) Decrypt(k *Key, y *big.Int) (*big.Int, error) {
	c.decrypts.Add(1)
	return c.inner.Decrypt(k, y)
}

// Encrypts returns the number of Encrypt calls so far.
func (c *Counting) Encrypts() int64 { return c.encrypts.Load() }

// Decrypts returns the number of Decrypt calls so far.
func (c *Counting) Decrypts() int64 { return c.decrypts.Load() }

// Ops returns encrypts + decrypts: the total number of C_e operations in
// the sense of the Section 6.1 cost model.
func (c *Counting) Ops() int64 { return c.Encrypts() + c.Decrypts() }

// Reset zeroes all counters.
func (c *Counting) Reset() {
	c.encrypts.Store(0)
	c.decrypts.Store(0)
	c.keygens.Store(0)
}
