package commutative

import (
	"context"
	"errors"
	"math/big"
	"runtime"
	"sync/atomic"
	"testing"
	"time"
)

// TestMapAllParallelObservesCancellation: cancelling a bulk operation
// mid-flight must stop the parallel workers after at most one in-flight
// call each — not grind through the rest of the vector.  The probe f
// blocks every worker, the test cancels, releases them, and counts how
// many elements were actually processed.
func TestMapAllParallelObservesCancellation(t *testing.T) {
	const parallelism, n = 4, 64
	xs := make([]*big.Int, n)
	for i := range xs {
		xs[i] = big.NewInt(int64(i))
	}

	var calls atomic.Int64
	gate := make(chan struct{})
	f := func(x *big.Int) (*big.Int, error) {
		calls.Add(1)
		<-gate
		return x, nil
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	done := make(chan error, 1)
	go func() {
		_, err := mapAll(ctx, xs, parallelism, 0, f)
		done <- err
	}()

	// Wait until every worker is parked inside f.
	deadline := time.Now().Add(5 * time.Second)
	for calls.Load() < parallelism {
		if time.Now().After(deadline) {
			t.Fatalf("only %d/%d workers entered f", calls.Load(), parallelism)
		}
		time.Sleep(time.Millisecond)
	}

	cancel()
	close(gate) // release the blocked workers

	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("err = %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("mapAll still running 5s after cancellation")
	}
	if got := calls.Load(); got > parallelism {
		t.Errorf("workers processed %d elements after cancellation, want at most %d (one in-flight each)", got, parallelism)
	}
}

// TestMapAllSerialObservesCancellation: the serial path (parallelism 1)
// keeps its per-element check.
func TestMapAllSerialObservesCancellation(t *testing.T) {
	xs := make([]*big.Int, 8)
	for i := range xs {
		xs[i] = big.NewInt(int64(i))
	}
	ctx, cancel := context.WithCancel(context.Background())
	var calls int
	_, err := mapAll(ctx, xs, 1, 0, func(x *big.Int) (*big.Int, error) {
		calls++
		if calls == 2 {
			cancel()
		}
		return x, nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if calls != 2 {
		t.Errorf("f ran %d times after mid-run cancel, want 2", calls)
	}
}

// TestMapAllDefaultsToGOMAXPROCS pins the documented parallelism
// contract: parallelism <= 0 must select runtime.GOMAXPROCS(0) workers
// at call time.  The probe f parks every worker on a gate, so the
// number of concurrent entries is exactly the worker count; the test
// raises GOMAXPROCS so the default is distinguishable from serial
// execution even on a single-CPU machine.
func TestMapAllDefaultsToGOMAXPROCS(t *testing.T) {
	const want = 4
	old := runtime.GOMAXPROCS(want)
	defer runtime.GOMAXPROCS(old)

	xs := make([]*big.Int, 32)
	for i := range xs {
		xs[i] = big.NewInt(int64(i))
	}
	var entered atomic.Int64
	gate := make(chan struct{})
	done := make(chan error, 1)
	go func() {
		_, err := mapAll(context.Background(), xs, 0, 0, func(x *big.Int) (*big.Int, error) {
			entered.Add(1)
			<-gate
			return x, nil
		})
		done <- err
	}()

	deadline := time.Now().Add(5 * time.Second)
	for entered.Load() < want {
		if time.Now().After(deadline) {
			t.Fatalf("parallelism 0 started %d concurrent workers, want GOMAXPROCS = %d", entered.Load(), want)
		}
		time.Sleep(time.Millisecond)
	}
	close(gate)
	if err := <-done; err != nil {
		t.Fatal(err)
	}

	// The other half of the contract: the worker count is capped at
	// len(xs), so a huge request on a tiny vector must not park more
	// than len(xs) workers inside f at once.
	entered.Store(0)
	var peak atomic.Int64
	out, err := mapAll(context.Background(), xs[:3], 64, 0, func(x *big.Int) (*big.Int, error) {
		if n := entered.Add(1); n > peak.Load() {
			peak.Store(n)
		}
		defer entered.Add(-1)
		return x, nil
	})
	if err != nil || len(out) != 3 {
		t.Fatalf("capped run: out=%v err=%v", out, err)
	}
	if peak.Load() > 3 {
		t.Errorf("parallelism 64 over 3 elements reached %d concurrent workers, want <= 3", peak.Load())
	}
}

// TestMapAllCompletesWithoutCancellation guards the happy path after the
// cancellation checks were added: all elements map, in order.
func TestMapAllCompletesWithoutCancellation(t *testing.T) {
	const n = 100
	xs := make([]*big.Int, n)
	for i := range xs {
		xs[i] = big.NewInt(int64(i))
	}
	out, err := mapAll(context.Background(), xs, 4, 0, func(x *big.Int) (*big.Int, error) {
		return new(big.Int).Add(x, big.NewInt(1000)), nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, y := range out {
		if y.Int64() != int64(i+1000) {
			t.Fatalf("out[%d] = %v", i, y)
		}
	}
}
