package commutative

import (
	"context"
	"errors"
	"math/big"
	"math/rand"
	"testing"
	"testing/quick"

	"minshare/internal/group"
)

func testScheme(t testing.TB) *PowerFn {
	t.Helper()
	return NewPowerFn(group.TestGroup())
}

// qr recovers the concrete safe-prime group behind a scheme's backend so
// tests can sample random elements from it.
func qr(t testing.TB, s Scheme) *group.Group {
	t.Helper()
	g, ok := s.Backend().(*group.Group)
	if !ok {
		t.Fatalf("test scheme backend is %T, want *group.Group", s.Backend())
	}
	return g
}

// TestCommutativity checks Property 1 of Definition 2: f_e ∘ f_e' = f_e' ∘ f_e.
func TestCommutativity(t *testing.T) {
	s := testScheme(t)
	rng := rand.New(rand.NewSource(1))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		x, _ := qr(t, s).RandomElement(r)
		k1, _ := s.GenerateKey(r)
		k2, _ := s.GenerateKey(r)
		a1, err1 := s.Encrypt(k1, x)
		a12, err2 := s.Encrypt(k2, a1)
		b2, err3 := s.Encrypt(k2, x)
		b21, err4 := s.Encrypt(k1, b2)
		return err1 == nil && err2 == nil && err3 == nil && err4 == nil &&
			a12.Cmp(b21) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25, Rand: rng}); err != nil {
		t.Error(err)
	}
}

// TestBijectionExhaustive checks Property 2 on a small group exhaustively:
// every f_e is a bijection of QR(p).
func TestBijectionExhaustive(t *testing.T) {
	g := group.MustNew(big.NewInt(23)) // |QR(23)| = 11, q = 11
	s := NewPowerFn(g)
	var elems []*big.Int
	for x := int64(1); x < 23; x++ {
		if v := big.NewInt(x); g.Contains(v) {
			elems = append(elems, v)
		}
	}
	for e := int64(1); e < 11; e++ {
		k, err := s.KeyFromExponent(big.NewInt(e))
		if err != nil {
			t.Fatal(err)
		}
		seen := map[string]bool{}
		for _, x := range elems {
			y, err := s.Encrypt(k, x)
			if err != nil {
				t.Fatal(err)
			}
			if !g.Contains(y) {
				t.Fatalf("f_%d(%v) = %v escaped the group", e, x, y)
			}
			if seen[y.String()] {
				t.Fatalf("f_%d is not injective: duplicate image %v", e, y)
			}
			seen[y.String()] = true
		}
		if len(seen) != len(elems) {
			t.Fatalf("f_%d image size %d, want %d", e, len(seen), len(elems))
		}
	}
}

// TestDecryptInverts checks Property 3: f_e^{-1}(f_e(x)) = x.
func TestDecryptInverts(t *testing.T) {
	s := testScheme(t)
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 10; i++ {
		x, _ := qr(t, s).RandomElement(rng)
		k, _ := s.GenerateKey(rng)
		y, err := s.Encrypt(k, x)
		if err != nil {
			t.Fatal(err)
		}
		back, err := s.Decrypt(k, y)
		if err != nil {
			t.Fatal(err)
		}
		if back.Cmp(x) != 0 {
			t.Fatalf("Decrypt(Encrypt(x)) = %v, want %v", back, x)
		}
	}
}

// TestEncryptDecryptOrderIrrelevant verifies the identity the equijoin
// protocol relies on (Section 4.1): R can strip its own layer from a
// doubly-encrypted value, f_eR^{-1}(f_e'S(f_eR(h))) = f_e'S(h).
func TestEncryptDecryptOrderIrrelevant(t *testing.T) {
	s := testScheme(t)
	rng := rand.New(rand.NewSource(3))
	x, _ := qr(t, s).RandomElement(rng)
	kR, _ := s.GenerateKey(rng)
	kS, _ := s.GenerateKey(rng)

	yR, _ := s.Encrypt(kR, x)
	ySR, _ := s.Encrypt(kS, yR)
	stripped, err := s.Decrypt(kR, ySR)
	if err != nil {
		t.Fatal(err)
	}
	direct, _ := s.Encrypt(kS, x)
	if stripped.Cmp(direct) != 0 {
		t.Fatal("f_eR^-1(f_eS(f_eR(x))) != f_eS(x)")
	}
}

func TestEncryptRejectsNonMembers(t *testing.T) {
	s := testScheme(t)
	k, _ := s.GenerateKey(rand.New(rand.NewSource(4)))
	bad := []*big.Int{nil, big.NewInt(0), big.NewInt(-5), qr(t, s).P()}
	for _, x := range bad {
		if _, err := s.Encrypt(k, x); !errors.Is(err, group.ErrNotInGroup) {
			t.Errorf("Encrypt(%v) error = %v, want ErrNotInGroup", x, err)
		}
		if _, err := s.Decrypt(k, x); !errors.Is(err, group.ErrNotInGroup) {
			t.Errorf("Decrypt(%v) error = %v, want ErrNotInGroup", x, err)
		}
	}
}

func TestNilKey(t *testing.T) {
	s := testScheme(t)
	x, _ := qr(t, s).RandomElement(rand.New(rand.NewSource(5)))
	if _, err := s.Encrypt(nil, x); !errors.Is(err, ErrNilKey) {
		t.Errorf("Encrypt(nil key) error = %v, want ErrNilKey", err)
	}
	if _, err := s.Decrypt(nil, x); !errors.Is(err, ErrNilKey) {
		t.Errorf("Decrypt(nil key) error = %v, want ErrNilKey", err)
	}
}

func TestKeyFromExponentValidation(t *testing.T) {
	s := testScheme(t)
	for _, e := range []*big.Int{nil, big.NewInt(0), big.NewInt(-1), qr(t, s).Q()} {
		if _, err := s.KeyFromExponent(e); err == nil {
			t.Errorf("KeyFromExponent(%v) accepted invalid exponent", e)
		}
	}
	k, err := s.KeyFromExponent(big.NewInt(12345))
	if err != nil {
		t.Fatal(err)
	}
	if k.Exponent().Int64() != 12345 {
		t.Error("Exponent() round trip failed")
	}
}

func TestCountingCounts(t *testing.T) {
	s := testScheme(t)
	c := NewCounting(s)
	rng := rand.New(rand.NewSource(6))
	k, _ := c.GenerateKey(rng)
	x, _ := qr(t, c).RandomElement(rng)
	for i := 0; i < 3; i++ {
		y, err := c.Encrypt(k, x)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := c.Decrypt(k, y); err != nil {
			t.Fatal(err)
		}
	}
	if c.Encrypts() != 3 || c.Decrypts() != 3 || c.Ops() != 6 {
		t.Errorf("counts = %d/%d/%d, want 3/3/6", c.Encrypts(), c.Decrypts(), c.Ops())
	}
	c.Reset()
	if c.Ops() != 0 {
		t.Error("Reset did not zero counters")
	}
}

func TestEncryptAllMatchesSequential(t *testing.T) {
	s := testScheme(t)
	rng := rand.New(rand.NewSource(7))
	k, _ := s.GenerateKey(rng)
	xs := make([]*big.Int, 37)
	for i := range xs {
		xs[i], _ = qr(t, s).RandomElement(rng)
	}
	for _, par := range []int{0, 1, 2, 4, 8} {
		got, err := EncryptAll(context.Background(), s, k, xs, par)
		if err != nil {
			t.Fatalf("parallelism %d: %v", par, err)
		}
		for i := range xs {
			want, _ := s.Encrypt(k, xs[i])
			if got[i].Cmp(want) != 0 {
				t.Fatalf("parallelism %d: element %d mismatch", par, i)
			}
		}
	}
}

func TestDecryptAllInvertsEncryptAll(t *testing.T) {
	s := testScheme(t)
	rng := rand.New(rand.NewSource(8))
	k, _ := s.GenerateKey(rng)
	xs := make([]*big.Int, 9)
	for i := range xs {
		xs[i], _ = qr(t, s).RandomElement(rng)
	}
	ys, err := EncryptAll(context.Background(), s, k, xs, 3)
	if err != nil {
		t.Fatal(err)
	}
	back, err := DecryptAll(context.Background(), s, k, ys, 3)
	if err != nil {
		t.Fatal(err)
	}
	for i := range xs {
		if back[i].Cmp(xs[i]) != 0 {
			t.Fatalf("element %d did not round-trip", i)
		}
	}
}

func TestEncryptAllPropagatesErrors(t *testing.T) {
	s := testScheme(t)
	rng := rand.New(rand.NewSource(9))
	k, _ := s.GenerateKey(rng)
	xs := make([]*big.Int, 20)
	for i := range xs {
		xs[i], _ = qr(t, s).RandomElement(rng)
	}
	xs[13] = big.NewInt(0) // not a group member
	for _, par := range []int{1, 4} {
		if _, err := EncryptAll(context.Background(), s, k, xs, par); err == nil {
			t.Errorf("parallelism %d: error not propagated", par)
		}
	}
}

func TestEncryptAllAllFailures(t *testing.T) {
	// Every element invalid: the feeder must not deadlock when all
	// workers exit early.
	s := testScheme(t)
	k, _ := s.GenerateKey(rand.New(rand.NewSource(10)))
	xs := make([]*big.Int, 64)
	for i := range xs {
		xs[i] = big.NewInt(0)
	}
	if _, err := EncryptAll(context.Background(), s, k, xs, 4); err == nil {
		t.Error("expected error")
	}
}

func TestEncryptAllCancelled(t *testing.T) {
	s := testScheme(t)
	rng := rand.New(rand.NewSource(11))
	k, _ := s.GenerateKey(rng)
	xs := make([]*big.Int, 50)
	for i := range xs {
		xs[i], _ = qr(t, s).RandomElement(rng)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := EncryptAll(ctx, s, k, xs, 2); err == nil {
		t.Error("cancelled context not honoured")
	}
	if _, err := EncryptAll(ctx, s, k, xs, 1); err == nil {
		t.Error("cancelled context not honoured sequentially")
	}
}

func TestEncryptAllEmpty(t *testing.T) {
	s := testScheme(t)
	k, _ := s.GenerateKey(rand.New(rand.NewSource(12)))
	out, err := EncryptAll(context.Background(), s, k, nil, 4)
	if err != nil || len(out) != 0 {
		t.Errorf("empty input: out=%v err=%v", out, err)
	}
}
