package commutative

import (
	"context"
	"fmt"
	"math/big"
	"sort"
)

// CachedSet is a value set encrypted under a pinned key and reordered
// lexicographically — the precomputed output of the bulk-exponentiation
// phase every sender-side protocol run begins with.  The paper's cost
// analysis (Section 6.1) shows that phase dominates a run, yet a party
// serving a series of queries over an unchanged database recomputes it
// from the same inputs every session; a CachedSet built once can be
// replayed instead, in both the legacy one-shot and the chunked
// streaming wire modes (a stream chunk is a subslice of the sorted
// vector, so the chunking is precomputed along with the permutation).
//
// The pinned key is part of the cached state on purpose: replaying the
// set is only sound under the exponent it was encrypted with.  Callers
// are responsible for never sharing one CachedSet — and hence one
// exponent — across peers; see core.SenderSetCache for the keying
// discipline that enforces this.
//
// The slices returned by Elems and Payload are shared with the cache,
// not copied: treat them as read-only.
type CachedSet struct {
	key     *Key
	elems   []*big.Int
	payload [][]byte
	memory  int64
}

// NewCachedSet encrypts every element of xs under k (with up to
// parallelism workers, as EncryptAll) and stores the results sorted.
// This is the miss path of a set cache: one full bulk-exponentiation
// phase, amortized over every later replay.
func NewCachedSet(ctx context.Context, s Scheme, k *Key, xs []*big.Int, parallelism int) (*CachedSet, error) {
	ys, err := EncryptAll(ctx, s, k, xs, parallelism)
	if err != nil {
		return nil, err
	}
	sort.Slice(ys, func(i, j int) bool { return ys[i].Cmp(ys[j]) < 0 })
	return CachedSetFromSorted(k, ys, nil)
}

// CachedSetFromSorted wraps an already-encrypted, already-sorted vector
// (and an optional payload vector aligned with it, the equijoin's
// per-value ciphertexts) without re-encrypting.  It is the constructor
// for callers whose precomputation involves more than one key — the
// equijoin sender derives its payload ciphertexts from a second
// exponent — and therefore cannot delegate the whole phase to
// NewCachedSet.
func CachedSetFromSorted(k *Key, elems []*big.Int, payload [][]byte) (*CachedSet, error) {
	if payload != nil && len(payload) != len(elems) {
		return nil, fmt.Errorf("commutative: cached set has %d elements but %d payloads", len(elems), len(payload))
	}
	c := &CachedSet{key: k, elems: elems, payload: payload}
	c.memory = c.estimateMemory()
	return c, nil
}

// Key returns the pinned key the set was encrypted under.
func (c *CachedSet) Key() *Key { return c.key }

// Elems returns the encrypted elements in sorted (permuted) order.
func (c *CachedSet) Elems() []*big.Int { return c.elems }

// Payload returns the aligned payload vector, or nil if none was cached.
func (c *CachedSet) Payload() [][]byte { return c.payload }

// Len returns the number of cached elements.
func (c *CachedSet) Len() int { return len(c.elems) }

// MemoryBytes estimates the heap footprint of the cached state.  It is
// an accounting figure for bounded-memory caches, not an exact
// measurement: each element is charged the word-aligned width of its
// backing storage plus fixed big.Int overhead, each payload its length
// plus slice-header overhead.
func (c *CachedSet) MemoryBytes() int64 { return c.memory }

const (
	// Approximate per-value heap overheads on a 64-bit platform: a
	// big.Int header plus its word slice, and a byte-slice header.
	bigIntOverhead = 48
	sliceOverhead  = 24
)

// elemStorageBytes is the heap charge for one element container: the
// word-aligned size of its big.Int backing array.  big.Int allocates
// whole 64-bit words, so a 32-byte EC point encoding occupies four
// words (32 bytes) even when its top byte — and hence its bit length —
// is small; charging bitLen/8, as an earlier version did, undercounted
// every element whose encoding starts with zero or near-zero bytes.
func elemStorageBytes(e *big.Int) int64 {
	return int64((e.BitLen()+63)/64) * 8
}

func (c *CachedSet) estimateMemory() int64 {
	total := int64(bigIntOverhead) // the key's exponent
	if c.key != nil && c.key.e != nil {
		total += elemStorageBytes(c.key.e.Big())
	}
	for _, e := range c.elems {
		total += elemStorageBytes(e) + bigIntOverhead
	}
	for _, p := range c.payload {
		total += int64(len(p)) + sliceOverhead
	}
	return total
}
