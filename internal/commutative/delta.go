package commutative

import (
	"context"
	"errors"
	"fmt"
	"math/big"
	"sort"
)

// ErrDeltaConflict reports a delta that disagrees with the cached set —
// a deletion of an element not present, an update of an absent value, or
// an insertion already present.  It means the caller's change report and
// the cached state have diverged; the only sound recovery is a full
// rebuild under a fresh encryption of the current set.
var ErrDeltaConflict = errors.New("commutative: delta conflicts with cached set")

// CipherDelta is the ciphertext-space image of one ApplyDelta call: the
// encrypted values it added, replaced, and removed, each vector sorted
// (the paper's footnote-3 discipline — shipping a delta in value order
// would leak which value changed first).  The standing-query push path
// sends exactly these vectors to a subscribed receiver, so the C_e spent
// re-encrypting the churn is paid once for both cache maintenance and
// the wire update.
type CipherDelta struct {
	// Inserted holds f_e(h(v)) for values newly present, sorted, with
	// InsertedPayload the aligned payload ciphertexts (nil when the set
	// carries no payloads).
	Inserted        []*big.Int
	InsertedPayload [][]byte
	// Updated holds f_e(h(v)) for values present throughout whose
	// payload was replaced, sorted, with the new payloads aligned.
	Updated        []*big.Int
	UpdatedPayload [][]byte
	// Deleted holds f_e(h(v)) for values no longer present, sorted.
	Deleted []*big.Int
}

// Upserts returns the insert and update vectors merged into one sorted
// vector with aligned payloads — the shape the subscription wire message
// carries (a receiver treats both identically: store the pair).
func (d *CipherDelta) Upserts() ([]*big.Int, [][]byte) {
	n := len(d.Inserted) + len(d.Updated)
	elems := make([]*big.Int, 0, n)
	var payload [][]byte
	if d.InsertedPayload != nil || d.UpdatedPayload != nil {
		payload = make([][]byte, 0, n)
	}
	i, j := 0, 0
	for i < len(d.Inserted) || j < len(d.Updated) {
		takeIns := j >= len(d.Updated) ||
			(i < len(d.Inserted) && d.Inserted[i].Cmp(d.Updated[j]) < 0)
		if takeIns {
			elems = append(elems, d.Inserted[i])
			if payload != nil {
				payload = append(payload, d.InsertedPayload[i])
			}
			i++
		} else {
			elems = append(elems, d.Updated[j])
			if payload != nil {
				payload = append(payload, d.UpdatedPayload[j])
			}
			j++
		}
	}
	return elems, payload
}

// ApplyDelta re-encrypts only the changed plaintext values under the
// set's pinned key and returns a new CachedSet holding the updated
// sorted representation, plus the ciphertext-space delta.  ins, upd and
// del are hashed plaintext values (the h(v) the set was built from):
// inserted values must be absent from the set, updated and deleted
// values present — any disagreement returns ErrDeltaConflict and the
// caller falls back to a full rebuild.  When the set carries payloads,
// insPayload and updPayload supply the new payload ciphertexts aligned
// with ins and upd; payload-less sets must pass upd empty (an update
// with nothing to replace is meaningless).
//
// The receiver is not mutated: in-flight protocol runs replaying the old
// set keep a consistent view, and the C_e cost is exactly
// len(ins)+len(upd)+len(del) — O(churn), not O(|V|).
func (c *CachedSet) ApplyDelta(ctx context.Context, s Scheme, ins, upd, del []*big.Int, insPayload, updPayload [][]byte, parallelism int) (*CachedSet, *CipherDelta, error) {
	if c.payload == nil {
		if insPayload != nil || updPayload != nil {
			return nil, nil, fmt.Errorf("commutative: payload delta against a payload-less cached set")
		}
		if len(upd) > 0 {
			return nil, nil, fmt.Errorf("commutative: update delta against a payload-less cached set")
		}
	} else {
		if len(insPayload) != len(ins) || len(updPayload) != len(upd) {
			return nil, nil, fmt.Errorf("commutative: delta payloads misaligned: %d/%d inserts, %d/%d updates",
				len(insPayload), len(ins), len(updPayload), len(upd))
		}
	}

	encIns, err := EncryptAll(ctx, s, c.key, ins, parallelism)
	if err != nil {
		return nil, nil, err
	}
	encUpd, err := EncryptAll(ctx, s, c.key, upd, parallelism)
	if err != nil {
		return nil, nil, err
	}
	encDel, err := EncryptAll(ctx, s, c.key, del, parallelism)
	if err != nil {
		return nil, nil, err
	}
	delta := &CipherDelta{
		Inserted: encIns, InsertedPayload: append([][]byte(nil), insPayload...),
		Updated: encUpd, UpdatedPayload: append([][]byte(nil), updPayload...),
		Deleted: encDel,
	}
	sortAligned(delta.Inserted, delta.InsertedPayload)
	sortAligned(delta.Updated, delta.UpdatedPayload)
	sortAligned(delta.Deleted, nil)

	// Resolve deletions and updates against the sorted vector.
	removed := make(map[int]bool, len(delta.Deleted))
	for _, y := range delta.Deleted {
		i, ok := c.find(y)
		if !ok || removed[i] {
			return nil, nil, fmt.Errorf("%w: deleted element not in set", ErrDeltaConflict)
		}
		removed[i] = true
	}
	replaced := make(map[int][]byte, len(delta.Updated))
	for j, y := range delta.Updated {
		i, ok := c.find(y)
		if !ok || removed[i] {
			return nil, nil, fmt.Errorf("%w: updated element not in set", ErrDeltaConflict)
		}
		replaced[i] = delta.UpdatedPayload[j]
	}
	for j, y := range delta.Inserted {
		if j > 0 && y.Cmp(delta.Inserted[j-1]) == 0 {
			return nil, nil, fmt.Errorf("%w: duplicate inserted element", ErrDeltaConflict)
		}
		if i, ok := c.find(y); ok && !removed[i] {
			return nil, nil, fmt.Errorf("%w: inserted element already in set", ErrDeltaConflict)
		}
	}

	// Rebuild the sorted vector: survivors (with replacements applied)
	// merged with the sorted insertions.
	n := len(c.elems) - len(removed) + len(delta.Inserted)
	elems := make([]*big.Int, 0, n)
	var payload [][]byte
	if c.payload != nil {
		payload = make([][]byte, 0, n)
	}
	ii := 0 // next insertion
	emitIns := func(limit *big.Int) {
		for ii < len(delta.Inserted) && (limit == nil || delta.Inserted[ii].Cmp(limit) < 0) {
			elems = append(elems, delta.Inserted[ii])
			if payload != nil {
				payload = append(payload, delta.InsertedPayload[ii])
			}
			ii++
		}
	}
	for i, e := range c.elems {
		if removed[i] {
			continue
		}
		emitIns(e)
		elems = append(elems, e)
		if payload != nil {
			if p, ok := replaced[i]; ok {
				payload = append(payload, p)
			} else {
				payload = append(payload, c.payload[i])
			}
		}
	}
	emitIns(nil)

	next, err := CachedSetFromSorted(c.key, elems, payload)
	if err != nil {
		return nil, nil, err
	}
	return next, delta, nil
}

// find locates y in the sorted element vector.
func (c *CachedSet) find(y *big.Int) (int, bool) {
	i := sort.Search(len(c.elems), func(j int) bool { return c.elems[j].Cmp(y) >= 0 })
	if i < len(c.elems) && c.elems[i].Cmp(y) == 0 {
		return i, true
	}
	return i, false
}

// sortAligned sorts elems ascending, permuting the aligned payload
// vector (when present) identically.
func sortAligned(elems []*big.Int, payload [][]byte) {
	if payload == nil {
		sort.Slice(elems, func(i, j int) bool { return elems[i].Cmp(elems[j]) < 0 })
		return
	}
	idx := make([]int, len(elems))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return elems[idx[a]].Cmp(elems[idx[b]]) < 0 })
	se := make([]*big.Int, len(elems))
	sp := make([][]byte, len(payload))
	for to, from := range idx {
		se[to] = elems[from]
		sp[to] = payload[from]
	}
	copy(elems, se)
	copy(payload, sp)
}
