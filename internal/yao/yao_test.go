package yao

import (
	"context"
	"math/rand"
	"testing"

	"minshare/internal/transport"
)

func runYao(t *testing.T, w int, sVals, rVals []uint64) *Result {
	t.Helper()
	ctx := context.Background()
	connG, connE := transport.Pipe()
	defer connG.Close()

	cfgG := Config{Width: w, Rand: rand.New(rand.NewSource(1))}
	cfgE := Config{Width: w, Rand: rand.New(rand.NewSource(2))}

	errCh := make(chan error, 1)
	go func() {
		errCh <- RunGarbler(ctx, cfgG, connG, sVals)
	}()
	res, err := RunEvaluator(ctx, cfgE, connE, rVals)
	if err != nil {
		t.Fatalf("evaluator: %v", err)
	}
	if err := <-errCh; err != nil {
		t.Fatalf("garbler: %v", err)
	}
	return res
}

func TestYaoPSIBasic(t *testing.T) {
	res := runYao(t, 8, []uint64{3, 77, 150}, []uint64{77, 4, 150, 9})
	want := []bool{true, false, true, false}
	if len(res.Members) != len(want) {
		t.Fatalf("members = %d", len(res.Members))
	}
	for i := range want {
		if res.Members[i] != want[i] {
			t.Errorf("member[%d] = %v, want %v", i, res.Members[i], want[i])
		}
	}
	if res.Gates <= 0 || res.TableBytes <= 0 {
		t.Errorf("metrics: gates=%d tableBytes=%d", res.Gates, res.TableBytes)
	}
}

func TestYaoPSIDisjointAndIdentical(t *testing.T) {
	res := runYao(t, 8, []uint64{1, 2, 3}, []uint64{4, 5, 6})
	for i, m := range res.Members {
		if m {
			t.Errorf("disjoint: member[%d] = true", i)
		}
	}
	res = runYao(t, 8, []uint64{7, 8}, []uint64{7, 8})
	for i, m := range res.Members {
		if !m {
			t.Errorf("identical: member[%d] = false", i)
		}
	}
}

func TestYaoPSIMatchesPlaintextRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 5; trial++ {
		w := 4 + rng.Intn(5)
		nS := 1 + rng.Intn(4)
		nR := 1 + rng.Intn(4)
		sVals := make([]uint64, nS)
		rVals := make([]uint64, nR)
		for i := range sVals {
			sVals[i] = uint64(rng.Intn(1 << w))
		}
		for i := range rVals {
			rVals[i] = uint64(rng.Intn(1 << w))
		}
		res := runYao(t, w, sVals, rVals)
		inS := map[uint64]bool{}
		for _, v := range sVals {
			inS[v] = true
		}
		for i, v := range rVals {
			if res.Members[i] != inS[v] {
				t.Errorf("trial %d: member[%d] (value %d) = %v, want %v",
					trial, i, v, res.Members[i], inS[v])
			}
		}
	}
}

func TestYaoWidthMismatch(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	connG, connE := transport.Pipe()
	defer connG.Close()

	errCh := make(chan error, 1)
	go func() {
		err := RunGarbler(ctx, Config{Width: 16, Rand: rand.New(rand.NewSource(1))}, connG, []uint64{1})
		errCh <- err
	}()
	_, err := RunEvaluator(ctx, Config{Width: 8, Rand: rand.New(rand.NewSource(2))}, connE, []uint64{1})
	if err == nil {
		t.Fatal("width mismatch accepted")
	}
	cancel()
	<-errCh
}

func TestYaoValueRangeChecked(t *testing.T) {
	cfg := Config{Width: 4}
	if err := RunGarbler(context.Background(), cfg, nil, []uint64{16}); err == nil {
		t.Error("out-of-range garbler value accepted")
	}
	if _, err := RunEvaluator(context.Background(), cfg, nil, []uint64{99}); err == nil {
		t.Error("out-of-range evaluator value accepted")
	}
}

func TestYaoConfigValidation(t *testing.T) {
	if err := RunGarbler(context.Background(), Config{Width: 0}, nil, nil); err == nil {
		t.Error("width 0 accepted")
	}
	if _, err := RunEvaluator(context.Background(), Config{Width: 65}, nil, nil); err == nil {
		t.Error("width 65 accepted")
	}
}

func TestYaoEmptyReceiverSet(t *testing.T) {
	res := runYao(t, 8, []uint64{1, 2}, nil)
	if len(res.Members) != 0 {
		t.Errorf("empty R set produced %d members", len(res.Members))
	}
}

func TestYaoCommunicationDominatedByTables(t *testing.T) {
	// Meter the evaluator's traffic: the garbled tables must dominate —
	// the structural fact behind Appendix A.2's conclusion.
	ctx := context.Background()
	connG, connE := transport.Pipe()
	defer connG.Close()
	meter := transport.NewMeter(connE)

	sVals := []uint64{1, 2, 3, 4, 5, 6, 7, 8}
	rVals := []uint64{2, 4, 9, 11}
	errCh := make(chan error, 1)
	go func() {
		errCh <- RunGarbler(ctx, Config{Width: 16, Rand: rand.New(rand.NewSource(3))}, connG, sVals)
	}()
	res, err := RunEvaluator(ctx, Config{Width: 16, Rand: rand.New(rand.NewSource(4))}, meter, rVals)
	if err != nil {
		t.Fatal(err)
	}
	if err := <-errCh; err != nil {
		t.Fatal(err)
	}
	if int64(res.TableBytes) < meter.BytesRecv()/2 {
		t.Errorf("tables (%d bytes) are not the dominant share of received traffic (%d bytes)",
			res.TableBytes, meter.BytesRecv())
	}
	t.Logf("yao PSI n_S=%d n_R=%d w=16: %d gates, %d table bytes, %d total received",
		len(sVals), len(rVals), res.Gates, res.TableBytes, meter.BytesRecv())
}
