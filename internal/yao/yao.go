// Package yao runs the complete Appendix A baseline end to end: a
// two-party private set intersection built from the boolean circuit
// (package circuit), garbling (package garble) and oblivious transfer
// (package ot), over the same transport the main protocols use.
//
// The protocol is the semi-honest variant the appendix describes:
//
//	Coding R's input:  for each bit of R's values, R engages with S in
//	                   a 1-out-of-2 oblivious transfer and receives the
//	                   wire label for that bit.
//	Computing the circuit: S garbles the brute-force intersection
//	                   circuit with its own input labels fixed
//	                   ("hardwired"), ships the tables, and R evaluates
//	                   gate by gate.
//
// The output — one bit per R value, telling whether it appears in S's
// set — goes to R, mirroring the receiver role of the main protocols.
// Running this for small n and metering it validates the appendix's
// claim empirically: the circuit approach's communication (tables +
// OTs) dwarfs the commutative-encryption protocol's.
package yao

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math/big"

	"minshare/internal/circuit"
	"minshare/internal/garble"
	"minshare/internal/group"
	"minshare/internal/ot"
	"minshare/internal/transport"
)

// Config parameterizes a Yao PSI session.
type Config struct {
	// Group hosts the oblivious transfers; defaults to group.TestGroup()
	// — OT security needs far fewer bits than the PSI protocols' C_e
	// costs, and Appendix A's k1 = 100-bit keys point at a small group.
	Group *group.Group
	// Width is the bit width w of the set values (the paper uses w=32).
	Width int
	// Rand is the randomness source (nil = crypto/rand).
	Rand io.Reader
}

func (c Config) normalized() (Config, error) {
	if c.Group == nil {
		c.Group = group.TestGroup()
	}
	if c.Width <= 0 || c.Width > 64 {
		return c, fmt.Errorf("yao: width %d out of range [1,64]", c.Width)
	}
	return c, nil
}

// Result is what the evaluator (party R) learns.
type Result struct {
	// Members[i] tells whether values[i] occurs in the garbler's set.
	Members []bool
	// Gates and TableBytes report the circuit size actually shipped —
	// the quantities Appendix A's tables bound.
	Gates      int
	TableBytes int
}

// ErrBadFrame reports a malformed peer message.
var ErrBadFrame = errors.New("yao: malformed frame")

// RunGarbler executes party S: build the brute-force intersection
// circuit over both set sizes, garble it, ship tables + own labels, and
// answer one batched OT round for R's input labels.
func RunGarbler(ctx context.Context, cfg Config, conn transport.Conn, values []uint64) error {
	cfg, err := cfg.normalized()
	if err != nil {
		return err
	}
	w := cfg.Width
	if err := checkValues(values, w); err != nil {
		return err
	}

	// Parameter exchange: R announces nR, S answers (nS, w).
	frame, err := conn.Recv(ctx)
	if err != nil {
		return fmt.Errorf("yao: receiving params: %w", err)
	}
	if len(frame) != 8 {
		return fmt.Errorf("%w: params frame of %d bytes", ErrBadFrame, len(frame))
	}
	nR := int(binary.BigEndian.Uint64(frame))
	const maxSet = 1 << 16
	if nR < 0 || nR > maxSet {
		return fmt.Errorf("%w: nR = %d", ErrBadFrame, nR)
	}
	var params [16]byte
	binary.BigEndian.PutUint64(params[:8], uint64(len(values)))
	binary.BigEndian.PutUint64(params[8:], uint64(w))
	if err := conn.Send(ctx, params[:]); err != nil {
		return fmt.Errorf("yao: sending params: %w", err)
	}

	// Build and garble the circuit; hardwire S's input bits.
	c := circuit.BruteForceIntersection(w, len(values), nR)
	gc, err := garble.Garble(c, cfg.Rand)
	if err != nil {
		return err
	}
	gBits := circuit.FlattenValues(values, w)
	gLabels, err := gc.GarblerInputLabeled(gBits)
	if err != nil {
		return err
	}
	if err := conn.Send(ctx, encodeGarbled(gc, gLabels)); err != nil {
		return fmt.Errorf("yao: sending garbled circuit: %w", err)
	}

	// OT setup: publish C.
	sender, err := ot.NewSender(cfg.Group, cfg.Rand)
	if err != nil {
		return err
	}
	elemLen := cfg.Group.ElementLen()
	if err := conn.Send(ctx, fixed(sender.PublicC(), elemLen)); err != nil {
		return fmt.Errorf("yao: sending OT setup: %w", err)
	}

	// Batched OT round: receive all PK0s, answer all ciphertext pairs.
	frame, err = conn.Recv(ctx)
	if err != nil {
		return fmt.Errorf("yao: receiving PK0 batch: %w", err)
	}
	wantBits := nR * w
	if len(frame) != wantBits*elemLen {
		return fmt.Errorf("%w: PK0 batch of %d bytes, want %d", ErrBadFrame, len(frame), wantBits*elemLen)
	}
	reply := make([]byte, 0, wantBits*(2*elemLen+2*(garble.LabelLen+1)))
	for i := 0; i < wantBits; i++ {
		pk0 := new(big.Int).SetBytes(frame[i*elemLen : (i+1)*elemLen])
		fLab, tLab, err := gc.EvaluatorInputLabeled(i)
		if err != nil {
			return err
		}
		ct, err := sender.Transfer(pk0, labeledBytes(fLab), labeledBytes(tLab))
		if err != nil {
			return fmt.Errorf("yao: OT %d: %w", i, err)
		}
		reply = append(reply, fixed(ct.G0, elemLen)...)
		reply = append(reply, ct.E0...)
		reply = append(reply, fixed(ct.G1, elemLen)...)
		reply = append(reply, ct.E1...)
	}
	if err := conn.Send(ctx, reply); err != nil {
		return fmt.Errorf("yao: sending OT ciphertexts: %w", err)
	}
	return nil
}

// RunEvaluator executes party R: announce nR, receive the garbled
// circuit, fetch own input labels via batched OT, evaluate, decode.
func RunEvaluator(ctx context.Context, cfg Config, conn transport.Conn, values []uint64) (*Result, error) {
	cfg, err := cfg.normalized()
	if err != nil {
		return nil, err
	}
	w := cfg.Width
	if err := checkValues(values, w); err != nil {
		return nil, err
	}

	var nrFrame [8]byte
	binary.BigEndian.PutUint64(nrFrame[:], uint64(len(values)))
	if err := conn.Send(ctx, nrFrame[:]); err != nil {
		return nil, fmt.Errorf("yao: sending params: %w", err)
	}
	frame, err := conn.Recv(ctx)
	if err != nil {
		return nil, fmt.Errorf("yao: receiving params: %w", err)
	}
	if len(frame) != 16 {
		return nil, fmt.Errorf("%w: params frame of %d bytes", ErrBadFrame, len(frame))
	}
	nS := int(binary.BigEndian.Uint64(frame[:8]))
	peerW := int(binary.BigEndian.Uint64(frame[8:]))
	if peerW != w {
		return nil, fmt.Errorf("yao: width mismatch: peer %d, local %d", peerW, w)
	}
	const maxSet = 1 << 16
	if nS < 0 || nS > maxSet {
		return nil, fmt.Errorf("%w: nS = %d", ErrBadFrame, nS)
	}

	// Rebuild the (public) circuit shape and receive tables + S labels.
	c := circuit.BruteForceIntersection(w, nS, len(values))
	frame, err = conn.Recv(ctx)
	if err != nil {
		return nil, fmt.Errorf("yao: receiving garbled circuit: %w", err)
	}
	tables, outPerms, gLabels, err := decodeGarbled(frame, c)
	if err != nil {
		return nil, err
	}

	// OT setup.
	elemLen := cfg.Group.ElementLen()
	frame, err = conn.Recv(ctx)
	if err != nil {
		return nil, fmt.Errorf("yao: receiving OT setup: %w", err)
	}
	if len(frame) != elemLen {
		return nil, fmt.Errorf("%w: OT setup of %d bytes", ErrBadFrame, len(frame))
	}
	receiver, err := ot.NewReceiver(cfg.Group, new(big.Int).SetBytes(frame), cfg.Rand)
	if err != nil {
		return nil, err
	}

	// Batched OT: one choice per input bit.
	eBits := circuit.FlattenValues(values, w)
	choices := make([]*ot.Choice, len(eBits))
	pk0s := make([]byte, 0, len(eBits)*elemLen)
	for i, bit := range eBits {
		ch, err := receiver.Choose(bit)
		if err != nil {
			return nil, fmt.Errorf("yao: OT choose %d: %w", i, err)
		}
		choices[i] = ch
		pk0s = append(pk0s, fixed(ch.PK0, elemLen)...)
	}
	if err := conn.Send(ctx, pk0s); err != nil {
		return nil, fmt.Errorf("yao: sending PK0 batch: %w", err)
	}
	frame, err = conn.Recv(ctx)
	if err != nil {
		return nil, fmt.Errorf("yao: receiving OT ciphertexts: %w", err)
	}
	const msgLen = garble.LabelLen + 1
	per := 2*elemLen + 2*msgLen
	if len(frame) != len(eBits)*per {
		return nil, fmt.Errorf("%w: OT ciphertext batch of %d bytes, want %d", ErrBadFrame, len(frame), len(eBits)*per)
	}
	eLabels := make([]garble.LabeledInput, len(eBits))
	for i := range eBits {
		chunk := frame[i*per : (i+1)*per]
		ct := &ot.Ciphertexts{
			G0: new(big.Int).SetBytes(chunk[:elemLen]),
			E0: chunk[elemLen : elemLen+msgLen],
			G1: new(big.Int).SetBytes(chunk[elemLen+msgLen : 2*elemLen+msgLen]),
			E1: chunk[2*elemLen+msgLen:],
		}
		opened, err := receiver.Open(choices[i], ct)
		if err != nil {
			return nil, fmt.Errorf("yao: OT open %d: %w", i, err)
		}
		eLabels[i], err = bytesLabeled(opened)
		if err != nil {
			return nil, err
		}
	}

	members, err := garble.Evaluate(c, tables, outPerms, gLabels, eLabels)
	if err != nil {
		return nil, err
	}
	return &Result{
		Members:    members,
		Gates:      c.NumGates(),
		TableBytes: len(tables) * 4 * msgLen,
	}, nil
}

func checkValues(values []uint64, w int) error {
	if w < 64 {
		limit := uint64(1) << w
		for i, v := range values {
			if v >= limit {
				return fmt.Errorf("yao: value %d (%d) exceeds %d bits", i, v, w)
			}
		}
	}
	return nil
}

func fixed(x *big.Int, n int) []byte {
	b := x.Bytes()
	out := make([]byte, n)
	copy(out[n-len(b):], b)
	return out
}

func labeledBytes(l garble.LabeledInput) []byte {
	out := make([]byte, garble.LabelLen+1)
	copy(out, l.Label[:])
	if l.Color {
		out[garble.LabelLen] = 1
	}
	return out
}

func bytesLabeled(b []byte) (garble.LabeledInput, error) {
	var l garble.LabeledInput
	if len(b) != garble.LabelLen+1 {
		return l, fmt.Errorf("%w: label of %d bytes", ErrBadFrame, len(b))
	}
	copy(l.Label[:], b[:garble.LabelLen])
	l.Color = b[garble.LabelLen] == 1
	return l, nil
}

// encodeGarbled flattens tables, output permutes and the garbler's
// labeled inputs into one frame.
func encodeGarbled(gc *garble.Garbled, gLabels []garble.LabeledInput) []byte {
	const msgLen = garble.LabelLen + 1
	out := make([]byte, 0, len(gc.Tables)*4*msgLen+len(gc.OutputPermutes)+len(gLabels)*msgLen+12)
	var hdr [12]byte
	binary.BigEndian.PutUint32(hdr[0:4], uint32(len(gc.Tables)))
	binary.BigEndian.PutUint32(hdr[4:8], uint32(len(gc.OutputPermutes)))
	binary.BigEndian.PutUint32(hdr[8:12], uint32(len(gLabels)))
	out = append(out, hdr[:]...)
	for _, tb := range gc.Tables {
		for _, row := range tb.Rows {
			out = append(out, row[:]...)
		}
	}
	for _, p := range gc.OutputPermutes {
		if p {
			out = append(out, 1)
		} else {
			out = append(out, 0)
		}
	}
	for _, l := range gLabels {
		out = append(out, labeledBytes(l)...)
	}
	return out
}

// decodeGarbled parses encodeGarbled's frame against the expected
// circuit shape.
func decodeGarbled(frame []byte, c *circuit.Circuit) ([]garble.Table, []bool, []garble.LabeledInput, error) {
	const msgLen = garble.LabelLen + 1
	if len(frame) < 12 {
		return nil, nil, nil, fmt.Errorf("%w: garbled frame too short", ErrBadFrame)
	}
	nTables := int(binary.BigEndian.Uint32(frame[0:4]))
	nOut := int(binary.BigEndian.Uint32(frame[4:8]))
	nGLab := int(binary.BigEndian.Uint32(frame[8:12]))
	if nTables != c.NumGates() || nOut != len(c.Outputs) || nGLab != len(c.GarblerInputs) {
		return nil, nil, nil, fmt.Errorf("%w: garbled frame shape (%d,%d,%d) vs circuit (%d,%d,%d)",
			ErrBadFrame, nTables, nOut, nGLab, c.NumGates(), len(c.Outputs), len(c.GarblerInputs))
	}
	want := 12 + nTables*4*msgLen + nOut + nGLab*msgLen
	if len(frame) != want {
		return nil, nil, nil, fmt.Errorf("%w: garbled frame of %d bytes, want %d", ErrBadFrame, len(frame), want)
	}
	off := 12
	tables := make([]garble.Table, nTables)
	for i := range tables {
		for r := 0; r < 4; r++ {
			copy(tables[i].Rows[r][:], frame[off:off+msgLen])
			off += msgLen
		}
	}
	outPerms := make([]bool, nOut)
	for i := range outPerms {
		outPerms[i] = frame[off] == 1
		off++
	}
	gLabels := make([]garble.LabeledInput, nGLab)
	for i := range gLabels {
		l, err := bytesLabeled(frame[off : off+msgLen])
		if err != nil {
			return nil, nil, nil, err
		}
		gLabels[i] = l
		off += msgLen
	}
	return tables, outPerms, gLabels, nil
}
