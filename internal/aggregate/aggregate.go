// Package aggregate implements private aggregation queries on top of the
// core protocols — the paper's closing future-work item ("can we ...
// discover corresponding protocols for other database operations such as
// aggregations?", Section 7).
//
// Two constructions are provided:
//
//   - GroupByCounts generalizes the medical application (Figure 2) from
//     one boolean attribute per side to arbitrarily many: R partitions
//     its ids by k boolean columns, S by m boolean columns (optionally
//     filtered), and a researcher T obtains the full 2^k × 2^m
//     contingency table through 2^(k+m) third-party intersection-size
//     runs — learning only the counts.
//
//   - JoinAggregate computes SUM/COUNT/AVG/MIN/MAX of a numeric column
//     over the private equijoin's matches.  Disclosure here is exactly
//     the equijoin's (R sees ext(v) for joined values and aggregates
//     locally); it is a composition convenience, not a tighter protocol,
//     and the doc comment says so — per the paper, a sum-only protocol
//     with less disclosure remains open.
package aggregate

import (
	"context"
	"fmt"
	"sort"

	"minshare/internal/core"
	"minshare/internal/reldb"
	"minshare/internal/transport"
)

// Cell identifies one bucket of the generalized contingency table: the
// boolean values of R's group-by columns followed by S's.
type Cell struct {
	R, S string // canonical bit strings, e.g. "10" for (true, false)
}

// CountsTable is the researcher's result: joined-and-filtered row counts
// per cell.
type CountsTable map[Cell]int

// Total sums all cells.
func (t CountsTable) Total() int {
	n := 0
	for _, c := range t {
		n += c
	}
	return n
}

// Cells returns the cells in deterministic order.
func (t CountsTable) Cells() []Cell {
	out := make([]Cell, 0, len(t))
	for c := range t {
		out = append(out, c)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].R != out[j].R {
			return out[i].R < out[j].R
		}
		return out[i].S < out[j].S
	})
	return out
}

// StudySpec describes a generalized group-by-count study.
type StudySpec struct {
	// TableR with IDColR is enterprise R's table and join key; GroupByR
	// lists its boolean group-by columns (the paper's "pattern").
	TableR   *reldb.Table
	IDColR   string
	GroupByR []string
	// TableS, IDColS, GroupByS mirror the S side (the paper's
	// "reaction"); FilterS, when non-empty, names a boolean column that
	// must be true for a row to participate (the paper's "drug = true").
	TableS   *reldb.Table
	IDColS   string
	GroupByS []string
	FilterS  string
}

// partitions splits a table's ids by the combination of boolean columns.
func partitions(t *reldb.Table, idCol string, boolCols []string, filter string) (map[string][][]byte, error) {
	idIdx, err := t.Schema().ColumnIndex(idCol)
	if err != nil {
		return nil, err
	}
	colIdx := make([]int, len(boolCols))
	for i, c := range boolCols {
		colIdx[i], err = t.Schema().ColumnIndex(c)
		if err != nil {
			return nil, err
		}
	}
	filterIdx := -1
	if filter != "" {
		filterIdx, err = t.Schema().ColumnIndex(filter)
		if err != nil {
			return nil, err
		}
	}
	out := make(map[string][][]byte)
	// Pre-create every combination so empty cells still appear.
	for c := 0; c < 1<<len(boolCols); c++ {
		out[bitKey(c, len(boolCols))] = nil
	}
	for _, row := range t.Rows() {
		if filterIdx >= 0 && !row[filterIdx].AsBool() {
			continue
		}
		key := make([]byte, len(boolCols))
		for i, idx := range colIdx {
			if row[idx].AsBool() {
				key[i] = '1'
			} else {
				key[i] = '0'
			}
		}
		out[string(key)] = append(out[string(key)], row[idIdx].Encode())
	}
	return out, nil
}

func bitKey(v, n int) string {
	b := make([]byte, n)
	for i := 0; i < n; i++ {
		if v&(1<<i) != 0 {
			b[i] = '1'
		} else {
			b[i] = '0'
		}
	}
	return string(b)
}

// GroupByCounts runs the generalized Figure 2 study: one third-party
// intersection size per cell pair.  The number of protocol runs is
// 2^|GroupByR| × 2^|GroupByS|, so each side may contribute at most 8
// group-by columns.
func GroupByCounts(ctx context.Context, cfgR, cfgS, cfgT core.Config, spec StudySpec) (CountsTable, error) {
	if len(spec.GroupByR) > 8 || len(spec.GroupByS) > 8 {
		return nil, fmt.Errorf("aggregate: at most 8 group-by columns per side")
	}
	partsR, err := partitions(spec.TableR, spec.IDColR, spec.GroupByR, "")
	if err != nil {
		return nil, fmt.Errorf("aggregate: partitioning R: %w", err)
	}
	partsS, err := partitions(spec.TableS, spec.IDColS, spec.GroupByS, spec.FilterS)
	if err != nil {
		return nil, fmt.Errorf("aggregate: partitioning S: %w", err)
	}

	table := make(CountsTable, len(partsR)*len(partsS))
	for rKey, rIDs := range partsR {
		for sKey, sIDs := range partsS {
			n, err := runThirdPartySize(ctx, cfgR, cfgS, cfgT, rIDs, sIDs)
			if err != nil {
				return nil, fmt.Errorf("aggregate: cell (%s,%s): %w", rKey, sKey, err)
			}
			table[Cell{R: rKey, S: sKey}] = n
		}
	}
	return table, nil
}

// PlaintextGroupByCounts evaluates the same study directly, for
// verification.
func PlaintextGroupByCounts(spec StudySpec) (CountsTable, error) {
	partsR, err := partitions(spec.TableR, spec.IDColR, spec.GroupByR, "")
	if err != nil {
		return nil, err
	}
	partsS, err := partitions(spec.TableS, spec.IDColS, spec.GroupByS, spec.FilterS)
	if err != nil {
		return nil, err
	}
	table := make(CountsTable, len(partsR)*len(partsS))
	for rKey, rIDs := range partsR {
		rSet := make(map[string]struct{}, len(rIDs))
		for _, id := range rIDs {
			rSet[string(id)] = struct{}{}
		}
		for sKey, sIDs := range partsS {
			n := 0
			seen := make(map[string]struct{}, len(sIDs))
			for _, id := range sIDs {
				if _, dup := seen[string(id)]; dup {
					continue
				}
				seen[string(id)] = struct{}{}
				if _, hit := rSet[string(id)]; hit {
					n++
				}
			}
			table[Cell{R: rKey, S: sKey}] = n
		}
	}
	return table, nil
}

func runThirdPartySize(ctx context.Context, cfgA, cfgB, cfgT core.Config, vA, vB [][]byte) (int, error) {
	abA, abB := transport.Pipe()
	atA, atT := transport.Pipe()
	btB, btT := transport.Pipe()
	defer func() { _ = abA.Close() }()
	defer func() { _ = atA.Close() }()
	defer func() { _ = btB.Close() }()

	errA := make(chan error, 1)
	errB := make(chan error, 1)
	go func() {
		_, err := core.ThirdPartyPartyA(ctx, cfgA, abA, atA, vA)
		errA <- err
	}()
	go func() {
		_, err := core.ThirdPartyPartyB(ctx, cfgB, abB, btB, vB)
		errB <- err
	}()
	res, err := core.ThirdPartyAnalyst(ctx, cfgT, atT, btT)
	if err != nil {
		return 0, err
	}
	if err := <-errA; err != nil {
		return 0, err
	}
	if err := <-errB; err != nil {
		return 0, err
	}
	return res.IntersectionSize, nil
}
