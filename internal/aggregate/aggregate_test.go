package aggregate

import (
	"context"
	"math/rand"
	"testing"

	"minshare/internal/core"
	"minshare/internal/group"
	"minshare/internal/reldb"
	"minshare/internal/transport"
)

func testCfg(seed int64) core.Config {
	return core.Config{Group: group.TestGroup(), Rand: rand.New(rand.NewSource(seed)), Parallelism: 1}
}

// buildStudy creates R and S tables with two boolean group-by columns on
// R and one on S plus a filter, over a partially shared id space.
func buildStudy(t *testing.T) StudySpec {
	t.Helper()
	tR := reldb.NewTable("R", reldb.MustSchema(
		reldb.Column{Name: "id", Type: reldb.TypeInt},
		reldb.Column{Name: "flagA", Type: reldb.TypeBool},
		reldb.Column{Name: "flagB", Type: reldb.TypeBool},
	))
	tS := reldb.NewTable("S", reldb.MustSchema(
		reldb.Column{Name: "id", Type: reldb.TypeInt},
		reldb.Column{Name: "active", Type: reldb.TypeBool},
		reldb.Column{Name: "outcome", Type: reldb.TypeBool},
	))
	rng := rand.New(rand.NewSource(9))
	for id := 0; id < 60; id++ {
		tR.MustInsert(reldb.Int(int64(id)), reldb.Bool(rng.Intn(2) == 0), reldb.Bool(rng.Intn(3) == 0))
	}
	for id := 30; id < 90; id++ { // ids 30-59 shared
		tS.MustInsert(reldb.Int(int64(id)), reldb.Bool(rng.Intn(4) != 0), reldb.Bool(rng.Intn(2) == 0))
	}
	return StudySpec{
		TableR: tR, IDColR: "id", GroupByR: []string{"flagA", "flagB"},
		TableS: tS, IDColS: "id", GroupByS: []string{"outcome"}, FilterS: "active",
	}
}

func TestGroupByCountsMatchesPlaintext(t *testing.T) {
	spec := buildStudy(t)
	want, err := PlaintextGroupByCounts(spec)
	if err != nil {
		t.Fatal(err)
	}
	got, err := GroupByCounts(context.Background(), testCfg(1), testCfg(2), testCfg(3), spec)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 4*2 { // 2^2 R cells × 2^1 S cells
		t.Fatalf("cells = %d, want 8", len(got))
	}
	for _, cell := range got.Cells() {
		if got[cell] != want[cell] {
			t.Errorf("cell %+v: private %d, plaintext %d", cell, got[cell], want[cell])
		}
	}
	if got.Total() != want.Total() {
		t.Errorf("totals %d vs %d", got.Total(), want.Total())
	}
}

func TestGroupByCountsMedicalEquivalence(t *testing.T) {
	// With one bool per side and the drug filter, the generalized study
	// must equal the dedicated medical implementation's plaintext.
	tR, tS := reldb.GenPeopleTables(50, 0.4, 0.6, 0.3, 13)
	spec := StudySpec{
		TableR: tR, IDColR: "personid", GroupByR: []string{"pattern"},
		TableS: tS, IDColS: "personid", GroupByS: []string{"reaction"}, FilterS: "drug",
	}
	got, err := GroupByCounts(context.Background(), testCfg(1), testCfg(2), testCfg(3), spec)
	if err != nil {
		t.Fatal(err)
	}
	want, err := PlaintextGroupByCounts(spec)
	if err != nil {
		t.Fatal(err)
	}
	for _, cell := range got.Cells() {
		if got[cell] != want[cell] {
			t.Errorf("cell %+v: %d vs %d", cell, got[cell], want[cell])
		}
	}
	if got.Total() == 0 {
		t.Error("empty study")
	}
}

func TestGroupByCountsNoGroupColumns(t *testing.T) {
	// Zero group-by columns per side degenerate to a single private
	// intersection size.
	spec := buildStudy(t)
	spec.GroupByR = nil
	spec.GroupByS = nil
	got, err := GroupByCounts(context.Background(), testCfg(1), testCfg(2), testCfg(3), spec)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 {
		t.Fatalf("cells = %d, want 1", len(got))
	}
	want, _ := PlaintextGroupByCounts(spec)
	cell := got.Cells()[0]
	if got[cell] != want[cell] {
		t.Errorf("count %d vs %d", got[cell], want[cell])
	}
}

func TestGroupByCountsValidation(t *testing.T) {
	spec := buildStudy(t)
	spec.GroupByR = make([]string, 9)
	if _, err := GroupByCounts(context.Background(), testCfg(1), testCfg(2), testCfg(3), spec); err == nil {
		t.Error("9 group-by columns accepted")
	}
	spec = buildStudy(t)
	spec.IDColR = "missing"
	if _, err := GroupByCounts(context.Background(), testCfg(1), testCfg(2), testCfg(3), spec); err == nil {
		t.Error("missing id column accepted")
	}
	spec = buildStudy(t)
	spec.FilterS = "missing"
	if _, err := GroupByCounts(context.Background(), testCfg(1), testCfg(2), testCfg(3), spec); err == nil {
		t.Error("missing filter column accepted")
	}
}

func TestJoinAggregate(t *testing.T) {
	orders := reldb.NewTable("orders", reldb.MustSchema(
		reldb.Column{Name: "cust", Type: reldb.TypeString},
		reldb.Column{Name: "amount", Type: reldb.TypeInt},
	))
	orders.MustInsert(reldb.String("ann"), reldb.Int(10))
	orders.MustInsert(reldb.String("ann"), reldb.Int(30))
	orders.MustInsert(reldb.String("bob"), reldb.Int(5))
	orders.MustInsert(reldb.String("eve"), reldb.Int(1000)) // not shared

	values, exts, err := orders.ExtPayloads("cust")
	if err != nil {
		t.Fatal(err)
	}
	recs := make([]core.JoinRecord, len(values))
	for i := range values {
		recs[i] = core.JoinRecord{Value: values[i], Ext: exts[i]}
	}
	query := [][]byte{
		reldb.String("ann").Encode(),
		reldb.String("bob").Encode(),
		reldb.String("carol").Encode(),
	}

	ctx := context.Background()
	connR, connS := transport.Pipe()
	defer connR.Close()
	ch := make(chan error, 1)
	go func() {
		_, err := core.EquijoinSender(ctx, testCfg(2), connS, recs)
		ch <- err
	}()
	res, err := JoinAggregate(ctx, testCfg(1), connR, query, orders.Schema(), "amount")
	if err != nil {
		t.Fatal(err)
	}
	if err := <-ch; err != nil {
		t.Fatal(err)
	}

	if res.Count != 3 || res.Sum != 45 || res.Min != 5 || res.Max != 30 {
		t.Errorf("aggregate = %+v", *res)
	}
	if res.Avg() != 15 {
		t.Errorf("avg = %f", res.Avg())
	}
	if res.Matches != 2 || res.SenderSetSize != 3 {
		t.Errorf("matches/sender = %d/%d", res.Matches, res.SenderSetSize)
	}
}

func TestJoinAggregateEmptyJoin(t *testing.T) {
	schema := reldb.MustSchema(
		reldb.Column{Name: "k", Type: reldb.TypeString},
		reldb.Column{Name: "v", Type: reldb.TypeInt},
	)
	ctx := context.Background()
	connR, connS := transport.Pipe()
	defer connR.Close()
	ch := make(chan error, 1)
	go func() {
		_, err := core.EquijoinSender(ctx, testCfg(2), connS, []core.JoinRecord{
			{Value: []byte("unshared"), Ext: (reldb.Row{reldb.String("unshared"), reldb.Int(7)}).Encode()},
		})
		ch <- err
	}()
	res, err := JoinAggregate(ctx, testCfg(1), connR, [][]byte{[]byte("other")}, schema, "v")
	if err != nil {
		t.Fatal(err)
	}
	<-ch
	if res.Count != 0 || res.Sum != 0 || res.Min != 0 || res.Max != 0 || res.Avg() != 0 {
		t.Errorf("empty join aggregate = %+v", *res)
	}
}

func TestJoinAggregateColumnValidation(t *testing.T) {
	schema := reldb.MustSchema(
		reldb.Column{Name: "k", Type: reldb.TypeString},
		reldb.Column{Name: "v", Type: reldb.TypeInt},
	)
	if _, err := JoinAggregate(context.Background(), testCfg(1), nil, nil, schema, "missing"); err == nil {
		t.Error("missing column accepted")
	}
	if _, err := JoinAggregate(context.Background(), testCfg(1), nil, nil, schema, "k"); err == nil {
		t.Error("non-numeric column accepted")
	}
}
