package aggregate

import (
	"context"
	"fmt"
	"math"

	"minshare/internal/core"
	"minshare/internal/reldb"
	"minshare/internal/transport"
)

// JoinAggregateResult holds local aggregates over the joined rows.
//
// Disclosure note: this is the equijoin protocol plus local folding, so
// R sees every joined row (the equijoin's contract) — the aggregate is a
// convenience, not a tighter privacy guarantee.  A protocol revealing
// ONLY the sum is the open problem the paper's Section 7 poses.
type JoinAggregateResult struct {
	// Count is the number of joined rows.
	Count int
	// Sum, Min, Max aggregate the numeric column; Min/Max are
	// meaningless when Count is zero.
	Sum, Min, Max int64
	// Matches is the number of joined distinct values.
	Matches int
	// SenderSetSize is |V_S|.
	SenderSetSize int
}

// Avg returns Sum/Count, or 0 for an empty join.
func (r *JoinAggregateResult) Avg() float64 {
	if r.Count == 0 {
		return 0
	}
	return float64(r.Sum) / float64(r.Count)
}

// JoinAggregate runs the receiver side of the equijoin against conn and
// folds the named numeric column of the decoded ext rows.  schema is the
// sender's row schema (known to both parties per Section 2.3's "we
// assume that the database schemas are known").
func JoinAggregate(ctx context.Context, cfg core.Config, conn transport.Conn,
	values [][]byte, schema *reldb.Schema, numericCol string) (*JoinAggregateResult, error) {
	colIdx, err := schema.ColumnIndex(numericCol)
	if err != nil {
		return nil, err
	}
	if schema.Columns()[colIdx].Type != reldb.TypeInt {
		return nil, fmt.Errorf("aggregate: column %q is not numeric", numericCol)
	}
	join, err := core.EquijoinReceiver(ctx, cfg, conn, values)
	if err != nil {
		return nil, err
	}
	res := &JoinAggregateResult{
		Matches:       len(join.Matches),
		SenderSetSize: join.SenderSetSize,
		Min:           math.MaxInt64,
		Max:           math.MinInt64,
	}
	for _, m := range join.Matches {
		rows, err := reldb.DecodeRows(m.Ext, schema.NumColumns())
		if err != nil {
			return nil, fmt.Errorf("aggregate: decoding ext for %q: %w", m.Value, err)
		}
		for _, row := range rows {
			v := row[colIdx].AsInt()
			res.Count++
			res.Sum += v
			if v < res.Min {
				res.Min = v
			}
			if v > res.Max {
				res.Max = v
			}
		}
	}
	if res.Count == 0 {
		res.Min, res.Max = 0, 0
	}
	return res, nil
}
