// Package ec25519 is a from-scratch implementation of the prime-order
// subgroup of the twisted Edwards curve birationally equivalent to
// Curve25519, together with an Elligator2 hash-to-curve map.  It
// provides exactly what a commutative-encryption backend needs — a
// DDH-hard group of prime order ℓ ≈ 2^252, a map from uniform bytes
// into the group, scalar multiplication, and a canonical fixed-width
// encoding — using only the standard library.
//
// The commutative encryption built on it is f_e(x) = e·H(x): scalar
// multiplications commute, so Definition 2 of the paper holds with
// KeyF = [1, ℓ-1] and DomF the subgroup, under the same DDH assumption
// as the safe-prime instantiation of Example 1 but at a fraction of
// the per-operation (C_e) cost.
package ec25519

import (
	"fmt"
	"math/big"
)

// Curve and exponent constants, computed once at package
// initialization from first principles (so the only magic numbers in
// the package are the curve parameters 121665/121666, the Montgomery
// coefficient A = 486662, and the subgroup order).
var (
	// dConst is the Edwards d = -121665/121666.
	dConst fe
	// d2Const is 2d, used by the hwcd-3 addition.
	d2Const fe
	// sqrtM1Const is √-1 = 2^((p-1)/4).
	sqrtM1Const fe
	// montAConst is the Montgomery coefficient A = 486662 of
	// v² = u³ + Au² + u.
	montAConst fe
	// sqrtNegAPlus2Const is √-(A+2), the scaling factor of the
	// birational map from Montgomery u,v to Edwards x.
	sqrtNegAPlus2Const fe

	// expPMinus2 is p-2 (inversion exponent), big-endian.
	expPMinus2 []byte
	// expPMinus5Over8 is (p-5)/8 (square-root exponent), big-endian.
	expPMinus5Over8 []byte
	// expPMinus1Over2 is (p-1)/2 (Legendre exponent), big-endian.
	expPMinus1Over2 []byte

	// orderL is the subgroup order ℓ = 2^252 + 27742…493.
	orderL *big.Int
)

func init() {
	p := new(big.Int).Lsh(big.NewInt(1), 255)
	p.Sub(p, big.NewInt(19))

	expPMinus2 = new(big.Int).Sub(p, big.NewInt(2)).Bytes()
	expPMinus5Over8 = new(big.Int).Rsh(new(big.Int).Sub(p, big.NewInt(5)), 3).Bytes()
	expPMinus1Over2 = new(big.Int).Rsh(new(big.Int).Sub(p, big.NewInt(1)), 1).Bytes()

	// √-1 before anything that calls feSqrtRatio.
	quarter := new(big.Int).Rsh(new(big.Int).Sub(p, big.NewInt(1)), 2)
	two := fe{l0: 2}
	fePow(&sqrtM1Const, &two, quarter.Bytes())
	var chk fe
	feSquare(&chk, &sqrtM1Const)
	var minusOne fe
	feNeg(&minusOne, &feOne)
	if !feEqual(&chk, &minusOne) {
		panic("ec25519: sqrt(-1) constant failed self-check")
	}

	// d = -121665/121666.
	num := fe{l0: 121665}
	den := fe{l0: 121666}
	feNeg(&num, &num)
	feInvert(&den, &den)
	feMul(&dConst, &num, &den)
	feAdd(&d2Const, &dConst, &dConst)

	montAConst = fe{l0: 486662}

	// √-(A+2): -(486664) is a residue mod p.
	negAPlus2 := fe{l0: 486664}
	feNeg(&negAPlus2, &negAPlus2)
	if !feSqrtRatio(&sqrtNegAPlus2Const, &negAPlus2, &feOne) {
		panic("ec25519: -(A+2) unexpectedly not a square")
	}

	orderL, _ = new(big.Int).SetString(
		"7237005577332262213973186563042994240857116359379907606001950938285454250989", 10)
	if orderL == nil || orderL.BitLen() != 253 {
		panic("ec25519: bad subgroup order constant")
	}
}

// Order returns a copy of the prime order ℓ of the subgroup — the
// size of the commutative-encryption key space KeyF.
func Order() *big.Int {
	return new(big.Int).Set(orderL)
}

// HashLen is the number of uniform input bytes MapToPoint consumes.
// 512 bits folded mod p keep the reduction bias below 2^-257.
const HashLen = 64

// MapToPoint maps HashLen uniform bytes to a point of the prime-order
// subgroup: reduce mod p, Elligator2 onto the Montgomery curve, the
// birational map to Edwards form, then multiply by the cofactor 8.
// Output is statistically close to uniform over the subgroup.  It
// panics if uniform is not exactly HashLen bytes (caller bug).
func MapToPoint(uniform []byte) *Point {
	if len(uniform) != HashLen {
		panic(fmt.Sprintf("ec25519: MapToPoint needs %d bytes, got %d", HashLen, len(uniform)))
	}
	v := new(big.Int).SetBytes(uniform)
	p := new(big.Int).Lsh(big.NewInt(1), 255)
	p.Sub(p, big.NewInt(19))
	v.Mod(v, p)

	var buf [32]byte
	v.FillBytes(buf[:])
	// feFromBytes is little-endian; big.Int serialized big-endian.
	for i, j := 0, 31; i < j; i, j = i+1, j-1 {
		buf[i], buf[j] = buf[j], buf[i]
	}
	r := feFromBytes(buf[:])

	ed := elligator2(&r)
	ed.double(ed)
	ed.double(ed)
	ed.double(ed)
	return ed
}

// elligator2 maps a field element onto the curve: the Elligator2 map
// to Montgomery (u, v), then the birational correspondence
// x = √-(A+2)·u/v, y = (u-1)/(u+1) to Edwards coordinates.  The
// handful of exceptional inputs (v = 0 or u = -1, whose images are
// pure torsion) collapse to the identity; they are hit with
// probability ~2^-253.
func elligator2(r *fe) *Point {
	// d0 = -A / (1 + 2r²); inv(0) = 0 handles 1 + 2r² = 0.
	var rr2, den, d0, negA fe
	feSquare(&rr2, r)
	feAdd(&rr2, &rr2, &rr2)
	feAdd(&den, &rr2, &feOne)
	feInvert(&den, &den)
	feNeg(&negA, &montAConst)
	feMul(&d0, &negA, &den)

	// u = d0 if g(d0) is square, else -d0 - A (Elligator2 guarantees
	// exactly one branch yields a square).
	var gd, chi, u fe
	montRHS(&gd, &d0)
	fePow(&chi, &gd, expPMinus1Over2)
	if feEqual(&chi, &feOne) || feIsZero(&gd) {
		u = d0
	} else {
		feSub(&u, &negA, &d0)
	}

	var gu, v fe
	montRHS(&gu, &u)
	if !feSqrtRatio(&v, &gu, &feOne) {
		panic("ec25519: elligator2 branch selection failed")
	}
	// v is the non-negative root — the deterministic sign choice.

	// Exceptional points of the birational map.
	var uPlus1 fe
	feAdd(&uPlus1, &u, &feOne)
	if feIsZero(&v) || feIsZero(&uPlus1) {
		return Identity()
	}

	var x, y, inv fe
	feInvert(&inv, &v)
	feMul(&x, &sqrtNegAPlus2Const, &u)
	feMul(&x, &x, &inv)
	feInvert(&inv, &uPlus1)
	feSub(&y, &u, &feOne)
	feMul(&y, &y, &inv)

	pt := &Point{x: x, y: y, z: feOne}
	feMul(&pt.t, &x, &y)
	return pt
}

// montRHS sets g = u³ + A·u² + u, the right-hand side of the
// Montgomery curve equation.
func montRHS(g, u *fe) {
	var u2, u3, au2 fe
	feSquare(&u2, u)
	feMul(&u3, &u2, u)
	feMul(&au2, &montAConst, &u2)
	feAdd(g, &u3, &au2)
	feAdd(g, g, u)
}
