package ec25519

import (
	"encoding/binary"
	"math/bits"
)

// Field arithmetic over GF(p), p = 2^255 - 19.
//
// Elements are held in radix-2^51: five unsigned limbs l0..l4 with
// value l0 + l1·2^51 + l2·2^102 + l3·2^153 + l4·2^204.  A "reduced"
// element has every limb below 2^52 (loose bound); carryPropagate
// restores that invariant after additions, and the multiplication
// routine re-establishes it itself.  Full canonical reduction to
// [0, p-1] happens only in toBytes.

// fe is one field element.  The zero value is the field's zero.
type fe struct {
	l0, l1, l2, l3, l4 uint64
}

// mask51 extracts one radix-2^51 limb.
const mask51 = (1 << 51) - 1

var (
	feZero = fe{}
	feOne  = fe{l0: 1}
)

// uint128 is a 128-bit accumulator for limb products.
type uint128 struct {
	lo, hi uint64
}

// mul64 returns a*b as a 128-bit value.
func mul64(a, b uint64) uint128 {
	hi, lo := bits.Mul64(a, b)
	return uint128{lo, hi}
}

// addMul64 returns v + a*b.
func addMul64(v uint128, a, b uint64) uint128 {
	hi, lo := bits.Mul64(a, b)
	lo, c := bits.Add64(lo, v.lo, 0)
	hi, _ = bits.Add64(hi, v.hi, c)
	return uint128{lo, hi}
}

// shiftRightBy51 returns a >> 51 (a is at most 115 bits).
func shiftRightBy51(a uint128) uint64 {
	return a.hi<<13 | a.lo>>51
}

// carryPropagate brings all limbs below 2^51 + 2^13·19 in one pass.
// Inputs may use the full 64 bits of every limb.
func (v *fe) carryPropagate() {
	c0 := v.l0 >> 51
	c1 := v.l1 >> 51
	c2 := v.l2 >> 51
	c3 := v.l3 >> 51
	c4 := v.l4 >> 51
	// 2^255 ≡ 19 (mod p), so the top carry folds into limb 0 times 19.
	v.l0 = v.l0&mask51 + c4*19
	v.l1 = v.l1&mask51 + c0
	v.l2 = v.l2&mask51 + c1
	v.l3 = v.l3&mask51 + c2
	v.l4 = v.l4&mask51 + c3
}

// feAdd sets v = a + b.
func feAdd(v, a, b *fe) {
	v.l0 = a.l0 + b.l0
	v.l1 = a.l1 + b.l1
	v.l2 = a.l2 + b.l2
	v.l3 = a.l3 + b.l3
	v.l4 = a.l4 + b.l4
	v.carryPropagate()
}

// feSub sets v = a - b, computed as a + 2p - b so no limb underflows.
// 2p = 2^256 - 38 splits into radix-2^51 limbs (2^52-38, 2^52-2, ...),
// each large enough to cover any reduced limb of b.
func feSub(v, a, b *fe) {
	v.l0 = a.l0 + 0xFFFFFFFFFFFDA - b.l0
	v.l1 = a.l1 + 0xFFFFFFFFFFFFE - b.l1
	v.l2 = a.l2 + 0xFFFFFFFFFFFFE - b.l2
	v.l3 = a.l3 + 0xFFFFFFFFFFFFE - b.l3
	v.l4 = a.l4 + 0xFFFFFFFFFFFFE - b.l4
	v.carryPropagate()
}

// feNeg sets v = -a.
func feNeg(v, a *fe) {
	feSub(v, &feZero, a)
}

// feMul sets v = a * b.  Schoolbook 5x5 limb product with the high
// half folded down through 2^255 ≡ 19.
func feMul(v, a, b *fe) {
	a0, a1, a2, a3, a4 := a.l0, a.l1, a.l2, a.l3, a.l4
	b0, b1, b2, b3, b4 := b.l0, b.l1, b.l2, b.l3, b.l4

	a1_19 := a1 * 19
	a2_19 := a2 * 19
	a3_19 := a3 * 19
	a4_19 := a4 * 19

	// r_k collects every a_i*b_j with i+j ≡ k (mod 5); products that
	// wrapped past 2^255 carry the factor 19.
	r0 := mul64(a0, b0)
	r0 = addMul64(r0, a1_19, b4)
	r0 = addMul64(r0, a2_19, b3)
	r0 = addMul64(r0, a3_19, b2)
	r0 = addMul64(r0, a4_19, b1)

	r1 := mul64(a0, b1)
	r1 = addMul64(r1, a1, b0)
	r1 = addMul64(r1, a2_19, b4)
	r1 = addMul64(r1, a3_19, b3)
	r1 = addMul64(r1, a4_19, b2)

	r2 := mul64(a0, b2)
	r2 = addMul64(r2, a1, b1)
	r2 = addMul64(r2, a2, b0)
	r2 = addMul64(r2, a3_19, b4)
	r2 = addMul64(r2, a4_19, b3)

	r3 := mul64(a0, b3)
	r3 = addMul64(r3, a1, b2)
	r3 = addMul64(r3, a2, b1)
	r3 = addMul64(r3, a3, b0)
	r3 = addMul64(r3, a4_19, b4)

	r4 := mul64(a0, b4)
	r4 = addMul64(r4, a1, b3)
	r4 = addMul64(r4, a2, b2)
	r4 = addMul64(r4, a3, b1)
	r4 = addMul64(r4, a4, b0)

	c0 := shiftRightBy51(r0)
	c1 := shiftRightBy51(r1)
	c2 := shiftRightBy51(r2)
	c3 := shiftRightBy51(r3)
	c4 := shiftRightBy51(r4)

	v.l0 = r0.lo&mask51 + c4*19
	v.l1 = r1.lo&mask51 + c0
	v.l2 = r2.lo&mask51 + c1
	v.l3 = r3.lo&mask51 + c2
	v.l4 = r4.lo&mask51 + c3
	v.carryPropagate()
}

// feSquare sets v = a².  Exploits product symmetry: cross terms appear
// twice, so they are doubled instead of recomputed.
func feSquare(v, a *fe) {
	a0, a1, a2, a3, a4 := a.l0, a.l1, a.l2, a.l3, a.l4

	d0 := a0 * 2
	d1 := a1 * 2
	a3_19 := a3 * 19
	a4_19 := a4 * 19

	r0 := mul64(a0, a0)
	r0 = addMul64(r0, d1, a4_19)
	r0 = addMul64(r0, a2*2, a3_19)

	r1 := mul64(d0, a1)
	r1 = addMul64(r1, a2*2, a4_19)
	r1 = addMul64(r1, a3_19, a3)

	r2 := mul64(d0, a2)
	r2 = addMul64(r2, a1, a1)
	r2 = addMul64(r2, a3*2, a4_19)

	r3 := mul64(d0, a3)
	r3 = addMul64(r3, d1, a2)
	r3 = addMul64(r3, a4_19, a4)

	r4 := mul64(d0, a4)
	r4 = addMul64(r4, d1, a3)
	r4 = addMul64(r4, a2, a2)

	c0 := shiftRightBy51(r0)
	c1 := shiftRightBy51(r1)
	c2 := shiftRightBy51(r2)
	c3 := shiftRightBy51(r3)
	c4 := shiftRightBy51(r4)

	v.l0 = r0.lo&mask51 + c4*19
	v.l1 = r1.lo&mask51 + c0
	v.l2 = r2.lo&mask51 + c1
	v.l3 = r3.lo&mask51 + c2
	v.l4 = r4.lo&mask51 + c3
	v.carryPropagate()
}

// fePow sets v = a^e, with the exponent given as big-endian bytes.
// Plain MSB-first square-and-multiply; used for inversion, square
// roots and Legendre symbols, which are off the per-element hot path.
func fePow(v, a *fe, exp []byte) {
	base := *a // allow v == a aliasing
	out := feOne
	for _, by := range exp {
		for bit := 7; bit >= 0; bit-- {
			feSquare(&out, &out)
			if by>>uint(bit)&1 == 1 {
				feMul(&out, &out, &base)
			}
		}
	}
	*v = out
}

// feInvert sets v = a^{-1} = a^{p-2}; inversion of zero yields zero,
// which the exceptional-case handling in the Elligator map relies on.
func feInvert(v, a *fe) {
	fePow(v, a, expPMinus2)
}

// feFromBytes loads a 32-byte little-endian encoding, ignoring the
// top bit of byte 31 (the encoding carries only 255 bits).
func feFromBytes(b []byte) fe {
	_ = b[31]
	return fe{
		l0: binary.LittleEndian.Uint64(b[0:8]) & mask51,
		l1: binary.LittleEndian.Uint64(b[6:14]) >> 3 & mask51,
		l2: binary.LittleEndian.Uint64(b[12:20]) >> 6 & mask51,
		l3: binary.LittleEndian.Uint64(b[19:27]) >> 1 & mask51,
		l4: binary.LittleEndian.Uint64(b[24:32]) >> 12 & mask51,
	}
}

// toBytes writes the canonical (fully reduced, little-endian) 32-byte
// encoding of v into out.
func (v *fe) toBytes(out *[32]byte) {
	r := *v
	r.carryPropagate()
	// Limbs are now below 2^52.  Compute q = floor(r / p) ∈ {0, 1, 2}
	// by trial-adding 19 and watching the carry ripple off the top.
	// Two rounds handle the residual excess from carryPropagate.
	for i := 0; i < 2; i++ {
		q := (r.l0 + 19) >> 51
		q = (r.l1 + q) >> 51
		q = (r.l2 + q) >> 51
		q = (r.l3 + q) >> 51
		q = (r.l4 + q) >> 51
		// Subtract q*p = q*2^255 - q*19: add 19q, then drop bit 255.
		r.l0 += 19 * q
		c0 := r.l0 >> 51
		r.l0 &= mask51
		r.l1 += c0
		c1 := r.l1 >> 51
		r.l1 &= mask51
		r.l2 += c1
		c2 := r.l2 >> 51
		r.l2 &= mask51
		r.l3 += c2
		c3 := r.l3 >> 51
		r.l3 &= mask51
		r.l4 += c3
		r.l4 &= mask51
	}
	binary.LittleEndian.PutUint64(out[0:8], r.l0|r.l1<<51)
	binary.LittleEndian.PutUint64(out[8:16], r.l1>>13|r.l2<<38)
	binary.LittleEndian.PutUint64(out[16:24], r.l2>>26|r.l3<<25)
	binary.LittleEndian.PutUint64(out[24:32], r.l3>>39|r.l4<<12)
}

// feEqual reports a == b in the field (canonical comparison).
func feEqual(a, b *fe) bool {
	var ab, bb [32]byte
	a.toBytes(&ab)
	b.toBytes(&bb)
	return ab == bb
}

// feIsZero reports a == 0.
func feIsZero(a *fe) bool {
	return feEqual(a, &feZero)
}

// feIsNegative reports whether the canonical encoding of a is odd —
// the "sign" convention of the compressed point format.
func feIsNegative(a *fe) bool {
	var ab [32]byte
	a.toBytes(&ab)
	return ab[0]&1 == 1
}

// feAbs sets v to a if a is non-negative, else to -a.
func feAbs(v, a *fe) {
	if feIsNegative(a) {
		feNeg(v, a)
	} else {
		*v = *a
	}
}
