package ec25519

import (
	"errors"
	"fmt"
)

// Edwards-curve point arithmetic for
//
//	-x² + y² = 1 + d·x²·y²,  d = -121665/121666 over GF(2^255-19)
//
// (the twisted Edwards form of Curve25519, as in Ed25519).  Points use
// extended homogeneous coordinates (X : Y : Z : T) with x = X/Z,
// y = Y/Z and X·Y = Z·T.  The addition law is the a = -1 "hwcd-3"
// formula set, which is complete on this curve (d is a non-square), so
// additions involving the identity or equal inputs need no special
// cases — the scalar ladder stays branch-free on point values.

// Common errors returned by point decoding.
var (
	// ErrNotOnCurve reports an encoding whose y has no matching x.
	ErrNotOnCurve = errors.New("ec25519: encoding is not a curve point")
	// ErrNonCanonical reports an encoding that is not the canonical
	// serialization of any point (y ≥ p, or x = -0).
	ErrNonCanonical = errors.New("ec25519: non-canonical point encoding")
)

// EncodedLen is the byte length of a compressed point encoding.
const EncodedLen = 32

// Point is a point on the curve.  The zero value is invalid; obtain
// points from Decode, MapToPoint, Identity, or arithmetic on those.
// Points are immutable once returned and safe for concurrent use.
type Point struct {
	x, y, z, t fe
}

// identity is the neutral element (0, 1).
var identity = Point{y: feOne, z: feOne}

// Identity returns the neutral element of the curve group.
func Identity() *Point {
	p := identity
	return &p
}

// add sets v = p + q using the complete a=-1 extended-coordinate
// addition (add-2008-hwcd-3).
func (v *Point) add(p, q *Point) {
	var a, b, c, d, e, f, g, h, t0, t1 fe

	feSub(&t0, &p.y, &p.x)
	feSub(&t1, &q.y, &q.x)
	feMul(&a, &t0, &t1) // A = (Y1-X1)(Y2-X2)

	feAdd(&t0, &p.y, &p.x)
	feAdd(&t1, &q.y, &q.x)
	feMul(&b, &t0, &t1) // B = (Y1+X1)(Y2+X2)

	feMul(&c, &p.t, &q.t)
	feMul(&c, &c, &d2Const) // C = 2d·T1·T2

	feMul(&d, &p.z, &q.z)
	feAdd(&d, &d, &d) // D = 2·Z1·Z2

	feSub(&e, &b, &a)
	feSub(&f, &d, &c)
	feAdd(&g, &d, &c)
	feAdd(&h, &b, &a)

	feMul(&v.x, &e, &f)
	feMul(&v.y, &g, &h)
	feMul(&v.t, &e, &h)
	feMul(&v.z, &f, &g)
}

// double sets v = 2p.
func (v *Point) double(p *Point) {
	var xx, yy, b, a, e, yPlus, yMinus, tt fe

	feSquare(&xx, &p.x)
	feSquare(&yy, &p.y)
	feSquare(&b, &p.z)
	feAdd(&b, &b, &b) // 2Z²

	feAdd(&a, &p.x, &p.y)
	feSquare(&a, &a) // (X+Y)²
	feAdd(&yPlus, &yy, &xx)
	feSub(&yMinus, &yy, &xx)
	feSub(&e, &a, &yPlus) // 2XY
	feSub(&tt, &b, &yMinus)

	feMul(&v.x, &e, &tt)
	feMul(&v.y, &yPlus, &yMinus)
	feMul(&v.z, &yMinus, &tt)
	feMul(&v.t, &e, &yPlus)
}

// Add returns p + q.
func (p *Point) Add(q *Point) *Point {
	var v Point
	v.add(p, q)
	return &v
}

// Double returns 2p.
func (p *Point) Double() *Point {
	var v Point
	v.double(p)
	return &v
}

// Equal reports whether p and q are the same point (comparing the
// underlying affine coordinates across projective representations).
func (p *Point) Equal(q *Point) bool {
	var a, b fe
	feMul(&a, &p.x, &q.z)
	feMul(&b, &q.x, &p.z)
	if !feEqual(&a, &b) {
		return false
	}
	feMul(&a, &p.y, &q.z)
	feMul(&b, &q.y, &p.z)
	return feEqual(&a, &b)
}

// IsIdentity reports whether p is the neutral element.
func (p *Point) IsIdentity() bool {
	return p.Equal(&identity)
}

// IsSmallOrder reports whether p's order divides the cofactor 8, i.e.
// whether p lies in the small torsion subgroup (the identity and the
// seven low-order points).  Such encodings are rejected as protocol
// elements: they are not outputs of the hash-to-curve map and a
// torsion component would make f_e lose information.
func (p *Point) IsSmallOrder() bool {
	var v Point
	v.double(p)
	v.double(&v)
	v.double(&v)
	return v.IsIdentity()
}

// ScalarMult returns e·p, with the scalar given as 32 big-endian
// bytes.  Fixed 4-bit windows over a 15-entry table; every window adds
// through the complete formulas (the zero window adds the identity),
// so the sequence of point operations does not depend on scalar bits.
// One call is the EC backend's C_e operation.
func (p *Point) ScalarMult(e *[32]byte) *Point {
	var table [16]Point
	table[0] = identity
	table[1] = *p
	for i := 2; i < 16; i++ {
		table[i].add(&table[i-1], p)
	}
	v := identity
	for _, by := range e {
		for _, nib := range [2]uint8{by >> 4, by & 15} {
			v.double(&v)
			v.double(&v)
			v.double(&v)
			v.double(&v)
			v.add(&v, &table[nib])
		}
	}
	return &v
}

// Encode appends the canonical 32-byte compressed encoding of p to
// dst: the little-endian bytes of y with the sign of x in the top bit.
func (p *Point) Encode(dst []byte) []byte {
	var zInv, x, y fe
	feInvert(&zInv, &p.z)
	feMul(&x, &p.x, &zInv)
	feMul(&y, &p.y, &zInv)

	var out [32]byte
	y.toBytes(&out)
	if feIsNegative(&x) {
		out[31] |= 0x80
	}
	return append(dst, out[:]...)
}

// Decode parses a canonical compressed encoding.  It rejects
// encodings with y ≥ p, encodings whose y is on no curve point, and
// the non-canonical "negative zero" x.  It does NOT reject low-order
// points; callers that need subgroup membership combine Decode with
// IsSmallOrder.
func Decode(b []byte) (*Point, error) {
	if len(b) != EncodedLen {
		return nil, fmt.Errorf("ec25519: point encoding must be %d bytes, got %d", EncodedLen, len(b))
	}
	sign := b[31]&0x80 != 0
	y := feFromBytes(b)
	// Canonicality of y: re-serialize and compare against the input
	// with the sign bit cleared.
	var canon [32]byte
	y.toBytes(&canon)
	for i := range canon {
		expect := b[i]
		if i == 31 {
			expect &^= 0x80
		}
		if canon[i] != expect {
			return nil, ErrNonCanonical
		}
	}

	// Recover x from x² = (y² - 1) / (d·y² + 1).
	var yy, u, v, x fe
	feSquare(&yy, &y)
	feSub(&u, &yy, &feOne)
	feMul(&v, &yy, &dConst)
	feAdd(&v, &v, &feOne)
	if !feSqrtRatio(&x, &u, &v) {
		return nil, ErrNotOnCurve
	}
	if feIsZero(&x) {
		if sign {
			return nil, ErrNonCanonical // -0 is not canonical
		}
	} else if feIsNegative(&x) != sign {
		feNeg(&x, &x)
	}

	p := &Point{x: x, y: y, z: feOne}
	feMul(&p.t, &x, &y)
	return p, nil
}

// feSqrtRatio sets r to the non-negative square root of u/v and
// reports whether u/v was square.  Division by zero yields zero, so
// (0, v) gives (0, true) and (u≠0, 0) gives (0, false) — the
// conventions the Elligator map and Decode rely on.  Uses the
// p ≡ 5 (mod 8) shortcut: candidate u·v³·(u·v⁷)^((p-5)/8), fixed up
// by √-1 when the check lands on -u.
func feSqrtRatio(r, u, v *fe) bool {
	var v2, v3, v7, uv7, cand, check, negU fe
	feSquare(&v2, v)
	feMul(&v3, &v2, v)
	feSquare(&v7, &v3)
	feMul(&v7, &v7, v)
	feMul(&uv7, u, &v7)
	fePow(&cand, &uv7, expPMinus5Over8)
	feMul(&cand, &cand, u)
	feMul(&cand, &cand, &v3)

	feSquare(&check, &cand)
	feMul(&check, &check, v) // v·cand²
	feNeg(&negU, u)

	switch {
	case feEqual(&check, u):
		// cand is already a root.
	case feEqual(&check, &negU):
		feMul(&cand, &cand, &sqrtM1Const)
	default:
		*r = feZero
		return false
	}
	feAbs(r, &cand)
	return true
}
