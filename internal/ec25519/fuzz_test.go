package ec25519

import (
	"bytes"
	"testing"
)

// FuzzMapToPointRoundTrip drives arbitrary 64-byte uniform strings
// through the whole hash-to-curve pipeline and pins the invariants the
// oracle relies on: the mapped point is a canonical group element
// (prime-order subgroup, not small-order unless identity), and its
// 32-byte encoding survives Decode → Encode byte-identically.  The
// seeds cover the map's edge inputs — all-zero (Elligator maps r = 0 to
// a fixed point), all-ones, a sign-flip pattern, and values near the
// field modulus in either half of the input.
func FuzzMapToPointRoundTrip(f *testing.F) {
	seed := func(fill byte, tweaks ...int) []byte {
		b := make([]byte, HashLen)
		for i := range b {
			b[i] = fill
		}
		for _, i := range tweaks {
			b[i] ^= 0xff
		}
		return b
	}
	f.Add(seed(0x00))
	f.Add(seed(0xff))
	f.Add(seed(0x55, 0, 31, 32, 63))
	// 2^255 - 19 in the low 32 bytes: a non-canonical field encoding
	// the reduction step must fold to zero.
	p := seed(0x00)
	p[0] = 0xed
	for i := 1; i < 31; i++ {
		p[i] = 0xff
	}
	p[31] = 0x7f
	f.Add(p)
	// High bit set in the sign byte of each half.
	f.Add(seed(0x01, 31))
	f.Add(seed(0x80, 63))

	f.Fuzz(func(t *testing.T, uniform []byte) {
		if len(uniform) != HashLen {
			t.Skip()
		}
		pt := MapToPoint(uniform)
		if pt.IsSmallOrder() && !pt.IsIdentity() {
			t.Fatal("MapToPoint produced a small-order non-identity point")
		}
		enc := pt.Encode(nil)
		if len(enc) != EncodedLen {
			t.Fatalf("encoding is %d bytes, want %d", len(enc), EncodedLen)
		}
		back, err := Decode(enc)
		if err != nil {
			t.Fatalf("Decode rejected MapToPoint output %x: %v", enc, err)
		}
		if !back.Equal(pt) {
			t.Fatalf("decoded point differs from mapped point for input %x", uniform)
		}
		if re := back.Encode(nil); !bytes.Equal(re, enc) {
			t.Fatalf("re-encoding not byte-identical: %x vs %x", re, enc)
		}
	})
}

// FuzzDecodeNoPanic feeds arbitrary 32-byte strings to Decode: every
// input must either decode to a point that re-encodes to the identical
// canonical bytes, or be rejected — never panic, never round-trip to
// different bytes (a second encoding of the same point would break the
// protocol's sort/compare-by-encoding invariant).
func FuzzDecodeNoPanic(f *testing.F) {
	f.Add(make([]byte, EncodedLen))
	one := make([]byte, EncodedLen)
	one[0] = 1
	f.Add(one) // the identity's canonical encoding
	high := make([]byte, EncodedLen)
	high[31] = 0x80
	f.Add(high)
	noncanon := make([]byte, EncodedLen)
	for i := range noncanon {
		noncanon[i] = 0xff
	}
	noncanon[31] = 0x7f
	f.Add(noncanon) // y >= p: must be rejected as non-canonical

	f.Fuzz(func(t *testing.T, b []byte) {
		if len(b) != EncodedLen {
			t.Skip()
		}
		pt, err := Decode(b)
		if err != nil {
			return
		}
		if re := pt.Encode(nil); !bytes.Equal(re, b) {
			t.Fatalf("accepted encoding %x re-encodes to %x", b, re)
		}
	})
}
