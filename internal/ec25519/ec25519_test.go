package ec25519

import (
	"bytes"
	"crypto/sha512"
	"math/big"
	"math/rand"
	"testing"
)

var pBig = new(big.Int).Sub(new(big.Int).Lsh(big.NewInt(1), 255), big.NewInt(19))

// feToBig converts a field element to its canonical integer value.
func feToBig(t *testing.T, a *fe) *big.Int {
	t.Helper()
	var b [32]byte
	a.toBytes(&b)
	// little-endian → big-endian
	rev := make([]byte, 32)
	for i := range rev {
		rev[i] = b[31-i]
	}
	return new(big.Int).SetBytes(rev)
}

// feFromBig converts an integer in [0, p) to a field element.
func feFromBig(v *big.Int) fe {
	var buf [32]byte
	v.FillBytes(buf[:])
	for i, j := 0, 31; i < j; i, j = i+1, j-1 {
		buf[i], buf[j] = buf[j], buf[i]
	}
	return feFromBytes(buf[:])
}

// TestFieldArithmeticDifferential cross-checks fe add/sub/mul/square/
// invert against math/big over random operands.
func TestFieldArithmeticDifferential(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 500; i++ {
		a := new(big.Int).Rand(rng, pBig)
		b := new(big.Int).Rand(rng, pBig)
		fa, fb := feFromBig(a), feFromBig(b)

		var got fe
		feAdd(&got, &fa, &fb)
		want := new(big.Int).Add(a, b)
		want.Mod(want, pBig)
		if feToBig(t, &got).Cmp(want) != 0 {
			t.Fatalf("add mismatch at i=%d", i)
		}

		feSub(&got, &fa, &fb)
		want.Sub(a, b)
		want.Mod(want, pBig)
		if feToBig(t, &got).Cmp(want) != 0 {
			t.Fatalf("sub mismatch at i=%d", i)
		}

		feMul(&got, &fa, &fb)
		want.Mul(a, b)
		want.Mod(want, pBig)
		if feToBig(t, &got).Cmp(want) != 0 {
			t.Fatalf("mul mismatch at i=%d", i)
		}

		feSquare(&got, &fa)
		want.Mul(a, a)
		want.Mod(want, pBig)
		if feToBig(t, &got).Cmp(want) != 0 {
			t.Fatalf("square mismatch at i=%d", i)
		}

		if a.Sign() != 0 {
			feInvert(&got, &fa)
			want.ModInverse(a, pBig)
			if feToBig(t, &got).Cmp(want) != 0 {
				t.Fatalf("invert mismatch at i=%d", i)
			}
		}
	}
}

// basePoint returns the standard generator (x, 4/5) with x
// non-negative... actually the standard base point has x odd?  The
// Ed25519 base point has the even (non-negative per our convention?)
// x recovered from y = 4/5 with sign bit 0 in the canonical encoding
// 0x58666...66.  We decode that encoding directly.
func basePoint(t *testing.T) *Point {
	t.Helper()
	enc := make([]byte, 32)
	for i := range enc {
		enc[i] = 0x66
	}
	enc[0] = 0x58
	p, err := Decode(enc)
	if err != nil {
		t.Fatalf("decoding standard base point: %v", err)
	}
	return p
}

// TestBasePointKnownFacts checks the decoded standard generator
// against facts pinned by the Ed25519 specification: y = 4/5, the
// point is on the curve, has order ℓ, and re-encodes to the same
// bytes.
func TestBasePointKnownFacts(t *testing.T) {
	b := basePoint(t)

	// y = 4/5 mod p.
	var zInv, y fe
	feInvert(&zInv, &b.z)
	feMul(&y, &b.y, &zInv)
	wantY := new(big.Int).ModInverse(big.NewInt(5), pBig)
	wantY.Mul(wantY, big.NewInt(4))
	wantY.Mod(wantY, pBig)
	if feToBig(t, &y).Cmp(wantY) != 0 {
		t.Fatalf("base point y != 4/5")
	}

	if !onCurve(b) {
		t.Fatalf("base point not on curve")
	}
	if b.IsSmallOrder() {
		t.Fatalf("base point claims small order")
	}

	// ℓ·B = identity certifies scalar mult against the true subgroup
	// order.
	var e [32]byte
	orderL.FillBytes(e[:])
	if !b.ScalarMult(&e).IsIdentity() {
		t.Fatalf("ℓ·B is not the identity")
	}

	enc := b.Encode(nil)
	want := basePointEncoding()
	if !bytes.Equal(enc, want) {
		t.Fatalf("base point re-encoding mismatch:\n got %x\nwant %x", enc, want)
	}
}

func basePointEncoding() []byte {
	enc := make([]byte, 32)
	for i := range enc {
		enc[i] = 0x66
	}
	enc[0] = 0x58
	return enc
}

// onCurve checks -x² + y² = 1 + d·x²·y² on the affine coordinates.
func onCurve(p *Point) bool {
	var zInv, x, y, x2, y2, lhs, rhs fe
	feInvert(&zInv, &p.z)
	feMul(&x, &p.x, &zInv)
	feMul(&y, &p.y, &zInv)
	feSquare(&x2, &x)
	feSquare(&y2, &y)
	feSub(&lhs, &y2, &x2)
	feMul(&rhs, &x2, &y2)
	feMul(&rhs, &rhs, &dConst)
	feAdd(&rhs, &rhs, &feOne)
	return feEqual(&lhs, &rhs)
}

// TestAddDoubleConsistency checks 2P computed by double against P+P
// by the general addition, and the group laws P+Q = Q+P and
// (P+Q)+R = P+(Q+R), on multiples of the base point.
func TestAddDoubleConsistency(t *testing.T) {
	b := basePoint(t)
	p := b.Double()
	if !p.Equal(b.Add(b)) {
		t.Fatalf("double(B) != B+B")
	}
	q := p.Double().Add(b) // 5B
	if !p.Add(q).Equal(q.Add(p)) {
		t.Fatalf("addition not commutative")
	}
	if !p.Add(q).Add(b).Equal(p.Add(q.Add(b))) {
		t.Fatalf("addition not associative")
	}
	if !p.Add(Identity()).Equal(p) {
		t.Fatalf("P + identity != P")
	}
	if !onCurve(q) {
		t.Fatalf("5B not on curve")
	}
}

// TestScalarMultMatchesRepeatedAdd pins the window ladder against
// naive repeated addition for small scalars.
func TestScalarMultMatchesRepeatedAdd(t *testing.T) {
	b := basePoint(t)
	acc := Identity()
	for k := 1; k <= 40; k++ {
		acc = acc.Add(b)
		var e [32]byte
		big.NewInt(int64(k)).FillBytes(e[:])
		if !b.ScalarMult(&e).Equal(acc) {
			t.Fatalf("ScalarMult(%d) != %d-fold addition", k, k)
		}
	}
}

// TestMapToPointProperties: Elligator outputs are on the curve, in
// the prime-order subgroup, deterministic, and round-trip through
// Encode/Decode.
func TestMapToPointProperties(t *testing.T) {
	for i := 0; i < 50; i++ {
		seed := sha512.Sum512([]byte{byte(i), byte(i >> 8), 0xAB})
		p := MapToPoint(seed[:])
		if !onCurve(p) {
			t.Fatalf("mapped point %d not on curve", i)
		}
		if p.IsSmallOrder() {
			t.Fatalf("mapped point %d has small order", i)
		}
		var e [32]byte
		orderL.FillBytes(e[:])
		if !p.ScalarMult(&e).IsIdentity() {
			t.Fatalf("mapped point %d not killed by ℓ", i)
		}
		q := MapToPoint(seed[:])
		if !p.Equal(q) {
			t.Fatalf("MapToPoint not deterministic at %d", i)
		}
		enc := p.Encode(nil)
		dec, err := Decode(enc)
		if err != nil {
			t.Fatalf("decoding mapped point %d: %v", i, err)
		}
		if !dec.Equal(p) {
			t.Fatalf("encode/decode round-trip broke point %d", i)
		}
	}
}

// TestScalarMultCommutes is the heart of the commutative-encryption
// property: a·(b·P) == b·(a·P).
func TestScalarMultCommutes(t *testing.T) {
	seed := sha512.Sum512([]byte("commute"))
	p := MapToPoint(seed[:])
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 10; i++ {
		a := new(big.Int).Rand(rng, orderL)
		b := new(big.Int).Rand(rng, orderL)
		var ea, eb [32]byte
		a.FillBytes(ea[:])
		b.FillBytes(eb[:])
		ab := p.ScalarMult(&ea).ScalarMult(&eb)
		ba := p.ScalarMult(&eb).ScalarMult(&ea)
		if !ab.Equal(ba) {
			t.Fatalf("scalar mult does not commute at i=%d", i)
		}
	}
}

// TestDecodeRejections: non-canonical and off-curve encodings fail.
func TestDecodeRejections(t *testing.T) {
	// y = p (non-canonical encoding of 0).
	var buf [32]byte
	pLE := feFromBig(big.NewInt(0)) // placeholder; build p bytes by hand
	_ = pLE
	pBytes := new(big.Int).Set(pBig)
	pBytes.FillBytes(buf[:])
	for i, j := 0, 31; i < j; i, j = i+1, j-1 {
		buf[i], buf[j] = buf[j], buf[i]
	}
	if _, err := Decode(buf[:]); err == nil {
		t.Fatalf("Decode accepted y = p")
	}

	// All-ones is ≥ p with the sign bit set; also non-canonical.
	ones := bytes.Repeat([]byte{0xFF}, 32)
	if _, err := Decode(ones); err == nil {
		t.Fatalf("Decode accepted 0xFF…FF")
	}

	// Wrong length.
	if _, err := Decode(make([]byte, 31)); err == nil {
		t.Fatalf("Decode accepted 31 bytes")
	}

	// Find an off-curve y: y = 2 happens to be on no point iff
	// (y²-1)/(dy²+1) is non-square; search small ys for one that
	// Decode rejects with ErrNotOnCurve to make sure the path fires.
	found := false
	for y := int64(2); y < 40 && !found; y++ {
		var enc [32]byte
		big.NewInt(y).FillBytes(enc[:])
		for i, j := 0, 31; i < j; i, j = i+1, j-1 {
			enc[i], enc[j] = enc[j], enc[i]
		}
		if _, err := Decode(enc[:]); err == ErrNotOnCurve {
			found = true
		}
	}
	if !found {
		t.Fatalf("no small off-curve y rejected — sqrt check suspect")
	}

	// Identity decodes fine and reports small order.
	var encI [32]byte
	encI[0] = 1
	id, err := Decode(encI[:])
	if err != nil {
		t.Fatalf("decoding identity: %v", err)
	}
	if !id.IsIdentity() || !id.IsSmallOrder() {
		t.Fatalf("identity not recognized")
	}
}
