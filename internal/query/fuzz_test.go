package query

import "testing"

// FuzzParse: the SQL parser must never panic, and every accepted query
// must satisfy the parser's own invariants.
func FuzzParse(f *testing.F) {
	seeds := []string{
		"select * from a, b where a.k = b.k",
		"select count(*) from a, b where a.k = b.k and a.f = true",
		"select t_r.pattern, t_s.reaction, count(*) from t_r, t_s where t_r.personid = t_s.personid and t_s.drug = true group by t_r.pattern, t_s.reaction",
		"select",
		"SELECT * FROM",
		"select * from a, b where",
		"select count(*) from a, b where a.k = b.k group by a.",
		"",
		"garbage $#!",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, sql string) {
		q, err := Parse(sql)
		if err != nil {
			return
		}
		// Accepted queries obey the invariants Execute depends on.
		if q.Tables[0] == "" || q.Tables[1] == "" {
			t.Fatal("accepted query without two tables")
		}
		if q.JoinLeft.Table == q.JoinRight.Table {
			t.Fatal("accepted same-table join")
		}
		if !q.SelectStar && !q.CountStar {
			t.Fatal("accepted query with empty select semantics")
		}
		if q.SelectStar && (q.CountStar || len(q.SelectCols) > 0) {
			t.Fatal("accepted SELECT * mixed with other items")
		}
		if len(q.GroupBy) > 0 && !q.CountStar {
			t.Fatal("accepted GROUP BY without COUNT(*)")
		}
		if PlanFor(q) == PlanInvalid {
			t.Fatal("accepted query with no plan")
		}
	})
}
