package query_test

import (
	"fmt"

	"minshare/internal/query"
)

// The paper's Section 1.1 medical-research query parses verbatim and
// plans onto the third-party group-count protocol.
func ExampleParse() {
	q, err := query.Parse(`select t_r.pattern, t_s.reaction, count(*)
		from t_r, t_s
		where t_r.personid = t_s.personid and t_s.drug = true
		group by t_r.pattern, t_s.reaction`)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Println("join:", q.JoinLeft, "=", q.JoinRight)
	fmt.Println("filter:", q.Filters[0].Col, "=", q.Filters[0].Want)
	fmt.Println("plan:", query.PlanFor(q))
	// Output:
	// join: t_r.personid = t_s.personid
	// filter: t_s.drug = true
	// plan: third-party-group-counts
}
