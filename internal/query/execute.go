package query

import (
	"context"
	"fmt"
	"sort"
	"strings"

	"minshare/internal/aggregate"
	"minshare/internal/core"
	"minshare/internal/reldb"
	"minshare/internal/transport"
)

// PlanKind names the protocol a query compiles to.
type PlanKind int

// Plan kinds.
const (
	PlanInvalid PlanKind = iota
	// PlanJoin answers SELECT * via the private equijoin: the receiver
	// reconstructs the joined rows.
	PlanJoin
	// PlanJoinSize answers SELECT COUNT(*) via the equijoin-size
	// protocol on the (filtered) join columns.
	PlanJoinSize
	// PlanGroupCounts answers SELECT cols, COUNT(*) ... GROUP BY via
	// third-party intersection sizes (the generalized Figure 2 study).
	PlanGroupCounts
)

// String implements fmt.Stringer.
func (k PlanKind) String() string {
	switch k {
	case PlanJoin:
		return "private-equijoin"
	case PlanJoinSize:
		return "private-equijoin-size"
	case PlanGroupCounts:
		return "third-party-group-counts"
	default:
		return "invalid"
	}
}

// GroupRow is one bucket of a group-by result.
type GroupRow struct {
	// Values holds the boolean group-by values in GroupBy column order.
	Values []bool
	Count  int
}

// Result is a private query's answer (held by the receiver; for group-by
// plans, by the third-party analyst).
type Result struct {
	Plan PlanKind
	// Rows is the joined relation for PlanJoin.
	Rows *reldb.Table
	// Count is the answer for PlanJoinSize.
	Count int
	// Groups holds PlanGroupCounts buckets sorted by Values; GroupCols
	// names the columns.
	Groups    []GroupRow
	GroupCols []ColumnRef
}

// PlanFor returns the plan a parsed query compiles to, without running
// anything — both parties can inspect it (the query is public).
func PlanFor(q *Query) PlanKind {
	switch {
	case q.SelectStar:
		return PlanJoin
	case q.CountStar && len(q.GroupBy) == 0:
		return PlanJoinSize
	case q.CountStar:
		return PlanGroupCounts
	default:
		return PlanInvalid
	}
}

// Execute runs the query privately, with tR held by the receiver
// enterprise and tS by the sender enterprise (and, for group-by plans, a
// third-party analyst using cfgT).  The parties communicate over
// in-process pipes; networked deployments compose the same plan steps
// over party.Client connections.
func Execute(ctx context.Context, cfgR, cfgS, cfgT core.Config, q *Query, tR, tS *reldb.Table) (*Result, error) {
	bindR, bindS, err := bindTables(q, tR, tS)
	if err != nil {
		return nil, err
	}

	// Apply boolean filters locally at each owner.
	fR, fS, err := applyFilters(q, bindR, bindS)
	if err != nil {
		return nil, err
	}

	switch PlanFor(q) {
	case PlanJoin:
		return executeJoin(ctx, cfgR, cfgS, q, fR, fS)
	case PlanJoinSize:
		return executeJoinSize(ctx, cfgR, cfgS, q, fR, fS)
	case PlanGroupCounts:
		return executeGroupCounts(ctx, cfgR, cfgS, cfgT, q, fR, fS)
	default:
		return nil, fmt.Errorf("query: unsupported query shape")
	}
}

// binding couples a table with the query-side name it answers to and its
// join column.
type binding struct {
	table   *reldb.Table
	name    string
	joinCol string
}

func bindTables(q *Query, tR, tS *reldb.Table) (r, s binding, err error) {
	nameR := strings.ToLower(tR.Name())
	nameS := strings.ToLower(tS.Name())
	if q.Tables[0] != nameR && q.Tables[1] != nameR {
		return r, s, fmt.Errorf("query: receiver table %q not in FROM clause %v", nameR, q.Tables)
	}
	if q.Tables[0] != nameS && q.Tables[1] != nameS {
		return r, s, fmt.Errorf("query: sender table %q not in FROM clause %v", nameS, q.Tables)
	}
	if nameR == nameS {
		return r, s, fmt.Errorf("query: tables must have distinct names")
	}
	r = binding{table: tR, name: nameR}
	s = binding{table: tS, name: nameS}
	switch {
	case q.JoinLeft.Table == nameR && q.JoinRight.Table == nameS:
		r.joinCol, s.joinCol = q.JoinLeft.Column, q.JoinRight.Column
	case q.JoinLeft.Table == nameS && q.JoinRight.Table == nameR:
		s.joinCol, r.joinCol = q.JoinLeft.Column, q.JoinRight.Column
	default:
		return r, s, fmt.Errorf("query: join predicate %v = %v does not span %q and %q",
			q.JoinLeft, q.JoinRight, nameR, nameS)
	}
	if _, err := r.table.Schema().ColumnIndex(r.joinCol); err != nil {
		return r, s, err
	}
	if _, err := s.table.Schema().ColumnIndex(s.joinCol); err != nil {
		return r, s, err
	}
	return r, s, nil
}

func applyFilters(q *Query, r, s binding) (binding, binding, error) {
	for _, f := range q.Filters {
		var b *binding
		switch f.Col.Table {
		case r.name:
			b = &r
		case s.name:
			b = &s
		default:
			return r, s, fmt.Errorf("query: filter references unknown table %q", f.Col.Table)
		}
		idx, err := b.table.Schema().ColumnIndex(f.Col.Column)
		if err != nil {
			return r, s, err
		}
		if b.table.Schema().Columns()[idx].Type != reldb.TypeBool {
			return r, s, fmt.Errorf("query: filter column %v is not boolean", f.Col)
		}
		want := f.Want
		b.table = b.table.Select(func(row reldb.Row) bool { return row[idx].AsBool() == want })
	}
	return r, s, nil
}

func executeJoin(ctx context.Context, cfgR, cfgS core.Config, q *Query, r, s binding) (*Result, error) {
	values, exts, err := s.table.ExtPayloads(s.joinCol)
	if err != nil {
		return nil, err
	}
	recs := make([]core.JoinRecord, len(values))
	for i := range values {
		recs[i] = core.JoinRecord{Value: values[i], Ext: exts[i]}
	}
	rValues, err := r.table.DistinctValues(r.joinCol)
	if err != nil {
		return nil, err
	}

	var join *core.JoinResult
	err = runPipe(ctx,
		func(ctx context.Context, conn transport.Conn) error {
			var err error
			join, err = core.EquijoinReceiver(ctx, cfgR, conn, rValues)
			return err
		},
		func(ctx context.Context, conn transport.Conn) error {
			_, err := core.EquijoinSender(ctx, cfgS, conn, recs)
			return err
		})
	if err != nil {
		return nil, err
	}

	out, err := reconstructJoin(q, r, s, join)
	if err != nil {
		return nil, err
	}
	return &Result{Plan: PlanJoin, Rows: out}, nil
}

// reconstructJoin builds the joined relation from R's rows and the
// decrypted ext payloads, mirroring reldb.Join's schema (R columns then
// S columns minus the join column).
func reconstructJoin(q *Query, r, s binding, join *core.JoinResult) (*reldb.Table, error) {
	rIdx, err := r.table.Schema().ColumnIndex(r.joinCol)
	if err != nil {
		return nil, err
	}
	sIdx, err := s.table.Schema().ColumnIndex(s.joinCol)
	if err != nil {
		return nil, err
	}
	var cols []reldb.Column
	cols = append(cols, r.table.Schema().Columns()...)
	for j, c := range s.table.Schema().Columns() {
		if j == sIdx {
			continue
		}
		cols = append(cols, reldb.Column{Name: s.name + "." + c.Name, Type: c.Type})
	}
	schema, err := reldb.NewSchema(cols...)
	if err != nil {
		return nil, err
	}
	out := reldb.NewTable("result", schema)

	// Group R's rows by join value.
	rRows := make(map[string][]reldb.Row)
	for _, row := range r.table.Rows() {
		rRows[string(row[rIdx].Encode())] = append(rRows[string(row[rIdx].Encode())], row)
	}
	for _, m := range join.Matches {
		sRows, err := reldb.DecodeRows(m.Ext, s.table.Schema().NumColumns())
		if err != nil {
			return nil, fmt.Errorf("query: decoding ext rows: %w", err)
		}
		for _, rRow := range rRows[string(m.Value)] {
			for _, sRow := range sRows {
				nr := append(reldb.Row(nil), rRow...)
				for j, v := range sRow {
					if j == sIdx {
						continue
					}
					nr = append(nr, v)
				}
				if err := out.Insert(nr); err != nil {
					return nil, err
				}
			}
		}
	}
	return out, nil
}

func executeJoinSize(ctx context.Context, cfgR, cfgS core.Config, q *Query, r, s binding) (*Result, error) {
	rValues, err := r.table.ColumnValues(r.joinCol)
	if err != nil {
		return nil, err
	}
	sValues, err := s.table.ColumnValues(s.joinCol)
	if err != nil {
		return nil, err
	}
	var size *core.JoinSizeResult
	err = runPipe(ctx,
		func(ctx context.Context, conn transport.Conn) error {
			var err error
			size, err = core.EquijoinSizeReceiver(ctx, cfgR, conn, rValues)
			return err
		},
		func(ctx context.Context, conn transport.Conn) error {
			_, err := core.EquijoinSizeSender(ctx, cfgS, conn, sValues)
			return err
		})
	if err != nil {
		return nil, err
	}
	return &Result{Plan: PlanJoinSize, Count: size.JoinSize}, nil
}

func executeGroupCounts(ctx context.Context, cfgR, cfgS, cfgT core.Config, q *Query, r, s binding) (*Result, error) {
	var groupR, groupS []string
	for _, g := range q.GroupBy {
		switch g.Table {
		case r.name:
			groupR = append(groupR, g.Column)
		case s.name:
			groupS = append(groupS, g.Column)
		default:
			return nil, fmt.Errorf("query: GROUP BY references unknown table %q", g.Table)
		}
	}
	// Group-by counting over joined ids assumes the join keys are unique
	// per row on each side (ids); the intersection-size protocol counts
	// distinct matches, matching COUNT(*) for key joins.
	spec := aggregate.StudySpec{
		TableR: r.table, IDColR: r.joinCol, GroupByR: groupR,
		TableS: s.table, IDColS: s.joinCol, GroupByS: groupS,
	}
	table, err := aggregate.GroupByCounts(ctx, cfgR, cfgS, cfgT, spec)
	if err != nil {
		return nil, err
	}

	// Flatten cells into rows ordered by the query's GROUP BY columns.
	res := &Result{Plan: PlanGroupCounts, GroupCols: q.GroupBy}
	for _, cell := range table.Cells() {
		vals := make([]bool, 0, len(q.GroupBy))
		ri, si := 0, 0
		for _, g := range q.GroupBy {
			if g.Table == r.name {
				vals = append(vals, cell.R[ri] == '1')
				ri++
			} else {
				vals = append(vals, cell.S[si] == '1')
				si++
			}
		}
		res.Groups = append(res.Groups, GroupRow{Values: vals, Count: table[cell]})
	}
	sort.Slice(res.Groups, func(i, j int) bool {
		a, b := res.Groups[i].Values, res.Groups[j].Values
		for k := range a {
			if a[k] != b[k] {
				return !a[k] // false before true
			}
		}
		return false
	})
	return res, nil
}

func runPipe(ctx context.Context, recvFn, sendFn func(ctx context.Context, conn transport.Conn) error) error {
	connR, connS := transport.Pipe()
	defer func() { _ = connR.Close() }()
	ch := make(chan error, 1)
	go func() {
		err := sendFn(ctx, connS)
		if err != nil {
			connS.Close() // lint:ignore errclose closing is the failure signal to the receiver; the root cause travels on ch
		}
		ch <- err
	}()
	if err := recvFn(ctx, connR); err != nil {
		connR.Close() // lint:ignore errclose closing is the failure signal to the sender goroutine; the recv error carries the root cause
		<-ch
		return err
	}
	return <-ch
}
