// Package query executes a small SQL subset privately across two
// enterprises' tables.
//
// The paper states its problem as "given a database query Q spanning the
// tables in D_R and D_S, compute the answer to Q ... without revealing
// any additional information" (Section 2.2) — and presents the medical
// application as literal SQL:
//
//	select pattern, reaction, count(*)
//	from T_R, T_S
//	where T_R.personid = T_S.personid and T_S.drug = true
//	group by T_R.pattern, T_S.reaction
//
// This package parses queries of exactly that shape and plans them onto
// the minimal-sharing protocols:
//
//	SELECT *            FROM R, S WHERE R.a = S.b [AND bool filters]   → private equijoin
//	SELECT COUNT(*)     FROM R, S WHERE R.a = S.b [AND bool filters]   → private equijoin size
//	SELECT cols, COUNT(*) FROM ... GROUP BY bool-cols                  → third-party group-by counts
//
// Boolean equality filters (t.col = true/false) are applied locally by
// the table's owner before the protocol — the query text itself is
// public between the parties, per Section 2.2 ("we assume that the query
// Q is revealed to both parties").
package query

import (
	"fmt"
	"strings"
	"unicode"
)

// tokenKind enumerates lexer token types.
type tokenKind int

const (
	tokEOF tokenKind = iota
	tokIdent
	tokStar
	tokComma
	tokDot
	tokEquals
	tokLParen
	tokRParen
)

type token struct {
	kind tokenKind
	text string // lower-cased for identifiers/keywords
	pos  int
}

// lex tokenizes a query string.
func lex(input string) ([]token, error) {
	var toks []token
	i := 0
	for i < len(input) {
		c := rune(input[i])
		switch {
		case unicode.IsSpace(c):
			i++
		case c == '*':
			toks = append(toks, token{tokStar, "*", i})
			i++
		case c == ',':
			toks = append(toks, token{tokComma, ",", i})
			i++
		case c == '.':
			toks = append(toks, token{tokDot, ".", i})
			i++
		case c == '=':
			toks = append(toks, token{tokEquals, "=", i})
			i++
		case c == '(':
			toks = append(toks, token{tokLParen, "(", i})
			i++
		case c == ')':
			toks = append(toks, token{tokRParen, ")", i})
			i++
		case unicode.IsLetter(c) || c == '_':
			start := i
			for i < len(input) && (unicode.IsLetter(rune(input[i])) || unicode.IsDigit(rune(input[i])) || input[i] == '_') {
				i++
			}
			toks = append(toks, token{tokIdent, strings.ToLower(input[start:i]), start})
		default:
			return nil, fmt.Errorf("query: unexpected character %q at position %d", c, i)
		}
	}
	toks = append(toks, token{tokEOF, "", len(input)})
	return toks, nil
}
