package query

import (
	"errors"
	"fmt"
)

// ColumnRef is a table-qualified column, e.g. t_s.drug.
type ColumnRef struct {
	Table, Column string
}

// String implements fmt.Stringer.
func (c ColumnRef) String() string { return c.Table + "." + c.Column }

// BoolFilter is a `table.col = true|false` predicate.
type BoolFilter struct {
	Col  ColumnRef
	Want bool
}

// Query is the parsed form of a supported statement.
type Query struct {
	// SelectStar is SELECT *.
	SelectStar bool
	// CountStar is true when COUNT(*) appears in the select list.
	CountStar bool
	// SelectCols lists the non-aggregate select columns (must equal the
	// GROUP BY columns).
	SelectCols []ColumnRef
	// Tables are the two FROM tables, in order.
	Tables [2]string
	// JoinLeft = JoinRight is the equijoin predicate.
	JoinLeft, JoinRight ColumnRef
	// Filters are the boolean equality predicates.
	Filters []BoolFilter
	// GroupBy lists the grouping columns.
	GroupBy []ColumnRef
}

type parser struct {
	toks []token
	pos  int
}

func (p *parser) peek() token { return p.toks[p.pos] }
func (p *parser) next() token { t := p.toks[p.pos]; p.pos++; return t }
func (p *parser) atEOF() bool { return p.peek().kind == tokEOF }

func (p *parser) expectIdent(word string) error {
	t := p.next()
	if t.kind != tokIdent || t.text != word {
		return fmt.Errorf("query: expected %q at position %d, got %q", word, t.pos, t.text)
	}
	return nil
}

func (p *parser) expectKind(k tokenKind, what string) (token, error) {
	t := p.next()
	if t.kind != k {
		return t, fmt.Errorf("query: expected %s at position %d, got %q", what, t.pos, t.text)
	}
	return t, nil
}

// parseColumnRef parses table.column.
func (p *parser) parseColumnRef() (ColumnRef, error) {
	tbl, err := p.expectKind(tokIdent, "table name")
	if err != nil {
		return ColumnRef{}, err
	}
	if _, err := p.expectKind(tokDot, "'.'"); err != nil {
		return ColumnRef{}, err
	}
	col, err := p.expectKind(tokIdent, "column name")
	if err != nil {
		return ColumnRef{}, err
	}
	return ColumnRef{Table: tbl.text, Column: col.text}, nil
}

// Parse parses one supported SELECT statement.
func Parse(sql string) (*Query, error) {
	toks, err := lex(sql)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	q := &Query{}

	if err := p.expectIdent("select"); err != nil {
		return nil, err
	}

	// Select list.
	for {
		t := p.peek()
		switch {
		case t.kind == tokStar:
			p.next()
			q.SelectStar = true
		case t.kind == tokIdent && t.text == "count":
			p.next()
			if _, err := p.expectKind(tokLParen, "'('"); err != nil {
				return nil, err
			}
			if _, err := p.expectKind(tokStar, "'*'"); err != nil {
				return nil, err
			}
			if _, err := p.expectKind(tokRParen, "')'"); err != nil {
				return nil, err
			}
			q.CountStar = true
		case t.kind == tokIdent:
			// Could be a bare column (group-by select) — require
			// table-qualified for unambiguity.
			ref, err := p.parseColumnRef()
			if err != nil {
				return nil, err
			}
			q.SelectCols = append(q.SelectCols, ref)
		default:
			return nil, fmt.Errorf("query: unexpected %q in select list at position %d", t.text, t.pos)
		}
		if p.peek().kind == tokComma {
			p.next()
			continue
		}
		break
	}
	if q.SelectStar && (q.CountStar || len(q.SelectCols) > 0) {
		return nil, errors.New("query: SELECT * cannot be combined with other select items")
	}
	if !q.SelectStar && !q.CountStar && len(q.SelectCols) > 0 {
		return nil, errors.New("query: bare column select without COUNT(*) is not supported")
	}

	// FROM t1, t2.
	if err := p.expectIdent("from"); err != nil {
		return nil, err
	}
	t1, err := p.expectKind(tokIdent, "table name")
	if err != nil {
		return nil, err
	}
	if _, err := p.expectKind(tokComma, "','"); err != nil {
		return nil, err
	}
	t2, err := p.expectKind(tokIdent, "table name")
	if err != nil {
		return nil, err
	}
	q.Tables = [2]string{t1.text, t2.text}

	// WHERE join [AND filters...].
	if err := p.expectIdent("where"); err != nil {
		return nil, err
	}
	foundJoin := false
	for {
		left, err := p.parseColumnRef()
		if err != nil {
			return nil, err
		}
		if _, err := p.expectKind(tokEquals, "'='"); err != nil {
			return nil, err
		}
		t := p.peek()
		if t.kind == tokIdent && (t.text == "true" || t.text == "false") {
			p.next()
			q.Filters = append(q.Filters, BoolFilter{Col: left, Want: t.text == "true"})
		} else {
			right, err := p.parseColumnRef()
			if err != nil {
				return nil, err
			}
			if foundJoin {
				return nil, errors.New("query: only one join predicate is supported")
			}
			q.JoinLeft, q.JoinRight = left, right
			foundJoin = true
		}
		if t := p.peek(); t.kind == tokIdent && t.text == "and" {
			p.next()
			continue
		}
		break
	}
	if !foundJoin {
		return nil, errors.New("query: a join predicate t1.a = t2.b is required")
	}

	// Optional GROUP BY.
	if t := p.peek(); t.kind == tokIdent && t.text == "group" {
		p.next()
		if err := p.expectIdent("by"); err != nil {
			return nil, err
		}
		for {
			ref, err := p.parseColumnRef()
			if err != nil {
				return nil, err
			}
			q.GroupBy = append(q.GroupBy, ref)
			if p.peek().kind == tokComma {
				p.next()
				continue
			}
			break
		}
	}

	if !p.atEOF() {
		t := p.peek()
		return nil, fmt.Errorf("query: trailing input %q at position %d", t.text, t.pos)
	}

	// Semantic checks.
	if len(q.GroupBy) > 0 && !q.CountStar {
		return nil, errors.New("query: GROUP BY requires COUNT(*)")
	}
	if len(q.SelectCols) > 0 {
		if len(q.SelectCols) != len(q.GroupBy) {
			return nil, errors.New("query: selected columns must equal the GROUP BY columns")
		}
		for i := range q.SelectCols {
			if q.SelectCols[i] != q.GroupBy[i] {
				return nil, fmt.Errorf("query: select column %v does not match GROUP BY column %v",
					q.SelectCols[i], q.GroupBy[i])
			}
		}
	}
	if q.JoinLeft.Table == q.JoinRight.Table {
		return nil, errors.New("query: join predicate must span both tables")
	}
	return q, nil
}
