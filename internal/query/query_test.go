package query

import (
	"context"
	"math/rand"
	"reflect"
	"testing"

	"minshare/internal/core"
	"minshare/internal/group"
	"minshare/internal/medical"
	"minshare/internal/reldb"
)

func testCfg(seed int64) core.Config {
	return core.Config{Group: group.TestGroup(), Rand: rand.New(rand.NewSource(seed)), Parallelism: 1}
}

// ---- parser ----

func TestParsePaperQuery(t *testing.T) {
	// The exact query from Section 1.1 / 6.2.2 of the paper.
	q, err := Parse(`select t_r.pattern, t_s.reaction, count(*)
		from t_r, t_s
		where t_r.personid = t_s.personid and t_s.drug = true
		group by t_r.pattern, t_s.reaction`)
	if err != nil {
		t.Fatal(err)
	}
	if !q.CountStar || q.SelectStar {
		t.Error("select list misparsed")
	}
	if q.Tables != [2]string{"t_r", "t_s"} {
		t.Errorf("tables = %v", q.Tables)
	}
	if q.JoinLeft.String() != "t_r.personid" || q.JoinRight.String() != "t_s.personid" {
		t.Errorf("join = %v = %v", q.JoinLeft, q.JoinRight)
	}
	if len(q.Filters) != 1 || q.Filters[0].Col.String() != "t_s.drug" || !q.Filters[0].Want {
		t.Errorf("filters = %v", q.Filters)
	}
	if len(q.GroupBy) != 2 {
		t.Errorf("group by = %v", q.GroupBy)
	}
	if PlanFor(q) != PlanGroupCounts {
		t.Errorf("plan = %v", PlanFor(q))
	}
}

func TestParseSelectStar(t *testing.T) {
	q, err := Parse("SELECT * FROM customers, orders WHERE customers.name = orders.cust")
	if err != nil {
		t.Fatal(err)
	}
	if !q.SelectStar || PlanFor(q) != PlanJoin {
		t.Errorf("q = %+v plan = %v", q, PlanFor(q))
	}
}

func TestParseCountStar(t *testing.T) {
	q, err := Parse("select count(*) from a, b where a.k = b.k")
	if err != nil {
		t.Fatal(err)
	}
	if PlanFor(q) != PlanJoinSize {
		t.Errorf("plan = %v", PlanFor(q))
	}
}

func TestParseFalseFilter(t *testing.T) {
	q, err := Parse("select count(*) from a, b where a.k = b.k and a.flag = false")
	if err != nil {
		t.Fatal(err)
	}
	if len(q.Filters) != 1 || q.Filters[0].Want {
		t.Errorf("filters = %v", q.Filters)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"insert into x values (1)",
		"select * from a where a.k = b.k",              // one table
		"select * from a, b where a.k = a.j",           // join within one table
		"select * from a, b where a.flag = true",       // no join predicate
		"select *, count(*) from a, b where a.k = b.k", // mixed star
		"select a.c from a, b where a.k = b.k",         // bare column without count
		"select a.c, count(*) from a, b where a.k = b.k group by b.d", // select != group by
		"select count(*) from a, b where a.k = b.k group by",          // dangling group by
		"select count(*) from a, b where a.k = b.k and a.j = b.i",     // two join predicates
		"select count(*) from a, b where a.k = b.k trailing",          // trailing tokens
		"select count * from a, b where a.k = b.k",                    // malformed count
		"select * from a, b where a.k = b.k; drop table a",            // stray characters
		"select a.c, count(*) from a, b where a.k = b.k",              // bare column, no group by
	}
	for _, sql := range bad {
		if _, err := Parse(sql); err == nil {
			t.Errorf("accepted %q", sql)
		}
	}
}

func TestLexUnexpectedChar(t *testing.T) {
	if _, err := lex("select $"); err == nil {
		t.Error("accepted '$'")
	}
}

// ---- execution ----

func ordersAndCustomers() (tR, tS *reldb.Table) {
	tR = reldb.NewTable("customers", reldb.MustSchema(
		reldb.Column{Name: "name", Type: reldb.TypeString},
		reldb.Column{Name: "vip", Type: reldb.TypeBool},
	))
	tR.MustInsert(reldb.String("ann"), reldb.Bool(true))
	tR.MustInsert(reldb.String("bob"), reldb.Bool(false))
	tR.MustInsert(reldb.String("carol"), reldb.Bool(true))

	tS = reldb.NewTable("orders", reldb.MustSchema(
		reldb.Column{Name: "cust", Type: reldb.TypeString},
		reldb.Column{Name: "amount", Type: reldb.TypeInt},
	))
	tS.MustInsert(reldb.String("ann"), reldb.Int(10))
	tS.MustInsert(reldb.String("ann"), reldb.Int(20))
	tS.MustInsert(reldb.String("bob"), reldb.Int(30))
	tS.MustInsert(reldb.String("eve"), reldb.Int(40))
	return
}

func TestExecuteSelectStar(t *testing.T) {
	tR, tS := ordersAndCustomers()
	q, err := Parse("select * from customers, orders where customers.name = orders.cust")
	if err != nil {
		t.Fatal(err)
	}
	res, err := Execute(context.Background(), testCfg(1), testCfg(2), testCfg(3), q, tR, tS)
	if err != nil {
		t.Fatal(err)
	}
	if res.Plan != PlanJoin {
		t.Fatalf("plan = %v", res.Plan)
	}
	// Reference: plaintext join has ann×2 + bob×1 = 3 rows.
	ref, err := tR.Join(tS, "name", "cust")
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows.NumRows() != ref.NumRows() {
		t.Errorf("private join has %d rows, plaintext %d", res.Rows.NumRows(), ref.NumRows())
	}
	// Schema: customers cols + orders cols minus join col.
	if res.Rows.Schema().NumColumns() != 3 {
		t.Errorf("result schema has %d columns", res.Rows.Schema().NumColumns())
	}
	for _, row := range res.Rows.Rows() {
		if row[0].AsString() == "eve" || row[0].AsString() == "carol" {
			t.Errorf("unjoined customer %q in result", row[0])
		}
	}
}

func TestExecuteSelectStarWithFilter(t *testing.T) {
	tR, tS := ordersAndCustomers()
	q, err := Parse("select * from customers, orders where customers.name = orders.cust and customers.vip = true")
	if err != nil {
		t.Fatal(err)
	}
	res, err := Execute(context.Background(), testCfg(1), testCfg(2), testCfg(3), q, tR, tS)
	if err != nil {
		t.Fatal(err)
	}
	// Only ann is vip with orders: 2 rows.
	if res.Rows.NumRows() != 2 {
		t.Errorf("rows = %d, want 2", res.Rows.NumRows())
	}
}

func TestExecuteCountStar(t *testing.T) {
	tR, tS := ordersAndCustomers()
	q, err := Parse("select count(*) from customers, orders where customers.name = orders.cust")
	if err != nil {
		t.Fatal(err)
	}
	res, err := Execute(context.Background(), testCfg(1), testCfg(2), testCfg(3), q, tR, tS)
	if err != nil {
		t.Fatal(err)
	}
	if res.Count != 3 { // ann×2 + bob×1
		t.Errorf("count = %d, want 3", res.Count)
	}
}

// TestExecutePaperMedicalQuery runs the paper's own SQL end to end and
// compares against both the plaintext evaluation and the dedicated
// medical package.
func TestExecutePaperMedicalQuery(t *testing.T) {
	tR, tS := reldb.GenPeopleTables(50, 0.4, 0.6, 0.3, 21)
	q, err := Parse(`select t_r.pattern, t_s.reaction, count(*)
		from t_r, t_s
		where t_r.personid = t_s.personid and t_s.drug = true
		group by t_r.pattern, t_s.reaction`)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Execute(context.Background(), testCfg(1), testCfg(2), testCfg(3), q, tR, tS)
	if err != nil {
		t.Fatal(err)
	}
	if res.Plan != PlanGroupCounts || len(res.Groups) != 4 {
		t.Fatalf("plan %v, %d groups", res.Plan, len(res.Groups))
	}

	want, err := medical.PlaintextCounts(tR, tS)
	if err != nil {
		t.Fatal(err)
	}
	got := map[[2]bool]int{}
	for _, g := range res.Groups {
		got[[2]bool{g.Values[0], g.Values[1]}] = g.Count
	}
	expect := map[[2]bool]int{
		{true, true}:   want.PatternReaction,
		{true, false}:  want.PatternNoReaction,
		{false, true}:  want.NoPatternReaction,
		{false, false}: want.NoPatternNoReaction,
	}
	if !reflect.DeepEqual(got, expect) {
		t.Errorf("SQL counts %v != plaintext %v", got, expect)
	}
}

func TestExecuteBindingErrors(t *testing.T) {
	tR, tS := ordersAndCustomers()
	ctx := context.Background()

	q, _ := Parse("select * from customers, shipments where customers.name = shipments.cust")
	if _, err := Execute(ctx, testCfg(1), testCfg(2), testCfg(3), q, tR, tS); err == nil {
		t.Error("unknown table accepted")
	}

	q, _ = Parse("select * from customers, orders where customers.nope = orders.cust")
	if _, err := Execute(ctx, testCfg(1), testCfg(2), testCfg(3), q, tR, tS); err == nil {
		t.Error("unknown join column accepted")
	}

	q, _ = Parse("select * from customers, orders where customers.name = orders.cust and orders.amount = true")
	if _, err := Execute(ctx, testCfg(1), testCfg(2), testCfg(3), q, tR, tS); err == nil {
		t.Error("non-boolean filter accepted")
	}

	q, _ = Parse("select * from customers, orders where customers.name = orders.cust and shipments.x = true")
	if _, err := Execute(ctx, testCfg(1), testCfg(2), testCfg(3), q, tR, tS); err == nil {
		t.Error("filter on unknown table accepted")
	}
}

func TestPlanKindStrings(t *testing.T) {
	for _, k := range []PlanKind{PlanJoin, PlanJoinSize, PlanGroupCounts, PlanInvalid} {
		if k.String() == "" {
			t.Errorf("PlanKind(%d).String() empty", k)
		}
	}
}
