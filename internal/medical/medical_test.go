package medical

import (
	"context"
	"math/rand"
	"testing"

	"minshare/internal/core"
	"minshare/internal/group"
	"minshare/internal/reldb"
)

func testCfg(seed int64) core.Config {
	return core.Config{
		Group:       group.TestGroup(),
		Rand:        rand.New(rand.NewSource(seed)),
		Parallelism: 1,
	}
}

func TestPartitionR(t *testing.T) {
	tR, _ := reldb.GenPeopleTables(50, 0.4, 0.5, 0.3, 1)
	with, without, err := PartitionR(tR)
	if err != nil {
		t.Fatal(err)
	}
	if len(with)+len(without) != 50 {
		t.Errorf("partitions cover %d ids, want 50", len(with)+len(without))
	}
}

func TestPartitionSExcludesNonTakers(t *testing.T) {
	tS := reldb.NewTable("T_S", reldb.MustSchema(
		reldb.Column{Name: "personid", Type: reldb.TypeInt},
		reldb.Column{Name: "drug", Type: reldb.TypeBool},
		reldb.Column{Name: "reaction", Type: reldb.TypeBool},
	))
	tS.MustInsert(reldb.Int(1), reldb.Bool(true), reldb.Bool(true))
	tS.MustInsert(reldb.Int(2), reldb.Bool(true), reldb.Bool(false))
	tS.MustInsert(reldb.Int(3), reldb.Bool(false), reldb.Bool(false)) // not a taker

	with, without, err := PartitionS(tS)
	if err != nil {
		t.Fatal(err)
	}
	if len(with) != 1 || len(without) != 1 {
		t.Errorf("partitions = %d/%d, want 1/1 (non-taker excluded)", len(with), len(without))
	}
}

func TestPartitionErrors(t *testing.T) {
	bad := reldb.NewTable("bad", reldb.MustSchema(reldb.Column{Name: "x", Type: reldb.TypeInt}))
	if _, _, err := PartitionR(bad); err == nil {
		t.Error("PartitionR accepted wrong schema")
	}
	if _, _, err := PartitionS(bad); err == nil {
		t.Error("PartitionS accepted wrong schema")
	}
}

func TestRunStudyMatchesPlaintext(t *testing.T) {
	tR, tS := reldb.GenPeopleTables(60, 0.35, 0.6, 0.25, 7)

	want, err := PlaintextCounts(tR, tS)
	if err != nil {
		t.Fatal(err)
	}
	got, err := RunStudy(context.Background(), testCfg(1), testCfg(2), testCfg(3), tR, tS)
	if err != nil {
		t.Fatal(err)
	}
	if *got != *want {
		t.Errorf("private counts %+v != plaintext %+v", *got, *want)
	}
	// The four cells must cover exactly the drug takers.
	takers := 0
	drugIdx, _ := tS.Schema().ColumnIndex("drug")
	for _, r := range tS.Rows() {
		if r[drugIdx].AsBool() {
			takers++
		}
	}
	if got.Total() != takers {
		t.Errorf("cells total %d, drug takers %d", got.Total(), takers)
	}
}

func TestRunStudyAllZeroCells(t *testing.T) {
	// Nobody took the drug: every cell must be zero.
	tR, tS := reldb.GenPeopleTables(20, 0.5, 0.0, 0.5, 3)
	got, err := RunStudy(context.Background(), testCfg(1), testCfg(2), testCfg(3), tR, tS)
	if err != nil {
		t.Fatal(err)
	}
	if got.Total() != 0 {
		t.Errorf("counts %+v, want all zero", *got)
	}
}

func TestRunStudyDisjointEnterprises(t *testing.T) {
	// The enterprises know entirely different people: the join is empty.
	tR := reldb.NewTable("T_R", reldb.MustSchema(
		reldb.Column{Name: "personid", Type: reldb.TypeInt},
		reldb.Column{Name: "pattern", Type: reldb.TypeBool},
	))
	tS := reldb.NewTable("T_S", reldb.MustSchema(
		reldb.Column{Name: "personid", Type: reldb.TypeInt},
		reldb.Column{Name: "drug", Type: reldb.TypeBool},
		reldb.Column{Name: "reaction", Type: reldb.TypeBool},
	))
	for i := 0; i < 10; i++ {
		tR.MustInsert(reldb.Int(int64(i)), reldb.Bool(i%2 == 0))
		tS.MustInsert(reldb.Int(int64(1000+i)), reldb.Bool(true), reldb.Bool(i%3 == 0))
	}
	got, err := RunStudy(context.Background(), testCfg(1), testCfg(2), testCfg(3), tR, tS)
	if err != nil {
		t.Fatal(err)
	}
	if got.Total() != 0 {
		t.Errorf("disjoint enterprises produced counts %+v", *got)
	}
}

func TestPlaintextCountsDirect(t *testing.T) {
	tR := reldb.NewTable("T_R", reldb.MustSchema(
		reldb.Column{Name: "personid", Type: reldb.TypeInt},
		reldb.Column{Name: "pattern", Type: reldb.TypeBool},
	))
	tS := reldb.NewTable("T_S", reldb.MustSchema(
		reldb.Column{Name: "personid", Type: reldb.TypeInt},
		reldb.Column{Name: "drug", Type: reldb.TypeBool},
		reldb.Column{Name: "reaction", Type: reldb.TypeBool},
	))
	// id 1: pattern, drug, reaction      -> PatternReaction
	// id 2: pattern, drug, no reaction   -> PatternNoReaction
	// id 3: no pattern, drug, reaction   -> NoPatternReaction
	// id 4: no pattern, drug, no reaction-> NoPatternNoReaction
	// id 5: pattern, NO drug             -> excluded
	// id 6: only in T_R                  -> excluded (no join partner)
	// id 7: only in T_S                  -> excluded
	tR.MustInsert(reldb.Int(1), reldb.Bool(true))
	tR.MustInsert(reldb.Int(2), reldb.Bool(true))
	tR.MustInsert(reldb.Int(3), reldb.Bool(false))
	tR.MustInsert(reldb.Int(4), reldb.Bool(false))
	tR.MustInsert(reldb.Int(5), reldb.Bool(true))
	tR.MustInsert(reldb.Int(6), reldb.Bool(true))
	tS.MustInsert(reldb.Int(1), reldb.Bool(true), reldb.Bool(true))
	tS.MustInsert(reldb.Int(2), reldb.Bool(true), reldb.Bool(false))
	tS.MustInsert(reldb.Int(3), reldb.Bool(true), reldb.Bool(true))
	tS.MustInsert(reldb.Int(4), reldb.Bool(true), reldb.Bool(false))
	tS.MustInsert(reldb.Int(5), reldb.Bool(false), reldb.Bool(false))
	tS.MustInsert(reldb.Int(7), reldb.Bool(true), reldb.Bool(true))

	want := Counts{1, 1, 1, 1}
	got, err := PlaintextCounts(tR, tS)
	if err != nil {
		t.Fatal(err)
	}
	if *got != want {
		t.Errorf("PlaintextCounts = %+v, want %+v", *got, want)
	}

	// And the private study agrees.
	priv, err := RunStudy(context.Background(), testCfg(1), testCfg(2), testCfg(3), tR, tS)
	if err != nil {
		t.Fatal(err)
	}
	if *priv != want {
		t.Errorf("RunStudy = %+v, want %+v", *priv, want)
	}
}

func TestCountsTotal(t *testing.T) {
	c := Counts{1, 2, 3, 4}
	if c.Total() != 10 {
		t.Errorf("Total = %d", c.Total())
	}
}
