// Package medical implements Application 2 of the paper (Sections 1.1
// and 6.2.2): privacy-preserving medical research.
//
// A researcher T wants the answer to
//
//	select pattern, reaction, count(*)
//	from T_R, T_S
//	where T_R.personid = T_S.personid and T_S.drug = true
//	group by T_R.pattern, T_S.reaction
//
// where T_R(personid, pattern) and T_S(personid, drug, reaction) live in
// two different enterprises.  Following Figure 2 of the paper, the
// enterprises partition their person-id sets —
//
//	V_R  = ids in T_R            V'_R = ids whose DNA matches the pattern
//	V_S  = ids that took drug G  V'_S = ids with an adverse reaction
//
// — and run FOUR third-party intersection-size protocols, sending the
// doubly-encrypted sets to T instead of to each other.  T learns the
// four counts (the 2×2 contingency table) and nothing about any
// individual; the enterprises learn only each other's partition sizes.
package medical

import (
	"context"
	"fmt"

	"minshare/internal/core"
	"minshare/internal/reldb"
	"minshare/internal/transport"
)

// Counts is the researcher's 2×2 contingency table over people who took
// the drug.
type Counts struct {
	PatternReaction     int // DNA pattern present, adverse reaction
	PatternNoReaction   int // pattern present, no reaction
	NoPatternReaction   int // no pattern, adverse reaction
	NoPatternNoReaction int // no pattern, no reaction
}

// Total returns the number of drug takers covered by the table.
func (c Counts) Total() int {
	return c.PatternReaction + c.PatternNoReaction + c.NoPatternReaction + c.NoPatternNoReaction
}

// PartitionR splits enterprise R's table into (V'_R, V_R − V'_R): the
// encoded person ids with and without the DNA pattern.  Column names
// follow the paper: "personid" and "pattern".
func PartitionR(tR *reldb.Table) (withPattern, withoutPattern [][]byte, err error) {
	return partitionByBool(tR, "personid", "pattern")
}

// PartitionS splits enterprise S's drug takers into (V'_S, V_S − V'_S):
// the encoded ids of drug takers with and without an adverse reaction.
// People who did not take the drug are excluded entirely, matching the
// query's "T_S.drug = true" predicate.
func PartitionS(tS *reldb.Table) (withReaction, withoutReaction [][]byte, err error) {
	drugIdx, err := tS.Schema().ColumnIndex("drug")
	if err != nil {
		return nil, nil, err
	}
	takers := tS.Select(func(r reldb.Row) bool { return r[drugIdx].AsBool() })
	return partitionByBool(takers, "personid", "reaction")
}

// partitionByBool splits a table's id column by a boolean column.
func partitionByBool(t *reldb.Table, idCol, boolCol string) (trueIDs, falseIDs [][]byte, err error) {
	idIdx, err := t.Schema().ColumnIndex(idCol)
	if err != nil {
		return nil, nil, err
	}
	boolIdx, err := t.Schema().ColumnIndex(boolCol)
	if err != nil {
		return nil, nil, err
	}
	for _, r := range t.Rows() {
		id := r[idIdx].Encode()
		if r[boolIdx].AsBool() {
			trueIDs = append(trueIDs, id)
		} else {
			falseIDs = append(falseIDs, id)
		}
	}
	return trueIDs, falseIDs, nil
}

// RunStudy executes the Figure 2 algorithm end to end with all three
// parties in-process (each over its own pipe triple): four third-party
// intersection-size runs yield the contingency table.  cfgR, cfgS and
// cfgT may share a group but should use independent randomness.
func RunStudy(ctx context.Context, cfgR, cfgS, cfgT core.Config, tR, tS *reldb.Table) (*Counts, error) {
	vPrimeR, vRestR, err := PartitionR(tR)
	if err != nil {
		return nil, fmt.Errorf("medical: partitioning T_R: %w", err)
	}
	vPrimeS, vRestS, err := PartitionS(tS)
	if err != nil {
		return nil, fmt.Errorf("medical: partitioning T_S: %w", err)
	}

	// Figure 2: four IntersectionSize(V_a, V_b) calls.
	cells := [4]struct{ a, b [][]byte }{
		{vPrimeR, vPrimeS}, // pattern ∧ reaction
		{vPrimeR, vRestS},  // pattern ∧ ¬reaction
		{vRestR, vPrimeS},  // ¬pattern ∧ reaction
		{vRestR, vRestS},   // ¬pattern ∧ ¬reaction
	}
	var counts [4]int
	for i, cell := range cells {
		n, err := runThirdPartySize(ctx, cfgR, cfgS, cfgT, cell.a, cell.b)
		if err != nil {
			return nil, fmt.Errorf("medical: intersection size %d: %w", i+1, err)
		}
		counts[i] = n
	}
	return &Counts{
		PatternReaction:     counts[0],
		PatternNoReaction:   counts[1],
		NoPatternReaction:   counts[2],
		NoPatternNoReaction: counts[3],
	}, nil
}

// runThirdPartySize wires one Figure 2 intersection-size instance: A and
// B exchange encrypted sets, T counts.
func runThirdPartySize(ctx context.Context, cfgA, cfgB, cfgT core.Config, vA, vB [][]byte) (int, error) {
	abA, abB := transport.Pipe()
	atA, atT := transport.Pipe()
	btB, btT := transport.Pipe()
	defer func() { _ = abA.Close() }()
	defer func() { _ = atA.Close() }()
	defer func() { _ = btB.Close() }()

	errA := make(chan error, 1)
	errB := make(chan error, 1)
	go func() {
		_, err := core.ThirdPartyPartyA(ctx, cfgA, abA, atA, vA)
		errA <- err
	}()
	go func() {
		_, err := core.ThirdPartyPartyB(ctx, cfgB, abB, btB, vB)
		errB <- err
	}()
	res, err := core.ThirdPartyAnalyst(ctx, cfgT, atT, btT)
	if err != nil {
		return 0, fmt.Errorf("analyst: %w", err)
	}
	if err := <-errA; err != nil {
		return 0, fmt.Errorf("party A: %w", err)
	}
	if err := <-errB; err != nil {
		return 0, fmt.Errorf("party B: %w", err)
	}
	return res.IntersectionSize, nil
}

// PlaintextCounts evaluates the researcher's query directly on the two
// tables — the reference the private computation is verified against.
// It computes T_R ⋈ T_S on personid, filters drug = true, and groups by
// (pattern, reaction).
func PlaintextCounts(tR, tS *reldb.Table) (*Counts, error) {
	joined, err := tR.Join(tS, "personid", "personid")
	if err != nil {
		return nil, err
	}
	schema := joined.Schema()
	patIdx, err := schema.ColumnIndex("pattern")
	if err != nil {
		return nil, err
	}
	drugIdx, err := schema.ColumnIndex(tS.Name() + ".drug")
	if err != nil {
		return nil, err
	}
	reactIdx, err := schema.ColumnIndex(tS.Name() + ".reaction")
	if err != nil {
		return nil, err
	}
	var c Counts
	for _, r := range joined.Rows() {
		if !r[drugIdx].AsBool() {
			continue
		}
		switch {
		case r[patIdx].AsBool() && r[reactIdx].AsBool():
			c.PatternReaction++
		case r[patIdx].AsBool():
			c.PatternNoReaction++
		case r[reactIdx].AsBool():
			c.NoPatternReaction++
		default:
			c.NoPatternNoReaction++
		}
	}
	return &c, nil
}
