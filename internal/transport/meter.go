package transport

import (
	"context"
	"sync/atomic"
	"time"
)

// Meter wraps a Conn and counts frames and bytes in each direction,
// keeping payload and on-wire (payload + FrameOverhead per frame)
// totals separately.  The experiment harness uses the payload counters
// to check the paper's exact communication formulas (Section 6.1:
// intersection (|V_S|+2|V_R|)·k bits, join (|V_S|+3|V_R|)·k + |V_S|·k'
// bits) and the wire counters for what actually crosses a framed
// transport; LinkModel converts either into T1-line transfer times.
type Meter struct {
	inner Conn

	framesSent atomic.Int64
	framesRecv atomic.Int64
	bytesSent  atomic.Int64
	bytesRecv  atomic.Int64
	wireSent   atomic.Int64
	wireRecv   atomic.Int64
}

// NewMeter wraps inner with counters.
func NewMeter(inner Conn) *Meter {
	return &Meter{inner: inner}
}

// Send implements Conn.
func (m *Meter) Send(ctx context.Context, frame []byte) error {
	if err := m.inner.Send(ctx, frame); err != nil {
		return err
	}
	m.framesSent.Add(1)
	m.bytesSent.Add(int64(len(frame)))
	m.wireSent.Add(int64(len(frame)) + FrameOverhead)
	return nil
}

// Recv implements Conn.
func (m *Meter) Recv(ctx context.Context) ([]byte, error) {
	frame, err := m.inner.Recv(ctx)
	if err != nil {
		return nil, err
	}
	m.framesRecv.Add(1)
	m.bytesRecv.Add(int64(len(frame)))
	m.wireRecv.Add(int64(len(frame)) + FrameOverhead)
	return frame, nil
}

// Close implements Conn.
func (m *Meter) Close() error { return m.inner.Close() }

// FramesSent returns the number of frames sent.
func (m *Meter) FramesSent() int64 { return m.framesSent.Load() }

// FramesRecv returns the number of frames received.
func (m *Meter) FramesRecv() int64 { return m.framesRecv.Load() }

// BytesSent returns the payload bytes sent.
func (m *Meter) BytesSent() int64 { return m.bytesSent.Load() }

// BytesRecv returns the payload bytes received.
func (m *Meter) BytesRecv() int64 { return m.bytesRecv.Load() }

// TotalBytes returns payload bytes sent plus received: the session's
// total traffic as one party sees it, excluding framing.
func (m *Meter) TotalBytes() int64 { return m.BytesSent() + m.BytesRecv() }

// WireBytesSent returns the on-wire bytes sent: payload plus
// FrameOverhead per frame.
func (m *Meter) WireBytesSent() int64 { return m.wireSent.Load() }

// WireBytesRecv returns the on-wire bytes received.
func (m *Meter) WireBytesRecv() int64 { return m.wireRecv.Load() }

// TotalWireBytes returns on-wire bytes in both directions.
func (m *Meter) TotalWireBytes() int64 { return m.WireBytesSent() + m.WireBytesRecv() }

// Reset zeroes all counters.
func (m *Meter) Reset() {
	m.framesSent.Store(0)
	m.framesRecv.Store(0)
	m.bytesSent.Store(0)
	m.bytesRecv.Store(0)
	m.wireSent.Store(0)
	m.wireRecv.Store(0)
}

// LinkModel converts byte counts into transfer times for a modelled
// link, reproducing the paper's time estimates without needing the
// actual WAN.
type LinkModel struct {
	// BitsPerSecond is the modelled bandwidth.
	BitsPerSecond float64
	// Name describes the link in reports.
	Name string
}

// T1 is the paper's reference link: "communication is via a T1 line,
// with bandwidth of 1.544 Mbits/second" (Section 6.2).
var T1 = LinkModel{BitsPerSecond: 1.544e6, Name: "T1"}

// TransferTime returns how long the given payload takes on the link.
func (l LinkModel) TransferTime(bytes int64) time.Duration {
	if l.BitsPerSecond <= 0 {
		return 0
	}
	seconds := float64(bytes) * 8 / l.BitsPerSecond
	return time.Duration(seconds * float64(time.Second))
}

// TransferTimeBits is TransferTime for a bit count, for formulas that
// are naturally expressed in bits (the paper reports "3 Gbits ≈ 35
// minutes").
func (l LinkModel) TransferTimeBits(bits float64) time.Duration {
	if l.BitsPerSecond <= 0 {
		return 0
	}
	return time.Duration(bits / l.BitsPerSecond * float64(time.Second))
}
