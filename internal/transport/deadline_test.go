package transport

import (
	"context"
	"errors"
	"net"
	"testing"
	"time"
)

// tcpPair returns two connected TCP frame transports over loopback.
func tcpPair(t *testing.T) (Conn, Conn) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	type res struct {
		nc  net.Conn
		err error
	}
	ch := make(chan res, 1)
	go func() {
		nc, err := ln.Accept()
		ch <- res{nc, err}
	}()
	client, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	r := <-ch
	if r.err != nil {
		client.Close()
		t.Fatal(r.err)
	}
	a, b := NewTCP(client), NewTCP(r.nc)
	t.Cleanup(func() { a.Close(); b.Close() })
	return a, b
}

// TestIdleTimeoutPipe: a Recv with no sender must fail with ErrIdleTimeout
// within roughly the idle allowance, on the in-memory pipe.
func TestIdleTimeoutPipe(t *testing.T) {
	a, b := Pipe()
	defer a.Close()
	defer b.Close()
	idle := WithIdleTimeout(a, 50*time.Millisecond)

	start := time.Now()
	_, err := idle.Recv(context.Background())
	if !errors.Is(err, ErrIdleTimeout) {
		t.Fatalf("err = %v, want ErrIdleTimeout", err)
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("err = %v does not wrap context.DeadlineExceeded", err)
	}
	if d := time.Since(start); d > 2*time.Second {
		t.Errorf("timeout took %v", d)
	}
}

// TestIdleTimeoutTCP: same over a real TCP connection with a silent peer.
func TestIdleTimeoutTCP(t *testing.T) {
	a, _ := tcpPair(t)
	idle := WithIdleTimeout(a, 50*time.Millisecond)
	if _, err := idle.Recv(context.Background()); !errors.Is(err, ErrIdleTimeout) {
		t.Fatalf("err = %v, want ErrIdleTimeout", err)
	}
}

// TestIdleTimeoutDoesNotFireOnProgress: frames arriving within the idle
// allowance reset it; a session longer than the allowance still runs.
func TestIdleTimeoutDoesNotFireOnProgress(t *testing.T) {
	a, b := Pipe()
	defer a.Close()
	defer b.Close()
	idle := WithIdleTimeout(a, 100*time.Millisecond)
	ctx := context.Background()

	done := make(chan error, 1)
	go func() {
		for i := 0; i < 5; i++ {
			time.Sleep(30 * time.Millisecond)
			if err := b.Send(ctx, []byte{byte(i)}); err != nil {
				done <- err
				return
			}
		}
		done <- nil
	}()
	for i := 0; i < 5; i++ {
		frame, err := idle.Recv(ctx)
		if err != nil {
			t.Fatalf("recv %d: %v", i, err)
		}
		if len(frame) != 1 || frame[0] != byte(i) {
			t.Fatalf("frame %d = %v", i, frame)
		}
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
}

// TestIdleTimeoutCallerDeadlineWins: a caller deadline tighter than the
// idle allowance surfaces as the caller's own DeadlineExceeded, not as
// ErrIdleTimeout.
func TestIdleTimeoutCallerDeadlineWins(t *testing.T) {
	a, b := Pipe()
	defer a.Close()
	defer b.Close()
	idle := WithIdleTimeout(a, time.Hour)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	_, err := idle.Recv(ctx)
	if err == nil {
		t.Fatal("recv succeeded with no sender")
	}
	if errors.Is(err, ErrIdleTimeout) {
		t.Fatalf("err = %v misclassified as idle timeout", err)
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want caller DeadlineExceeded", err)
	}
}

// TestTCPRecvUnblocksOnCancel: cancelling the context must unblock a TCP
// Recv that is already parked in the read syscall — the property the
// server's drain deadline relies on to evict stalled sessions.
func TestTCPRecvUnblocksOnCancel(t *testing.T) {
	a, _ := tcpPair(t)
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := a.Recv(ctx)
		done <- err
	}()
	time.Sleep(50 * time.Millisecond) // let Recv block in the syscall
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("err = %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Recv still blocked 5s after cancellation")
	}
}

// TestTCPSendUnblocksOnCancel: same for a Send stalled on a full TCP
// window (the peer never reads).
func TestTCPSendUnblocksOnCancel(t *testing.T) {
	a, _ := tcpPair(t)
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		frame := make([]byte, 1<<20)
		var err error
		for err == nil { // fill the socket buffers until the write parks
			err = a.Send(ctx, frame)
		}
		done <- err
	}()
	time.Sleep(100 * time.Millisecond)
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("err = %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Send still blocked 5s after cancellation")
	}
}

// TestIdleTimeoutTLS: the decorator composes with the TLS transport (the
// deadline plumbing must survive the tls.Conn wrapper).
func TestIdleTimeoutTLS(t *testing.T) {
	cert, err := GenerateSelfSignedCert([]string{"127.0.0.1"}, time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	pool, err := PinnedPool(cert)
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	tln := NewTLSListener(ln, cert, nil)
	defer tln.Close()
	go func() {
		nc, err := tln.Accept()
		if err != nil {
			return
		}
		// Silent server: complete the handshake implicitly on first read,
		// then never send a frame.
		buf := make([]byte, 1)
		_, _ = nc.Read(buf)
	}()

	conn, err := DialTLS(context.Background(), ln.Addr().String(), "127.0.0.1", pool, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	idle := WithIdleTimeout(conn, 100*time.Millisecond)
	if _, err := idle.Recv(context.Background()); !errors.Is(err, ErrIdleTimeout) {
		t.Fatalf("err = %v, want ErrIdleTimeout", err)
	}
}

// TestIdleTimeoutBufferedBurst: draining a burst of already-buffered
// frames through the idle decorator must never produce a spurious
// timeout.  Each Recv arms a cancel watcher on the per-operation idle
// context; when the read completes without blocking (the frame was in
// the kernel buffer), the watcher may first run only after the NEXT
// Recv has armed its deadline — and a stale watcher that pokes the
// deadline into the past at that point kills the next read with an
// instant "i/o timeout".  This is exactly the mux demux pattern
// (back-to-back sub-session frames, no work between reads), which is
// how the regression first surfaced; watchCancel's stop must therefore
// synchronize with watcher exit.
func TestIdleTimeoutBufferedBurst(t *testing.T) {
	a, b := tcpPair(t)
	ctx := context.Background()

	// Bursts with gaps: within a burst the reads return from the buffer
	// without blocking (piling up not-yet-scheduled watchers); at each
	// burst boundary the reader blocks, the stale watchers finally run,
	// and — before the fix — each had even odds of poking the armed
	// deadline into the past, failing the blocked read instantly.
	const bursts, burstLen = 50, 20
	const frames = bursts * burstLen
	go func() {
		for i := 0; i < frames; i++ {
			if err := b.Send(ctx, []byte{byte(i)}); err != nil {
				return
			}
			if i%burstLen == burstLen-1 {
				time.Sleep(time.Millisecond)
			}
		}
	}()

	idle := WithIdleTimeout(a, 30*time.Second)
	for i := 0; i < frames; i++ {
		frame, err := idle.Recv(ctx)
		if err != nil {
			t.Fatalf("Recv %d: %v", i, err)
		}
		if len(frame) != 1 || frame[0] != byte(i) {
			t.Fatalf("Recv %d: frame = %v", i, frame)
		}
	}
}
