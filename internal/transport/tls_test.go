package transport

import (
	"context"
	"crypto/tls"
	"net"
	"testing"
	"time"
)

func TestTLSRoundTrip(t *testing.T) {
	serverCert, err := GenerateSelfSignedCert([]string{"127.0.0.1"}, time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	pool, err := PinnedPool(serverCert)
	if err != nil {
		t.Fatal(err)
	}

	raw, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ln := NewTLSListener(raw, serverCert, nil)
	defer ln.Close()

	type srvOut struct {
		got []byte
		err error
	}
	ch := make(chan srvOut, 1)
	go func() {
		nc, err := ln.Accept()
		if err != nil {
			ch <- srvOut{nil, err}
			return
		}
		conn := NewTCP(nc)
		defer conn.Close()
		got, err := conn.Recv(context.Background())
		if err == nil {
			err = conn.Send(context.Background(), []byte("pong"))
		}
		ch <- srvOut{got, err}
	}()

	conn, err := DialTLS(context.Background(), ln.Addr().String(), "127.0.0.1", pool, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if err := conn.Send(context.Background(), []byte("ping")); err != nil {
		t.Fatal(err)
	}
	reply, err := conn.Recv(context.Background())
	if err != nil || string(reply) != "pong" {
		t.Fatalf("reply %q, err %v", reply, err)
	}
	out := <-ch
	if out.err != nil || string(out.got) != "ping" {
		t.Fatalf("server got %q, err %v", out.got, out.err)
	}
}

func TestTLSMutualAuth(t *testing.T) {
	serverCert, err := GenerateSelfSignedCert([]string{"127.0.0.1"}, time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	clientCert, err := GenerateSelfSignedCert([]string{"client"}, time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	serverPool, _ := PinnedPool(serverCert)
	clientPool, _ := PinnedPool(clientCert)

	raw, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ln := NewTLSListener(raw, serverCert, clientPool)
	defer ln.Close()

	srvErr := make(chan error, 1)
	go func() {
		nc, err := ln.Accept()
		if err != nil {
			srvErr <- err
			return
		}
		conn := NewTCP(nc)
		defer conn.Close()
		_, err = conn.Recv(context.Background())
		srvErr <- err
	}()

	// Without a client certificate the handshake must fail.
	conn, err := DialTLS(context.Background(), ln.Addr().String(), "127.0.0.1", serverPool, nil)
	if err == nil {
		// TLS 1.3 may defer the failure to the first IO.
		err = conn.Send(context.Background(), []byte("x"))
		if err == nil {
			_, err = conn.Recv(context.Background())
		}
		conn.Close()
	}
	if err == nil {
		t.Fatal("handshake without client certificate succeeded")
	}
	<-srvErr

	// With the pinned client certificate it works.
	go func() {
		nc, err := ln.Accept()
		if err != nil {
			srvErr <- err
			return
		}
		conn := NewTCP(nc)
		defer conn.Close()
		_, err = conn.Recv(context.Background())
		srvErr <- err
	}()
	conn, err = DialTLS(context.Background(), ln.Addr().String(), "127.0.0.1", serverPool, &clientCert)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if err := conn.Send(context.Background(), []byte("hello")); err != nil {
		t.Fatal(err)
	}
	if err := <-srvErr; err != nil {
		t.Fatalf("server with mutual auth: %v", err)
	}
}

func TestTLSRejectsUnpinnedServer(t *testing.T) {
	serverCert, _ := GenerateSelfSignedCert([]string{"127.0.0.1"}, time.Hour)
	otherCert, _ := GenerateSelfSignedCert([]string{"127.0.0.1"}, time.Hour)
	wrongPool, _ := PinnedPool(otherCert) // pins the WRONG certificate

	raw, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ln := NewTLSListener(raw, serverCert, nil)
	defer ln.Close()
	go func() {
		if nc, err := ln.Accept(); err == nil {
			nc.Close()
		}
	}()

	if _, err := DialTLS(context.Background(), ln.Addr().String(), "127.0.0.1", wrongPool, nil); err == nil {
		t.Fatal("connected to a server whose certificate is not pinned")
	}
}

func TestPinnedPoolErrors(t *testing.T) {
	if _, err := PinnedPool(tls.Certificate{}); err == nil {
		t.Error("empty certificate accepted")
	}
	// A certificate without a parsed Leaf is re-parsed from DER.
	c, err := GenerateSelfSignedCert([]string{"x"}, time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	c.Leaf = nil
	if _, err := PinnedPool(c); err != nil {
		t.Errorf("leafless certificate rejected: %v", err)
	}
}
