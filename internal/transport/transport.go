// Package transport moves opaque frames between the two (or three)
// parties of a protocol session.
//
// The paper's Figure 1 separates the cryptographic protocol from the
// "secure communication" layer; this package is that layer.  It offers an
// in-memory pipe for in-process experiments and tests, a TCP transport
// with length-prefixed frames for real two-machine runs, a metering
// decorator that counts exact bytes (used to verify the Section 6.1
// communication formulas), a fault-injection decorator for failure
// testing, and an analytic link model (default: the paper's T1 line at
// 1.544 Mbit/s) that converts measured bytes into the paper's
// transfer-time estimates.
package transport

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"
)

// Common errors.
var (
	// ErrClosed reports use of a closed connection.
	ErrClosed = errors.New("transport: connection closed")
	// ErrFrameTooLarge reports a frame above MaxFrameLen.
	ErrFrameTooLarge = errors.New("transport: frame too large")
)

// MaxFrameLen bounds a single frame (1 GiB): large enough for a
// million-element vector of 2048-bit group elements, small enough to
// reject corrupted length prefixes before allocating.
const MaxFrameLen = 1 << 30

// FrameOverhead is the per-frame on-wire cost beyond the payload: the
// 4-byte big-endian length prefix the TCP transport writes.  The
// in-memory pipe carries no prefix, but meters and the cost model charge
// it uniformly so in-process measurements predict on-wire traffic.
const FrameOverhead = 4

// Conn is a bidirectional, ordered, reliable frame transport between two
// protocol parties.  Send and Recv honour context cancellation.  A Conn
// is safe for one concurrent sender and one concurrent receiver.
type Conn interface {
	// Send delivers one frame to the peer, blocking until it is handed
	// to the transport or ctx ends.
	Send(ctx context.Context, frame []byte) error
	// Recv returns the next frame from the peer in send order, blocking
	// until one arrives, the peer closes, or ctx ends.
	Recv(ctx context.Context) ([]byte, error)
	// Close releases the endpoint; the peer's pending and future Recvs
	// fail.  Close is idempotent.
	Close() error
}

// pipeConn is one endpoint of an in-memory pipe.
type pipeConn struct {
	out  chan<- []byte
	in   <-chan []byte
	done chan struct{}
	once *sync.Once // shared: closing either endpoint closes the pipe
}

// Pipe returns two connected in-memory endpoints.  Frames sent on one
// side are received on the other in order.  The buffer depth of 16 frames
// lets simple lockstep protocols run on a single goroutine pair without
// deadlock while still exercising backpressure.
func Pipe() (Conn, Conn) {
	ab := make(chan []byte, 16)
	ba := make(chan []byte, 16)
	done := make(chan struct{})
	once := &sync.Once{}
	a := &pipeConn{out: ab, in: ba, done: done, once: once}
	b := &pipeConn{out: ba, in: ab, done: done, once: once}
	return a, b
}

// Send implements Conn.
func (p *pipeConn) Send(ctx context.Context, frame []byte) error {
	// Copy so the caller may reuse its buffer.
	cp := append([]byte(nil), frame...)
	// Check for closure first: with buffer space free, the send case
	// below would otherwise race against the closed-pipe case.
	select {
	case <-p.done:
		return ErrClosed
	default:
	}
	select {
	case p.out <- cp:
		return nil
	case <-p.done:
		return ErrClosed
	case <-ctx.Done():
		return fmt.Errorf("transport: send: %w", ctx.Err())
	}
}

// Recv implements Conn.
func (p *pipeConn) Recv(ctx context.Context) ([]byte, error) {
	select {
	case f := <-p.in:
		return f, nil
	case <-p.done:
		// Drain anything already queued before reporting closure.
		select {
		case f := <-p.in:
			return f, nil
		default:
		}
		return nil, ErrClosed
	case <-ctx.Done():
		return nil, fmt.Errorf("transport: recv: %w", ctx.Err())
	}
}

// Close implements Conn.  Closing either endpoint closes the whole pipe.
func (p *pipeConn) Close() error {
	p.once.Do(func() { close(p.done) })
	return nil
}

// tcpConn frames messages over a net.Conn as a 4-byte big-endian length
// followed by the payload.
type tcpConn struct {
	nc     net.Conn
	sendMu sync.Mutex
	recvMu sync.Mutex
	closed atomic.Bool
}

// watchCancel interrupts a blocked read or write when ctx is cancelled by
// moving the relevant I/O deadline into the past (the net-package idiom
// for unblocking a stuck syscall).  The returned stop function must be
// called once the operation completes; it blocks until the watcher
// goroutine has exited, so any deadline poke happens before stop
// returns — and therefore before the next operation re-arms its own
// deadline on entry.  (An async stop is NOT safe: when an operation
// completes without blocking — the data was already buffered — the
// watcher may not have run yet, and both its channels fire before it
// first parks.  A select entered with both cases ready picks one at
// random, so a stale watcher could poke the deadline into the past
// AFTER the next operation armed its deadline, killing that read or
// write with a spurious timeout.  The mux demux loop, which drains
// back-to-back buffered frames with no work in between, hits exactly
// this pattern.)
func watchCancel(ctx context.Context, setDeadline func(time.Time) error) (stop func()) {
	done := ctx.Done()
	if done == nil {
		return func() {}
	}
	finished := make(chan struct{})
	exited := make(chan struct{})
	go func() {
		defer close(exited)
		select {
		case <-done:
			_ = setDeadline(time.Unix(1, 0)) // far past: unblock now
		case <-finished:
		}
	}()
	return func() {
		close(finished)
		<-exited
	}
}

// opErr folds a context failure into an I/O error: when the context was
// cancelled (or timed out) the poked deadline surfaces as a generic
// timeout from the net layer, so report the context's error instead.
// The I/O deadline and the context timer run on separate clocks, so a
// read can report its timeout a moment before ctx.Err() flips; when the
// context carries the deadline that just fired, still report
// context.DeadlineExceeded so callers classify the two cases the same.
func opErr(ctx context.Context, what string, err error) error {
	if ctxErr := ctx.Err(); ctxErr != nil {
		return fmt.Errorf("transport: %s: %w", what, ctxErr)
	}
	var ne net.Error
	if errors.As(err, &ne) && ne.Timeout() {
		if dl, ok := ctx.Deadline(); ok && !time.Now().Before(dl) {
			return fmt.Errorf("transport: %s: %w", what, context.DeadlineExceeded)
		}
	}
	return fmt.Errorf("transport: %s: %w", what, err)
}

// NewTCP wraps an established net.Conn (TCP or unix socket) as a frame
// transport.
func NewTCP(nc net.Conn) Conn {
	return &tcpConn{nc: nc}
}

// Dial connects to a listening peer and returns the frame transport.
func Dial(ctx context.Context, network, addr string) (Conn, error) {
	var d net.Dialer
	nc, err := d.DialContext(ctx, network, addr)
	if err != nil {
		return nil, fmt.Errorf("transport: dial %s %s: %w", network, addr, err)
	}
	return NewTCP(nc), nil
}

// Send implements Conn.
func (t *tcpConn) Send(ctx context.Context, frame []byte) error {
	if t.closed.Load() {
		return ErrClosed
	}
	if len(frame) > MaxFrameLen {
		return fmt.Errorf("%w: %d bytes", ErrFrameTooLarge, len(frame))
	}
	t.sendMu.Lock()
	defer t.sendMu.Unlock()
	dl, _ := ctx.Deadline() // zero time clears any previous deadline
	if err := t.nc.SetWriteDeadline(dl); err != nil {
		return fmt.Errorf("transport: set write deadline: %w", err)
	}
	stop := watchCancel(ctx, t.nc.SetWriteDeadline)
	defer stop()
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(frame)))
	if _, err := t.nc.Write(hdr[:]); err != nil {
		return opErr(ctx, "write frame header", err)
	}
	if _, err := t.nc.Write(frame); err != nil {
		return opErr(ctx, "write frame body", err)
	}
	return nil
}

// Recv implements Conn.
func (t *tcpConn) Recv(ctx context.Context) ([]byte, error) {
	if t.closed.Load() {
		return nil, ErrClosed
	}
	t.recvMu.Lock()
	defer t.recvMu.Unlock()
	dl, _ := ctx.Deadline() // zero time clears any previous deadline
	if err := t.nc.SetReadDeadline(dl); err != nil {
		return nil, fmt.Errorf("transport: set read deadline: %w", err)
	}
	stop := watchCancel(ctx, t.nc.SetReadDeadline)
	defer stop()
	var hdr [4]byte
	if _, err := io.ReadFull(t.nc, hdr[:]); err != nil {
		return nil, opErr(ctx, "read frame header", err)
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n > MaxFrameLen {
		return nil, fmt.Errorf("%w: declared %d bytes", ErrFrameTooLarge, n)
	}
	frame := make([]byte, n)
	if _, err := io.ReadFull(t.nc, frame); err != nil {
		return nil, opErr(ctx, "read frame body", err)
	}
	return frame, nil
}

// Close implements Conn.
func (t *tcpConn) Close() error {
	if t.closed.Swap(true) {
		return nil
	}
	return t.nc.Close()
}
