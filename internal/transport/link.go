package transport

import (
	"sync"
	"time"
)

// Link is the serialization clock of one modelled transmission line: a
// single store-and-forward resource that every frame crossing the link
// must occupy for bits/bps seconds, in arrival order.  A Link may be
// shared by several Latency decorators — concurrent streams (sharded
// sessions, several connections through one uplink) then contend for
// the same modelled capacity instead of each enjoying a private copy of
// the line.
//
// Before Link existed, every Latency instance kept its own link-free
// clock, so two concurrent writers through "one" modelled link each saw
// the full bandwidth — doubling the apparent capacity and over-reporting
// exactly the sharded speedups this model exists to measure honestly
// (see TestLatencySharedLinkSerializes).  A real full-duplex line is two
// independent serialization resources, one per direction: model it with
// two Links, each shared by all same-direction writers.
type Link struct {
	bps float64 // serialization rate; <= 0 = infinitely fast

	mu   sync.Mutex
	free time.Time // when the line finishes serializing queued frames
}

// NewLink returns a serialization clock for a line of the given rate in
// bits per second (e.g. transport.T1.BitsPerSecond).  bitsPerSecond <= 0
// models an infinitely fast line: reserve returns immediately with no
// queueing.
func NewLink(bitsPerSecond float64) *Link {
	return &Link{bps: bitsPerSecond}
}

// reserve books wireBytes onto the line no earlier than now and returns
// the instant their serialization finishes — which is also when the next
// frame, from whichever writer, may start.
func (ln *Link) reserve(now time.Time, wireBytes int) time.Time {
	if ln.bps <= 0 {
		return now
	}
	ln.mu.Lock()
	defer ln.mu.Unlock()
	start := ln.free
	if start.Before(now) {
		start = now
	}
	bits := float64(8 * wireBytes)
	ln.free = start.Add(time.Duration(bits / ln.bps * float64(time.Second)))
	return ln.free
}
