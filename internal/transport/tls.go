package transport

import (
	"context"
	"crypto/ecdsa"
	"crypto/elliptic"
	"crypto/rand"
	"crypto/tls"
	"crypto/x509"
	"crypto/x509/pkix"
	"fmt"
	"math/big"
	"net"
	"time"
)

// TLS support — the "Secure Communication" box of the paper's Figure 1.
//
// The cryptographic protocols assume an authenticated, confidential,
// integrity-protected channel between the enterprises ("We assume the
// use of standard libraries or packages for secure communication",
// Section 2.1).  These helpers provide that channel over TLS: a
// self-signed certificate generator for closed two-party deployments
// (each side pins the other's certificate), a listener wrapper for the
// server side and a dialer for the client side, both yielding the same
// frame Conn the protocols run over.

// GenerateSelfSignedCert creates an ECDSA P-256 certificate for the
// given hosts (DNS names or IP addresses), valid for the given duration.
// The peer pins it via CertPool (see NewTLSConfigs).
func GenerateSelfSignedCert(hosts []string, validFor time.Duration) (tls.Certificate, error) {
	key, err := ecdsa.GenerateKey(elliptic.P256(), rand.Reader)
	if err != nil {
		return tls.Certificate{}, fmt.Errorf("transport: generating key: %w", err)
	}
	serial, err := rand.Int(rand.Reader, new(big.Int).Lsh(big.NewInt(1), 128))
	if err != nil {
		return tls.Certificate{}, fmt.Errorf("transport: generating serial: %w", err)
	}
	tmpl := x509.Certificate{
		SerialNumber:          serial,
		Subject:               pkix.Name{Organization: []string{"minshare enterprise"}},
		NotBefore:             time.Now().Add(-time.Hour),
		NotAfter:              time.Now().Add(validFor),
		KeyUsage:              x509.KeyUsageDigitalSignature | x509.KeyUsageCertSign,
		ExtKeyUsage:           []x509.ExtKeyUsage{x509.ExtKeyUsageServerAuth, x509.ExtKeyUsageClientAuth},
		BasicConstraintsValid: true,
		IsCA:                  true,
	}
	for _, h := range hosts {
		if ip := net.ParseIP(h); ip != nil {
			tmpl.IPAddresses = append(tmpl.IPAddresses, ip)
		} else {
			tmpl.DNSNames = append(tmpl.DNSNames, h)
		}
	}
	der, err := x509.CreateCertificate(rand.Reader, &tmpl, &tmpl, &key.PublicKey, key)
	if err != nil {
		return tls.Certificate{}, fmt.Errorf("transport: creating certificate: %w", err)
	}
	leaf, err := x509.ParseCertificate(der)
	if err != nil {
		return tls.Certificate{}, fmt.Errorf("transport: parsing certificate: %w", err)
	}
	return tls.Certificate{Certificate: [][]byte{der}, PrivateKey: key, Leaf: leaf}, nil
}

// PinnedPool builds a certificate pool containing exactly the given
// certificates — the two-enterprise trust model: each side trusts the
// other's self-signed certificate and nothing else.
func PinnedPool(certs ...tls.Certificate) (*x509.CertPool, error) {
	pool := x509.NewCertPool()
	for i, c := range certs {
		leaf := c.Leaf
		if leaf == nil {
			if len(c.Certificate) == 0 {
				return nil, fmt.Errorf("transport: certificate %d has no data", i)
			}
			var err error
			leaf, err = x509.ParseCertificate(c.Certificate[0])
			if err != nil {
				return nil, fmt.Errorf("transport: parsing certificate %d: %w", i, err)
			}
		}
		pool.AddCert(leaf)
	}
	return pool, nil
}

// NewTLSListener wraps a plain listener with TLS using the server's
// certificate; the optional clientPool enforces mutual TLS against
// pinned client certificates.
func NewTLSListener(ln net.Listener, cert tls.Certificate, clientPool *x509.CertPool) net.Listener {
	cfg := &tls.Config{
		Certificates: []tls.Certificate{cert},
		MinVersion:   tls.VersionTLS13,
	}
	if clientPool != nil {
		cfg.ClientAuth = tls.RequireAndVerifyClientCert
		cfg.ClientCAs = clientPool
	}
	return tls.NewListener(ln, cfg)
}

// DialTLS connects to a TLS-wrapped peer, verifying its certificate
// against serverPool (which pins the peer's self-signed certificate).
// clientCert, when non-zero, is presented for mutual TLS.
func DialTLS(ctx context.Context, addr, serverName string, serverPool *x509.CertPool, clientCert *tls.Certificate) (Conn, error) {
	cfg := &tls.Config{
		RootCAs:    serverPool,
		ServerName: serverName,
		MinVersion: tls.VersionTLS13,
	}
	if clientCert != nil {
		cfg.Certificates = []tls.Certificate{*clientCert}
	}
	d := &tls.Dialer{Config: cfg}
	nc, err := d.DialContext(ctx, "tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("transport: TLS dial %s: %w", addr, err)
	}
	return NewTCP(nc), nil
}
