package transport

import (
	"context"
	"errors"
	"fmt"
	"time"
)

// ErrIdleTimeout reports a Send or Recv aborted because the peer made no
// progress within the decorator's per-operation allowance.  It wraps
// context.DeadlineExceeded, so errors.Is works against either sentinel.
var ErrIdleTimeout = errors.New("transport: idle timeout")

// idleConn applies a fresh deadline to every individual Send and Recv: a
// stalled peer is detected after at most one idle interval, however long
// the whole session is allowed to run.
//
// The decorator is transport-agnostic — it only derives a child context
// per operation — so it composes with any Conn that honours context
// deadlines and cancellation: the TCP transport (and therefore the TLS
// one, which shares it), the in-memory pipe, and the other decorators in
// this package.  A caller deadline tighter than the idle allowance still
// wins; a looser one is tightened for the single operation only.
type idleConn struct {
	Conn
	idle time.Duration
}

// WithIdleTimeout wraps inner so each Send and Recv must complete within
// idle.  A non-positive idle returns inner unchanged.
func WithIdleTimeout(inner Conn, idle time.Duration) Conn {
	if idle <= 0 {
		return inner
	}
	return &idleConn{Conn: inner, idle: idle}
}

// Send implements Conn.
func (d *idleConn) Send(ctx context.Context, frame []byte) error {
	opCtx, cancel := context.WithTimeout(ctx, d.idle)
	defer cancel()
	return d.classify(ctx, opCtx, d.Conn.Send(opCtx, frame))
}

// Recv implements Conn.
func (d *idleConn) Recv(ctx context.Context) ([]byte, error) {
	opCtx, cancel := context.WithTimeout(ctx, d.idle)
	defer cancel()
	frame, err := d.Conn.Recv(opCtx)
	return frame, d.classify(ctx, opCtx, err)
}

// classify rewrites an operation failure caused by the idle allowance as
// ErrIdleTimeout; failures the caller caused, or unrelated transport
// errors, pass through untouched.  Attribution compares the two
// deadlines rather than polling ctx.Err(): the idle timer fired iff the
// op deadline is strictly earlier than any the caller set, which stays
// correct even when the I/O layer reports its timeout a beat before the
// context timers flip.
func (d *idleConn) classify(parent, op context.Context, err error) error {
	if err == nil {
		return nil
	}
	if op.Err() != context.DeadlineExceeded && !errors.Is(err, context.DeadlineExceeded) {
		return err
	}
	if pdl, ok := parent.Deadline(); ok {
		if odl, _ := op.Deadline(); !odl.Before(pdl) {
			return err // the caller's own deadline, not the idle timer
		}
	}
	if parent.Err() != nil {
		return err // the caller cancelled outright
	}
	return fmt.Errorf("%w after %v: %w", ErrIdleTimeout, d.idle, context.DeadlineExceeded)
}
