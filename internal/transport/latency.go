package transport

import (
	"context"
	"fmt"
	"sync"
	"time"
)

// Latency delays outgoing frames to model a real link: each frame is
// delivered to the inner connection one-way-delay (rtt/2) after it was
// sent, and — when a bandwidth is set — only after its bytes have
// serialized onto the link, frames queueing behind one another exactly
// as on a store-and-forward line.
//
// Crucially the model is *pipelined*: Send returns as soon as the frame
// is queued, and a burst of frames propagates concurrently, each
// arriving one delay after its own serialization finished.  A naive
// sleep-per-frame model would serialize propagation delays and so
// overcharge exactly the chunked streams this wrapper exists to
// benchmark.  Only the send direction is shaped; wrap both endpoints to
// shape both directions of a pipe.
//
// Serialization is delegated to a Link — a shared clock modelling the
// line's capacity — so several Latency instances can contend for one
// modelled link the way concurrent streams contend for a real one.
// WithBandwidth gives this instance a private Link (the single-writer
// behaviour of earlier releases); WithLink shares an explicit one.
//
// Like Fault and Meter, Latency decorates any Conn.
type Latency struct {
	inner Conn
	delay time.Duration // one-way propagation delay (rtt/2)

	mu      sync.Mutex
	link    *Link // serialization clock; nil = infinitely fast line
	sendErr error // sticky forwarding error
	closed  bool

	queue chan timedFrame
	done  chan struct{}
}

type timedFrame struct {
	due   time.Time
	frame []byte
}

// NewLatency wraps inner so frames sent through it arrive rtt/2 later.
// Call WithBandwidth before first use to add serialization delay.
func NewLatency(inner Conn, rtt time.Duration) *Latency {
	l := &Latency{
		inner: inner,
		delay: rtt / 2,
		queue: make(chan timedFrame, 4096),
		done:  make(chan struct{}),
	}
	go l.forward()
	return l
}

// WithBandwidth sets the link's serialization rate in bits per second
// (e.g. transport.T1.BitsPerSecond) and returns l for chaining.  Zero
// means an infinitely fast link (propagation delay only).  Must be
// called before the first Send.  The instance gets a private Link, so
// this writer has the whole modelled line to itself; use WithLink to
// share a line between writers.
func (l *Latency) WithBandwidth(bitsPerSecond float64) *Latency {
	if bitsPerSecond <= 0 {
		return l.WithLink(nil)
	}
	return l.WithLink(NewLink(bitsPerSecond))
}

// WithLink makes l serialize its frames over link, sharing the line's
// capacity with every other Latency holding the same Link.  A nil link
// models an infinitely fast line.  Must be called before the first
// Send.
func (l *Latency) WithLink(link *Link) *Latency {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.link = link
	return l
}

// Send implements Conn.  It computes the frame's arrival time from the
// link state and queues it for delayed forwarding, returning
// immediately.
func (l *Latency) Send(ctx context.Context, frame []byte) error {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return ErrClosed
	}
	if err := l.sendErr; err != nil {
		l.mu.Unlock()
		return err
	}
	link := l.link
	l.mu.Unlock()
	// Store-and-forward: the frame (with its wire framing) must fully
	// serialize onto the shared line before it propagates.  reserve
	// queues it behind whatever any writer already booked.
	start := time.Now()
	if link != nil {
		start = link.reserve(start, len(frame)+FrameOverhead)
	}
	due := start.Add(l.delay)

	tf := timedFrame{due: due, frame: append([]byte(nil), frame...)}
	select {
	case l.queue <- tf:
		return nil
	case <-l.done:
		return ErrClosed
	case <-ctx.Done():
		return fmt.Errorf("transport: send: %w", ctx.Err())
	}
}

// forward delivers queued frames to the inner connection at their due
// times, in order.
func (l *Latency) forward() {
	for {
		select {
		case tf := <-l.queue:
			if wait := time.Until(tf.due); wait > 0 {
				t := time.NewTimer(wait)
				select {
				case <-t.C:
				case <-l.done:
					t.Stop()
					return
				}
			}
			if err := l.inner.Send(context.Background(), tf.frame); err != nil {
				l.mu.Lock()
				if l.sendErr == nil {
					l.sendErr = err
				}
				l.mu.Unlock()
				return
			}
		case <-l.done:
			return
		}
	}
}

// Recv implements Conn: the receive direction passes through unshaped.
func (l *Latency) Recv(ctx context.Context) ([]byte, error) {
	return l.inner.Recv(ctx)
}

// Close implements Conn.  Frames still queued are dropped.
func (l *Latency) Close() error {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return nil
	}
	l.closed = true
	l.mu.Unlock()
	close(l.done)
	return l.inner.Close()
}
