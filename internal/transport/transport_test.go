package transport

import (
	"bytes"
	"context"
	"errors"
	"net"
	"sync"
	"testing"
	"time"
)

func testPairs(t *testing.T) map[string]func(t *testing.T) (Conn, Conn) {
	t.Helper()
	return map[string]func(t *testing.T) (Conn, Conn){
		"pipe": func(t *testing.T) (Conn, Conn) {
			return Pipe()
		},
		"tcp": func(t *testing.T) (Conn, Conn) {
			ln, err := net.Listen("tcp", "127.0.0.1:0")
			if err != nil {
				t.Fatal(err)
			}
			defer ln.Close()
			type res struct {
				c   net.Conn
				err error
			}
			ch := make(chan res, 1)
			go func() {
				c, err := ln.Accept()
				ch <- res{c, err}
			}()
			client, err := Dial(context.Background(), "tcp", ln.Addr().String())
			if err != nil {
				t.Fatal(err)
			}
			r := <-ch
			if r.err != nil {
				t.Fatal(r.err)
			}
			return client, NewTCP(r.c)
		},
	}
}

func TestSendRecvAllTransports(t *testing.T) {
	for name, mk := range testPairs(t) {
		name, mk := name, mk
		t.Run(name, func(t *testing.T) {
			a, b := mk(t)
			defer a.Close()
			defer b.Close()
			ctx := context.Background()

			frames := [][]byte{
				[]byte("hello"),
				{},
				bytes.Repeat([]byte{0xAB}, 100_000),
			}
			var wg sync.WaitGroup
			wg.Add(1)
			go func() {
				defer wg.Done()
				for _, f := range frames {
					if err := a.Send(ctx, f); err != nil {
						t.Errorf("send: %v", err)
						return
					}
				}
			}()
			for i, want := range frames {
				got, err := b.Recv(ctx)
				if err != nil {
					t.Fatalf("recv %d: %v", i, err)
				}
				if !bytes.Equal(got, want) {
					t.Fatalf("frame %d: got %d bytes, want %d", i, len(got), len(want))
				}
			}
			wg.Wait()
		})
	}
}

func TestBidirectional(t *testing.T) {
	for name, mk := range testPairs(t) {
		name, mk := name, mk
		t.Run(name, func(t *testing.T) {
			a, b := mk(t)
			defer a.Close()
			defer b.Close()
			ctx := context.Background()
			if err := a.Send(ctx, []byte("ping")); err != nil {
				t.Fatal(err)
			}
			got, err := b.Recv(ctx)
			if err != nil || string(got) != "ping" {
				t.Fatalf("got %q err %v", got, err)
			}
			if err := b.Send(ctx, []byte("pong")); err != nil {
				t.Fatal(err)
			}
			got, err = a.Recv(ctx)
			if err != nil || string(got) != "pong" {
				t.Fatalf("got %q err %v", got, err)
			}
		})
	}
}

func TestSenderBufferReuse(t *testing.T) {
	// The pipe must copy: mutating the sent buffer afterwards must not
	// affect the received frame.
	a, b := Pipe()
	defer a.Close()
	ctx := context.Background()
	buf := []byte("original")
	if err := a.Send(ctx, buf); err != nil {
		t.Fatal(err)
	}
	copy(buf, "XXXXXXXX")
	got, err := b.Recv(ctx)
	if err != nil || string(got) != "original" {
		t.Fatalf("got %q err %v", got, err)
	}
}

func TestClosedPipe(t *testing.T) {
	a, b := Pipe()
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	if err := b.Send(ctx, []byte("x")); !errors.Is(err, ErrClosed) {
		t.Errorf("send on closed pipe: %v", err)
	}
	if _, err := b.Recv(ctx); !errors.Is(err, ErrClosed) {
		t.Errorf("recv on closed pipe: %v", err)
	}
}

func TestPipeDrainsQueuedAfterClose(t *testing.T) {
	a, b := Pipe()
	ctx := context.Background()
	if err := a.Send(ctx, []byte("queued")); err != nil {
		t.Fatal(err)
	}
	a.Close()
	got, err := b.Recv(ctx)
	if err != nil || string(got) != "queued" {
		t.Fatalf("queued frame lost after close: %q, %v", got, err)
	}
}

func TestContextCancellation(t *testing.T) {
	a, _ := Pipe()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := a.Recv(ctx); err == nil {
		t.Error("recv ignored cancelled context")
	}
}

func TestRecvTimeoutTCP(t *testing.T) {
	pairs := testPairs(t)
	a, b := pairs["tcp"](t)
	defer a.Close()
	defer b.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	if _, err := a.Recv(ctx); err == nil {
		t.Error("recv with no sender returned nil error")
	}
}

func TestTCPRejectsHugeFrame(t *testing.T) {
	// Write a corrupt length prefix directly to the socket; Recv must
	// refuse to allocate.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		c, err := ln.Accept()
		if err != nil {
			return
		}
		defer c.Close()
		c.Write([]byte{0xFF, 0xFF, 0xFF, 0xFF}) // 4 GiB declared
		time.Sleep(100 * time.Millisecond)
	}()
	conn, err := Dial(context.Background(), "tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, err := conn.Recv(context.Background()); !errors.Is(err, ErrFrameTooLarge) {
		t.Errorf("err = %v, want ErrFrameTooLarge", err)
	}
}

func TestSendRejectsHugeFrame(t *testing.T) {
	// Can't allocate >1GiB in tests; validate via a fake oversized length
	// by checking the guard directly with a length just over the limit is
	// not feasible either, so assert the constant is wired by sending on
	// a closed conn first (cheap path) and trusting MaxFrameLen coverage
	// from the Recv side.
	a, b := Pipe()
	defer b.Close()
	a.Close()
	if err := a.Send(context.Background(), []byte("x")); !errors.Is(err, ErrClosed) {
		t.Errorf("err = %v, want ErrClosed", err)
	}
}

func TestMeterCounts(t *testing.T) {
	a, b := Pipe()
	defer a.Close()
	ma := NewMeter(a)
	mb := NewMeter(b)
	ctx := context.Background()
	payload := bytes.Repeat([]byte{1}, 1000)
	for i := 0; i < 3; i++ {
		if err := ma.Send(ctx, payload); err != nil {
			t.Fatal(err)
		}
		if _, err := mb.Recv(ctx); err != nil {
			t.Fatal(err)
		}
	}
	if ma.FramesSent() != 3 || ma.BytesSent() != 3000 {
		t.Errorf("sender counters: %d frames, %d bytes", ma.FramesSent(), ma.BytesSent())
	}
	if mb.FramesRecv() != 3 || mb.BytesRecv() != 3000 {
		t.Errorf("receiver counters: %d frames, %d bytes", mb.FramesRecv(), mb.BytesRecv())
	}
	if mb.TotalBytes() != 3000 {
		t.Errorf("TotalBytes = %d", mb.TotalBytes())
	}
	ma.Reset()
	if ma.FramesSent() != 0 || ma.BytesSent() != 0 {
		t.Error("Reset did not clear counters")
	}
}

func TestMeterDoesNotCountFailedSend(t *testing.T) {
	a, _ := Pipe()
	a.Close()
	m := NewMeter(a)
	_ = m.Send(context.Background(), []byte("x"))
	if m.FramesSent() != 0 {
		t.Error("failed send was counted")
	}
}

func TestLinkModelT1(t *testing.T) {
	// Paper §6.2: 3 Gbit on a T1 ≈ 35 minutes ("≈ 5 Gbits/hour").
	d := T1.TransferTimeBits(3e9)
	if d < 30*time.Minute || d > 36*time.Minute {
		t.Errorf("3 Gbit over T1 = %v, want ≈ 32-33 min (paper rounds to 35)", d)
	}
	// 8 Gbit ≈ 1.5 hours.
	d = T1.TransferTimeBits(8e9)
	if d < 80*time.Minute || d > 100*time.Minute {
		t.Errorf("8 Gbit over T1 = %v, want ≈ 1.5 h", d)
	}
	// Byte-count form agrees with bit form.
	if T1.TransferTime(1000) != T1.TransferTimeBits(8000) {
		t.Error("TransferTime and TransferTimeBits disagree")
	}
	var dead LinkModel
	if dead.TransferTime(100) != 0 || dead.TransferTimeBits(100) != 0 {
		t.Error("zero-bandwidth link should yield 0")
	}
}

func TestFaultInjection(t *testing.T) {
	ctx := context.Background()

	t.Run("fail send", func(t *testing.T) {
		a, _ := Pipe()
		f := NewFault(a)
		f.FailSendAt = 2
		if err := f.Send(ctx, []byte("1")); err != nil {
			t.Fatal(err)
		}
		if err := f.Send(ctx, []byte("2")); !errors.Is(err, ErrInjected) {
			t.Errorf("second send: %v", err)
		}
	})

	t.Run("fail recv", func(t *testing.T) {
		a, b := Pipe()
		f := NewFault(b)
		f.FailRecvAt = 1
		_ = a.Send(ctx, []byte("x"))
		if _, err := f.Recv(ctx); !errors.Is(err, ErrInjected) {
			t.Errorf("recv: %v", err)
		}
	})

	t.Run("corrupt recv", func(t *testing.T) {
		a, b := Pipe()
		f := NewFault(b)
		f.CorruptRecvAt = 1
		_ = a.Send(ctx, []byte("hello world"))
		got, err := f.Recv(ctx)
		if err != nil {
			t.Fatal(err)
		}
		if bytes.Equal(got, []byte("hello world")) {
			t.Error("frame was not corrupted")
		}
	})

	t.Run("truncate recv", func(t *testing.T) {
		a, b := Pipe()
		f := NewFault(b)
		f.TruncateRecvAt = 1
		_ = a.Send(ctx, []byte("hello world"))
		got, err := f.Recv(ctx)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len("hello world")/2 {
			t.Errorf("got %d bytes", len(got))
		}
	})

	t.Run("close passthrough", func(t *testing.T) {
		a, _ := Pipe()
		f := NewFault(a)
		if err := f.Close(); err != nil {
			t.Fatal(err)
		}
	})
}
