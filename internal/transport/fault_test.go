package transport

import (
	"bytes"
	"context"
	"errors"
	"testing"
)

// The fault decorator composes with the meter: experiments that measure
// traffic while injecting failures stack them as Meter(Fault(conn)), so
// the meter must see exactly what the fault layer delivered — an
// injected failure must not inflate the byte census, and a corrupted or
// truncated frame must be counted at its delivered length.

func TestMeterOverFaultFailedSendNotCounted(t *testing.T) {
	ctx := context.Background()
	a, b := Pipe()
	defer b.Close()
	f := NewFault(a)
	f.FailSendAt = 2
	m := NewMeter(f)

	payload := bytes.Repeat([]byte{7}, 100)
	if err := m.Send(ctx, payload); err != nil {
		t.Fatal(err)
	}
	if err := m.Send(ctx, payload); !errors.Is(err, ErrInjected) {
		t.Fatalf("second send: err = %v, want ErrInjected", err)
	}
	if err := m.Send(ctx, payload); err != nil {
		t.Fatal(err)
	}

	// Two frames actually crossed; the injected failure is invisible to
	// the census.
	if got := m.FramesSent(); got != 2 {
		t.Errorf("FramesSent = %d, want 2", got)
	}
	if got := m.BytesSent(); got != 200 {
		t.Errorf("BytesSent = %d, want 200", got)
	}
	if got := m.WireBytesSent(); got != 200+2*FrameOverhead {
		t.Errorf("WireBytesSent = %d, want %d", got, 200+2*FrameOverhead)
	}
	for i := 0; i < 2; i++ {
		got, err := b.Recv(ctx)
		if err != nil {
			t.Fatalf("recv %d: %v", i, err)
		}
		if !bytes.Equal(got, payload) {
			t.Fatalf("recv %d: frame mangled", i)
		}
	}
}

func TestMeterOverFaultFailedRecvNotCounted(t *testing.T) {
	ctx := context.Background()
	a, b := Pipe()
	defer a.Close()
	f := NewFault(b)
	f.FailRecvAt = 1
	m := NewMeter(f)

	if err := a.Send(ctx, []byte("first")); err != nil {
		t.Fatal(err)
	}
	if err := a.Send(ctx, []byte("second")); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Recv(ctx); !errors.Is(err, ErrInjected) {
		t.Fatalf("first recv: err = %v, want ErrInjected", err)
	}
	if got := m.FramesRecv(); got != 0 {
		t.Errorf("FramesRecv after injected failure = %d, want 0", got)
	}
	// The fault consumed its counter but not the frame: the next Recv
	// still yields the first queued frame, and only that is counted.
	got, err := m.Recv(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "first" {
		t.Errorf("recv after failure = %q, want %q", got, "first")
	}
	if m.FramesRecv() != 1 || m.BytesRecv() != int64(len("first")) {
		t.Errorf("counters: %d frames, %d bytes", m.FramesRecv(), m.BytesRecv())
	}
	if got := m.WireBytesRecv(); got != int64(len("first"))+FrameOverhead {
		t.Errorf("WireBytesRecv = %d", got)
	}
}

func TestMeterOverFaultCountsDeliveredLengths(t *testing.T) {
	ctx := context.Background()
	a, b := Pipe()
	defer a.Close()
	f := NewFault(b)
	f.CorruptRecvAt = 1
	f.TruncateRecvAt = 2
	m := NewMeter(f)

	orig := bytes.Repeat([]byte{0x5A}, 64)
	for i := 0; i < 3; i++ {
		if err := a.Send(ctx, orig); err != nil {
			t.Fatal(err)
		}
	}

	// Frame 1: corrupted, same length.
	got, err := m.Recv(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(got, orig) {
		t.Error("frame 1 was not corrupted")
	}
	if len(got) != len(orig) {
		t.Errorf("corrupted frame length %d, want %d", len(got), len(orig))
	}

	// Frame 2: truncated to half; the meter charges the delivered half.
	got, err = m.Recv(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(orig)/2 {
		t.Errorf("truncated frame length %d, want %d", len(got), len(orig)/2)
	}

	// Frame 3: clean.
	got, err = m.Recv(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, orig) {
		t.Error("frame 3 was altered with no fault armed")
	}

	wantBytes := int64(len(orig) + len(orig)/2 + len(orig))
	if m.FramesRecv() != 3 || m.BytesRecv() != wantBytes {
		t.Errorf("counters: %d frames, %d bytes; want 3 frames, %d bytes",
			m.FramesRecv(), m.BytesRecv(), wantBytes)
	}
	if got := m.WireBytesRecv(); got != wantBytes+3*FrameOverhead {
		t.Errorf("WireBytesRecv = %d, want %d", got, wantBytes+3*FrameOverhead)
	}
	if got := m.TotalWireBytes(); got != wantBytes+3*FrameOverhead {
		t.Errorf("TotalWireBytes = %d (nothing was sent)", got)
	}
}

func TestFaultOverMeterLeavesSenderCensusIntact(t *testing.T) {
	// The reverse stacking — Fault(Meter(conn)) — models a fault injected
	// above the measured wire: a send the fault eats never reaches the
	// meter, so both stackings agree that only delivered traffic counts.
	ctx := context.Background()
	a, b := Pipe()
	defer b.Close()
	m := NewMeter(a)
	f := NewFault(m)
	f.FailSendAt = 1

	if err := f.Send(ctx, []byte("dropped")); !errors.Is(err, ErrInjected) {
		t.Fatalf("err = %v, want ErrInjected", err)
	}
	if m.FramesSent() != 0 || m.BytesSent() != 0 || m.WireBytesSent() != 0 {
		t.Errorf("meter saw the dropped frame: %d frames, %d bytes",
			m.FramesSent(), m.BytesSent())
	}
	if err := f.Send(ctx, []byte("kept")); err != nil {
		t.Fatal(err)
	}
	if m.FramesSent() != 1 || m.BytesSent() != int64(len("kept")) {
		t.Errorf("counters after clean send: %d frames, %d bytes",
			m.FramesSent(), m.BytesSent())
	}
}

func TestFaultMeterStackClose(t *testing.T) {
	// Close propagates through the whole decorator stack and the
	// underlying pipe rejects further use from either end.
	a, b := Pipe()
	m := NewMeter(NewFault(a))
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	if err := b.Send(ctx, []byte("x")); !errors.Is(err, ErrClosed) {
		t.Errorf("send after stacked close: %v", err)
	}
	if err := m.Send(ctx, []byte("x")); !errors.Is(err, ErrClosed) {
		t.Errorf("send on closed stack: %v", err)
	}
	if m.FramesSent() != 0 {
		t.Error("failed send on closed stack was counted")
	}
}
