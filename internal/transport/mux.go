package transport

import (
	"context"
	"errors"
	"fmt"
	"sync"
)

// MaxShards bounds the shard count a session may negotiate.  The shard
// tag is one byte with 0xFF reserved for control frames, so the wire
// format allows up to 255 shards; 64 is a deliberate policy cap — far
// beyond any useful parallelism for these protocols while keeping the
// per-shard window memory (MuxWindow frames each way per shard) small.
const MaxShards = 64

// MuxWindow is the per-shard flow-control window: how many data frames
// a shard's writer may have in flight before it must block waiting for
// the reader to drain them.  Without it, one fast shard could flood the
// shared connection's buffer and starve (or deadlock against) its
// siblings; with it, each shard's memory on the receive side is bounded
// by MuxWindow frames regardless of scheduling.
const MuxWindow = 32

// muxControl is the shard-tag value that marks a control frame.  Data
// frames are [shardID][payload...] with shardID < muxControl; control
// frames are [0xFF][shardID][credits], returning `credits` window slots
// to the named shard's sender.
const muxControl = 0xFF

// ErrMuxOverflow reports a peer that sent more data frames on one shard
// than the flow-control window allows — a protocol violation (or a
// corrupted/foreign stream), never a legal state of a correct peer.
var ErrMuxOverflow = errors.New("transport: mux: shard window overflow")

// ErrBadShardTag reports a frame whose shard tag names no open shard.
var ErrBadShardTag = errors.New("transport: mux: frame for unknown shard")

// Mux multiplexes k independent shard streams over one underlying Conn.
// Each shard is a virtual Conn usable by one sub-protocol session; the
// frames of all shards interleave on the wire, tagged with a one-byte
// shard ID, with per-shard credit-based flow control so no shard can
// starve its siblings.
//
// Both endpoints must create their Mux with the same shard count.  Any
// error on the underlying connection — or a protocol violation such as
// a window overflow — is sticky and poisons every shard at once: a
// sharded session fails atomically or not at all.
//
// The demux goroutine starts on the first Recv (via Start or lazily),
// NOT at construction: the coordinator completes its outer handshake on
// the raw conn first, and only then may the mux start consuming frames.
type Mux struct {
	inner  Conn
	shards []*muxShard

	sendMu sync.Mutex // serializes writes (data + control) to inner

	mu      sync.Mutex
	err     error // sticky poison; set once
	started bool
	stopped bool
	closed  bool

	ctx    context.Context
	cancel context.CancelFunc
	done   chan struct{} // demux goroutine exited
}

// muxShard is one virtual Conn carved out of a Mux.
type muxShard struct {
	m  *Mux
	id uint8

	credits chan struct{} // send-side window tokens; cap MuxWindow
	inbox   chan []byte   // received payloads; cap MuxWindow

	mu   sync.Mutex
	owed int // frames consumed but not yet credited back to the peer
}

// NewMux wraps inner into shards independent virtual connections.
// Both endpoints must agree on the count.  The returned shard Conns are
// indexed 0..shards-1 via Shard.  Closing the Mux closes inner; closing
// an individual shard Conn is a no-op (shards share the Mux lifetime).
func NewMux(inner Conn, shards int) (*Mux, error) {
	if shards < 2 || shards > MaxShards {
		return nil, fmt.Errorf("transport: mux: shard count %d out of range [2, %d]", shards, MaxShards)
	}
	ctx, cancel := context.WithCancel(context.Background())
	m := &Mux{
		inner:  inner,
		ctx:    ctx,
		cancel: cancel,
		done:   make(chan struct{}),
	}
	m.shards = make([]*muxShard, shards)
	for i := range m.shards {
		s := &muxShard{
			m:       m,
			id:      uint8(i),
			credits: make(chan struct{}, MuxWindow),
			inbox:   make(chan []byte, MuxWindow),
		}
		for j := 0; j < MuxWindow; j++ {
			s.credits <- struct{}{}
		}
		m.shards[i] = s
	}
	return m, nil
}

// Shard returns the virtual Conn for shard i.
func (m *Mux) Shard(i int) Conn { return m.shards[i] }

// Start launches the demux goroutine.  It must be called exactly once,
// after any pre-mux traffic (the coordinator's outer handshake) has
// been fully consumed from the underlying connection.
func (m *Mux) Start() {
	m.mu.Lock()
	if m.started || m.stopped {
		m.mu.Unlock()
		return
	}
	m.started = true
	m.mu.Unlock()
	go m.demux()
}

// poison records the first fatal error and wakes every shard.
func (m *Mux) poison(err error) {
	m.mu.Lock()
	if m.err == nil {
		m.err = err
	}
	m.mu.Unlock()
	m.cancel()
}

func (m *Mux) stickyErr() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.err
}

// demux reads frames off the shared connection and routes them: data
// frames to the owning shard's inbox, control frames back into the
// sender's credit pool.  It never blocks on a shard — the flow-control
// window guarantees inbox space for a correct peer, so a full inbox is
// a protocol violation and poisons the session.
func (m *Mux) demux() {
	defer close(m.done)
	for {
		frame, err := m.inner.Recv(m.ctx)
		if err != nil {
			m.poison(err)
			return
		}
		if len(frame) == 0 {
			m.poison(fmt.Errorf("%w: empty frame", ErrBadShardTag))
			return
		}
		tag := frame[0]
		if tag == muxControl {
			if len(frame) != 3 || int(frame[1]) >= len(m.shards) {
				m.poison(fmt.Errorf("%w: malformed control frame", ErrBadShardTag))
				return
			}
			s := m.shards[frame[1]]
			for i := 0; i < int(frame[2]); i++ {
				select {
				case s.credits <- struct{}{}:
				default:
					m.poison(fmt.Errorf("transport: mux: shard %d credited beyond window", s.id))
					return
				}
			}
			continue
		}
		if int(tag) >= len(m.shards) {
			m.poison(fmt.Errorf("%w: shard %d of %d", ErrBadShardTag, tag, len(m.shards)))
			return
		}
		s := m.shards[tag]
		select {
		case s.inbox <- frame[1:]:
		default:
			m.poison(fmt.Errorf("%w: shard %d", ErrMuxOverflow, tag))
			return
		}
	}
}

// Stop halts the demux goroutine and fails all shard operations WITHOUT
// closing the underlying connection: a coordinator that borrowed the
// caller's Conn for one sharded run detaches with Stop, leaving the
// Conn's lifetime to its owner.  Stop blocks until the demux goroutine
// has exited, so no Mux goroutine outlives the call.  Idempotent.
func (m *Mux) Stop() {
	m.mu.Lock()
	if m.stopped {
		m.mu.Unlock()
		return
	}
	m.stopped = true
	started := m.started
	if m.err == nil {
		m.err = ErrClosed
	}
	m.mu.Unlock()
	m.cancel()
	if started {
		<-m.done
	}
}

// Close tears down the mux and the underlying connection.  All shard
// operations fail afterwards.
func (m *Mux) Close() error {
	m.Stop()
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return nil
	}
	m.closed = true
	m.mu.Unlock()
	return m.inner.Close()
}

// Send implements Conn for one shard: it takes a window credit (blocking
// until the peer has drained earlier frames), then writes the tagged
// frame to the shared connection.
func (s *muxShard) Send(ctx context.Context, frame []byte) error {
	if err := s.m.stickyErr(); err != nil {
		return err
	}
	select {
	case <-s.credits:
	case <-s.m.ctx.Done():
		return s.sessionErr()
	case <-ctx.Done():
		return fmt.Errorf("transport: mux send: %w", ctx.Err())
	}
	tagged := make([]byte, 1+len(frame))
	tagged[0] = s.id
	copy(tagged[1:], frame)
	s.m.sendMu.Lock()
	err := s.m.inner.Send(ctx, tagged)
	s.m.sendMu.Unlock()
	if err != nil {
		s.m.poison(err)
		return err
	}
	return nil
}

// Recv implements Conn for one shard.  Consuming a frame owes the peer
// a credit; credits are returned in batches of MuxWindow/2 to halve the
// control-frame overhead while keeping the sender from ever stalling on
// a drained-but-uncredited window.
func (s *muxShard) Recv(ctx context.Context) ([]byte, error) {
	select {
	case frame := <-s.inbox:
		if err := s.replenish(ctx); err != nil {
			return nil, err
		}
		return frame, nil
	case <-s.m.ctx.Done():
		// Drain any frame that raced with the poison so callers see
		// data delivered before the failure.
		select {
		case frame := <-s.inbox:
			if err := s.replenish(ctx); err != nil {
				return nil, err
			}
			return frame, nil
		default:
		}
		return nil, s.sessionErr()
	case <-ctx.Done():
		return nil, fmt.Errorf("transport: mux recv: %w", ctx.Err())
	}
}

// replenish returns batched credits to the peer once enough are owed.
func (s *muxShard) replenish(ctx context.Context) error {
	s.mu.Lock()
	s.owed++
	if s.owed < MuxWindow/2 {
		s.mu.Unlock()
		return nil
	}
	n := s.owed
	s.owed = 0
	s.mu.Unlock()
	s.m.sendMu.Lock()
	err := s.m.inner.Send(ctx, []byte{muxControl, s.id, byte(n)})
	s.m.sendMu.Unlock()
	if err != nil {
		s.m.poison(err)
		return err
	}
	return nil
}

// sessionErr maps the mux's terminal state to a per-shard error.
func (s *muxShard) sessionErr() error {
	if err := s.m.stickyErr(); err != nil {
		return err
	}
	return ErrClosed
}

// Close on a shard is a no-op: shards share the Mux's lifetime, and the
// coordinator closes the Mux (and with it the real connection) once.
func (s *muxShard) Close() error { return nil }
