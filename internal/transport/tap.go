package transport

import (
	"context"
	"sync"
)

// Tap wraps a Conn and records a copy of every frame in each direction.
// The security tests use it to capture a party's *view* of a protocol run
// — exactly the information the paper's simulation proofs reason about —
// and then assert that the view contains nothing beyond what Statements
// 2, 4 and 6 permit.
type Tap struct {
	inner Conn

	mu   sync.Mutex
	sent [][]byte
	recv [][]byte
}

// NewTap wraps inner with frame recording.
func NewTap(inner Conn) *Tap {
	return &Tap{inner: inner}
}

// Send implements Conn.
func (t *Tap) Send(ctx context.Context, frame []byte) error {
	if err := t.inner.Send(ctx, frame); err != nil {
		return err
	}
	t.mu.Lock()
	t.sent = append(t.sent, append([]byte(nil), frame...))
	t.mu.Unlock()
	return nil
}

// Recv implements Conn.
func (t *Tap) Recv(ctx context.Context) ([]byte, error) {
	frame, err := t.inner.Recv(ctx)
	if err != nil {
		return nil, err
	}
	t.mu.Lock()
	t.recv = append(t.recv, append([]byte(nil), frame...))
	t.mu.Unlock()
	return frame, nil
}

// Close implements Conn.
func (t *Tap) Close() error { return t.inner.Close() }

// Sent returns copies of all frames sent so far, in order.
func (t *Tap) Sent() [][]byte {
	t.mu.Lock()
	defer t.mu.Unlock()
	return copyFrames(t.sent)
}

// Received returns copies of all frames received so far, in order.  This
// is the party's incoming view of the protocol.
func (t *Tap) Received() [][]byte {
	t.mu.Lock()
	defer t.mu.Unlock()
	return copyFrames(t.recv)
}

func copyFrames(in [][]byte) [][]byte {
	out := make([][]byte, len(in))
	for i, f := range in {
		out[i] = append([]byte(nil), f...)
	}
	return out
}
