package transport

import (
	"context"
	"errors"
	"sync/atomic"
)

// ErrInjected is the error produced by fault-injection wrappers.
var ErrInjected = errors.New("transport: injected fault")

// Fault wraps a Conn and injects failures for testing: it can fail the
// i-th Send or Recv, or corrupt the payload of the i-th received frame.
// Counters are 1-based; zero disables that fault.
type Fault struct {
	inner Conn

	// FailSendAt fails the n-th Send (1-based) with ErrInjected.
	FailSendAt int64
	// FailRecvAt fails the n-th Recv (1-based) with ErrInjected.
	FailRecvAt int64
	// CorruptRecvAt flips bits in the payload of the n-th received frame.
	CorruptRecvAt int64
	// TruncateRecvAt halves the payload of the n-th received frame.
	TruncateRecvAt int64

	sends atomic.Int64
	recvs atomic.Int64
}

// NewFault wraps inner; configure the Fail*/Corrupt* fields before use.
func NewFault(inner Conn) *Fault {
	return &Fault{inner: inner}
}

// Send implements Conn.
func (f *Fault) Send(ctx context.Context, frame []byte) error {
	n := f.sends.Add(1)
	if f.FailSendAt > 0 && n == f.FailSendAt {
		return ErrInjected
	}
	return f.inner.Send(ctx, frame)
}

// Recv implements Conn.
func (f *Fault) Recv(ctx context.Context) ([]byte, error) {
	n := f.recvs.Add(1)
	if f.FailRecvAt > 0 && n == f.FailRecvAt {
		return nil, ErrInjected
	}
	frame, err := f.inner.Recv(ctx)
	if err != nil {
		return nil, err
	}
	if f.CorruptRecvAt > 0 && n == f.CorruptRecvAt && len(frame) > 0 {
		frame = append([]byte(nil), frame...)
		frame[len(frame)/2] ^= 0xFF
	}
	if f.TruncateRecvAt > 0 && n == f.TruncateRecvAt {
		frame = frame[:len(frame)/2]
	}
	return frame, nil
}

// Close implements Conn.
func (f *Fault) Close() error { return f.inner.Close() }
