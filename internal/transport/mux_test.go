package transport

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"
)

// muxPair builds two Muxes over a Pipe and starts both demux loops.
func muxPair(t *testing.T, shards int) (*Mux, *Mux) {
	t.Helper()
	a, b := Pipe()
	ma, err := NewMux(a, shards)
	if err != nil {
		t.Fatal(err)
	}
	mb, err := NewMux(b, shards)
	if err != nil {
		t.Fatal(err)
	}
	ma.Start()
	mb.Start()
	t.Cleanup(func() { ma.Close(); mb.Close() })
	return ma, mb
}

func TestMuxRoutesShardsIndependently(t *testing.T) {
	const shards = 4
	ma, mb := muxPair(t, shards)
	ctx := context.Background()

	// Interleave sends across shards, then read each shard's stream and
	// check isolation + ordering.
	const perShard = 20
	for i := 0; i < perShard; i++ {
		for s := 0; s < shards; s++ {
			msg := []byte(fmt.Sprintf("shard%d-msg%d", s, i))
			if err := ma.Shard(s).Send(ctx, msg); err != nil {
				t.Fatal(err)
			}
		}
	}
	for s := 0; s < shards; s++ {
		for i := 0; i < perShard; i++ {
			got, err := mb.Shard(s).Recv(ctx)
			if err != nil {
				t.Fatal(err)
			}
			want := fmt.Sprintf("shard%d-msg%d", s, i)
			if string(got) != want {
				t.Fatalf("shard %d frame %d: got %q, want %q", s, i, got, want)
			}
		}
	}
}

func TestMuxBidirectional(t *testing.T) {
	ma, mb := muxPair(t, 2)
	ctx := context.Background()

	if err := ma.Shard(0).Send(ctx, []byte("ping")); err != nil {
		t.Fatal(err)
	}
	if f, err := mb.Shard(0).Recv(ctx); err != nil || string(f) != "ping" {
		t.Fatalf("got %q, %v", f, err)
	}
	if err := mb.Shard(1).Send(ctx, []byte("pong")); err != nil {
		t.Fatal(err)
	}
	if f, err := ma.Shard(1).Recv(ctx); err != nil || string(f) != "pong" {
		t.Fatalf("got %q, %v", f, err)
	}
}

// TestMuxFlowControl: a writer that outruns its reader must block at the
// window, not flood the shared connection, and resume once the reader
// drains.
func TestMuxFlowControl(t *testing.T) {
	ma, mb := muxPair(t, 2)
	ctx := context.Background()

	// Fill shard 0's window without anyone reading.
	for i := 0; i < MuxWindow; i++ {
		if err := ma.Shard(0).Send(ctx, []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	// The next send must block until the reader drains.
	blocked := make(chan error, 1)
	go func() { blocked <- ma.Shard(0).Send(ctx, []byte{0xAA}) }()
	select {
	case err := <-blocked:
		t.Fatalf("send beyond window returned (%v); want it to block on flow control", err)
	case <-time.After(50 * time.Millisecond):
	}

	// A sibling shard is unaffected by shard 0's stall.
	if err := ma.Shard(1).Send(ctx, []byte("free")); err != nil {
		t.Fatal(err)
	}
	if f, err := mb.Shard(1).Recv(ctx); err != nil || string(f) != "free" {
		t.Fatalf("sibling shard blocked by a full window: %q, %v", f, err)
	}

	// Draining shard 0 returns credits and unblocks the writer.
	for i := 0; i < MuxWindow; i++ {
		if _, err := mb.Shard(0).Recv(ctx); err != nil {
			t.Fatal(err)
		}
	}
	select {
	case err := <-blocked:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("send still blocked after window drained")
	}
	if f, err := mb.Shard(0).Recv(ctx); err != nil || f[0] != 0xAA {
		t.Fatalf("got %q, %v", f, err)
	}
}

// TestMuxConcurrentShards runs a writer+reader pair per shard under the
// race detector.
func TestMuxConcurrentShards(t *testing.T) {
	const shards = 8
	ma, mb := muxPair(t, shards)
	ctx := context.Background()

	const perShard = 3 * MuxWindow // forces credit returns mid-stream
	var wg sync.WaitGroup
	errs := make(chan error, 2*shards)
	for s := 0; s < shards; s++ {
		wg.Add(2)
		go func(s int) {
			defer wg.Done()
			for i := 0; i < perShard; i++ {
				if err := ma.Shard(s).Send(ctx, []byte{byte(s), byte(i)}); err != nil {
					errs <- err
					return
				}
			}
		}(s)
		go func(s int) {
			defer wg.Done()
			for i := 0; i < perShard; i++ {
				f, err := mb.Shard(s).Recv(ctx)
				if err != nil {
					errs <- err
					return
				}
				if f[0] != byte(s) || f[1] != byte(i) {
					errs <- fmt.Errorf("shard %d: frame %d got %v", s, i, f)
					return
				}
			}
		}(s)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// TestMuxPoisonIsAtomic: an error on the underlying connection fails
// every shard, including ones blocked in Send or Recv.
func TestMuxPoisonIsAtomic(t *testing.T) {
	a, b := Pipe()
	ma, err := NewMux(a, 4)
	if err != nil {
		t.Fatal(err)
	}
	ma.Start()
	defer ma.Close()
	ctx := context.Background()

	// Park a reader on every shard.
	type recvRes struct {
		shard int
		err   error
	}
	results := make(chan recvRes, 4)
	for s := 0; s < 4; s++ {
		go func(s int) {
			_, err := ma.Shard(s).Recv(ctx)
			results <- recvRes{s, err}
		}(s)
	}

	b.Close() // peer vanishes mid-session

	for i := 0; i < 4; i++ {
		select {
		case r := <-results:
			if r.err == nil {
				t.Errorf("shard %d: Recv succeeded after peer close", r.shard)
			}
		case <-time.After(2 * time.Second):
			t.Fatal("shard Recv still blocked after peer close; poison not propagated")
		}
	}
	// Sends fail fast too.
	if err := ma.Shard(0).Send(ctx, []byte("x")); err == nil {
		t.Error("Send succeeded on a poisoned mux")
	}
}

// TestMuxRejectsForeignTraffic: unknown shard tags and window overflows
// are protocol violations that poison the session.
func TestMuxRejectsForeignTraffic(t *testing.T) {
	t.Run("unknown shard", func(t *testing.T) {
		a, b := Pipe()
		ma, _ := NewMux(a, 2)
		ma.Start()
		defer ma.Close()
		if err := b.Send(context.Background(), []byte{7, 'x'}); err != nil {
			t.Fatal(err)
		}
		_, err := ma.Shard(0).Recv(context.Background())
		if !errors.Is(err, ErrBadShardTag) {
			t.Errorf("err = %v, want ErrBadShardTag", err)
		}
	})
	t.Run("window overflow", func(t *testing.T) {
		a, b := Pipe()
		ma, _ := NewMux(a, 2)
		ma.Start()
		defer ma.Close()
		// A raw peer ignores flow control and floods shard 0.
		ctx := context.Background()
		var sendErr error
		for i := 0; i <= MuxWindow; i++ {
			if sendErr = b.Send(ctx, []byte{0, byte(i)}); sendErr != nil {
				break // pipe backpressure after poison is fine
			}
		}
		// Without draining, frame MuxWindow+1 overflows the inbox.
		deadline := time.Now().Add(2 * time.Second)
		for time.Now().Before(deadline) {
			if err := ma.stickyErr(); errors.Is(err, ErrMuxOverflow) {
				return
			}
			time.Sleep(time.Millisecond)
		}
		t.Errorf("mux not poisoned with ErrMuxOverflow (sticky err: %v)", ma.stickyErr())
	})
}

func TestMuxShardCountValidation(t *testing.T) {
	a, _ := Pipe()
	defer a.Close()
	for _, k := range []int{-1, 0, 1, MaxShards + 1, 255} {
		if _, err := NewMux(a, k); err == nil {
			t.Errorf("NewMux(%d) succeeded, want range error", k)
		}
	}
	if m, err := NewMux(a, MaxShards); err != nil {
		t.Errorf("NewMux(MaxShards): %v", err)
	} else {
		m.Close()
	}
}

// TestMuxCloseUnblocksAndStopsDemux: Close releases parked shard
// operations and the demux goroutine exits (checked via Close's join).
func TestMuxCloseUnblocksAndStopsDemux(t *testing.T) {
	a, b := Pipe()
	defer b.Close()
	ma, _ := NewMux(a, 2)
	ma.Start()

	recvErr := make(chan error, 1)
	go func() {
		_, err := ma.Shard(1).Recv(context.Background())
		recvErr <- err
	}()
	time.Sleep(10 * time.Millisecond)

	if err := ma.Close(); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-recvErr:
		if err == nil {
			t.Error("Recv succeeded after Close")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Recv still blocked after Close")
	}
	if err := ma.Close(); err != nil {
		t.Fatalf("double close: %v", err)
	}
}
