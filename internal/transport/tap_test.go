package transport

import (
	"bytes"
	"context"
	"errors"
	"net"
	"testing"
	"time"
)

func TestTapRecordsBothDirections(t *testing.T) {
	a, b := Pipe()
	defer a.Close()
	tap := NewTap(a)
	ctx := context.Background()

	if err := tap.Send(ctx, []byte("out-1")); err != nil {
		t.Fatal(err)
	}
	if err := tap.Send(ctx, []byte("out-2")); err != nil {
		t.Fatal(err)
	}
	if err := b.Send(ctx, []byte("in-1")); err != nil {
		t.Fatal(err)
	}
	if _, err := tap.Recv(ctx); err != nil {
		t.Fatal(err)
	}

	sent := tap.Sent()
	if len(sent) != 2 || string(sent[0]) != "out-1" || string(sent[1]) != "out-2" {
		t.Errorf("Sent() = %q", sent)
	}
	recv := tap.Received()
	if len(recv) != 1 || string(recv[0]) != "in-1" {
		t.Errorf("Received() = %q", recv)
	}
}

func TestTapReturnsCopies(t *testing.T) {
	a, b := Pipe()
	defer a.Close()
	tap := NewTap(a)
	ctx := context.Background()
	_ = tap.Send(ctx, []byte("frame"))
	_ = b // receiving side untouched

	s1 := tap.Sent()
	s1[0][0] = 'X'
	s2 := tap.Sent()
	if !bytes.Equal(s2[0], []byte("frame")) {
		t.Error("Sent() exposed internal storage")
	}
}

func TestTapDoesNotRecordFailures(t *testing.T) {
	a, _ := Pipe()
	a.Close()
	tap := NewTap(a)
	ctx := context.Background()
	if err := tap.Send(ctx, []byte("x")); !errors.Is(err, ErrClosed) {
		t.Fatalf("send: %v", err)
	}
	if _, err := tap.Recv(ctx); !errors.Is(err, ErrClosed) {
		t.Fatalf("recv: %v", err)
	}
	if len(tap.Sent()) != 0 || len(tap.Received()) != 0 {
		t.Error("failed operations were recorded")
	}
}

func TestTapClose(t *testing.T) {
	a, b := Pipe()
	tap := NewTap(a)
	if err := tap.Close(); err != nil {
		t.Fatal(err)
	}
	if err := b.Send(context.Background(), []byte("x")); !errors.Is(err, ErrClosed) {
		t.Errorf("pipe not closed through tap: %v", err)
	}
}

func TestMeterClose(t *testing.T) {
	a, b := Pipe()
	m := NewMeter(a)
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}
	if err := b.Send(context.Background(), []byte("x")); !errors.Is(err, ErrClosed) {
		t.Errorf("pipe not closed through meter: %v", err)
	}
}

func TestTCPDoubleCloseAndClosedOps(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		c, err := ln.Accept()
		if err == nil {
			c.Close()
		}
	}()
	conn, err := Dial(context.Background(), "tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	if err := conn.Close(); err != nil {
		t.Fatal(err)
	}
	if err := conn.Close(); err != nil {
		t.Errorf("second close: %v", err)
	}
	ctx := context.Background()
	if err := conn.Send(ctx, []byte("x")); !errors.Is(err, ErrClosed) {
		t.Errorf("send after close: %v", err)
	}
	if _, err := conn.Recv(ctx); !errors.Is(err, ErrClosed) {
		t.Errorf("recv after close: %v", err)
	}
}

func TestDialFailure(t *testing.T) {
	// A port that is almost certainly closed.
	if _, err := Dial(context.Background(), "tcp", "127.0.0.1:1"); err == nil {
		t.Error("dial to closed port succeeded")
	}
}

func TestTCPSendWithDeadline(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	accepted := make(chan net.Conn, 1)
	go func() {
		c, err := ln.Accept()
		if err == nil {
			accepted <- c
		}
	}()
	conn, err := Dial(context.Background(), "tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
	defer cancel()
	if err := conn.Send(ctx, []byte("with deadline")); err != nil {
		t.Fatalf("send with deadline: %v", err)
	}
	server := NewTCP(<-accepted)
	defer server.Close()
	got, err := server.Recv(ctx)
	if err != nil || string(got) != "with deadline" {
		t.Fatalf("recv: %q, %v", got, err)
	}
}
