package transport

import (
	"context"
	"testing"
	"time"
)

// sendAll pushes n frames of the given wire size through l and waits for
// them all to land on sink, returning the wall time until the last one
// arrives.
func sendAll(t *testing.T, l *Latency, sink Conn, n, wireBytes int) time.Duration {
	t.Helper()
	frame := make([]byte, wireBytes-FrameOverhead)
	start := time.Now()
	for i := 0; i < n; i++ {
		if err := l.Send(context.Background(), frame); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < n; i++ {
		if _, err := sink.Recv(context.Background()); err != nil {
			t.Fatal(err)
		}
	}
	return time.Since(start)
}

// TestLatencySharedLinkSerializes is the regression test for the shared
// link clock: two concurrent writers through one modelled link must
// split its bandwidth, finishing in ~2× the time one writer needs for
// the same per-writer byte count.  Before Link was extracted, each
// Latency kept a private serialization clock, so each writer saw the
// full line rate and sharded runs over-reported their speedup.
func TestLatencySharedLinkSerializes(t *testing.T) {
	const (
		bps       = 1e6 // 1 Mbit/s
		frames    = 4
		wireBytes = 5000 // 40ms serialization per frame at 1 Mbit/s
	)

	// Baseline: one writer, alone on the line.
	a1, b1 := Pipe()
	solo := NewLatency(a1, 0).WithBandwidth(bps)
	defer solo.Close()
	soloTime := sendAll(t, solo, b1, frames, wireBytes)

	// Two writers contending for one shared Link, each sending the
	// same per-writer load as the baseline.
	link := NewLink(bps)
	a2, b2 := Pipe()
	a3, b3 := Pipe()
	w1 := NewLatency(a2, 0).WithLink(link)
	w2 := NewLatency(a3, 0).WithLink(link)
	defer w1.Close()
	defer w2.Close()

	type res struct{ d time.Duration }
	done := make(chan res, 2)
	start := time.Now()
	go func() { done <- res{sendAll(t, w1, b2, frames, wireBytes)} }()
	go func() { done <- res{sendAll(t, w2, b3, frames, wireBytes)} }()
	<-done
	<-done
	sharedTime := time.Since(start)

	// 2 writers × 4 frames × 40ms = 320ms of line time vs 160ms solo.
	// Allow generous slop for scheduling, but the buggy behaviour
	// (each writer at full rate → ~soloTime) must fail clearly.
	if sharedTime < soloTime*3/2 {
		t.Errorf("2 writers on a shared link finished in %v vs %v solo; link bandwidth is not shared", sharedTime, soloTime)
	}
}

// TestLatencyPrivateLinksDoNotContend pins the opposite property: two
// writers with *separate* links (e.g. the two directions of a
// full-duplex line) do not queue behind each other.
func TestLatencyPrivateLinksDoNotContend(t *testing.T) {
	const (
		bps       = 1e6
		frames    = 4
		wireBytes = 5000
	)
	a1, b1 := Pipe()
	a2, b2 := Pipe()
	w1 := NewLatency(a1, 0).WithBandwidth(bps)
	w2 := NewLatency(a2, 0).WithBandwidth(bps)
	defer w1.Close()
	defer w2.Close()

	done := make(chan struct{}, 2)
	start := time.Now()
	go func() { sendAll(t, w1, b1, frames, wireBytes); done <- struct{}{} }()
	go func() { sendAll(t, w2, b2, frames, wireBytes); done <- struct{}{} }()
	<-done
	<-done
	elapsed := time.Since(start)

	// Each direction needs 160ms of its own line; with private links the
	// two overlap, so well under the 320ms a shared line would take.
	if elapsed > 280*time.Millisecond {
		t.Errorf("2 writers on private links took %v, want ≈160ms (no contention)", elapsed)
	}
}
