package transport

import (
	"context"
	"errors"
	"testing"
	"time"
)

func TestLatencyDelaysDelivery(t *testing.T) {
	a, b := Pipe()
	la := NewLatency(a, 40*time.Millisecond) // one-way 20ms
	defer la.Close()

	start := time.Now()
	if err := la.Send(context.Background(), []byte("ping")); err != nil {
		t.Fatal(err)
	}
	sendDur := time.Since(start)
	if sendDur > 10*time.Millisecond {
		t.Errorf("Send blocked %v; must return immediately", sendDur)
	}
	if _, err := b.Recv(context.Background()); err != nil {
		t.Fatal(err)
	}
	elapsed := time.Since(start)
	if elapsed < 15*time.Millisecond {
		t.Errorf("frame arrived after %v, want ≥ ~20ms one-way delay", elapsed)
	}
}

func TestLatencyPipelinesBursts(t *testing.T) {
	// A burst of n frames on an infinite-bandwidth link must arrive
	// ~one propagation delay after the burst, not n delays: propagation
	// of distinct frames overlaps.
	a, b := Pipe()
	const oneWay = 30 * time.Millisecond
	la := NewLatency(a, 2*oneWay)
	defer la.Close()

	const n = 8
	start := time.Now()
	for i := 0; i < n; i++ {
		if err := la.Send(context.Background(), []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < n; i++ {
		f, err := b.Recv(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		if f[0] != byte(i) {
			t.Fatalf("frame %d out of order: got %d", i, f[0])
		}
	}
	elapsed := time.Since(start)
	if elapsed >= time.Duration(n)*oneWay {
		t.Errorf("burst of %d frames took %v: propagation is serialized, not pipelined", n, elapsed)
	}
}

func TestLatencyBandwidthSerializes(t *testing.T) {
	// At 1 Mbit/s a 5000-byte frame serializes for ~40ms; three frames
	// queue behind one another for ~120ms before the last arrives.
	a, b := Pipe()
	la := NewLatency(a, 0).WithBandwidth(1e6)
	defer la.Close()

	frame := make([]byte, 5000-FrameOverhead)
	start := time.Now()
	for i := 0; i < 3; i++ {
		if err := la.Send(context.Background(), frame); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 3; i++ {
		if _, err := b.Recv(context.Background()); err != nil {
			t.Fatal(err)
		}
	}
	elapsed := time.Since(start)
	if elapsed < 100*time.Millisecond {
		t.Errorf("3×5000B at 1Mbit/s done in %v, want ≥ ~120ms of serialization", elapsed)
	}
}

func TestLatencyRecvPassthrough(t *testing.T) {
	a, b := Pipe()
	la := NewLatency(a, 50*time.Millisecond)
	defer la.Close()

	if err := b.Send(context.Background(), []byte("reply")); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	f, err := la.Recv(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if string(f) != "reply" {
		t.Errorf("got %q", f)
	}
	if d := time.Since(start); d > 20*time.Millisecond {
		t.Errorf("Recv took %v; receive direction must be unshaped", d)
	}
}

func TestLatencyClose(t *testing.T) {
	a, _ := Pipe()
	la := NewLatency(a, time.Millisecond)
	if err := la.Close(); err != nil {
		t.Fatal(err)
	}
	if err := la.Close(); err != nil {
		t.Fatalf("double close: %v", err)
	}
	if err := la.Send(context.Background(), []byte("x")); !errors.Is(err, ErrClosed) {
		t.Errorf("send after close: %v, want ErrClosed", err)
	}
}
