// Package garble implements Yao-style garbled circuits with
// point-and-permute, the "computing the circuit" half of the Appendix A
// baseline.
//
// The garbler assigns each wire two random 128-bit labels (one per truth
// value) and a random permute bit.  Each gate becomes a table of four
// rows: row (p_a, p_b) holds the output label (plus its permute bit)
// encrypted under the two input labels with that permutation, where the
// encryption is a SHA-256-based key-derivation XOR — the "pseudorandom
// function" whose per-gate double evaluation is the cost C_r of the
// paper's analysis ("for each gate ... evaluates 2 pseudorandom
// functions": we apply the PRF once per input label; two inputs → two
// evaluations, matching the paper's accounting).
//
// The evaluator walks the gates holding exactly one label per wire and
// decrypts exactly one row per gate; output decoding maps final labels
// to cleartext bits.
package garble

import (
	"crypto/rand"
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"minshare/internal/circuit"
)

// LabelLen is the wire-label length in bytes (the paper's k0 = 64 bits
// refers to 2001-era keys; we use the modern 128 bits and the cost model
// keeps k0 symbolic).
const LabelLen = 16

// Label is one wire label.
type Label [LabelLen]byte

// WirePair is the two labels of a wire plus its permute bit.
type WirePair struct {
	False, True Label
	// Permute is the permute (color) bit assigned to the FALSE label;
	// the TRUE label carries the complement.
	Permute bool
}

// labelFor returns the label and color for a truth value.
func (w WirePair) labelFor(v bool) (Label, bool) {
	if v {
		return w.True, !w.Permute
	}
	return w.False, w.Permute
}

// Row is one encrypted gate-table row: an output label plus a flag byte,
// XOR-masked.
type Row [LabelLen + 1]byte

// Table is a garbled gate: four rows indexed by the input colors
// (2*colorA + colorB); INV gates use only two rows (indexed by colorA).
type Table struct {
	Rows [4]Row
}

// Garbled is a garbled circuit ready for evaluation: the circuit shape,
// per-gate tables, and the output decoding (the permute bit of each
// output wire's FALSE label).
type Garbled struct {
	Circuit *circuit.Circuit
	Tables  []Table
	// OutputPermutes holds, for each output wire, the color carried by
	// its FALSE label, letting the evaluator decode colors to bits.
	OutputPermutes []bool

	// wires is the garbler's secret: every wire's label pair.  It stays
	// on the garbler side; Evaluate never touches it.
	wires []WirePair
}

// InputLabels selects the labels encoding the garbler's own input bits —
// what S "hardwires" into the circuit and ships alongside the tables.
func (g *Garbled) InputLabels(bits []bool) ([]Label, error) {
	if len(bits) != len(g.Circuit.GarblerInputs) {
		return nil, fmt.Errorf("garble: %d garbler bits, want %d", len(bits), len(g.Circuit.GarblerInputs))
	}
	out := make([]Label, len(bits))
	for i, w := range g.Circuit.GarblerInputs {
		l, _ := g.wires[w].labelFor(bits[i])
		out[i] = l
	}
	return out, nil
}

// EvaluatorLabelPair returns both labels of the i-th evaluator input
// wire — the two messages of the oblivious transfer for that bit.
func (g *Garbled) EvaluatorLabelPair(i int) (falseLabel, trueLabel Label, err error) {
	if i < 0 || i >= len(g.Circuit.EvaluatorInputs) {
		return Label{}, Label{}, fmt.Errorf("garble: evaluator input %d out of range", i)
	}
	w := g.Circuit.EvaluatorInputs[i]
	return g.wires[w].False, g.wires[w].True, nil
}

// prf derives a one-time pad for a gate row from the input labels.  Two
// SHA-256 evaluations per gate evaluation (one per input label) is the
// C_r accounting of Appendix A.
func prf(gateID int, a, b *Label) [LabelLen + 1]byte {
	h := sha256.New()
	var id [8]byte
	binary.BigEndian.PutUint64(id[:], uint64(gateID))
	h.Write(id[:])
	if a != nil {
		h.Write(a[:])
	}
	if b != nil {
		// Second PRF evaluation, domain-separated.
		h.Write([]byte{0xB})
		h.Write(b[:])
	}
	sum := h.Sum(nil)
	var out [LabelLen + 1]byte
	copy(out[:], sum[:LabelLen+1])
	return out
}

func xorRow(dst *Row, pad [LabelLen + 1]byte) {
	for i := range dst {
		dst[i] ^= pad[i]
	}
}

// Garble garbles a circuit.  The randomness source defaults to
// crypto/rand.Reader when nil.
func Garble(c *circuit.Circuit, r io.Reader) (*Garbled, error) {
	if err := c.Validate(); err != nil {
		return nil, fmt.Errorf("garble: %w", err)
	}
	if r == nil {
		r = rand.Reader
	}
	wires := make([]WirePair, c.NumWires)
	randWire := func() (WirePair, error) {
		var wp WirePair
		var buf [2*LabelLen + 1]byte
		if _, err := io.ReadFull(r, buf[:]); err != nil {
			return wp, fmt.Errorf("garble: sampling labels: %w", err)
		}
		copy(wp.False[:], buf[:LabelLen])
		copy(wp.True[:], buf[LabelLen:2*LabelLen])
		wp.Permute = buf[2*LabelLen]&1 == 1
		return wp, nil
	}
	// Input wires.
	for _, w := range c.GarblerInputs {
		wp, err := randWire()
		if err != nil {
			return nil, err
		}
		wires[w] = wp
	}
	for _, w := range c.EvaluatorInputs {
		wp, err := randWire()
		if err != nil {
			return nil, err
		}
		wires[w] = wp
	}

	truth := func(t circuit.GateType, a, b bool) bool {
		switch t {
		case circuit.XOR:
			return a != b
		case circuit.AND:
			return a && b
		case circuit.OR:
			return a || b
		case circuit.INV:
			return !a
		}
		panic("garble: unknown gate type")
	}

	tables := make([]Table, len(c.Gates))
	for gi, g := range c.Gates {
		wp, err := randWire()
		if err != nil {
			return nil, err
		}
		wires[g.Out] = wp

		if g.Type == circuit.INV {
			in := wires[g.In0]
			for _, av := range []bool{false, true} {
				aLab, aCol := in.labelFor(av)
				outLab, outCol := wp.labelFor(truth(g.Type, av, false))
				var row Row
				copy(row[:LabelLen], outLab[:])
				if outCol {
					row[LabelLen] = 1
				}
				xorRow(&row, prf(gi, &aLab, nil))
				idx := 0
				if aCol {
					idx = 1
				}
				tables[gi].Rows[idx] = row
			}
			continue
		}

		inA := wires[g.In0]
		inB := wires[g.In1]
		for _, av := range []bool{false, true} {
			for _, bv := range []bool{false, true} {
				aLab, aCol := inA.labelFor(av)
				bLab, bCol := inB.labelFor(bv)
				outLab, outCol := wp.labelFor(truth(g.Type, av, bv))
				var row Row
				copy(row[:LabelLen], outLab[:])
				if outCol {
					row[LabelLen] = 1
				}
				xorRow(&row, prf(gi, &aLab, &bLab))
				idx := 0
				if aCol {
					idx |= 2
				}
				if bCol {
					idx |= 1
				}
				tables[gi].Rows[idx] = row
			}
		}
	}

	outPerms := make([]bool, len(c.Outputs))
	for i, w := range c.Outputs {
		outPerms[i] = wires[w].Permute
	}
	return &Garbled{
		Circuit:        c,
		Tables:         tables,
		OutputPermutes: outPerms,
		wires:          wires,
	}, nil
}

// evalLabel is a wire label plus its color as seen by the evaluator.
type evalLabel struct {
	lab Label
	col bool
}

// Evaluate runs the garbled circuit given one label per input wire (the
// garbler's labels arrive in garbler-input order, the evaluator's own —
// obtained via OT — in evaluator-input order) and returns the cleartext
// output bits.  The garbler's secret label pairs are NOT used: only the
// public tables and decoding information.
func Evaluate(c *circuit.Circuit, tables []Table, outputPermutes []bool,
	garblerLabels, evaluatorLabels []LabeledInput) ([]bool, error) {
	if len(tables) != len(c.Gates) {
		return nil, fmt.Errorf("garble: %d tables for %d gates", len(tables), len(c.Gates))
	}
	if len(garblerLabels) != len(c.GarblerInputs) {
		return nil, fmt.Errorf("garble: %d garbler labels, want %d", len(garblerLabels), len(c.GarblerInputs))
	}
	if len(evaluatorLabels) != len(c.EvaluatorInputs) {
		return nil, fmt.Errorf("garble: %d evaluator labels, want %d", len(evaluatorLabels), len(c.EvaluatorInputs))
	}
	if len(outputPermutes) != len(c.Outputs) {
		return nil, errors.New("garble: output decoding length mismatch")
	}

	wires := make([]evalLabel, c.NumWires)
	set := make([]bool, c.NumWires)
	for i, w := range c.GarblerInputs {
		wires[w] = evalLabel{garblerLabels[i].Label, garblerLabels[i].Color}
		set[w] = true
	}
	for i, w := range c.EvaluatorInputs {
		wires[w] = evalLabel{evaluatorLabels[i].Label, evaluatorLabels[i].Color}
		set[w] = true
	}
	for gi, g := range c.Gates {
		if !set[g.In0] || (g.Type != circuit.INV && !set[g.In1]) {
			return nil, fmt.Errorf("garble: gate %d input not ready", gi)
		}
		a := wires[g.In0]
		var row Row
		var pad [LabelLen + 1]byte
		if g.Type == circuit.INV {
			idx := 0
			if a.col {
				idx = 1
			}
			row = tables[gi].Rows[idx]
			pad = prf(gi, &a.lab, nil)
		} else {
			b := wires[g.In1]
			idx := 0
			if a.col {
				idx |= 2
			}
			if b.col {
				idx |= 1
			}
			row = tables[gi].Rows[idx]
			pad = prf(gi, &a.lab, &b.lab)
		}
		xorRow(&row, pad)
		var out evalLabel
		copy(out.lab[:], row[:LabelLen])
		out.col = row[LabelLen] == 1
		wires[g.Out] = out
		set[g.Out] = true
	}

	bits := make([]bool, len(c.Outputs))
	for i, w := range c.Outputs {
		// The FALSE label carries color outputPermutes[i]; seeing the
		// complement means TRUE.
		bits[i] = wires[w].col != outputPermutes[i]
	}
	return bits, nil
}

// LabeledInput is a label with its point-and-permute color — the unit
// the evaluator actually receives for each input wire.
type LabeledInput struct {
	Label Label
	Color bool
}

// GarblerInputLabeled packages the garbler's input bits as LabeledInputs
// for transmission.
func (g *Garbled) GarblerInputLabeled(bits []bool) ([]LabeledInput, error) {
	if len(bits) != len(g.Circuit.GarblerInputs) {
		return nil, fmt.Errorf("garble: %d garbler bits, want %d", len(bits), len(g.Circuit.GarblerInputs))
	}
	out := make([]LabeledInput, len(bits))
	for i, w := range g.Circuit.GarblerInputs {
		lab, col := g.wires[w].labelFor(bits[i])
		out[i] = LabeledInput{Label: lab, Color: col}
	}
	return out, nil
}

// EvaluatorInputLabeled returns the two LabeledInputs (false, true) for
// the i-th evaluator input — the OT message pair.
func (g *Garbled) EvaluatorInputLabeled(i int) (f, tr LabeledInput, err error) {
	if i < 0 || i >= len(g.Circuit.EvaluatorInputs) {
		return f, tr, fmt.Errorf("garble: evaluator input %d out of range", i)
	}
	w := g.Circuit.EvaluatorInputs[i]
	fl, fc := g.wires[w].labelFor(false)
	tl, tc := g.wires[w].labelFor(true)
	return LabeledInput{fl, fc}, LabeledInput{tl, tc}, nil
}

// TableBytes returns the size in bytes of the garbled tables — the
// "4k0 per gate" communication term of Appendix A (our rows carry an
// extra color byte; the cost model stays symbolic in k0).
func (g *Garbled) TableBytes() int {
	return len(g.Tables) * 4 * (LabelLen + 1)
}
