package garble

import (
	"math/rand"
	"testing"

	"minshare/internal/circuit"
)

// runGarbled garbles c and evaluates it on the given plaintext inputs,
// simulating the label handoff (garbler labels direct, evaluator labels
// as if via OT).
func runGarbled(t *testing.T, c *circuit.Circuit, gBits, eBits []bool, seed int64) []bool {
	t.Helper()
	g, err := Garble(c, rand.New(rand.NewSource(seed)))
	if err != nil {
		t.Fatal(err)
	}
	gl, err := g.GarblerInputLabeled(gBits)
	if err != nil {
		t.Fatal(err)
	}
	el := make([]LabeledInput, len(eBits))
	for i, b := range eBits {
		f, tr, err := g.EvaluatorInputLabeled(i)
		if err != nil {
			t.Fatal(err)
		}
		if b {
			el[i] = tr
		} else {
			el[i] = f
		}
	}
	out, err := Evaluate(c.Copy(), g.Tables, g.OutputPermutes, gl, el)
	if err != nil {
		t.Fatal(err)
	}
	return out
}

func TestGarbledGatesExhaustive(t *testing.T) {
	b := circuit.NewBuilder()
	g := b.GarblerInputs(1)
	e := b.EvaluatorInputs(1)
	b.Output(
		b.XOR(g[0], e[0]),
		b.AND(g[0], e[0]),
		b.OR(g[0], e[0]),
		b.NOT(g[0]),
	)
	c := b.MustBuild()

	for seed := int64(0); seed < 3; seed++ {
		for _, gv := range []bool{false, true} {
			for _, ev := range []bool{false, true} {
				got := runGarbled(t, c, []bool{gv}, []bool{ev}, seed)
				want, _ := c.Eval([]bool{gv}, []bool{ev})
				for i := range want {
					if got[i] != want[i] {
						t.Fatalf("seed %d g=%v e=%v: out[%d]=%v want %v",
							seed, gv, ev, i, got[i], want[i])
					}
				}
			}
		}
	}
}

func TestGarbledEqualityCircuit(t *testing.T) {
	const w = 5
	b := circuit.NewBuilder()
	x := b.GarblerInputs(w)
	y := b.EvaluatorInputs(w)
	b.Output(b.Equal(x, y))
	c := b.MustBuild()

	for _, tc := range []struct{ x, y uint64 }{
		{0, 0}, {31, 31}, {5, 5}, {5, 6}, {0, 31}, {16, 8},
	} {
		got := runGarbled(t, c, circuit.UintToBits(tc.x, w), circuit.UintToBits(tc.y, w), 1)
		if got[0] != (tc.x == tc.y) {
			t.Errorf("Equal(%d,%d) garbled = %v", tc.x, tc.y, got[0])
		}
	}
}

func TestGarbledBruteForceIntersection(t *testing.T) {
	const w, nS, nR = 4, 3, 3
	c := circuit.BruteForceIntersection(w, nS, nR)
	sVals := []uint64{3, 9, 14}
	rVals := []uint64{9, 2, 3}
	got := runGarbled(t, c,
		circuit.FlattenValues(sVals, w),
		circuit.FlattenValues(rVals, w), 7)
	want := []bool{true, false, true}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("membership[%d] = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestGarbledMatchesPlaintextProperty(t *testing.T) {
	// Random small circuits via the brute-force builder with random
	// inputs: garbled evaluation must equal plaintext evaluation.
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 10; trial++ {
		w := 2 + rng.Intn(4)
		nS := 1 + rng.Intn(3)
		nR := 1 + rng.Intn(3)
		c := circuit.BruteForceIntersection(w, nS, nR)
		sVals := make([]uint64, nS)
		rVals := make([]uint64, nR)
		for i := range sVals {
			sVals[i] = uint64(rng.Intn(1 << w))
		}
		for i := range rVals {
			rVals[i] = uint64(rng.Intn(1 << w))
		}
		gBits := circuit.FlattenValues(sVals, w)
		eBits := circuit.FlattenValues(rVals, w)
		got := runGarbled(t, c, gBits, eBits, int64(trial))
		want, err := c.Eval(gBits, eBits)
		if err != nil {
			t.Fatal(err)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("trial %d: output %d mismatch", trial, i)
			}
		}
	}
}

func TestEvaluateRejectsBadShapes(t *testing.T) {
	b := circuit.NewBuilder()
	g := b.GarblerInputs(1)
	e := b.EvaluatorInputs(1)
	b.Output(b.AND(g[0], e[0]))
	c := b.MustBuild()
	gc, err := Garble(c, rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	gl, _ := gc.GarblerInputLabeled([]bool{true})
	f, _, _ := gc.EvaluatorInputLabeled(0)

	if _, err := Evaluate(c, gc.Tables[:0], gc.OutputPermutes, gl, []LabeledInput{f}); err == nil {
		t.Error("missing tables accepted")
	}
	if _, err := Evaluate(c, gc.Tables, gc.OutputPermutes, nil, []LabeledInput{f}); err == nil {
		t.Error("missing garbler labels accepted")
	}
	if _, err := Evaluate(c, gc.Tables, gc.OutputPermutes, gl, nil); err == nil {
		t.Error("missing evaluator labels accepted")
	}
	if _, err := Evaluate(c, gc.Tables, nil, gl, []LabeledInput{f}); err == nil {
		t.Error("missing decoding accepted")
	}
}

func TestGarbleValidatesCircuit(t *testing.T) {
	bad := &circuit.Circuit{}
	if _, err := Garble(bad, nil); err == nil {
		t.Error("invalid circuit garbled")
	}
}

func TestInputLabelArity(t *testing.T) {
	b := circuit.NewBuilder()
	g := b.GarblerInputs(2)
	b.Output(b.AND(g[0], g[1]))
	c := b.MustBuild()
	gc, err := Garble(c, rand.New(rand.NewSource(2)))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := gc.InputLabels([]bool{true}); err == nil {
		t.Error("wrong arity accepted by InputLabels")
	}
	if _, err := gc.GarblerInputLabeled([]bool{true}); err == nil {
		t.Error("wrong arity accepted by GarblerInputLabeled")
	}
	if _, _, err := gc.EvaluatorLabelPair(0); err == nil {
		t.Error("label pair for nonexistent evaluator input")
	}
	if _, _, err := gc.EvaluatorInputLabeled(5); err == nil {
		t.Error("out-of-range evaluator input accepted")
	}
}

func TestWrongLabelProducesGarbageNotPanic(t *testing.T) {
	// Feeding a random label must not panic; the output is garbage (or
	// an error), never a crash.
	b := circuit.NewBuilder()
	g := b.GarblerInputs(1)
	e := b.EvaluatorInputs(1)
	b.Output(b.AND(g[0], e[0]))
	c := b.MustBuild()
	gc, err := Garble(c, rand.New(rand.NewSource(3)))
	if err != nil {
		t.Fatal(err)
	}
	gl, _ := gc.GarblerInputLabeled([]bool{true})
	var junk LabeledInput
	for i := range junk.Label {
		junk.Label[i] = 0xAA
	}
	if _, err := Evaluate(c, gc.Tables, gc.OutputPermutes, gl, []LabeledInput{junk}); err != nil {
		t.Logf("evaluation with junk label errored cleanly: %v", err)
	}
}

func TestTableBytes(t *testing.T) {
	b := circuit.NewBuilder()
	g := b.GarblerInputs(2)
	b.Output(b.AND(g[0], g[1]))
	c := b.MustBuild()
	gc, err := Garble(c, rand.New(rand.NewSource(4)))
	if err != nil {
		t.Fatal(err)
	}
	if gc.TableBytes() != 1*4*(LabelLen+1) {
		t.Errorf("TableBytes = %d", gc.TableBytes())
	}
}

// TestGarbledSortedIntersectionSize runs the sort-based counting circuit
// (Appendix A's "ordered array" construction, built for real in package
// circuit) through garbled evaluation end to end.
func TestGarbledSortedIntersectionSize(t *testing.T) {
	const w = 5
	sVals := []uint64{3, 9, 14, 20}
	rVals := []uint64{9, 20, 7}
	c := circuit.SortedIntersectionSize(w, len(sVals), len(rVals))
	gBits, err := circuit.SortedInputBits(sVals, w, true)
	if err != nil {
		t.Fatal(err)
	}
	eBits, err := circuit.SortedInputBits(rVals, w, false)
	if err != nil {
		t.Fatal(err)
	}
	out := runGarbled(t, c, gBits, eBits, 11)
	var count uint64
	for i := len(out) - 1; i >= 0; i-- {
		count <<= 1
		if out[i] {
			count |= 1
		}
	}
	if count != 2 { // 9 and 20 are shared
		t.Errorf("garbled sorted intersection size = %d, want 2", count)
	}
}
