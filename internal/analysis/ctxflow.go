package analysis

import (
	"go/ast"
	"go/types"
	"regexp"
)

// CtxFlow reports broken context propagation.
//
// Every protocol phase must remain cancellable end to end: the PR 3
// session-lifecycle work (DESIGN §9) depends on ctx reaching every
// blocking callee, and a single context.Background() in the chain
// reopens the stalled-peer resource pin the paper's deployment story
// cannot tolerate.  Two rules:
//
//  1. everywhere: a function that receives a context.Context must pass
//     a context to every callee that accepts one — handing a callee
//     context.Background() or context.TODO() while a ctx is in scope
//     drops cancellation.  Intentional detachment must go through
//     context.WithoutCancel(ctx), which keeps values and stays
//     auditable;
//  2. in the protocol packages (internal/party, internal/core,
//     internal/transport): every `go func` literal must reference a
//     context or a done channel (chan struct{}), so no protocol
//     goroutine can outlive its session.
var CtxFlow = &Analyzer{
	Name: "ctxflow",
	Doc: "ctx must flow to every context-accepting callee; protocol " +
		"goroutines must observe cancellation",
	Run: runCtxFlow,
}

// ctxGoroutinePkgs matches the import paths whose goroutines must
// observe cancellation (rule 2).
var ctxGoroutinePkgs = regexp.MustCompile(`(^|/)internal/(party|core|transport)($|/)`)

func runCtxFlow(pass *Pass) {
	restricted := ctxGoroutinePkgs.MatchString(pass.Pkg.Path)
	for _, f := range pass.Pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			var sig *types.Signature
			if obj, ok := pass.Pkg.Info.Defs[fd.Name].(*types.Func); ok {
				sig, _ = obj.Type().(*types.Signature)
			}
			ctxAvail := sig != nil && contextParam(sig) >= 0
			walkCtxFlow(pass, fd.Body, ctxAvail, restricted)
		}
	}
}

// walkCtxFlow traverses one function body.  ctxAvail records whether
// the enclosing function (or a lexical ancestor — closures capture)
// receives a context.
func walkCtxFlow(pass *Pass, body *ast.BlockStmt, ctxAvail, restricted bool) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			lit := ctxAvail
			if sig, ok := types.Unalias(pass.Pkg.Info.TypeOf(n.Type)).(*types.Signature); ok {
				lit = lit || contextParam(sig) >= 0
			}
			walkCtxFlow(pass, n.Body, lit, restricted)
			return false // handled recursively
		case *ast.GoStmt:
			if restricted {
				if lit, ok := n.Call.Fun.(*ast.FuncLit); ok && !observesCancellation(pass, lit) {
					pass.Reportf(n.Pos(),
						"goroutine does not observe cancellation — reference a ctx or a done channel so a stalled peer cannot pin it")
				}
			}
			return true
		case *ast.CallExpr:
			if ctxAvail {
				checkCtxArg(pass, n)
			}
			return true
		}
		return true
	})
}

// checkCtxArg flags a context-accepting call whose context argument is
// context.Background() or context.TODO() while the caller has a ctx.
func checkCtxArg(pass *Pass, call *ast.CallExpr) {
	f := calleeFunc(pass.Pkg, call)
	if f == nil {
		return
	}
	sig, ok := f.Type().(*types.Signature)
	if !ok {
		return
	}
	idx := contextParam(sig)
	if idx < 0 || idx >= len(call.Args) {
		return
	}
	arg, ok := ast.Unparen(call.Args[idx]).(*ast.CallExpr)
	if !ok {
		return
	}
	af := calleeFunc(pass.Pkg, arg)
	if af == nil || funcPkgPath(af) != "context" {
		return
	}
	if name := af.Name(); name == "Background" || name == "TODO" {
		pass.Reportf(call.Args[idx].Pos(),
			"context.%s() passed to %s while the caller receives a ctx — pass it on, or detach explicitly with context.WithoutCancel",
			name, f.Name())
	}
}

// observesCancellation reports whether the goroutine body references a
// context or a struct{}-channel (done channel) — directly or through a
// field or call result.
func observesCancellation(pass *Pass, lit *ast.FuncLit) bool {
	found := false
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if found {
			return false
		}
		e, ok := n.(ast.Expr)
		if !ok {
			return true
		}
		t := typeOf(pass.Pkg, e)
		if t == nil {
			return true
		}
		if isContextType(t) {
			found = true
			return false
		}
		if ch, ok := types.Unalias(t).(*types.Chan); ok {
			if st, ok := types.Unalias(ch.Elem()).(*types.Struct); ok && st.NumFields() == 0 {
				found = true
				return false
			}
		}
		return true
	})
	return found
}
