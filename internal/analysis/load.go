package analysis

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one parsed and type-checked package, the unit every
// analyzer runs over.
type Package struct {
	// Path is the import path (module path + directory suffix).
	Path string
	// Dir is the absolute directory the sources were read from.
	Dir string
	// Fset is the file set all Files positions resolve through.
	Fset *token.FileSet
	// Files are the package's non-test source files, with comments.
	Files []*ast.File
	// Types is the type-checked package.
	Types *types.Package
	// Info carries the type-checker's expression/object tables.
	Info *types.Info
}

// Loader parses and type-checks packages using only the standard
// library.  Module-local import paths (those under a root registered in
// Modules) are resolved to directories and type-checked recursively;
// anything else is treated as a standard-library import and resolved
// through the toolchain's export data, falling back to type-checking
// the GOROOT sources when no export data is available.
type Loader struct {
	// Fset is shared by every package the loader touches.
	Fset *token.FileSet
	// Modules maps a module path (e.g. "minshare") to its root
	// directory.  Tests register an extra fixture module here.
	Modules map[string]string

	pkgs    map[string]*Package
	loading map[string]bool
	gc      types.Importer
	src     types.Importer
}

// NewLoader returns an empty loader.  Register at least one module with
// AddModule before loading.
func NewLoader() *Loader {
	fset := token.NewFileSet()
	return &Loader{
		Fset:    fset,
		Modules: make(map[string]string),
		pkgs:    make(map[string]*Package),
		loading: make(map[string]bool),
		gc:      importer.ForCompiler(fset, "gc", nil),
		src:     importer.ForCompiler(fset, "source", nil),
	}
}

// AddModule registers a module root: import paths equal to path or
// starting with path+"/" resolve under dir.
func (l *Loader) AddModule(path, dir string) {
	l.Modules[path] = dir
}

// AddModuleFromGoMod reads the module path from dir/go.mod and
// registers dir under it, returning the module path.
func (l *Loader) AddModuleFromGoMod(dir string) (string, error) {
	data, err := os.ReadFile(filepath.Join(dir, "go.mod"))
	if err != nil {
		return "", fmt.Errorf("analysis: reading go.mod: %w", err)
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			mod := strings.TrimSpace(rest)
			if mod == "" {
				break
			}
			l.AddModule(mod, dir)
			return mod, nil
		}
	}
	return "", fmt.Errorf("analysis: no module line in %s/go.mod", dir)
}

// moduleFor resolves an import path against the registered modules,
// returning the source directory.  Longest module path wins, so a
// fixture module nested inside the repo shadows the repo for its own
// subtree.
func (l *Loader) moduleFor(path string) (dir string, ok bool) {
	best := ""
	for mod, root := range l.Modules {
		if path != mod && !strings.HasPrefix(path, mod+"/") {
			continue
		}
		if len(mod) > len(best) {
			best = mod
			dir = filepath.Join(root, filepath.FromSlash(strings.TrimPrefix(strings.TrimPrefix(path, mod), "/")))
		}
	}
	return dir, best != ""
}

// Import implements types.Importer: it is handed to the type-checker so
// the dependencies of a module-local package resolve back through the
// loader itself.
func (l *Loader) Import(path string) (*types.Package, error) {
	if _, ok := l.moduleFor(path); ok {
		pkg, err := l.LoadPath(path)
		if err != nil {
			return nil, err
		}
		return pkg.Types, nil
	}
	if pkg, err := l.gc.Import(path); err == nil {
		return pkg, nil
	}
	// No export data (e.g. a toolchain without precompiled stdlib):
	// type-check the GOROOT sources instead.
	return l.src.Import(path)
}

// LoadPath loads the package with the given module-local import path,
// parsing and type-checking it (and, transitively, every module-local
// package it imports).  Results are cached per loader.
func (l *Loader) LoadPath(path string) (*Package, error) {
	if pkg, ok := l.pkgs[path]; ok {
		return pkg, nil
	}
	dir, ok := l.moduleFor(path)
	if !ok {
		return nil, fmt.Errorf("analysis: %s is not under a registered module", path)
	}
	if l.loading[path] {
		return nil, fmt.Errorf("analysis: import cycle through %s", path)
	}
	l.loading[path] = true
	defer delete(l.loading, path)

	files, err := l.parseDir(dir)
	if err != nil {
		return nil, err
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("analysis: no Go source files in %s", dir)
	}

	var typeErrs []error
	conf := types.Config{
		Importer: l,
		Error:    func(err error) { typeErrs = append(typeErrs, err) },
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	tpkg, checkErr := conf.Check(path, l.Fset, files, info)
	if len(typeErrs) > 0 {
		return nil, fmt.Errorf("analysis: type-checking %s: %w (and %d more)", path, typeErrs[0], len(typeErrs)-1)
	}
	if checkErr != nil {
		return nil, fmt.Errorf("analysis: type-checking %s: %w", path, checkErr)
	}
	pkg := &Package{Path: path, Dir: dir, Fset: l.Fset, Files: files, Types: tpkg, Info: info}
	l.pkgs[path] = pkg
	return pkg, nil
}

// parseDir parses every non-test .go file in dir, with comments, in
// deterministic (sorted) order.
func (l *Loader) parseDir(dir string) ([]*ast.File, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("analysis: %w", err)
	}
	var names []string
	for _, e := range ents {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		names = append(names, name)
	}
	sort.Strings(names)
	var files []*ast.File
	for _, name := range names {
		f, err := parser.ParseFile(l.Fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("analysis: %w", err)
		}
		files = append(files, f)
	}
	return files, nil
}

// Expand turns a package pattern into import paths.  Supported forms,
// matching the go tool's: an import path or "./dir" for one package,
// and "./..." or "dir/..." for every package under a directory tree.
// Directories named testdata, hidden directories, and directories
// without non-test Go files are skipped.
func (l *Loader) Expand(root, pattern string) ([]string, error) {
	base := root
	rest := pattern
	if strings.HasPrefix(rest, "./") {
		rest = strings.TrimPrefix(rest, "./")
	}
	recursive := false
	if rest == "..." {
		recursive, rest = true, ""
	} else if strings.HasSuffix(rest, "/...") {
		recursive, rest = true, strings.TrimSuffix(rest, "/...")
	}
	dir := filepath.Join(base, filepath.FromSlash(rest))
	if !recursive {
		path, err := l.pathForDir(dir)
		if err != nil {
			return nil, err
		}
		return []string{path}, nil
	}
	var paths []string
	err := filepath.WalkDir(dir, func(p string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if p != dir && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") || name == "testdata") {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(d.Name(), ".go") || strings.HasSuffix(d.Name(), "_test.go") {
			return nil
		}
		path, perr := l.pathForDir(filepath.Dir(p))
		if perr != nil {
			return perr
		}
		if len(paths) == 0 || paths[len(paths)-1] != path {
			paths = append(paths, path)
		}
		return nil
	})
	if err != nil {
		return nil, fmt.Errorf("analysis: expanding %s: %w", pattern, err)
	}
	sort.Strings(paths)
	return paths, nil
}

// pathForDir maps an on-disk directory back to its import path via the
// registered modules.
func (l *Loader) pathForDir(dir string) (string, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return "", fmt.Errorf("analysis: %w", err)
	}
	best, bestPath := -1, ""
	for mod, root := range l.Modules {
		rootAbs, err := filepath.Abs(root)
		if err != nil {
			continue
		}
		rel, err := filepath.Rel(rootAbs, abs)
		if err != nil || rel == ".." || strings.HasPrefix(rel, ".."+string(filepath.Separator)) {
			continue
		}
		if len(rootAbs) > best {
			best = len(rootAbs)
			if rel == "." {
				bestPath = mod
			} else {
				bestPath = mod + "/" + filepath.ToSlash(rel)
			}
		}
	}
	if best < 0 {
		return "", fmt.Errorf("analysis: %s is not under a registered module", dir)
	}
	return bestPath, nil
}
