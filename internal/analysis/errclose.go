package analysis

import (
	"go/ast"
	"go/types"
)

// ErrClose reports discarded errors from Send, Close and Flush on wire,
// transport and net-layer types.
//
// A swallowed transport error is how a truncated protocol transcript
// masquerades as success: a Close that fails to flush the final frame,
// a Send whose peer hung up, a TLS shutdown that never completed.  The
// wire-format strictness rules (DESIGN §10.6) assume every framing
// failure surfaces.  The analyzer flags expression, go and defer
// statements that drop such an error; assigning to the blank
// identifier (`_ = conn.Close()`) is accepted as an explicit,
// greppable discard, and genuinely intended drops can carry an
// ignore directive with the reason.
var ErrClose = &Analyzer{
	Name: "errclose",
	Doc: "errors from Send/Close/Flush on wire/transport/net types must " +
		"be checked or explicitly discarded",
	Run: runErrClose,
}

// errClosePkgs are the packages whose Send/Close/Flush failures carry
// protocol meaning.
var errClosePkgs = map[string]bool{
	"minshare/internal/transport": true,
	"minshare/internal/wire":      true,
	"minshare/internal/party":     true,
	"net":                         true,
	"net/http":                    true,
	"crypto/tls":                  true,
	"bufio":                       true,
}

// errCloseMethods are the checked method names.
var errCloseMethods = map[string]bool{"Send": true, "Close": true, "Flush": true}

func runErrClose(pass *Pass) {
	check := func(call *ast.CallExpr, how string) {
		f := calleeFunc(pass.Pkg, call)
		if f == nil || !errCloseMethods[f.Name()] {
			return
		}
		pkgPath, recv, ok := recvNamed(f)
		if !ok || !errClosePkgs[pkgPath] {
			return
		}
		sig, ok := f.Type().(*types.Signature)
		if !ok || sig.Results().Len() == 0 {
			return
		}
		last := sig.Results().At(sig.Results().Len() - 1).Type()
		if !isNamedType(last, "", "error") {
			return
		}
		pass.Reportf(call.Pos(),
			"%s error from (%s).%s is discarded — check it or discard explicitly with _ =",
			how, recv, f.Name())
	}
	pass.inspect(func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.ExprStmt:
			if call, ok := n.X.(*ast.CallExpr); ok {
				check(call, "unchecked")
			}
		case *ast.GoStmt:
			check(n.Call, "goroutine-discarded")
		case *ast.DeferStmt:
			check(n.Call, "deferred")
		}
		return true
	})
}
