package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"sort"
	"strings"
)

// Diagnostic is one analyzer finding, addressed to a source position.
type Diagnostic struct {
	// Pos locates the finding.
	Pos token.Position
	// Analyzer names the analyzer that produced the finding (or the
	// pseudo-analyzer "ignore" for malformed suppression directives).
	Analyzer string
	// Message describes the violated invariant at this site.
	Message string
	// Chain, when non-empty, is the source→sink call chain behind an
	// interprocedural finding (leakflow), one "file:line: step" entry
	// per hop.  The driver prints it on request (-why); the canonical
	// one-line form does not include it.
	Chain []string
}

// String renders the canonical "file:line: analyzer: message" form the
// driver prints and the // want harness matches against.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d: %s: %s", d.Pos.Filename, d.Pos.Line, d.Analyzer, d.Message)
}

// sortDiagnostics orders findings by file, line, column, analyzer — the
// stable order the driver prints and tests assert on.
func sortDiagnostics(ds []Diagnostic) {
	sort.Slice(ds, func(i, j int) bool {
		a, b := ds[i], ds[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
}

// ignoreDirective is the parsed form of one
// "// lint:ignore <analyzer> <reason>" comment.
type ignoreDirective struct {
	pos      token.Position
	analyzer string
	reason   string
}

// IgnoreRecord is one suppression surfaced by Audit — the reviewable
// inventory behind `make lint-fix-audit`.
type IgnoreRecord struct {
	// Pos is where the directive appears.
	Pos token.Position
	// Analyzer is the analyzer being suppressed.
	Analyzer string
	// Reason is the mandatory justification recorded in the directive.
	Reason string
}

// String renders the audit line form: "file:line: analyzer: reason".
func (r IgnoreRecord) String() string {
	return fmt.Sprintf("%s:%d: %s: %s", r.Pos.Filename, r.Pos.Line, r.Analyzer, r.Reason)
}

// directivePrefix introduces a suppression comment.  The directive
// grammar is "lint:ignore <analyzer> <reason...>"; the reason is
// mandatory, so an unexplained suppression is itself a finding.
const directivePrefix = "lint:ignore"

// collectIgnores parses every lint:ignore directive in the package.
// Malformed directives (no analyzer, or no reason) are returned as
// diagnostics under the pseudo-analyzer "ignore" — they never suppress
// anything.  A comment followed by another comment of the same group
// on a later line is a continuation line inside a comment block: it
// sits above prose, not code, so it can never act as a directive and
// is not parsed as one.
func collectIgnores(pkg *Package) ([]ignoreDirective, []Diagnostic) {
	var dirs []ignoreDirective
	var bad []Diagnostic
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for i, c := range cg.List {
				if i+1 < len(cg.List) &&
					pkg.Fset.Position(cg.List[i+1].Pos()).Line > pkg.Fset.Position(c.End()).Line {
					continue
				}
				text := strings.TrimPrefix(c.Text, "//")
				text = strings.TrimPrefix(text, "/*")
				text = strings.TrimSpace(strings.TrimSuffix(text, "*/"))
				if !strings.HasPrefix(text, directivePrefix) {
					continue
				}
				rest := strings.TrimSpace(strings.TrimPrefix(text, directivePrefix))
				fields := strings.Fields(rest)
				pos := pkg.Fset.Position(c.Pos())
				if len(fields) < 2 {
					bad = append(bad, Diagnostic{
						Pos:      pos,
						Analyzer: "ignore",
						Message:  "malformed lint:ignore directive: want \"lint:ignore <analyzer> <reason>\"",
					})
					continue
				}
				dirs = append(dirs, ignoreDirective{
					pos:      pos,
					analyzer: fields[0],
					reason:   strings.TrimSpace(strings.TrimPrefix(rest, fields[0])),
				})
			}
		}
	}
	return dirs, bad
}

// suppressed reports whether d is covered by a directive for its
// analyzer on the same line or the line directly above, in the same
// file.
func suppressed(d Diagnostic, dirs []ignoreDirective) bool {
	for _, dir := range dirs {
		if dir.analyzer != d.Analyzer && dir.analyzer != "all" {
			continue
		}
		if dir.pos.Filename != d.Pos.Filename {
			continue
		}
		if dir.pos.Line == d.Pos.Line || dir.pos.Line == d.Pos.Line-1 {
			return true
		}
	}
	return false
}

// Audit lists every lint:ignore directive in pkgs, in source order —
// the `psilint -audit` inventory that keeps suppressions reviewable.
func Audit(pkgs []*Package) []IgnoreRecord {
	var recs []IgnoreRecord
	for _, pkg := range pkgs {
		dirs, _ := collectIgnores(pkg)
		for _, dir := range dirs {
			recs = append(recs, IgnoreRecord{Pos: dir.pos, Analyzer: dir.analyzer, Reason: dir.reason})
		}
	}
	sort.Slice(recs, func(i, j int) bool {
		a, b := recs[i], recs[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		return a.Pos.Line < b.Pos.Line
	})
	return recs
}

// wantPattern matches the "// want `regexp`" and "// want \"regexp\""
// expectation comments the fixture harness consumes.  It lives here
// (rather than in the test harness) so fixtures and directives share
// one comment-scanning pass; see harness_test.go.
func wantPattern(c *ast.Comment) (string, bool) {
	text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
	if !strings.HasPrefix(text, "want ") {
		return "", false
	}
	pat := strings.TrimSpace(strings.TrimPrefix(text, "want "))
	if len(pat) >= 2 && (pat[0] == '`' || pat[0] == '"') && pat[len(pat)-1] == pat[0] {
		return pat[1 : len(pat)-1], true
	}
	return "", false
}
