package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
)

// Analyzer is one invariant checker.  Run inspects a single
// type-checked package and reports findings through the Pass.
type Analyzer struct {
	// Name is the short identifier used in diagnostics and in the
	// suppression directives ("lint:ignore <name> <reason>").
	Name string
	// Doc is a one-paragraph description of the enforced invariant.
	Doc string
	// Run executes the analyzer over one package.
	Run func(*Pass)
}

// Pass carries one (analyzer, package) execution and collects its
// findings.
type Pass struct {
	// Analyzer is the analyzer being run.
	Analyzer *Analyzer
	// Pkg is the package under analysis.
	Pkg *Package

	diags []Diagnostic
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.diags = append(p.diags, Diagnostic{
		Pos:      p.Pkg.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// Suite returns the repo's protocol-safety analyzers in reporting
// order.
func Suite() []*Analyzer {
	return []*Analyzer{
		SecretLog,
		BigIntAlias,
		CtxFlow,
		ErrClose,
		SpanPair,
	}
}

// Run executes every analyzer over every package, applies the
// "lint:ignore" suppressions, and returns the surviving findings
// sorted by position.  Malformed directives are returned as findings
// themselves.
func Run(pkgs []*Package, analyzers []*Analyzer) []Diagnostic {
	var out []Diagnostic
	for _, pkg := range pkgs {
		dirs, bad := collectIgnores(pkg)
		out = append(out, bad...)
		for _, a := range analyzers {
			pass := &Pass{Analyzer: a, Pkg: pkg}
			a.Run(pass)
			for _, d := range pass.diags {
				if !suppressed(d, dirs) {
					out = append(out, d)
				}
			}
		}
	}
	sortDiagnostics(out)
	return out
}

// inspect walks every file of the pass's package in source order,
// calling fn for each node; fn returning false prunes the subtree.
func (p *Pass) inspect(fn func(ast.Node) bool) {
	for _, f := range p.Pkg.Files {
		ast.Inspect(f, fn)
	}
}
