package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
)

// Analyzer is one invariant checker.  Run inspects a single
// type-checked package and reports findings through the Pass; RunModule
// instead receives every package of the run at once — the hook for
// interprocedural analyses (the leakflow taint engine) that must follow
// a value across package boundaries.  Exactly one of the two is set.
type Analyzer struct {
	// Name is the short identifier used in diagnostics and in the
	// suppression directives ("lint:ignore <name> <reason>").
	Name string
	// Doc is a one-paragraph description of the enforced invariant.
	Doc string
	// Run executes the analyzer over one package.
	Run func(*Pass)
	// RunModule executes the analyzer once over the whole package set
	// (Pass.Pkgs); Pass.Pkg is nil for such a run.
	RunModule func(*Pass)
}

// Pass carries one (analyzer, package or module) execution and collects
// its findings.
type Pass struct {
	// Analyzer is the analyzer being run.
	Analyzer *Analyzer
	// Pkg is the package under analysis (nil for a RunModule pass).
	Pkg *Package
	// Pkgs is the whole package set of the run, in load order.  Set for
	// RunModule passes; nil for per-package runs.
	Pkgs []*Package

	diags []Diagnostic
}

// fset returns the shared file set of the pass (every package of one
// run is loaded through one Loader, so one FileSet serves them all).
func (p *Pass) fset() *token.FileSet {
	if p.Pkg != nil {
		return p.Pkg.Fset
	}
	return p.Pkgs[0].Fset
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.diags = append(p.diags, Diagnostic{
		Pos:      p.fset().Position(pos),
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// ReportChain records a finding at pos carrying a source→sink call
// chain (one "file:line: step" entry per hop), retrievable through the
// driver's -why flag.
func (p *Pass) ReportChain(pos token.Pos, chain []string, format string, args ...any) {
	p.diags = append(p.diags, Diagnostic{
		Pos:      p.fset().Position(pos),
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
		Chain:    chain,
	})
}

// reportPosition records a finding at an already-resolved position —
// module analyzers resolve positions against the shared FileSet while
// walking many packages, so they report in resolved form.
func (p *Pass) reportPosition(pos token.Position, chain []string, format string, args ...any) {
	p.diags = append(p.diags, Diagnostic{
		Pos:      pos,
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
		Chain:    chain,
	})
}

// Suite returns the repo's protocol-safety analyzers in reporting
// order.
func Suite() []*Analyzer {
	return []*Analyzer{
		SecretLog,
		BigIntAlias,
		CtxFlow,
		ErrClose,
		SpanPair,
		LeakFlow,
		WireKind,
	}
}

// Run executes every analyzer over every package, applies the
// "lint:ignore" suppressions, and returns the surviving findings
// sorted by position.  Malformed directives are returned as findings
// themselves.  Per-package analyzers run once per package;
// whole-module analyzers (RunModule) run once over the full set.
func Run(pkgs []*Package, analyzers []*Analyzer) []Diagnostic {
	var out []Diagnostic
	var allDirs []ignoreDirective
	for _, pkg := range pkgs {
		dirs, bad := collectIgnores(pkg)
		out = append(out, bad...)
		allDirs = append(allDirs, dirs...)
		for _, a := range analyzers {
			if a.Run == nil {
				continue
			}
			pass := &Pass{Analyzer: a, Pkg: pkg}
			a.Run(pass)
			for _, d := range pass.diags {
				if !suppressed(d, dirs) {
					out = append(out, d)
				}
			}
		}
	}
	if len(pkgs) > 0 {
		for _, a := range analyzers {
			if a.RunModule == nil {
				continue
			}
			pass := &Pass{Analyzer: a, Pkgs: pkgs}
			a.RunModule(pass)
			for _, d := range pass.diags {
				if !suppressed(d, allDirs) {
					out = append(out, d)
				}
			}
		}
	}
	sortDiagnostics(out)
	return out
}

// inspect walks every file of the pass's package in source order,
// calling fn for each node; fn returning false prunes the subtree.
func (p *Pass) inspect(fn func(ast.Node) bool) {
	for _, f := range p.Pkg.Files {
		ast.Inspect(f, fn)
	}
}
