package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// commutativePath is the package whose types carry key material.
const commutativePath = "minshare/internal/commutative"

// groupPath is the backend package whose Scalar type carries the raw
// key material underneath commutative.Key.
const groupPath = "minshare/internal/group"

// SecretLog reports key material reaching a formatting or logging sink.
//
// The paper's security proofs (§5, Lemmas 1–3) model the commutative
// key e as known only to its party for the lifetime of the process; a
// key that leaks into a log line, an error string or a panic message
// breaks that model outside the protocol transcript entirely.  The
// analyzer therefore rejects any argument to the fmt print family, the
// log and log/slog packages, or error formatting whose value is — or
// contains — a commutative.Key, a commutative.CachedSet (whose pinned
// key and ciphertext ordering are both sensitive), or a group.Scalar
// (the raw key material every backend stores under the Key — a QR
// exponent or a curve scalar alike), as well as raw exponents obtained
// from Key.Exponent, raw scalars obtained from Scalar.Big, or fields
// read off any of those types.
//
// The trace-export surface is a sink of the same severity: a span
// annotation ((*obs.Span).Annotate) is stringified into the span tree,
// retained by the flight recorder, and published verbatim by
// /debug/sessions and the Chrome trace export — so key material is
// rejected there too.
var SecretLog = &Analyzer{
	Name: "secretlog",
	Doc: "no commutative.Key, group.Scalar, raw exponent, or CachedSet value " +
		"may reach fmt/log/slog formatting, error strings, or span annotations " +
		"(the flight-recorder/trace-export path)",
	Run: runSecretLog,
}

func runSecretLog(pass *Pass) {
	pass.inspect(func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		f := calleeFunc(pass.Pkg, call)
		if f == nil {
			return true
		}
		traceSink := isTraceExportSink(f)
		if !traceSink && !isFormattingSink(f) {
			return true
		}
		for i, arg := range call.Args {
			if desc := secretDesc(pass.Pkg, arg); desc != "" {
				if traceSink {
					pass.Reportf(arg.Pos(),
						"argument %d of %s carries %s — secrets must never reach the flight recorder or trace export",
						i+1, sinkName(f), desc)
				} else {
					pass.Reportf(arg.Pos(),
						"argument %d of %s carries %s — secrets must never reach logs or error strings",
						i+1, sinkName(f), desc)
				}
			}
		}
		return true
	})
}

// isTraceExportSink reports whether f feeds the observability export
// surface: (*obs.Span).Annotate stringifies its value into the span
// tree, which the flight recorder retains and /debug/sessions and the
// Chrome trace_event export publish verbatim.
func isTraceExportSink(f *types.Func) bool {
	p, r, ok := recvNamed(f)
	return ok && p == obsPath && r == "Span" && f.Name() == "Annotate"
}

// isFormattingSink reports whether f renders its arguments into text:
// the fmt print/format family (including Errorf), everything in log,
// and the log/slog call surface.
func isFormattingSink(f *types.Func) bool {
	switch funcPkgPath(f) {
	case "fmt":
		name := f.Name()
		return strings.HasPrefix(name, "Print") ||
			strings.HasPrefix(name, "Sprint") ||
			strings.HasPrefix(name, "Fprint") ||
			strings.HasPrefix(name, "Append") ||
			name == "Errorf"
	case "log", "log/slog":
		return true
	}
	return false
}

// sinkName renders the sink for diagnostics: "fmt.Errorf",
// "slog.Info", "(*log.Logger).Printf", …
func sinkName(f *types.Func) string {
	if pkgPath, recv, ok := recvNamed(f); ok {
		short := pkgPath[strings.LastIndexByte(pkgPath, '/')+1:]
		return "(*" + short + "." + recv + ")." + f.Name()
	}
	path := funcPkgPath(f)
	return path[strings.LastIndexByte(path, '/')+1:] + "." + f.Name()
}

// secretDesc classifies an argument expression as secret-bearing,
// returning a human description, or "" when it is safe.  The type and
// extractor classification itself lives in secrets.go, shared with the
// leakflow taint engine.
func secretDesc(pkg *Package, arg ast.Expr) string {
	arg = ast.Unparen(arg)
	// A raw exponent or scalar escaping through an extractor call
	// (Key.Exponent, Scalar.Big, …).
	if call, ok := arg.(*ast.CallExpr); ok {
		if f := calleeFunc(pkg, call); f != nil {
			if desc := secretExtractor(f); desc != "" {
				return desc
			}
		}
	}
	// A field read off a Key, CachedSet or Scalar (possible inside the
	// owning package itself, where the unexported fields are visible).
	if sel, ok := arg.(*ast.SelectorExpr); ok {
		if t := typeOf(pkg, sel.X); t != nil {
			if p, n, ok := namedOf(t); ok {
				if name, secret := secretNamedType(p, n); secret {
					return "a " + name + " field"
				}
			}
		}
	}
	if t := typeOf(pkg, arg); t != nil {
		if name := secretTypeName(t); name != "" {
			return "a value of (or containing) " + name
		}
	}
	return ""
}
