package analysis

import (
	"go/ast"
	"go/types"
)

// BigIntAlias reports in-place mutation of big.Int values that alias
// state shared through commutative.CachedSet.
//
// A CachedSet replays one bulk-exponentiation phase across many
// sessions, so the slices its accessors (Elems, Payload, Key) return
// are shared with the cache, not copied — the documented contract is
// "treat them as read-only".  Every big.Int method that writes its
// receiver (Set*, Add, Exp, Mod, …) called on such a value corrupts the
// cached ciphertexts for every later query, silently breaking the
// §6.1 warm-run guarantees and, worse, the correctness of the next
// peer's transcript.  Values must be copied (new(big.Int).Set(x))
// before mutation; the analyzer tracks aliases through assignment,
// indexing and range within each function.
var BigIntAlias = &Analyzer{
	Name: "bigintalias",
	Doc: "no mutating big.Int method may be called on values shared " +
		"through commutative.CachedSet accessors",
	Run: runBigIntAlias,
}

// bigIntMutators is every math/big.Int method that writes its receiver.
var bigIntMutators = map[string]bool{
	"Abs": true, "Add": true, "And": true, "AndNot": true, "Binomial": true,
	"Div": true, "DivMod": true, "Exp": true, "GCD": true, "GobDecode": true,
	"Lsh": true, "Mod": true, "ModInverse": true, "ModSqrt": true, "Mul": true,
	"MulRange": true, "Neg": true, "Not": true, "Or": true, "Quo": true,
	"QuoRem": true, "Rand": true, "Rem": true, "Rsh": true, "Scan": true,
	"Set": true, "SetBit": true, "SetBits": true, "SetBytes": true,
	"SetInt64": true, "SetString": true, "SetUint64": true, "Sqrt": true,
	"Sub": true, "UnmarshalJSON": true, "UnmarshalText": true, "Xor": true,
}

// cachedSetAccessors are the CachedSet methods whose results alias the
// cached state.
var cachedSetAccessors = map[string]bool{"Elems": true, "Payload": true, "Key": true}

func runBigIntAlias(pass *Pass) {
	// Objects known to alias cache-shared memory, discovered in source
	// order.  types.Object identity is unique per declaration, so one
	// package-wide set is sound across functions.
	shared := make(map[types.Object]bool)

	var isSharedExpr func(e ast.Expr) bool
	isSharedExpr = func(e ast.Expr) bool {
		switch e := ast.Unparen(e).(type) {
		case *ast.Ident:
			obj := exprObj(pass.Pkg, e)
			return obj != nil && shared[obj]
		case *ast.IndexExpr:
			return isSharedExpr(e.X)
		case *ast.UnaryExpr:
			return isSharedExpr(e.X)
		case *ast.StarExpr:
			return isSharedExpr(e.X)
		case *ast.CallExpr:
			f := calleeFunc(pass.Pkg, e)
			if f == nil || !cachedSetAccessors[f.Name()] {
				return false
			}
			p, r, ok := recvNamed(f)
			return ok && p == commutativePath && r == "CachedSet"
		case *ast.SelectorExpr:
			// Direct field reads off a CachedSet (visible inside the
			// commutative package): c.elems, c.key, …
			if _, isField := pass.Pkg.Info.Selections[e]; !isField {
				return false
			}
			t := typeOf(pass.Pkg, e.X)
			return t != nil && isNamedType(t, commutativePath, "CachedSet")
		}
		return false
	}

	mark := func(lhs, rhs ast.Expr) {
		id, ok := ast.Unparen(lhs).(*ast.Ident)
		if !ok || id.Name == "_" {
			return
		}
		obj := exprObj(pass.Pkg, id)
		if obj == nil {
			return
		}
		if rhs != nil && isSharedExpr(rhs) {
			shared[obj] = true
		} else {
			// Rebinding to a fresh value clears the taint.
			delete(shared, obj)
		}
	}

	pass.inspect(func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			if len(n.Lhs) == len(n.Rhs) {
				for i := range n.Lhs {
					mark(n.Lhs[i], n.Rhs[i])
				}
			}
		case *ast.RangeStmt:
			if n.Value != nil && isSharedExpr(n.X) {
				mark(n.Value, n.X) // range over a shared slice yields shared elements
			}
		case *ast.CallExpr:
			sel, ok := ast.Unparen(n.Fun).(*ast.SelectorExpr)
			if !ok {
				return true
			}
			f := calleeFunc(pass.Pkg, n)
			if f == nil || !bigIntMutators[f.Name()] {
				return true
			}
			if p, r, ok := recvNamed(f); !ok || p != "math/big" || r != "Int" {
				return true
			}
			if isSharedExpr(sel.X) {
				pass.Reportf(n.Pos(),
					"in-place big.Int mutation (%s) of a value shared through commutative.CachedSet — copy it first with new(big.Int).Set(x)",
					f.Name())
			}
		}
		return true
	})
}
