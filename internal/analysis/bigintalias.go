package analysis

import (
	"go/ast"
	"go/types"
)

// BigIntAlias reports in-place mutation of big.Int and group.Nat
// values that alias state shared through commutative.CachedSet or
// group.Modulus accessors.
//
// A CachedSet replays one bulk-exponentiation phase across many
// sessions, so the slices its accessors (Elems, Payload, Key) return
// are shared with the cache, not copied — the documented contract is
// "treat them as read-only".  Every big.Int method that writes its
// receiver (Set*, Add, Exp, Mod, …) called on such a value corrupts the
// cached ciphertexts for every later query, silently breaking the
// §6.1 warm-run guarantees and, worse, the correctness of the next
// peer's transcript.  Values must be copied (new(big.Int).Set(x))
// before mutation; the analyzer tracks aliases through assignment,
// indexing and range within each function.
//
// The Montgomery fast path has the same shape of hazard: group.Nat is
// a mutable word array, and Modulus.One returns a Nat that aliases the
// Modulus's precomputed constant.  Calling a Nat mutator (Set, SetBig,
// MontMul) on such a value corrupts every later exponentiation under
// that Modulus, so the analyzer applies the identical no-shared-
// mutation rule; copy with group.NewNat(m).Set(x) before mutating.
var BigIntAlias = &Analyzer{
	Name: "bigintalias",
	Doc: "no mutating big.Int or group.Nat method may be called on values " +
		"shared through commutative.CachedSet or group.Modulus accessors",
	Run: runBigIntAlias,
}

// bigIntMutators is every math/big.Int method that writes its receiver.
var bigIntMutators = map[string]bool{
	"Abs": true, "Add": true, "And": true, "AndNot": true, "Binomial": true,
	"Div": true, "DivMod": true, "Exp": true, "GCD": true, "GobDecode": true,
	"Lsh": true, "Mod": true, "ModInverse": true, "ModSqrt": true, "Mul": true,
	"MulRange": true, "Neg": true, "Not": true, "Or": true, "Quo": true,
	"QuoRem": true, "Rand": true, "Rem": true, "Rsh": true, "Scan": true,
	"Set": true, "SetBit": true, "SetBits": true, "SetBytes": true,
	"SetInt64": true, "SetString": true, "SetUint64": true, "Sqrt": true,
	"Sub": true, "UnmarshalJSON": true, "UnmarshalText": true, "Xor": true,
}

// natMutators is every group.Nat method that writes its receiver.
var natMutators = map[string]bool{"Set": true, "SetBig": true, "MontMul": true}

// cachedSetAccessors are the CachedSet methods whose results alias the
// cached state.
var cachedSetAccessors = map[string]bool{"Elems": true, "Payload": true, "Key": true}

// modulusAccessors are the group.Modulus methods whose results alias
// the precomputed Montgomery constants.
var modulusAccessors = map[string]bool{"One": true}

func runBigIntAlias(pass *Pass) {
	// Objects known to alias cache-shared memory, discovered in source
	// order.  types.Object identity is unique per declaration, so one
	// package-wide set is sound across functions.
	shared := make(map[types.Object]bool)

	var isSharedExpr func(e ast.Expr) bool
	isSharedExpr = func(e ast.Expr) bool {
		switch e := ast.Unparen(e).(type) {
		case *ast.Ident:
			obj := exprObj(pass.Pkg, e)
			return obj != nil && shared[obj]
		case *ast.IndexExpr:
			return isSharedExpr(e.X)
		case *ast.UnaryExpr:
			return isSharedExpr(e.X)
		case *ast.StarExpr:
			return isSharedExpr(e.X)
		case *ast.CallExpr:
			f := calleeFunc(pass.Pkg, e)
			if f == nil {
				return false
			}
			p, r, ok := recvNamed(f)
			if !ok {
				return false
			}
			if cachedSetAccessors[f.Name()] && p == commutativePath && r == "CachedSet" {
				return true
			}
			return modulusAccessors[f.Name()] && p == groupPath && r == "Modulus"
		case *ast.SelectorExpr:
			// Direct field reads off a CachedSet or Modulus (visible
			// inside the owning package): c.elems, m.oneMon, …
			if _, isField := pass.Pkg.Info.Selections[e]; !isField {
				return false
			}
			t := typeOf(pass.Pkg, e.X)
			if t == nil {
				return false
			}
			return isNamedType(t, commutativePath, "CachedSet") ||
				isNamedType(t, groupPath, "Modulus")
		}
		return false
	}

	mark := func(lhs, rhs ast.Expr) {
		id, ok := ast.Unparen(lhs).(*ast.Ident)
		if !ok || id.Name == "_" {
			return
		}
		obj := exprObj(pass.Pkg, id)
		if obj == nil {
			return
		}
		if rhs != nil && isSharedExpr(rhs) {
			shared[obj] = true
		} else {
			// Rebinding to a fresh value clears the taint.
			delete(shared, obj)
		}
	}

	pass.inspect(func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			if len(n.Lhs) == len(n.Rhs) {
				for i := range n.Lhs {
					mark(n.Lhs[i], n.Rhs[i])
				}
			}
		case *ast.RangeStmt:
			if n.Value != nil && isSharedExpr(n.X) {
				mark(n.Value, n.X) // range over a shared slice yields shared elements
			}
		case *ast.CallExpr:
			sel, ok := ast.Unparen(n.Fun).(*ast.SelectorExpr)
			if !ok {
				return true
			}
			f := calleeFunc(pass.Pkg, n)
			if f == nil {
				return true
			}
			p, r, okRecv := recvNamed(f)
			if !okRecv {
				return true
			}
			switch {
			case bigIntMutators[f.Name()] && p == "math/big" && r == "Int":
				if isSharedExpr(sel.X) {
					pass.Reportf(n.Pos(),
						"in-place big.Int mutation (%s) of a value shared through commutative.CachedSet — copy it first with new(big.Int).Set(x)",
						f.Name())
				}
			case natMutators[f.Name()] && p == groupPath && r == "Nat":
				if isSharedExpr(sel.X) {
					pass.Reportf(n.Pos(),
						"in-place group.Nat mutation (%s) of a value shared through group.Modulus — copy it first with group.NewNat(m).Set(x)",
						f.Name())
				}
			}
		}
		return true
	})
}
