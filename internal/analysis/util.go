package analysis

import (
	"go/ast"
	"go/types"
)

// calleeFunc resolves the function or method a call expression
// statically invokes, or nil for indirect calls through function
// values, type conversions and builtins.
func calleeFunc(pkg *Package, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		f, _ := pkg.Info.Uses[fun].(*types.Func)
		return f
	case *ast.SelectorExpr:
		f, _ := pkg.Info.Uses[fun.Sel].(*types.Func)
		return f
	}
	return nil
}

// deref unwraps aliases and one level of pointer.
func deref(t types.Type) types.Type {
	t = types.Unalias(t)
	if p, ok := t.(*types.Pointer); ok {
		t = types.Unalias(p.Elem())
	}
	return t
}

// namedOf returns the package path and name of t's (possibly
// pointed-to) named type, or ok=false for unnamed types.
func namedOf(t types.Type) (pkgPath, name string, ok bool) {
	n, isNamed := deref(t).(*types.Named)
	if !isNamed {
		return "", "", false
	}
	obj := n.Obj()
	if obj.Pkg() == nil {
		// Universe-scoped named types (error).
		return "", obj.Name(), true
	}
	return obj.Pkg().Path(), obj.Name(), true
}

// isNamedType reports whether t (or its pointee) is the named type
// pkgPath.name.
func isNamedType(t types.Type, pkgPath, name string) bool {
	p, n, ok := namedOf(t)
	return ok && p == pkgPath && n == name
}

// isContextType reports whether t is context.Context.
func isContextType(t types.Type) bool {
	return isNamedType(t, "context", "Context")
}

// recvNamed returns the package path and type name of a method's
// receiver, or ok=false for plain functions.
func recvNamed(f *types.Func) (pkgPath, name string, ok bool) {
	sig, sigOK := f.Type().(*types.Signature)
	if !sigOK || sig.Recv() == nil {
		return "", "", false
	}
	return namedOf(sig.Recv().Type())
}

// funcPkgPath returns the import path of the package declaring f, or ""
// for universe-scoped functions.
func funcPkgPath(f *types.Func) string {
	if f.Pkg() == nil {
		return ""
	}
	return f.Pkg().Path()
}

// contextParam returns the index of the first context.Context parameter
// of sig, or -1.
func contextParam(sig *types.Signature) int {
	params := sig.Params()
	for i := 0; i < params.Len(); i++ {
		if isContextType(params.At(i).Type()) {
			return i
		}
	}
	return -1
}

// exprObj resolves an identifier expression (possibly parenthesised) to
// its object, or nil.
func exprObj(pkg *Package, e ast.Expr) types.Object {
	id, ok := ast.Unparen(e).(*ast.Ident)
	if !ok {
		return nil
	}
	if obj := pkg.Info.Uses[id]; obj != nil {
		return obj
	}
	return pkg.Info.Defs[id]
}

// typeOf returns the static type of e, or nil.
func typeOf(pkg *Package, e ast.Expr) types.Type {
	return pkg.Info.TypeOf(e)
}

// funcDecls yields every function declaration and function literal body
// in the package, with the enclosing *types.Signature.  fn receives the
// body (never nil) and the signature (nil if unresolved).
func (p *Pass) funcBodies(fn func(body *ast.BlockStmt, sig *types.Signature)) {
	p.inspect(func(n ast.Node) bool {
		switch d := n.(type) {
		case *ast.FuncDecl:
			if d.Body == nil {
				return true
			}
			var sig *types.Signature
			if obj, ok := p.Pkg.Info.Defs[d.Name].(*types.Func); ok {
				sig, _ = obj.Type().(*types.Signature)
			}
			fn(d.Body, sig)
		case *ast.FuncLit:
			sig, _ := types.Unalias(p.Pkg.Info.TypeOf(d.Type)).(*types.Signature)
			fn(d.Body, sig)
		}
		return true
	})
}
