// Package analysis is a from-scratch static-analysis framework that
// mechanically enforces the repo's protocol-safety invariants — the
// implementation assumptions behind the paper's security argument (§5,
// Lemmas 1–3) that Go's type system cannot see.
//
// It is deliberately built on nothing but the standard library
// (go/parser, go/ast, go/types): the repo's stdlib-only rule applies to
// its tooling too, so there is no golang.org/x/tools dependency.  The
// pieces:
//
//   - a Loader that parses and type-checks the module's packages with a
//     source-level importer (module-local imports are resolved and
//     checked recursively; standard-library imports fall back to the
//     toolchain's export data, then to type-checking GOROOT sources);
//   - an Analyzer / Pass / Diagnostic model: each analyzer inspects one
//     type-checked package and reports findings as
//     "file:line: analyzer: message";
//   - a "// lint:ignore <analyzer> <reason>" escape hatch, honoured on
//     the flagged line or the line directly above it, with the reason
//     mandatory so every suppression stays reviewable (see Audit);
//   - the domain analyzers themselves: secretlog, bigintalias, ctxflow,
//     errclose and spanpair (one file each, see their Doc strings).
//
// The cmd/psilint driver runs the whole suite over ./... and exits
// nonzero on any finding; `make lint` (part of `make check`) is the
// gate.  Fixture packages under testdata/src exercise every analyzer
// through the // want harness in harness_test.go.
package analysis
