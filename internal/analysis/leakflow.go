package analysis

import (
	"fmt"
	"go/types"
	"strings"
)

// transportPath is the package whose Send methods put bytes on the
// wire.
const transportPath = "minshare/internal/transport"

// wirePath is the framing package whose Codec serializes messages.
const wirePath = "minshare/internal/wire"

// leakagePath is the leakage-accounting package: its functions are the
// suite's declassifiers — routing a value through them is the explicit,
// reviewable statement that disclosing it is a deliberate protocol
// decision (§4 of the paper quantifies exactly this).
const leakagePath = "minshare/internal/leakage"

// corePath is the protocol package whose exported entry points take the
// parties' raw sets.
const corePath = "minshare/internal/core"

// LeakFlow statically proves the paper's minimal-disclosure contract
// (§4.1): the only information a party may emit is what the protocol
// defines — commutatively encrypted set images, oracle-hashed
// identifiers, and the declared result.
//
// It runs the interprocedural taint engine (taint.go) over the whole
// module.  Sources are raw secret material: the parties' input sets
// before oracle hashing (the `values`/`records` parameters of the core
// entry points, and DeltaSource churn rows), raw key exponents
// (Key.Exponent, Scalar.Big, Group.RandomExponent/InvExponent), and
// every value whose type embeds commutative.Key, commutative.CachedSet
// or group.Scalar.  Sinks are the ways bytes leave the process:
// transport Send methods, the wire Codec encoders, the fmt/log/slog
// formatting surface, span annotations and the flight recorder.
// Sanitizers clear taint: applying the commutative encryption f_e
// (§3.2), hashing through the random oracle h (§3.1), the key-encrypted
// payload cipher (§5.3), and the leakage package's explicit
// declassifiers.  Results of the core protocol entry points are the
// protocol's permitted output and arrive declassified at callers.
//
// Any remaining source→sink path — across any number of helper calls,
// struct fields, channels, closures or goroutines — is a finding; the
// full call chain is retrievable with `psilint -why file:line`.
//
// Division of labor with secretlog: an argument whose static type
// embeds a secret type and that is passed directly to a formatting or
// trace sink is secretlog's finding (a local, type-level fact) and is
// not re-reported here; leakflow owns every flow secretlog cannot see —
// laundered through interface{} or helper calls, carried through
// fields, or reaching the transport instead of a log line.
var LeakFlow = &Analyzer{
	Name: "leakflow",
	Doc: "no unsanitized secret (raw set element, key material, cached " +
		"ciphertext state) may flow — through any call chain, field, channel " +
		"or goroutine — into transport sends, wire encoders, formatting, or " +
		"trace export; sanitizers are the commutative encryption, the oracle " +
		"hash, the payload cipher, and leakage.* declassification",
	RunModule: runLeakFlow,
}

func runLeakFlow(pass *Pass) {
	eng := runTaint(pass.Pkgs, leakflowConfig())
	for _, f := range eng.findings {
		chain := eng.chainFor(f)
		via := eng.viaNames(f)
		if via == "" {
			pass.reportPosition(f.pos, chain,
				"unsanitized flow of %s into %s", f.src.desc, f.hop.sink)
		} else {
			pass.reportPosition(f.pos, chain,
				"unsanitized flow of %s into %s (via %s)", f.src.desc, f.hop.sink, via)
		}
	}
}

// leakflowConfig declares the minimal-disclosure policy for this
// module.
func leakflowConfig() *taintConfig {
	return &taintConfig{
		sink:                leakSink,
		sanitizer:           leakSanitizer,
		sourceCall:          leakSourceCall,
		sourceParams:        leakSourceParams,
		declassifiedResults: leakDeclassified,
		benign:              leakBenign,
	}
}

// leakSink classifies the module's egress points.
func leakSink(f *types.Func) (string, bool, bool) {
	// The observability export surface: formatting-class (secretlog
	// owns directly secret-typed arguments there).
	if isTraceExportSink(f) {
		return "(*obs.Span).Annotate (trace export)", true, true
	}
	if isFormattingSink(f) {
		return sinkName(f), true, true
	}
	if p, r, ok := recvNamed(f); ok {
		// Anything with a Send method in the transport package puts a
		// frame on the network: Conn implementations, the mux, the
		// latency decorators — and the Conn interface method itself.
		if p == transportPath && f.Name() == "Send" {
			return "transport Send (the wire)", false, true
		}
		// The wire codec: serialization is not encryption, so encoding
		// a secret-bearing message is already the leak.
		if p == wirePath && r == "Codec" && strings.HasPrefix(f.Name(), "Encode") {
			return "(*wire.Codec)." + f.Name(), false, true
		}
		// The flight recorder retains snapshots for /debug export.
		if p == obsPath && r == "FlightRecorder" && f.Name() == "Add" {
			return "(*obs.FlightRecorder).Add (flight recorder)", false, true
		}
	}
	return "", false, false
}

// leakSanitizer lists the operations whose results the paper's security
// argument (§5, Lemmas 1–3) makes safe to disclose, plus the explicit
// declassifiers.
func leakSanitizer(f *types.Func) bool {
	// leakage.*: the declassification package — every result it
	// produces is a quantified, reviewed disclosure.
	if funcPkgPath(f) == leakagePath {
		return true
	}
	if p, _, ok := recvNamed(f); ok && p == leakagePath {
		return true
	}
	name := f.Name()
	if p, r, ok := recvNamed(f); ok {
		switch p {
		case commutativePath:
			// The commutative encryption f_e and its inverse — any
			// Scheme implementation (PowerFn, Counting, observed
			// wrappers) — and the cached ciphertext accessors (a
			// CachedSet's elements ARE the f_e images).
			if name == "Encrypt" || name == "Decrypt" {
				return true
			}
			if r == "CachedSet" {
				switch name {
				case "Elems", "Payload", "Len", "MemoryBytes", "ApplyDelta":
					return true
				}
			}
		case groupPath:
			// Backend exponentiation is f_e's core: its output is the
			// encrypted image.
			if name == "Apply" || name == "Exp" {
				return true
			}
		case "minshare/internal/oracle":
			// The random oracle h: hashed identifiers are the protocol's
			// wire representation of set elements.
			if strings.HasPrefix(name, "Hash") {
				return true
			}
		case "minshare/internal/kenc":
			// The key-encryption cipher K(kappa, payload): Encrypt is
			// the sanitizer; Decrypt recovers the receiver's permitted
			// payload output (§5.3 — only matched keys decrypt).
			if name == "Encrypt" || name == "Decrypt" {
				return true
			}
		}
		return false
	}
	// Package-level helpers of the commutative package: the parallel and
	// streaming encryption drivers.
	if funcPkgPath(f) == commutativePath {
		switch name {
		case "EncryptAll", "EncryptAllAt", "DecryptAll", "DecryptAllAt",
			"EncryptStream", "DecryptStream":
			return true
		}
	}
	return false
}

// leakSourceCall classifies calls producing raw secret material.
func leakSourceCall(f *types.Func) string {
	if desc := secretExtractor(f); desc != "" {
		return desc
	}
	// Standing-query churn: DeltaSince hands back raw pre-hash rows.
	if p, r, ok := recvNamed(f); ok && p == corePath && r == "DeltaSource" && f.Name() == "DeltaSince" {
		return "a raw set delta (core.DeltaSource.DeltaSince)"
	}
	return ""
}

// coreEntryPoint reports whether f is one of the exported protocol
// entry points taking a party's raw set.
func coreEntryPoint(f *types.Func) bool {
	if funcPkgPath(f) != corePath || f.Type().(*types.Signature).Recv() != nil {
		return false
	}
	switch f.Name() {
	case "IntersectionReceiver", "IntersectionSender",
		"IntersectionSizeReceiver", "IntersectionSizeSender",
		"EquijoinReceiver", "EquijoinSender",
		"EquijoinSizeReceiver", "EquijoinSizeSender",
		"NaiveHashReceiver", "NaiveHashSender",
		"IntersectionReceiverStanding", "IntersectionSenderStanding",
		"EquijoinReceiverStanding", "EquijoinSenderStanding",
		"ThirdPartyPartyA", "ThirdPartyPartyB", "ThirdPartyAnalyst":
		return true
	}
	return false
}

// leakSourceParams seeds the raw-input parameters of the core entry
// points as concrete sources: the party's set before oracle hashing.
func leakSourceParams(f *types.Func) map[string]string {
	if !coreEntryPoint(f) {
		return nil
	}
	return map[string]string{
		"values":  "a raw set element (pre-hash protocol input)",
		"records": "a raw join record (pre-hash protocol input)",
	}
}

// leakDeclassified marks functions whose results are the protocol's
// declared output: the entry points themselves (an intersection result
// IS the permitted disclosure) and the standing-query result accessors
// that surface the same data incrementally.
func leakDeclassified(f *types.Func) bool {
	if coreEntryPoint(f) {
		return true
	}
	if p, r, ok := recvNamed(f); ok && p == corePath {
		switch r {
		case "StandingIntersection", "StandingJoin":
			return true
		}
	}
	return false
}

// leakBenign lists external accessors whose results never carry their
// receiver's taint: sizes and kind tags are permitted information (the
// paper discloses |VR|, |VS| by design).
func leakBenign(f *types.Func) bool {
	if p, _, ok := recvNamed(f); ok && p == wirePath {
		switch f.Name() {
		case "Kind", "String":
			return true
		}
	}
	return false
}

// viaNames renders the intermediate callee names of a finding's chain
// ("send → Encode"), or "" for a direct flow.
func (e *taintEngine) viaNames(f taintFinding) string {
	var names []string
	hop := f.hop
	for i := 0; hop != nil && hop.callee != nil && i < 32; i++ {
		names = append(names, hop.callee.fn.Name())
		next := e.sums[hop.callee].sinks[hop.calleeSlot]
		hop = next
	}
	return strings.Join(names, " → ")
}

// chainFor reconstructs the shortest source→sink path of a finding,
// one "file:line: step" entry per hop — the -why output.
func (e *taintEngine) chainFor(f taintFinding) []string {
	out := []string{
		fmt.Sprintf("%s:%d: source: %s", f.src.pos.Filename, f.src.pos.Line, f.src.desc),
	}
	hop := f.hop
	for i := 0; hop != nil && i < 32; i++ {
		if hop.callee == nil {
			out = append(out, fmt.Sprintf("%s:%d: sink: %s", hop.pos.Filename, hop.pos.Line, hop.sink))
			return out
		}
		out = append(out, fmt.Sprintf("%s:%d: tainted argument passes into %s",
			hop.pos.Filename, hop.pos.Line, hop.callee.fn.Name()))
		hop = e.sums[hop.callee].sinks[hop.calleeSlot]
	}
	return out
}
