package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// SpanPair reports obs spans that are not ended on every return path.
//
// The observability contract (DESIGN §7) is that every phase span
// begun on a path is ended on all paths leaving it: a span left open
// keeps reporting a running duration, skews the per-phase census the
// §6.1 cost cross-checks read, and — for session roots — delays the
// freeze of every child span.  The analyzer tracks each variable
// assigned from obs.StartSpan or Span.StartChild through the enclosing
// function with a structural path walk (if/else, switch, select,
// loops) and reports returns, reassignments and function exits where
// the span is still open.  A `defer sp.End()` ends the span on every
// exit; spans handed to other functions or stored in fields are not
// tracked.
var SpanPair = &Analyzer{
	Name: "spanpair",
	Doc:  "every obs span begun on a path must be ended on all return paths",
	Run:  runSpanPair,
}

// obsPath is the observability package that owns Span.
const obsPath = "minshare/internal/obs"

// spanStatus is the per-track state threaded through the path walk.
// Larger values dominate when branches merge.
type spanStatus int

const (
	spanInactive spanStatus = iota // before the start site
	spanDone                       // tracking resolved (reassigned after End)
	spanEnded                      // End called (or defer-End armed)
	spanActive                     // started, not yet ended
)

// spanTrack is one StartSpan/StartChild site bound to a local variable.
type spanTrack struct {
	obj  types.Object
	name string // variable name, for diagnostics
	pos  token.Position
}

// spanState maps every track discovered so far to its status on the
// current path.
type spanState map[*spanTrack]spanStatus

func (st spanState) clone() spanState {
	c := make(spanState, len(st))
	for k, v := range st {
		c[k] = v
	}
	return c
}

// mergeInto folds other into st, per track, keeping the dominant
// status (active > ended > done > inactive).
func (st spanState) mergeInto(other spanState) {
	for k, v := range other {
		if v > st[k] {
			st[k] = v
		}
	}
}

func runSpanPair(pass *Pass) {
	pass.funcBodies(func(body *ast.BlockStmt, _ *types.Signature) {
		w := &spanWalker{pass: pass}
		st, terminated := w.execList(body.List, spanState{})
		if !terminated {
			for tr, status := range st {
				if status == spanActive {
					pass.Reportf(body.Rbrace,
						"span %s (started at %s:%d) is still open when the function returns",
						tr.name, tr.pos.Filename, tr.pos.Line)
				}
			}
		}
	})
}

// spanWalker performs the structural path analysis over one function
// body.  Nested function literals are skipped: funcBodies hands each
// literal to its own walker.
type spanWalker struct {
	pass *Pass
}

// execList executes a statement list, returning the fall-through state
// and whether every path through the list terminated (returned).
func (w *spanWalker) execList(stmts []ast.Stmt, st spanState) (spanState, bool) {
	for _, s := range stmts {
		var terminated bool
		st, terminated = w.exec(s, st)
		if terminated {
			return st, true
		}
	}
	return st, false
}

func (w *spanWalker) exec(stmt ast.Stmt, st spanState) (spanState, bool) {
	switch s := stmt.(type) {
	case *ast.AssignStmt:
		return w.execAssign(s, st), false

	case *ast.ExprStmt:
		if call, ok := s.X.(*ast.CallExpr); ok {
			if obj := w.endTarget(call); obj != nil {
				w.setStatus(st, obj, spanActive, spanEnded)
			} else if w.isStartCall(call) {
				w.pass.Reportf(s.Pos(), "span result discarded — it can never be ended")
			}
		}
		return st, false

	case *ast.DeferStmt:
		if obj := w.endTarget(s.Call); obj != nil {
			w.setStatus(st, obj, spanActive, spanEnded)
		} else if lit, ok := s.Call.Fun.(*ast.FuncLit); ok {
			// defer func() { ...; sp.End(); ... }()
			ast.Inspect(lit.Body, func(n ast.Node) bool {
				if call, ok := n.(*ast.CallExpr); ok {
					if obj := w.endTarget(call); obj != nil {
						w.setStatus(st, obj, spanActive, spanEnded)
					}
				}
				return true
			})
		}
		return st, false

	case *ast.ReturnStmt:
		for tr, status := range st {
			if status == spanActive {
				w.pass.Reportf(s.Pos(),
					"span %s (started at %s:%d) is not ended on this return path",
					tr.name, tr.pos.Filename, tr.pos.Line)
				st[tr] = spanDone // one report per path suffices
			}
		}
		return st, true

	case *ast.BlockStmt:
		return w.execList(s.List, st)

	case *ast.LabeledStmt:
		return w.exec(s.Stmt, st)

	case *ast.IfStmt:
		if s.Init != nil {
			st, _ = w.exec(s.Init, st)
		}
		thenSt, thenTerm := w.execList(s.Body.List, st.clone())
		elseSt, elseTerm := st, false
		if s.Else != nil {
			elseSt, elseTerm = w.exec(s.Else, st.clone())
		}
		switch {
		case thenTerm && elseTerm:
			return thenSt, true
		case thenTerm:
			return elseSt, false
		case elseTerm:
			return thenSt, false
		default:
			thenSt.mergeInto(elseSt)
			return thenSt, false
		}

	case *ast.ForStmt:
		if s.Init != nil {
			st, _ = w.exec(s.Init, st)
		}
		// The body may run zero times: analyze it for violations, then
		// merge its exit state with the entry state.
		bodySt, _ := w.execList(s.Body.List, st.clone())
		st.mergeInto(bodySt)
		return st, false

	case *ast.RangeStmt:
		bodySt, _ := w.execList(s.Body.List, st.clone())
		st.mergeInto(bodySt)
		return st, false

	case *ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt:
		return w.execClauses(s, st)

	default:
		return st, false
	}
}

// execClauses handles switch, type-switch and select uniformly.
func (w *spanWalker) execClauses(stmt ast.Stmt, st spanState) (spanState, bool) {
	var body *ast.BlockStmt
	exhaustive := false
	switch s := stmt.(type) {
	case *ast.SwitchStmt:
		if s.Init != nil {
			st, _ = w.exec(s.Init, st)
		}
		body = s.Body
	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			st, _ = w.exec(s.Init, st)
		}
		body = s.Body
	case *ast.SelectStmt:
		body = s.Body
		exhaustive = len(s.Body.List) > 0 // some clause always runs
	}
	merged := spanState{}
	allTerm := true
	for _, clause := range body.List {
		var stmts []ast.Stmt
		switch c := clause.(type) {
		case *ast.CaseClause:
			stmts = c.Body
			if c.List == nil {
				exhaustive = true // default clause
			}
		case *ast.CommClause:
			stmts = c.Body
		}
		cSt, cTerm := w.execList(stmts, st.clone())
		if !cTerm {
			allTerm = false
			merged.mergeInto(cSt)
		}
	}
	if exhaustive && allTerm && len(body.List) > 0 {
		return st, true
	}
	if !exhaustive {
		merged.mergeInto(st) // the no-clause-matched path
	}
	return merged, false
}

// execAssign processes starts, reassignments and discards.
func (w *spanWalker) execAssign(s *ast.AssignStmt, st spanState) spanState {
	if len(s.Lhs) != len(s.Rhs) {
		return st
	}
	for i, rhs := range s.Rhs {
		call, isCall := ast.Unparen(rhs).(*ast.CallExpr)
		start := isCall && w.isStartCall(call)
		lhs, isIdent := ast.Unparen(s.Lhs[i]).(*ast.Ident)

		if start && (!isIdent || lhs.Name == "_") {
			w.pass.Reportf(rhs.Pos(), "span result discarded — it can never be ended")
			continue
		}
		if !isIdent {
			continue
		}
		obj := exprObj(w.pass.Pkg, lhs)
		if obj == nil {
			continue
		}
		// Any assignment to a tracked variable resolves its current
		// track: an open span is leaked by the overwrite.
		for tr, status := range st {
			if tr.obj != obj {
				continue
			}
			if status == spanActive {
				w.pass.Reportf(s.Pos(),
					"span %s (started at %s:%d) is overwritten before End — the open span can never be ended",
					tr.name, tr.pos.Filename, tr.pos.Line)
			}
			if status == spanActive || status == spanEnded {
				st[tr] = spanDone
			}
		}
		if start {
			tr := &spanTrack{obj: obj, name: lhs.Name, pos: w.pass.Pkg.Fset.Position(rhs.Pos())}
			st[tr] = spanActive
		}
	}
	return st
}

// setStatus moves every track of obj currently in from to to.
func (w *spanWalker) setStatus(st spanState, obj types.Object, from, to spanStatus) {
	for tr, status := range st {
		if tr.obj == obj && status == from {
			st[tr] = to
		}
	}
}

// isStartCall reports whether call is obs.StartSpan or Span.StartChild.
func (w *spanWalker) isStartCall(call *ast.CallExpr) bool {
	f := calleeFunc(w.pass.Pkg, call)
	if f == nil {
		return false
	}
	switch f.Name() {
	case "StartSpan":
		return funcPkgPath(f) == obsPath
	case "StartChild":
		p, r, ok := recvNamed(f)
		return ok && p == obsPath && r == "Span"
	}
	return false
}

// endTarget returns the local variable whose End method call this is,
// or nil (non-End calls, or End on a non-identifier receiver).
func (w *spanWalker) endTarget(call *ast.CallExpr) types.Object {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "End" {
		return nil
	}
	f := calleeFunc(w.pass.Pkg, call)
	if f == nil {
		return nil
	}
	if p, r, ok := recvNamed(f); !ok || p != obsPath || r != "Span" {
		return nil
	}
	return exprObj(w.pass.Pkg, sel.X)
}
