package analysis

import (
	"go/ast"
	"go/types"
)

// callGraph is the module-wide static call graph the taint engine
// iterates over: one node per function declaration with a body in the
// analyzed package set, edges for every statically resolvable call
// (including calls inside closures, `go` statements and `defer`
// statements — a goroutine edge is a call edge whose results are
// discarded).  Function literals are not separate nodes: their bodies
// belong to the enclosing declaration, so captured-variable taint flows
// through the shared local state.
type callGraph struct {
	// funcs maps a declared function to its definition site.
	funcs map[*types.Func]*funcDef
	// defs lists the definitions in deterministic (package, source)
	// order.
	defs []*funcDef
}

// funcDef is one analyzable function: a declaration with a body.
type funcDef struct {
	fn   *types.Func
	pkg  *Package
	decl *ast.FuncDecl
	sig  *types.Signature
	// callees are the module-local functions this body statically
	// calls.
	callees []*funcDef

	// scc bookkeeping (Tarjan).
	index, lowlink int
	onStack        bool
}

// buildCallGraph collects every function definition in pkgs and links
// the static call edges between them.
func buildCallGraph(pkgs []*Package) *callGraph {
	g := &callGraph{funcs: make(map[*types.Func]*funcDef)}
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				obj, ok := pkg.Info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				sig, ok := obj.Type().(*types.Signature)
				if !ok {
					continue
				}
				def := &funcDef{fn: obj, pkg: pkg, decl: fd, sig: sig, index: -1}
				g.funcs[obj] = def
				g.defs = append(g.defs, def)
			}
		}
	}
	for _, def := range g.defs {
		seen := make(map[*funcDef]bool)
		ast.Inspect(def.decl.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			f := calleeFunc(def.pkg, call)
			if f == nil {
				return true
			}
			if callee, ok := g.funcs[f.Origin()]; ok && !seen[callee] {
				seen[callee] = true
				def.callees = append(def.callees, callee)
			}
			return true
		})
	}
	return g
}

// lookup resolves a called *types.Func (normalizing generic
// instantiations to their origin) to its definition, or nil when the
// body is outside the analyzed set.
func (g *callGraph) lookup(f *types.Func) *funcDef {
	if f == nil {
		return nil
	}
	return g.funcs[f.Origin()]
}

// sccs returns the strongly connected components of the graph in
// reverse topological order: every component appears after all
// components it calls into, so a bottom-up summary pass can process
// the slice front to back with callee summaries always available
// (mutual recursion iterates within one component).
func (g *callGraph) sccs() [][]*funcDef {
	var (
		out   [][]*funcDef
		stack []*funcDef
		next  int
	)
	var strongconnect func(v *funcDef)
	strongconnect = func(v *funcDef) {
		v.index, v.lowlink = next, next
		next++
		stack = append(stack, v)
		v.onStack = true
		for _, w := range v.callees {
			if w.index < 0 {
				strongconnect(w)
				if w.lowlink < v.lowlink {
					v.lowlink = w.lowlink
				}
			} else if w.onStack && w.index < v.lowlink {
				v.lowlink = w.index
			}
		}
		if v.lowlink == v.index {
			var comp []*funcDef
			for {
				w := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				w.onStack = false
				comp = append(comp, w)
				if w == v {
					break
				}
			}
			out = append(out, comp)
		}
	}
	for _, v := range g.defs {
		if v.index < 0 {
			strongconnect(v)
		}
	}
	return out
}
