// Package ignored is the fixture for the lint:ignore escape hatch:
// well-formed directives on the flagged line or the line above
// suppress exactly their analyzer; malformed or mismatched directives
// suppress nothing.
package ignored

import (
	"fmt"

	"minshare/internal/commutative"
)

func suppressedSameLine(k *commutative.Key) {
	fmt.Println(k) // lint:ignore secretlog fixture: same-line suppression
}

func suppressedLineAbove(k *commutative.Key) {
	// lint:ignore secretlog fixture: line-above suppression
	fmt.Println(k)
}

func wrongAnalyzer(k *commutative.Key) {
	// lint:ignore errclose fixture: names the wrong analyzer, so it must not suppress
	fmt.Println(k) // want `secretlog: .*commutative\.Key`
}

func malformed(k *commutative.Key) {
	/* lint:ignore secretlog */ // want `ignore: malformed lint:ignore directive`
	fmt.Println(k) // want `secretlog: .*commutative\.Key`
}

// proseMention has a doc-comment continuation line that begins with
// lint:ignore secretlog yet is plain prose — it sits above another
// comment line, not code, so it must parse as neither a directive nor
// a malformed-directive finding (and must not appear in the audit).
func proseMention() {}
