// Package secretlog is the fixture for the secretlog analyzer: key
// material reaching fmt/log/slog sinks must be flagged; ciphertexts,
// sizes and wrapped errors must not.
package secretlog

import (
	"fmt"
	"log"
	"log/slog"
	"math/big"

	"minshare/internal/commutative"
)

// session looks like protocol state: logging the whole struct leaks the
// embedded key.
type session struct {
	name string
	key  *commutative.Key
}

func positives(k *commutative.Key, cs *commutative.CachedSet, s session) error {
	fmt.Printf("key: %v\n", k)     // want `secretlog: argument 2 of fmt\.Printf carries a value of \(or containing\) commutative\.Key`
	slog.Info("cache", "set", cs)  // want `secretlog: .*commutative\.CachedSet`
	fmt.Println(k.Exponent())      // want `secretlog: .*raw key exponent`
	log.Printf("session: %+v", s)  // want `secretlog: .*containing.*commutative\.Key`
	fmt.Println([]*commutative.Key{k}) // want `secretlog: .*commutative\.Key`
	return fmt.Errorf("bad key %v", k) // want `secretlog: .*commutative\.Key.*error strings`
}

func negatives(s commutative.Scheme, k *commutative.Key, x *big.Int) error {
	y, err := s.Encrypt(k, x)
	if err != nil {
		return fmt.Errorf("encrypt: %w", err) // a wrapped error carries no key material
	}
	fmt.Printf("ciphertext %s has %d bits\n", y.String(), y.BitLen())
	slog.Info("done", "bits", y.BitLen(), "name", "run")
	log.Printf("elements: %d", 3)
	return nil
}
