// Package secretlog is the fixture for the secretlog analyzer: key
// material reaching fmt/log/slog sinks — or the span-annotation surface
// that feeds the flight recorder and trace export — must be flagged;
// ciphertexts, sizes and wrapped errors must not.
package secretlog

import (
	"fmt"
	"log"
	"log/slog"
	"math/big"

	"minshare/internal/commutative"
	"minshare/internal/obs"
)

// session looks like protocol state: logging the whole struct leaks the
// embedded key.
type session struct {
	name string
	key  *commutative.Key
}

func positives(k *commutative.Key, cs *commutative.CachedSet, s session) error {
	fmt.Printf("key: %v\n", k)     // want `secretlog: argument 2 of fmt\.Printf carries a value of \(or containing\) commutative\.Key`
	slog.Info("cache", "set", cs)  // want `secretlog: .*commutative\.CachedSet`
	fmt.Println(k.Exponent())      // want `secretlog: .*raw key exponent`
	log.Printf("session: %+v", s)  // want `secretlog: .*containing.*commutative\.Key`
	fmt.Println([]*commutative.Key{k}) // want `secretlog: .*commutative\.Key`
	return fmt.Errorf("bad key %v", k) // want `secretlog: .*commutative\.Key.*error strings`
}

// annotatePositives: a span annotation is retained by the flight
// recorder and published by /debug/sessions and the trace export, so it
// is a sink of the same severity as a log line.
func annotatePositives(sp *obs.Span, k *commutative.Key, cs *commutative.CachedSet, s session) {
	sp.Annotate("key", k)            // want `secretlog: argument 2 of \(\*obs\.Span\)\.Annotate carries a value of \(or containing\) commutative\.Key — secrets must never reach the flight recorder or trace export`
	sp.Annotate("cache", cs)         // want `secretlog: .*commutative\.CachedSet.*flight recorder or trace export`
	sp.Annotate("exp", k.Exponent()) // want `secretlog: .*raw key exponent.*flight recorder or trace export`
	sp.Annotate("session", s)        // want `secretlog: .*containing.*commutative\.Key`
}

func annotateNegatives(sp *obs.Span, y *big.Int) {
	sp.Annotate("bits", y.BitLen())
	sp.Annotate("ciphertext", y.String())
	sp.Annotate("phase", "exchange")
}

func negatives(s commutative.Scheme, k *commutative.Key, x *big.Int) error {
	y, err := s.Encrypt(k, x)
	if err != nil {
		return fmt.Errorf("encrypt: %w", err) // a wrapped error carries no key material
	}
	fmt.Printf("ciphertext %s has %d bits\n", y.String(), y.BitLen())
	slog.Info("done", "bits", y.BitLen(), "name", "run")
	log.Printf("elements: %d", 3)
	return nil
}
