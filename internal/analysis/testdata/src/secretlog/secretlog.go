// Package secretlog is the fixture for the secretlog analyzer: key
// material reaching fmt/log/slog sinks — or the span-annotation surface
// that feeds the flight recorder and trace export — must be flagged;
// ciphertexts, sizes and wrapped errors must not.
package secretlog

import (
	"fmt"
	"log"
	"log/slog"
	"math/big"

	"minshare/internal/commutative"
	"minshare/internal/group"
	"minshare/internal/obs"
)

// session looks like protocol state: logging the whole struct leaks the
// embedded key.
type session struct {
	name string
	key  *commutative.Key
}

// backendState looks like per-backend protocol state: the embedded raw
// scalar is the key material itself.
type backendState struct {
	backend string
	scalar  *group.Scalar
}

func positives(k *commutative.Key, cs *commutative.CachedSet, s session) error {
	fmt.Printf("key: %v\n", k)     // want `secretlog: argument 2 of fmt\.Printf carries a value of \(or containing\) commutative\.Key`
	slog.Info("cache", "set", cs)  // want `secretlog: .*commutative\.CachedSet`
	fmt.Println(k.Exponent())      // want `secretlog: .*raw key exponent`
	log.Printf("session: %+v", s)  // want `secretlog: .*containing.*commutative\.Key`
	fmt.Println([]*commutative.Key{k}) // want `secretlog: .*commutative\.Key`
	return fmt.Errorf("bad key %v", k) // want `secretlog: .*commutative\.Key.*error strings`
}

// annotatePositives: a span annotation is retained by the flight
// recorder and published by /debug/sessions and the trace export, so it
// is a sink of the same severity as a log line.
func annotatePositives(sp *obs.Span, k *commutative.Key, cs *commutative.CachedSet, s session) {
	sp.Annotate("key", k)            // want `secretlog: argument 2 of \(\*obs\.Span\)\.Annotate carries a value of \(or containing\) commutative\.Key — secrets must never reach the flight recorder or trace export`
	sp.Annotate("cache", cs)         // want `secretlog: .*commutative\.CachedSet.*flight recorder or trace export`
	sp.Annotate("exp", k.Exponent()) // want `secretlog: .*raw key exponent.*flight recorder or trace export`
	sp.Annotate("session", s)        // want `secretlog: .*containing.*commutative\.Key`
}

// scalarPositives: a group.Scalar is the raw key underneath
// commutative.Key for every backend (QR exponent or curve scalar), so
// it gets the same no-log protection, as does the big.Int that
// Scalar.Big hands back.
func scalarPositives(sp *obs.Span, sc *group.Scalar, st backendState) error {
	fmt.Printf("scalar: %v\n", sc) // want `secretlog: argument 2 of fmt\.Printf carries a value of \(or containing\) group\.Scalar`
	fmt.Println(sc.Big())          // want `secretlog: .*raw key scalar \(group\.Scalar\.Big\)`
	slog.Info("state", "s", st)    // want `secretlog: .*containing.*group\.Scalar`
	sp.Annotate("scalar", sc)      // want `secretlog: .*group\.Scalar.*flight recorder or trace export`
	return fmt.Errorf("bad scalar %v", sc) // want `secretlog: .*group\.Scalar.*error strings`
}

// scalarNegatives: backend identity, element widths and wire codes are
// public parameters, not key material.
func scalarNegatives(sp *obs.Span, b group.Backend, code group.Code, elem *big.Int) {
	fmt.Printf("backend %s (%d-bit, code %v)\n", b.Name(), b.Bits(), code)
	slog.Info("element", "bits", elem.BitLen())
	sp.Annotate("backend", b.Name())
}

func annotateNegatives(sp *obs.Span, y *big.Int) {
	sp.Annotate("bits", y.BitLen())
	sp.Annotate("ciphertext", y.String())
	sp.Annotate("phase", "exchange")
}

func negatives(s commutative.Scheme, k *commutative.Key, x *big.Int) error {
	y, err := s.Encrypt(k, x)
	if err != nil {
		return fmt.Errorf("encrypt: %w", err) // a wrapped error carries no key material
	}
	fmt.Printf("ciphertext %s has %d bits\n", y.String(), y.BitLen())
	slog.Info("done", "bits", y.BitLen(), "name", "run")
	log.Printf("elements: %d", 3)
	return nil
}
