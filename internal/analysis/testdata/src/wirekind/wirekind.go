// Package wirekind exercises dispatch-exhaustiveness checking over the
// wire vocabulary: value switches on wire.Kind and type switches on
// wire.Message must cover every defined message kind; a default clause
// does not excuse a missing case, and a documented lint:ignore records
// an upstream filter.
package wirekind

import (
	"minshare/internal/wire"
)

// kindSwitchIncomplete routes only two kinds and hides the rest behind
// a default: the standing-query kinds would be silently dropped.
func kindSwitchIncomplete(k wire.Kind) int {
	switch k { // want `wirekind: switch on wire.Kind does not handle: KindElements, KindError, KindExtPairs, KindStreamBegin, KindStreamChunk, KindStreamEnd, KindStreamExtChunk, KindSubAck, KindSubEnd, KindSubUpdate, KindSubscribe, KindTriples`
	case wire.KindHeader:
		return 1
	case wire.KindPairs:
		return 2
	default:
		return 0
	}
}

// kindSwitchComplete names every kind (KindInvalid is the explicit
// non-kind and is never required).
func kindSwitchComplete(k wire.Kind) bool {
	switch k {
	case wire.KindHeader, wire.KindElements, wire.KindPairs, wire.KindTriples,
		wire.KindExtPairs, wire.KindError,
		wire.KindStreamBegin, wire.KindStreamChunk, wire.KindStreamExtChunk, wire.KindStreamEnd,
		wire.KindSubscribe, wire.KindSubUpdate, wire.KindSubAck, wire.KindSubEnd:
		return true
	default:
		return false
	}
}

// kindSwitchNotWire is a switch over an unrelated integer type: not the
// analyzer's business.
func kindSwitchNotWire(n int) int {
	switch n {
	case 1:
		return 1
	}
	return 0
}

// msgSwitchIncomplete handles the two subscription replies only.
func msgSwitchIncomplete(m wire.Message) uint64 {
	switch am := m.(type) { // want `wirekind: type switch on wire.Message does not handle: wire.Elements, wire.ErrorMsg, wire.ExtPairs, wire.Header, wire.Pairs, wire.StreamBegin, wire.StreamChunk, wire.StreamEnd, wire.StreamExtChunk, wire.SubUpdate, wire.Subscribe, wire.Triples`
	case wire.SubAck:
		return am.Version
	case wire.SubEnd:
		return 0
	}
	return 0
}

// msgSwitchComplete names every message type.
func msgSwitchComplete(m wire.Message) wire.Kind {
	switch m.(type) {
	case wire.Header, wire.Elements, wire.Pairs, wire.Triples, wire.ExtPairs, wire.ErrorMsg,
		wire.StreamBegin, wire.StreamChunk, wire.StreamExtChunk, wire.StreamEnd,
		wire.Subscribe, wire.SubUpdate, wire.SubAck, wire.SubEnd:
		return m.Kind()
	default:
		return wire.KindInvalid
	}
}

// msgSwitchFiltered is the sanctioned escape hatch: an upstream filter
// constrains the kinds, and the directive records that assumption.
func msgSwitchFiltered(m wire.Message) bool {
	// lint:ignore wirekind the caller receives through a filter that admits only subscription replies
	switch m.(type) {
	case wire.SubAck, wire.SubEnd:
		return true
	}
	return false
}
