// Package errclose is the fixture for the errclose analyzer: dropped
// Send/Close/Flush errors on transport/net types must be flagged;
// checked or explicitly discarded ones, and non-transport closers, must
// not.
package errclose

import (
	"context"
	"net"
	"os"

	"minshare/internal/transport"
)

func unchecked(ctx context.Context, conn transport.Conn, ln net.Listener) {
	conn.Send(ctx, []byte("x")) // want `errclose: unchecked error from \(Conn\)\.Send`
	conn.Close()                // want `errclose: unchecked error from \(Conn\)\.Close`
	defer conn.Close()          // want `errclose: deferred error from \(Conn\)\.Close`
	ln.Close()                  // want `errclose: unchecked error from \(Listener\)\.Close`
	go conn.Close()             // want `errclose: goroutine-discarded error from \(Conn\)\.Close`
}

func checked(ctx context.Context, conn transport.Conn) error {
	if err := conn.Send(ctx, []byte("x")); err != nil {
		return err
	}
	_ = conn.Close() // explicit discard is visible and greppable: allowed
	return conn.Close()
}

func suppressed(conn transport.Conn) {
	// lint:ignore errclose fixture: racing unblock close, the error is meaningless
	conn.Close()
}

func outOfScope(f *os.File) {
	f.Close() // os.File is not a wire/transport type: out of scope
}
