// Package errclose is the fixture for the errclose analyzer: dropped
// Send/Close/Flush errors on transport/net types must be flagged;
// checked or explicitly discarded ones, and non-transport closers, must
// not.
package errclose

import (
	"context"
	"net"
	"os"

	"minshare/internal/transport"
)

func unchecked(ctx context.Context, conn transport.Conn, ln net.Listener) {
	conn.Send(ctx, []byte("x")) // want `errclose: unchecked error from \(Conn\)\.Send`
	conn.Close()                // want `errclose: unchecked error from \(Conn\)\.Close`
	defer conn.Close()          // want `errclose: deferred error from \(Conn\)\.Close`
	ln.Close()                  // want `errclose: unchecked error from \(Listener\)\.Close`
	go conn.Close()             // want `errclose: goroutine-discarded error from \(Conn\)\.Close`
}

func checked(ctx context.Context, conn transport.Conn) error {
	if err := conn.Send(ctx, []byte("x")); err != nil {
		return err
	}
	_ = conn.Close() // explicit discard is visible and greppable: allowed
	return conn.Close()
}

func suppressed(conn transport.Conn) {
	// lint:ignore errclose fixture: racing unblock close, the error is meaningless
	conn.Close()
}

func outOfScope(f *os.File) {
	f.Close() // os.File is not a wire/transport type: out of scope
}

// subAckPump is the PR 9 standing-query shape: the serve loop
// acknowledges each SubUpdate and tears the conn down when the
// subscription ends.  The ack Send's error decides whether the sender
// keeps pushing, so dropping it silently desynchronizes the protocol.
func subAckPump(ctx context.Context, conn transport.Conn, updates <-chan []byte) {
	for range updates {
		conn.Send(ctx, []byte("ack")) // want `errclose: unchecked error from \(Conn\)\.Send`
	}
	defer conn.Close() // want `errclose: deferred error from \(Conn\)\.Close`
}

// subAckPumpChecked is the same loop with both errors handled: the ack
// failure ends the subscription, the close failure is reported.
func subAckPumpChecked(ctx context.Context, conn transport.Conn, updates <-chan []byte) error {
	for range updates {
		if err := conn.Send(ctx, []byte("ack")); err != nil {
			break
		}
	}
	return conn.Close()
}
