// Package spanpair is the fixture for the spanpair analyzer: spans must
// be ended on every return path; the repo's sequential End-then-restart
// idiom and defer-End must pass clean.
package spanpair

import (
	"context"
	"errors"

	"minshare/internal/obs"
)

func leaksOnReturn(ctx context.Context, fail bool) error {
	sp := obs.StartSpan(ctx, "phase")
	if fail {
		return errors.New("fail") // want `spanpair: span sp .* is not ended on this return path`
	}
	sp.End()
	return nil
}

func discarded(ctx context.Context) {
	obs.StartSpan(ctx, "phase") // want `spanpair: span result discarded`
}

func discardedBlank(ctx context.Context) {
	_ = obs.StartSpan(ctx, "phase") // want `spanpair: span result discarded`
}

func overwritten(ctx context.Context) {
	sp := obs.StartSpan(ctx, "a")
	sp = obs.StartSpan(ctx, "b") // want `spanpair: span sp .* is overwritten before End`
	sp.End()
}

func leaksAtFallthrough(ctx context.Context) {
	sp := obs.StartSpan(ctx, "phase")
	sp.StartChild("sub").End()
} // want `spanpair: span sp .* is still open when the function returns`

// sequential is the idiom all four protocol cores use: End, reassign,
// End again, with error-path Ends inside the branches.
func sequential(ctx context.Context, fail bool) error {
	sp := obs.StartSpan(ctx, "hash-to-group")
	sp.End()
	if fail {
		return errors.New("fail")
	}
	sp = obs.StartSpan(ctx, "exchange")
	if fail {
		sp.End()
		return errors.New("fail")
	}
	sp.End()
	sp = obs.StartSpan(ctx, "match")
	defer sp.End()
	return nil
}

func deferred(ctx context.Context) {
	sp := obs.StartSpan(ctx, "phase")
	defer sp.End()
}

func deferredClosure(ctx context.Context) {
	sp := obs.StartSpan(ctx, "phase")
	defer func() {
		sp.End()
	}()
}

func immediateChain(ctx context.Context) {
	defer obs.StartSpan(ctx, "whole").End()
}

func child(parent *obs.Span, fail bool) error {
	c := parent.StartChild("sub")
	if fail {
		c.End()
		return errors.New("fail")
	}
	c.End()
	return nil
}

func loops(ctx context.Context, n int) {
	for i := 0; i < n; i++ {
		sp := obs.StartSpan(ctx, "iter")
		sp.End()
	}
	for _, name := range []string{"a", "b"} {
		sp := obs.StartSpan(ctx, name)
		sp.End()
	}
}

func switches(ctx context.Context, mode int) error {
	sp := obs.StartSpan(ctx, "x")
	switch mode {
	case 0:
		sp.End()
		return nil
	default:
		sp.End()
	}
	return nil
}

// annotated: Annotate calls are ordinary span-method uses — they must
// neither count as an End nor disturb the pairing analysis.
func annotated(ctx context.Context, fail bool) error {
	sp := obs.StartSpan(ctx, "phase")
	sp.Annotate("peer", "addr:9000")
	if fail {
		sp.Annotate("outcome", "fail")
		sp.End()
		return errors.New("fail")
	}
	sp.Annotate("outcome", "ok")
	sp.End()
	return nil
}

// annotatedLeak: an Annotate on an open span does not excuse the
// missing End on the early return.
func annotatedLeak(ctx context.Context, fail bool) error {
	sp := obs.StartSpan(ctx, "phase")
	sp.Annotate("peer", "addr:9000")
	if fail {
		return errors.New("fail") // want `spanpair: span sp .* is not ended on this return path`
	}
	sp.End()
	return nil
}

// annotatedChild: trace-aware child spans annotate, then end.
func annotatedChild(parent *obs.Span, n int) {
	c := parent.StartChild("sub")
	c.Annotate("chunks", n)
	c.End()
}

// annotatedDeferred: annotating after a defer-End is the common shape in
// the protocol cores (outcome recorded late, End already scheduled).
func annotatedDeferred(ctx context.Context) {
	sp := obs.StartSpan(ctx, "phase")
	defer sp.End()
	sp.Annotate("k", "v")
}

func selects(ctx context.Context, ch chan int) {
	sp := obs.StartSpan(ctx, "wait")
	select {
	case <-ch:
		sp.End()
	case <-ctx.Done():
		sp.End()
	}
}
