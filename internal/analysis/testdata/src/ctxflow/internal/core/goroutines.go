// Package core is the fixture for the ctxflow goroutine rule: its
// import path sits under internal/core, so every `go func` literal must
// observe cancellation.
package core

import "context"

func spawnBad(work func()) {
	go func() { // want `ctxflow: goroutine does not observe cancellation`
		work()
	}()
}

func spawnCtx(ctx context.Context, work func()) {
	go func() {
		select {
		case <-ctx.Done():
		default:
			work()
		}
	}()
}

func spawnCtxParam(ctx context.Context, work func(context.Context)) {
	go func(ctx context.Context) {
		work(ctx)
	}(ctx)
}

func spawnDone(done chan struct{}, work func()) {
	go func() {
		select {
		case <-done:
		default:
			work()
		}
	}()
}

type server struct {
	quit chan struct{}
}

func (s *server) spawnField(work func()) {
	go func() {
		<-s.quit
		work()
	}()
}
