// The PR 9 standing-query subscriber shape: a pump goroutine that
// forwards received SubUpdates to the serve loop over a channel.  The
// pump must observe cancellation — a subscriber whose peer goes silent
// would otherwise pin the goroutine (and its Conn read) forever.
package core

import "context"

type subMsg struct {
	payload []byte
	err     error
}

type subConn interface {
	Recv(ctx context.Context) ([]byte, error)
}

// subPumpBad is the broken shape: the pump loops on a blocking Recv
// with no ctx and no done channel, so SubEnd from the peer is the only
// way it ever exits.
func subPumpBad(conn func() ([]byte, error), msgs chan subMsg) {
	go func() { // want `ctxflow: goroutine does not observe cancellation`
		for {
			b, err := conn()
			msgs <- subMsg{payload: b, err: err}
			if err != nil {
				return
			}
		}
	}()
}

// subPump is the PR 9 shape as shipped: the pump passes ctx into Recv
// and quits when the subscription is cancelled.
func subPump(ctx context.Context, conn subConn, msgs chan subMsg) {
	go func() {
		defer close(msgs)
		for {
			b, err := conn.Recv(ctx)
			select {
			case msgs <- subMsg{payload: b, err: err}:
			case <-ctx.Done():
				return
			}
			if err != nil {
				return
			}
		}
	}()
}

// subServeDetached drops cancellation at the serve-loop boundary: the
// pump gets a fresh Background even though the subscriber's ctx is
// right there.
func subServeDetached(ctx context.Context, conn subConn, msgs chan subMsg) {
	subPump(context.Background(), conn, msgs) // want `ctxflow: context.Background\(\) passed to subPump while the caller receives a ctx`
}
