// Shard-fanout and mux-pump goroutine shapes (the PR 8 coordinator and
// shard-multiplexed transport): per-shard workers and connection pumps
// are long-lived protocol goroutines, so each must observe cancellation
// — a WaitGroup alone only delays the leak report, it cannot unblock a
// worker pinned on a stalled peer.
package core

import (
	"context"
	"sync"
)

func shardFanout(ctx context.Context, shards int, run func(context.Context, int) error) {
	sctx, cancel := context.WithCancel(ctx)
	defer cancel()
	var wg sync.WaitGroup
	for i := 0; i < shards; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := run(sctx, i); err != nil {
				cancel()
			}
		}()
	}
	wg.Wait()
}

func shardFanoutUncancellable(shards int, run func(int)) {
	var wg sync.WaitGroup
	for i := 0; i < shards; i++ {
		i := i
		wg.Add(1)
		go func() { // want `ctxflow: goroutine does not observe cancellation`
			defer wg.Done()
			run(i)
		}()
	}
	wg.Wait()
}

type mux struct {
	ctx  context.Context
	stop chan struct{}
}

// demuxPump reads frames through a context-accepting Recv: referencing
// the mux's ctx field counts as observing cancellation.
func (m *mux) demuxPump(recv func(context.Context) ([]byte, error), deliver func([]byte)) {
	go func() {
		for {
			f, err := recv(m.ctx)
			if err != nil {
				return
			}
			deliver(f)
		}
	}()
}

// creditPump returns flow-control credits until the mux stops; the stop
// channel is its cancellation signal.
func (m *mux) creditPump(send func(shard byte)) {
	go func() {
		for {
			select {
			case <-m.stop:
				return
			default:
				send(0)
			}
		}
	}()
}

func (m *mux) pumpWithoutSignal(send func(shard byte)) {
	go func() { // want `ctxflow: goroutine does not observe cancellation`
		for {
			send(0)
		}
	}()
}
