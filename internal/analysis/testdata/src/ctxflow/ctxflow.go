// Package ctxflow is the fixture for the ctxflow context-propagation
// rule: a function holding a ctx must not hand callees a fresh
// Background/TODO context.
package ctxflow

import (
	"context"
	"time"
)

func callee(ctx context.Context) error { return ctx.Err() }

func drops(ctx context.Context) error {
	return callee(context.Background()) // want `ctxflow: context\.Background\(\) passed to callee`
}

func todoDrops(ctx context.Context) error {
	return callee(context.TODO()) // want `ctxflow: context\.TODO\(\) passed to callee`
}

func dropsInClosure(ctx context.Context) func() error {
	// The closure lexically captures ctx, so it counts as receiving one.
	return func() error {
		return callee(context.Background()) // want `ctxflow: context\.Background\(\)`
	}
}

func passes(ctx context.Context) error {
	return callee(ctx)
}

func derived(ctx context.Context) error {
	c, cancel := context.WithTimeout(ctx, time.Second)
	defer cancel()
	return callee(c)
}

func detachedForDrain(ctx context.Context) error {
	// Intentional detachment goes through WithoutCancel: values and
	// auditability are kept, so this must not be flagged.
	return callee(context.WithoutCancel(ctx))
}

func noCtxInScope() error {
	// Without a ctx parameter anywhere in scope, Background is the only
	// sane root.
	return callee(context.Background())
}
