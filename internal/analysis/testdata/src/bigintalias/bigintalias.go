// Package bigintalias is the fixture for the bigintalias analyzer:
// in-place mutation of values aliased from CachedSet accessors must be
// flagged; mutation of fresh copies must not.
package bigintalias

import (
	"math/big"

	"minshare/internal/commutative"
	"minshare/internal/group"
)

func positives(cs *commutative.CachedSet) {
	elems := cs.Elems()
	elems[0].Add(elems[0], big.NewInt(1)) // want `bigintalias: in-place big\.Int mutation \(Add\)`
	e := elems[1]
	e.SetInt64(0) // want `bigintalias: .*\(SetInt64\)`
	cs.Elems()[2].Exp(cs.Elems()[2], big.NewInt(2), nil) // want `bigintalias: .*\(Exp\)`
	for _, v := range cs.Elems() {
		v.Set(big.NewInt(0)) // want `bigintalias: .*\(Set\)`
	}
}

func negatives(cs *commutative.CachedSet, x *big.Int) *big.Int {
	// A fresh copy taken before mutation is the sanctioned pattern.
	cp := new(big.Int).Set(cs.Elems()[0])
	cp.Add(cp, big.NewInt(1))

	// Unrelated big.Ints mutate freely.
	y := new(big.Int).Set(x)
	y.Exp(y, big.NewInt(2), nil)

	// Key.Exponent documents that it returns a copy.
	exp := cs.Key().Exponent()
	exp.Add(exp, big.NewInt(1))

	// Rebinding a tainted variable to a fresh copy clears the taint.
	e := cs.Elems()[0]
	e = new(big.Int).Set(e)
	e.Sub(e, big.NewInt(1))

	// Reading accessors without mutating is fine.
	_ = cs.Elems()[0].Cmp(x)
	_ = cs.Payload()
	return cp
}

// natPositives: Modulus.One returns a Nat aliasing the Modulus's
// precomputed Montgomery constant, so the Nat mutators get the same
// no-shared-mutation treatment as big.Int mutators on cache state.
func natPositives(m *group.Modulus, a, b *group.Nat, v *big.Int) {
	one := m.One()
	one.SetBig(m, v) // want `bigintalias: in-place group\.Nat mutation \(SetBig\)`
	m.One().MontMul(m, a, b) // want `bigintalias: .*\(MontMul\)`
	n := m.One()
	n.Set(a) // want `bigintalias: .*\(Set\)`
}

// natNegatives: fresh Nats mutate freely, the sanctioned copy pattern
// clears the taint, and non-mutating reads of One are fine.
func natNegatives(m *group.Modulus, a, b *group.Nat, v *big.Int) *big.Int {
	scratch := group.NewNat(m)
	scratch.SetBig(m, v)
	scratch.MontMul(m, scratch, a)

	// Copy-then-mutate is the sanctioned pattern.
	cp := group.NewNat(m).Set(m.One())
	cp.MontMul(m, cp, b)

	// Rebinding a tainted variable to a fresh copy clears the taint.
	n := m.One()
	n = group.NewNat(m).Set(n)
	n.Set(a)

	// Leaving Montgomery form reads without mutating.
	return m.One().Big(m)
}
