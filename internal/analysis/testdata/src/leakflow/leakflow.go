// Package leakflow exercises the interprocedural taint engine: taint
// crossing function boundaries, carried through struct fields, channels
// and goroutines, cleared by sanitizers, and suppressed by documented
// lint:ignore directives.  Sites without a want comment are the
// negative half of each shape: the analyzer must stay silent there.
package leakflow

import (
	"context"
	"fmt"
	"math/big"

	"minshare/internal/commutative"
	"minshare/internal/oracle"
	"minshare/internal/transport"
	"minshare/internal/wire"
)

// ---- cross-function taint -------------------------------------------

// shout launders its argument through an interface{} parameter: the
// static type at the fmt sink is any, so only interprocedural analysis
// can connect it back to a secret.
func shout(v any) {
	fmt.Println(v)
}

func crossFunctionLeak(k *commutative.Key) {
	shout(k) // want `leakflow: unsanitized flow of a value of \(or containing\) commutative.Key into fmt.Println \(via shout\)`
}

func crossFunctionClean(n int) {
	shout(n) // a plain int is not a secret: no finding
}

// wrap launders a secret through a return value instead of a parameter.
func wrap(k *commutative.Key) any { return k }

func returnLaunderedLeak(k *commutative.Key) {
	fmt.Println(wrap(k)) // want `leakflow: unsanitized flow of a value of \(or containing\) commutative.Key into fmt.Println`
}

// ---- struct-field taint ---------------------------------------------

type vault struct {
	exp  *big.Int
	hash *big.Int
}

// fill stores raw key material into a field in one function …
func fill(v *vault, k *commutative.Key) {
	v.exp = k.Exponent()
}

// … and spill reads it back out in another: the flow exists only
// through the module-wide field relation.
func spill(ctx context.Context, v *vault, conn transport.Conn) {
	_ = conn.Send(ctx, v.exp.Bytes()) // want `leakflow: unsanitized flow of a raw key exponent \(commutative.Key.Exponent\) into transport Send`
}

// fillHashed stores an oracle-hashed value instead: the hash is the
// protocol's wire representation, so reading it back is clean.
func fillHashed(v *vault, o *oracle.Oracle, payload []byte) {
	v.hash = o.Hash(payload)
}

func spillHashed(ctx context.Context, v *vault, conn transport.Conn) {
	_ = conn.Send(ctx, v.hash.Bytes()) // sanitized at the store: no finding
}

// ---- goroutine- and channel-carried taint ---------------------------

func goroutineLeak(k *commutative.Key) {
	exp := k.Exponent()
	go func(x *big.Int) {
		fmt.Println(x) // want `leakflow: unsanitized flow of a raw key exponent \(commutative.Key.Exponent\) into fmt.Println`
	}(exp)
}

func channelLeak(ctx context.Context, k *commutative.Key, conn transport.Conn) {
	ch := make(chan *big.Int, 1)
	ch <- k.Exponent()
	go func() {
		v := <-ch
		_ = conn.Send(ctx, v.Bytes()) // want `leakflow: unsanitized flow of a raw key exponent \(commutative.Key.Exponent\) into transport Send`
	}()
}

func goroutineClean(ctx context.Context, o *oracle.Oracle, payload []byte, conn transport.Conn) {
	h := o.Hash(payload)
	go func(x *big.Int) {
		_ = conn.Send(ctx, x.Bytes()) // hashed before the goroutine: no finding
	}(h)
}

// ---- sanitizer clearing ---------------------------------------------

// encryptThenSend is the protocol's own shape: hash through the oracle,
// apply the commutative encryption, ship the image.  Every hop is
// sanitized, so the whole chain is clean.
func encryptThenSend(ctx context.Context, s commutative.Scheme, k *commutative.Key, o *oracle.Oracle, payload []byte, conn transport.Conn) error {
	x := o.Hash(payload)
	y, err := s.Encrypt(k, x)
	if err != nil {
		return err
	}
	return conn.Send(ctx, y.Bytes())
}

// rawSend skips the sanitizers: the same value reaches the same sink
// unhashed and unencrypted.
func rawSend(ctx context.Context, k *commutative.Key, conn transport.Conn) error {
	exp := k.Exponent()
	return conn.Send(ctx, exp.Bytes()) // want `leakflow: unsanitized flow of a raw key exponent \(commutative.Key.Exponent\) into transport Send`
}

// encodeLeak puts raw key material into a wire message: serialization
// is not encryption, so the Codec encoder is a sink too.
func encodeLeak(c *wire.Codec, k *commutative.Key) ([]byte, error) {
	return c.Encode(wire.Elements{Elems: []*big.Int{k.Exponent()}}) // want `leakflow: unsanitized flow of a raw key exponent \(commutative.Key.Exponent\) into \(\*wire.Codec\).Encode`
}

// ---- suppression ----------------------------------------------------

func suppressedLeak(k *commutative.Key) {
	exp := k.Exponent()
	// lint:ignore leakflow fixture demonstrates a reviewed, documented suppression
	fmt.Println(exp.String())
}

// ---- division of labor with secretlog -------------------------------

// directSecretTypedArg is secretlog's finding (a local, type-level
// fact): leakflow must not double-report it.
func directSecretTypedArg(k *commutative.Key) {
	fmt.Println(k) // secretlog's site, not leakflow's: no leakflow finding
}
