package leakflow

import (
	"context"
	"math/big"

	"minshare/internal/commutative"
	"minshare/internal/transport"
)

// setter-laundered field store: the concrete source only reaches the
// field through a helper's parameter.
func store(v *vault, x *big.Int) {
	v.exp = x
}

func setterLaunderedFieldLeak(ctx context.Context, v *vault, k *commutative.Key, conn transport.Conn) {
	store(v, k.Exponent())
	_ = conn.Send(ctx, v.exp.Bytes()) // want `leakflow: unsanitized flow`
}
