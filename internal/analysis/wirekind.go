package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// WireKind enforces dispatch exhaustiveness over the wire vocabulary:
// every switch on a wire.Kind tag and every type switch on the
// wire.Message interface must name every message kind the protocol
// defines — including the standing-query kinds (Subscribe, SubUpdate,
// SubAck, SubEnd) that arrived after the original dispatch sites were
// written.
//
// A default clause does not excuse a missing case: defaults are the
// malformed-input error path, and routing a well-formed kind into it is
// exactly the silent-drop bug this analyzer exists to catch (a peer
// that ignores a SubEnd leaks a subscription forever; one that ignores
// an Error message hangs).  A dispatch site that deliberately handles a
// subset — because an upstream filter already constrained the kinds —
// records that rationale with a lint:ignore directive, which keeps the
// filtering assumption reviewable next to the switch it licenses.
//
// The kind and message vocabularies are read from the wire package's
// own scope (every Kind constant except KindInvalid; every exported
// named type implementing Message), so adding a wire message
// automatically re-checks every dispatch switch in the module.
var WireKind = &Analyzer{
	Name: "wirekind",
	Doc: "every switch over wire.Kind and every type switch over " +
		"wire.Message must handle every defined message kind (standing-query " +
		"kinds included); defaults are for malformed input, not for silently " +
		"dropping well-formed kinds",
	Run: runWireKind,
}

func runWireKind(pass *Pass) {
	pass.inspect(func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.SwitchStmt:
			checkKindSwitch(pass, n)
		case *ast.TypeSwitchStmt:
			checkMessageSwitch(pass, n)
		}
		return true
	})
}

// wireKindTag reports whether t is the wire package's Kind type,
// returning its package scope.
func wireKindTag(t types.Type) (*types.Scope, bool) {
	if t == nil {
		return nil, false
	}
	named, ok := types.Unalias(t).(*types.Named)
	if !ok {
		return nil, false
	}
	obj := named.Obj()
	if obj.Name() != "Kind" || obj.Pkg() == nil || obj.Pkg().Path() != wirePath {
		return nil, false
	}
	return obj.Pkg().Scope(), true
}

// checkKindSwitch verifies a value switch whose tag is a wire.Kind
// against the full constant set of the wire package.
func checkKindSwitch(pass *Pass, sw *ast.SwitchStmt) {
	if sw.Tag == nil {
		return
	}
	tagType := typeOf(pass.Pkg, sw.Tag)
	scope, ok := wireKindTag(tagType)
	if !ok {
		return
	}
	// The required vocabulary: every Kind constant except the explicit
	// non-kind KindInvalid.
	required := make(map[types.Object]string)
	for _, name := range scope.Names() {
		c, ok := scope.Lookup(name).(*types.Const)
		if !ok || name == "KindInvalid" {
			continue
		}
		if _, isKind := wireKindTag(c.Type()); isKind {
			required[c] = name
		}
	}
	for _, stmt := range sw.Body.List {
		clause, ok := stmt.(*ast.CaseClause)
		if !ok {
			continue
		}
		for _, e := range clause.List {
			var obj types.Object
			switch e := ast.Unparen(e).(type) {
			case *ast.Ident:
				obj = pass.Pkg.Info.Uses[e]
			case *ast.SelectorExpr: // qualified: wire.KindHeader
				obj = pass.Pkg.Info.Uses[e.Sel]
			}
			if obj != nil {
				delete(required, obj)
			}
		}
	}
	if len(required) > 0 {
		pass.Reportf(sw.Pos(),
			"switch on wire.Kind does not handle: %s — every dispatch must cover "+
				"every message kind (or record the upstream filter with lint:ignore)",
			joinSortedValues(required))
	}
}

// checkMessageSwitch verifies a type switch over the wire.Message
// interface against every wire type implementing it.
func checkMessageSwitch(pass *Pass, sw *ast.TypeSwitchStmt) {
	var assert *ast.TypeAssertExpr
	switch s := sw.Assign.(type) {
	case *ast.ExprStmt:
		assert, _ = s.X.(*ast.TypeAssertExpr)
	case *ast.AssignStmt:
		if len(s.Rhs) == 1 {
			assert, _ = s.Rhs[0].(*ast.TypeAssertExpr)
		}
	}
	if assert == nil {
		return
	}
	t := typeOf(pass.Pkg, assert.X)
	if t == nil {
		return
	}
	named, ok := types.Unalias(t).(*types.Named)
	if !ok {
		return
	}
	obj := named.Obj()
	if obj.Name() != "Message" || obj.Pkg() == nil || obj.Pkg().Path() != wirePath {
		return
	}
	iface, ok := named.Underlying().(*types.Interface)
	if !ok {
		return
	}
	// The required vocabulary: every exported named wire type whose
	// value or pointer form implements Message.
	scope := obj.Pkg().Scope()
	required := make(map[types.Object]string)
	for _, name := range scope.Names() {
		tn, ok := scope.Lookup(name).(*types.TypeName)
		if !ok || !tn.Exported() || tn == obj {
			continue
		}
		nt, ok := tn.Type().(*types.Named)
		if !ok {
			continue
		}
		if types.Implements(nt, iface) || types.Implements(types.NewPointer(nt), iface) {
			required[tn] = "wire." + name
		}
	}
	for _, stmt := range sw.Body.List {
		clause, ok := stmt.(*ast.CaseClause)
		if !ok {
			continue
		}
		for _, e := range clause.List {
			ct := typeOf(pass.Pkg, e)
			if ct == nil {
				continue
			}
			if nt, ok := types.Unalias(deref(ct)).(*types.Named); ok {
				delete(required, nt.Obj())
			}
		}
	}
	if len(required) > 0 {
		pass.Reportf(sw.Pos(),
			"type switch on wire.Message does not handle: %s — every dispatch must "+
				"cover every message kind (or record the upstream filter with lint:ignore)",
			joinSortedValues(required))
	}
}

// joinSortedValues renders a set's display names in stable order.
func joinSortedValues[K comparable](m map[K]string) string {
	names := make([]string, 0, len(m))
	for _, v := range m {
		names = append(names, v)
	}
	// Insertion sort: the sets are tiny.
	for i := 1; i < len(names); i++ {
		for j := i; j > 0 && names[j] < names[j-1]; j-- {
			names[j], names[j-1] = names[j-1], names[j]
		}
	}
	return strings.Join(names, ", ")
}
