package analysis

import (
	"fmt"
	"path/filepath"
	"regexp"
	"testing"
)

// fixtureModule is the import-path root under which the fixture
// packages in testdata/src live.
const fixtureModule = "fixture"

// loadFixture type-checks one fixture package.  The real repo module is
// registered too, so fixtures can import the actual commutative, obs
// and transport packages and exercise the analyzers against the genuine
// types.
func loadFixture(t *testing.T, pkgPath string) *Package {
	t.Helper()
	l := NewLoader()
	if _, err := l.AddModuleFromGoMod(filepath.Join("..", "..")); err != nil {
		t.Fatalf("registering repo module: %v", err)
	}
	l.AddModule(fixtureModule, filepath.Join("testdata", "src"))
	pkg, err := l.LoadPath(pkgPath)
	if err != nil {
		t.Fatalf("loading %s: %v", pkgPath, err)
	}
	return pkg
}

// runFixture runs the analyzers over a fixture package and checks its
// findings against the package's // want "regexp" comments: every
// diagnostic must be expected by a want on its line, and every want
// must be matched by a diagnostic.  Patterns match against
// "analyzer: message".
func runFixture(t *testing.T, analyzers []*Analyzer, pkgPath string) {
	t.Helper()
	pkg := loadFixture(t, pkgPath)
	diags := Run([]*Package{pkg}, analyzers)

	type want struct {
		re      *regexp.Regexp
		matched bool
	}
	wants := make(map[string][]*want)
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				pat, ok := wantPattern(c)
				if !ok {
					continue
				}
				re, err := regexp.Compile(pat)
				if err != nil {
					t.Fatalf("%s: bad want pattern %q: %v", pkg.Fset.Position(c.Pos()), pat, err)
				}
				pos := pkg.Fset.Position(c.Pos())
				key := fmt.Sprintf("%s:%d", pos.Filename, pos.Line)
				wants[key] = append(wants[key], &want{re: re})
			}
		}
	}

	for _, d := range diags {
		key := fmt.Sprintf("%s:%d", d.Pos.Filename, d.Pos.Line)
		text := d.Analyzer + ": " + d.Message
		matched := false
		for _, w := range wants[key] {
			if !w.matched && w.re.MatchString(text) {
				w.matched = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("unexpected diagnostic:\n  %s", d)
		}
	}
	for key, ws := range wants {
		for _, w := range ws {
			if !w.matched {
				t.Errorf("%s: expected a diagnostic matching %q, got none", key, w.re)
			}
		}
	}
}
