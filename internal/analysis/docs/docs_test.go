package docs

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func write(t *testing.T, root, rel, content string) {
	t.Helper()
	path := filepath.Join(root, rel)
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, []byte(content), 0o600); err != nil {
		t.Fatal(err)
	}
}

func TestDeepDocsFlagFieldsAndMethods(t *testing.T) {
	root := t.TempDir()
	// group is a DeepDocPackages member: undocumented exported fields
	// and interface methods must be flagged; documented and unexported
	// ones must not.
	write(t, root, "internal/group/g.go", `// Package group is a fixture.
package group

// Params is documented.
type Params struct {
	// Bits is documented.
	Bits int
	Raw  []byte // trailing comments satisfy godoc too
	Gap  int
	priv int
}

// Backend is documented.
type Backend interface {
	// Name is documented.
	Name() string
	Open() error
}
`)
	// core is not in DeepDocPackages: the same shape is clean.
	write(t, root, "internal/core/c.go", `// Package core is a fixture.
package core

// Config is documented.
type Config struct {
	Undocumented int
}
`)
	problems, err := CheckGoDocs(filepath.Join(root, "internal"))
	if err != nil {
		t.Fatal(err)
	}
	var got []string
	for _, p := range problems {
		got = append(got, p[strings.LastIndex(p, "exported"):])
	}
	want := []string{
		"exported field Params.Gap has no doc comment",
		"exported method Backend.Open has no doc comment",
	}
	if len(got) != len(want) {
		t.Fatalf("problems = %q, want %q", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("problem[%d] = %q, want %q", i, got[i], want[i])
		}
	}
}

const validRecord = `{"benchmark": "BenchmarkX", "command": "make bench-x", "date": "2026-08-08"}`

func TestBenchHistoryInSync(t *testing.T) {
	root := t.TempDir()
	write(t, root, "BENCH_PR1.json", validRecord)
	write(t, root, "EXPERIMENTS.md", "| [BENCH_PR1.json](BENCH_PR1.json) | x | y | `make bench-x` |\n")
	problems, err := CheckBenchHistory(root)
	if err != nil {
		t.Fatal(err)
	}
	if len(problems) != 0 {
		t.Errorf("in-sync tree reported %q", problems)
	}
}

func TestBenchHistoryDrift(t *testing.T) {
	root := t.TempDir()
	// A record without a row, a row without a record, and a record
	// missing its reproduction fields.
	write(t, root, "BENCH_PR1.json", validRecord)
	write(t, root, "BENCH_PR2.json", `{"benchmark": "B"}`)
	write(t, root, "EXPERIMENTS.md", strings.Join([]string{
		"| [BENCH_PR2.json](BENCH_PR2.json) | x | y | z |",
		"| [BENCH_PR9.json](BENCH_PR9.json) | phantom | y | z |",
	}, "\n"))
	problems, err := CheckBenchHistory(root)
	if err != nil {
		t.Fatal(err)
	}
	wantSubstrings := []string{
		"missing record \"BENCH_PR9.json\"",
		"no benchmark-history row",
		"lacks the \"command\" field",
		"lacks the \"date\" field",
	}
	for _, want := range wantSubstrings {
		found := false
		for _, p := range problems {
			if strings.Contains(p, want) {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("no problem mentions %q in %q", want, problems)
		}
	}
}

func TestBenchHistoryNoExperimentsFile(t *testing.T) {
	problems, err := CheckBenchHistory(t.TempDir())
	if err != nil || len(problems) != 0 {
		t.Errorf("empty tree: problems=%q err=%v", problems, err)
	}
}
