// Package docs implements the repo's documentation lint: every exported
// top-level identifier in the internal/* packages must carry a doc
// comment (with DeepDocPackages additionally checked down to exported
// struct fields and interface methods), every intra-repository link in
// the *.md files must resolve, and the EXPERIMENTS.md benchmark-history
// table must stay in sync with the committed BENCH_*.json records.  It
// backs both cmd/docscheck (the standalone driver) and cmd/psilint,
// which folds these checks into the same exit-code contract as the
// protocol-safety analyzers so `make check` surfaces doc and lint
// findings in one pass.
//
// Every violation is reported, each addressed as "file:line: message";
// a file that fails to parse is itself reported as a violation at its
// position rather than aborting the walk, so one broken file cannot
// hide the findings in the rest of the tree.
package docs

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/scanner"
	"go/token"
	"io/fs"
	"net/url"
	"os"
	"path/filepath"
	"strings"
)

// CheckAll runs both documentation checks under root and returns every
// violation.  The error return is reserved for environmental failures
// (an unreadable tree); per-file problems are violations, not errors.
func CheckAll(root string) ([]string, error) {
	problems, err := CheckGoDocs(filepath.Join(root, "internal"))
	if err != nil {
		return nil, err
	}
	more, err := CheckMarkdownLinks(root)
	if err != nil {
		return nil, err
	}
	problems = append(problems, more...)
	bench, err := CheckBenchHistory(root)
	if err != nil {
		return nil, err
	}
	return append(problems, bench...), nil
}

// DeepDocPackages names the packages (directories under internal/)
// held to the deeper standard: beyond top-level declarations, exported
// struct fields and interface methods of exported types must carry doc
// comments too.  These are the packages whose types cross the
// wire-format and group-abstraction boundaries, where an undocumented
// field is a protocol detail lost.
var DeepDocPackages = map[string]bool{
	"group":     true,
	"ec25519":   true,
	"transport": true,
}

// CheckGoDocs walks every non-test Go file under dir (skipping testdata
// and hidden directories) and reports exported top-level declarations
// without a doc comment.  Grouped declarations (var/const blocks) are
// satisfied by a comment on either the group or the individual spec,
// matching godoc's own resolution.  Files that fail to parse are
// reported as violations and the walk continues.  Packages named in
// DeepDocPackages are additionally checked field-by-field.
func CheckGoDocs(dir string) ([]string, error) {
	var problems []string
	fset := token.NewFileSet()
	err := filepath.WalkDir(dir, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			if name := d.Name(); strings.HasPrefix(name, ".") || name == "testdata" {
				if path != dir {
					return filepath.SkipDir
				}
			}
			return nil
		}
		if !strings.HasSuffix(path, ".go") || strings.HasSuffix(path, "_test.go") {
			return nil
		}
		f, perr := parser.ParseFile(fset, path, nil, parser.ParseComments)
		if perr != nil {
			problems = append(problems, parseProblems(path, perr)...)
			return nil
		}
		deep := DeepDocPackages[filepath.Base(filepath.Dir(path))]
		for _, decl := range f.Decls {
			switch d := decl.(type) {
			case *ast.FuncDecl:
				// Methods count too: an exported method on an exported
				// type is API surface.
				if d.Name.IsExported() && d.Doc == nil && exportedReceiver(d) {
					problems = append(problems, undocumented(fset, d.Pos(), d.Name.Name))
				}
			case *ast.GenDecl:
				for _, spec := range d.Specs {
					switch sp := spec.(type) {
					case *ast.TypeSpec:
						if sp.Name.IsExported() && d.Doc == nil && sp.Doc == nil {
							problems = append(problems, undocumented(fset, sp.Pos(), sp.Name.Name))
						}
						if deep && sp.Name.IsExported() {
							problems = append(problems, deepTypeProblems(fset, sp)...)
						}
					case *ast.ValueSpec:
						for _, name := range sp.Names {
							if name.IsExported() && d.Doc == nil && sp.Doc == nil {
								problems = append(problems, undocumented(fset, name.Pos(), name.Name))
							}
						}
					}
				}
			}
		}
		return nil
	})
	return problems, err
}

// deepTypeProblems applies the field-level standard to one exported
// type: every exported struct field and every exported interface method
// needs a doc comment (a leading doc or a trailing line comment both
// satisfy godoc).  Embedded fields and embedded interfaces are skipped —
// their documentation lives with the embedded type.
func deepTypeProblems(fset *token.FileSet, sp *ast.TypeSpec) []string {
	var problems []string
	report := func(f *ast.Field, name string, kind string) {
		if f.Doc == nil && f.Comment == nil {
			p := fset.Position(f.Pos())
			problems = append(problems, fmt.Sprintf("%s:%d: exported %s %s.%s has no doc comment", p.Filename, p.Line, kind, sp.Name.Name, name))
		}
	}
	switch t := sp.Type.(type) {
	case *ast.StructType:
		for _, f := range t.Fields.List {
			for _, name := range f.Names {
				if name.IsExported() {
					report(f, name.Name, "field")
				}
			}
		}
	case *ast.InterfaceType:
		for _, f := range t.Methods.List {
			// Methods have names; embedded interfaces do not.
			for _, name := range f.Names {
				if name.IsExported() {
					report(f, name.Name, "method")
				}
			}
		}
	}
	return problems
}

// parseProblems renders a parse failure as one violation per syntax
// error, each with its own file:line, so a single broken file reports
// everything it can instead of stopping the run.
func parseProblems(path string, err error) []string {
	if list, ok := err.(scanner.ErrorList); ok {
		out := make([]string, 0, len(list))
		for _, e := range list {
			out = append(out, fmt.Sprintf("%s:%d: syntax error: %s", e.Pos.Filename, e.Pos.Line, e.Msg))
		}
		return out
	}
	return []string{fmt.Sprintf("%s:1: parse error: %v", path, err)}
}

// exportedReceiver reports whether fn is a plain function or a method
// whose receiver type is itself exported — methods on unexported types
// are not godoc surface.
func exportedReceiver(fn *ast.FuncDecl) bool {
	if fn.Recv == nil || len(fn.Recv.List) == 0 {
		return true
	}
	t := fn.Recv.List[0].Type
	if star, ok := t.(*ast.StarExpr); ok {
		t = star.X
	}
	if idx, ok := t.(*ast.IndexExpr); ok { // generic receiver T[P]
		t = idx.X
	}
	id, ok := t.(*ast.Ident)
	return !ok || id.IsExported()
}

func undocumented(fset *token.FileSet, pos token.Pos, name string) string {
	p := fset.Position(pos)
	return fmt.Sprintf("%s:%d: exported %s has no doc comment", p.Filename, p.Line, name)
}

// CheckMarkdownLinks resolves every [text](target) in the repo's
// markdown files.  External schemes, pure fragments and mailto links
// are skipped; everything else must name an existing file or directory
// relative to the markdown file (a #fragment suffix is stripped first).
func CheckMarkdownLinks(root string) ([]string, error) {
	var problems []string
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			if name := d.Name(); name != "." && (strings.HasPrefix(name, ".") || name == "testdata") {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(path, ".md") {
			return nil
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		for _, lk := range markdownLinks(string(data)) {
			target := lk.target
			if skipLink(target) {
				continue
			}
			if i := strings.IndexByte(target, '#'); i >= 0 {
				target = target[:i]
			}
			if target == "" {
				continue
			}
			resolved := filepath.Join(filepath.Dir(path), filepath.FromSlash(target))
			if _, err := os.Stat(resolved); err != nil {
				problems = append(problems, fmt.Sprintf("%s:%d: broken link %q", path, lk.line, target))
			}
		}
		return nil
	})
	return problems, err
}

// skipLink reports whether target points outside the repository.
func skipLink(target string) bool {
	if strings.HasPrefix(target, "#") || strings.HasPrefix(target, "mailto:") {
		return true
	}
	if u, err := url.Parse(target); err == nil && u.Scheme != "" {
		return true
	}
	return false
}

// link is one inline markdown link occurrence.
type link struct {
	line   int
	target string
}

// markdownLinks extracts every inline markdown link, skipping fenced
// code blocks and inline code spans so shell examples like
// `tbl[attr](x)` are not misread as links.
func markdownLinks(text string) []link {
	var links []link
	inFence := false
	for lineNo, line := range strings.Split(text, "\n") {
		trimmed := strings.TrimSpace(line)
		if strings.HasPrefix(trimmed, "```") {
			inFence = !inFence
			continue
		}
		if inFence {
			continue
		}
		line = stripCodeSpans(line)
		for i := 0; i < len(line); i++ {
			if line[i] != ']' || i+1 >= len(line) || line[i+1] != '(' {
				continue
			}
			end := strings.IndexByte(line[i+2:], ')')
			if end < 0 {
				continue
			}
			target := line[i+2 : i+2+end]
			// Titles: [t](file.md "title")
			if j := strings.IndexByte(target, ' '); j >= 0 {
				target = target[:j]
			}
			if target != "" {
				links = append(links, link{line: lineNo + 1, target: target})
			}
			i += 2 + end
		}
	}
	return links
}

// stripCodeSpans blanks out `...` spans within one line.
func stripCodeSpans(line string) string {
	out := []byte(line)
	in := false
	for i := range out {
		if out[i] == '`' {
			in = !in
			out[i] = ' '
			continue
		}
		if in {
			out[i] = ' '
		}
	}
	return string(out)
}
