package docs

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strings"
)

// benchRowRe matches a benchmark-history table row's record link:
// "| [BENCH_PR8.json](BENCH_PR8.json) | ...".
var benchRowRe = regexp.MustCompile(`\[(BENCH_[A-Za-z0-9_]+\.json)\]\(([^)]+)\)`)

// CheckBenchHistory cross-checks EXPERIMENTS.md's benchmark-history
// table against the committed BENCH_*.json records — the `make
// docs-drift` gate.  Three invariants:
//
//   - every BENCH_*.json file in the repo root has a history row, so a
//     landed benchmark cannot skip the documented record;
//   - every history row names an existing record, so a renamed or
//     deleted file cannot leave a phantom row;
//   - every record parses as JSON and carries the fields a reader needs
//     to reproduce it (benchmark, command, date).
func CheckBenchHistory(root string) ([]string, error) {
	var problems []string

	expPath := filepath.Join(root, "EXPERIMENTS.md")
	data, err := os.ReadFile(expPath)
	if err != nil {
		if os.IsNotExist(err) {
			// A tree without EXPERIMENTS.md has nothing to drift.
			return nil, nil
		}
		return nil, err
	}

	linked := make(map[string]bool)
	for lineNo, line := range strings.Split(string(data), "\n") {
		for _, m := range benchRowRe.FindAllStringSubmatch(line, -1) {
			name, target := m[1], m[2]
			if name != target {
				problems = append(problems, fmt.Sprintf("%s:%d: benchmark row text %q links to %q", expPath, lineNo+1, name, target))
			}
			linked[name] = true
			if _, err := os.Stat(filepath.Join(root, target)); err != nil {
				problems = append(problems, fmt.Sprintf("%s:%d: benchmark row names missing record %q", expPath, lineNo+1, target))
			}
		}
	}

	records, err := filepath.Glob(filepath.Join(root, "BENCH_*.json"))
	if err != nil {
		return nil, err
	}
	for _, rec := range records {
		name := filepath.Base(rec)
		if !linked[name] {
			problems = append(problems, fmt.Sprintf("%s:1: record has no benchmark-history row in EXPERIMENTS.md", rec))
		}
		raw, err := os.ReadFile(rec)
		if err != nil {
			return nil, err
		}
		var fields map[string]any
		if err := json.Unmarshal(raw, &fields); err != nil {
			problems = append(problems, fmt.Sprintf("%s:1: record is not valid JSON: %v", rec, err))
			continue
		}
		for _, want := range []string{"benchmark", "command", "date"} {
			if _, ok := fields[want]; !ok {
				problems = append(problems, fmt.Sprintf("%s:1: record lacks the %q field", rec, want))
			}
		}
	}
	return problems, nil
}
