package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// This file implements the interprocedural forward taint engine behind
// the leakflow analyzer: a module-wide dataflow analysis that follows a
// secret value through helper functions, struct fields, channels,
// closures and goroutines until it reaches a declared sink, or is
// cleared by a declared sanitizer.
//
// The design is a classic bottom-up summary analysis:
//
//   - the unit is the function definition (callgraph.go); function
//     literals are analyzed inline inside their enclosing declaration,
//     so captured-variable taint needs no extra machinery, and a `go`
//     statement is just a call edge whose results are discarded;
//   - each function gets a summary: for every input slot (receiver,
//     then parameters, in signature order) the set of results its
//     taint flows to, and — when the slot's taint reaches a sink
//     inside the function or below it — the shortest sink path;
//   - summaries are computed over the strongly connected components of
//     the call graph in callee-first order, iterating each component
//     (and the module as a whole, for the global field relation) to a
//     fixpoint; all facts grow monotonically, so the iteration
//     terminates;
//   - field sensitivity: reading a field of a tainted struct does NOT
//     taint the read — a field carries taint only when its own type is
//     secret-bearing, or when some write anywhere in the module stored
//     a concretely tainted value into that field (a module-wide
//     relation keyed by the field's *types.Var).  This is what keeps a
//     protocol session object, which holds keys, from tainting every
//     integer read off it.
//
// Taint values distinguish two provenances.  A *slot-relative* taint
// ("this value derives from parameter 2") only feeds summaries: it
// becomes a finding when some transitive caller passes a concrete
// secret into that slot.  A *source* taint carries the concrete origin
// (a Key.Exponent() call, a declared raw-input parameter, a tainted
// field read) and produces a finding the moment it reaches a
// sink-reaching position.  Expressions whose static type embeds a
// secret type (secrets.go) are sources everywhere — the type system
// carries them — but they are deliberately skipped at direct
// formatting sinks, which are secretlog's domain, so the two analyzers
// never double-report one site.

// maxTaintSlots bounds the tracked input slots per function (a bitset).
const maxTaintSlots = 63

// slotSet is a bitset over a function's input slots: bit 0 is the
// receiver when present, parameters follow in signature order.
type slotSet uint64

// taintSource is one concrete taint origin.
type taintSource struct {
	desc string
	pos  token.Position
	// typeOnly marks a source derived from the expression's static
	// type alone — re-derivable wherever the value flows, so it is
	// never stored into the global field relation.
	typeOnly bool
}

// tval is the abstract value of one expression: which input slots flow
// into it, and the first concrete source observed on it.
type tval struct {
	slots slotSet
	src   *taintSource
}

func (v tval) tainted() bool { return v.slots != 0 || v.src != nil }

func (v tval) or(w tval) tval {
	out := tval{slots: v.slots | w.slots, src: v.src}
	if out.src == nil {
		out.src = w.src
	}
	return out
}

// sinkHop is one step of a sink-reaching path: either the sink call
// itself (callee == nil) or a call whose callee's calleeSlot continues
// the chain.
type sinkHop struct {
	sink       string
	pos        token.Position
	callee     *funcDef
	calleeSlot int
	depth      int
}

// taintSummary is one function's interprocedural summary.
type taintSummary struct {
	// results[i] is the abstract value of result i across all returns.
	results []tval
	// sinks maps an input slot to the shortest path by which its taint
	// reaches a sink.
	sinks map[int]*sinkHop
}

// taintFinding is one unsanitized source→sink flow.
type taintFinding struct {
	pos token.Position
	src *taintSource
	hop *sinkHop
}

// taintConfig declares the policy: sources, sinks, sanitizers and
// declassification points.  All predicates receive Origin-normalized
// *types.Func values.
type taintConfig struct {
	// sink classifies f as a data sink, returning its display name and
	// whether it is a formatting/trace sink (whose directly secret-typed
	// arguments belong to secretlog).
	sink func(f *types.Func) (name string, formatting bool, ok bool)
	// sanitizer reports functions whose results are clean regardless of
	// argument taint (the commutative encryption f_e, the oracle hash,
	// leakage.* declassification).
	sanitizer func(f *types.Func) bool
	// sourceCall classifies calls whose results are raw secret
	// material (Key.Exponent, Scalar.Big, …).
	sourceCall func(f *types.Func) string
	// sourceParams returns, for a function, the parameter names seeded
	// as concrete sources with their descriptions (raw protocol
	// inputs), or nil.
	sourceParams func(f *types.Func) map[string]string
	// declassifiedResults reports functions whose results are the
	// protocol's permitted output: callers receive them clean.
	declassifiedResults func(f *types.Func) bool
	// benign reports external functions whose results never carry
	// argument taint (size/kind accessors).
	benign func(f *types.Func) bool
}

// taintEngine holds the module-wide analysis state.
type taintEngine struct {
	cfg   *taintConfig
	graph *callGraph
	sums  map[*funcDef]*taintSummary
	// fieldTaint is the module-wide field relation: fields observed to
	// hold a concretely tainted value, with the first source.
	fieldTaint map[*types.Var]*taintSource
	// globalTaint tracks package-level variables the same way.
	globalTaint map[types.Object]*taintSource
	findings    []taintFinding
	reported    map[string]bool
	changed     bool
}

// runTaint builds the call graph over pkgs, iterates summaries to a
// global fixpoint, and collects findings.
func runTaint(pkgs []*Package, cfg *taintConfig) *taintEngine {
	e := &taintEngine{
		cfg:         cfg,
		graph:       buildCallGraph(pkgs),
		sums:        make(map[*funcDef]*taintSummary),
		fieldTaint:  make(map[*types.Var]*taintSource),
		globalTaint: make(map[types.Object]*taintSource),
		reported:    make(map[string]bool),
	}
	comps := e.graph.sccs()
	// Outer iterations re-run the callee-first pass until the global
	// field/variable relations stop growing (they feed back into
	// every function); inner iterations settle each component's
	// mutual recursion.
	for pass := 0; pass < 8; pass++ {
		e.changed = false
		for _, comp := range comps {
			for iter := 0; iter < 8; iter++ {
				before := e.changed
				e.changed = false
				for _, def := range comp {
					e.analyze(def, false)
				}
				compChanged := e.changed
				e.changed = before || compChanged
				if !compChanged {
					break
				}
			}
		}
		if !e.changed {
			break
		}
	}
	for _, def := range e.graph.defs {
		e.analyze(def, true)
	}
	return e
}

// summary returns (creating) the summary for def.
func (e *taintEngine) summary(def *funcDef) *taintSummary {
	s, ok := e.sums[def]
	if !ok {
		s = &taintSummary{
			results: make([]tval, def.sig.Results().Len()),
			sinks:   make(map[int]*sinkHop),
		}
		e.sums[def] = s
	}
	return s
}

// mergeSink records that slot reaches a sink via hop, keeping the
// shortest path.
func (e *taintEngine) mergeSink(sum *taintSummary, slot int, hop *sinkHop) {
	if cur, ok := sum.sinks[slot]; ok && cur.depth <= hop.depth {
		return
	}
	sum.sinks[slot] = hop
	e.changed = true
}

// mergeResult folds tv into result i of sum.
func (e *taintEngine) mergeResult(sum *taintSummary, i int, tv tval) {
	if i < 0 || i >= len(sum.results) {
		return
	}
	cur := sum.results[i]
	merged := cur.or(tv)
	if merged.slots != cur.slots || (cur.src == nil && merged.src != nil) {
		sum.results[i] = merged
		e.changed = true
	}
}

// markField records a concretely tainted store into a struct field.
// Type-only sources are skipped: the field's own type re-derives them
// at every read.
func (e *taintEngine) markField(v *types.Var, src *taintSource) {
	if src == nil || src.typeOnly {
		return
	}
	if _, ok := e.fieldTaint[v]; !ok {
		e.fieldTaint[v] = src
		e.changed = true
	}
}

func (e *taintEngine) markGlobal(obj types.Object, src *taintSource) {
	if src == nil || src.typeOnly {
		return
	}
	if _, ok := e.globalTaint[obj]; !ok {
		e.globalTaint[obj] = src
		e.changed = true
	}
}

// analyze runs the local transfer function over def's body, updating
// its summary and the global relations; with record set it also emits
// findings (called once, after the fixpoint).
func (e *taintEngine) analyze(def *funcDef, record bool) {
	fe := &funcEval{
		eng:    e,
		def:    def,
		sum:    e.summary(def),
		locals: make(map[types.Object]tval),
		record: record,
	}
	fe.seed()
	// Two local passes: the second lets a use that lexically precedes
	// its tainting assignment (loops, closures invoked after
	// definition) observe the taint.
	fe.walkBody()
	fe.walkBody()
}

// funcEval is the per-function abstract interpreter.
type funcEval struct {
	eng    *taintEngine
	def    *funcDef
	sum    *taintSummary
	locals map[types.Object]tval
	record bool
}

// seed installs the input-slot bindings: receiver, then parameters.
// Declared raw-input parameters additionally carry a concrete source.
func (fe *funcEval) seed() {
	srcParams := fe.eng.cfg.sourceParams(fe.def.fn.Origin())
	slot := 0
	bind := func(name *ast.Ident) {
		if slot >= maxTaintSlots {
			return
		}
		tv := tval{slots: 1 << slot}
		if name != nil && name.Name != "_" {
			if desc, ok := srcParams[name.Name]; ok {
				tv.src = &taintSource{desc: desc, pos: fe.pos(name.Pos())}
			}
			if obj := fe.def.pkg.Info.Defs[name]; obj != nil {
				fe.locals[obj] = tv
			}
		}
		slot++
	}
	if fe.def.decl.Recv != nil && len(fe.def.decl.Recv.List) == 1 {
		f := fe.def.decl.Recv.List[0]
		if len(f.Names) == 1 {
			bind(f.Names[0])
		} else {
			bind(nil)
		}
	} else if fe.def.sig.Recv() != nil {
		slot++
	}
	if fe.def.decl.Type.Params != nil {
		for _, f := range fe.def.decl.Type.Params.List {
			if len(f.Names) == 0 {
				bind(nil)
				continue
			}
			for _, name := range f.Names {
				bind(name)
			}
		}
	}
}

func (fe *funcEval) pos(p token.Pos) token.Position {
	return fe.def.pkg.Fset.Position(p)
}

// walkBody interprets the body in source order.
func (fe *funcEval) walkBody() {
	ast.Inspect(fe.def.decl.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			fe.checkCall(n)
		case *ast.AssignStmt:
			fe.assignStmt(n)
		case *ast.DeclStmt:
			if gd, ok := n.Decl.(*ast.GenDecl); ok {
				for _, spec := range gd.Specs {
					vs, ok := spec.(*ast.ValueSpec)
					if !ok {
						continue
					}
					fe.assignList(identExprs(vs.Names), vs.Values)
				}
			}
		case *ast.RangeStmt:
			tv := fe.eval(n.X)
			if tv.tainted() {
				if n.Key != nil {
					fe.assignTo(n.Key, tv, false)
				}
				if n.Value != nil {
					fe.assignTo(n.Value, tv, false)
				}
			}
		case *ast.SendStmt:
			if tv := fe.eval(n.Value); tv.tainted() {
				fe.assignTo(n.Chan, tv, true)
			}
		case *ast.ReturnStmt:
			fe.returnStmt(n)
		}
		return true
	})
}

func identExprs(ids []*ast.Ident) []ast.Expr {
	out := make([]ast.Expr, len(ids))
	for i, id := range ids {
		out[i] = id
	}
	return out
}

func (fe *funcEval) assignStmt(n *ast.AssignStmt) {
	// Compound assignments (+=, |=, …) merge rather than rebind.
	if n.Tok != token.ASSIGN && n.Tok != token.DEFINE {
		if len(n.Lhs) == 1 && len(n.Rhs) == 1 {
			if tv := fe.eval(n.Rhs[0]); tv.tainted() {
				fe.assignTo(n.Lhs[0], tv, true)
			}
		}
		return
	}
	fe.assignList(n.Lhs, n.Rhs)
}

func (fe *funcEval) assignList(lhs, rhs []ast.Expr) {
	switch {
	case len(rhs) == 0:
		return
	case len(lhs) == len(rhs):
		for i := range lhs {
			fe.assignTo(lhs[i], fe.eval(rhs[i]), false)
		}
	case len(rhs) == 1:
		tvs := fe.evalMulti(rhs[0], len(lhs))
		for i := range lhs {
			fe.assignTo(lhs[i], tvs[i], false)
		}
	}
}

// assignTo writes tv into an lvalue.  merge preserves the existing
// taint (used for element/pointee/channel writes, which never clear
// the base); a plain rebind replaces it, so reassigning a clean value
// clears a local.
func (fe *funcEval) assignTo(lhs ast.Expr, tv tval, merge bool) {
	switch l := ast.Unparen(lhs).(type) {
	case *ast.Ident:
		if l.Name == "_" {
			return
		}
		obj := fe.def.pkg.Info.Defs[l]
		if obj == nil {
			obj = fe.def.pkg.Info.Uses[l]
		}
		if obj == nil {
			return
		}
		if isPackageLevel(obj) {
			fe.eng.markGlobal(obj, tv.src)
			return
		}
		if merge {
			tv = fe.locals[obj].or(tv)
		}
		fe.locals[obj] = tv
	case *ast.SelectorExpr:
		if sel, ok := fe.def.pkg.Info.Selections[l]; ok && sel.Kind() == types.FieldVal {
			if v, ok := sel.Obj().(*types.Var); ok {
				fe.eng.markField(v, tv.src)
			}
			return
		}
		// Qualified package identifier: a write to another package's
		// variable.
		if obj := fe.def.pkg.Info.Uses[l.Sel]; obj != nil && isPackageLevel(obj) {
			fe.eng.markGlobal(obj, tv.src)
		}
	case *ast.IndexExpr:
		fe.assignTo(l.X, tv, true)
	case *ast.StarExpr:
		fe.assignTo(l.X, tv, true)
	}
}

func isPackageLevel(obj types.Object) bool {
	return obj.Parent() != nil && obj.Pkg() != nil && obj.Parent() == obj.Pkg().Scope()
}

func (fe *funcEval) returnStmt(n *ast.ReturnStmt) {
	nres := fe.def.sig.Results().Len()
	if nres == 0 {
		return
	}
	switch {
	case len(n.Results) == 0:
		// Naked return: named results are locals.
		res := fe.def.sig.Results()
		for i := 0; i < res.Len(); i++ {
			if v := res.At(i); v.Name() != "" {
				// Resolve through the declaration idents is not
				// possible here; the signature vars ARE the named
				// result objects for a FuncDecl.
				fe.eng.mergeResult(fe.sum, i, fe.locals[v])
			}
		}
	case len(n.Results) == nres:
		for i, r := range n.Results {
			fe.eng.mergeResult(fe.sum, i, fe.eval(r))
		}
	case len(n.Results) == 1:
		tvs := fe.evalMulti(n.Results[0], nres)
		for i := range tvs {
			fe.eng.mergeResult(fe.sum, i, tvs[i])
		}
	}
}

// checkCall inspects one call site for sink and summary-sink hits and
// handles direct function-literal invocation (argument → parameter
// binding, covering the `go func(x …) {…}(secret)` goroutine shape).
func (fe *funcEval) checkCall(call *ast.CallExpr) {
	if lit, ok := ast.Unparen(call.Fun).(*ast.FuncLit); ok {
		fe.bindLiteralCall(lit, call)
		return
	}
	f := calleeFunc(fe.def.pkg, call)
	if f == nil {
		return
	}
	f = f.Origin()
	if name, formatting, ok := fe.eng.cfg.sink(f); ok {
		for i, arg := range call.Args {
			if formatting && fe.secretStaticType(arg) {
				continue // secretlog's domain: directly secret-typed formatting args
			}
			tv := fe.eval(arg)
			if !tv.tainted() {
				continue
			}
			hop := &sinkHop{sink: name, pos: fe.pos(call.Pos()), depth: 1}
			if tv.src != nil {
				fe.report(arg.Pos(), tv.src, hop)
			}
			for _, slot := range slotsOf(tv.slots) {
				fe.eng.mergeSink(fe.sum, slot, hop)
			}
			_ = i
		}
		return
	}
	def := fe.eng.graph.lookup(f)
	if def == nil {
		return
	}
	calleeSum := fe.eng.sums[def]
	if calleeSum == nil || len(calleeSum.sinks) == 0 {
		return
	}
	exprs := fe.calleeSlotExprs(def, call)
	for slot, hop := range calleeSum.sinks {
		if slot >= len(exprs) || exprs[slot] == nil {
			continue
		}
		tv := fe.eval(exprs[slot])
		if !tv.tainted() {
			continue
		}
		here := &sinkHop{
			sink:       hop.sink,
			pos:        fe.pos(call.Pos()),
			callee:     def,
			calleeSlot: slot,
			depth:      hop.depth + 1,
		}
		if tv.src != nil {
			fe.report(exprs[slot].Pos(), tv.src, here)
		}
		for _, s := range slotsOf(tv.slots) {
			fe.eng.mergeSink(fe.sum, s, here)
		}
	}
}

// bindLiteralCall merges call arguments into the literal's parameter
// objects; the literal's body is interpreted by the same walk, so a
// second local pass observes the bindings.
func (fe *funcEval) bindLiteralCall(lit *ast.FuncLit, call *ast.CallExpr) {
	if lit.Type.Params == nil {
		return
	}
	var params []*ast.Ident
	for _, f := range lit.Type.Params.List {
		if len(f.Names) == 0 {
			params = append(params, nil)
			continue
		}
		params = append(params, f.Names...)
	}
	for i, arg := range call.Args {
		if i >= len(params) || params[i] == nil || params[i].Name == "_" {
			continue
		}
		tv := fe.eval(arg)
		if !tv.tainted() {
			continue
		}
		if obj := fe.def.pkg.Info.Defs[params[i]]; obj != nil {
			fe.locals[obj] = fe.locals[obj].or(tv)
		}
	}
}

// calleeSlotExprs maps the callee's input slots to this call site's
// argument expressions (receiver first; variadic arguments share the
// last slot, keeping the first).
func (fe *funcEval) calleeSlotExprs(def *funcDef, call *ast.CallExpr) []ast.Expr {
	base := 0
	var exprs []ast.Expr
	if def.sig.Recv() != nil {
		base = 1
		if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
			exprs = append(exprs, sel.X)
		} else {
			exprs = append(exprs, nil)
		}
	}
	nparams := def.sig.Params().Len()
	for i := 0; i < nparams; i++ {
		if i < len(call.Args) {
			exprs = append(exprs, call.Args[i])
		} else {
			exprs = append(exprs, nil)
		}
	}
	// Extra variadic arguments: fold the first tainted one into the
	// last slot by replacing a nil; simpler, check them all below.
	if nparams > 0 && len(call.Args) > nparams {
		last := base + nparams - 1
		for _, extra := range call.Args[nparams:] {
			if exprs[last] == nil || !fe.eval(exprs[last]).tainted() {
				exprs[last] = extra
			}
		}
	}
	_ = base
	return exprs
}

// report emits one finding (deduplicated on position, source and sink).
func (fe *funcEval) report(pos token.Pos, src *taintSource, hop *sinkHop) {
	if !fe.record {
		return
	}
	p := fe.pos(pos)
	key := p.String() + "|" + src.desc + "|" + hop.sink
	if fe.eng.reported[key] {
		return
	}
	fe.eng.reported[key] = true
	fe.eng.findings = append(fe.eng.findings, taintFinding{pos: p, src: src, hop: hop})
}

// secretStaticType reports whether e's static type embeds a secret
// type (the condition under which secretlog owns the site).
func (fe *funcEval) secretStaticType(e ast.Expr) bool {
	t := typeOf(fe.def.pkg, e)
	return t != nil && secretTypeName(t) != ""
}

// eval computes the abstract value of e, overlaying the type-carried
// source on every secret-typed expression.
func (fe *funcEval) eval(e ast.Expr) tval {
	tv := fe.evalValue(e)
	if tv.src == nil {
		if t := typeOf(fe.def.pkg, e); t != nil {
			if name := secretTypeName(t); name != "" {
				tv.src = &taintSource{
					desc:     "a value of (or containing) " + name,
					pos:      fe.pos(e.Pos()),
					typeOnly: true,
				}
			}
		}
	}
	return tv
}

func (fe *funcEval) evalValue(e ast.Expr) tval {
	switch e := e.(type) {
	case *ast.ParenExpr:
		return fe.evalValue(e.X)
	case *ast.Ident:
		obj := exprObj(fe.def.pkg, e)
		if obj == nil {
			return tval{}
		}
		if tv, ok := fe.locals[obj]; ok {
			return tv
		}
		if src, ok := fe.eng.globalTaint[obj]; ok {
			return tval{src: src}
		}
		return tval{}
	case *ast.SelectorExpr:
		if sel, ok := fe.def.pkg.Info.Selections[e]; ok && sel.Kind() == types.FieldVal {
			var tv tval
			if v, ok := sel.Obj().(*types.Var); ok {
				if src, ok := fe.eng.fieldTaint[v]; ok {
					tv.src = src
				}
			}
			// A concretely (non-type) tainted struct value taints its
			// data-bearing fields; slot-relative and type-carried struct
			// taint does not — the field's own type decides (field
			// sensitivity) — and numeric/bool fields stay clean: sizes,
			// versions and flags are the paper's permitted disclosures.
			base := fe.evalValue(e.X)
			if tv.src == nil && base.src != nil && !base.src.typeOnly &&
				!permittedInfoType(sel.Obj().Type()) {
				tv.src = base.src
			}
			return tv
		}
		// Qualified identifier (pkg.Var) or method value.
		if obj := fe.def.pkg.Info.Uses[e.Sel]; obj != nil {
			if src, ok := fe.eng.globalTaint[obj]; ok {
				return tval{src: src}
			}
		}
		return tval{}
	case *ast.CallExpr:
		return fe.evalCall(e, 1)[0]
	case *ast.IndexExpr:
		return fe.evalValue(e.X)
	case *ast.IndexListExpr:
		return fe.evalValue(e.X)
	case *ast.SliceExpr:
		return fe.evalValue(e.X)
	case *ast.StarExpr:
		return fe.evalValue(e.X)
	case *ast.UnaryExpr:
		return fe.evalValue(e.X) // includes &x and <-ch
	case *ast.BinaryExpr:
		return fe.evalValue(e.X).or(fe.evalValue(e.Y))
	case *ast.TypeAssertExpr:
		return fe.evalValue(e.X)
	case *ast.CompositeLit:
		var tv tval
		for _, elt := range e.Elts {
			if kv, ok := elt.(*ast.KeyValueExpr); ok {
				tv = tv.or(fe.evalValue(kv.Key)).or(fe.evalValue(kv.Value))
			} else {
				tv = tv.or(fe.evalValue(elt))
			}
		}
		return tv
	}
	return tval{}
}

// evalMulti evaluates a single expression used in an n-value context
// (multi-result call, v-ok assertion, map read, channel receive).
func (fe *funcEval) evalMulti(e ast.Expr, n int) []tval {
	e = ast.Unparen(e)
	if call, ok := e.(*ast.CallExpr); ok {
		return fe.evalCall(call, n)
	}
	out := make([]tval, n)
	out[0] = fe.eval(e) // x.(T), m[k], <-ch: value first, bool/ok clean
	return out
}

// evalCall computes the call's result values in an n-value context.
func (fe *funcEval) evalCall(call *ast.CallExpr, n int) []tval {
	out := make([]tval, n)
	overlay := func() []tval {
		if n == 1 {
			tv := out[0]
			if tv.src == nil {
				if t := typeOf(fe.def.pkg, call); t != nil {
					if name := secretTypeName(t); name != "" {
						tv.src = &taintSource{
							desc:     "a value of (or containing) " + name,
							pos:      fe.pos(call.Pos()),
							typeOnly: true,
						}
						out[0] = tv
					}
				}
			}
		}
		return out
	}
	argUnion := func() tval {
		var tv tval
		if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
			if _, isSel := fe.def.pkg.Info.Selections[sel]; isSel {
				tv = tv.or(fe.evalValue(sel.X)) // method receiver
			}
		}
		for _, a := range call.Args {
			tv = tv.or(fe.evalValue(a))
		}
		tv.slots &= (1 << maxTaintSlots) - 1
		return tv
	}

	// Type conversion: T(x) propagates x.
	if tvand, ok := fe.def.pkg.Info.Types[call.Fun]; ok && tvand.IsType() {
		if len(call.Args) == 1 {
			out[0] = fe.evalValue(call.Args[0])
		}
		return overlay()
	}
	// Builtins.
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if b, ok := fe.def.pkg.Info.Uses[id].(*types.Builtin); ok {
			switch b.Name() {
			case "append", "copy", "min", "max":
				out[0] = argUnion()
			}
			return out // len, cap, make, new, …: clean (sizes are permitted info)
		}
	}
	f := calleeFunc(fe.def.pkg, call)
	if f == nil {
		// Indirect call through a function value: propagate argument
		// taint to the results (no summary available).
		out[0] = argUnion()
		return overlay()
	}
	f = f.Origin()
	cfg := fe.eng.cfg
	switch {
	case cfg.sanitizer(f):
		return out
	case cfg.declassifiedResults(f):
		return out
	case cfg.benign(f):
		return out
	}
	if desc := cfg.sourceCall(f); desc != "" {
		out[0] = tval{src: &taintSource{desc: desc, pos: fe.pos(call.Pos())}}
		return out
	}
	if def := fe.eng.graph.lookup(f); def != nil {
		sum := fe.eng.sums[def]
		if sum == nil {
			return overlay()
		}
		exprs := fe.calleeSlotExprs(def, call)
		for i := 0; i < len(sum.results) && i < n; i++ {
			r := sum.results[i]
			var tv tval
			if r.src != nil {
				tv.src = r.src
			}
			for _, slot := range slotsOf(r.slots) {
				if slot < len(exprs) && exprs[slot] != nil {
					tv = tv.or(fe.eval(exprs[slot]))
				}
			}
			out[i] = tv
		}
		return overlay()
	}
	// External (stdlib / interface) call: taint flows through.
	u := argUnion()
	for i := range out {
		out[i] = u
	}
	return overlay()
}

// permittedInfoType reports whether t can only carry sizes, versions,
// counters or flags — numeric and boolean values are disclosures the
// paper permits by design (|V_R|, |V_S|, version numbers), so
// whole-struct taint does not flow into such a field read.
func permittedInfoType(t types.Type) bool {
	b, ok := types.Unalias(t).Underlying().(*types.Basic)
	return ok && b.Info()&(types.IsBoolean|types.IsNumeric) != 0
}

// slotsOf expands a slotSet into indices.
func slotsOf(s slotSet) []int {
	var out []int
	for i := 0; s != 0 && i < maxTaintSlots; i++ {
		if s&(1<<i) != 0 {
			out = append(out, i)
			s &^= 1 << i
		}
	}
	return out
}
