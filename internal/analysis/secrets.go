package analysis

import (
	"go/types"
)

// This file is the single description of what "secret" means to the
// suite: which named types carry key material, which calls extract raw
// key material, and which structural containment rules apply.  Both the
// intraprocedural secretlog analyzer and the interprocedural leakflow
// taint engine consume it, so the two can never disagree about the
// secret set (secretlog's private structural walk moved here when the
// taint engine landed).

// secretNamedType reports whether the named type pkgPath.name is itself
// secret-bearing, returning its display name.
func secretNamedType(pkgPath, name string) (string, bool) {
	if pkgPath == commutativePath && (name == "Key" || name == "CachedSet") {
		return "commutative." + name, true
	}
	if pkgPath == groupPath && name == "Scalar" {
		return "group.Scalar", true
	}
	return "", false
}

// secretTypeName walks t's structure — pointers, slices, arrays, maps,
// channels, struct fields — and returns the display name of the first
// embedded secret-bearing named type, or "".  A struct holding a Key
// two levels deep is still secret.
func secretTypeName(t types.Type) string {
	return walkSecretType(t, make(map[types.Type]bool))
}

func walkSecretType(t types.Type, seen map[types.Type]bool) string {
	if t == nil || seen[t] {
		return ""
	}
	seen[t] = true
	if p, n, ok := namedOf(t); ok {
		if name, secret := secretNamedType(p, n); secret {
			return name
		}
	}
	switch u := types.Unalias(t).(type) {
	case *types.Pointer:
		return walkSecretType(u.Elem(), seen)
	case *types.Slice:
		return walkSecretType(u.Elem(), seen)
	case *types.Array:
		return walkSecretType(u.Elem(), seen)
	case *types.Map:
		if s := walkSecretType(u.Key(), seen); s != "" {
			return s
		}
		return walkSecretType(u.Elem(), seen)
	case *types.Chan:
		return walkSecretType(u.Elem(), seen)
	case *types.Named:
		return walkSecretType(u.Underlying(), seen)
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if s := walkSecretType(u.Field(i).Type(), seen); s != "" {
				return s
			}
		}
	}
	return ""
}

// secretExtractor classifies a function whose result is raw key
// material even though its result type is a plain big.Int — the
// "escape hatches" out of the typed secret set.  Returns a display
// description, or "".
func secretExtractor(f *types.Func) string {
	p, r, ok := recvNamed(f)
	if !ok {
		return ""
	}
	switch {
	case f.Name() == "Exponent" && p == commutativePath && r == "Key":
		return "a raw key exponent (commutative.Key.Exponent)"
	case f.Name() == "Big" && p == groupPath && r == "Scalar":
		return "a raw key scalar (group.Scalar.Big)"
	case f.Name() == "RandomExponent" && p == groupPath && r == "Group":
		return "a raw key exponent (group.Group.RandomExponent)"
	case f.Name() == "InvExponent" && p == groupPath && r == "Group":
		return "a raw key exponent (group.Group.InvExponent)"
	}
	return ""
}
