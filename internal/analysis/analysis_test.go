package analysis

import (
	"path/filepath"
	"strings"
	"testing"
)

// Each analyzer is exercised against its fixture package through the
// // want harness: every reported diagnostic must be expected, every
// expectation must fire.  The fixtures import the real commutative,
// obs and transport packages, so these tests also prove the loader
// type-checks the genuine module tree with the stdlib-only importer.

func TestSecretLog(t *testing.T) {
	runFixture(t, []*Analyzer{SecretLog}, "fixture/secretlog")
}

func TestBigIntAlias(t *testing.T) {
	runFixture(t, []*Analyzer{BigIntAlias}, "fixture/bigintalias")
}

func TestCtxFlow(t *testing.T) {
	runFixture(t, []*Analyzer{CtxFlow}, "fixture/ctxflow")
}

func TestCtxFlowGoroutines(t *testing.T) {
	runFixture(t, []*Analyzer{CtxFlow}, "fixture/ctxflow/internal/core")
}

func TestErrClose(t *testing.T) {
	runFixture(t, []*Analyzer{ErrClose}, "fixture/errclose")
}

func TestSpanPair(t *testing.T) {
	runFixture(t, []*Analyzer{SpanPair}, "fixture/spanpair")
}

// TestLeakFlow exercises the interprocedural taint engine: taint that
// crosses function boundaries, rides struct fields, channels and
// goroutines, is cleared by the protocol's sanitizers, and is
// suppressed by a documented directive — each shape with a silent
// negative twin.
func TestLeakFlow(t *testing.T) {
	runFixture(t, []*Analyzer{LeakFlow}, "fixture/leakflow")
}

func TestWireKind(t *testing.T) {
	runFixture(t, []*Analyzer{WireKind}, "fixture/wirekind")
}

// TestIgnoreDirectives proves the escape hatch: suppression on the
// same line and the line above, no suppression for a mismatched
// analyzer, and malformed directives surfacing as findings.
func TestIgnoreDirectives(t *testing.T) {
	runFixture(t, Suite(), "fixture/ignored")
}

// TestAudit checks the lint-fix-audit inventory: every directive in
// the fixtures is listed with its position and reason.
func TestAudit(t *testing.T) {
	pkg := loadFixture(t, "fixture/ignored")
	recs := Audit([]*Package{pkg})
	if len(recs) != 3 {
		t.Fatalf("Audit returned %d records, want 3:\n%v", len(recs), recs)
	}
	for _, rec := range recs {
		if rec.Reason == "" {
			t.Errorf("record %v has an empty reason", rec)
		}
		if !strings.HasSuffix(rec.Pos.Filename, "ignored.go") || rec.Pos.Line == 0 {
			t.Errorf("record %v lacks a file:line address", rec)
		}
	}
	if recs[0].Analyzer != "secretlog" {
		t.Errorf("first record analyzer = %q, want secretlog", recs[0].Analyzer)
	}
}

// TestExpand checks the ./... pattern expansion skips testdata and maps
// directories to import paths.
func TestExpand(t *testing.T) {
	l := NewLoader()
	mod, err := l.AddModuleFromGoMod(filepath.Join("..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	paths, err := l.Expand(filepath.Join("..", ".."), "./...")
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]bool{
		mod:                        false, // root package
		mod + "/internal/core":     false,
		mod + "/internal/analysis": false,
		mod + "/cmd/psilint":       false,
	}
	for _, p := range paths {
		if strings.Contains(p, "testdata") {
			t.Errorf("Expand included a testdata package: %s", p)
		}
		if _, ok := want[p]; ok {
			want[p] = true
		}
	}
	for p, found := range want {
		if !found {
			t.Errorf("Expand missed %s (got %d paths)", p, len(paths))
		}
	}
}

// TestRealTreeMinimalDisclosure pins the tentpole claim: the
// interprocedural analyzers prove the real tree discloses only
// permitted information — zero leakflow findings (every wire byte is
// hashed, encrypted or declassified) and zero wirekind findings (every
// dispatch handles every message kind), with the one filtered dispatch
// in core/standing.go carried by a reasoned, audited suppression.
func TestRealTreeMinimalDisclosure(t *testing.T) {
	l := NewLoader()
	if _, err := l.AddModuleFromGoMod(filepath.Join("..", "..")); err != nil {
		t.Fatal(err)
	}
	paths, err := l.Expand(filepath.Join("..", ".."), "./...")
	if err != nil {
		t.Fatal(err)
	}
	var pkgs []*Package
	for _, p := range paths {
		pkg, err := l.LoadPath(p)
		if err != nil {
			t.Fatalf("loading %s: %v", p, err)
		}
		pkgs = append(pkgs, pkg)
	}
	for _, d := range Run(pkgs, []*Analyzer{LeakFlow, WireKind}) {
		t.Errorf("minimal-disclosure violation in the real tree:\n  %s", d)
	}
	// The one sanctioned wirekind suppression must stay documented.
	found := false
	for _, rec := range Audit(pkgs) {
		if rec.Analyzer == "wirekind" {
			found = true
			if rec.Reason == "" {
				t.Errorf("wirekind suppression at %s has no reason", rec.Pos)
			}
			if !strings.HasSuffix(rec.Pos.Filename, filepath.Join("core", "standing.go")) {
				t.Errorf("unexpected wirekind suppression outside core/standing.go: %v", rec)
			}
		}
	}
	if !found {
		t.Error("expected the documented wirekind suppression in core/standing.go, found none")
	}
}

// TestSuiteOnRealTree runs the full suite over the repo's protocol
// packages and requires zero findings: the tree itself is the largest
// negative fixture, and any regression (a logged key, a dropped ctx, an
// unchecked transport Close) fails here with its file:line.
func TestSuiteOnRealTree(t *testing.T) {
	l := NewLoader()
	if _, err := l.AddModuleFromGoMod(filepath.Join("..", "..")); err != nil {
		t.Fatal(err)
	}
	paths, err := l.Expand(filepath.Join("..", ".."), "./...")
	if err != nil {
		t.Fatal(err)
	}
	var pkgs []*Package
	for _, p := range paths {
		pkg, err := l.LoadPath(p)
		if err != nil {
			t.Fatalf("loading %s: %v", p, err)
		}
		pkgs = append(pkgs, pkg)
	}
	for _, d := range Run(pkgs, Suite()) {
		t.Errorf("unexpected finding in the real tree:\n  %s", d)
	}
}
