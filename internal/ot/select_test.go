package ot

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"
)

func TestSelectSetupBits(t *testing.T) {
	cases := []struct{ n, bits int }{
		{1, 1}, {2, 1}, {3, 2}, {4, 2}, {5, 3}, {8, 3}, {9, 4}, {1024, 10},
	}
	for _, tc := range cases {
		s, err := NewSelectSetup(tc.n, rand.New(rand.NewSource(1)))
		if err != nil {
			t.Fatalf("n=%d: %v", tc.n, err)
		}
		if s.NumBits() != tc.bits {
			t.Errorf("n=%d: bits = %d, want %d", tc.n, s.NumBits(), tc.bits)
		}
	}
	if _, err := NewSelectSetup(0, nil); err == nil {
		t.Error("n=0 accepted")
	}
}

func TestSelectMaskUnmaskAllIndices(t *testing.T) {
	const n = 11
	msgs := make([][]byte, n)
	for i := range msgs {
		msgs[i] = []byte(fmt.Sprintf("record-%02d-pad", i))
	}
	s, err := NewSelectSetup(n, rand.New(rand.NewSource(2)))
	if err != nil {
		t.Fatal(err)
	}
	cts, err := s.MaskMessages(msgs)
	if err != nil {
		t.Fatal(err)
	}
	for idx := 0; idx < n; idx++ {
		// Gather the keys the receiver would get for this index.
		keys := make([][]byte, s.NumBits())
		for j := 0; j < s.NumBits(); j++ {
			k0, k1, err := s.KeyPair(j)
			if err != nil {
				t.Fatal(err)
			}
			if (idx>>j)&1 == 1 {
				keys[j] = k1
			} else {
				keys[j] = k0
			}
		}
		got, err := UnmaskMessage(idx, keys, cts)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, msgs[idx]) {
			t.Errorf("index %d: got %q, want %q", idx, got, msgs[idx])
		}
	}
}

func TestSelectWrongKeysYieldGarbage(t *testing.T) {
	const n = 4
	msgs := [][]byte{[]byte("aaaa"), []byte("bbbb"), []byte("cccc"), []byte("dddd")}
	s, err := NewSelectSetup(n, rand.New(rand.NewSource(3)))
	if err != nil {
		t.Fatal(err)
	}
	cts, err := s.MaskMessages(msgs)
	if err != nil {
		t.Fatal(err)
	}
	// Keys for index 0 must not unmask index 3.
	keys := make([][]byte, s.NumBits())
	for j := 0; j < s.NumBits(); j++ {
		k0, _, _ := s.KeyPair(j)
		keys[j] = k0
	}
	got, err := UnmaskMessage(3, keys, cts)
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(got, msgs[3]) {
		t.Error("index-0 keys opened record 3")
	}
}

func TestSelectLengthMismatch(t *testing.T) {
	s, _ := NewSelectSetup(2, rand.New(rand.NewSource(4)))
	if _, err := s.MaskMessages([][]byte{[]byte("long record"), []byte("x")}); err == nil {
		t.Error("unequal message lengths accepted")
	}
	if _, err := s.MaskMessages(nil); err == nil {
		t.Error("empty message set accepted")
	}
}

func TestSelectKeyPairRange(t *testing.T) {
	s, _ := NewSelectSetup(4, rand.New(rand.NewSource(5)))
	if _, _, err := s.KeyPair(-1); err == nil {
		t.Error("negative bit accepted")
	}
	if _, _, err := s.KeyPair(99); err == nil {
		t.Error("out-of-range bit accepted")
	}
}

func TestUnmaskIndexRange(t *testing.T) {
	if _, err := UnmaskMessage(5, nil, [][]byte{{1}}); err == nil {
		t.Error("out-of-range index accepted")
	}
	if _, err := UnmaskMessage(-1, nil, [][]byte{{1}}); err == nil {
		t.Error("negative index accepted")
	}
}

func TestIndexBits(t *testing.T) {
	got := IndexBits(5, 4) // 0b0101 LSB-first = true,false,true,false
	want := []bool{true, false, true, false}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("bit %d = %v", i, got[i])
		}
	}
}
