package ot

import (
	"bytes"
	"math/big"
	"math/rand"
	"testing"

	"minshare/internal/group"
)

func setup(t *testing.T, seedS, seedR int64) (*Sender, *Receiver) {
	t.Helper()
	g := group.TestGroup()
	s, err := NewSender(g, rand.New(rand.NewSource(seedS)))
	if err != nil {
		t.Fatal(err)
	}
	r, err := NewReceiver(g, s.PublicC(), rand.New(rand.NewSource(seedR)))
	if err != nil {
		t.Fatal(err)
	}
	return s, r
}

func TestTransferBothChoices(t *testing.T) {
	m0 := []byte("message zero....")
	m1 := []byte("message one!!!!!")
	for _, bit := range []bool{false, true} {
		s, r := setup(t, 1, 2)
		ch, err := r.Choose(bit)
		if err != nil {
			t.Fatal(err)
		}
		ct, err := s.Transfer(ch.PK0, m0, m1)
		if err != nil {
			t.Fatal(err)
		}
		got, err := r.Open(ch, ct)
		if err != nil {
			t.Fatal(err)
		}
		want := m0
		if bit {
			want = m1
		}
		if !bytes.Equal(got, want) {
			t.Errorf("bit=%v: got %q, want %q", bit, got, want)
		}
	}
}

func TestReceiverCannotOpenOther(t *testing.T) {
	// Open with the WRONG bit's ciphertext half must not yield the other
	// message (the receiver lacks the discrete log of the other key).
	m0 := []byte("secret-zero-....")
	m1 := []byte("secret-one-.....")
	s, r := setup(t, 3, 4)
	ch, err := r.Choose(false)
	if err != nil {
		t.Fatal(err)
	}
	ct, err := s.Transfer(ch.PK0, m0, m1)
	if err != nil {
		t.Fatal(err)
	}
	// Flip the stored bit (simulating a curious receiver trying to read
	// the other message with its k).
	ch.bit = true
	got, err := r.Open(ch, ct)
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(got, m1) {
		t.Fatal("receiver opened the unchosen message")
	}
}

func TestTransferManyRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	s, r := setup(t, 6, 7)
	for i := 0; i < 20; i++ {
		m0 := make([]byte, 16)
		m1 := make([]byte, 16)
		rng.Read(m0)
		rng.Read(m1)
		bit := rng.Intn(2) == 1
		ch, err := r.Choose(bit)
		if err != nil {
			t.Fatal(err)
		}
		ct, err := s.Transfer(ch.PK0, m0, m1)
		if err != nil {
			t.Fatal(err)
		}
		got, err := r.Open(ch, ct)
		if err != nil {
			t.Fatal(err)
		}
		want := m0
		if bit {
			want = m1
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("transfer %d failed", i)
		}
	}
}

func TestLengthMismatchRejected(t *testing.T) {
	s, r := setup(t, 8, 9)
	ch, _ := r.Choose(false)
	if _, err := s.Transfer(ch.PK0, []byte("short"), []byte("longer message")); err == nil {
		t.Error("length mismatch accepted")
	}
}

func TestBadPublicValuesRejected(t *testing.T) {
	g := group.TestGroup()
	s, err := NewSender(g, rand.New(rand.NewSource(10)))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewReceiver(g, big.NewInt(0), nil); err == nil {
		t.Error("bad C accepted")
	}
	if _, err := s.Transfer(big.NewInt(0), []byte("a"), []byte("b")); err == nil {
		t.Error("bad PK0 accepted")
	}
	r, _ := NewReceiver(g, s.PublicC(), rand.New(rand.NewSource(11)))
	ch, _ := r.Choose(true)
	ct, _ := s.Transfer(ch.PK0, []byte("aa"), []byte("bb"))
	ct.G1 = big.NewInt(0)
	if _, err := r.Open(ch, ct); err == nil {
		t.Error("bad ciphertext commitment accepted")
	}
	if _, err := r.Open(nil, ct); err == nil {
		t.Error("nil choice accepted")
	}
}

func TestPK0HidesChoiceBit(t *testing.T) {
	// Structural zero-knowledge check: PK0 must be a valid group element
	// for both choice bits; nothing in the first message distinguishes
	// them (both are uniform group elements).
	g := group.TestGroup()
	s, _ := NewSender(g, rand.New(rand.NewSource(12)))
	r, _ := NewReceiver(g, s.PublicC(), rand.New(rand.NewSource(13)))
	for _, bit := range []bool{false, true} {
		ch, err := r.Choose(bit)
		if err != nil {
			t.Fatal(err)
		}
		if !g.Contains(ch.PK0) {
			t.Errorf("bit=%v: PK0 not a group element", bit)
		}
	}
}

func TestEmptyMessages(t *testing.T) {
	s, r := setup(t, 14, 15)
	ch, _ := r.Choose(true)
	ct, err := s.Transfer(ch.PK0, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	got, err := r.Open(ch, ct)
	if err != nil || len(got) != 0 {
		t.Errorf("empty transfer: %q, %v", got, err)
	}
}

func TestLongMessages(t *testing.T) {
	s, r := setup(t, 16, 17)
	m0 := bytes.Repeat([]byte{0x11}, 1000)
	m1 := bytes.Repeat([]byte{0x22}, 1000)
	ch, _ := r.Choose(false)
	ct, err := s.Transfer(ch.PK0, m0, m1)
	if err != nil {
		t.Fatal(err)
	}
	got, err := r.Open(ch, ct)
	if err != nil || !bytes.Equal(got, m0) {
		t.Error("long message transfer failed")
	}
}
