// Package ot implements 1-out-of-2 oblivious transfer — the "coding R's
// input" half of the Appendix A circuit baseline.
//
// The construction is Bellare-Micali style over the same
// quadratic-residue group the main protocols use:
//
//  1. The sender publishes a random group element C whose discrete log
//     nobody knows.
//  2. The receiver with choice bit c picks a random exponent k, sets
//     PK_c = g^k and PK_{1−c} = C · PK_c^{−1}, and sends PK_0.  (The
//     sender derives PK_1 = C · PK_0^{−1}; the receiver knows the
//     discrete log of exactly one of the two keys.)
//  3. The sender hashed-ElGamal-encrypts m_b under PK_b for b ∈ {0,1}
//     and sends both ciphertexts; the receiver can decrypt only its own.
//
// Per transfer the sender computes a handful of exponentiations — the
// paper's Appendix A.1.1 amortizes these to ≈ 0.157 C_e with the
// Naor-Pinkas batching; our cost model keeps their constant, and this
// package provides the working primitive that the Yao baseline (package
// yao) runs end to end.  Security holds against semi-honest parties
// under DDH in the random-oracle model.
package ot

import (
	"crypto/rand"
	"crypto/sha256"
	"errors"
	"fmt"
	"io"
	"math/big"

	"minshare/internal/group"
)

// ErrLengthMismatch reports message pairs of unequal length.
var ErrLengthMismatch = errors.New("ot: message pair lengths differ")

// Sender holds the sender's per-session state.
type Sender struct {
	g *group.Group
	c *big.Int // public random element with unknown discrete log
	r io.Reader
}

// Receiver holds the receiver's per-session state.
type Receiver struct {
	g *group.Group
	c *big.Int
	r io.Reader
}

// NewSender creates a sender, sampling the public element C.  The
// randomness source defaults to crypto/rand.Reader when nil.
func NewSender(g *group.Group, r io.Reader) (*Sender, error) {
	if r == nil {
		r = rand.Reader
	}
	c, err := g.RandomElement(r)
	if err != nil {
		return nil, fmt.Errorf("ot: sampling C: %w", err)
	}
	return &Sender{g: g, c: c, r: r}, nil
}

// PublicC returns the sender's public element, shipped to the receiver
// once per session.
func (s *Sender) PublicC() *big.Int { return new(big.Int).Set(s.c) }

// NewReceiver creates a receiver bound to the sender's public C.
func NewReceiver(g *group.Group, publicC *big.Int, r io.Reader) (*Receiver, error) {
	if !g.Contains(publicC) {
		return nil, errors.New("ot: public C is not a group element")
	}
	if r == nil {
		r = rand.Reader
	}
	return &Receiver{g: g, c: new(big.Int).Set(publicC), r: r}, nil
}

// Choice is the receiver's first message plus the secret needed to
// finish the transfer.
type Choice struct {
	// PK0 goes to the sender.
	PK0 *big.Int

	bit bool
	k   *big.Int
}

// Choose runs the receiver's first step for choice bit `bit`.
func (r *Receiver) Choose(bit bool) (*Choice, error) {
	k, err := r.g.RandomExponent(r.r)
	if err != nil {
		return nil, fmt.Errorf("ot: sampling k: %w", err)
	}
	pkC := r.g.Exp(r.g.Generator(), k)
	pkOther := r.g.Mul(r.c, r.g.Inv(pkC))
	ch := &Choice{bit: bit, k: k}
	if bit {
		// PK_1 = g^k, so PK_0 = C / g^k.
		ch.PK0 = pkOther
	} else {
		ch.PK0 = pkC
	}
	return ch, nil
}

// Ciphertexts is the sender's reply: both messages encrypted, plus the
// per-transfer ElGamal randomness commitments.
type Ciphertexts struct {
	// G0, G1 are g^{r_b}; E0, E1 are m_b masked with H(PK_b^{r_b}).
	G0, G1 *big.Int
	E0, E1 []byte
}

// Transfer runs the sender's step: given the receiver's PK0 and the two
// messages, produce both ciphertexts.  m0 and m1 must have equal length
// (pad if needed) so the ciphertexts leak nothing through size.
func (s *Sender) Transfer(pk0 *big.Int, m0, m1 []byte) (*Ciphertexts, error) {
	if len(m0) != len(m1) {
		return nil, fmt.Errorf("%w: %d vs %d", ErrLengthMismatch, len(m0), len(m1))
	}
	if !s.g.Contains(pk0) {
		return nil, errors.New("ot: PK0 is not a group element")
	}
	pk1 := s.g.Mul(s.c, s.g.Inv(pk0))

	encrypt := func(pk *big.Int, m []byte) (*big.Int, []byte, error) {
		rExp, err := s.g.RandomExponent(s.r)
		if err != nil {
			return nil, nil, fmt.Errorf("ot: sampling ElGamal exponent: %w", err)
		}
		gr := s.g.Exp(s.g.Generator(), rExp)
		shared := s.g.Exp(pk, rExp)
		return gr, maskBytes(shared, m), nil
	}
	var ct Ciphertexts
	var err error
	if ct.G0, ct.E0, err = encrypt(pk0, m0); err != nil {
		return nil, err
	}
	if ct.G1, ct.E1, err = encrypt(pk1, m1); err != nil {
		return nil, err
	}
	return &ct, nil
}

// Open finishes the transfer on the receiver side, recovering m_bit.
func (r *Receiver) Open(ch *Choice, ct *Ciphertexts) ([]byte, error) {
	if ch == nil || ct == nil {
		return nil, errors.New("ot: nil state")
	}
	var gr *big.Int
	var e []byte
	if ch.bit {
		gr, e = ct.G1, ct.E1
	} else {
		gr, e = ct.G0, ct.E0
	}
	if !r.g.Contains(gr) {
		return nil, errors.New("ot: ciphertext commitment not a group element")
	}
	shared := r.g.Exp(gr, ch.k)
	return maskBytes(shared, e), nil
}

// maskBytes XORs data with a SHA-256 counter stream keyed by the shared
// group element (hashed ElGamal in the random-oracle model).
func maskBytes(shared *big.Int, data []byte) []byte {
	key := sha256.Sum256(shared.Bytes())
	out := make([]byte, len(data))
	var ctr byte
	for off := 0; off < len(data); off += sha256.Size {
		h := sha256.New()
		h.Write(key[:])
		h.Write([]byte{ctr})
		ks := h.Sum(nil)
		for i := 0; i < sha256.Size && off+i < len(data); i++ {
			out[off+i] = data[off+i] ^ ks[i]
		}
		ctr++
	}
	return out
}
