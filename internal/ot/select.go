package ot

import (
	"crypto/rand"
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"io"
)

// 1-out-of-n oblivious transfer from log₂(n) 1-out-of-2 transfers
// (Naor-Pinkas composition).  The sender holds n equal-length messages;
// the receiver learns exactly message i and the sender learns nothing
// about i.  Section 2.4 of the paper points at exactly this primitive
// family ("private information retrieval ... with the additional
// restriction that R should only learn the value of one record, the
// problem becomes that of symmetric private information retrieval.  This
// literature will be useful for developing protocols for the selection
// operation in our setting"); package selection builds that operation on
// top of this.
//
// Construction: for each index bit j the sender draws a key pair
// (K_j^0, K_j^1) and the receiver obtains K_j^{i_j} via a 1-of-2 OT.
// Every message m_t is then masked with a PRF keyed by the keys matching
// t's bit decomposition; the receiver can unmask only m_i.

// keyLen is the per-bit key length.
const keyLen = 16

// SelectSetup is the sender's prepared state for one 1-of-n transfer.
type SelectSetup struct {
	bits int
	keys [][2][]byte // per bit: key for 0 and for 1
}

// NumBits returns the number of index bits (= 1-of-2 OTs needed).
func (s *SelectSetup) NumBits() int { return s.bits }

// KeyPair returns the two key messages for the j-th index bit — the
// inputs to the j-th 1-of-2 transfer.
func (s *SelectSetup) KeyPair(j int) (k0, k1 []byte, err error) {
	if j < 0 || j >= s.bits {
		return nil, nil, fmt.Errorf("ot: bit %d out of range", j)
	}
	return s.keys[j][0], s.keys[j][1], nil
}

// NewSelectSetup prepares sender keys for n messages (n ≥ 1).  The
// randomness source defaults to crypto/rand.Reader when nil.
func NewSelectSetup(n int, r io.Reader) (*SelectSetup, error) {
	if n < 1 {
		return nil, fmt.Errorf("ot: need at least one message, got %d", n)
	}
	if r == nil {
		r = rand.Reader
	}
	bits := 0
	for 1<<bits < n {
		bits++
	}
	if bits == 0 {
		bits = 1 // n == 1 still runs one (degenerate) OT to hide nothing
	}
	setup := &SelectSetup{bits: bits, keys: make([][2][]byte, bits)}
	for j := 0; j < bits; j++ {
		for b := 0; b < 2; b++ {
			k := make([]byte, keyLen)
			if _, err := io.ReadFull(r, k); err != nil {
				return nil, fmt.Errorf("ot: sampling select keys: %w", err)
			}
			setup.keys[j][b] = k
		}
	}
	return setup, nil
}

// maskFor derives the mask for message index t of length l from the keys
// matching t's bits.
func maskFor(keys [][]byte, t, l int) []byte {
	h := sha256.New()
	var idx [8]byte
	binary.BigEndian.PutUint64(idx[:], uint64(t))
	h.Write(idx[:])
	for _, k := range keys {
		h.Write(k)
	}
	seed := h.Sum(nil)
	out := make([]byte, l)
	var ctr uint32
	for off := 0; off < l; off += sha256.Size {
		hh := sha256.New()
		hh.Write(seed)
		var c [4]byte
		binary.BigEndian.PutUint32(c[:], ctr)
		hh.Write(c[:])
		ks := hh.Sum(nil)
		for i := 0; i < sha256.Size && off+i < l; i++ {
			out[off+i] = ks[i]
		}
		ctr++
	}
	return out
}

// MaskMessages produces the n ciphertexts the sender ships: message t is
// XOR-masked under the keys selected by t's bit decomposition.  All
// messages must have equal length.
func (s *SelectSetup) MaskMessages(messages [][]byte) ([][]byte, error) {
	if len(messages) == 0 {
		return nil, fmt.Errorf("ot: no messages")
	}
	l := len(messages[0])
	out := make([][]byte, len(messages))
	for t, m := range messages {
		if len(m) != l {
			return nil, fmt.Errorf("%w: message %d has %d bytes, want %d", ErrLengthMismatch, t, len(m), l)
		}
		keys := make([][]byte, s.bits)
		for j := 0; j < s.bits; j++ {
			keys[j] = s.keys[j][(t>>j)&1]
		}
		mask := maskFor(keys, t, l)
		ct := make([]byte, l)
		for i := range m {
			ct[i] = m[i] ^ mask[i]
		}
		out[t] = ct
	}
	return out, nil
}

// UnmaskMessage recovers message index with the per-bit keys the
// receiver obtained through the 1-of-2 transfers.
func UnmaskMessage(index int, bitKeys [][]byte, ciphertexts [][]byte) ([]byte, error) {
	if index < 0 || index >= len(ciphertexts) {
		return nil, fmt.Errorf("ot: index %d out of range [0,%d)", index, len(ciphertexts))
	}
	ct := ciphertexts[index]
	mask := maskFor(bitKeys, index, len(ct))
	out := make([]byte, len(ct))
	for i := range ct {
		out[i] = ct[i] ^ mask[i]
	}
	return out, nil
}

// IndexBits decomposes an index into its OT choice bits (LSB first).
func IndexBits(index, bits int) []bool {
	out := make([]bool, bits)
	for j := 0; j < bits; j++ {
		out[j] = (index>>j)&1 == 1
	}
	return out
}
