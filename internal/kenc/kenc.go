// Package kenc implements the payload encryption function K of
// Section 4.2 of the paper.
//
// In the equijoin protocol, party S encrypts the extra information
// ext(v) about each value v under the key κ(v) = f_{e'_S}(h(v)), a group
// element that R can recover only for v in the intersection.  The paper
// requires K : DomF × V_ext → C_ext to be (1) efficiently invertible
// given κ and (2) "perfectly secret": for uniformly random κ the
// ciphertext distribution must not depend on the plaintext.
//
// Two implementations are provided:
//
//   - Multiplicative — Example 2 of the paper: K_κ(x) = κ·x mod p, with
//     the plaintext embedded into QR(p) via the p ≡ 3 (mod 4) residue
//     encoding.  This achieves information-theoretic perfect secrecy but
//     caps the payload at slightly under one group element.
//
//   - Hybrid — a stream cipher keyed by SHA-256(κ) with a key-binding
//     tag, for payloads of arbitrary length.  This is the standard
//     KDF+stream substitution for real record payloads; secrecy here is
//     computational rather than information-theoretic.  DESIGN.md lists
//     this as a documented substitution.
//
// Multiplicative is inherently tied to the safe-prime domain (it
// multiplies in QR(p) and uses the p ≡ 3 (mod 4) residue embedding), so
// it takes a *group.Group.  Hybrid only needs a key κ that is a valid
// group element with a fixed-width encoding, so it is written against
// group.Backend and works unchanged over the Curve25519 domain — the
// default payload cipher for every backend.
package kenc

import (
	"bytes"
	"crypto/hmac"
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"math/big"

	"minshare/internal/group"
)

// Common errors.
var (
	// ErrPayloadTooLarge reports a plaintext exceeding the cipher's capacity.
	ErrPayloadTooLarge = errors.New("kenc: payload too large for multiplicative cipher")
	// ErrBadCiphertext reports a malformed or wrong-length ciphertext.
	ErrBadCiphertext = errors.New("kenc: malformed ciphertext")
	// ErrAuthFailed reports a hybrid-mode tag mismatch (wrong key or
	// corrupted ciphertext).
	ErrAuthFailed = errors.New("kenc: authentication failed")
	// ErrBadKey reports a key outside the group.
	ErrBadKey = errors.New("kenc: key is not a group element")
)

// Cipher encrypts byte payloads under a group-element key κ, in the sense
// of the paper's function K.  Implementations are safe for concurrent use.
type Cipher interface {
	// Name identifies the cipher in logs and experiment output.
	Name() string
	// Encrypt computes K(κ, plaintext).
	Encrypt(kappa *big.Int, plaintext []byte) ([]byte, error)
	// Decrypt inverts Encrypt given the same κ.
	Decrypt(kappa *big.Int, ciphertext []byte) ([]byte, error)
	// CiphertextLen returns the ciphertext length for a given plaintext
	// length, or -1 if the plaintext cannot be encrypted.  The paper's
	// communication analysis calls this k' (size of the encrypted ext(v)).
	CiphertextLen(plaintextLen int) int
}

// Multiplicative is Example 2 of the paper: K_κ(x) = κ·x mod p over
// quadratic residues.  Decryption multiplies by κ^{-1}.  For uniform κ
// the ciphertext is a uniform group element whatever the plaintext:
// perfect secrecy in Shannon's sense.
type Multiplicative struct {
	g *group.Group
}

// NewMultiplicative returns the Example 2 cipher over g.
func NewMultiplicative(g *group.Group) *Multiplicative {
	return &Multiplicative{g: g}
}

// Name implements Cipher.
func (c *Multiplicative) Name() string { return "multiplicative" }

// MaxPayload returns the largest payload length in bytes.  The plaintext
// is framed as 0x01 || payload, so a payload of L bytes becomes an
// integer below 2^(8L+1); it must stay within the encodable range [1, q].
// Choosing L with 8L+1 ≤ bitlen(q)−1 guarantees this for any q, hence
// L = (bitlen(q)−2)/8.  Even the 5-bit test modulus admits L = 0 (the
// bare frame byte), which the exhaustive perfect-secrecy test exploits.
func (c *Multiplicative) MaxPayload() int {
	l := (c.g.Q().BitLen() - 2) / 8
	if l < 0 {
		l = 0
	}
	return l
}

// CiphertextLen implements Cipher: one fixed-width group element.
func (c *Multiplicative) CiphertextLen(plaintextLen int) int {
	if plaintextLen > c.MaxPayload() {
		return -1
	}
	return c.g.ElementLen()
}

// Encrypt implements Cipher.
func (c *Multiplicative) Encrypt(kappa *big.Int, plaintext []byte) ([]byte, error) {
	if !c.g.Contains(kappa) {
		return nil, ErrBadKey
	}
	if len(plaintext) > c.MaxPayload() {
		return nil, fmt.Errorf("%w: %d bytes > max %d", ErrPayloadTooLarge, len(plaintext), c.MaxPayload())
	}
	// Frame as 0x01 || payload so leading zero bytes survive the integer
	// round trip.
	framed := make([]byte, 1+len(plaintext))
	framed[0] = 0x01
	copy(framed[1:], plaintext)
	m := new(big.Int).SetBytes(framed)
	x, err := c.g.EncodeMessage(m)
	if err != nil {
		return nil, fmt.Errorf("kenc: encoding payload: %w", err)
	}
	ct := c.g.Mul(kappa, x)
	return fixedWidth(ct, c.g.ElementLen()), nil
}

// Decrypt implements Cipher.
func (c *Multiplicative) Decrypt(kappa *big.Int, ciphertext []byte) ([]byte, error) {
	if !c.g.Contains(kappa) {
		return nil, ErrBadKey
	}
	if len(ciphertext) != c.g.ElementLen() {
		return nil, fmt.Errorf("%w: length %d, want %d", ErrBadCiphertext, len(ciphertext), c.g.ElementLen())
	}
	ct := new(big.Int).SetBytes(ciphertext)
	if !c.g.Contains(ct) {
		return nil, fmt.Errorf("%w: not a group element", ErrBadCiphertext)
	}
	x := c.g.Mul(ct, c.g.Inv(kappa))
	m, err := c.g.DecodeMessage(x)
	if err != nil {
		return nil, fmt.Errorf("kenc: decoding payload: %w", err)
	}
	framed := m.Bytes()
	if len(framed) == 0 || framed[0] != 0x01 {
		return nil, fmt.Errorf("%w: bad payload frame", ErrBadCiphertext)
	}
	return framed[1:], nil
}

// Hybrid derives a symmetric key from κ and encrypts arbitrary-length
// payloads with a SHA-256-based stream plus a 16-byte key-binding tag.
// The tag lets honest parties detect corrupted frames and wrong keys;
// semi-honest security does not require it, but fault-injection tests do.
type Hybrid struct {
	b group.Backend
	// tag is a domain-separation label mixed into the KDF.
	tag []byte
}

// NewHybrid returns the KDF+stream cipher keyed by elements of b.
func NewHybrid(b group.Backend) *Hybrid {
	return &Hybrid{b: b, tag: []byte("minshare/kenc/hybrid/v1")}
}

// Name implements Cipher.
func (c *Hybrid) Name() string { return "hybrid" }

// tagLen is the length of the authentication tag in bytes.
const tagLen = 16

// CiphertextLen implements Cipher: plaintext length + tag.
func (c *Hybrid) CiphertextLen(plaintextLen int) int {
	if plaintextLen < 0 {
		return -1
	}
	return plaintextLen + tagLen
}

func (c *Hybrid) derive(kappa *big.Int) []byte {
	h := sha256.New()
	h.Write(c.tag)
	h.Write(fixedWidth(kappa, c.b.ElementLen()))
	return h.Sum(nil)
}

// stream XORs data with the SHA-256 counter-mode keystream for key.
func stream(key, data []byte) []byte {
	out := make([]byte, len(data))
	var block [sha256.Size]byte
	var ctr uint64
	for off := 0; off < len(data); off += sha256.Size {
		h := sha256.New()
		h.Write(key)
		var ctrBytes [8]byte
		binary.BigEndian.PutUint64(ctrBytes[:], ctr)
		h.Write(ctrBytes[:])
		ks := h.Sum(block[:0])
		for i := 0; i < sha256.Size && off+i < len(data); i++ {
			out[off+i] = data[off+i] ^ ks[i]
		}
		ctr++
	}
	return out
}

func (c *Hybrid) mac(key, ciphertext []byte) []byte {
	m := hmac.New(sha256.New, key)
	m.Write(ciphertext)
	return m.Sum(nil)[:tagLen]
}

// Encrypt implements Cipher.
func (c *Hybrid) Encrypt(kappa *big.Int, plaintext []byte) ([]byte, error) {
	if !c.b.Contains(kappa) {
		return nil, ErrBadKey
	}
	key := c.derive(kappa)
	body := stream(key, plaintext)
	return append(body, c.mac(key, body)...), nil
}

// Decrypt implements Cipher.
func (c *Hybrid) Decrypt(kappa *big.Int, ciphertext []byte) ([]byte, error) {
	if !c.b.Contains(kappa) {
		return nil, ErrBadKey
	}
	if len(ciphertext) < tagLen {
		return nil, fmt.Errorf("%w: shorter than tag", ErrBadCiphertext)
	}
	key := c.derive(kappa)
	body := ciphertext[:len(ciphertext)-tagLen]
	tag := ciphertext[len(ciphertext)-tagLen:]
	if !hmac.Equal(tag, c.mac(key, body)) {
		return nil, ErrAuthFailed
	}
	return stream(key, body), nil
}

// fixedWidth encodes x as a big-endian byte slice of exactly n bytes.
func fixedWidth(x *big.Int, n int) []byte {
	b := x.Bytes()
	if len(b) >= n {
		return b
	}
	out := make([]byte, n)
	copy(out[n-len(b):], b)
	return out
}

// Equal reports whether two ciphertexts are byte-identical; a helper for
// tests that check the malleability / determinism properties.
func Equal(a, b []byte) bool { return bytes.Equal(a, b) }
