package kenc

import (
	"bytes"
	"errors"
	"math/big"
	"math/rand"
	"testing"
	"testing/quick"

	"minshare/internal/group"
)

func randomKey(t testing.TB, g *group.Group, seed int64) *big.Int {
	t.Helper()
	k, err := g.RandomElement(rand.New(rand.NewSource(seed)))
	if err != nil {
		t.Fatal(err)
	}
	return k
}

func ciphers(g *group.Group) []Cipher {
	return []Cipher{NewMultiplicative(g), NewHybrid(g)}
}

func TestRoundTrip(t *testing.T) {
	g := group.TestGroup()
	for _, c := range ciphers(g) {
		c := c
		t.Run(c.Name(), func(t *testing.T) {
			kappa := randomKey(t, g, 1)
			for _, pt := range [][]byte{
				nil,
				{},
				[]byte("x"),
				[]byte("personid=42, drug=true"), // 22 bytes, fits both
				bytes.Repeat([]byte{0}, 10),      // leading zeros must survive
				{0xFF, 0x00, 0xFF},
			} {
				ct, err := c.Encrypt(kappa, pt)
				if err != nil {
					t.Fatalf("Encrypt(%x): %v", pt, err)
				}
				got, err := c.Decrypt(kappa, ct)
				if err != nil {
					t.Fatalf("Decrypt: %v", err)
				}
				if !bytes.Equal(got, pt) && !(len(got) == 0 && len(pt) == 0) {
					t.Fatalf("round trip %x -> %x", pt, got)
				}
			}
		})
	}
}

func TestRoundTripProperty(t *testing.T) {
	g := group.TestGroup()
	mult := NewMultiplicative(g)
	hyb := NewHybrid(g)
	f := func(pt []byte, seed int64) bool {
		kappa := randomKey(t, g, seed)
		if len(pt) <= mult.MaxPayload() {
			ct, err := mult.Encrypt(kappa, pt)
			if err != nil {
				return false
			}
			back, err := mult.Decrypt(kappa, ct)
			if err != nil || !bytes.Equal(back, pt) {
				return false
			}
		}
		ct, err := hyb.Encrypt(kappa, pt)
		if err != nil {
			return false
		}
		back, err := hyb.Decrypt(kappa, ct)
		return err == nil && bytes.Equal(back, pt)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// TestMultiplicativePerfectSecrecyExhaustive verifies Property 2 of
// Section 4.2 exactly on QR(23): for every fixed plaintext, the map
// κ ↦ K_κ(x) is a bijection of the group, so a uniform key yields a
// uniform ciphertext regardless of the plaintext.
func TestMultiplicativePerfectSecrecyExhaustive(t *testing.T) {
	g := group.MustNew(big.NewInt(23))
	c := NewMultiplicative(g)
	var keys []*big.Int
	for x := int64(1); x < 23; x++ {
		if v := big.NewInt(x); g.Contains(v) {
			keys = append(keys, v)
		}
	}
	if c.MaxPayload() != 0 {
		// With a 5-bit modulus the framed payload must be empty; the
		// frame byte alone is the message.
		t.Logf("MaxPayload = %d", c.MaxPayload())
	}
	// Use the raw group API to test with several messages despite the
	// tiny modulus: encrypting the framed empty payload under all keys
	// must hit every group element exactly once.
	seen := map[int64]int{}
	for _, k := range keys {
		ct, err := c.Encrypt(k, nil)
		if err != nil {
			t.Fatal(err)
		}
		seen[new(big.Int).SetBytes(ct).Int64()]++
	}
	if len(seen) != len(keys) {
		t.Fatalf("ciphertexts hit %d of %d group elements: not uniform", len(seen), len(keys))
	}
	for ctVal, n := range seen {
		if n != 1 {
			t.Fatalf("ciphertext %d produced by %d keys, want 1", ctVal, n)
		}
	}
}

func TestMultiplicativePayloadBound(t *testing.T) {
	g := group.TestGroup()
	c := NewMultiplicative(g)
	max := c.MaxPayload()
	if max <= 0 {
		t.Fatalf("MaxPayload = %d", max)
	}
	kappa := randomKey(t, g, 2)
	ok := bytes.Repeat([]byte{0xAB}, max)
	if _, err := c.Encrypt(kappa, ok); err != nil {
		t.Fatalf("payload of MaxPayload bytes rejected: %v", err)
	}
	tooBig := bytes.Repeat([]byte{0xAB}, max+1)
	if _, err := c.Encrypt(kappa, tooBig); !errors.Is(err, ErrPayloadTooLarge) {
		t.Fatalf("oversized payload: err = %v, want ErrPayloadTooLarge", err)
	}
	if c.CiphertextLen(max) != g.ElementLen() {
		t.Errorf("CiphertextLen(max) = %d, want %d", c.CiphertextLen(max), g.ElementLen())
	}
	if c.CiphertextLen(max+1) != -1 {
		t.Error("CiphertextLen above max should be -1")
	}
}

func TestHybridCiphertextLen(t *testing.T) {
	c := NewHybrid(group.TestGroup())
	if got := c.CiphertextLen(100); got != 116 {
		t.Errorf("CiphertextLen(100) = %d, want 116", got)
	}
	if got := c.CiphertextLen(-1); got != -1 {
		t.Errorf("CiphertextLen(-1) = %d, want -1", got)
	}
}

func TestWrongKeyFails(t *testing.T) {
	g := group.TestGroup()
	k1 := randomKey(t, g, 3)
	k2 := randomKey(t, g, 4)
	if k1.Cmp(k2) == 0 {
		t.Fatal("test keys equal")
	}

	// Hybrid mode detects the wrong key via the tag.
	hyb := NewHybrid(g)
	ct, err := hyb.Encrypt(k1, []byte("secret"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := hyb.Decrypt(k2, ct); !errors.Is(err, ErrAuthFailed) {
		t.Errorf("hybrid wrong-key error = %v, want ErrAuthFailed", err)
	}

	// Multiplicative mode cannot authenticate (the paper's K is
	// malleable); decrypting with a wrong key either errors on framing
	// or yields different bytes, but must never return the plaintext.
	mult := NewMultiplicative(g)
	ct2, err := mult.Encrypt(k1, []byte("secret"))
	if err != nil {
		t.Fatal(err)
	}
	pt, err := mult.Decrypt(k2, ct2)
	if err == nil && bytes.Equal(pt, []byte("secret")) {
		t.Error("multiplicative decryption under wrong key returned the plaintext")
	}
}

func TestCorruptedCiphertext(t *testing.T) {
	g := group.TestGroup()
	kappa := randomKey(t, g, 5)
	hyb := NewHybrid(g)
	ct, err := hyb.Encrypt(kappa, []byte("payload"))
	if err != nil {
		t.Fatal(err)
	}
	ct[0] ^= 0x80
	if _, err := hyb.Decrypt(kappa, ct); !errors.Is(err, ErrAuthFailed) {
		t.Errorf("corrupted hybrid ciphertext: err = %v, want ErrAuthFailed", err)
	}
	if _, err := hyb.Decrypt(kappa, []byte("short")); !errors.Is(err, ErrBadCiphertext) {
		t.Errorf("short hybrid ciphertext: err = %v, want ErrBadCiphertext", err)
	}

	mult := NewMultiplicative(g)
	if _, err := mult.Decrypt(kappa, []byte{1, 2, 3}); !errors.Is(err, ErrBadCiphertext) {
		t.Errorf("short multiplicative ciphertext: err = %v, want ErrBadCiphertext", err)
	}
}

func TestBadKeys(t *testing.T) {
	g := group.TestGroup()
	for _, c := range ciphers(g) {
		for _, k := range []*big.Int{nil, big.NewInt(0), g.P()} {
			if _, err := c.Encrypt(k, []byte("x")); !errors.Is(err, ErrBadKey) {
				t.Errorf("%s.Encrypt(bad key %v): err = %v, want ErrBadKey", c.Name(), k, err)
			}
			if _, err := c.Decrypt(k, make([]byte, g.ElementLen()+tagLen)); !errors.Is(err, ErrBadKey) {
				t.Errorf("%s.Decrypt(bad key %v): err = %v, want ErrBadKey", c.Name(), k, err)
			}
		}
	}
}

func TestHybridKeyStreamDiffersPerKey(t *testing.T) {
	g := group.TestGroup()
	hyb := NewHybrid(g)
	pt := bytes.Repeat([]byte{0}, 64) // ciphertext body == keystream
	k1 := randomKey(t, g, 6)
	k2 := randomKey(t, g, 7)
	ct1, _ := hyb.Encrypt(k1, pt)
	ct2, _ := hyb.Encrypt(k2, pt)
	if Equal(ct1[:64], ct2[:64]) {
		t.Error("keystreams for distinct keys coincide")
	}
}

func TestStreamLongPayload(t *testing.T) {
	// Exercise multiple keystream blocks.
	g := group.TestGroup()
	hyb := NewHybrid(g)
	kappa := randomKey(t, g, 8)
	pt := bytes.Repeat([]byte("0123456789abcdef"), 100) // 1600 bytes
	ct, err := hyb.Encrypt(kappa, pt)
	if err != nil {
		t.Fatal(err)
	}
	back, err := hyb.Decrypt(kappa, ct)
	if err != nil || !bytes.Equal(back, pt) {
		t.Fatal("long payload round trip failed")
	}
}
