package circuit

import "fmt"

// Builder constructs circuits gate by gate, always in topological order.
type Builder struct {
	c Circuit
	// zeroWire caches the synthesized constant-0 wire (see constantZero);
	// -1 until first needed.
	zeroWire int
}

// NewBuilder returns an empty builder.
func NewBuilder() *Builder { return &Builder{zeroWire: -1} }

func (b *Builder) newWire() int {
	w := b.c.NumWires
	b.c.NumWires++
	return w
}

// GarblerInputs allocates n garbler-owned input wires.
func (b *Builder) GarblerInputs(n int) []int {
	ws := make([]int, n)
	for i := range ws {
		ws[i] = b.newWire()
		b.c.GarblerInputs = append(b.c.GarblerInputs, ws[i])
	}
	return ws
}

// EvaluatorInputs allocates n evaluator-owned input wires.
func (b *Builder) EvaluatorInputs(n int) []int {
	ws := make([]int, n)
	for i := range ws {
		ws[i] = b.newWire()
		b.c.EvaluatorInputs = append(b.c.EvaluatorInputs, ws[i])
	}
	return ws
}

func (b *Builder) gate(t GateType, in0, in1 int) int {
	out := b.newWire()
	b.c.Gates = append(b.c.Gates, Gate{Type: t, In0: in0, In1: in1, Out: out})
	return out
}

// XOR appends an exclusive-or gate.
func (b *Builder) XOR(a, c int) int { return b.gate(XOR, a, c) }

// AND appends an and gate.
func (b *Builder) AND(a, c int) int { return b.gate(AND, a, c) }

// OR appends an or gate.
func (b *Builder) OR(a, c int) int { return b.gate(OR, a, c) }

// NOT appends an inverter.
func (b *Builder) NOT(a int) int { return b.gate(INV, a, -1) }

// XNOR is NOT(XOR): two gates.
func (b *Builder) XNOR(a, c int) int { return b.NOT(b.XOR(a, c)) }

// Output marks wires as circuit outputs.
func (b *Builder) Output(ws ...int) { b.c.Outputs = append(b.c.Outputs, ws...) }

// Build finalizes and validates the circuit.
func (b *Builder) Build() (*Circuit, error) {
	c := b.c
	if err := c.Validate(); err != nil {
		return nil, err
	}
	return &c, nil
}

// MustBuild is Build panicking on error.
func (b *Builder) MustBuild() *Circuit {
	c, err := b.Build()
	if err != nil {
		panic(err)
	}
	return c
}

// Equal compares two equal-width bit vectors (little-endian order is
// irrelevant for equality) and returns a single wire that is 1 iff they
// match.  Construction: w XNOR comparisons would cost 2w gates; instead
// the first bit pair is XOR+NOT and each further pair folds in with
// XOR+AND... — the classical count the paper uses is
//
//	"Two w-bit numbers can be checked for equality using 2w−1 binary
//	gates" (Appendix A.1.2)
//
// achieved here as: w XOR gates (difference bits), then an OR-tree of
// w−1 gates reduced by a final NOT — i.e. NOT(OR(diff bits)), which is
// 2w gates; to hit exactly 2w−1 we instead compute AND-tree of XNORs
// where the NOT of each XOR fuses into the tree: here we use
// w XORs + (w−1) ORs and invert once, 2w gates total, and we report the
// exact count in tests.  The paper's 2w−1 remains the cost-model
// constant (see costmodel.GatesEqual); the one-gate difference does not
// affect any conclusion.
func (b *Builder) Equal(a, c []int) int {
	if len(a) != len(c) {
		panic(fmt.Sprintf("circuit: Equal on %d vs %d bits", len(a), len(c)))
	}
	if len(a) == 0 {
		panic("circuit: Equal on zero bits")
	}
	// diff_i = a_i XOR c_i ; any = OR(diff) ; equal = NOT(any)
	diff := make([]int, len(a))
	for i := range a {
		diff[i] = b.XOR(a[i], c[i])
	}
	any := diff[0]
	for i := 1; i < len(diff); i++ {
		any = b.OR(any, diff[i])
	}
	return b.NOT(any)
}

// LessThan returns a wire that is 1 iff the big-endian bit vector a is
// strictly less than c.  Ripple construction from the most significant
// bit: lt = lt OR (eq AND (¬a_i AND c_i)); eq = eq AND (a_i XNOR c_i).
// The paper counts 5w−3 gates for a comparison (Appendix A.1.2); this
// construction is within a constant factor and its exact count is
// asserted in tests.  costmodel uses the paper's constant.
func (b *Builder) LessThan(a, c []int) int {
	if len(a) != len(c) || len(a) == 0 {
		panic("circuit: LessThan arity")
	}
	// Most significant bit first.
	notA := b.NOT(a[0])
	lt := b.AND(notA, c[0])
	if len(a) == 1 {
		return lt
	}
	eq := b.XNOR(a[0], c[0])
	for i := 1; i < len(a); i++ {
		notAi := b.NOT(a[i])
		bitLT := b.AND(notAi, c[i])
		lt = b.OR(lt, b.AND(eq, bitLT))
		if i < len(a)-1 {
			eq = b.AND(eq, b.XNOR(a[i], c[i]))
		}
	}
	return lt
}

// BruteForceIntersection builds the Appendix A brute-force circuit: it
// "compares every number in V_R with every number in V_S, and then
// merges the results to output just the numbers in V_R that were equal
// to at least one number in V_S".  The garbler supplies nS w-bit values,
// the evaluator nR w-bit values; output bit j tells whether the
// evaluator's j-th value occurs among the garbler's.
//
// Gate count: nR·nS equality comparators plus nR·(nS−1) OR gates — the
// appendix lower-bounds it by |V_R|·|V_S|·G_e.
func BruteForceIntersection(w, nS, nR int) *Circuit {
	b := NewBuilder()
	xs := make([][]int, nS)
	for i := range xs {
		xs[i] = b.GarblerInputs(w)
	}
	ys := make([][]int, nR)
	for j := range ys {
		ys[j] = b.EvaluatorInputs(w)
	}
	for j := 0; j < nR; j++ {
		var hit int
		for i := 0; i < nS; i++ {
			eq := b.Equal(xs[i], ys[j])
			if i == 0 {
				hit = eq
			} else {
				hit = b.OR(hit, eq)
			}
		}
		b.Output(hit)
	}
	return b.MustBuild()
}

// UintToBits encodes v as w big-endian bits.
func UintToBits(v uint64, w int) []bool {
	out := make([]bool, w)
	for i := 0; i < w; i++ {
		out[i] = v&(1<<(w-1-i)) != 0
	}
	return out
}

// BitsToUint inverts UintToBits.
func BitsToUint(bits []bool) uint64 {
	var v uint64
	for _, b := range bits {
		v <<= 1
		if b {
			v |= 1
		}
	}
	return v
}

// FlattenValues encodes a slice of w-bit values as a concatenated bit
// vector, the input layout BruteForceIntersection expects.
func FlattenValues(values []uint64, w int) []bool {
	out := make([]bool, 0, len(values)*w)
	for _, v := range values {
		out = append(out, UintToBits(v, w)...)
	}
	return out
}
