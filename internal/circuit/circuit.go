// Package circuit implements the boolean-circuit substrate of the
// paper's Appendix A.
//
// Appendix A estimates what the paper's problems would cost if solved
// with the generic Yao construction: represent the function as a circuit
// of boolean gates, garble it, and evaluate it obliviously.  This
// package supplies the circuits themselves — a builder, the equality
// comparator (2w−1 gates) and less-than comparator the appendix counts
// with, the brute-force set-intersection circuit it lower-bounds, and a
// plaintext evaluator used both for correctness tests and as the
// reference for the garbled evaluation of package garble.
package circuit

import (
	"errors"
	"fmt"
)

// GateType enumerates the supported boolean gates.
type GateType uint8

// Gate types.  INV is unary (In1 is ignored).
const (
	XOR GateType = iota
	AND
	OR
	INV
)

// String implements fmt.Stringer.
func (g GateType) String() string {
	switch g {
	case XOR:
		return "XOR"
	case AND:
		return "AND"
	case OR:
		return "OR"
	case INV:
		return "INV"
	default:
		return fmt.Sprintf("gate(%d)", uint8(g))
	}
}

// Gate is one boolean gate: Out = Type(In0, In1).
type Gate struct {
	Type     GateType
	In0, In1 int
	Out      int
}

// Circuit is a directed acyclic boolean circuit.  Wires are integers;
// gates appear in topological order (the builder guarantees it).
type Circuit struct {
	// NumWires is the total wire count (inputs + gate outputs).
	NumWires int
	// GarblerInputs and EvaluatorInputs list the input wires owned by
	// each party, in bit order.
	GarblerInputs   []int
	EvaluatorInputs []int
	// Outputs lists the circuit's output wires.
	Outputs []int
	// Gates in topological order.
	Gates []Gate
}

// NumGates returns the total gate count — the quantity Appendix A's cost
// model bounds.
func (c *Circuit) NumGates() int { return len(c.Gates) }

// Copy returns a deep copy of the circuit — what the garbler actually
// ships to the evaluator (the shape is public; only labels are secret).
func (c *Circuit) Copy() *Circuit {
	return &Circuit{
		NumWires:        c.NumWires,
		GarblerInputs:   append([]int(nil), c.GarblerInputs...),
		EvaluatorInputs: append([]int(nil), c.EvaluatorInputs...),
		Outputs:         append([]int(nil), c.Outputs...),
		Gates:           append([]Gate(nil), c.Gates...),
	}
}

// NumANDs returns the number of non-XOR gates (relevant for garbling
// optimizations; reported by the experiment harness).
func (c *Circuit) NumANDs() int {
	n := 0
	for _, g := range c.Gates {
		if g.Type == AND || g.Type == OR {
			n++
		}
	}
	return n
}

// Eval computes the circuit on plaintext inputs.  garbler and evaluator
// hold the two parties' input bits in the order of GarblerInputs and
// EvaluatorInputs.
func (c *Circuit) Eval(garbler, evaluator []bool) ([]bool, error) {
	if len(garbler) != len(c.GarblerInputs) {
		return nil, fmt.Errorf("circuit: %d garbler bits, want %d", len(garbler), len(c.GarblerInputs))
	}
	if len(evaluator) != len(c.EvaluatorInputs) {
		return nil, fmt.Errorf("circuit: %d evaluator bits, want %d", len(evaluator), len(c.EvaluatorInputs))
	}
	wires := make([]bool, c.NumWires)
	for i, w := range c.GarblerInputs {
		wires[w] = garbler[i]
	}
	for i, w := range c.EvaluatorInputs {
		wires[w] = evaluator[i]
	}
	for _, g := range c.Gates {
		switch g.Type {
		case XOR:
			wires[g.Out] = wires[g.In0] != wires[g.In1]
		case AND:
			wires[g.Out] = wires[g.In0] && wires[g.In1]
		case OR:
			wires[g.Out] = wires[g.In0] || wires[g.In1]
		case INV:
			wires[g.Out] = !wires[g.In0]
		default:
			return nil, fmt.Errorf("circuit: unknown gate type %v", g.Type)
		}
	}
	out := make([]bool, len(c.Outputs))
	for i, w := range c.Outputs {
		out[i] = wires[w]
	}
	return out, nil
}

// Validate checks structural sanity: all wire references in range, gates
// topologically ordered, inputs disjoint from gate outputs.
func (c *Circuit) Validate() error {
	if c.NumWires <= 0 {
		return errors.New("circuit: no wires")
	}
	defined := make([]bool, c.NumWires)
	mark := func(w int, what string) error {
		if w < 0 || w >= c.NumWires {
			return fmt.Errorf("circuit: %s wire %d out of range", what, w)
		}
		if defined[w] {
			return fmt.Errorf("circuit: %s wire %d multiply defined", what, w)
		}
		defined[w] = true
		return nil
	}
	for _, w := range c.GarblerInputs {
		if err := mark(w, "garbler input"); err != nil {
			return err
		}
	}
	for _, w := range c.EvaluatorInputs {
		if err := mark(w, "evaluator input"); err != nil {
			return err
		}
	}
	for i, g := range c.Gates {
		if g.In0 < 0 || g.In0 >= c.NumWires || !defined[g.In0] {
			return fmt.Errorf("circuit: gate %d input 0 (wire %d) undefined", i, g.In0)
		}
		if g.Type != INV {
			if g.In1 < 0 || g.In1 >= c.NumWires || !defined[g.In1] {
				return fmt.Errorf("circuit: gate %d input 1 (wire %d) undefined", i, g.In1)
			}
		}
		if err := mark(g.Out, "gate output"); err != nil {
			return err
		}
	}
	for _, w := range c.Outputs {
		if w < 0 || w >= c.NumWires || !defined[w] {
			return fmt.Errorf("circuit: output wire %d undefined", w)
		}
	}
	return nil
}
