package circuit

import (
	"testing"
	"testing/quick"
)

func TestGateEval(t *testing.T) {
	b := NewBuilder()
	in := b.GarblerInputs(2)
	x := b.XOR(in[0], in[1])
	a := b.AND(in[0], in[1])
	o := b.OR(in[0], in[1])
	n := b.NOT(in[0])
	b.Output(x, a, o, n)
	c := b.MustBuild()

	cases := []struct {
		in   []bool
		want []bool
	}{
		{[]bool{false, false}, []bool{false, false, false, true}},
		{[]bool{false, true}, []bool{true, false, true, true}},
		{[]bool{true, false}, []bool{true, false, true, false}},
		{[]bool{true, true}, []bool{false, true, true, false}},
	}
	for _, tc := range cases {
		got, err := c.Eval(tc.in, nil)
		if err != nil {
			t.Fatal(err)
		}
		for i := range tc.want {
			if got[i] != tc.want[i] {
				t.Errorf("in=%v out[%d]=%v want %v", tc.in, i, got[i], tc.want[i])
			}
		}
	}
}

func TestEvalInputArityChecked(t *testing.T) {
	b := NewBuilder()
	in := b.GarblerInputs(2)
	b.Output(b.AND(in[0], in[1]))
	c := b.MustBuild()
	if _, err := c.Eval([]bool{true}, nil); err == nil {
		t.Error("wrong garbler arity accepted")
	}
	if _, err := c.Eval([]bool{true, true}, []bool{false}); err == nil {
		t.Error("wrong evaluator arity accepted")
	}
}

func TestEqualExhaustive(t *testing.T) {
	const w = 4
	b := NewBuilder()
	a := b.GarblerInputs(w)
	y := b.EvaluatorInputs(w)
	b.Output(b.Equal(a, y))
	c := b.MustBuild()

	for x := uint64(0); x < 1<<w; x++ {
		for z := uint64(0); z < 1<<w; z++ {
			got, err := c.Eval(UintToBits(x, w), UintToBits(z, w))
			if err != nil {
				t.Fatal(err)
			}
			if got[0] != (x == z) {
				t.Fatalf("Equal(%d,%d) = %v", x, z, got[0])
			}
		}
	}
}

func TestEqualGateCount(t *testing.T) {
	// Our construction uses w XOR + (w-1) OR + 1 NOT = 2w gates; the
	// paper's constant is 2w−1.  Assert the actual count so the
	// one-gate difference is pinned down, not accidental.
	for _, w := range []int{1, 8, 32} {
		b := NewBuilder()
		a := b.GarblerInputs(w)
		y := b.EvaluatorInputs(w)
		b.Output(b.Equal(a, y))
		c := b.MustBuild()
		if got, want := c.NumGates(), 2*w; got != want {
			t.Errorf("w=%d: %d gates, want %d", w, got, want)
		}
	}
}

func TestLessThanExhaustive(t *testing.T) {
	const w = 4
	b := NewBuilder()
	a := b.GarblerInputs(w)
	y := b.EvaluatorInputs(w)
	b.Output(b.LessThan(a, y))
	c := b.MustBuild()

	for x := uint64(0); x < 1<<w; x++ {
		for z := uint64(0); z < 1<<w; z++ {
			got, err := c.Eval(UintToBits(x, w), UintToBits(z, w))
			if err != nil {
				t.Fatal(err)
			}
			if got[0] != (x < z) {
				t.Fatalf("LessThan(%d,%d) = %v", x, z, got[0])
			}
		}
	}
}

func TestLessThanSingleBit(t *testing.T) {
	b := NewBuilder()
	a := b.GarblerInputs(1)
	y := b.EvaluatorInputs(1)
	b.Output(b.LessThan(a, y))
	c := b.MustBuild()
	for _, tc := range []struct{ x, z, want bool }{
		{false, false, false}, {false, true, true}, {true, false, false}, {true, true, false},
	} {
		got, _ := c.Eval([]bool{tc.x}, []bool{tc.z})
		if got[0] != tc.want {
			t.Errorf("LessThan(%v,%v) = %v", tc.x, tc.z, got[0])
		}
	}
}

func TestLessThanGateCountLinear(t *testing.T) {
	// The paper's constant is 5w−3; assert ours is Θ(w) and report it.
	counts := map[int]int{}
	for _, w := range []int{1, 8, 16, 32} {
		b := NewBuilder()
		a := b.GarblerInputs(w)
		y := b.EvaluatorInputs(w)
		b.Output(b.LessThan(a, y))
		counts[w] = b.MustBuild().NumGates()
	}
	if counts[1] != 2 {
		t.Errorf("w=1: %d gates", counts[1])
	}
	// Linearity: count(32) - count(16) == count(16) - count(8) * 2 ...
	if d1, d2 := counts[16]-counts[8], counts[32]-counts[16]; d2 != 2*d1 {
		t.Errorf("gate growth not linear: Δ8→16=%d, Δ16→32=%d", d1, d2)
	}
	t.Logf("LessThan gate counts: %v (paper model: 5w−3)", counts)
}

func TestBruteForceIntersectionExhaustiveSmall(t *testing.T) {
	const w, nS, nR = 3, 2, 2
	c := BruteForceIntersection(w, nS, nR)
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	// All combinations of two 3-bit S values and two R values.
	for a := uint64(0); a < 8; a++ {
		for b2 := uint64(0); b2 < 8; b2++ {
			for y0 := uint64(0); y0 < 8; y0++ {
				for y1 := uint64(0); y1 < 8; y1++ {
					got, err := c.Eval(
						FlattenValues([]uint64{a, b2}, w),
						FlattenValues([]uint64{y0, y1}, w))
					if err != nil {
						t.Fatal(err)
					}
					want0 := y0 == a || y0 == b2
					want1 := y1 == a || y1 == b2
					if got[0] != want0 || got[1] != want1 {
						t.Fatalf("S={%d,%d} R={%d,%d}: got %v", a, b2, y0, y1, got)
					}
				}
			}
		}
	}
}

func TestBruteForceIntersectionGateCount(t *testing.T) {
	// nR·nS equality blocks (2w gates each) + nR·(nS−1) ORs.
	const w, nS, nR = 8, 5, 3
	c := BruteForceIntersection(w, nS, nR)
	want := nR*nS*(2*w) + nR*(nS-1)
	if c.NumGates() != want {
		t.Errorf("gates = %d, want %d", c.NumGates(), want)
	}
	// The paper's lower bound |V_R|·|V_S|·G_e must hold with G_e = 2w−1.
	if lower := nR * nS * (2*w - 1); c.NumGates() < lower {
		t.Errorf("gate count %d below the paper's lower bound %d", c.NumGates(), lower)
	}
}

func TestUintBitsRoundTrip(t *testing.T) {
	f := func(v uint32, wRaw uint8) bool {
		w := int(wRaw%32) + 1
		masked := uint64(v) & ((1 << w) - 1)
		return BitsToUint(UintToBits(masked, w)) == masked
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestValidateCatchesBadCircuits(t *testing.T) {
	// Out-of-range input.
	c := &Circuit{NumWires: 2, GarblerInputs: []int{0},
		Gates: []Gate{{Type: AND, In0: 0, In1: 5, Out: 1}}, Outputs: []int{1}}
	if err := c.Validate(); err == nil {
		t.Error("out-of-range wire accepted")
	}
	// Use before definition.
	c = &Circuit{NumWires: 3, GarblerInputs: []int{0},
		Gates: []Gate{{Type: AND, In0: 0, In1: 2, Out: 1}}, Outputs: []int{1}}
	if err := c.Validate(); err == nil {
		t.Error("forward reference accepted")
	}
	// Doubly-defined output.
	c = &Circuit{NumWires: 2, GarblerInputs: []int{0},
		Gates: []Gate{{Type: INV, In0: 0, Out: 0}}, Outputs: []int{0}}
	if err := c.Validate(); err == nil {
		t.Error("redefinition accepted")
	}
	// Undefined output wire.
	c = &Circuit{NumWires: 2, GarblerInputs: []int{0}, Outputs: []int{1}}
	if err := c.Validate(); err == nil {
		t.Error("undefined output accepted")
	}
	// Empty.
	c = &Circuit{}
	if err := c.Validate(); err == nil {
		t.Error("empty circuit accepted")
	}
}

func TestNumANDs(t *testing.T) {
	b := NewBuilder()
	in := b.GarblerInputs(2)
	b.Output(b.AND(b.XOR(in[0], in[1]), b.OR(in[0], in[1])))
	c := b.MustBuild()
	if c.NumANDs() != 2 { // AND + OR
		t.Errorf("NumANDs = %d, want 2", c.NumANDs())
	}
}

func TestGateTypeString(t *testing.T) {
	for _, g := range []GateType{XOR, AND, OR, INV, GateType(9)} {
		if g.String() == "" {
			t.Errorf("GateType(%d).String() empty", g)
		}
	}
}
