package circuit

import "fmt"

// Sort-based intersection-size circuit.
//
// Appendix A.1.2 of the paper argues that a partitioning circuit over
// *ordered* input arrays beats the brute-force all-pairs circuit by
// orders of magnitude ("We assume that each set V_R and V_S is given to
// the circuit in the form of an ordered array").  The paper only counts
// gates; this file BUILDS the sort-based circuit so the claim can be
// checked with real hardware counts and real garbled evaluations:
//
//  1. Each party pre-sorts its own values (free, done in the clear on
//     its own machine): S ascending, R descending.  The concatenation is
//     then bitonic.
//  2. A bitonic merging network (statically-wired compare-exchange
//     gates) sorts the combined array inside the circuit.
//  3. Adjacent-equality comparators flag each value shared by both
//     sides (sets have no internal duplicates, so every shared value
//     forms exactly one adjacent pair).
//  4. An adder tree sums the flags into a binary count: the circuit
//     outputs |V_S ∩ V_R| and NOTHING about which values matched —
//     the circuit analogue of the Section 5.1 intersection-size
//     protocol.
//
// Gate count is Θ(n·log²n·w) versus the brute-force Θ(n²·w) — the same
// qualitative gap the appendix's partitioning analysis derives.
//
// Domain restriction: values must lie in [1, 2^w − 2]; the all-ones
// value is reserved as the padding sentinel so padding never equals a
// real value.

// mux returns s ? a : b, bitwise over equal-width vectors.
func (b *Builder) mux(s int, a, c []int) []int {
	if len(a) != len(c) {
		panic("circuit: mux width mismatch")
	}
	notS := b.NOT(s)
	out := make([]int, len(a))
	for i := range a {
		out[i] = b.OR(b.AND(s, a[i]), b.AND(notS, c[i]))
	}
	return out
}

// compareExchange sorts a pair of w-bit vectors: lo receives the
// smaller, hi the larger.
func (b *Builder) compareExchange(a, c []int) (lo, hi []int) {
	lt := b.LessThan(a, c)
	lo = b.mux(lt, a, c)
	hi = b.mux(lt, c, a)
	return lo, hi
}

// bitonicMerge sorts a bitonic sequence of power-of-two length into
// ascending order, in place.
func (b *Builder) bitonicMerge(vals [][]int) {
	n := len(vals)
	if n <= 1 {
		return
	}
	if n&(n-1) != 0 {
		panic("circuit: bitonic merge needs power-of-two length")
	}
	half := n / 2
	for i := 0; i < half; i++ {
		vals[i], vals[i+half] = b.compareExchange(vals[i], vals[i+half])
	}
	b.bitonicMerge(vals[:half])
	b.bitonicMerge(vals[half:])
}

// halfAdder returns (sum, carry).
func (b *Builder) halfAdder(x, y int) (sum, carry int) {
	return b.XOR(x, y), b.AND(x, y)
}

// fullAdder returns (sum, carry).
func (b *Builder) fullAdder(x, y, cin int) (sum, carry int) {
	s1, c1 := b.halfAdder(x, y)
	s2, c2 := b.halfAdder(s1, cin)
	return s2, b.OR(c1, c2)
}

// rippleAdd adds two little-endian binary numbers of equal width,
// returning a result one bit wider.
func (b *Builder) rippleAdd(x, y []int) []int {
	if len(x) != len(y) {
		panic("circuit: rippleAdd width mismatch")
	}
	out := make([]int, 0, len(x)+1)
	var carry int
	hasCarry := false
	for i := range x {
		var s int
		if !hasCarry {
			s, carry = b.halfAdder(x[i], y[i])
			hasCarry = true
		} else {
			s, carry = b.fullAdder(x[i], y[i], carry)
		}
		out = append(out, s)
	}
	out = append(out, carry)
	return out
}

// popCount sums single-bit wires into a little-endian binary number
// using a balanced adder tree.
func (b *Builder) popCount(bits []int) []int {
	if len(bits) == 0 {
		panic("circuit: popCount of nothing")
	}
	// Represent each bit as a 1-wide number and fold pairwise.
	nums := make([][]int, len(bits))
	for i, bit := range bits {
		nums[i] = []int{bit}
	}
	for len(nums) > 1 {
		var next [][]int
		for i := 0; i+1 < len(nums); i += 2 {
			a, c := nums[i], nums[i+1]
			// Pad to equal width.
			for len(a) < len(c) {
				a = append(a, b.constantZero())
			}
			for len(c) < len(a) {
				c = append(c, b.constantZero())
			}
			next = append(next, b.rippleAdd(a, c))
		}
		if len(nums)%2 == 1 {
			next = append(next, nums[len(nums)-1])
		}
		nums = next
	}
	return nums[0]
}

// constantZero synthesizes a 0 wire.  Garbling has no native constants,
// so it derives one from the first available wire: AND(x, NOT x) = 0.
func (b *Builder) constantZero() int {
	if b.zeroWire >= 0 {
		return b.zeroWire
	}
	if b.c.NumWires == 0 {
		panic("circuit: constantZero before any input wire exists")
	}
	w := 0 // first wire is always an input
	b.zeroWire = b.AND(w, b.NOT(w))
	return b.zeroWire
}

// SortedIntersectionSize builds the sort-based counting circuit.  The
// garbler supplies nS values sorted ASCENDING, the evaluator nR values
// sorted DESCENDING (each party orders its own plaintext inputs); both
// in [1, 2^w−2], no duplicates within a side.  The output is the
// little-endian binary count |V_S ∩ V_R|.  SortedInputBits prepares each
// party's input bit vector.
func SortedIntersectionSize(w, nS, nR int) *Circuit {
	if nS < 1 || nR < 1 {
		panic("circuit: empty input side")
	}
	total := pow2Ceil(nS + nR)

	b := NewBuilder()
	// Garbler inputs: nS values sorted ascending.
	sInputs := make([][]int, nS)
	for i := range sInputs {
		sInputs[i] = b.GarblerInputs(w)
	}
	// Evaluator inputs: nR values sorted descending.
	rInputs := make([][]int, nR)
	for i := range rInputs {
		rInputs[i] = b.EvaluatorInputs(w)
	}
	// MAX (all-ones) padding sentinels sit between the ascending and
	// descending halves, keeping the sequence bitonic: it rises through
	// S's values to MAX, then falls through R's values.  Real values
	// never equal MAX (domain restriction), so pads match only pads.
	zero := b.constantZero()
	one := b.NOT(zero)
	maxVal := make([]int, w)
	for i := 0; i < w; i++ {
		maxVal[i] = one
	}
	vals := make([][]int, 0, total)
	vals = append(vals, sInputs...)
	for i := nS + nR; i < total; i++ {
		vals = append(vals, maxVal)
	}
	vals = append(vals, rInputs...)

	b.bitonicMerge(vals)

	// Adjacent equality flags, suppressed for MAX-sentinel pairs (after
	// the merge all pads are adjacent at the top of the array and would
	// otherwise count as matches).
	flags := make([]int, 0, total-1)
	for i := 0; i+1 < total; i++ {
		eq := b.Equal(vals[i], vals[i+1])
		isMax := vals[i][0]
		for j := 1; j < w; j++ {
			isMax = b.AND(isMax, vals[i][j])
		}
		flags = append(flags, b.AND(eq, b.NOT(isMax)))
	}
	count := b.popCount(flags)
	b.Output(count...)
	return b.MustBuild()
}

func pow2Ceil(n int) int {
	p := 1
	for p < n {
		p *= 2
	}
	return p
}

// SortedInputBits prepares one party's input bits for
// SortedIntersectionSize: sorts the values (ascending for the garbler,
// descending for the evaluator), validates the domain restriction, and
// flattens to big-endian bits.
func SortedInputBits(values []uint64, w int, ascending bool) ([]bool, error) {
	maxVal := uint64(1)<<w - 2
	sorted := append([]uint64(nil), values...)
	for i := 0; i < len(sorted); i++ {
		for j := i + 1; j < len(sorted); j++ {
			less := sorted[j] < sorted[i]
			if !ascending {
				less = sorted[j] > sorted[i]
			}
			if less {
				sorted[i], sorted[j] = sorted[j], sorted[i]
			}
		}
	}
	for i, v := range sorted {
		if v < 1 || v > maxVal {
			return nil, fmt.Errorf("circuit: value %d outside sentinel-safe domain [1, %d]", v, maxVal)
		}
		if i > 0 && sorted[i] == sorted[i-1] {
			return nil, fmt.Errorf("circuit: duplicate value %d within one side", v)
		}
	}
	return FlattenValues(sorted, w), nil
}
