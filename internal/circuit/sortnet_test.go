package circuit

import (
	"math/rand"
	"testing"
)

func evalSortedSize(t *testing.T, w int, sVals, rVals []uint64) uint64 {
	t.Helper()
	c := SortedIntersectionSize(w, len(sVals), len(rVals))
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	gBits, err := SortedInputBits(sVals, w, true)
	if err != nil {
		t.Fatal(err)
	}
	eBits, err := SortedInputBits(rVals, w, false)
	if err != nil {
		t.Fatal(err)
	}
	out, err := c.Eval(gBits, eBits)
	if err != nil {
		t.Fatal(err)
	}
	// Little-endian count bits.
	var n uint64
	for i := len(out) - 1; i >= 0; i-- {
		n <<= 1
		if out[i] {
			n |= 1
		}
	}
	return n
}

func plaintextSize(a, b []uint64) uint64 {
	in := map[uint64]bool{}
	for _, v := range a {
		in[v] = true
	}
	var n uint64
	for _, v := range b {
		if in[v] {
			n++
		}
	}
	return n
}

func TestSortedIntersectionSizeBasic(t *testing.T) {
	cases := []struct {
		sVals, rVals []uint64
	}{
		{[]uint64{3, 7, 12}, []uint64{7, 9}},
		{[]uint64{1, 2, 3}, []uint64{4, 5, 6}},
		{[]uint64{5, 10, 14}, []uint64{5, 10, 14}},
		{[]uint64{8}, []uint64{8}},
		{[]uint64{8}, []uint64{9}},
		{[]uint64{1, 14}, []uint64{14, 1}}, // unsorted inputs: helper sorts
	}
	for _, tc := range cases {
		got := evalSortedSize(t, 4, tc.sVals, tc.rVals)
		want := plaintextSize(tc.sVals, tc.rVals)
		if got != want {
			t.Errorf("S=%v R=%v: size = %d, want %d", tc.sVals, tc.rVals, got, want)
		}
	}
}

func TestSortedIntersectionSizeRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 30; trial++ {
		w := 4 + rng.Intn(5)
		maxVal := (1 << w) - 2
		nS := 1 + rng.Intn(6)
		nR := 1 + rng.Intn(6)
		sVals := distinctRandom(rng, nS, maxVal)
		rVals := distinctRandom(rng, nR, maxVal)
		got := evalSortedSize(t, w, sVals, rVals)
		want := plaintextSize(sVals, rVals)
		if got != want {
			t.Fatalf("trial %d (w=%d S=%v R=%v): size = %d, want %d",
				trial, w, sVals, rVals, got, want)
		}
	}
}

func distinctRandom(rng *rand.Rand, n, maxVal int) []uint64 {
	seen := map[uint64]bool{}
	var out []uint64
	for len(out) < n {
		v := uint64(1 + rng.Intn(maxVal))
		if seen[v] {
			continue
		}
		seen[v] = true
		out = append(out, v)
	}
	return out
}

// TestSortedVsBruteForceGateCounts validates Appendix A's conclusion
// with REAL circuits: the sort-based circuit's gate count grows
// log-linearly while brute force grows quadratically, so the ratio
// widens with n.
func TestSortedVsBruteForceGateCounts(t *testing.T) {
	const w = 16
	type row struct {
		n             int
		sorted, brute int
	}
	var rows []row
	for _, n := range []int{4, 8, 16, 32} {
		sorted := SortedIntersectionSize(w, n, n).NumGates()
		brute := BruteForceIntersection(w, n, n).NumGates()
		rows = append(rows, row{n, sorted, brute})
	}
	for i, r := range rows {
		t.Logf("n=%2d: sorted %6d gates, brute force %7d gates (ratio %.1f)",
			r.n, r.sorted, r.brute, float64(r.brute)/float64(r.sorted))
		if i > 0 {
			prev := rows[i-1]
			ratioPrev := float64(prev.brute) / float64(prev.sorted)
			ratioNow := float64(r.brute) / float64(r.sorted)
			if ratioNow <= ratioPrev {
				t.Errorf("brute/sorted ratio did not widen: n=%d %.2f -> n=%d %.2f",
					prev.n, ratioPrev, r.n, ratioNow)
			}
		}
	}
	// The crossover: by n = 128 the sorted circuit wins outright (the
	// appendix's partitioning analysis places its advantage at large n;
	// our compare-exchange constants put the break-even near n ≈ 64).
	const big = 128
	sorted := SortedIntersectionSize(w, big, big).NumGates()
	brute := BruteForceIntersection(w, big, big).NumGates()
	t.Logf("n=%d: sorted %d gates, brute force %d gates", big, sorted, brute)
	if sorted >= brute {
		t.Errorf("sorted circuit (%d gates) not smaller than brute force (%d) at n=%d",
			sorted, brute, big)
	}
}

func TestSortedInputBitsValidation(t *testing.T) {
	if _, err := SortedInputBits([]uint64{0}, 4, true); err == nil {
		t.Error("accepted sentinel value 0")
	}
	if _, err := SortedInputBits([]uint64{15}, 4, true); err == nil {
		t.Error("accepted sentinel value 2^w-1")
	}
	if _, err := SortedInputBits([]uint64{3, 3}, 4, true); err == nil {
		t.Error("accepted duplicate")
	}
	bits, err := SortedInputBits([]uint64{9, 2, 5}, 4, true)
	if err != nil || len(bits) != 12 {
		t.Fatalf("bits: %d, %v", len(bits), err)
	}
	// Ascending: 2, 5, 9.
	if BitsToUint(bits[:4]) != 2 || BitsToUint(bits[4:8]) != 5 || BitsToUint(bits[8:]) != 9 {
		t.Error("ascending sort wrong")
	}
	bits, _ = SortedInputBits([]uint64{9, 2, 5}, 4, false)
	if BitsToUint(bits[:4]) != 9 || BitsToUint(bits[8:]) != 2 {
		t.Error("descending sort wrong")
	}
}

func TestAdderBlocks(t *testing.T) {
	// popCount over every 4-bit input pattern.
	for pattern := 0; pattern < 16; pattern++ {
		b := NewBuilder()
		in := b.GarblerInputs(4)
		b.Output(b.popCount(in)...)
		c := b.MustBuild()
		bits := make([]bool, 4)
		want := 0
		for i := 0; i < 4; i++ {
			bits[i] = pattern&(1<<i) != 0
			if bits[i] {
				want++
			}
		}
		out, err := c.Eval(bits, nil)
		if err != nil {
			t.Fatal(err)
		}
		got := 0
		for i := len(out) - 1; i >= 0; i-- {
			got <<= 1
			if out[i] {
				got |= 1
			}
		}
		if got != want {
			t.Fatalf("popCount(%04b) = %d, want %d", pattern, got, want)
		}
	}
}

func TestMuxExhaustive(t *testing.T) {
	b := NewBuilder()
	in := b.GarblerInputs(3) // s, a, c
	out := b.mux(in[0], []int{in[1]}, []int{in[2]})
	b.Output(out...)
	c := b.MustBuild()
	for s := 0; s < 2; s++ {
		for a := 0; a < 2; a++ {
			for x := 0; x < 2; x++ {
				got, err := c.Eval([]bool{s == 1, a == 1, x == 1}, nil)
				if err != nil {
					t.Fatal(err)
				}
				want := x == 1
				if s == 1 {
					want = a == 1
				}
				if got[0] != want {
					t.Fatalf("mux(%d,%d,%d) = %v", s, a, x, got[0])
				}
			}
		}
	}
}

// TestSortedCircuitGarbles runs the sort-based circuit through the
// plaintext evaluator against a brute-force reference on a sweep of
// sizes that includes non-power-of-two totals (exercising the pads).
func TestSortedCircuitPaddingSweep(t *testing.T) {
	for _, tc := range []struct{ nS, nR int }{
		{1, 1}, {1, 2}, {3, 2}, {3, 4}, {5, 5}, {7, 2},
	} {
		sVals := make([]uint64, tc.nS)
		for i := range sVals {
			sVals[i] = uint64(2*i + 2)
		}
		rVals := make([]uint64, tc.nR)
		for i := range rVals {
			rVals[i] = uint64(2*i + 3) // odd: overlap only accidentally
		}
		rVals[0] = sVals[0] // force one shared value
		got := evalSortedSize(t, 6, sVals, rVals)
		want := plaintextSize(sVals, rVals)
		if got != want {
			t.Errorf("nS=%d nR=%d: %d, want %d", tc.nS, tc.nR, got, want)
		}
	}
}
