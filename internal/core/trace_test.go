package core

import (
	"context"
	"strings"
	"testing"
	"time"

	"minshare/internal/obs"
	"minshare/internal/transport"
)

// countSpans tallies every span in the tree by name.
func countSpans(spans []obs.SpanSnapshot, into map[string]int64) {
	for _, sp := range spans {
		into[sp.Name]++
		countSpans(sp.Children, into)
	}
}

// TestLatencyHistogramsMatchSpanAndFrameCounts is the tracing layer's
// self-consistency check: every span End records exactly one phase
// -histogram observation and every frame send/recv records exactly one
// transport observation, so the histogram census must equal the span and
// counter census exactly — same invariant style as the §6.1 cost-model
// cross-check.
func TestLatencyHistogramsMatchSpanAndFrameCounts(t *testing.T) {
	const nR, nS, shared = 7, 5, 3
	vR, vS := overlapping(nR, nS, shared)

	for _, tc := range []struct {
		name string
		run  func(t *testing.T, reg *obs.Registry) (r, s obs.SessionSnapshot)
	}{
		{"intersection", func(t *testing.T, reg *obs.Registry) (obs.SessionSnapshot, obs.SessionSnapshot) {
			return runObservedPair(t, reg, "intersection",
				func(ctx context.Context, conn transport.Conn) (*IntersectionResult, error) {
					return IntersectionReceiver(ctx, testConfig(1), conn, vR)
				},
				func(ctx context.Context, conn transport.Conn) (*SenderInfo, error) {
					return IntersectionSender(ctx, testConfig(2), conn, vS)
				})
		}},
		{"equijoin", func(t *testing.T, reg *obs.Registry) (obs.SessionSnapshot, obs.SessionSnapshot) {
			recs := make([]JoinRecord, len(vS))
			for i, v := range vS {
				recs[i] = JoinRecord{Value: v, Ext: []byte("ext")}
			}
			return runObservedPair(t, reg, "equijoin",
				func(ctx context.Context, conn transport.Conn) (*JoinResult, error) {
					return EquijoinReceiver(ctx, testConfig(3), conn, vR)
				},
				func(ctx context.Context, conn transport.Conn) (*SenderInfo, error) {
					return EquijoinSender(ctx, testConfig(4), conn, recs)
				})
		}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			reg := obs.NewRegistry()
			rSnap, sSnap := tc.run(t, reg)
			lat := reg.Latencies().Snapshot()

			// Census of spans across both endpoints, roots included.
			spans := map[string]int64{"session": 2}
			countSpans(rSnap.Spans, spans)
			countSpans(sSnap.Spans, spans)

			for name, want := range spans {
				if got := lat[obs.LatPhasePrefix+name].Count; got != want {
					t.Errorf("phase/%s histogram count = %d, want %d (= span count)", name, got, want)
				}
			}
			// No phase series without a matching span.
			for name := range lat {
				base, ok := strings.CutPrefix(name, obs.LatPhasePrefix)
				if ok && spans[base] == 0 {
					t.Errorf("histogram %s has no corresponding span", name)
				}
			}

			// Transport histograms: one observation per frame, both sides
			// recording into the shared registry.
			sendFrames := rSnap.Counters.FramesSent + sSnap.Counters.FramesSent
			recvFrames := rSnap.Counters.FramesRecv + sSnap.Counters.FramesRecv
			if got := lat[obs.LatTransportSend].Count; got != sendFrames {
				t.Errorf("transport/send count = %d, want %d (= frames sent)", got, sendFrames)
			}
			if got := lat[obs.LatTransportRecv].Count; got != recvFrames {
				t.Errorf("transport/recv count = %d, want %d (= frames recv)", got, recvFrames)
			}
		})
	}
}

// TestTwoPartyTraceStitched runs a protocol over a latency-injected link
// with each endpoint on its own registry — two processes in miniature —
// and checks the handshake stitches both halves into one distributed
// trace: shared trace ID, the responder's root parented under the
// initiator's root span, and the injected link delay visible in the
// transport histograms.
func TestTwoPartyTraceStitched(t *testing.T) {
	const rtt = 10 * time.Millisecond
	vR, vS := overlapping(5, 4, 2)

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	pr, ps := transport.Pipe()
	defer pr.Close()
	connR, connS := transport.NewLatency(pr, rtt), transport.NewLatency(ps, rtt)

	regR, regS := obs.NewRegistry(), obs.NewRegistry()
	sessR := regR.StartSession(obs.SessionInfo{Protocol: "intersection", Role: "receiver"})
	sessS := regS.StartSession(obs.SessionInfo{Protocol: "intersection", Role: "sender"})

	type out struct {
		snap obs.SessionSnapshot
		err  error
	}
	ch := make(chan out, 1)
	go func() {
		_, err := IntersectionSender(obs.WithSession(ctx, sessS), testConfig(2), connS, vS)
		ch <- out{sessS.End(err), err}
	}()
	_, rErr := IntersectionReceiver(obs.WithSession(ctx, sessR), testConfig(1), connR, vR)
	rSnap := sOutOrFatal(t, rErr, sessR)
	sOut := <-ch
	if sOut.err != nil {
		t.Fatalf("sender: %v", sOut.err)
	}
	sSnap := sOut.snap

	// One trace: the receiver (who speaks first) minted it, the sender
	// adopted it through the wire handshake.
	if rSnap.TraceID.IsZero() {
		t.Fatal("receiver trace ID is zero")
	}
	if sSnap.TraceID != rSnap.TraceID {
		t.Errorf("trace ids differ: receiver %s, sender %s", rSnap.TraceID, sSnap.TraceID)
	}
	// The spans nest across the party boundary.
	if rSnap.RootParentID != 0 {
		t.Errorf("initiator root parent = %s, want 0", rSnap.RootParentID)
	}
	if sSnap.RootParentID != rSnap.RootSpanID {
		t.Errorf("responder root parent = %s, want the initiator's root span %s",
			sSnap.RootParentID, rSnap.RootSpanID)
	}
	// And within each party: every top-level phase span hangs off that
	// party's root.
	for _, snap := range []obs.SessionSnapshot{rSnap, sSnap} {
		if len(snap.Spans) == 0 {
			t.Fatalf("%s session has no spans", snap.Info.Role)
		}
		for _, sp := range snap.Spans {
			if sp.ParentID != snap.RootSpanID {
				t.Errorf("%s span %q parent = %s, want root %s",
					snap.Info.Role, sp.Name, sp.ParentID, snap.RootSpanID)
			}
			if sp.SpanID == 0 {
				t.Errorf("%s span %q has a zero span id", snap.Info.Role, sp.Name)
			}
		}
	}
	// The injected one-way delay (rtt/2) dominates every frame wait, so
	// the receive-stall histogram must see it.
	if p50 := regR.Latencies().Snapshot()[obs.LatTransportRecv].P50; p50 < rtt/4 {
		t.Errorf("receiver transport/recv p50 = %v over a %v-rtt link, want >= %v", p50, rtt, rtt/4)
	}
}

// sOutOrFatal ends the receiver session and fails the test on error.
func sOutOrFatal(t *testing.T, rErr error, sess *obs.Session) obs.SessionSnapshot {
	t.Helper()
	snap := sess.End(rErr)
	if rErr != nil {
		t.Fatalf("receiver: %v", rErr)
	}
	return snap
}

// TestDetachedSessionIsInert pins the zero-overhead contract: without an
// obs session on the context, the protocol session wires up no latency
// registry, no counters, and no chunk timers — the instrumentation
// branches all collapse to nil checks.
func TestDetachedSessionIsInert(t *testing.T) {
	connR, connS := transport.Pipe()
	defer connR.Close()
	defer connS.Close()

	s := newSession(context.Background(), testConfig(1), connR)
	if s.osess != nil || s.lat != nil || s.counters != nil {
		t.Errorf("detached session carries instrumentation: osess=%v lat=%v counters=%v",
			s.osess, s.lat, s.counters)
	}
	if ct := s.newChunkTimer(); ct != nil {
		t.Errorf("detached chunk timer = %v, want nil (inert)", ct)
	}
}
