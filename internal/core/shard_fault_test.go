package core

import (
	"context"
	"errors"
	"runtime"
	"sync"
	"testing"
	"time"

	"minshare/internal/transport"
	"minshare/internal/wire"
)

// Mid-stream shard-failure tests: one shard's peer misbehaves while the
// siblings proceed.  The session must fail atomically — an error on
// both sides, never a partial result — and every goroutine the
// coordinator, the fan-out, and the mux spawned must drain.

// settleGoroutines waits for the goroutine count to return to base,
// failing the test with a full stack dump if it does not.
func settleGoroutines(t *testing.T, base int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		n := runtime.NumGoroutine()
		if n <= base {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			t.Fatalf("goroutines leaked: %d running, %d at test start\n%s",
				n, base, buf[:runtime.Stack(buf, true)])
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestShardedWireErrorFailsAtomically: the peer sends a wire-level
// error on one shard while serving the others honestly.  The receiver
// must surface ErrPeerFailure and no partial intersection.
func TestShardedWireErrorFailsAtomically(t *testing.T) {
	const k, bad = 4, 2
	base := runtime.NumGoroutine()
	vR, vS := overlapping(20, 20, 8)

	ctx := context.Background()
	connR, connS := transport.Pipe()
	defer connR.Close()
	defer connS.Close()

	errInjected := errors.New("injected shard failure")
	sendDone := make(chan error, 1)
	go func() {
		sendDone <- func() error {
			cfg := shardedConfig(2, k, 0)
			outer := newSession(ctx, cfg, connS)
			vs := dedup(vS)
			_, mux, err := shardSession(ctx, outer, wire.ProtoIntersection, len(vs), false, connS)
			if err != nil {
				return err
			}
			defer mux.Stop()
			buckets, _ := outer.shardPartition(vs, k)
			tmpl := shardBaseConfig(cfg)
			_, err = shardFanout(ctx, k, func(ctx context.Context, i int) (*SenderInfo, error) {
				if i != bad {
					return IntersectionSender(ctx, shardConfig(tmpl, i, k), mux.Shard(i), buckets[i])
				}
				frame, ferr := outer.codec.Encode(wire.ErrorMsg{Text: errInjected.Error()})
				if ferr != nil {
					return nil, ferr
				}
				if serr := mux.Shard(i).Send(ctx, frame); serr != nil {
					return nil, serr
				}
				return nil, errInjected
			})
			return err
		}()
	}()

	res, rErr := IntersectionReceiver(ctx, shardedConfig(1, k, 0), connR, vR)
	sErr := <-sendDone
	if rErr == nil || res != nil {
		t.Fatalf("receiver survived a shard wire error: res=%v err=%v", res, rErr)
	}
	if !errors.Is(rErr, ErrPeerFailure) {
		t.Errorf("receiver error = %v, want ErrPeerFailure", rErr)
	}
	if !errors.Is(sErr, errInjected) {
		t.Errorf("sender fan-out error = %v, want the injected failure", sErr)
	}
	connR.Close()
	connS.Close()
	settleGoroutines(t, base)
}

// TestShardedStallFailsAtomically: the peer serves every shard except
// one, which it leaves silent forever.  Siblings complete; the session
// must stay result-free and unwind cleanly when the caller cancels.
func TestShardedStallFailsAtomically(t *testing.T) {
	const k, bad = 4, 1
	base := runtime.NumGoroutine()
	vR, vS := overlapping(16, 16, 5)

	connR, connS := transport.Pipe()
	defer connR.Close()
	defer connS.Close()

	sctx, scancel := context.WithCancel(context.Background())
	defer scancel()
	goodDone := make(chan struct{})
	sendDone := make(chan error, 1)
	go func() {
		sendDone <- func() error {
			cfg := shardedConfig(2, k, 0)
			outer := newSession(sctx, cfg, connS)
			vs := dedup(vS)
			_, mux, err := shardSession(sctx, outer, wire.ProtoIntersection, len(vs), false, connS)
			if err != nil {
				return err
			}
			defer mux.Stop()
			buckets, _ := outer.shardPartition(vs, k)
			tmpl := shardBaseConfig(cfg)
			var wg sync.WaitGroup
			for i := 0; i < k; i++ {
				if i == bad {
					continue // the stall: never even a sub-handshake
				}
				wg.Add(1)
				go func(i int) {
					defer wg.Done()
					// Sibling errors are expected once the receiver
					// cancels; the assertions live on the receiver side.
					_, _ = IntersectionSender(sctx, shardConfig(tmpl, i, k), mux.Shard(i), buckets[i])
				}(i)
			}
			wg.Wait()
			close(goodDone)
			<-sctx.Done()
			return sctx.Err()
		}()
	}()

	rctx, rcancel := context.WithCancel(context.Background())
	defer rcancel()
	type recvOut struct {
		res *IntersectionResult
		err error
	}
	recvDone := make(chan recvOut, 1)
	go func() {
		res, err := IntersectionReceiver(rctx, shardedConfig(1, k, 0), connR, vR)
		recvDone <- recvOut{res, err}
	}()

	// Let every healthy shard finish end to end, then give up on the
	// stalled one.
	select {
	case <-goodDone:
	case <-time.After(10 * time.Second):
		t.Fatal("healthy shards did not complete")
	}
	rcancel()
	out := <-recvDone
	if out.err == nil || out.res != nil {
		t.Fatalf("receiver produced a result despite a stalled shard: res=%v err=%v", out.res, out.err)
	}
	scancel()
	if err := <-sendDone; !errors.Is(err, context.Canceled) {
		t.Errorf("stalling sender returned %v, want context.Canceled", err)
	}
	connR.Close()
	connS.Close()
	settleGoroutines(t, base)
}

// TestShardedSizeSumMismatchRejected: the peer's outer handshake
// announces a total that its per-shard sub-handshakes do not add up to.
// Every sub-protocol completes honestly, yet the coordinator must
// refuse to assemble a result from inconsistent claims.
func TestShardedSizeSumMismatchRejected(t *testing.T) {
	const k = 3
	base := runtime.NumGoroutine()
	vR, vS := overlapping(12, 12, 4)

	ctx := context.Background()
	connR, connS := transport.Pipe()
	defer connR.Close()
	defer connS.Close()

	sendDone := make(chan error, 1)
	go func() {
		sendDone <- func() error {
			cfg := shardedConfig(2, k, 0)
			outer := newSession(ctx, cfg, connS)
			vs := dedup(vS)
			// The lie: announce three phantom values.
			_, mux, err := shardSession(ctx, outer, wire.ProtoIntersection, len(vs)+3, false, connS)
			if err != nil {
				return err
			}
			defer mux.Stop()
			buckets, _ := outer.shardPartition(vs, k)
			tmpl := shardBaseConfig(cfg)
			_, err = shardFanout(ctx, k, func(ctx context.Context, i int) (*SenderInfo, error) {
				return IntersectionSender(ctx, shardConfig(tmpl, i, k), mux.Shard(i), buckets[i])
			})
			return err
		}()
	}()

	res, rErr := IntersectionReceiver(ctx, shardedConfig(1, k, 0), connR, vR)
	if err := <-sendDone; err != nil {
		t.Fatalf("lying sender's sub-protocols failed early: %v", err)
	}
	if rErr == nil || res != nil {
		t.Fatalf("receiver accepted inconsistent size claims: res=%v err=%v", res, rErr)
	}
	if !errors.Is(rErr, ErrMalformedReply) {
		t.Errorf("receiver error = %v, want ErrMalformedReply", rErr)
	}
	connR.Close()
	connS.Close()
	settleGoroutines(t, base)
}
