package core

import (
	"bytes"
	"context"
	"errors"
	"math/big"
	"runtime"
	"sync"
	"testing"
	"time"

	"minshare/internal/commutative"
	"minshare/internal/obs"
	"minshare/internal/transport"
	"minshare/internal/wire"
)

// testConfigChunked is testConfig with streaming enabled.
func testConfigChunked(seed int64, chunk int) Config {
	cfg := testConfig(seed)
	cfg.ChunkSize = chunk
	return cfg
}

// joinRecords builds an equijoin record set with a deterministic ext per
// value.
func joinRecords(vS [][]byte) []JoinRecord {
	records := make([]JoinRecord, len(vS))
	for i, v := range vS {
		records[i] = JoinRecord{Value: v, Ext: append([]byte("ext:"), v...)}
	}
	return records
}

// TestStreamedProtocolsMatchLegacy runs every protocol with both parties
// streaming at several chunk sizes — including chunk 1 (maximal framing)
// and a chunk larger than any vector (single-chunk streams) — and checks
// the results against a legacy (ChunkSize = 0) run on the same inputs.
func TestStreamedProtocolsMatchLegacy(t *testing.T) {
	const nR, nS, shared = 7, 5, 3
	vR, vS := overlapping(nR, nS, shared)

	legacyInter, _ := runPair(t,
		func(ctx context.Context, conn transport.Conn) (*IntersectionResult, error) {
			return IntersectionReceiver(ctx, testConfig(1), conn, vR)
		},
		func(ctx context.Context, conn transport.Conn) (*SenderInfo, error) {
			return IntersectionSender(ctx, testConfig(2), conn, vS)
		})

	for _, chunk := range []int{1, 3, 64} {
		cfgR := testConfigChunked(1, chunk)
		cfgS := testConfigChunked(2, chunk)

		res, info := runPair(t,
			func(ctx context.Context, conn transport.Conn) (*IntersectionResult, error) {
				return IntersectionReceiver(ctx, cfgR, conn, vR)
			},
			func(ctx context.Context, conn transport.Conn) (*SenderInfo, error) {
				return IntersectionSender(ctx, cfgS, conn, vS)
			})
		gotVals := sortedStrings(res.Values)
		wantVals := sortedStrings(legacyInter.Values)
		if len(gotVals) != len(wantVals) {
			t.Fatalf("chunk %d: intersection size %d, want %d", chunk, len(gotVals), len(wantVals))
		}
		for i := range gotVals {
			if gotVals[i] != wantVals[i] {
				t.Errorf("chunk %d: intersection[%d] = %q, want %q", chunk, i, gotVals[i], wantVals[i])
			}
		}
		if res.SenderSetSize != nS || info.ReceiverSetSize != nR {
			t.Errorf("chunk %d: sizes %d/%d, want %d/%d", chunk, res.SenderSetSize, info.ReceiverSetSize, nS, nR)
		}

		size, _ := runPair(t,
			func(ctx context.Context, conn transport.Conn) (*SizeResult, error) {
				return IntersectionSizeReceiver(ctx, cfgR, conn, vR)
			},
			func(ctx context.Context, conn transport.Conn) (*SenderInfo, error) {
				return IntersectionSizeSender(ctx, cfgS, conn, vS)
			})
		if size.IntersectionSize != shared {
			t.Errorf("chunk %d: intersection size = %d, want %d", chunk, size.IntersectionSize, shared)
		}

		mR := [][]byte{[]byte("a"), []byte("a"), []byte("b"), []byte("c"), []byte("c")}
		mS := [][]byte{[]byte("a"), []byte("c"), []byte("c"), []byte("d")}
		js, _ := runPair(t,
			func(ctx context.Context, conn transport.Conn) (*JoinSizeResult, error) {
				return EquijoinSizeReceiver(ctx, cfgR, conn, mR)
			},
			func(ctx context.Context, conn transport.Conn) (*JoinSizeSenderInfo, error) {
				return EquijoinSizeSender(ctx, cfgS, conn, mS)
			})
		if js.JoinSize != 2*1+2*2 { // a: 2·1, c: 2·2
			t.Errorf("chunk %d: join size = %d, want 6", chunk, js.JoinSize)
		}

		join, _ := runPair(t,
			func(ctx context.Context, conn transport.Conn) (*JoinResult, error) {
				return EquijoinReceiver(ctx, cfgR, conn, vR)
			},
			func(ctx context.Context, conn transport.Conn) (*SenderInfo, error) {
				return EquijoinSender(ctx, cfgS, conn, joinRecords(vS))
			})
		if len(join.Matches) != shared {
			t.Fatalf("chunk %d: equijoin matches = %d, want %d", chunk, len(join.Matches), shared)
		}
		for _, m := range join.Matches {
			if want := append([]byte("ext:"), m.Value...); !bytes.Equal(m.Ext, want) {
				t.Errorf("chunk %d: ext for %q = %q, want %q", chunk, m.Value, m.Ext, want)
			}
		}
	}
}

// TestStreamedMixedModes pairs a streaming session with a legacy one in
// both orientations: the receive helpers accept whatever encoding the
// peer chose, so differently configured endpoints must interoperate.
func TestStreamedMixedModes(t *testing.T) {
	const nR, nS, shared = 7, 5, 3
	vR, vS := overlapping(nR, nS, shared)

	cases := []struct {
		name       string
		cfgR, cfgS Config
	}{
		{"chunked-R-legacy-S", testConfigChunked(1, 3), testConfig(2)},
		{"legacy-R-chunked-S", testConfig(1), testConfigChunked(2, 3)},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			res, _ := runPair(t,
				func(ctx context.Context, conn transport.Conn) (*IntersectionResult, error) {
					return IntersectionReceiver(ctx, tc.cfgR, conn, vR)
				},
				func(ctx context.Context, conn transport.Conn) (*SenderInfo, error) {
					return IntersectionSender(ctx, tc.cfgS, conn, vS)
				})
			if len(res.Values) != shared {
				t.Errorf("intersection = %d values, want %d", len(res.Values), shared)
			}
			join, _ := runPair(t,
				func(ctx context.Context, conn transport.Conn) (*JoinResult, error) {
					return EquijoinReceiver(ctx, tc.cfgR, conn, vR)
				},
				func(ctx context.Context, conn transport.Conn) (*SenderInfo, error) {
					return EquijoinSender(ctx, tc.cfgS, conn, joinRecords(vS))
				})
			if len(join.Matches) != shared {
				t.Errorf("equijoin = %d matches, want %d", len(join.Matches), shared)
			}
		})
	}
}

// TestStreamedEmptyVector streams a zero-element vector: Begin and End
// with no chunks in between.
func TestStreamedEmptyVector(t *testing.T) {
	vS := vals("s", 4)
	res, info := runPair(t,
		func(ctx context.Context, conn transport.Conn) (*IntersectionResult, error) {
			return IntersectionReceiver(ctx, testConfigChunked(1, 3), conn, nil)
		},
		func(ctx context.Context, conn transport.Conn) (*SenderInfo, error) {
			return IntersectionSender(ctx, testConfigChunked(2, 3), conn, vS)
		})
	if len(res.Values) != 0 || res.SenderSetSize != 4 || info.ReceiverSetSize != 0 {
		t.Errorf("empty-set run: %d values, sizes %d/%d", len(res.Values), res.SenderSetSize, info.ReceiverSetSize)
	}
}

// recordConn captures every frame an endpoint sends, for transcript
// inspection.
type recordConn struct {
	transport.Conn
	mu   sync.Mutex
	sent [][]byte
}

func (r *recordConn) Send(ctx context.Context, frame []byte) error {
	r.mu.Lock()
	r.sent = append(r.sent, append([]byte(nil), frame...))
	r.mu.Unlock()
	return r.Conn.Send(ctx, frame)
}

func (r *recordConn) frames() [][]byte {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([][]byte(nil), r.sent...)
}

// TestLegacyTranscriptByteForByte pins the ChunkSize = 0 wire format to
// the pre-streaming transcript: every frame both endpoints emit must be
// a legacy kind (no stream framing anywhere), and — the codec being
// deterministic — re-encoding each decoded frame must reproduce its
// bytes exactly.
func TestLegacyTranscriptByteForByte(t *testing.T) {
	const nR, nS, shared = 7, 5, 3
	vR, vS := overlapping(nR, nS, shared)
	legacyKinds := map[wire.Kind]bool{
		wire.KindHeader: true, wire.KindElements: true,
		wire.KindPairs: true, wire.KindExtPairs: true,
	}
	checkTranscript := func(t *testing.T, who string, rec *recordConn, wantKinds []wire.Kind) {
		t.Helper()
		codec := wire.NewCodec(testConfig(1).normalized().Group)
		frames := rec.frames()
		if len(frames) != len(wantKinds) {
			t.Fatalf("%s sent %d frames, want %d", who, len(frames), len(wantKinds))
		}
		for i, frame := range frames {
			m, err := codec.Decode(frame)
			if err != nil {
				t.Fatalf("%s frame %d: %v", who, i, err)
			}
			if !legacyKinds[m.Kind()] {
				t.Errorf("%s frame %d is %v: stream framing leaked into a legacy transcript", who, i, m.Kind())
			}
			if m.Kind() != wantKinds[i] {
				t.Errorf("%s frame %d = %v, want %v", who, i, m.Kind(), wantKinds[i])
			}
			re, err := codec.Encode(m)
			if err != nil {
				t.Fatalf("%s frame %d re-encode: %v", who, i, err)
			}
			if !bytes.Equal(re, frame) {
				t.Errorf("%s frame %d: re-encoding differs from the wire bytes", who, i)
			}
		}
	}

	run := func(t *testing.T, recvFn func(context.Context, transport.Conn) error, sendFn func(context.Context, transport.Conn) error) (recR, recS *recordConn) {
		t.Helper()
		ctx := context.Background()
		connR, connS := transport.Pipe()
		defer connR.Close()
		recR, recS = &recordConn{Conn: connR}, &recordConn{Conn: connS}
		ch := make(chan error, 1)
		go func() { ch <- sendFn(ctx, recS) }()
		if err := recvFn(ctx, recR); err != nil {
			t.Fatalf("receiver: %v", err)
		}
		if err := <-ch; err != nil {
			t.Fatalf("sender: %v", err)
		}
		return recR, recS
	}

	t.Run("intersection", func(t *testing.T) {
		recR, recS := run(t,
			func(ctx context.Context, conn transport.Conn) error {
				_, err := IntersectionReceiver(ctx, testConfig(1), conn, vR)
				return err
			},
			func(ctx context.Context, conn transport.Conn) error {
				_, err := IntersectionSender(ctx, testConfig(2), conn, vS)
				return err
			})
		checkTranscript(t, "R", recR, []wire.Kind{wire.KindHeader, wire.KindElements})
		checkTranscript(t, "S", recS, []wire.Kind{wire.KindHeader, wire.KindElements, wire.KindElements})
	})
	t.Run("equijoin", func(t *testing.T) {
		recR, recS := run(t,
			func(ctx context.Context, conn transport.Conn) error {
				_, err := EquijoinReceiver(ctx, testConfig(1), conn, vR)
				return err
			},
			func(ctx context.Context, conn transport.Conn) error {
				_, err := EquijoinSender(ctx, testConfig(2), conn, joinRecords(vS))
				return err
			})
		checkTranscript(t, "R", recR, []wire.Kind{wire.KindHeader, wire.KindElements})
		checkTranscript(t, "S", recS, []wire.Kind{wire.KindHeader, wire.KindPairs, wire.KindExtPairs})
	})
}

// TestLegacyInteropScriptedSender drives an un-migrated sender by hand —
// raw codec, one legacy Elements frame per vector, no knowledge of
// stream kinds — against a ChunkSize = 0 receiver.  The receiver's own
// Y_R must arrive as a single legacy frame, and the run must produce the
// correct intersection.
func TestLegacyInteropScriptedSender(t *testing.T) {
	const nR, nS, shared = 5, 4, 2
	vR, vS := overlapping(nR, nS, shared)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	connR, connS := transport.Pipe()
	defer connR.Close()

	done := make(chan struct{})
	go func() {
		defer close(done)
		m := newMalicious(testConfig(2), connS)
		if m.recv(ctx, t) == nil { // R's header
			return
		}
		m.send(ctx, t, m.header(len(vS)))
		msg := m.recv(ctx, t)
		el, ok := msg.(wire.Elements)
		if !ok {
			t.Errorf("legacy peer got %T for Y_R, want one wire.Elements frame", msg)
			return
		}
		if len(el.Elems) != nR {
			t.Errorf("legacy peer got %d elements, want %d", len(el.Elems), nR)
			return
		}
		key, err := m.cfg.Scheme.GenerateKey(m.cfg.Rand)
		if err != nil {
			t.Errorf("legacy peer keygen: %v", err)
			return
		}
		xs := m.cfg.Oracle.HashAll(vS)
		yS, err := commutative.EncryptAll(ctx, m.cfg.Scheme, key, xs, 1)
		if err != nil {
			t.Errorf("legacy peer encrypt: %v", err)
			return
		}
		m.send(ctx, t, wire.Elements{Elems: sortedCopy(yS)})
		z, err := commutative.EncryptAll(ctx, m.cfg.Scheme, key, el.Elems, 1)
		if err != nil {
			t.Errorf("legacy peer re-encrypt: %v", err)
			return
		}
		m.send(ctx, t, wire.Elements{Elems: z})
	}()

	res, err := IntersectionReceiver(ctx, testConfig(1), connR, vR)
	if err != nil {
		t.Fatalf("receiver against legacy peer: %v", err)
	}
	<-done
	want := plaintextIntersection(vR, vS)
	if len(res.Values) != len(want) {
		t.Fatalf("intersection = %d values, want %d", len(res.Values), len(want))
	}
	for _, v := range res.Values {
		if !want[string(v)] {
			t.Errorf("unexpected intersection value %q", v)
		}
	}
}

// waitGoroutines waits for the goroutine count to drop back to base,
// failing the test if it does not settle.
func waitGoroutines(t *testing.T, base int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		if runtime.NumGoroutine() <= base {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines = %d, want <= %d: pipeline leak", runtime.NumGoroutine(), base)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestStreamFaultMidStreamAbort corrupts R's StreamEnd as seen by S
// (frame 7 on S's conn: header, Begin, ⌈7/2⌉ = 4 chunks, End).  S must
// reject the stream and abort, R must observe the wire.ErrorMsg as
// ErrPeerFailure, and no pipeline goroutine may leak.
func TestStreamFaultMidStreamAbort(t *testing.T) {
	base := runtime.NumGoroutine()
	const nR, nS, shared = 7, 5, 3
	vR, vS := overlapping(nR, nS, shared)

	rErr, sErr := runPairExpectErr(
		func(ctx context.Context, conn transport.Conn) (*IntersectionResult, error) {
			return IntersectionReceiver(ctx, testConfigChunked(1, 2), conn, vR)
		},
		func(ctx context.Context, conn transport.Conn) (*SenderInfo, error) {
			fault := transport.NewFault(conn)
			fault.CorruptRecvAt = 7
			return IntersectionSender(ctx, testConfigChunked(2, 2), fault, vS)
		})
	if !errors.Is(sErr, ErrMalformedReply) {
		t.Errorf("sender err = %v, want ErrMalformedReply", sErr)
	}
	if !errors.Is(rErr, ErrPeerFailure) {
		t.Errorf("receiver err = %v, want ErrPeerFailure", rErr)
	}
	waitGoroutines(t, base)
}

// TestStreamFaultSendFailure fails a mid-stream reply send on S's side
// (frame 9: header, 5 Y_S frames, reply Begin, chunk, failing chunk),
// exercising streamEncryptSend's cancel-and-drain path.
func TestStreamFaultSendFailure(t *testing.T) {
	base := runtime.NumGoroutine()
	const nR, nS, shared = 7, 5, 3
	vR, vS := overlapping(nR, nS, shared)

	rErr, sErr := runPairExpectErr(
		func(ctx context.Context, conn transport.Conn) (*IntersectionResult, error) {
			return IntersectionReceiver(ctx, testConfigChunked(1, 2), conn, vR)
		},
		func(ctx context.Context, conn transport.Conn) (*SenderInfo, error) {
			fault := transport.NewFault(conn)
			fault.FailSendAt = 9
			return IntersectionSender(ctx, testConfigChunked(2, 2), fault, vS)
		})
	if !errors.Is(sErr, transport.ErrInjected) {
		t.Errorf("sender err = %v, want ErrInjected", sErr)
	}
	if rErr == nil {
		t.Error("receiver completed despite the sender dying mid-stream")
	}
	waitGoroutines(t, base)
}

// TestStreamFaultCountersOnlyDeliveredChunks corrupts the Y_S StreamEnd
// as R sees it (frame 6: header, Begin, ⌈5/2⌉ = 3 chunks, End) and
// checks that R's observed frame counters reflect only the frames
// actually delivered before the abort — not the full exchange.
func TestStreamFaultCountersOnlyDeliveredChunks(t *testing.T) {
	base := runtime.NumGoroutine()
	const nR, nS, shared = 7, 5, 3
	const failAt = 6
	vR, vS := overlapping(nR, nS, shared)
	reg := obs.NewRegistry()

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	connR, connS := transport.Pipe()
	sessR := reg.StartSession(obs.SessionInfo{Protocol: "intersection", Role: "receiver"})

	ch := make(chan error, 1)
	go func() {
		_, err := IntersectionSender(ctx, testConfigChunked(2, 2), connS, vS)
		if err != nil {
			connS.Close()
		}
		ch <- err
	}()
	fault := transport.NewFault(connR)
	fault.CorruptRecvAt = failAt
	_, rErr := IntersectionReceiver(obs.WithSession(ctx, sessR), testConfigChunked(1, 2), fault, vR)
	snap := sessR.End(rErr)
	connR.Close()
	<-ch

	if !errors.Is(rErr, ErrMalformedReply) {
		t.Fatalf("receiver err = %v, want ErrMalformedReply", rErr)
	}
	if snap.Counters.FramesRecv != failAt {
		t.Errorf("frames recv = %d, want %d (only delivered frames)", snap.Counters.FramesRecv, failAt)
	}
	// R sent its header, the full Y_R stream (Begin + 4 chunks + End),
	// and the abort ErrorMsg — nothing more.
	if want := int64(1 + 6 + 1); snap.Counters.FramesSent != want {
		t.Errorf("frames sent = %d, want %d", snap.Counters.FramesSent, want)
	}
	waitGoroutines(t, base)
}

// TestParallelChunkValidation exercises the fused sorted/membership
// check across the worker shards: a clean large vector passes, a planted
// non-member is reported by index, a local inversion is reported as a
// sort violation, and with two defects the smaller index wins.
func TestParallelChunkValidation(t *testing.T) {
	cfg := testConfig(1)
	cfg.Parallelism = 4
	s := newSession(context.Background(), cfg, nil)

	elems := sortedCopy(s.cfg.Oracle.HashAll(vals("v", 100)))
	if err := s.checkElems(context.Background(), elems, 100, "vec", true); err != nil {
		t.Fatalf("valid vector rejected: %v", err)
	}

	bad := append([]*big.Int(nil), elems...)
	bad[57] = big.NewInt(0) // never a group member
	err := s.checkElems(context.Background(), bad, 100, "vec", false)
	if !errors.Is(err, ErrMalformedReply) || err == nil {
		t.Fatalf("non-member err = %v, want ErrMalformedReply", err)
	}
	if want := "vec element 57 is not a group member"; err.Error() != "core: malformed peer reply: "+want {
		t.Errorf("non-member err = %q, want suffix %q", err, want)
	}

	unsorted := append([]*big.Int(nil), elems...)
	unsorted[80], unsorted[81] = unsorted[81], unsorted[80]
	err = s.checkElems(context.Background(), unsorted, 100, "vec", true)
	if !errors.Is(err, ErrMalformedReply) {
		t.Fatalf("unsorted err = %v, want ErrMalformedReply", err)
	}

	both := append([]*big.Int(nil), elems...)
	both[90] = big.NewInt(0)
	both[10], both[11] = both[11], both[10]
	err = s.checkElems(context.Background(), both, 100, "vec", true)
	if err == nil {
		t.Fatal("two defects accepted")
	}
	if want := "vec is not sorted at index 11"; err.Error() != "core: malformed peer reply: "+want {
		t.Errorf("two-defect err = %q, want the smaller index: %q", err, want)
	}

	// Cross-chunk sortedness: prev boundary element out of order.
	if err := s.checkChunk(context.Background(), elems[50:], elems[60], 50, "vec", true); err == nil {
		t.Error("chunk accepted despite violating the cross-chunk boundary order")
	}
}
