package core

import (
	"context"
	"math/big"
	"testing"

	"minshare/internal/commutative"
	"minshare/internal/transport"
	"minshare/internal/wire"
)

// tapRun runs a protocol pair with taps on both connections and returns
// the two incoming views.
func tapRun(t *testing.T, vR, vS [][]byte,
	recvFn func(ctx context.Context, cfg Config, conn transport.Conn, values [][]byte) error,
	sendFn func(ctx context.Context, cfg Config, conn transport.Conn, values [][]byte) error,
) (viewR, viewS *transport.Tap) {
	t.Helper()
	cfgR, cfgS := testConfig(1), testConfig(2)
	ctx := context.Background()
	connR, connS := transport.Pipe()
	defer connR.Close()
	tapR := transport.NewTap(connR)
	tapS := transport.NewTap(connS)

	ch := make(chan error, 1)
	go func() { ch <- sendFn(ctx, cfgS, tapS, vS) }()
	if err := recvFn(ctx, cfgR, tapR, vR); err != nil {
		t.Fatalf("receiver: %v", err)
	}
	if err := <-ch; err != nil {
		t.Fatalf("sender: %v", err)
	}
	return tapR, tapS
}

// decodeFrames parses every tapped frame.
func decodeFrames(t *testing.T, cfg Config, frames [][]byte) []wire.Message {
	t.Helper()
	codec := wire.NewCodec(cfg.normalized().Group)
	out := make([]wire.Message, len(frames))
	for i, f := range frames {
		m, err := codec.Decode(f)
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		out[i] = m
	}
	return out
}

// TestIntersectionSenderViewIsMinimal checks Statement 2's content for S:
// apart from the header, S's entire incoming view is ONE message holding
// exactly |V_R| sorted group elements — nothing about which values they
// are.
func TestIntersectionSenderViewIsMinimal(t *testing.T) {
	vR, vS := overlapping(7, 9, 3)
	_, tapS := tapRun(t, vR, vS,
		func(ctx context.Context, cfg Config, conn transport.Conn, values [][]byte) error {
			_, err := IntersectionReceiver(ctx, cfg, conn, values)
			return err
		},
		func(ctx context.Context, cfg Config, conn transport.Conn, values [][]byte) error {
			_, err := IntersectionSender(ctx, cfg, conn, values)
			return err
		})

	msgs := decodeFrames(t, testConfig(0), tapS.Received())
	if len(msgs) != 2 {
		t.Fatalf("S received %d messages, want 2 (header + Y_R)", len(msgs))
	}
	hdr, ok := msgs[0].(wire.Header)
	if !ok {
		t.Fatalf("first message is %T", msgs[0])
	}
	if hdr.SetSize != 7 {
		t.Errorf("header announces %d, want |V_R| = 7", hdr.SetSize)
	}
	el, ok := msgs[1].(wire.Elements)
	if !ok {
		t.Fatalf("second message is %T", msgs[1])
	}
	if len(el.Elems) != 7 {
		t.Errorf("Y_R carries %d elements, want 7", len(el.Elems))
	}
	for i := 1; i < len(el.Elems); i++ {
		if el.Elems[i-1].Cmp(el.Elems[i]) > 0 {
			t.Fatal("Y_R not sorted: positional information leaks (footnote 3)")
		}
	}
}

// TestIntersectionSizeReceiverViewDetached checks the crucial difference
// of Section 5.1: the Z_R vector R receives is sorted, hence carries no
// alignment with the Y_R that R sent.
func TestIntersectionSizeReceiverViewDetached(t *testing.T) {
	vR, vS := overlapping(8, 5, 2)
	tapR, _ := tapRun(t, vR, vS,
		func(ctx context.Context, cfg Config, conn transport.Conn, values [][]byte) error {
			_, err := IntersectionSizeReceiver(ctx, cfg, conn, values)
			return err
		},
		func(ctx context.Context, cfg Config, conn transport.Conn, values [][]byte) error {
			_, err := IntersectionSizeSender(ctx, cfg, conn, values)
			return err
		})

	msgs := decodeFrames(t, testConfig(0), tapR.Received())
	// header, Y_S, Z_R
	if len(msgs) != 3 {
		t.Fatalf("R received %d messages, want 3", len(msgs))
	}
	for i, m := range msgs[1:] {
		el, ok := m.(wire.Elements)
		if !ok {
			t.Fatalf("message %d is %T", i+1, m)
		}
		for j := 1; j < len(el.Elems); j++ {
			if el.Elems[j-1].Cmp(el.Elems[j]) > 0 {
				t.Fatalf("message %d not sorted", i+1)
			}
		}
	}
}

// TestIntersectionComputationCounts verifies the Section 6.1 computation
// formula *exactly*: the intersection protocol performs
// 2(|V_S| + |V_R|) C_e operations in total.
func TestIntersectionComputationCounts(t *testing.T) {
	nR, nS, shared := 11, 6, 2
	vR, vS := overlapping(nR, nS, shared)

	cfgR, cfgS := testConfig(1), testConfig(2)
	countR := commutative.NewCounting(commutative.NewPowerFn(cfgR.Group))
	countS := commutative.NewCounting(commutative.NewPowerFn(cfgS.Group))
	cfgR.Scheme = countR
	cfgS.Scheme = countS

	runPair(t,
		func(ctx context.Context, conn transport.Conn) (*IntersectionResult, error) {
			return IntersectionReceiver(ctx, cfgR, conn, vR)
		},
		func(ctx context.Context, conn transport.Conn) (*SenderInfo, error) {
			return IntersectionSender(ctx, cfgS, conn, vS)
		})

	// R encrypts V_R once and Y_S once: |V_R| + |V_S| ops.
	if got, want := countR.Ops(), int64(nR+nS); got != want {
		t.Errorf("R performed %d C_e ops, want %d", got, want)
	}
	// S encrypts V_S once and Y_R once: |V_S| + |V_R| ops.
	if got, want := countS.Ops(), int64(nR+nS); got != want {
		t.Errorf("S performed %d C_e ops, want %d", got, want)
	}
	// Total = 2(|V_S|+|V_R|), the paper's approximate intersection cost.
	if got, want := countR.Ops()+countS.Ops(), int64(2*(nR+nS)); got != want {
		t.Errorf("total C_e ops = %d, want %d", got, want)
	}
}

// TestEquijoinComputationCounts verifies the Section 6.1 join formula:
// 2C_e|V_S| + 5C_e|V_R| in total, split as S: 2|V_S|+2|V_R| and
// R: 3|V_R| (one encryption of V_R plus two decryptions per element).
func TestEquijoinComputationCounts(t *testing.T) {
	nR, nS, shared := 9, 7, 4
	vR, vS := overlapping(nR, nS, shared)

	cfgR, cfgS := testConfig(1), testConfig(2)
	countR := commutative.NewCounting(commutative.NewPowerFn(cfgR.Group))
	countS := commutative.NewCounting(commutative.NewPowerFn(cfgS.Group))
	cfgR.Scheme = countR
	cfgS.Scheme = countS

	runPair(t,
		func(ctx context.Context, conn transport.Conn) (*JoinResult, error) {
			return EquijoinReceiver(ctx, cfgR, conn, vR)
		},
		func(ctx context.Context, conn transport.Conn) (*SenderInfo, error) {
			return EquijoinSender(ctx, cfgS, conn, mkRecords(vS))
		})

	if got, want := countR.Ops(), int64(3*nR); got != want {
		t.Errorf("R performed %d C_e ops, want 3|V_R| = %d", got, want)
	}
	if got, want := countS.Ops(), int64(2*nS+2*nR); got != want {
		t.Errorf("S performed %d C_e ops, want 2|V_S|+2|V_R| = %d", got, want)
	}
	if got, want := countR.Ops()+countS.Ops(), int64(2*nS+5*nR); got != want {
		t.Errorf("total = %d, want 2|V_S|+5|V_R| = %d", got, want)
	}
}

// TestIntersectionCommunicationBytes verifies the Section 6.1
// communication formula exactly: (|V_S| + 2|V_R|)·k bits of group
// elements flow during the intersection protocol (excluding the two
// fixed-size headers and fixed per-message framing).
func TestIntersectionCommunicationBytes(t *testing.T) {
	nR, nS, shared := 10, 13, 5
	vR, vS := overlapping(nR, nS, shared)
	cfgR, cfgS := testConfig(1), testConfig(2)

	ctx := context.Background()
	connR, connS := transport.Pipe()
	defer connR.Close()
	meterR := transport.NewMeter(connR)

	ch := make(chan error, 1)
	go func() {
		_, err := IntersectionSender(ctx, cfgS, connS, vS)
		ch <- err
	}()
	if _, err := IntersectionReceiver(ctx, cfgR, meterR, vR); err != nil {
		t.Fatal(err)
	}
	if err := <-ch; err != nil {
		t.Fatal(err)
	}

	elem := int64(cfgR.Group.ElementLen())
	// kind + proto + bits + digest + size + version + trace id + span id
	const headerLen = 1 + 1 + 4 + 32 + 8 + 8 + 16 + 8
	const vecOverhead = 1 + 4 // kind + count

	wantSent := int64(headerLen) + vecOverhead + int64(nR)*elem
	if got := meterR.BytesSent(); got != wantSent {
		t.Errorf("R sent %d bytes, want %d (header + |V_R| elements)", got, wantSent)
	}
	wantRecv := int64(headerLen) + 2*vecOverhead + int64(nS+nR)*elem
	if got := meterR.BytesRecv(); got != wantRecv {
		t.Errorf("R received %d bytes, want %d (header + (|V_S|+|V_R|) elements)", got, wantRecv)
	}
	// Total element payload = (|V_S| + 2|V_R|)·k bits, the paper formula.
	gotElems := meterR.TotalBytes() - 2*headerLen - 3*vecOverhead
	if want := int64(nS+2*nR) * elem; gotElems != want {
		t.Errorf("element traffic = %d bytes, want (|V_S|+2|V_R|)k = %d", gotElems, want)
	}
}

// TestEquijoinCommunicationBytes verifies the join communication formula
// (|V_S| + 3|V_R|)·k + |V_S|·k' (k' = ciphertext size for our ext
// payloads) against metered traffic.
func TestEquijoinCommunicationBytes(t *testing.T) {
	nR, nS, shared := 6, 8, 3
	vR, vS := overlapping(nR, nS, shared)
	cfgR, cfgS := testConfig(1), testConfig(2)

	// Fix every ext payload to the same length so k' is well defined.
	recs := make([]JoinRecord, len(vS))
	for i, v := range vS {
		ext := make([]byte, 24)
		copy(ext, v)
		recs[i] = JoinRecord{Value: v, Ext: ext}
	}

	ctx := context.Background()
	connR, connS := transport.Pipe()
	defer connR.Close()
	meterR := transport.NewMeter(connR)

	ch := make(chan error, 1)
	go func() {
		_, err := EquijoinSender(ctx, cfgS, connS, recs)
		ch <- err
	}()
	if _, err := EquijoinReceiver(ctx, cfgR, meterR, vR); err != nil {
		t.Fatal(err)
	}
	if err := <-ch; err != nil {
		t.Fatal(err)
	}

	elem := int64(cfgR.Group.ElementLen())
	kPrime := int64(cfgR.normalized().Cipher.CiphertextLen(24))
	const headerLen = 1 + 1 + 4 + 32 + 8 + 8 + 16 + 8
	const vecOverhead = 1 + 4
	const extLenPrefix = 4 // per-ext length prefix inside ExtPairs

	// R sends: header + |V_R| elements.
	wantSent := int64(headerLen) + vecOverhead + int64(nR)*elem
	if got := meterR.BytesSent(); got != wantSent {
		t.Errorf("R sent %d bytes, want %d", got, wantSent)
	}
	// R receives: header + 2|V_R| elements (pairs) + |V_S| elements with
	// |V_S| ciphertexts (ext pairs).
	wantRecv := int64(headerLen) +
		vecOverhead + 2*int64(nR)*elem +
		vecOverhead + int64(nS)*(elem+extLenPrefix+kPrime)
	if got := meterR.BytesRecv(); got != wantRecv {
		t.Errorf("R received %d bytes, want %d", got, wantRecv)
	}
	// Element+ciphertext payload matches (|V_S|+3|V_R|)k + |V_S|k'.
	gotPayload := meterR.TotalBytes() - 2*headerLen - 3*vecOverhead - int64(nS)*extLenPrefix
	if want := int64(nS+3*nR)*elem + int64(nS)*kPrime; gotPayload != want {
		t.Errorf("payload = %d bytes, want (|V_S|+3|V_R|)k + |V_S|k' = %d", gotPayload, want)
	}
}

// TestDoubleEncryptionsMatchAcrossParties is the algebraic heart of every
// protocol: f_eS(f_eR(h(v))) computed by S equals f_eR(f_eS(h(v)))
// computed by R, for the same v — and differs for different v.
func TestDoubleEncryptionsMatchAcrossParties(t *testing.T) {
	cfg := testConfig(1).normalized()
	o := cfg.Oracle
	s := cfg.Scheme
	kR, _ := s.GenerateKey(cfg.Rand)
	kS, _ := s.GenerateKey(cfg.Rand)

	hv := o.HashString("shared-value")
	viaR, err := s.Encrypt(kS, mustEncrypt(t, s, kR, hv))
	if err != nil {
		t.Fatal(err)
	}
	viaS, err := s.Encrypt(kR, mustEncrypt(t, s, kS, hv))
	if err != nil {
		t.Fatal(err)
	}
	if viaR.Cmp(viaS) != 0 {
		t.Fatal("double encryptions disagree for the same value")
	}

	other := o.HashString("different-value")
	viaOther, err := s.Encrypt(kR, mustEncrypt(t, s, kS, other))
	if err != nil {
		t.Fatal(err)
	}
	if viaOther.Cmp(viaR) == 0 {
		t.Fatal("double encryptions collide for different values")
	}
}

func mustEncrypt(t *testing.T, s commutative.Scheme, k *commutative.Key, x *big.Int) *big.Int {
	t.Helper()
	y, err := s.Encrypt(k, x)
	if err != nil {
		t.Fatal(err)
	}
	return y
}
