package core

import (
	"context"
	"fmt"

	"minshare/internal/obs"
	"minshare/internal/transport"
	"minshare/internal/wire"
)

// SizeResult is what party R learns from the intersection-size protocol:
// the two sizes of Section 2.2.1 and nothing about membership.
type SizeResult struct {
	// IntersectionSize is |V_S ∩ V_R|.
	IntersectionSize int
	// SenderSetSize is |V_S|.
	SenderSetSize int
}

// IntersectionSizeReceiver runs party R of the intersection-size
// protocol of Section 5.1.1.  The difference from the intersection
// protocol is confined to step 4(b): S returns only the lexicographically
// reordered encryptions of R's values, not paired with the originals, so
// R cannot match them back to its own values and learns only the overlap
// cardinality.
func IntersectionSizeReceiver(ctx context.Context, cfg Config, conn transport.Conn, values [][]byte) (*SizeResult, error) {
	s := newSession(ctx, cfg, conn)
	vR := dedup(values)

	peerSize, err := s.handshake(ctx, wire.ProtoIntersectionSize, len(vR), true)
	if err != nil {
		return nil, err
	}

	// Steps 1-2: hash, draw e_R, encrypt.
	sp := obs.StartSpan(ctx, "hash-to-group")
	xR, err := s.hashSet(vR)
	sp.End()
	if err != nil {
		return nil, s.abort(ctx, err)
	}
	eR, err := s.cfg.Scheme.GenerateKey(s.cfg.Rand)
	if err != nil {
		return nil, s.abort(ctx, fmt.Errorf("core: generating e_R: %w", err))
	}
	sp = obs.StartSpan(ctx, "bulk-encrypt")
	yR, err := s.encryptSet(ctx, eR, xR)
	sp.End()
	if err != nil {
		return nil, s.abort(ctx, err)
	}

	// Step 3: send Y_R sorted.  No permutation bookkeeping is needed —
	// nothing that comes back can be aligned, by design.
	sp = obs.StartSpan(ctx, "exchange")
	if err := s.send(ctx, wire.Elements{Elems: sortedCopy(yR)}); err != nil {
		return nil, err
	}

	// Step 4(a): receive Y_S sorted.
	m, err := s.recv(ctx, wire.KindElements)
	if err != nil {
		return nil, err
	}
	yS := m.(wire.Elements).Elems
	if err := s.checkVector(yS, peerSize, "Y_S"); err != nil {
		return nil, s.abort(ctx, err)
	}
	if err := s.checkSorted(yS, "Y_S"); err != nil {
		return nil, s.abort(ctx, err)
	}

	// Step 4(b): receive Z_R = f_eS(f_eR(h(V_R))), reordered
	// lexicographically — the detachment from the y's is the whole point.
	m, err = s.recv(ctx, wire.KindElements)
	sp.End()
	if err != nil {
		return nil, err
	}
	zR := m.(wire.Elements).Elems
	if err := s.checkVector(zR, len(vR), "Z_R"); err != nil {
		return nil, s.abort(ctx, err)
	}
	if err := s.checkSorted(zR, "Z_R"); err != nil {
		return nil, s.abort(ctx, err)
	}

	// Step 5: Z_S = f_eR(Y_S).
	sp = obs.StartSpan(ctx, "re-encrypt")
	zS, err := s.encryptSet(ctx, eR, yS)
	sp.End()
	if err != nil {
		return nil, s.abort(ctx, err)
	}

	// Step 6: |Z_S ∩ Z_R| = |V_S ∩ V_R|.
	sp = obs.StartSpan(ctx, "match")
	defer sp.End()
	zSet := make(map[string]struct{}, len(zS))
	for _, z := range zS {
		zSet[elemKey(z)] = struct{}{}
	}
	size := 0
	for _, z := range zR {
		if _, hit := zSet[elemKey(z)]; hit {
			size++
		}
	}
	return &SizeResult{IntersectionSize: size, SenderSetSize: peerSize}, nil
}

// IntersectionSizeSender runs party S of the intersection-size protocol
// of Section 5.1.1.
func IntersectionSizeSender(ctx context.Context, cfg Config, conn transport.Conn, values [][]byte) (*SenderInfo, error) {
	s := newSession(ctx, cfg, conn)
	vS := dedup(values)

	peerSize, err := s.handshake(ctx, wire.ProtoIntersectionSize, len(vS), false)
	if err != nil {
		return nil, err
	}

	// Steps 1-2.
	sp := obs.StartSpan(ctx, "hash-to-group")
	xS, err := s.hashSet(vS)
	sp.End()
	if err != nil {
		return nil, s.abort(ctx, err)
	}
	eS, err := s.cfg.Scheme.GenerateKey(s.cfg.Rand)
	if err != nil {
		return nil, s.abort(ctx, fmt.Errorf("core: generating e_S: %w", err))
	}
	sp = obs.StartSpan(ctx, "bulk-encrypt")
	yS, err := s.encryptSet(ctx, eS, xS)
	sp.End()
	if err != nil {
		return nil, s.abort(ctx, err)
	}

	// Step 3 (peer): receive Y_R.
	sp = obs.StartSpan(ctx, "exchange")
	m, err := s.recv(ctx, wire.KindElements)
	if err != nil {
		return nil, err
	}
	yR := m.(wire.Elements).Elems
	if err := s.checkVector(yR, peerSize, "Y_R"); err != nil {
		return nil, s.abort(ctx, err)
	}
	if err := s.checkSorted(yR, "Y_R"); err != nil {
		return nil, s.abort(ctx, err)
	}

	// Step 4(a): ship Y_S sorted.
	err = s.send(ctx, wire.Elements{Elems: sortedCopy(yS)})
	sp.End()
	if err != nil {
		return nil, err
	}

	// Step 4(b): ship Z_R = f_eS(Y_R), *reordered lexicographically* so R
	// cannot match encryptions back to its values.
	sp = obs.StartSpan(ctx, "re-encrypt")
	zR, err := s.encryptSet(ctx, eS, yR)
	if err != nil {
		sp.End()
		return nil, s.abort(ctx, err)
	}
	err = s.send(ctx, wire.Elements{Elems: sortedCopy(zR)})
	sp.End()
	if err != nil {
		return nil, err
	}
	return &SenderInfo{ReceiverSetSize: peerSize}, nil
}
