package core

import (
	"context"
	"fmt"
	"math/big"

	"minshare/internal/obs"
	"minshare/internal/transport"
	"minshare/internal/wire"
)

// SizeResult is what party R learns from the intersection-size protocol:
// the two sizes of Section 2.2.1 and nothing about membership.
type SizeResult struct {
	// IntersectionSize is |V_S ∩ V_R|.
	IntersectionSize int
	// SenderSetSize is |V_S|.
	SenderSetSize int
	// SenderDataVersion is the data version S announced in its
	// handshake header (0 if S is unversioned).
	SenderDataVersion uint64
}

// IntersectionSizeReceiver runs party R of the intersection-size
// protocol of Section 5.1.1.  The difference from the intersection
// protocol is confined to step 4(b): S returns only the lexicographically
// reordered encryptions of R's values, not paired with the originals, so
// R cannot match them back to its own values and learns only the overlap
// cardinality.
func IntersectionSizeReceiver(ctx context.Context, cfg Config, conn transport.Conn, values [][]byte) (*SizeResult, error) {
	if cfg.Shards > 1 {
		return shardedIntersectionSizeReceiver(ctx, cfg, conn, values)
	}
	s := newSession(ctx, cfg, conn)
	vR := dedup(values)

	peerSize, err := s.handshake(ctx, wire.ProtoIntersectionSize, len(vR), true)
	if err != nil {
		return nil, err
	}

	// Steps 1-2: hash, draw e_R, encrypt.
	sp := obs.StartSpan(ctx, "hash-to-group")
	xR, err := s.hashSet(vR)
	sp.End()
	if err != nil {
		return nil, s.abort(ctx, err)
	}
	eR, err := s.cfg.Scheme.GenerateKey(s.cfg.Rand)
	if err != nil {
		return nil, s.abort(ctx, fmt.Errorf("core: generating e_R: %w", err))
	}
	sp = obs.StartSpan(ctx, "bulk-encrypt")
	yR, err := s.encryptSet(ctx, eR, xR)
	sp.End()
	if err != nil {
		return nil, s.abort(ctx, err)
	}

	// Step 3: send Y_R sorted.  No permutation bookkeeping is needed —
	// nothing that comes back can be aligned, by design.
	sp = obs.StartSpan(ctx, "exchange")
	if err := s.sendElems(ctx, sortedCopy(yR)); err != nil {
		sp.End()
		return nil, err
	}

	// Steps 4(a)+5 pipelined: receive Y_S sorted, re-encrypting each
	// chunk into Z_S = f_eR(Y_S) while the next is in flight.
	_, zS, err := s.recvReencryptStream(ctx, eR, peerSize, "Y_S", true)
	if err != nil {
		sp.End()
		return nil, err
	}

	// Step 4(b): receive Z_R = f_eS(f_eR(h(V_R))), reordered
	// lexicographically — the detachment from the y's is the whole point.
	zR, err := s.recvElems(ctx, len(vR), "Z_R", true)
	sp.End()
	if err != nil {
		return nil, err
	}

	// Step 6: |Z_S ∩ Z_R| = |V_S ∩ V_R|.
	sp = obs.StartSpan(ctx, "match")
	defer sp.End()
	ky := s.newKeyer()
	zSet := make(map[string]struct{}, len(zS))
	for _, z := range zS {
		zSet[ky.key(z)] = struct{}{}
	}
	size := 0
	for _, z := range zR {
		if _, hit := zSet[ky.key(z)]; hit {
			size++
		}
	}
	return &SizeResult{IntersectionSize: size, SenderSetSize: peerSize, SenderDataVersion: s.peerVersion}, nil
}

// IntersectionSizeSender runs party S of the intersection-size protocol
// of Section 5.1.1.
func IntersectionSizeSender(ctx context.Context, cfg Config, conn transport.Conn, values [][]byte) (*SenderInfo, error) {
	if cfg.Shards > 1 {
		return shardedIntersectionSizeSender(ctx, cfg, conn, values)
	}
	s := newSession(ctx, cfg, conn)
	vS := dedup(values)

	peerSize, err := s.handshake(ctx, wire.ProtoIntersectionSize, len(vS), false)
	if err != nil {
		return nil, err
	}

	// Steps 1-2 — replayed from the encrypted-set cache when this peer
	// has queried this table version before.
	eS, sortedYS, err := s.ownEncryptedSet(ctx, vS)
	if err != nil {
		return nil, err
	}

	// Step 3 (peer) + step 4(a): receive Y_R and ship Y_S sorted,
	// full-duplex in streaming mode.
	sp := obs.StartSpan(ctx, "exchange")
	var yR []*big.Int
	err = s.duplex(ctx, true,
		func(ctx context.Context) error { return s.sendElems(ctx, sortedYS) },
		func(ctx context.Context) error {
			var rerr error
			yR, rerr = s.recvElems(ctx, peerSize, "Y_R", true)
			return rerr
		})
	sp.End()
	if err != nil {
		return nil, err
	}

	// Step 4(b): ship Z_R = f_eS(Y_R), *reordered lexicographically* so R
	// cannot match encryptions back to its values.  Sorting needs the
	// complete vector, so the encryption cannot overlap this send; the
	// sorted result still streams out chunked.
	sp = obs.StartSpan(ctx, "re-encrypt")
	zR, err := s.encryptSet(ctx, eS, yR)
	if err != nil {
		sp.End()
		return nil, s.abort(ctx, err)
	}
	err = s.sendElems(ctx, sortedCopy(zR))
	sp.End()
	if err != nil {
		return nil, err
	}
	return &SenderInfo{ReceiverSetSize: peerSize}, nil
}
