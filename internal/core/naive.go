package core

import (
	"context"
	"math/big"

	"minshare/internal/obs"
	"minshare/internal/oracle"
	"minshare/internal/transport"
	"minshare/internal/wire"
)

// The naive hash-exchange protocol of Section 3.1.  It "appears to work"
// — R does compute the correct intersection — but it is NOT secure: R can
// probe h(v) for any candidate v and test membership in the received
// X_S, and for a small domain can enumerate V_S completely.  It is
// implemented here as the negative baseline the paper opens with;
// NaiveDictionaryAttack demonstrates the break, and the package tests
// show the same attack fails against the real protocol's transcript.

// NaiveResult is what party R (over-)learns from the naive protocol.
type NaiveResult struct {
	// Values is V_S ∩ V_R.
	Values [][]byte
	// HashedSenderSet is the raw X_S = h(V_S) that S shipped — the
	// excess information that makes the protocol insecure.
	HashedSenderSet []*big.Int
}

// NaiveHashReceiver runs party R of the Section 3.1 protocol: it hashes
// its own set, receives X_S, and intersects.
func NaiveHashReceiver(ctx context.Context, cfg Config, conn transport.Conn, values [][]byte) (*NaiveResult, error) {
	s := newSession(ctx, cfg, conn)
	vR := dedup(values)

	if _, err := s.handshake(ctx, wire.ProtoNaiveHash, len(vR), true); err != nil {
		return nil, err
	}

	// Step 2 (peer): S sends its hashed set X_S.
	sp := obs.StartSpan(ctx, "exchange")
	m, err := s.recv(ctx, wire.KindElements)
	sp.End()
	if err != nil {
		return nil, err
	}
	xS := m.(wire.Elements).Elems

	// Step 3: set aside all v ∈ V_R with h(v) ∈ X_S.
	sp = obs.StartSpan(ctx, "match")
	defer sp.End()
	inXS := make(map[string]struct{}, len(xS))
	for _, x := range xS {
		inXS[elemKey(x)] = struct{}{}
	}
	res := &NaiveResult{HashedSenderSet: xS}
	for _, v := range vR {
		if _, hit := inXS[elemKey(s.cfg.Oracle.Hash(v))]; hit {
			res.Values = append(res.Values, v)
		}
	}
	return res, nil
}

// NaiveHashSender runs party S of the Section 3.1 protocol: it ships
// h(V_S) and learns |V_R| from the handshake.
func NaiveHashSender(ctx context.Context, cfg Config, conn transport.Conn, values [][]byte) (*SenderInfo, error) {
	s := newSession(ctx, cfg, conn)
	vS := dedup(values)

	peerSize, err := s.handshake(ctx, wire.ProtoNaiveHash, len(vS), false)
	if err != nil {
		return nil, err
	}
	sp := obs.StartSpan(ctx, "hash-to-group")
	xS := s.cfg.Oracle.HashAll(vS)
	sp.End()
	sp = obs.StartSpan(ctx, "exchange")
	err = s.send(ctx, wire.Elements{Elems: sortedCopy(xS)})
	sp.End()
	if err != nil {
		return nil, err
	}
	return &SenderInfo{ReceiverSetSize: peerSize}, nil
}

// NaiveDictionaryAttack mounts the attack of Section 3.1 against a
// transcript: given the hashed set X_S that the naive protocol shipped
// and a candidate domain, it returns every candidate value that is
// (provably) a member of V_S.  "If the domain V is small, R can
// exhaustively go over all possible values and completely learn V_S."
func NaiveDictionaryAttack(o *oracle.Oracle, hashedSenderSet []*big.Int, domain [][]byte) [][]byte {
	inXS := make(map[string]struct{}, len(hashedSenderSet))
	for _, x := range hashedSenderSet {
		inXS[elemKey(x)] = struct{}{}
	}
	var recovered [][]byte
	for _, candidate := range domain {
		if _, hit := inXS[elemKey(o.Hash(candidate))]; hit {
			recovered = append(recovered, candidate)
		}
	}
	return recovered
}

// DictionaryAttackElements mounts the same attack against an arbitrary
// vector of received group elements — e.g. the Y_S of the *real*
// intersection protocol.  Against commutative encryption the attack
// recovers nothing (no candidate's bare hash appears), which the tests
// assert: the contrast is exactly why Section 3.3 encrypts the hashes.
func DictionaryAttackElements(o *oracle.Oracle, received []*big.Int, domain [][]byte) [][]byte {
	return NaiveDictionaryAttack(o, received, domain)
}
