package core

import (
	"context"
	"math/big"
	"time"

	"minshare/internal/commutative"
	"minshare/internal/obs"
	"minshare/internal/wire"
)

// DefaultDeltaChurnMax is the churn bound the delta-upgrade path applies
// when Config.DeltaChurnMax is zero: a delta touching more than a
// quarter of the current set is rebuilt from scratch instead.  Around
// that point the upgrade's per-value bookkeeping stops winning over the
// bulk-exponentiation pipeline's parallelism.
const DefaultDeltaChurnMax = 0.25

// SetDelta reports how a party's value set changed between two data
// versions, in the vocabulary of the protocol layer: inserted and
// updated values carry their ext(v) payloads (empty for the set
// protocols, which have none), deleted values are bare.  An updated
// value is present at both versions with a changed ext(v) — it does not
// affect set membership, only the equijoin's payload ciphertexts.
type SetDelta struct {
	// From and To are the data versions the delta spans.
	From, To uint64
	// Inserted and Updated hold the changed values with their current
	// ext(v); Deleted holds the values no longer present.
	Inserted []JoinRecord
	Updated  []JoinRecord
	Deleted  [][]byte
}

// Empty reports whether the delta carries no changes.
func (d SetDelta) Empty() bool {
	return len(d.Inserted) == 0 && len(d.Updated) == 0 && len(d.Deleted) == 0
}

// DeltaSource answers "how did my value set change since version v?" —
// the question the cache-upgrade and standing-query paths put to the
// private database.  internal/party adapts reldb.AttributeSource to
// this interface; core deliberately does not import reldb.
type DeltaSource interface {
	// Version returns the current data version.
	Version() uint64
	// DeltaSince reports the changes between version from and the
	// current version.  ok is false when the delta cannot be
	// reconstructed (derived table, version outside the bounded change
	// log) and the caller must fall back to a full rebuild.
	DeltaSince(from uint64) (SetDelta, bool)
	// Wait blocks until the version moves past from or ctx ends.
	Wait(ctx context.Context, from uint64) error
}

// deltaUpgradable reports whether the delta-upgrade path applies to a
// protocol's cached state.  The set protocols and the equijoin cache
// one entry per *distinct* value, which is exactly what a SetDelta
// describes; the equijoin-size protocol caches the encrypted multiset
// (duplicate ciphertexts included), whose multiplicities a value-level
// delta cannot maintain.  Sharded entries are likewise excluded: a
// table-level delta spans all partitions, and upgrading one shard's
// entry would need the delta re-partitioned by hash prefix.
func (s *session) deltaUpgradable() bool {
	if s.cfg.SetCache == nil || s.cfg.DeltaSource == nil || s.cfg.DeltaChurnMax < 0 {
		return false
	}
	if s.cfg.CacheKey.Shards != 0 {
		return false
	}
	switch s.cfg.CacheKey.Protocol {
	case wire.ProtoIntersection, wire.ProtoIntersectionSize, wire.ProtoEquijoin:
		return true
	}
	return false
}

// upgradeCachedEntry tries to bring a stale cached entry for this run's
// slot up to the current data version by re-encrypting only the delta:
// the O(churn) alternative to the O(|V|) rebuild.  nValues is the
// current set size (the churn bound's denominator); wantPayload selects
// the equijoin shape, where inserted and updated values also need fresh
// K(κ(v), ext(v)) ciphertexts under the entry's retained e'_S.
//
// On success the upgraded entry is already cached under the current key
// (displacing the stale one) and the upgrade is counted; any failure —
// no stale entry, delta unavailable, churn over Config.DeltaChurnMax,
// or a delta/set conflict — counts a rebuild (when an upgrade was
// actually attempted) and returns false so the caller runs the cold
// path.
func (s *session) upgradeCachedEntry(ctx context.Context, nValues int, wantPayload bool) (*CacheEntry, bool) {
	if !s.deltaUpgradable() {
		return nil, false
	}
	var start time.Time
	if s.lat != nil {
		start = time.Now()
	}
	ent, staleVer, ok := s.cfg.SetCache.LookupStale(s.cfg.CacheKey)
	if !ok {
		return nil, false
	}
	if wantPayload && (ent.Set.Payload() == nil || ent.ExtKey == nil) {
		return nil, false
	}
	stats := s.cfg.SetCache.stats
	d, ok := s.cfg.DeltaSource.DeltaSince(staleVer)
	if !ok || d.To != s.cfg.DataVersion || d.From != staleVer {
		stats.AddRebuild()
		return nil, false
	}
	churn := len(d.Inserted) + len(d.Deleted)
	if wantPayload {
		churn += len(d.Updated)
	}
	if float64(churn) > s.cfg.DeltaChurnMax*float64(nValues) {
		stats.AddRebuild()
		return nil, false
	}

	// Hash the churn values (C_h = churn), then re-encrypt them under the
	// entry's pinned key inside ApplyDelta (C_e = churn).  Updated values
	// do not change set membership, so the set protocols skip them
	// entirely — zero work for an ext-only change.
	var insV, updV [][]byte
	var insExt, updExt [][]byte
	for _, r := range d.Inserted {
		insV = append(insV, r.Value)
		insExt = append(insExt, r.Ext)
	}
	if wantPayload {
		for _, r := range d.Updated {
			updV = append(updV, r.Value)
			updExt = append(updExt, r.Ext)
		}
	}
	all := make([][]byte, 0, len(insV)+len(updV)+len(d.Deleted))
	all = append(all, insV...)
	all = append(all, updV...)
	all = append(all, d.Deleted...)
	hs, err := s.hashSet(all)
	if err != nil {
		stats.AddRebuild()
		return nil, false
	}
	insH := hs[:len(insV)]
	updH := hs[len(insV) : len(insV)+len(updV)]
	delH := hs[len(insV)+len(updV):]

	var insP, updP [][]byte
	if wantPayload {
		// κ(v) = f_e'S(h(v)) for every upserted value, then the payload
		// ciphertext K(κ(v), ext(v)) — one C_e and one C_K per upsert.
		insP, err = s.encryptExts(ctx, ent.ExtKey, insH, insExt)
		if err == nil {
			updP, err = s.encryptExts(ctx, ent.ExtKey, updH, updExt)
		}
		if err != nil {
			stats.AddRebuild()
			return nil, false
		}
	}
	next, _, err := ent.Set.ApplyDelta(ctx, s.cfg.Scheme, insH, updH, delH, insP, updP, s.cfg.Parallelism)
	if err != nil {
		stats.AddRebuild()
		return nil, false
	}
	up := &CacheEntry{Set: next, ExtKey: ent.ExtKey}
	s.cachePut(up)
	stats.AddUpgrade()
	if s.lat != nil {
		s.lat.Record(obs.LatCacheUpgrade, time.Since(start))
	}
	return up, true
}

// encryptExts computes the equijoin payload ciphertexts
// K(f_extKey(h(v)), ext(v)) for hashed values hs with aligned payloads
// exts.  Degenerate empty input returns an empty (non-nil) slice so
// ApplyDelta's payload-alignment check holds even with zero upserts.
func (s *session) encryptExts(ctx context.Context, extKey *commutative.Key, hs []*big.Int, exts [][]byte) ([][]byte, error) {
	kappas, err := s.encryptSet(ctx, extKey, hs)
	if err != nil {
		return nil, err
	}
	out := make([][]byte, len(hs))
	for i := range hs {
		out[i], err = s.cfg.Cipher.Encrypt(kappas[i], exts[i])
		if err != nil {
			return nil, err
		}
		if s.counters != nil {
			s.counters.AddPayloadEncrypts(1)
		}
	}
	return out, nil
}
