package core

import (
	"bytes"
	"context"
	"math/big"

	"sync"
	"testing"

	"minshare/internal/commutative"
	"minshare/internal/costmodel"
	"minshare/internal/group"
	"minshare/internal/obs"
	"minshare/internal/transport"
	"minshare/internal/wire"
)

// These tests certify the encrypted-set cache against the Section 6.1
// closed forms: a warm sender must save *exactly* the modular
// exponentiations, oracle hashes, key draws and payload encryptions the
// costmodel warm-delta functions predict — in both the legacy one-shot
// and the chunked streaming wire modes — while producing bit-identical
// protocol results.

// cacheKey is the slot used by the single-peer tests.
func cacheKey(p wire.Protocol) SetCacheKey {
	return SetCacheKey{PeerHost: "peer-1", Table: "t", Version: 1, Protocol: p}
}

// senderConfig returns a seeded sender config wired to cache.
func senderConfig(seed int64, cache *SenderSetCache, key SetCacheKey, chunk int) Config {
	cfg := testConfig(seed)
	cfg.SetCache = cache
	cfg.CacheKey = key
	cfg.ChunkSize = chunk
	return cfg
}

func TestCacheWarmIntersectionExactDelta(t *testing.T) {
	const nR, nS, shared = 7, 5, 3
	for _, mode := range []struct {
		name  string
		chunk int
	}{{"legacy", 0}, {"chunked", 3}} {
		t.Run(mode.name, func(t *testing.T) {
			vR, vS := overlapping(nR, nS, shared)
			cache := NewSenderSetCache(0, nil)
			cfgS := senderConfig(2, cache, cacheKey(wire.ProtoIntersection), mode.chunk)

			run := func(seedR int64) (*IntersectionResult, obs.SessionSnapshot, obs.SessionSnapshot) {
				reg := obs.NewRegistry()
				cfgR := testConfig(seedR)
				cfgR.ChunkSize = mode.chunk
				var res *IntersectionResult
				r, s := runObservedPair(t, reg, "intersection",
					func(ctx context.Context, conn transport.Conn) (*IntersectionResult, error) {
						var err error
						res, err = IntersectionReceiver(ctx, cfgR, conn, vR)
						return res, err
					},
					func(ctx context.Context, conn transport.Conn) (*SenderInfo, error) {
						return IntersectionSender(ctx, cfgS, conn, vS)
					})
				return res, r, s
			}

			cold := costmodel.IntersectionOps(nS, nR)
			warm := costmodel.IntersectionOpsWarm(nS, nR)
			delta := costmodel.IntersectionWarmDelta(nS)
			if warm.Ce != cold.Ce-delta.Ce || warm.Ce != int64(nS+2*nR) {
				t.Fatalf("closed forms disagree: warm Ce = %d", warm.Ce)
			}

			resCold, r1, s1 := run(1)
			if got := r1.Counters.ModExps() + s1.Counters.ModExps(); got != cold.Ce {
				t.Errorf("cold modexps = %d, want Ce = %d", got, cold.Ce)
			}
			if s1.Counters.KeyGens != 1 || s1.Counters.OracleHashes == 0 {
				t.Errorf("cold sender keygens/hashes = %d/%d, want 1 keygen and nonzero hashing",
					s1.Counters.KeyGens, s1.Counters.OracleHashes)
			}

			resWarm, r2, s2 := run(3)
			if got := r2.Counters.ModExps() + s2.Counters.ModExps(); got != warm.Ce {
				t.Errorf("warm modexps = %d, want warm Ce = %d", got, warm.Ce)
			}
			// The saving sits entirely on the sender: exactly |V_S| fewer
			// modexps, |V_S| fewer oracle hashes, one fewer key draw.
			if got := s1.Counters.ModExps() - s2.Counters.ModExps(); got != delta.Ce {
				t.Errorf("sender modexp delta = %d, want %d", got, delta.Ce)
			}
			if s2.Counters.KeyGens != 0 || s2.Counters.OracleHashes != 0 {
				t.Errorf("warm sender keygens/hashes = %d/%d, want 0/0",
					s2.Counters.KeyGens, s2.Counters.OracleHashes)
			}
			// The receiver's hashing is untouched by the sender's cache.
			if r2.Counters.OracleHashes != r1.Counters.OracleHashes {
				t.Errorf("receiver hashes changed %d -> %d across warm run",
					r1.Counters.OracleHashes, r2.Counters.OracleHashes)
			}

			// Warm and cold runs compute the identical intersection.
			if w, c := sortedStrings(resWarm.Values), sortedStrings(resCold.Values); len(w) != shared || len(c) != shared {
				t.Errorf("intersections = %v / %v, want %d values", w, c, shared)
			} else {
				for i := range w {
					if w[i] != c[i] {
						t.Errorf("warm/cold results diverge: %v vs %v", w, c)
						break
					}
				}
			}
		})
	}
}

func TestCacheWarmIntersectionSizeExactDelta(t *testing.T) {
	const nR, nS, shared = 6, 4, 2
	vR, vS := overlapping(nR, nS, shared)
	cache := NewSenderSetCache(0, nil)
	cfgS := senderConfig(2, cache, cacheKey(wire.ProtoIntersectionSize), 0)

	run := func(seedR int64) (*SizeResult, obs.SessionSnapshot, obs.SessionSnapshot) {
		reg := obs.NewRegistry()
		var res *SizeResult
		r, s := runObservedPair(t, reg, "intersection-size",
			func(ctx context.Context, conn transport.Conn) (*SizeResult, error) {
				var err error
				res, err = IntersectionSizeReceiver(ctx, testConfig(seedR), conn, vR)
				return res, err
			},
			func(ctx context.Context, conn transport.Conn) (*SenderInfo, error) {
				return IntersectionSizeSender(ctx, cfgS, conn, vS)
			})
		return res, r, s
	}

	resCold, r1, s1 := run(1)
	resWarm, r2, s2 := run(3)
	if got, want := r1.Counters.ModExps()+s1.Counters.ModExps(), costmodel.IntersectionSizeOps(nS, nR).Ce; got != want {
		t.Errorf("cold modexps = %d, want %d", got, want)
	}
	if got, want := r2.Counters.ModExps()+s2.Counters.ModExps(), costmodel.IntersectionSizeOpsWarm(nS, nR).Ce; got != want {
		t.Errorf("warm modexps = %d, want %d", got, want)
	}
	if s2.Counters.KeyGens != 0 {
		t.Errorf("warm sender keygens = %d, want 0", s2.Counters.KeyGens)
	}
	if resWarm.IntersectionSize != shared || resCold.IntersectionSize != shared {
		t.Errorf("sizes = %d/%d, want %d", resWarm.IntersectionSize, resCold.IntersectionSize, shared)
	}
}

func TestCacheWarmJoinSizeExactDelta(t *testing.T) {
	vR := [][]byte{[]byte("a"), []byte("a"), []byte("b"), []byte("c"), []byte("c")}
	vS := [][]byte{[]byte("a"), []byte("c"), []byte("c"), []byte("d")}
	mR, mS := len(vR), len(vS)
	cache := NewSenderSetCache(0, nil)
	cfgS := senderConfig(2, cache, cacheKey(wire.ProtoEquijoinSize), 0)

	run := func(seedR int64) (*JoinSizeResult, obs.SessionSnapshot, obs.SessionSnapshot) {
		reg := obs.NewRegistry()
		var res *JoinSizeResult
		r, s := runObservedPair(t, reg, "equijoin-size",
			func(ctx context.Context, conn transport.Conn) (*JoinSizeResult, error) {
				var err error
				res, err = EquijoinSizeReceiver(ctx, testConfig(seedR), conn, vR)
				return res, err
			},
			func(ctx context.Context, conn transport.Conn) (*JoinSizeSenderInfo, error) {
				return EquijoinSizeSender(ctx, cfgS, conn, vS)
			})
		return res, r, s
	}

	resCold, r1, s1 := run(1)
	resWarm, r2, s2 := run(3)
	if got, want := r1.Counters.ModExps()+s1.Counters.ModExps(), costmodel.IntersectionSizeOps(mS, mR).Ce; got != want {
		t.Errorf("cold modexps = %d, want %d", got, want)
	}
	if got, want := r2.Counters.ModExps()+s2.Counters.ModExps(), costmodel.IntersectionSizeOpsWarm(mS, mR).Ce; got != want {
		t.Errorf("warm modexps = %d, want %d", got, want)
	}
	if resWarm.JoinSize != resCold.JoinSize {
		t.Errorf("warm join size = %d, cold = %d", resWarm.JoinSize, resCold.JoinSize)
	}
	if resCold.JoinSize != 2*1+2*2 { // a: dup_R 2 × dup_S 1, c: 2 × 2
		t.Errorf("join size = %d, want 6", resCold.JoinSize)
	}
}

func TestCacheWarmEquijoinExactDelta(t *testing.T) {
	const nR, nS, shared = 6, 4, 2
	const extPlainLen = 24
	for _, mode := range []struct {
		name  string
		chunk int
	}{{"legacy", 0}, {"chunked", 3}} {
		t.Run(mode.name, func(t *testing.T) {
			vR, vS := overlapping(nR, nS, shared)
			records := make([]JoinRecord, len(vS))
			for i, v := range vS {
				ext := make([]byte, extPlainLen)
				copy(ext, "ext for ")
				copy(ext[8:], v)
				records[i] = JoinRecord{Value: v, Ext: ext}
			}
			cache := NewSenderSetCache(0, nil)
			cfgS := senderConfig(2, cache, cacheKey(wire.ProtoEquijoin), mode.chunk)

			run := func(seedR int64) (*JoinResult, obs.SessionSnapshot, obs.SessionSnapshot) {
				reg := obs.NewRegistry()
				cfgR := testConfig(seedR)
				cfgR.ChunkSize = mode.chunk
				var res *JoinResult
				r, s := runObservedPair(t, reg, "equijoin",
					func(ctx context.Context, conn transport.Conn) (*JoinResult, error) {
						var err error
						res, err = EquijoinReceiver(ctx, cfgR, conn, vR)
						return res, err
					},
					func(ctx context.Context, conn transport.Conn) (*SenderInfo, error) {
						return EquijoinSender(ctx, cfgS, conn, records)
					})
				return res, r, s
			}

			cold := costmodel.JoinOps(nS, nR, shared)
			warm := costmodel.JoinOpsWarm(nS, nR, shared)
			delta := costmodel.JoinWarmDelta(nS)
			if warm.Ce != int64(5*nR) || warm.Ce != cold.Ce-delta.Ce {
				t.Fatalf("closed forms disagree: warm Ce = %d", warm.Ce)
			}

			resCold, r1, s1 := run(1)
			if got := r1.Counters.ModExps() + s1.Counters.ModExps(); got != cold.Ce {
				t.Errorf("cold modexps = %d, want Ce = %d", got, cold.Ce)
			}
			if s1.Counters.KeyGens != 2 || int64(s1.Counters.PayloadEncrypts) != int64(nS) {
				t.Errorf("cold sender keygens/encrypts = %d/%d, want 2/%d",
					s1.Counters.KeyGens, s1.Counters.PayloadEncrypts, nS)
			}

			resWarm, r2, s2 := run(3)
			if got := r2.Counters.ModExps() + s2.Counters.ModExps(); got != warm.Ce {
				t.Errorf("warm modexps = %d, want warm Ce = %d", got, warm.Ce)
			}
			// Exactly 2|V_S| fewer modexps, both key draws and all |V_S|
			// payload encryptions gone; R still decrypts one ext per match.
			if got := s1.Counters.ModExps() - s2.Counters.ModExps(); got != delta.Ce {
				t.Errorf("sender modexp delta = %d, want %d", got, delta.Ce)
			}
			if s2.Counters.KeyGens != 0 || s2.Counters.OracleHashes != 0 || s2.Counters.PayloadEncrypts != 0 {
				t.Errorf("warm sender keygens/hashes/encrypts = %d/%d/%d, want 0/0/0",
					s2.Counters.KeyGens, s2.Counters.OracleHashes, s2.Counters.PayloadEncrypts)
			}
			if got := int64(s2.Counters.PayloadEncrypts + r2.Counters.PayloadDecrypts); got != warm.CK {
				t.Errorf("warm K operations = %d, want CK = %d", got, warm.CK)
			}

			// Same matches, same decrypted ext payloads, warm or cold.
			if len(resWarm.Matches) != shared || len(resCold.Matches) != shared {
				t.Fatalf("matches = %d/%d, want %d", len(resWarm.Matches), len(resCold.Matches), shared)
			}
			for i := range resWarm.Matches {
				if !bytes.Equal(resWarm.Matches[i].Value, resCold.Matches[i].Value) ||
					!bytes.Equal(resWarm.Matches[i].Ext, resCold.Matches[i].Ext) {
					t.Errorf("match %d diverges warm vs cold", i)
				}
			}
		})
	}
}

// TestCacheStaleVersionMisses drives the version half of the cache key:
// a bumped data version must force a full recomputation, and the
// superseded entry must be pruned rather than squatting in the LRU.
func TestCacheStaleVersionMisses(t *testing.T) {
	const nR, nS, shared = 5, 4, 2
	vR, vS := overlapping(nR, nS, shared)
	var stats obs.CacheStats
	cache := NewSenderSetCache(0, &stats)

	run := func(seedR int64, version uint64) obs.SessionSnapshot {
		reg := obs.NewRegistry()
		key := cacheKey(wire.ProtoIntersection)
		key.Version = version
		cfgS := senderConfig(int64(version)*10, cache, key, 0)
		_, s := runObservedPair(t, reg, "intersection",
			func(ctx context.Context, conn transport.Conn) (*IntersectionResult, error) {
				return IntersectionReceiver(ctx, testConfig(seedR), conn, vR)
			},
			func(ctx context.Context, conn transport.Conn) (*SenderInfo, error) {
				return IntersectionSender(ctx, cfgS, conn, vS)
			})
		return s
	}

	if s := run(1, 1); s.Counters.KeyGens != 1 {
		t.Errorf("first run keygens = %d, want 1 (miss)", s.Counters.KeyGens)
	}
	if s := run(2, 1); s.Counters.KeyGens != 0 {
		t.Errorf("repeat run keygens = %d, want 0 (hit)", s.Counters.KeyGens)
	}
	// The table changed: same peer, same protocol, new version.
	if s := run(3, 2); s.Counters.KeyGens != 1 {
		t.Errorf("post-update keygens = %d, want 1 (stale version must miss)", s.Counters.KeyGens)
	}
	if cache.Len() != 1 {
		t.Errorf("cache holds %d entries, want 1 (superseded version pruned)", cache.Len())
	}
	snap := stats.Snapshot()
	if snap.Hits != 1 || snap.Misses != 2 || snap.Evictions != 1 {
		t.Errorf("stats = %+v, want 1 hit / 2 misses / 1 eviction", snap)
	}
}

// TestCacheLRUEvictionUnderMemoryBound exercises the bounded-memory
// path directly: the least-recently-used slot goes first, the bound is
// never exceeded, and an entry larger than the whole budget is refused.
func TestCacheLRUEvictionUnderMemoryBound(t *testing.T) {
	g := group.TestGroup()
	scheme := commutative.NewPowerFn(g)
	key, err := scheme.GenerateKey(nil)
	if err != nil {
		t.Fatal(err)
	}
	entry := func(n int) *CacheEntry {
		elems := make([]*big.Int, n)
		for i := range elems {
			elems[i] = big.NewInt(int64(1000 + i))
		}
		cs, err := commutative.CachedSetFromSorted(key, elems, nil)
		if err != nil {
			t.Fatal(err)
		}
		return &CacheEntry{Set: cs}
	}
	slot := func(peer string) SetCacheKey {
		return SetCacheKey{PeerHost: peer, Table: "t", Version: 1, Protocol: wire.ProtoIntersection}
	}

	one := entry(4).memoryBytes()
	var stats obs.CacheStats
	cache := NewSenderSetCache(2*one, &stats)

	cache.Put(slot("a"), entry(4))
	cache.Put(slot("b"), entry(4))
	if cache.Len() != 2 {
		t.Fatalf("len = %d, want 2", cache.Len())
	}
	// Touch a so that b is the LRU victim.
	if _, ok := cache.Lookup(slot("a")); !ok {
		t.Fatal("expected hit for a")
	}
	cache.Put(slot("c"), entry(4))
	if cache.Len() != 2 {
		t.Errorf("len = %d, want 2 after eviction", cache.Len())
	}
	if _, ok := cache.Lookup(slot("b")); ok {
		t.Error("b survived, want LRU eviction")
	}
	if _, ok := cache.Lookup(slot("a")); !ok {
		t.Error("a evicted, want it retained (recently used)")
	}
	if cache.MemoryBytes() > 2*one {
		t.Errorf("memory = %d, over bound %d", cache.MemoryBytes(), 2*one)
	}
	if snap := stats.Snapshot(); snap.Evictions != 1 {
		t.Errorf("evictions = %d, want 1", snap.Evictions)
	}

	// An entry that alone exceeds the budget is not cached at all.
	cache.Put(slot("huge"), entry(64))
	if _, ok := cache.Lookup(slot("huge")); ok {
		t.Error("oversized entry cached, want refusal")
	}
}

// TestCacheRotateMidSeries flushes the cache between warm runs: the
// next session must draw a fresh key, and the census must show one
// rotation covering every retired entry.
func TestCacheRotateMidSeries(t *testing.T) {
	const nR, nS, shared = 5, 4, 2
	vR, vS := overlapping(nR, nS, shared)
	var stats obs.CacheStats
	cache := NewSenderSetCache(0, &stats)
	cfgS := senderConfig(2, cache, cacheKey(wire.ProtoIntersection), 0)

	run := func(seedR int64) obs.SessionSnapshot {
		reg := obs.NewRegistry()
		_, s := runObservedPair(t, reg, "intersection",
			func(ctx context.Context, conn transport.Conn) (*IntersectionResult, error) {
				return IntersectionReceiver(ctx, testConfig(seedR), conn, vR)
			},
			func(ctx context.Context, conn transport.Conn) (*SenderInfo, error) {
				return IntersectionSender(ctx, cfgS, conn, vS)
			})
		return s
	}

	if s := run(1); s.Counters.KeyGens != 1 {
		t.Errorf("cold keygens = %d, want 1", s.Counters.KeyGens)
	}
	if s := run(3); s.Counters.KeyGens != 0 {
		t.Errorf("warm keygens = %d, want 0", s.Counters.KeyGens)
	}
	cache.Rotate()
	if cache.Len() != 0 {
		t.Errorf("post-rotation len = %d, want 0", cache.Len())
	}
	if s := run(5); s.Counters.KeyGens != 1 {
		t.Errorf("post-rotation keygens = %d, want 1 (fresh exponent)", s.Counters.KeyGens)
	}
	snap := stats.Snapshot()
	if snap.Rotations != 1 {
		t.Errorf("rotations = %d, want 1", snap.Rotations)
	}
}

// TestCacheConcurrentChurn races warm sessions, a table update (version
// bump) and key rotations against one shared cache.  Run under -race
// via the Makefile's race target; every session must still compute the
// exact intersection.
func TestCacheConcurrentChurn(t *testing.T) {
	const runs = 8
	const nR, nS, shared = 5, 4, 2
	var stats obs.CacheStats
	cache := NewSenderSetCache(1<<20, &stats)

	var wg sync.WaitGroup
	for i := 0; i < runs; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			vR, vS := overlapping(nR, nS, shared)
			// Half the sessions see the table before the racing update,
			// half after; each version is its own slot.
			key := cacheKey(wire.ProtoIntersection)
			key.Version = uint64(1 + i%2)
			cfgS := Config{Group: group.TestGroup(), Parallelism: 2, SetCache: cache, CacheKey: key}
			cfgR := Config{Group: group.TestGroup(), Parallelism: 2}
			ctx := context.Background()
			connR, connS := transport.Pipe()
			defer connR.Close()
			done := make(chan error, 1)
			go func() {
				_, err := IntersectionSender(ctx, cfgS, connS, vS)
				done <- err
			}()
			res, rErr := IntersectionReceiver(ctx, cfgR, connR, vR)
			if sErr := <-done; rErr != nil || sErr != nil {
				t.Errorf("run %d: receiver err %v, sender err %v", i, rErr, sErr)
				return
			}
			if len(res.Values) != shared {
				t.Errorf("run %d: intersection = %d values, want %d", i, len(res.Values), shared)
			}
		}(i)
		if i == runs/2 {
			cache.Rotate()
		}
	}
	wg.Wait()
	snap := stats.Snapshot()
	if snap.Hits+snap.Misses != runs {
		t.Errorf("hits+misses = %d, want %d", snap.Hits+snap.Misses, runs)
	}
}

// TestCacheRotateChurnAccounting is the regression test for the
// Rotate/LRU byte-accounting interaction: across a rotate-heavy series
// of admissions, evictions and flushes, the accounted bytes must return
// exactly to baseline — even when an entry's memoryBytes changes while
// it sits in the cache (the equijoin path attaches ExtKey state to a
// live entry).  The pre-fix code recomputed the size at removal, so
// every such mutation unbalanced the budget a little more per rotation
// until the byte bound was useless.
func TestCacheRotateChurnAccounting(t *testing.T) {
	g := group.TestGroup()
	scheme := commutative.NewPowerFn(g)
	key, err := scheme.GenerateKey(nil)
	if err != nil {
		t.Fatal(err)
	}
	entry := func(n int) *CacheEntry {
		elems := make([]*big.Int, n)
		for i := range elems {
			elems[i] = big.NewInt(int64(1000 + i))
		}
		cs, err := commutative.CachedSetFromSorted(key, elems, nil)
		if err != nil {
			t.Fatal(err)
		}
		return &CacheEntry{Set: cs}
	}
	slot := func(peer string, version uint64) SetCacheKey {
		return SetCacheKey{PeerHost: peer, Table: "t", Version: version, Protocol: wire.ProtoEquijoin}
	}

	one := entry(4).memoryBytes()
	var stats obs.CacheStats
	cache := NewSenderSetCache(4*one, &stats)

	for round := 0; round < 10; round++ {
		// Admit more than fits, forcing LRU evictions.
		for p := 0; p < 6; p++ {
			e := entry(4)
			cache.Put(slot(string(rune('a'+p)), uint64(round+1)), e)
			if p%2 == 0 {
				// Mutate the live entry so its memoryBytes no longer
				// matches what admission charged.
				e.ExtKey = key
			}
		}
		// Version churn: re-admitting a slot at a new version displaces
		// the old one.
		cache.Put(slot("a", uint64(round+2)), entry(4))
		cache.Rotate()
		if got := cache.MemoryBytes(); got != 0 {
			t.Fatalf("round %d: %d accounted bytes after Rotate, want 0 (accounting leak)", round, got)
		}
		if cache.Len() != 0 {
			t.Fatalf("round %d: %d entries after Rotate, want 0", round, cache.Len())
		}
	}

	// The budget is still fully usable after the churn: a fresh series
	// admits up to the bound again.
	for p := 0; p < 4; p++ {
		cache.Put(slot(string(rune('a'+p)), 99), entry(4))
	}
	if cache.Len() != 4 {
		t.Errorf("post-churn len = %d, want 4 (byte bound drifted)", cache.Len())
	}
	if got := cache.MemoryBytes(); got != 4*one {
		t.Errorf("post-churn bytes = %d, want %d", got, 4*one)
	}
}
