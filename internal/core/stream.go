package core

import (
	"context"
	"fmt"
	"math/big"
	"time"

	"minshare/internal/commutative"
	"minshare/internal/obs"
	"minshare/internal/wire"
)

// Streaming pipeline helpers.
//
// Nothing in the Section 3.3/4.3 protocols requires a party to finish
// encrypting its whole set before the first elements go on the wire,
// nor to hold a complete peer vector before re-encryption starts.
// These helpers exploit that: with Config.ChunkSize > 0, bulk vectors
// cross the wire as StreamBegin / StreamChunk… / StreamEnd, and
//
//   - streamEncryptSend exponentiates chunk i while chunk i−1 is in
//     flight;
//   - recvReencryptStream (and the equijoin-specific variants below)
//     validate and re-encrypt each received chunk while the next is
//     still arriving;
//   - duplex overlaps the two independent directions of the exchange
//     phase, hiding a whole vector transfer on a bandwidth-bound link.
//
// Every receive helper is mode-agnostic — it accepts the legacy
// one-shot vector or a stream, whatever the peer sent — so sessions
// with different ChunkSize settings interoperate, and ChunkSize = 0
// reproduces the pre-streaming transcript byte-for-byte.

// streaming reports whether this session sends bulk vectors chunked.
func (s *session) streaming() bool { return s.cfg.ChunkSize > 0 }

// chunkTimer feeds the chunk/pipeline latency histogram: each tick
// records the time one chunk spent in its pipeline stage (exponentiate
// and ship, or validate and re-encrypt) since the previous tick.  A nil
// timer — uninstrumented session — is inert and costs no clock reads.
type chunkTimer struct {
	lat  *obs.Latencies
	last time.Time
}

func (s *session) newChunkTimer() *chunkTimer {
	if s.lat == nil {
		return nil
	}
	return &chunkTimer{lat: s.lat, last: time.Now()}
}

func (t *chunkTimer) tick() {
	if t == nil {
		return
	}
	now := time.Now()
	t.lat.Record(obs.LatChunkPipeline, now.Sub(t.last))
	t.last = now
}

// sendElems ships an element vector that is already fully computed: one
// legacy frame, or Begin + ⌈n/ChunkSize⌉ chunks + End when streaming.
func (s *session) sendElems(ctx context.Context, elems []*big.Int) error {
	if !s.streaming() {
		return s.send(ctx, wire.Elements{Elems: elems})
	}
	if err := s.send(ctx, wire.StreamBegin{Inner: wire.KindElements, Count: uint32(len(elems))}); err != nil {
		return err
	}
	chunks := uint32(0)
	for off := 0; off < len(elems); off += s.cfg.ChunkSize {
		end := min(off+s.cfg.ChunkSize, len(elems))
		if err := s.send(ctx, wire.StreamChunk{Elems: elems[off:end]}); err != nil {
			return err
		}
		chunks++
	}
	return s.send(ctx, wire.StreamEnd{Chunks: chunks})
}

// sendExtPairs is sendElems for ⟨element, ciphertext⟩ vectors.
func (s *session) sendExtPairs(ctx context.Context, elems []*big.Int, exts [][]byte) error {
	if !s.streaming() {
		return s.send(ctx, wire.ExtPairs{Elem: elems, Ext: exts})
	}
	if err := s.send(ctx, wire.StreamBegin{Inner: wire.KindExtPairs, Count: uint32(len(elems))}); err != nil {
		return err
	}
	chunks := uint32(0)
	for off := 0; off < len(elems); off += s.cfg.ChunkSize {
		end := min(off+s.cfg.ChunkSize, len(elems))
		if err := s.send(ctx, wire.StreamExtChunk{Elem: elems[off:end], Ext: exts[off:end]}); err != nil {
			return err
		}
		chunks++
	}
	return s.send(ctx, wire.StreamEnd{Chunks: chunks})
}

// streamEncryptSend computes f_k(x) for every x in xs and ships the
// results in input order.  Legacy mode encrypts the whole vector, then
// sends one frame.  Streaming mode pipelines: each chunk goes on the
// wire as soon as it is exponentiated, while the worker pool is already
// on the next one.  Returns the full encrypted vector.
func (s *session) streamEncryptSend(ctx context.Context, k *commutative.Key, xs []*big.Int) ([]*big.Int, error) {
	sp := obs.StartSpan(ctx, "re-encrypt")
	defer sp.End()
	if !s.streaming() {
		out, err := s.encryptSet(ctx, k, xs)
		if err != nil {
			return nil, s.abort(ctx, err)
		}
		if err := s.send(ctx, wire.Elements{Elems: out}); err != nil {
			return nil, err
		}
		return out, nil
	}

	if err := s.send(ctx, wire.StreamBegin{Inner: wire.KindElements, Count: uint32(len(xs))}); err != nil {
		return nil, err
	}
	cctx, cancel := context.WithCancel(ctx)
	defer cancel()
	ch := commutative.EncryptStream(cctx, s.cfg.Scheme, k, xs, s.cfg.ChunkSize, s.cfg.Parallelism)
	out := make([]*big.Int, 0, len(xs))
	chunks := uint32(0)
	ct := s.newChunkTimer()
	for c := range ch {
		if c.Err != nil {
			// An error chunk is terminal; the channel is already closed.
			return nil, s.abort(ctx, c.Err)
		}
		if err := s.send(ctx, wire.StreamChunk{Elems: c.Elems}); err != nil {
			cancel()
			for range ch {
			}
			return nil, err
		}
		ct.tick()
		out = append(out, c.Elems...)
		chunks++
	}
	if err := s.send(ctx, wire.StreamEnd{Chunks: chunks}); err != nil {
		return nil, err
	}
	return out, nil
}

// recvElemsFunc receives one element vector in either encoding — a
// legacy one-shot frame or a stream — validating cardinality, group
// membership, and (when requireSorted) order as the data arrives.
// Sortedness is checked across chunk boundaries.  onChunk, when
// non-nil, observes each validated non-empty run before the next frame
// is read; the re-encryption pipelines hang their workers off it.
// Validation failures abort the session (the peer gets a wire.ErrorMsg).
func (s *session) recvElemsFunc(ctx context.Context, wantLen int, what string, requireSorted bool, onChunk func([]*big.Int) error) ([]*big.Int, error) {
	m, err := s.recvAny(ctx, wire.KindElements, wire.KindStreamBegin)
	if err != nil {
		return nil, err
	}
	if v, ok := m.(wire.Elements); ok {
		if err := s.checkElems(ctx, v.Elems, wantLen, what, requireSorted); err != nil {
			return nil, s.abort(ctx, err)
		}
		if onChunk != nil && len(v.Elems) > 0 {
			if err := onChunk(v.Elems); err != nil {
				return nil, err
			}
		}
		return v.Elems, nil
	}

	begin := m.(wire.StreamBegin)
	if begin.Inner != wire.KindElements {
		return nil, s.abort(ctx, fmt.Errorf("%w: %s streamed as %v", ErrMalformedReply, what, begin.Inner))
	}
	count := int(begin.Count)
	if wantLen >= 0 && count != wantLen {
		return nil, s.abort(ctx, fmt.Errorf("%w: %s has %d elements, want %d", ErrMalformedReply, what, count, wantLen))
	}
	elems := make([]*big.Int, 0, count)
	var prev *big.Int
	chunks := uint32(0)
	for {
		m, err := s.recvAny(ctx, wire.KindStreamChunk, wire.KindStreamEnd)
		if err != nil {
			return nil, err
		}
		if end, ok := m.(wire.StreamEnd); ok {
			if end.Chunks != chunks || len(elems) != count {
				return nil, s.abort(ctx, fmt.Errorf("%w: %s stream ended after %d/%d elements", ErrMalformedReply, what, len(elems), count))
			}
			return elems, nil
		}
		chunk := m.(wire.StreamChunk).Elems
		if len(chunk) == 0 {
			return nil, s.abort(ctx, fmt.Errorf("%w: empty %s stream chunk", ErrMalformedReply, what))
		}
		if len(elems)+len(chunk) > count {
			return nil, s.abort(ctx, fmt.Errorf("%w: %s stream overflows its declared %d elements", ErrMalformedReply, what, count))
		}
		if err := s.checkChunk(ctx, chunk, prev, len(elems), what, requireSorted); err != nil {
			return nil, s.abort(ctx, err)
		}
		if onChunk != nil {
			if err := onChunk(chunk); err != nil {
				return nil, err
			}
		}
		elems = append(elems, chunk...)
		prev = chunk[len(chunk)-1]
		chunks++
	}
}

// recvElems receives and validates one element vector, either encoding.
func (s *session) recvElems(ctx context.Context, wantLen int, what string, requireSorted bool) ([]*big.Int, error) {
	return s.recvElemsFunc(ctx, wantLen, what, requireSorted, nil)
}

// recvReencryptStream receives an element vector and re-encrypts it
// under k, overlapping each chunk's exponentiation with the receipt of
// the next.  Returns both the received vector and its re-encryption,
// both in wire order.
func (s *session) recvReencryptStream(ctx context.Context, k *commutative.Key, wantLen int, what string, requireSorted bool) (received, reenc []*big.Int, err error) {
	jobs := make(chan []*big.Int, 1)
	done := make(chan struct{})
	var (
		out    []*big.Int
		encErr error
	)
	go func() {
		defer close(done)
		sp := obs.StartSpan(ctx, "re-encrypt")
		defer sp.End()
		ct := s.newChunkTimer()
		for chunk := range jobs {
			if encErr != nil {
				continue // drain
			}
			// len(out) is the chunk's base offset in the received vector,
			// so element errors name the global index.
			ys, err := commutative.EncryptAllAt(ctx, s.cfg.Scheme, k, chunk, s.cfg.Parallelism, len(out))
			if err != nil {
				encErr = err
				continue
			}
			out = append(out, ys...)
			ct.tick()
		}
	}()
	received, rerr := s.recvElemsFunc(ctx, wantLen, what, requireSorted, func(chunk []*big.Int) error {
		select {
		case jobs <- chunk:
			return nil
		case <-ctx.Done():
			return fmt.Errorf("core: re-encrypt pipeline: %w", ctx.Err())
		}
	})
	close(jobs)
	<-done
	if rerr != nil {
		return nil, nil, rerr
	}
	if encErr != nil {
		return nil, nil, s.abort(ctx, encErr)
	}
	return received, out, nil
}

// recvEncryptPairsSend is the equijoin sender's step 3–4 pipeline: it
// receives Y_R (sorted) and replies with the aligned ⟨f_kA(y), f_kB(y)⟩
// pairs.  In streaming mode each received chunk is double-encrypted and
// its pair chunk sent while the next chunk of Y_R is still in flight,
// the reply mirroring the incoming chunk boundaries.  Returns Y_R.
func (s *session) recvEncryptPairsSend(ctx context.Context, kA, kB *commutative.Key, wantLen int, what string) ([]*big.Int, error) {
	if !s.streaming() {
		yR, err := s.recvElems(ctx, wantLen, what, true)
		if err != nil {
			return nil, err
		}
		sp := obs.StartSpan(ctx, "re-encrypt")
		defer sp.End()
		withA, err := s.encryptSet(ctx, kA, yR)
		if err != nil {
			return nil, s.abort(ctx, err)
		}
		withB, err := s.encryptSet(ctx, kB, yR)
		if err != nil {
			return nil, s.abort(ctx, err)
		}
		if err := s.send(ctx, wire.Pairs{A: withA, B: withB}); err != nil {
			return nil, err
		}
		return yR, nil
	}

	if err := s.send(ctx, wire.StreamBegin{Inner: wire.KindPairs, Count: uint32(wantLen)}); err != nil {
		return nil, err
	}
	jobs := make(chan []*big.Int, 1)
	done := make(chan struct{})
	var (
		chunks          uint32
		encErr, sendErr error
	)
	go func() {
		defer close(done)
		sp := obs.StartSpan(ctx, "re-encrypt")
		defer sp.End()
		ct := s.newChunkTimer()
		off := 0 // base offset of the current chunk within Y_R
		for chunk := range jobs {
			base := off
			off += len(chunk)
			if encErr != nil || sendErr != nil {
				continue // drain
			}
			withA, err := commutative.EncryptAllAt(ctx, s.cfg.Scheme, kA, chunk, s.cfg.Parallelism, base)
			if err != nil {
				encErr = err
				continue
			}
			withB, err := commutative.EncryptAllAt(ctx, s.cfg.Scheme, kB, chunk, s.cfg.Parallelism, base)
			if err != nil {
				encErr = err
				continue
			}
			// Pairs stream interleaved: a0 b0 a1 b1 …
			inter := make([]*big.Int, 0, 2*len(chunk))
			for i := range chunk {
				inter = append(inter, withA[i], withB[i])
			}
			if err := s.send(ctx, wire.StreamChunk{Elems: inter}); err != nil {
				sendErr = err
				continue
			}
			ct.tick()
			chunks++
		}
	}()
	yR, rerr := s.recvElemsFunc(ctx, wantLen, what, true, func(chunk []*big.Int) error {
		select {
		case jobs <- chunk:
			return nil
		case <-ctx.Done():
			return fmt.Errorf("core: pair pipeline: %w", ctx.Err())
		}
	})
	close(jobs)
	<-done
	if rerr != nil {
		return nil, rerr
	}
	if encErr != nil {
		return nil, s.abort(ctx, encErr)
	}
	if sendErr != nil {
		return nil, sendErr
	}
	if err := s.send(ctx, wire.StreamEnd{Chunks: chunks}); err != nil {
		return nil, err
	}
	return yR, nil
}

// recvPairsDecrypt is the equijoin receiver's step 4+6 pipeline: it
// receives the aligned ⟨f_eS(y), f_e'S(y)⟩ pairs and strips R's own
// encryption layer from both components, chunk by chunk, overlapped
// with the receive.  Returns the two decrypted component vectors.
func (s *session) recvPairsDecrypt(ctx context.Context, k *commutative.Key, wantLen int, whatA, whatB string) (compA, compB []*big.Int, err error) {
	m, err := s.recvAny(ctx, wire.KindPairs, wire.KindStreamBegin)
	if err != nil {
		return nil, nil, err
	}
	if v, ok := m.(wire.Pairs); ok {
		if err := s.checkElems(ctx, v.A, wantLen, whatA, false); err != nil {
			return nil, nil, s.abort(ctx, err)
		}
		if err := s.checkElems(ctx, v.B, wantLen, whatB, false); err != nil {
			return nil, nil, s.abort(ctx, err)
		}
		sp := obs.StartSpan(ctx, "re-encrypt")
		defer sp.End()
		a, err := s.decryptSet(ctx, k, v.A)
		if err != nil {
			return nil, nil, s.abort(ctx, err)
		}
		b, err := s.decryptSet(ctx, k, v.B)
		if err != nil {
			return nil, nil, s.abort(ctx, err)
		}
		return a, b, nil
	}

	begin := m.(wire.StreamBegin)
	if begin.Inner != wire.KindPairs {
		return nil, nil, s.abort(ctx, fmt.Errorf("%w: pair reply streamed as %v", ErrMalformedReply, begin.Inner))
	}
	count := int(begin.Count)
	if wantLen >= 0 && count != wantLen {
		return nil, nil, s.abort(ctx, fmt.Errorf("%w: %s has %d elements, want %d", ErrMalformedReply, whatA, count, wantLen))
	}

	type pairChunk struct{ a, b []*big.Int }
	jobs := make(chan pairChunk, 1)
	done := make(chan struct{})
	var (
		outA, outB []*big.Int
		decErr     error
	)
	go func() {
		defer close(done)
		sp := obs.StartSpan(ctx, "re-encrypt")
		defer sp.End()
		ct := s.newChunkTimer()
		for pc := range jobs {
			if decErr != nil {
				continue // drain
			}
			a, err := commutative.DecryptAllAt(ctx, s.cfg.Scheme, k, pc.a, s.cfg.Parallelism, len(outA))
			if err != nil {
				decErr = err
				continue
			}
			b, err := commutative.DecryptAllAt(ctx, s.cfg.Scheme, k, pc.b, s.cfg.Parallelism, len(outB))
			if err != nil {
				decErr = err
				continue
			}
			outA = append(outA, a...)
			outB = append(outB, b...)
			ct.tick()
		}
	}()

	var rerr error
	got := 0
	chunks := uint32(0)
recvLoop:
	for {
		m, err := s.recvAny(ctx, wire.KindStreamChunk, wire.KindStreamEnd)
		if err != nil {
			rerr = err
			break
		}
		if end, ok := m.(wire.StreamEnd); ok {
			if end.Chunks != chunks || got != count {
				rerr = s.abort(ctx, fmt.Errorf("%w: pair stream ended after %d/%d entries", ErrMalformedReply, got, count))
			}
			break
		}
		elems := m.(wire.StreamChunk).Elems
		if len(elems) == 0 || len(elems)%2 != 0 {
			rerr = s.abort(ctx, fmt.Errorf("%w: pair stream chunk of %d elements", ErrMalformedReply, len(elems)))
			break
		}
		n := len(elems) / 2
		if got+n > count {
			rerr = s.abort(ctx, fmt.Errorf("%w: pair stream overflows its declared %d entries", ErrMalformedReply, count))
			break
		}
		ca := make([]*big.Int, n)
		cb := make([]*big.Int, n)
		for i := 0; i < n; i++ {
			ca[i], cb[i] = elems[2*i], elems[2*i+1]
		}
		if err := s.checkChunk(ctx, ca, nil, got, whatA, false); err != nil {
			rerr = s.abort(ctx, err)
			break
		}
		if err := s.checkChunk(ctx, cb, nil, got, whatB, false); err != nil {
			rerr = s.abort(ctx, err)
			break
		}
		select {
		case jobs <- pairChunk{a: ca, b: cb}:
		case <-ctx.Done():
			rerr = fmt.Errorf("core: pair pipeline: %w", ctx.Err())
			break recvLoop
		}
		got += n
		chunks++
	}
	close(jobs)
	<-done
	if rerr != nil {
		return nil, nil, rerr
	}
	if decErr != nil {
		return nil, nil, s.abort(ctx, decErr)
	}
	return outA, outB, nil
}

// recvExtPairs receives one ⟨element, ciphertext⟩ vector, either
// encoding, with the elements required sorted.
func (s *session) recvExtPairs(ctx context.Context, wantLen int, what string) ([]*big.Int, [][]byte, error) {
	m, err := s.recvAny(ctx, wire.KindExtPairs, wire.KindStreamBegin)
	if err != nil {
		return nil, nil, err
	}
	if v, ok := m.(wire.ExtPairs); ok {
		if err := s.checkElems(ctx, v.Elem, wantLen, what, true); err != nil {
			return nil, nil, s.abort(ctx, err)
		}
		return v.Elem, v.Ext, nil
	}

	begin := m.(wire.StreamBegin)
	if begin.Inner != wire.KindExtPairs {
		return nil, nil, s.abort(ctx, fmt.Errorf("%w: %s streamed as %v", ErrMalformedReply, what, begin.Inner))
	}
	count := int(begin.Count)
	if wantLen >= 0 && count != wantLen {
		return nil, nil, s.abort(ctx, fmt.Errorf("%w: %s has %d elements, want %d", ErrMalformedReply, what, count, wantLen))
	}
	elems := make([]*big.Int, 0, count)
	exts := make([][]byte, 0, count)
	var prev *big.Int
	chunks := uint32(0)
	for {
		m, err := s.recvAny(ctx, wire.KindStreamExtChunk, wire.KindStreamEnd)
		if err != nil {
			return nil, nil, err
		}
		if end, ok := m.(wire.StreamEnd); ok {
			if end.Chunks != chunks || len(elems) != count {
				return nil, nil, s.abort(ctx, fmt.Errorf("%w: %s stream ended after %d/%d elements", ErrMalformedReply, what, len(elems), count))
			}
			return elems, exts, nil
		}
		chunk := m.(wire.StreamExtChunk)
		if len(chunk.Elem) == 0 {
			return nil, nil, s.abort(ctx, fmt.Errorf("%w: empty %s stream chunk", ErrMalformedReply, what))
		}
		if len(elems)+len(chunk.Elem) > count {
			return nil, nil, s.abort(ctx, fmt.Errorf("%w: %s stream overflows its declared %d elements", ErrMalformedReply, what, count))
		}
		if err := s.checkChunk(ctx, chunk.Elem, prev, len(elems), what, true); err != nil {
			return nil, nil, s.abort(ctx, err)
		}
		elems = append(elems, chunk.Elem...)
		exts = append(exts, chunk.Ext...)
		prev = elems[len(elems)-1]
		chunks++
	}
}

// duplex runs the send half and the receive half of an exchange phase.
// Legacy mode runs them sequentially in protocol order (recvFirst picks
// which goes first), reproducing the lock-step transcript.  Streaming
// mode runs both concurrently: the vectors are independent, each
// direction's frame order is unchanged, and the link's two directions
// overlap — hiding one whole vector transfer on a bandwidth-bound link.
// The send half gets a cancelable context so a receive failure (peer
// gone, pipe full) cannot strand it.
func (s *session) duplex(ctx context.Context, recvFirst bool, send, recv func(context.Context) error) error {
	if !s.streaming() {
		if recvFirst {
			if err := recv(ctx); err != nil {
				return err
			}
			return send(ctx)
		}
		if err := send(ctx); err != nil {
			return err
		}
		return recv(ctx)
	}
	sctx, cancel := context.WithCancel(ctx)
	defer cancel()
	errc := make(chan error, 1)
	go func() { errc <- send(sctx) }()
	rerr := recv(ctx)
	if rerr != nil {
		cancel()
	}
	serr := <-errc
	if rerr != nil {
		return rerr
	}
	return serr
}
