package core

import (
	"context"
	"fmt"
	"math/big"

	"minshare/internal/obs"
	"minshare/internal/transport"
	"minshare/internal/wire"
)

// JoinSizeResult is what party R learns from the equijoin-size protocol
// of Section 5.2.  Beyond |T_S ⋈ T_R| and |V_S| (as a multiset), R also
// learns the distribution of duplicates in T_S.A — the leak the paper
// explicitly characterizes.  Package leakage computes exactly which
// partition-level overlaps that distribution reveals.
type JoinSizeResult struct {
	// JoinSize is |T_S ⋈ T_R| restricted to the join attribute, i.e.
	// Σ_v dup_R(v)·dup_S(v).
	JoinSize int
	// SenderMultisetSize is the number of rows in T_S.A (with duplicates).
	SenderMultisetSize int
	// SenderDuplicateDistribution maps a duplicate count d to the number
	// of distinct values in V_S having exactly d duplicates: the
	// distribution R inevitably observes from the repeated encryptions.
	SenderDuplicateDistribution map[int]int
	// SenderDataVersion is the data version S announced in its
	// handshake header (0 if S is unversioned).
	SenderDataVersion uint64
}

// JoinSizeSenderInfo is what party S learns: |T_R.A| as a multiset and
// the distribution of duplicates in T_R.A.
type JoinSizeSenderInfo struct {
	// ReceiverMultisetSize is the number of rows in T_R.A.
	ReceiverMultisetSize int
	// ReceiverDuplicateDistribution maps duplicate count to number of
	// distinct values of V_R with that count.
	ReceiverDuplicateDistribution map[int]int
}

// EquijoinSizeReceiver runs party R of the equijoin-size protocol of
// Section 5.2: the intersection-size protocol run on multisets, with the
// join size computed in the final step.  values is T_R.A *with*
// duplicates.
func EquijoinSizeReceiver(ctx context.Context, cfg Config, conn transport.Conn, values [][]byte) (*JoinSizeResult, error) {
	if cfg.Shards > 1 {
		return shardedEquijoinSizeReceiver(ctx, cfg, conn, values)
	}
	s := newSession(ctx, cfg, conn)

	peerSize, err := s.handshake(ctx, wire.ProtoEquijoinSize, len(values), true)
	if err != nil {
		return nil, err
	}

	// Steps 1-2 on the multiset: equal values hash (and encrypt) to equal
	// elements, so S will see T_R.A's duplicate structure — the leak the
	// paper accepts for this protocol.
	sp := obs.StartSpan(ctx, "hash-to-group")
	xR, err := s.hashSet(values)
	sp.End()
	if err != nil {
		return nil, s.abort(ctx, err)
	}
	eR, err := s.cfg.Scheme.GenerateKey(s.cfg.Rand)
	if err != nil {
		return nil, s.abort(ctx, fmt.Errorf("core: generating e_R: %w", err))
	}
	sp = obs.StartSpan(ctx, "bulk-encrypt")
	yR, err := s.encryptSet(ctx, eR, xR)
	sp.End()
	if err != nil {
		return nil, s.abort(ctx, err)
	}

	// Step 3: send Y_R sorted.
	sp = obs.StartSpan(ctx, "exchange")
	if err := s.sendElems(ctx, sortedCopy(yR)); err != nil {
		sp.End()
		return nil, err
	}

	// Steps 4(a)+5 pipelined: receive Y_S (multiset) sorted and compute
	// Z_S = f_eR(Y_S) chunk by chunk.
	yS, zS, err := s.recvReencryptStream(ctx, eR, peerSize, "Y_S", true)
	if err != nil {
		sp.End()
		return nil, err
	}

	// Step 4(b): receive Z_R sorted.
	zR, err := s.recvElems(ctx, len(values), "Z_R", true)
	sp.End()
	if err != nil {
		return nil, err
	}

	// Step 6 (modified per Section 5.2): join size instead of
	// intersection size — Σ over distinct doubly-encrypted values of
	// count_R · count_S.
	sp = obs.StartSpan(ctx, "match")
	defer sp.End()
	ky := s.newKeyer()
	countR := multisetCountsKeyed(zR, ky)
	countS := multisetCountsKeyed(zS, ky)
	join := 0
	for k, cR := range countR {
		join += cR * countS[k]
	}

	return &JoinSizeResult{
		JoinSize:                    join,
		SenderMultisetSize:          peerSize,
		SenderDuplicateDistribution: DuplicateDistributionElems(yS),
		SenderDataVersion:           s.peerVersion,
	}, nil
}

// EquijoinSizeSender runs party S of the equijoin-size protocol of
// Section 5.2.  values is T_S.A *with* duplicates.
func EquijoinSizeSender(ctx context.Context, cfg Config, conn transport.Conn, values [][]byte) (*JoinSizeSenderInfo, error) {
	if cfg.Shards > 1 {
		return shardedEquijoinSizeSender(ctx, cfg, conn, values)
	}
	s := newSession(ctx, cfg, conn)

	peerSize, err := s.handshake(ctx, wire.ProtoEquijoinSize, len(values), false)
	if err != nil {
		return nil, err
	}

	// Steps 1-2 on the multiset — replayed from the encrypted-set cache
	// when this peer has queried this table version before.  The cache
	// slot is per-protocol, so the multiset state never aliases the
	// deduplicated state of the set protocols.
	eS, sortedYS, err := s.ownEncryptedSet(ctx, values)
	if err != nil {
		return nil, err
	}

	// Step 3 (peer) + step 4(a): receive Y_R (multiset) and ship Y_S
	// sorted, full-duplex in streaming mode.
	sp := obs.StartSpan(ctx, "exchange")
	var yR []*big.Int
	err = s.duplex(ctx, true,
		func(ctx context.Context) error { return s.sendElems(ctx, sortedYS) },
		func(ctx context.Context) error {
			var rerr error
			yR, rerr = s.recvElems(ctx, peerSize, "Y_R", true)
			return rerr
		})
	sp.End()
	if err != nil {
		return nil, err
	}

	// Step 4(b): ship Z_R sorted.  Sorting needs the complete vector,
	// so only the send itself streams.
	sp = obs.StartSpan(ctx, "re-encrypt")
	zR, err := s.encryptSet(ctx, eS, yR)
	if err != nil {
		sp.End()
		return nil, s.abort(ctx, err)
	}
	err = s.sendElems(ctx, sortedCopy(zR))
	sp.End()
	if err != nil {
		return nil, err
	}

	return &JoinSizeSenderInfo{
		ReceiverMultisetSize:          peerSize,
		ReceiverDuplicateDistribution: DuplicateDistributionElems(yR),
	}, nil
}

// multisetCounts tallies occurrences of each element.
func multisetCounts(elems []*big.Int) map[string]int {
	out := make(map[string]int, len(elems))
	for _, e := range elems {
		out[elemKey(e)]++
	}
	return out
}

// DuplicateDistributionElems maps duplicate count d to the number of
// distinct elements occurring exactly d times — the "distribution of
// duplicates" of Section 5.2 as observed from an encrypted multiset.
func DuplicateDistributionElems(elems []*big.Int) map[int]int {
	counts := multisetCounts(elems)
	dist := make(map[int]int)
	for _, c := range counts {
		dist[c]++
	}
	return dist
}

// DuplicateDistributionValues is DuplicateDistributionElems for plaintext
// application values; the leakage analysis compares the two.
func DuplicateDistributionValues(values [][]byte) map[int]int {
	counts := make(map[string]int, len(values))
	for _, v := range values {
		counts[string(v)]++
	}
	dist := make(map[int]int)
	for _, c := range counts {
		dist[c]++
	}
	return dist
}
