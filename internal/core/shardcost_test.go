package core

import (
	"context"
	"testing"

	"minshare/internal/costmodel"
	"minshare/internal/group"
	"minshare/internal/kenc"
	"minshare/internal/obs"
	"minshare/internal/transport"
	"minshare/internal/wire"
)

// Sharded cost certification: the closed forms in costmodel's
// shardcost.go are asserted *exactly* against the observed counters of
// live sharded runs — the same discipline as the unsharded cross-checks
// above.  The census layer is the codec frame, which is what the core
// counters see; the mux's shard tags and credit frames live below it.

// shardSizes computes the per-bucket sizes both parties will announce,
// using the same partitioner as the protocols.
func shardSizes(values [][]byte, k int) []int {
	s := newSession(context.Background(), testConfig(1), nil)
	buckets, _ := s.shardPartition(values, k)
	sizes := make([]int, k)
	for i, b := range buckets {
		sizes[i] = len(b)
	}
	return sizes
}

func TestCostModelCrossCheckShardedIntersection(t *testing.T) {
	const nR, nS, shared, k = 14, 11, 5, 4
	vR, vS := overlapping(nR, nS, shared)
	reg := obs.NewRegistry()

	r, s := runObservedPair(t, reg, "intersection",
		func(ctx context.Context, conn transport.Conn) (*IntersectionResult, error) {
			return IntersectionReceiver(ctx, shardedConfig(1, k, 0), conn, vR)
		},
		func(ctx context.Context, conn transport.Conn) (*SenderInfo, error) {
			return IntersectionSender(ctx, shardedConfig(2, k, 0), conn, vS)
		})

	shardR, shardS := shardSizes(vR, k), shardSizes(vS, k)
	ops := costmodel.ShardedIntersectionOps(shardS, shardR)

	// Ce is invariant under sharding: still 2(|V_S|+|V_R|).
	if unsharded := costmodel.IntersectionOps(nS, nR); ops.Ce != unsharded.Ce {
		t.Fatalf("sharded Ce = %d, unsharded = %d; sharding must not add exponentiations", ops.Ce, unsharded.Ce)
	}
	if got := r.Counters.ModExps() + s.Counters.ModExps(); got != ops.Ce {
		t.Errorf("observed modexps = %d, want Ce = %d", got, ops.Ce)
	}
	// Ch doubles: one partition-routing hash plus one sub-protocol hash
	// per value on each side.  The §3.2.2 collision check adds one more
	// hash per value inside hashSet — an implementation pass outside the
	// Section 6.1 census, priced identically in sharded and unsharded
	// runs (each value hits exactly one sub-session's check).
	if got, want := r.Counters.OracleHashes+s.Counters.OracleHashes, ops.Ch+int64(nS+nR); got != want {
		t.Errorf("observed oracle hashes = %d, want Ch + collision pass = %d", got, want)
	}
	// Each sub-session draws its own commutative key: k per party.
	wantKeys := costmodel.ShardedKeyGens(k, 1)
	if r.Counters.KeyGens != wantKeys || s.Counters.KeyGens != wantKeys {
		t.Errorf("keygens = %d/%d, want %d/%d", r.Counters.KeyGens, s.Counters.KeyGens, wantKeys, wantKeys)
	}

	elemLen := group.TestGroup().ElementLen()
	want := costmodel.ShardedIntersectionWireCost(shardS, shardR, elemLen, 0)
	checkWireCost(t, want, r.Counters, s.Counters)

	// Stripping the sharded envelope — two extended outer headers, 2k
	// sub-headers, 3 vector prefixes per shard — recovers the identical
	// Section 6.1 codeword bits (|V_S|+2|V_R|)·k: buckets partition the
	// sets, so sharding moves no extra element bytes.
	observed := r.Counters.PayloadBytesSent + r.Counters.PayloadBytesRecv
	envelope := 2*wire.ShardedHeaderLen(0, k) + int64(k)*2*wire.EncodedHeaderLen + int64(3*k)*wire.VectorOverhead
	if gotBits := 8 * (observed - envelope); float64(gotBits) != costmodel.IntersectionCommBits(nS, nR, 8*elemLen) {
		t.Errorf("observed codeword bits = %d, want %v", gotBits, costmodel.IntersectionCommBits(nS, nR, 8*elemLen))
	}
}

func TestCostModelCrossCheckShardedEquijoinChunked(t *testing.T) {
	const nR, nS, shared, k, chunk = 12, 9, 4, 3, 2
	const extPlainLen = 24
	vR, vS := overlapping(nR, nS, shared)
	records := make([]JoinRecord, len(vS))
	for i, v := range vS {
		ext := make([]byte, extPlainLen)
		copy(ext, "ext for ")
		copy(ext[8:], v)
		records[i] = JoinRecord{Value: v, Ext: ext}
	}
	reg := obs.NewRegistry()

	r, s := runObservedPair(t, reg, "equijoin",
		func(ctx context.Context, conn transport.Conn) (*JoinResult, error) {
			return EquijoinReceiver(ctx, shardedConfig(1, k, chunk), conn, vR)
		},
		func(ctx context.Context, conn transport.Conn) (*SenderInfo, error) {
			return EquijoinSender(ctx, shardedConfig(2, k, chunk), conn, records)
		})

	// Per-bucket sizes and intersections from the same partitioner.
	sess := newSession(context.Background(), testConfig(1), nil)
	bR, _ := sess.shardPartition(vR, k)
	bS, _ := sess.shardPartition(vS, k)
	shardR, shardS, shardI := make([]int, k), make([]int, k), make([]int, k)
	for i := 0; i < k; i++ {
		shardR[i], shardS[i] = len(bR[i]), len(bS[i])
		shardI[i] = len(plaintextIntersection(bR[i], bS[i]))
	}

	ops := costmodel.ShardedJoinOps(shardS, shardR, shardI)
	if got := r.Counters.ModExps() + s.Counters.ModExps(); got != ops.Ce {
		t.Errorf("observed modexps = %d, want Ce = %d", got, ops.Ce)
	}
	if got, want := r.Counters.OracleHashes+s.Counters.OracleHashes, ops.Ch+int64(nS+nR); got != want {
		t.Errorf("observed oracle hashes = %d, want Ch + collision pass = %d", got, want)
	}
	// The CK census survives sharding: Σ_i (|V_S,i| + I_i) = |V_S| + |I|.
	if got := int64(s.Counters.PayloadEncrypts + r.Counters.PayloadDecrypts); got != ops.CK {
		t.Errorf("observed K operations = %d, want CK = %d", got, ops.CK)
	}
	// R draws one key per shard, S draws two.
	if r.Counters.KeyGens != costmodel.ShardedKeyGens(k, 1) || s.Counters.KeyGens != costmodel.ShardedKeyGens(k, 2) {
		t.Errorf("keygens = %d/%d, want %d/%d",
			r.Counters.KeyGens, s.Counters.KeyGens, costmodel.ShardedKeyGens(k, 1), costmodel.ShardedKeyGens(k, 2))
	}

	g := group.TestGroup()
	extLen := kenc.NewHybrid(g).CiphertextLen(extPlainLen)
	if extLen < 0 {
		t.Fatalf("cipher rejects %d-byte payloads", extPlainLen)
	}
	want := costmodel.ShardedJoinWireCost(shardS, shardR, g.ElementLen(), extLen, chunk)
	checkWireCost(t, want, r.Counters, s.Counters)
}

func TestShardSplitSumMatchesAnnouncement(t *testing.T) {
	// The leakage object's input is exactly what the peer observes: the
	// per-shard sub-handshake sizes.  They must sum to the outer total
	// for any input set (checkShardSizeSum enforces the same invariant
	// on live runs).
	vR := vals("leak-", 100)
	for _, k := range []int{2, 8, 64} {
		sizes := shardSizes(vR, k)
		sum := 0
		for _, n := range sizes {
			sum += n
		}
		if sum != len(vR) {
			t.Errorf("k=%d: shard sizes sum to %d, want %d", k, sum, len(vR))
		}
	}
}
