// Package core implements the paper's four minimal-information-sharing
// protocols — intersection (Section 3.3), equijoin (Section 4.3),
// intersection size (Section 5.1.1) and equijoin size (Section 5.2) —
// plus the insecure hash-exchange baseline of Section 3.1 and the
// third-party intersection-size variant of Figure 2 used by the medical
// research application.
//
// # Roles
//
// Following the paper, party S is the sender and party R the receiver:
// R obtains the query answer, S obtains only |V_R| (and, for the
// multiset join-size protocol, the distribution of duplicates in
// T_R.A).  Each protocol is exposed as a pair of functions, one per
// role, that drive one endpoint of a transport.Conn; running both ends —
// in two goroutines over a transport.Pipe, or in two processes over TCP —
// executes the protocol.
//
// # Inputs
//
// Values are opaque byte strings.  The set protocols (intersection,
// equijoin, intersection size) operate on the *set* of distinct values,
// as the paper defines V_S and V_R ("the set of values (without
// duplicates)"); duplicate inputs are removed before the run.  The
// equijoin-size protocol deliberately keeps multisets, since the
// distribution of duplicates is part of its (leaky) contract.
//
// # Guarantees
//
// Assuming both parties are semi-honest and the underlying commutative
// encryption satisfies Definition 2, each protocol reveals exactly what
// Section 2.2.1 of the paper states and nothing else; package-level
// tests verify the structural consequences (exact message counts and
// sizes, sorted transcript order, dictionary-attack resistance) and
// package leakage quantifies the equijoin-size leak.
package core

import (
	"bytes"
	"context"
	"crypto/rand"
	"errors"
	"fmt"
	"io"
	"math/big"
	"runtime"
	"sort"
	"sync"
	"time"

	"minshare/internal/commutative"
	"minshare/internal/group"
	"minshare/internal/kenc"
	"minshare/internal/obs"
	"minshare/internal/oracle"
	"minshare/internal/transport"
	"minshare/internal/wire"
)

// Common errors.
var (
	// ErrBackendMismatch reports that the peer announced a different
	// commutative-encryption backend (e.g. safe-prime QR vs Curve25519).
	// Elements of different backends are mutually meaningless, so the
	// handshake fails before any encrypted value is exchanged.
	ErrBackendMismatch = errors.New("core: peer uses a different group backend")
	// ErrGroupMismatch reports that the peer announced a different group.
	ErrGroupMismatch = errors.New("core: peer uses a different group")
	// ErrProtocolMismatch reports that the peer is running a different protocol.
	ErrProtocolMismatch = errors.New("core: peer runs a different protocol")
	// ErrShardMismatch reports that the peer negotiated a different shard
	// count.  A k-sharded session partitions every value by a shared hash
	// prefix, so differently-sharded parties would compare disjoint
	// partitions; the handshake fails before any encrypted value moves.
	ErrShardMismatch = errors.New("core: peer uses a different shard count")
	// ErrPeerFailure wraps an error message received from the peer.
	ErrPeerFailure = errors.New("core: peer reported failure")
	// ErrHashCollision reports a hash collision inside a party's own set,
	// detected by the Section 3.2.2 sort check before any value leaves
	// the machine.
	ErrHashCollision = errors.New("core: hash collision detected in local set")
	// ErrMalformedReply reports a peer message inconsistent with the
	// protocol state (wrong cardinality, non-group elements, unsorted
	// vectors where sorting is mandated).
	ErrMalformedReply = errors.New("core: malformed peer reply")
)

// Config carries the shared cryptographic setup for one protocol run.
// Both parties must use the same Group; everything else is private.
type Config struct {
	// Group is the commutative-encryption domain: a safe-prime QR group
	// (*group.Group) or the Curve25519 backend (group.EC25519()).
	// Defaults to group.Default() (the 1024-bit safe-prime group) when
	// nil.  Both parties must configure the same backend and parameters;
	// the handshake verifies this and fails with ErrBackendMismatch /
	// ErrGroupMismatch otherwise.
	Group group.Backend
	// Scheme is the commutative encryption.  Defaults to the
	// Pohlig-Hellman power function over Group.  Tests inject a
	// commutative.Counting wrapper here to audit C_e operation counts.
	Scheme commutative.Scheme
	// Oracle is the hash h : V → DomF.  Defaults to oracle.New(Group).
	Oracle *oracle.Oracle
	// Cipher encrypts ext(v) payloads in the equijoin protocol.
	// Defaults to kenc.NewHybrid(Group).
	Cipher kenc.Cipher
	// Rand is the randomness source for key generation; nil means
	// crypto/rand.Reader.
	Rand io.Reader
	// Parallelism bounds the worker pool for bulk exponentiation (the
	// paper's parameter P, Section 6.2).  Zero selects GOMAXPROCS.
	Parallelism int
	// ChunkSize, when positive, streams bulk vectors in chunks of that
	// many entries so exponentiation, transfer, and the peer's
	// re-encryption overlap as a pipeline.  Zero sends each vector as a
	// single legacy frame, reproducing the pre-streaming wire
	// transcript byte-for-byte.  Receivers accept either encoding
	// regardless of this setting, so the two modes interoperate.
	ChunkSize int
	// SetCache, when non-nil, lets the sender-side protocols reuse the
	// encrypted own-set state from an earlier run with the same
	// CacheKey: a hit skips the key generation, oracle hashing, and
	// bulk-exponentiation phase entirely (both legacy and chunked wire
	// modes) and jumps straight to the send/re-encrypt phases; a miss
	// runs the full phase and populates the cache.  Receiver-side
	// protocols ignore it.
	SetCache *SenderSetCache
	// CacheKey identifies this run's slot in SetCache.  It must name the
	// peer (SetCache never reuses an exponent across different
	// CacheKey.PeerHost values — see the SenderSetCache doc for why) and
	// carry the current DataVersion; a zero key with a non-nil SetCache
	// is allowed but shares one slot, so only single-peer callers should
	// use it.
	CacheKey SetCacheKey
	// DeltaSource, when non-nil alongside SetCache, lets the sender-side
	// protocols upgrade a stale cached entry in place: a cache miss first
	// looks for an entry of the same slot at an older version, asks the
	// source how the set changed since, and re-encrypts only the churn
	// under the entry's pinned key (commutative.CachedSet.ApplyDelta) —
	// O(churn) instead of the O(|V|) rebuild.  It also feeds the
	// standing-query sender.  Receiver-side protocols ignore it.
	DeltaSource DeltaSource
	// DeltaChurnMax bounds the upgrade path as a fraction of the current
	// set size: a delta touching more than DeltaChurnMax·|V| values falls
	// back to the full rebuild (past that point the bulk pipeline wins).
	// Zero selects DefaultDeltaChurnMax; negative disables upgrades.
	DeltaChurnMax float64
	// DataVersion is this party's monotonic data version
	// (reldb.Table.Version for a served table), announced in the
	// handshake header so the peer can detect a stale counterpart, and
	// compared against CacheKey.Version by convention.  Zero means
	// unversioned.
	DataVersion uint64
	// Shards, when > 1, runs the protocol shard-parallel: both parties
	// partition their values into Shards buckets by a shared hash prefix
	// of h(v) and run one independent sub-protocol per bucket, all
	// multiplexed over the single conn (transport.Mux) and merged by a
	// coordinator that preserves the unsharded result semantics.  The
	// count is negotiated in the handshake; both parties must configure
	// the same value or the handshake fails with ErrShardMismatch.
	// 0 or 1 runs the classic single-pipeline protocol, byte-identical
	// on the wire to releases without sharding.  Values above
	// transport.MaxShards are rejected.  The only additional information
	// revealed is each party's per-shard set sizes (the partition split;
	// see leakage.ShardSplit).
	Shards int
}

// normalized returns a copy of c with every nil field defaulted.
func (c Config) normalized() Config {
	if c.Group == nil {
		c.Group = group.Default()
	}
	if c.Scheme == nil {
		c.Scheme = commutative.NewPowerFn(c.Group)
	}
	if c.Oracle == nil {
		c.Oracle = oracle.New(c.Group)
	}
	if c.Cipher == nil {
		c.Cipher = kenc.NewHybrid(c.Group)
	}
	if c.Rand == nil {
		c.Rand = rand.Reader
	}
	if c.DeltaChurnMax == 0 {
		c.DeltaChurnMax = DefaultDeltaChurnMax
	}
	return c
}

// session couples a transport connection with the codec and config for
// one protocol run.  When the context carries an obs.Session, the
// config's scheme and oracle are wrapped so every costed primitive —
// modular exponentiation, oracle hash, frame, byte — is counted against
// that session (and, through the counter chain, the process globals),
// and transport stalls and chunk-pipeline latencies feed the session's
// histograms; without one, counters and lat stay nil and the
// instrumentation is inert.
type session struct {
	cfg      Config
	conn     transport.Conn
	codec    *wire.Codec
	counters *obs.Counters
	osess    *obs.Session
	lat      *obs.Latencies
	// peerVersion is the peer's announced DataVersion, recorded by
	// handshake and surfaced on receiver results.
	peerVersion uint64
}

func newSession(ctx context.Context, cfg Config, conn transport.Conn) *session {
	cfg = cfg.normalized()
	s := &session{cfg: cfg, conn: conn, codec: wire.NewCodec(cfg.Group)}
	if o := obs.SessionFrom(ctx); o != nil {
		s.osess = o
		s.lat = o.Latencies()
		s.counters = o.Counters()
		s.cfg.Scheme = commutative.Observed(s.cfg.Scheme, s.counters)
		s.cfg.Oracle = s.cfg.Oracle.Observed(s.counters)
	}
	return s
}

// send encodes and transmits one message.
func (s *session) send(ctx context.Context, m wire.Message) error {
	data, err := s.codec.Encode(m)
	if err != nil {
		return fmt.Errorf("core: encoding %v: %w", m.Kind(), err)
	}
	var start time.Time
	if s.lat != nil {
		start = time.Now()
	}
	if err := s.conn.Send(ctx, data); err != nil {
		return fmt.Errorf("core: sending %v: %w", m.Kind(), err)
	}
	if s.lat != nil {
		s.lat.Record(obs.LatTransportSend, time.Since(start))
	}
	if s.counters != nil {
		s.counters.AddFrameSent(int64(len(data)), int64(len(data))+transport.FrameOverhead)
	}
	return nil
}

// recv receives one message and checks its kind.  A wire.ErrorMsg from
// the peer is converted into ErrPeerFailure.
func (s *session) recv(ctx context.Context, want wire.Kind) (wire.Message, error) {
	return s.recvAny(ctx, want)
}

// recvAny receives one message whose kind must be among want.  The
// streamed receive paths use it to accept either a legacy one-shot
// vector or the opening of a stream.
func (s *session) recvAny(ctx context.Context, want ...wire.Kind) (wire.Message, error) {
	var start time.Time
	if s.lat != nil {
		start = time.Now()
	}
	data, err := s.conn.Recv(ctx)
	if err != nil {
		return nil, fmt.Errorf("core: receiving %v: %w", want[0], err)
	}
	if s.lat != nil {
		s.lat.Record(obs.LatTransportRecv, time.Since(start))
	}
	if s.counters != nil {
		s.counters.AddFrameRecv(int64(len(data)), int64(len(data))+transport.FrameOverhead)
	}
	m, err := s.codec.Decode(data)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrMalformedReply, err)
	}
	if em, ok := m.(wire.ErrorMsg); ok {
		return nil, fmt.Errorf("%w: %s", ErrPeerFailure, em.Text)
	}
	for _, k := range want {
		if m.Kind() == k {
			return m, nil
		}
	}
	if len(want) == 1 {
		return nil, fmt.Errorf("%w: got %v, want %v", wire.ErrKindMismatch, m.Kind(), want[0])
	}
	return nil, fmt.Errorf("%w: got %v, want one of %v", wire.ErrKindMismatch, m.Kind(), want)
}

// abort best-effort notifies the peer of a fatal local error and returns
// the original error.
func (s *session) abort(ctx context.Context, err error) error {
	_ = s.send(ctx, wire.ErrorMsg{Text: err.Error()})
	return err
}

// handshake exchanges headers.  Each party announces its set size — the
// paper's additional information I — and both verify they agree on the
// protocol and the group.  sendFirst breaks the symmetric deadlock over
// strictly alternating transports: the receiver R always sends first.
//
// The header also carries the trace context.  The initiator (sendFirst)
// stamps its own session's trace ID and root span; the responder adopts
// whatever nonzero trace identity arrives — switching its session onto
// the initiator's trace — and only then stamps its header, so its echo
// announces the adopted trace ID back.  The initiator's adopt of that
// echo is a no-op (same ID).  A peer without trace support sends a zero
// trace ID, which adopt ignores, so mixed deployments run untraced but
// uninterrupted.
func (s *session) handshake(ctx context.Context, proto wire.Protocol, mySize int, sendFirst bool) (peerSize int, err error) {
	my := wire.Header{
		Protocol:    proto,
		GroupBits:   uint32(s.cfg.Group.Bits()),
		GroupDigest: wire.GroupDigest(s.cfg.Group),
		SetSize:     uint64(mySize),
		SetVersion:  s.cfg.DataVersion,
		Backend:     s.cfg.Group.Code(),
	}
	if s.cfg.Shards > 1 {
		my.Shards = uint8(s.cfg.Shards)
	}
	stamp := func() {
		if s.osess != nil {
			my.TraceID = s.osess.TraceID()
			my.SpanID = uint64(s.osess.RootSpanID())
		}
	}
	adopt := func(peer wire.Header) {
		if s.osess != nil {
			s.osess.AdoptRemoteTrace(obs.TraceID(peer.TraceID), obs.SpanID(peer.SpanID))
		}
	}
	var peer wire.Header
	if sendFirst {
		stamp()
		if err := s.send(ctx, my); err != nil {
			return 0, err
		}
		m, err := s.recv(ctx, wire.KindHeader)
		if err != nil {
			return 0, err
		}
		peer = m.(wire.Header)
		adopt(peer)
	} else {
		m, err := s.recv(ctx, wire.KindHeader)
		if err != nil {
			return 0, err
		}
		peer = m.(wire.Header)
		adopt(peer)
		stamp()
		if err := s.send(ctx, my); err != nil {
			return 0, err
		}
	}
	if peer.Protocol != proto {
		return 0, s.abort(ctx, fmt.Errorf("%w: peer=%v local=%v", ErrProtocolMismatch, peer.Protocol, proto))
	}
	// Backend first: a cross-backend pairing must fail with the explicit
	// backend error, not the generic parameter mismatch (the bits/digest
	// comparison below would also fire, less informatively).
	if peer.Backend != my.Backend {
		return 0, s.abort(ctx, fmt.Errorf("%w: peer=%v local=%v", ErrBackendMismatch, peer.Backend, my.Backend))
	}
	if peer.GroupBits != my.GroupBits || peer.GroupDigest != my.GroupDigest {
		return 0, s.abort(ctx, ErrGroupMismatch)
	}
	if normShards(peer.Shards) != normShards(my.Shards) {
		return 0, s.abort(ctx, fmt.Errorf("%w: peer=%d local=%d", ErrShardMismatch, normShards(peer.Shards), normShards(my.Shards)))
	}
	s.peerVersion = peer.SetVersion
	return int(peer.SetSize), nil
}

// normShards folds the two encodings of "unsharded" — absent (0) and
// explicit 1 — into one value for the handshake comparison.  The wire
// layer never produces an explicit 1 (wire.ErrBadShards), but config
// values arrive unnormalized.
func normShards(k uint8) uint8 {
	if k <= 1 {
		return 0
	}
	return k
}

// checkElems validates a complete received element vector: expected
// cardinality, group membership of every entry, and — when
// requireSorted — the lexicographic order the protocols mandate
// (footnote 3 of the paper: unsorted replies leak alignment
// information).
func (s *session) checkElems(ctx context.Context, elems []*big.Int, wantLen int, what string, requireSorted bool) error {
	if wantLen >= 0 && len(elems) != wantLen {
		return fmt.Errorf("%w: %s has %d elements, want %d", ErrMalformedReply, what, len(elems), wantLen)
	}
	return s.checkChunk(ctx, elems, nil, 0, what, requireSorted)
}

// parallelCheckMin is the vector length below which checkChunk stays
// serial: a membership test (Jacobi symbol or curve-point decode) costs
// ~µs, so goroutine fan-out only pays for itself on larger runs.
const parallelCheckMin = 32

// checkChunk validates one contiguous run of a received vector — group
// membership (a Jacobi-symbol test or curve-point decode per entry,
// depending on the backend) and, when requireSorted,
// ascending order including across the boundary from prev, the last
// element of the preceding run (nil at the start of a vector).  The
// membership tests shard across Config.Parallelism workers with the
// order check fused into the same pass; off is the run's offset within
// the full vector, used for error indices.  On concurrent failures the
// smallest index wins, keeping errors deterministic.  Workers observe
// ctx so a cancelled session stops burning Jacobi symbols mid-vector.
func (s *session) checkChunk(ctx context.Context, elems []*big.Int, prev *big.Int, off int, what string, requireSorted bool) error {
	check := func(i int) error {
		if requireSorted {
			p := prev
			if i > 0 {
				p = elems[i-1]
			}
			if p != nil && p.Cmp(elems[i]) > 0 {
				return fmt.Errorf("%w: %s is not sorted at index %d", ErrMalformedReply, what, off+i)
			}
		}
		if !s.cfg.Group.Contains(elems[i]) {
			return fmt.Errorf("%w: %s element %d is not a group member", ErrMalformedReply, what, off+i)
		}
		return nil
	}
	p := s.cfg.Parallelism
	if p <= 0 {
		p = runtime.GOMAXPROCS(0)
	}
	if p > len(elems) {
		p = len(elems)
	}
	if p <= 1 || len(elems) < parallelCheckMin {
		for i := range elems {
			if err := ctx.Err(); err != nil {
				return err
			}
			if err := check(i); err != nil {
				return err
			}
		}
		return nil
	}

	type failure struct {
		idx int
		err error
	}
	fails := make([]failure, p)
	per := (len(elems) + p - 1) / p
	var wg sync.WaitGroup
	for w := 0; w < p; w++ {
		lo, hi := w*per, (w+1)*per
		if hi > len(elems) {
			hi = len(elems)
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			for i := lo; i < hi; i++ {
				if err := ctx.Err(); err != nil {
					fails[w] = failure{idx: i, err: err}
					return
				}
				if err := check(i); err != nil {
					fails[w] = failure{idx: i, err: err}
					return
				}
			}
		}(w, lo, hi)
	}
	wg.Wait()
	var first *failure
	for w := range fails {
		if f := &fails[w]; f.err != nil && (first == nil || f.idx < first.idx) {
			first = f
		}
	}
	if first != nil {
		return first.err
	}
	return nil
}

// dedup returns the distinct values of vs, preserving first-seen order.
func dedup(vs [][]byte) [][]byte {
	seen := make(map[string]struct{}, len(vs))
	out := make([][]byte, 0, len(vs))
	for _, v := range vs {
		k := string(v)
		if _, dup := seen[k]; dup {
			continue
		}
		seen[k] = struct{}{}
		out = append(out, v)
	}
	return out
}

// hashSet hashes each value and runs the Section 3.2.2 collision check.
func (s *session) hashSet(vs [][]byte) ([]*big.Int, error) {
	if cols := oracle.DetectCollisions(s.cfg.Oracle, vs); len(cols) > 0 {
		return nil, fmt.Errorf("%w: indices %d and %d", ErrHashCollision, cols[0].I, cols[0].J)
	}
	return s.cfg.Oracle.HashAll(vs), nil
}

// encryptSet bulk-encrypts under k with the configured parallelism.
func (s *session) encryptSet(ctx context.Context, k *commutative.Key, xs []*big.Int) ([]*big.Int, error) {
	return commutative.EncryptAll(ctx, s.cfg.Scheme, k, xs, s.cfg.Parallelism)
}

// decryptSet bulk-decrypts under k with the configured parallelism.
func (s *session) decryptSet(ctx context.Context, k *commutative.Key, ys []*big.Int) ([]*big.Int, error) {
	return commutative.DecryptAll(ctx, s.cfg.Scheme, k, ys, s.cfg.Parallelism)
}

// sortedCopy returns the elements in ascending numeric order, which for
// the fixed-width wire encoding coincides with lexicographic byte order —
// the "reordered lexicographically" of the paper's protocol steps.
func sortedCopy(elems []*big.Int) []*big.Int {
	out := make([]*big.Int, len(elems))
	copy(out, elems)
	sort.Slice(out, func(i, j int) bool { return out[i].Cmp(out[j]) < 0 })
	return out
}

// elemKey returns a map key for a group element.
func elemKey(x *big.Int) string { return string(x.Bytes()) }

// keyer builds fixed-width map keys for group elements by FillBytes
// into a reused buffer of the codec's element width, so the match-phase
// maps hash constant-size strings instead of reallocating a
// variable-length Bytes() slice per element.  Not safe for concurrent
// use; the match phases are single-goroutine.
type keyer struct{ buf []byte }

func (s *session) newKeyer() *keyer {
	return &keyer{buf: make([]byte, s.codec.ElemLen())}
}

func (k *keyer) key(x *big.Int) string {
	x.FillBytes(k.buf)
	return string(k.buf)
}

// multisetCountsKeyed is multisetCounts with fixed-width keys.
func multisetCountsKeyed(elems []*big.Int, k *keyer) map[string]int {
	out := make(map[string]int, len(elems))
	for _, e := range elems {
		out[k.key(e)]++
	}
	return out
}

// sortSlice sorts xs with the provided less function; a tiny wrapper that
// keeps call sites terse.
func sortSlice(xs []int, less func(a, b int) bool) {
	sort.Slice(xs, func(i, j int) bool { return less(xs[i], xs[j]) })
}

// valuesEqual reports whether two application values are identical.
func valuesEqual(a, b []byte) bool { return bytes.Equal(a, b) }
