package core

import (
	"context"
	"fmt"
	"math/big"

	"minshare/internal/obs"
	"minshare/internal/transport"
	"minshare/internal/wire"
)

// Third-party intersection size (Figure 2 of the paper).
//
// The medical research application uses "a slightly modified version of
// the intersection size protocol where Z_R and Z_S are sent to T, the
// researcher, instead of to S and R".  Parties A and B each hold a value
// set; they exchange encrypted sets directly (steps 1-4 of the
// Section 5.1.1 protocol), but the doubly-encrypted sets go to the
// analyst T, who alone computes |V_A ∩ V_B|.  Neither A nor B learns the
// intersection size; T learns only the two set sizes and the overlap.
//
// Party A plays the header-first role (like R); party B responds (like
// S).  Both need a connection to each other and to T.

// ThirdPartySizeResult is what the analyst T learns.
type ThirdPartySizeResult struct {
	// IntersectionSize is |V_A ∩ V_B| (multiset-aware: for multiset
	// inputs it is the join size Σ dup_A·dup_B).
	IntersectionSize int
	// SizeA and SizeB are the announced set sizes.
	SizeA, SizeB int
}

// ThirdPartyPeerInfo is what each data party learns: the other party's
// set size (from the direct exchange) and nothing about the overlap.
type ThirdPartyPeerInfo struct {
	PeerSetSize int
}

// ThirdPartyPartyA runs the first data party.  peer connects to party B;
// analyst connects to T.
func ThirdPartyPartyA(ctx context.Context, cfg Config, peer, analyst transport.Conn, values [][]byte) (*ThirdPartyPeerInfo, error) {
	return thirdPartyParty(ctx, cfg, peer, analyst, values, true)
}

// ThirdPartyPartyB runs the second data party.
func ThirdPartyPartyB(ctx context.Context, cfg Config, peer, analyst transport.Conn, values [][]byte) (*ThirdPartyPeerInfo, error) {
	return thirdPartyParty(ctx, cfg, peer, analyst, values, false)
}

func thirdPartyParty(ctx context.Context, cfg Config, peer, analyst transport.Conn, values [][]byte, first bool) (*ThirdPartyPeerInfo, error) {
	ps := newSession(ctx, cfg, peer)
	as := newSession(ctx, cfg, analyst)
	vals := dedup(values)

	peerSize, err := ps.handshake(ctx, wire.ProtoIntersectionSize, len(vals), first)
	if err != nil {
		return nil, err
	}

	// Steps 1-2: hash own set, draw key, encrypt.
	sp := obs.StartSpan(ctx, "hash-to-group")
	x, err := ps.hashSet(vals)
	sp.End()
	if err != nil {
		return nil, ps.abort(ctx, err)
	}
	key, err := ps.cfg.Scheme.GenerateKey(ps.cfg.Rand)
	if err != nil {
		return nil, ps.abort(ctx, fmt.Errorf("core: generating key: %w", err))
	}
	sp = obs.StartSpan(ctx, "bulk-encrypt")
	y, err := ps.encryptSet(ctx, key, x)
	sp.End()
	if err != nil {
		return nil, ps.abort(ctx, err)
	}

	// Steps 3-4 pipelined: exchange singly-encrypted sets with the peer,
	// sorted (party A sends first to avoid a lockstep deadlock in legacy
	// mode; streaming mode runs the halves full-duplex), double-
	// encrypting each received chunk while the next is in flight.
	sp = obs.StartSpan(ctx, "exchange")
	var z []*big.Int
	err = ps.duplex(ctx, !first,
		func(ctx context.Context) error { return ps.sendElems(ctx, sortedCopy(y)) },
		func(ctx context.Context) error {
			var rerr error
			_, z, rerr = ps.recvReencryptStream(ctx, key, peerSize, "peer Y", true)
			return rerr
		})
	sp.End()
	if err != nil {
		return nil, err
	}

	// Ship the doubly-encrypted set — sorted, so the analyst (and no one
	// else) can only count — to T, together with a header announcing our
	// own set size.
	sp = obs.StartSpan(ctx, "ship-to-analyst")
	if _, err := as.handshake(ctx, wire.ProtoIntersectionSize, len(vals), true); err != nil {
		sp.End()
		return nil, err
	}
	err = as.sendElems(ctx, sortedCopy(z))
	sp.End()
	if err != nil {
		return nil, err
	}
	return &ThirdPartyPeerInfo{PeerSetSize: peerSize}, nil
}

// ThirdPartyAnalyst runs the analyst T: it receives the doubly-encrypted
// set of party B's values from party A and vice versa, and counts the
// overlap.  connA and connB are T's connections to the two data parties.
func ThirdPartyAnalyst(ctx context.Context, cfg Config, connA, connB transport.Conn) (*ThirdPartySizeResult, error) {
	sa := newSession(ctx, cfg, connA)
	sb := newSession(ctx, cfg, connB)

	// Each data party announces its own size, then ships the *other*
	// party's doubly-encrypted set.
	sp := obs.StartSpan(ctx, "exchange")
	sizeA, err := sa.handshake(ctx, wire.ProtoIntersectionSize, 0, false)
	if err != nil {
		sp.End()
		return nil, fmt.Errorf("core: analyst handshake with A: %w", err)
	}
	// Cardinality is checked after both handshakes: each party ships the
	// *other* party's set, so the expected length is known only then.
	zFromA, err := sa.recvElems(ctx, -1, "Z from A", false) // = Z_B: B's values, doubly encrypted
	if err != nil {
		sp.End()
		return nil, fmt.Errorf("core: analyst receiving from A: %w", err)
	}

	sizeB, err := sb.handshake(ctx, wire.ProtoIntersectionSize, 0, false)
	if err != nil {
		sp.End()
		return nil, fmt.Errorf("core: analyst handshake with B: %w", err)
	}
	zFromB, err := sb.recvElems(ctx, -1, "Z from B", false) // = Z_A: A's values, doubly encrypted
	sp.End()
	if err != nil {
		return nil, fmt.Errorf("core: analyst receiving from B: %w", err)
	}

	sp = obs.StartSpan(ctx, "analyst-count")
	defer sp.End()
	if len(zFromA) != sizeB {
		return nil, fmt.Errorf("%w: Z from A has %d elements, want %d", ErrMalformedReply, len(zFromA), sizeB)
	}
	if len(zFromB) != sizeA {
		return nil, fmt.Errorf("%w: Z from B has %d elements, want %d", ErrMalformedReply, len(zFromB), sizeA)
	}

	ky := sa.newKeyer()
	countA := multisetCountsKeyed(zFromB, ky)
	countB := multisetCountsKeyed(zFromA, ky)
	size := 0
	for k, ca := range countA {
		size += ca * countB[k]
	}
	return &ThirdPartySizeResult{IntersectionSize: size, SizeA: sizeA, SizeB: sizeB}, nil
}
