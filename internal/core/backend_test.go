package core

import (
	"context"
	"errors"
	"math/rand"
	"testing"

	"minshare/internal/group"
	"minshare/internal/obs"
	"minshare/internal/transport"
	"minshare/internal/wire"
)

// ecConfig returns a Config over the Curve25519 backend with a seeded
// randomness source.
func ecConfig(seed int64) Config {
	return Config{
		Group:       group.EC25519(),
		Rand:        rand.New(rand.NewSource(seed)),
		Parallelism: 1,
	}
}

// TestIntersectionOverEC25519 runs the full Section 3.3 protocol with
// f_e(x) = e·H(x) over the curve backend: the protocol layer must be
// completely backend-agnostic.
func TestIntersectionOverEC25519(t *testing.T) {
	for _, chunk := range []int{0, 3} {
		vR, vS := overlapping(6, 7, 4)
		cfgR, cfgS := ecConfig(1), ecConfig(2)
		cfgR.ChunkSize = chunk
		cfgS.ChunkSize = chunk
		res, sInfo := runPair(t,
			func(ctx context.Context, conn transport.Conn) (*IntersectionResult, error) {
				return IntersectionReceiver(ctx, cfgR, conn, vR)
			},
			func(ctx context.Context, conn transport.Conn) (*SenderInfo, error) {
				return IntersectionSender(ctx, cfgS, conn, vS)
			})
		if len(res.Values) != 4 {
			t.Fatalf("chunk=%d: |intersection| = %d, want 4", chunk, len(res.Values))
		}
		want := plaintextIntersection(vR, vS)
		for _, v := range res.Values {
			if !want[string(v)] {
				t.Errorf("chunk=%d: spurious value %q", chunk, v)
			}
		}
		if sInfo.ReceiverSetSize != 6 {
			t.Errorf("chunk=%d: |V_R| = %d, want 6", chunk, sInfo.ReceiverSetSize)
		}
	}
}

// TestEquijoinOverEC25519 runs the Section 4.3 equijoin over the curve
// backend: κ(v) is a 32-byte curve point feeding the hybrid payload
// cipher.
func TestEquijoinOverEC25519(t *testing.T) {
	vR, vS := overlapping(5, 6, 3)
	cfgR, cfgS := ecConfig(3), ecConfig(4)
	res, _ := runPair(t,
		func(ctx context.Context, conn transport.Conn) (*JoinResult, error) {
			return EquijoinReceiver(ctx, cfgR, conn, vR)
		},
		func(ctx context.Context, conn transport.Conn) (*SenderInfo, error) {
			return EquijoinSender(ctx, cfgS, conn, mkRecords(vS))
		})
	if len(res.Matches) != 3 {
		t.Fatalf("matches = %d, want 3", len(res.Matches))
	}
	for _, m := range res.Matches {
		if string(m.Ext) != "ext-of-"+string(m.Value) {
			t.Errorf("ext mismatch for %q", m.Value)
		}
	}
}

// TestIntersectionSizeOverEC25519 covers the Section 5.1.1 protocol on
// the curve backend.
func TestIntersectionSizeOverEC25519(t *testing.T) {
	vR, vS := overlapping(8, 5, 2)
	res, _ := runPair(t,
		func(ctx context.Context, conn transport.Conn) (*SizeResult, error) {
			return IntersectionSizeReceiver(ctx, ecConfig(5), conn, vR)
		},
		func(ctx context.Context, conn transport.Conn) (*SenderInfo, error) {
			return IntersectionSizeSender(ctx, ecConfig(6), conn, vS)
		})
	if res.IntersectionSize != 2 {
		t.Fatalf("|intersection| = %d, want 2", res.IntersectionSize)
	}
}

// TestBackendMismatchRejected pins the negotiation contract: a
// safe-prime party and a curve party must fail the handshake with the
// explicit backend error, in both pairings, before any encrypted
// element is exchanged.
func TestBackendMismatchRejected(t *testing.T) {
	cases := []struct {
		name       string
		cfgR, cfgS Config
	}{
		{"qr-receiver-ec-sender", testConfig(1), ecConfig(2)},
		{"ec-receiver-qr-sender", ecConfig(1), testConfig(2)},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			rErr, sErr := runPairExpectErr(
				func(ctx context.Context, conn transport.Conn) (*IntersectionResult, error) {
					return IntersectionReceiver(ctx, tc.cfgR, conn, vals("r", 3))
				},
				func(ctx context.Context, conn transport.Conn) (*SenderInfo, error) {
					return IntersectionSender(ctx, tc.cfgS, conn, vals("s", 3))
				})
			if rErr == nil && sErr == nil {
				t.Fatal("backend mismatch went undetected")
			}
			// At least one side must report the explicit backend error;
			// the other may see it relayed as a peer failure or a closed
			// pipe, but never the generic parameter mismatch.
			if !errors.Is(rErr, ErrBackendMismatch) && !errors.Is(sErr, ErrBackendMismatch) {
				t.Fatalf("no side saw ErrBackendMismatch: receiver=%v sender=%v", rErr, sErr)
			}
			for side, err := range map[string]error{"receiver": rErr, "sender": sErr} {
				if errors.Is(err, ErrGroupMismatch) {
					t.Errorf("%s reported generic ErrGroupMismatch instead of the backend error: %v", side, err)
				}
			}
		})
	}
}

// TestECSenderSetCache exercises the cross-session encrypted-set cache
// over the curve backend: the second run must hit the cached state and
// still produce the right intersection.
func TestECSenderSetCache(t *testing.T) {
	var stats obs.CacheStats
	cache := NewSenderSetCache(0, &stats)
	key := SetCacheKey{PeerHost: "peer-a", Table: "t", Version: 1, Protocol: wire.ProtoIntersection}
	vR, vS := overlapping(4, 5, 2)
	for run := 0; run < 2; run++ {
		cfgR := ecConfig(int64(10 + run))
		cfgS := ecConfig(int64(20 + run))
		cfgS.SetCache = cache
		cfgS.CacheKey = key
		res, _ := runPair(t,
			func(ctx context.Context, conn transport.Conn) (*IntersectionResult, error) {
				return IntersectionReceiver(ctx, cfgR, conn, vR)
			},
			func(ctx context.Context, conn transport.Conn) (*SenderInfo, error) {
				return IntersectionSender(ctx, cfgS, conn, vS)
			})
		if len(res.Values) != 2 {
			t.Fatalf("run %d: |intersection| = %d, want 2", run, len(res.Values))
		}
	}
	snap := stats.Snapshot()
	if snap.Hits != 1 || snap.Misses != 1 {
		t.Errorf("cache stats hits=%d misses=%d, want 1/1", snap.Hits, snap.Misses)
	}
}
