package core

import (
	"context"
	"fmt"
	"testing"

	"minshare/internal/group"
	"minshare/internal/kenc"
	"minshare/internal/transport"
)

func mkRecords(values [][]byte) []JoinRecord {
	recs := make([]JoinRecord, len(values))
	for i, v := range values {
		recs[i] = JoinRecord{Value: v, Ext: []byte("ext-of-" + string(v))}
	}
	return recs
}

func runEquijoin(t *testing.T, cfgR, cfgS Config, vR [][]byte, recs []JoinRecord) (*JoinResult, *SenderInfo) {
	t.Helper()
	return runPair(t,
		func(ctx context.Context, conn transport.Conn) (*JoinResult, error) {
			return EquijoinReceiver(ctx, cfgR, conn, vR)
		},
		func(ctx context.Context, conn transport.Conn) (*SenderInfo, error) {
			return EquijoinSender(ctx, cfgS, conn, recs)
		})
}

func TestEquijoinBasic(t *testing.T) {
	vR, vS := overlapping(8, 12, 5)
	res, sInfo := runEquijoin(t, testConfig(1), testConfig(2), vR, mkRecords(vS))

	if len(res.Matches) != 5 {
		t.Fatalf("matches = %d, want 5", len(res.Matches))
	}
	want := plaintextIntersection(vR, vS)
	for _, m := range res.Matches {
		if !want[string(m.Value)] {
			t.Errorf("spurious match %q", m.Value)
		}
		if wantExt := "ext-of-" + string(m.Value); string(m.Ext) != wantExt {
			t.Errorf("ext for %q = %q, want %q", m.Value, m.Ext, wantExt)
		}
	}
	if res.SenderSetSize != 12 {
		t.Errorf("|V_S| = %d, want 12", res.SenderSetSize)
	}
	if sInfo.ReceiverSetSize != 8 {
		t.Errorf("|V_R| = %d, want 8", sInfo.ReceiverSetSize)
	}
}

func TestEquijoinBothCiphers(t *testing.T) {
	vR, vS := overlapping(5, 6, 3)
	for _, mk := range []func(Config) Config{
		func(c Config) Config { c.Cipher = kenc.NewHybrid(c.Group); return c },
		func(c Config) Config { c.Cipher = kenc.NewMultiplicative(c.Group.(*group.Group)); return c },
	} {
		cfgR, cfgS := mk(testConfig(1)), mk(testConfig(2))
		t.Run(cfgR.Cipher.Name(), func(t *testing.T) {
			res, _ := runEquijoin(t, cfgR, cfgS, vR, mkRecords(vS))
			if len(res.Matches) != 3 {
				t.Fatalf("matches = %d, want 3", len(res.Matches))
			}
			for _, m := range res.Matches {
				if string(m.Ext) != "ext-of-"+string(m.Value) {
					t.Errorf("ext mismatch for %q", m.Value)
				}
			}
		})
	}
}

func TestEquijoinCipherMismatchFails(t *testing.T) {
	// R expects multiplicative ciphertexts, S sends hybrid: R must error
	// out, not return wrong plaintext.
	cfgR, cfgS := testConfig(1), testConfig(2)
	cfgR.Cipher = kenc.NewMultiplicative(cfgR.Group.(*group.Group))
	cfgS.Cipher = kenc.NewHybrid(cfgS.Group)
	vR, vS := overlapping(3, 3, 2)
	rErr, _ := runPairExpectErr(
		func(ctx context.Context, conn transport.Conn) (*JoinResult, error) {
			return EquijoinReceiver(ctx, cfgR, conn, vR)
		},
		func(ctx context.Context, conn transport.Conn) (*SenderInfo, error) {
			return EquijoinSender(ctx, cfgS, conn, mkRecords(vS))
		})
	if rErr == nil {
		t.Fatal("cipher mismatch produced no receiver error")
	}
}

func TestEquijoinEmpty(t *testing.T) {
	res, _ := runEquijoin(t, testConfig(1), testConfig(2), nil, mkRecords(vals("s", 4)))
	if len(res.Matches) != 0 {
		t.Errorf("empty R side produced matches")
	}
	res, _ = runEquijoin(t, testConfig(3), testConfig(4), vals("r", 4), nil)
	if len(res.Matches) != 0 || res.SenderSetSize != 0 {
		t.Errorf("empty S side produced matches")
	}
}

func TestEquijoinDisjoint(t *testing.T) {
	res, _ := runEquijoin(t, testConfig(1), testConfig(2), vals("r", 6), mkRecords(vals("s", 6)))
	if len(res.Matches) != 0 {
		t.Errorf("disjoint sets joined: %v", res.Matches)
	}
}

func TestEquijoinLargeExtPayloads(t *testing.T) {
	vR, vS := overlapping(4, 4, 2)
	recs := make([]JoinRecord, len(vS))
	for i, v := range vS {
		ext := make([]byte, 10_000)
		for j := range ext {
			ext[j] = byte(i + j)
		}
		recs[i] = JoinRecord{Value: v, Ext: ext}
	}
	res, _ := runEquijoin(t, testConfig(1), testConfig(2), vR, recs)
	if len(res.Matches) != 2 {
		t.Fatalf("matches = %d, want 2", len(res.Matches))
	}
	for _, m := range res.Matches {
		if len(m.Ext) != 10_000 {
			t.Errorf("ext length %d, want 10000", len(m.Ext))
		}
	}
}

func TestEquijoinEmptyExt(t *testing.T) {
	vR, vS := overlapping(3, 3, 3)
	recs := make([]JoinRecord, len(vS))
	for i, v := range vS {
		recs[i] = JoinRecord{Value: v, Ext: nil}
	}
	res, _ := runEquijoin(t, testConfig(1), testConfig(2), vR, recs)
	if len(res.Matches) != 3 {
		t.Fatalf("matches = %d, want 3", len(res.Matches))
	}
	for _, m := range res.Matches {
		if len(m.Ext) != 0 {
			t.Errorf("empty ext round-tripped to %q", m.Ext)
		}
	}
}

func TestEquijoinManyValues(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	vR, vS := overlapping(60, 80, 25)
	cfgR, cfgS := testConfig(1), testConfig(2)
	cfgR.Parallelism = 4
	cfgS.Parallelism = 4
	res, _ := runEquijoin(t, cfgR, cfgS, vR, mkRecords(vS))
	if len(res.Matches) != 25 {
		t.Fatalf("matches = %d, want 25", len(res.Matches))
	}
}

func TestEquijoinConflictingRecordsRejectedLocally(t *testing.T) {
	recs := []JoinRecord{
		{Value: []byte("v"), Ext: []byte("a")},
		{Value: []byte("v"), Ext: []byte("b")},
	}
	_, err := EquijoinSender(context.Background(), testConfig(1), nil, recs)
	if err == nil {
		t.Fatal("conflicting records accepted")
	}
}

func TestEquijoinExtNotRevealedOutsideIntersection(t *testing.T) {
	// Structural secrecy check: the ciphertexts S ships for values
	// outside the intersection must be undecryptable by R.  We verify by
	// recording S's ExtPairs frame and attempting decryption with every
	// κ that R legitimately derived.
	vR, vS := overlapping(4, 6, 2)
	cfgR, cfgS := testConfig(1), testConfig(2)

	ctx := context.Background()
	connR, connS := transport.Pipe()
	defer connR.Close()
	tapR := transport.NewTap(connR)

	type out struct {
		res *JoinResult
		err error
	}
	ch := make(chan out, 1)
	go func() {
		res, err := EquijoinReceiver(ctx, cfgR, tapR, vR)
		ch <- out{res, err}
	}()
	if _, err := EquijoinSender(ctx, cfgS, connS, mkRecords(vS)); err != nil {
		t.Fatalf("sender: %v", err)
	}
	rOut := <-ch
	if rOut.err != nil {
		t.Fatalf("receiver: %v", rOut.err)
	}
	if len(rOut.res.Matches) != 2 {
		t.Fatalf("matches = %d, want 2", len(rOut.res.Matches))
	}
	// R decrypted exactly |V_S ∩ V_R| payloads; the other |V_S|-2
	// ciphertexts arrived but none of R's κ values opens them (the
	// receiver implementation would have errored had it tried a wrong
	// key, and the matches above are complete).
	frames := tapR.Received()
	if len(frames) == 0 {
		t.Fatal("tap recorded nothing")
	}
}

func TestEquijoinResultOrderIsReceiverOrder(t *testing.T) {
	vR := [][]byte{[]byte("z"), []byte("m"), []byte("a")}
	recs := mkRecords([][]byte{[]byte("a"), []byte("z")})
	res, _ := runEquijoin(t, testConfig(1), testConfig(2), vR, recs)
	if len(res.Matches) != 2 {
		t.Fatalf("matches = %d", len(res.Matches))
	}
	if string(res.Matches[0].Value) != "z" || string(res.Matches[1].Value) != "a" {
		t.Errorf("order %q,%q; want z,a (R's input order)",
			res.Matches[0].Value, res.Matches[1].Value)
	}
}

func BenchmarkEquijoinSmall(b *testing.B) {
	vR, vS := overlapping(16, 16, 8)
	recs := mkRecords(vS)
	for i := 0; i < b.N; i++ {
		cfgR, cfgS := testConfig(int64(i)), testConfig(int64(i+1000))
		ctx := context.Background()
		connR, connS := transport.Pipe()
		ch := make(chan error, 1)
		go func() {
			_, err := EquijoinSender(ctx, cfgS, connS, recs)
			ch <- err
		}()
		if _, err := EquijoinReceiver(ctx, cfgR, connR, vR); err != nil {
			b.Fatal(err)
		}
		if err := <-ch; err != nil {
			b.Fatal(err)
		}
		connR.Close()
	}
}

func ExampleEquijoinReceiver() {
	ctx := context.Background()
	connR, connS := transport.Pipe()
	defer connR.Close()

	go func() {
		records := []JoinRecord{
			{Value: []byte("alice"), Ext: []byte("balance=100")},
			{Value: []byte("bob"), Ext: []byte("balance=250")},
		}
		_, _ = EquijoinSender(ctx, Config{}, connS, records)
	}()

	res, err := EquijoinReceiver(ctx, Config{}, connR, [][]byte{[]byte("bob"), []byte("carol")})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	for _, m := range res.Matches {
		fmt.Printf("%s -> %s\n", m.Value, m.Ext)
	}
	// Output:
	// bob -> balance=250
}
