package core

import (
	"context"
	"reflect"
	"testing"
	"testing/quick"

	"minshare/internal/transport"
)

func runIntersectionSize(t *testing.T, vR, vS [][]byte) (*SizeResult, *SenderInfo) {
	t.Helper()
	cfgR, cfgS := testConfig(1), testConfig(2)
	return runPair(t,
		func(ctx context.Context, conn transport.Conn) (*SizeResult, error) {
			return IntersectionSizeReceiver(ctx, cfgR, conn, vR)
		},
		func(ctx context.Context, conn transport.Conn) (*SenderInfo, error) {
			return IntersectionSizeSender(ctx, cfgS, conn, vS)
		})
}

func TestIntersectionSizeBasic(t *testing.T) {
	vR, vS := overlapping(10, 14, 6)
	res, sInfo := runIntersectionSize(t, vR, vS)
	if res.IntersectionSize != 6 {
		t.Errorf("size = %d, want 6", res.IntersectionSize)
	}
	if res.SenderSetSize != 14 {
		t.Errorf("|V_S| = %d, want 14", res.SenderSetSize)
	}
	if sInfo.ReceiverSetSize != 10 {
		t.Errorf("|V_R| = %d, want 10", sInfo.ReceiverSetSize)
	}
}

func TestIntersectionSizeSweep(t *testing.T) {
	for _, tc := range []struct{ nR, nS, shared int }{
		{1, 1, 0}, {1, 1, 1}, {5, 5, 0}, {5, 5, 5}, {8, 3, 2}, {3, 8, 3},
	} {
		vR, vS := overlapping(tc.nR, tc.nS, tc.shared)
		res, _ := runIntersectionSize(t, vR, vS)
		if res.IntersectionSize != tc.shared {
			t.Errorf("(%d,%d,%d): size = %d", tc.nR, tc.nS, tc.shared, res.IntersectionSize)
		}
	}
}

func TestIntersectionSizeEmpty(t *testing.T) {
	res, _ := runIntersectionSize(t, nil, nil)
	if res.IntersectionSize != 0 || res.SenderSetSize != 0 {
		t.Errorf("empty run: %+v", res)
	}
}

func TestIntersectionSizeDedupes(t *testing.T) {
	vR := [][]byte{[]byte("a"), []byte("a"), []byte("b")}
	vS := [][]byte{[]byte("a"), []byte("c"), []byte("c")}
	res, _ := runIntersectionSize(t, vR, vS)
	if res.IntersectionSize != 1 {
		t.Errorf("size = %d, want 1", res.IntersectionSize)
	}
	if res.SenderSetSize != 2 {
		t.Errorf("|V_S| = %d, want 2", res.SenderSetSize)
	}
}

// ---- equijoin size (multisets) ----

func runJoinSize(t *testing.T, vR, vS [][]byte) (*JoinSizeResult, *JoinSizeSenderInfo) {
	t.Helper()
	cfgR, cfgS := testConfig(1), testConfig(2)
	return runPair(t,
		func(ctx context.Context, conn transport.Conn) (*JoinSizeResult, error) {
			return EquijoinSizeReceiver(ctx, cfgR, conn, vR)
		},
		func(ctx context.Context, conn transport.Conn) (*JoinSizeSenderInfo, error) {
			return EquijoinSizeSender(ctx, cfgS, conn, vS)
		})
}

// plaintextJoinSize computes Σ_v dup_R(v)·dup_S(v).
func plaintextJoinSize(vR, vS [][]byte) int {
	cR := map[string]int{}
	for _, v := range vR {
		cR[string(v)]++
	}
	cS := map[string]int{}
	for _, v := range vS {
		cS[string(v)]++
	}
	n := 0
	for k, a := range cR {
		n += a * cS[k]
	}
	return n
}

func TestEquijoinSizeNoDuplicates(t *testing.T) {
	// Without duplicates the join size equals the intersection size.
	vR, vS := overlapping(7, 9, 4)
	res, _ := runJoinSize(t, vR, vS)
	if res.JoinSize != 4 {
		t.Errorf("join size = %d, want 4", res.JoinSize)
	}
}

func TestEquijoinSizeWithDuplicates(t *testing.T) {
	vR := [][]byte{
		[]byte("a"), []byte("a"), []byte("a"), // a ×3
		[]byte("b"),              // b ×1
		[]byte("c"), []byte("c"), // c ×2
		[]byte("r1"), []byte("r2"), // R-only
	}
	vS := [][]byte{
		[]byte("a"), []byte("a"), // a ×2
		[]byte("b"), []byte("b"), []byte("b"), // b ×3
		[]byte("s1"), // S-only
	}
	res, sInfo := runJoinSize(t, vR, vS)
	want := 3*2 + 1*3 // a: 6, b: 3
	if res.JoinSize != want {
		t.Errorf("join size = %d, want %d", res.JoinSize, want)
	}
	if res.SenderMultisetSize != len(vS) {
		t.Errorf("|T_S.A| = %d, want %d", res.SenderMultisetSize, len(vS))
	}
	if sInfo.ReceiverMultisetSize != len(vR) {
		t.Errorf("|T_R.A| = %d, want %d", sInfo.ReceiverMultisetSize, len(vR))
	}

	// Section 5.2: R learns the distribution of duplicates in T_S.A ...
	wantDistS := map[int]int{2: 1, 3: 1, 1: 1} // a×2, b×3, s1×1
	if !reflect.DeepEqual(res.SenderDuplicateDistribution, wantDistS) {
		t.Errorf("S duplicate distribution = %v, want %v", res.SenderDuplicateDistribution, wantDistS)
	}
	// ... and S learns the distribution of duplicates in T_R.A.
	wantDistR := map[int]int{3: 1, 1: 3, 2: 1} // a×3; b,r1,r2×1; c×2
	if !reflect.DeepEqual(sInfo.ReceiverDuplicateDistribution, wantDistR) {
		t.Errorf("R duplicate distribution = %v, want %v", sInfo.ReceiverDuplicateDistribution, wantDistR)
	}
}

func TestEquijoinSizeProperty(t *testing.T) {
	f := func(dupsR, dupsS []uint8) bool {
		if len(dupsR) > 8 {
			dupsR = dupsR[:8]
		}
		if len(dupsS) > 8 {
			dupsS = dupsS[:8]
		}
		var vR, vS [][]byte
		for i, d := range dupsR {
			for j := 0; j < int(d%4); j++ {
				vR = append(vR, []byte{byte('a' + i)})
			}
		}
		for i, d := range dupsS {
			for j := 0; j < int(d%4); j++ {
				vS = append(vS, []byte{byte('a' + i)})
			}
		}
		res, _ := runJoinSize(t, vR, vS)
		return res.JoinSize == plaintextJoinSize(vR, vS)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Error(err)
	}
}

func TestDuplicateDistributionHelpers(t *testing.T) {
	values := [][]byte{[]byte("x"), []byte("x"), []byte("y")}
	want := map[int]int{2: 1, 1: 1}
	if got := DuplicateDistributionValues(values); !reflect.DeepEqual(got, want) {
		t.Errorf("DuplicateDistributionValues = %v, want %v", got, want)
	}
}
