package core

import (
	"context"
	"errors"
	"fmt"
	"time"

	"minshare/internal/commutative"
	"minshare/internal/obs"
	"minshare/internal/transport"
	"minshare/internal/wire"
)

// ErrSubscriptionEnded reports that the peer closed a standing query —
// the sender because it can no longer serve deltas (key rotation, churn
// over the bound, change log exhausted), the receiver by unsubscribing.
// The last delivered result remains valid; the subscriber re-runs the
// full protocol to continue.
var ErrSubscriptionEnded = errors.New("core: subscription ended")

// errStandingSharded rejects standing queries on sharded sessions: a
// table-level delta spans all hash-prefix partitions, so an incremental
// push would need the delta re-partitioned per shard.  Sharded callers
// re-run the protocol instead.
var errStandingSharded = errors.New("core: standing queries require an unsharded session (Shards <= 1)")

// StandingIntersection is party R's half of a standing intersection
// query (the subscription variant of Section 3.3): after the base run,
// R retains its session state — e_R, the sorted permutation, its own
// double encryptions, and the Z_S membership set — and folds each
// SubUpdate the sender pushes into the result for O(churn)
// exponentiations instead of an O(|V_S|+|V_R|) re-run.
//
// A StandingIntersection is not safe for concurrent use.
type StandingIntersection struct {
	s       *session
	st      *intersectionState
	res     *IntersectionResult
	version uint64
	closed  bool
}

// IntersectionReceiverStanding runs party R of the intersection
// protocol exactly as IntersectionReceiver does, then subscribes to the
// sender's deltas instead of hanging up.  The sender must be a standing
// sender (IntersectionSenderStanding); against a plain sender the
// subscribe frame dies with the connection and Await fails.
func IntersectionReceiverStanding(ctx context.Context, cfg Config, conn transport.Conn, values [][]byte) (*StandingIntersection, error) {
	if cfg.Shards > 1 {
		return nil, errStandingSharded
	}
	s := newSession(ctx, cfg, conn)
	st, err := s.intersectionReceiverRun(ctx, dedup(values))
	if err != nil {
		return nil, err
	}
	q := &StandingIntersection{s: s, st: st, version: s.peerVersion}
	q.res = st.result(q.version)
	if err := s.send(ctx, wire.Subscribe{FromVersion: q.version}); err != nil {
		return nil, err
	}
	return q, nil
}

// Result returns the intersection as of the last applied update (the
// base run's result before the first Await).
func (q *StandingIntersection) Result() *IntersectionResult { return q.res }

// Version returns the sender data version the current result reflects.
func (q *StandingIntersection) Version() uint64 { return q.version }

// Await blocks for the next pushed update, folds it into the retained
// state, acknowledges it, and returns the refreshed result.  It returns
// ErrSubscriptionEnded when the sender closes the subscription.
//
// Per update the receiver performs exactly (nIns+nDel) encryptions —
// stripping nothing, adding its e_R layer to each pushed f_eS(h(v)) so
// it lands in the double-encrypted domain of the retained Z_S set —
// and no oracle hashes (costmodel.IntersectionUpdateOps).
func (q *StandingIntersection) Await(ctx context.Context) (*IntersectionResult, error) {
	if q.closed {
		return nil, ErrSubscriptionEnded
	}
	m, err := q.s.recvAny(ctx, wire.KindSubUpdate, wire.KindSubEnd)
	if err != nil {
		return nil, err
	}
	if _, ended := m.(wire.SubEnd); ended {
		q.closed = true
		return nil, ErrSubscriptionEnded
	}
	u := m.(wire.SubUpdate)

	var start time.Time
	if q.s.lat != nil {
		start = time.Now()
	}
	s, st := q.s, q.st
	if u.From != q.version || u.To <= u.From {
		return nil, s.abort(ctx, fmt.Errorf("%w: sub update spans %d..%d, want from %d",
			ErrMalformedReply, u.From, u.To, q.version))
	}
	if u.HasExt {
		return nil, s.abort(ctx, fmt.Errorf("%w: ext payloads in an intersection sub update", ErrMalformedReply))
	}
	if err := s.checkElems(ctx, u.Upserts, -1, "pushed inserts", true); err != nil {
		return nil, s.abort(ctx, err)
	}
	if err := s.checkElems(ctx, u.Deleted, -1, "pushed deletes", true); err != nil {
		return nil, s.abort(ctx, err)
	}

	// Lift each pushed f_eS(h(v)) into the double-encrypted domain with
	// the retained e_R — by commutativity f_eR(f_eS(h(v))) is exactly the
	// Z_S representation — then update membership by map surgery.
	ins, err := s.encryptSet(ctx, st.eR, u.Upserts)
	if err != nil {
		return nil, s.abort(ctx, err)
	}
	del, err := s.encryptSet(ctx, st.eR, u.Deleted)
	if err != nil {
		return nil, s.abort(ctx, err)
	}
	for _, z := range ins {
		k := st.ky.key(z)
		if _, dup := st.zSet[k]; dup {
			return nil, s.abort(ctx, fmt.Errorf("%w: pushed insert already present", ErrMalformedReply))
		}
		st.zSet[k] = struct{}{}
	}
	for _, z := range del {
		k := st.ky.key(z)
		if _, ok := st.zSet[k]; !ok {
			return nil, s.abort(ctx, fmt.Errorf("%w: pushed delete not present", ErrMalformedReply))
		}
		delete(st.zSet, k)
	}
	st.peerSize += len(ins) - len(del)
	q.version = u.To

	if err := s.send(ctx, wire.SubAck{Version: u.To}); err != nil {
		return nil, err
	}
	if s.lat != nil {
		s.lat.Record(obs.LatDeltaApply, time.Since(start))
	}
	q.res = st.result(q.version)
	return q.res, nil
}

// Close unsubscribes: the sender sees the SubEnd (or the closed
// connection) and stops pushing.  Safe to call after the subscription
// already ended.
func (q *StandingIntersection) Close(ctx context.Context) error {
	if q.closed {
		return nil
	}
	q.closed = true
	return q.s.send(ctx, wire.SubEnd{Code: wire.SubEndClient})
}

// IntersectionSenderStanding runs party S of the intersection protocol
// exactly as IntersectionSender does, then serves the peer's standing
// query: each time cfg.DeltaSource reports a new version, S re-encrypts
// only the churn under its pinned e_S (commutative.CachedSet.ApplyDelta)
// and pushes one SubUpdate.  cfg.DeltaSource must be non-nil and
// cfg.DataVersion must be the version it currently reports.
//
// The call returns when the receiver unsubscribes or hangs up (nil
// error — a receiver that never subscribes is the ordinary one-shot
// session, byte-identical on the wire to IntersectionSender), when the
// sender ends the subscription because a delta is unavailable or over
// the churn bound (nil error after a SubEnd push), or when ctx ends.
func IntersectionSenderStanding(ctx context.Context, cfg Config, conn transport.Conn, values [][]byte) (*SenderInfo, error) {
	if cfg.Shards > 1 {
		return nil, errStandingSharded
	}
	if cfg.DeltaSource == nil {
		return nil, errors.New("core: standing sender requires a DeltaSource")
	}
	s := newSession(ctx, cfg, conn)
	info, eS, sortedYS, err := s.intersectionSenderRun(ctx, dedup(values))
	if err != nil {
		return nil, err
	}
	cs, err := commutative.CachedSetFromSorted(eS, sortedYS, nil)
	if err != nil {
		return info, fmt.Errorf("core: retaining encrypted set: %w", err)
	}
	return info, s.serveSubscription(ctx, cs, nil, false)
}

// subRecvErr classifies an error from receiving a subscription-phase
// message: protocol violations and context ends surface; a transport
// close is the receiver hanging up, which ends the subscription cleanly.
func subRecvErr(ctx context.Context, err error) error {
	switch {
	case err == nil:
		return nil
	case errors.Is(err, ErrPeerFailure),
		errors.Is(err, ErrMalformedReply),
		errors.Is(err, wire.ErrKindMismatch):
		return err
	case ctx.Err() != nil:
		return ctx.Err()
	}
	return nil
}

// serveSubscription is the sender-side push loop shared by the standing
// intersection and equijoin: wait for the Subscribe, then alternate
// between watching the DeltaSource and pushing one SubUpdate per version
// step, maintaining the retained encrypted set by ApplyDelta.  hasExt
// selects the equijoin shape (upserts carry payload ciphertexts under
// extKey); cs is the retained set as of cfg.DataVersion.
func (s *session) serveSubscription(ctx context.Context, cs *commutative.CachedSet, extKey *commutative.Key, hasExt bool) error {
	src := s.cfg.DeltaSource
	cur := s.cfg.DataVersion

	m, err := s.recvAny(ctx, wire.KindSubscribe)
	if err != nil {
		return subRecvErr(ctx, err)
	}
	if sub := m.(wire.Subscribe); sub.FromVersion != cur {
		// The peer subscribed from a version this session did not serve —
		// nothing incremental can be promised.
		_ = s.send(ctx, wire.SubEnd{Code: wire.SubEndServer})
		return nil
	}

	// One pump goroutine owns the connection's receive side for the rest
	// of the session, so a client SubEnd (or hang-up) is noticed even
	// while the loop is blocked watching the DeltaSource.
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	type recvRes struct {
		m   wire.Message
		err error
	}
	msgs := make(chan recvRes)
	go func() {
		for {
			m, err := s.recvAny(ctx, wire.KindSubAck, wire.KindSubEnd)
			select {
			case msgs <- recvRes{m, err}:
			case <-ctx.Done():
				return
			}
			if err != nil {
				return
			}
		}
	}()

	for {
		// Block until the table moves or the peer speaks.
		wctx, wcancel := context.WithCancel(ctx)
		waitErr := make(chan error, 1)
		go func() { waitErr <- src.Wait(wctx, cur) }()
		select {
		case r := <-msgs:
			wcancel()
			<-waitErr
			if r.err != nil {
				return subRecvErr(ctx, r.err)
			}
			// SubEnd (client) — or a stray early SubAck, equally terminal.
			return nil
		case werr := <-waitErr:
			wcancel()
			if werr != nil {
				if ctx.Err() != nil {
					return ctx.Err()
				}
				return werr
			}
		}

		d, ok := src.DeltaSince(cur)
		if !ok || d.From != cur || d.To <= cur {
			_ = s.send(ctx, wire.SubEnd{Code: wire.SubEndServer})
			return nil
		}
		next, u, ok := s.pushDelta(ctx, cs, extKey, hasExt, d)
		if !ok {
			_ = s.send(ctx, wire.SubEnd{Code: wire.SubEndServer})
			return nil
		}

		var start time.Time
		if s.lat != nil {
			start = time.Now()
		}
		if err := s.send(ctx, u); err != nil {
			return err
		}
		if s.lat != nil {
			s.lat.Record(obs.LatDeltaPush, time.Since(start))
		}

		select {
		case r := <-msgs:
			if r.err != nil {
				return subRecvErr(ctx, r.err)
			}
			// lint:ignore wirekind r.m comes from recvAny(KindSubAck, KindSubEnd) — the pump already rejects every other kind with ErrKindMismatch, so only the two subscription replies can reach this switch
			switch am := r.m.(type) {
			case wire.SubAck:
				if am.Version != d.To {
					return s.abort(ctx, fmt.Errorf("%w: sub ack for version %d, want %d",
						ErrMalformedReply, am.Version, d.To))
				}
			case wire.SubEnd:
				return nil
			}
		case <-ctx.Done():
			return ctx.Err()
		}

		cs, cur = next, d.To
		if s.cfg.SetCache != nil {
			// Keep the peer's cache slot current so a later one-shot session
			// at this version starts warm.
			k := s.cfg.CacheKey
			k.Version = cur
			s.cfg.SetCache.Put(k, &CacheEntry{Set: cs, ExtKey: extKey})
		}
	}
}

// pushDelta turns one SetDelta into the upgraded retained set and the
// SubUpdate that ships it, paying exactly the sender half of
// costmodel.IntersectionUpdateOps / JoinUpdateOps: hash the churn, one
// encryption per churned value under the pinned e_S (plus, for the
// equijoin, one κ encryption and one payload encryption per upsert).
// ok is false when the delta exceeds the churn bound or conflicts with
// the retained set — the caller ends the subscription.
func (s *session) pushDelta(ctx context.Context, cs *commutative.CachedSet, extKey *commutative.Key, hasExt bool, d SetDelta) (*commutative.CachedSet, wire.SubUpdate, bool) {
	var insV, updV, insExt, updExt [][]byte
	for _, r := range d.Inserted {
		insV = append(insV, r.Value)
		insExt = append(insExt, r.Ext)
	}
	if hasExt {
		// Ext-only updates matter only when payloads ride along; the set
		// protocols skip them — membership is unchanged.
		for _, r := range d.Updated {
			updV = append(updV, r.Value)
			updExt = append(updExt, r.Ext)
		}
	}
	churn := len(insV) + len(updV) + len(d.Deleted)
	if s.cfg.DeltaChurnMax >= 0 && float64(churn) > s.cfg.DeltaChurnMax*float64(cs.Len()+len(insV)) {
		return nil, wire.SubUpdate{}, false
	}

	all := make([][]byte, 0, churn)
	all = append(all, insV...)
	all = append(all, updV...)
	all = append(all, d.Deleted...)
	hs, err := s.hashSet(all)
	if err != nil {
		return nil, wire.SubUpdate{}, false
	}
	insH := hs[:len(insV)]
	updH := hs[len(insV) : len(insV)+len(updV)]
	delH := hs[len(insV)+len(updV):]

	var insP, updP [][]byte
	if hasExt {
		insP, err = s.encryptExts(ctx, extKey, insH, insExt)
		if err == nil {
			updP, err = s.encryptExts(ctx, extKey, updH, updExt)
		}
		if err != nil {
			return nil, wire.SubUpdate{}, false
		}
	}
	next, cd, err := cs.ApplyDelta(ctx, s.cfg.Scheme, insH, updH, delH, insP, updP, s.cfg.Parallelism)
	if err != nil {
		return nil, wire.SubUpdate{}, false
	}

	u := wire.SubUpdate{From: d.From, To: d.To, HasExt: hasExt, Deleted: cd.Deleted}
	if hasExt {
		u.Upserts, u.UpsertExt = cd.Upserts()
	} else {
		u.Upserts = cd.Inserted
	}
	return next, u, true
}

// StandingJoin is party R's half of a standing equijoin query: after
// the base run, R retains the match index keyed by f_eS(h(v)) together
// with its per-position κ values, so a pushed delta costs it NO
// exponentiations at all — the pushed elements are already in the
// index's key domain — and one payload decryption per changed match.
//
// A StandingJoin is not safe for concurrent use.
type StandingJoin struct {
	s       *session
	st      *equijoinState
	res     *JoinResult
	version uint64
	closed  bool
}

// EquijoinReceiverStanding runs party R of the equijoin protocol
// exactly as EquijoinReceiver does, then subscribes to the sender's
// deltas.  The sender must be EquijoinSenderStanding.
func EquijoinReceiverStanding(ctx context.Context, cfg Config, conn transport.Conn, values [][]byte) (*StandingJoin, error) {
	if cfg.Shards > 1 {
		return nil, errStandingSharded
	}
	s := newSession(ctx, cfg, conn)
	st, err := s.equijoinReceiverRun(ctx, dedup(values))
	if err != nil {
		return nil, err
	}
	q := &StandingJoin{s: s, st: st, version: s.peerVersion}
	q.res = st.result(q.version)
	if err := s.send(ctx, wire.Subscribe{FromVersion: q.version}); err != nil {
		return nil, err
	}
	return q, nil
}

// Result returns the join as of the last applied update.
func (q *StandingJoin) Result() *JoinResult { return q.res }

// Version returns the sender data version the current result reflects.
func (q *StandingJoin) Version() uint64 { return q.version }

// Await blocks for the next pushed update, folds it into the retained
// match index, acknowledges it, and returns the refreshed result.  It
// returns ErrSubscriptionEnded when the sender closes the subscription.
func (q *StandingJoin) Await(ctx context.Context) (*JoinResult, error) {
	if q.closed {
		return nil, ErrSubscriptionEnded
	}
	m, err := q.s.recvAny(ctx, wire.KindSubUpdate, wire.KindSubEnd)
	if err != nil {
		return nil, err
	}
	if _, ended := m.(wire.SubEnd); ended {
		q.closed = true
		return nil, ErrSubscriptionEnded
	}
	u := m.(wire.SubUpdate)

	var start time.Time
	if q.s.lat != nil {
		start = time.Now()
	}
	s, st := q.s, q.st
	if u.From != q.version || u.To <= u.From {
		return nil, s.abort(ctx, fmt.Errorf("%w: sub update spans %d..%d, want from %d",
			ErrMalformedReply, u.From, u.To, q.version))
	}
	if !u.HasExt && len(u.Upserts) > 0 {
		return nil, s.abort(ctx, fmt.Errorf("%w: equijoin sub update lacks ext payloads", ErrMalformedReply))
	}
	if err := s.checkElems(ctx, u.Upserts, -1, "pushed upserts", true); err != nil {
		return nil, s.abort(ctx, err)
	}
	if err := s.checkElems(ctx, u.Deleted, -1, "pushed deletes", true); err != nil {
		return nil, s.abort(ctx, err)
	}

	// The pushed elements are f_eS(h(v)) — the exact key domain of the
	// retained index.  Update the map, then re-decrypt only the affected
	// positions with the retained κ values.
	inserted := 0
	for i, e := range u.Upserts {
		k := st.ky.key(e)
		if _, present := st.extByElem[k]; !present {
			inserted++
		}
		st.extByElem[k] = u.UpsertExt[i]
		if pos, mine := st.posByKey[k]; mine {
			ext, err := s.cfg.Cipher.Decrypt(st.kappas[pos], u.UpsertExt[i])
			if err != nil {
				return nil, s.abort(ctx, fmt.Errorf("core: decrypting pushed ext(v): %w", err))
			}
			if s.counters != nil {
				s.counters.AddPayloadDecrypts(1)
			}
			idx := st.order[pos]
			st.matched[idx] = &JoinMatch{Value: st.vR[idx], Ext: ext}
		}
	}
	for _, e := range u.Deleted {
		k := st.ky.key(e)
		if _, present := st.extByElem[k]; !present {
			return nil, s.abort(ctx, fmt.Errorf("%w: pushed delete not present", ErrMalformedReply))
		}
		delete(st.extByElem, k)
		if pos, mine := st.posByKey[k]; mine {
			st.matched[st.order[pos]] = nil
		}
	}
	st.peerSize += inserted - len(u.Deleted)
	q.version = u.To

	if err := s.send(ctx, wire.SubAck{Version: u.To}); err != nil {
		return nil, err
	}
	if s.lat != nil {
		s.lat.Record(obs.LatDeltaApply, time.Since(start))
	}
	q.res = st.result(q.version)
	return q.res, nil
}

// Close unsubscribes.  Safe to call after the subscription already
// ended.
func (q *StandingJoin) Close(ctx context.Context) error {
	if q.closed {
		return nil
	}
	q.closed = true
	return q.s.send(ctx, wire.SubEnd{Code: wire.SubEndClient})
}

// EquijoinSenderStanding runs party S of the equijoin protocol exactly
// as EquijoinSender does, then serves the peer's standing query with
// one SubUpdate per version step: upserted values ship as
// ⟨f_eS(h(v)), K(κ(v), ext(v))⟩ under the pinned keys, deletes as bare
// f_eS(h(v)).  cfg.DeltaSource must be non-nil.
func EquijoinSenderStanding(ctx context.Context, cfg Config, conn transport.Conn, records []JoinRecord) (*SenderInfo, error) {
	if cfg.Shards > 1 {
		return nil, errStandingSharded
	}
	if cfg.DeltaSource == nil {
		return nil, errors.New("core: standing sender requires a DeltaSource")
	}
	s := newSession(ctx, cfg, conn)
	vS, exts, err := dedupRecords(records)
	if err != nil {
		return nil, err
	}
	info, eS, ePrimeS, outElems, outExts, err := s.equijoinSenderRun(ctx, vS, exts)
	if err != nil {
		return nil, err
	}
	cs, err := commutative.CachedSetFromSorted(eS, outElems, outExts)
	if err != nil {
		return info, fmt.Errorf("core: retaining encrypted set: %w", err)
	}
	return info, s.serveSubscription(ctx, cs, ePrimeS, true)
}
