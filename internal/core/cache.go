package core

import (
	"container/list"
	"context"
	"fmt"
	"math/big"
	"sync"
	"time"

	"minshare/internal/commutative"
	"minshare/internal/obs"
	"minshare/internal/wire"
)

// SetCacheKey identifies one slot of a SenderSetCache.  Every field
// participates in the identity on purpose:
//
//   - PeerHost: the cached state pins a secret exponent, and reusing an
//     exponent across peers would let colluding receivers correlate
//     f_e(h(v)) values they were shown separately.  Keying by peer is
//     what makes the no-reuse guarantee structural (see SenderSetCache).
//     The guarantee is only as strong as the identity filled in here:
//     party.Server uses its authenticated PeerIdentity hook when
//     configured and otherwise the remote host, which aliases distinct
//     parties behind one NAT/proxy (see the party.Server.SetCache
//     caveat).
//   - Table: a server may serve several tables or attributes.
//   - Version: the table's monotonic data version (reldb.Table.Version);
//     any mutation of the private database changes it, so stale
//     precomputation can never be replayed.
//   - Protocol: the protocols precompute different state from the same
//     table (the intersection family dedups, equijoin-size keeps the
//     multiset, the equijoin adds payload ciphertexts), so slots must
//     not alias across protocol roles.
//   - Shard/Shards: a sharded session (Config.Shards > 1) runs one
//     sub-protocol per hash-prefix partition, each under its own fresh
//     exponent; Shard is the partition index and Shards the partition
//     count the key belongs to.  Both participate in the identity so a
//     shard's cached state replays only for the same partition of the
//     same partitioning — re-sharding with a different k re-partitions
//     every value and must miss.  Unsharded sessions leave both zero,
//     preserving every pre-shard cache identity byte for byte.
type SetCacheKey struct {
	PeerHost string
	Table    string
	Version  uint64
	Protocol wire.Protocol
	Shard    uint8
	Shards   uint8
}

// CacheEntry is the sender-side state a protocol run can replay: the
// own set encrypted under a pinned key, sorted (with, for the equijoin,
// the aligned payload ciphertexts), plus the equijoin's second key.
type CacheEntry struct {
	// Set is the encrypted, sorted own set; for the equijoin its
	// payload carries the K(κ(v), ext(v)) ciphertexts in the same
	// permuted order.
	Set *commutative.CachedSet
	// ExtKey is the equijoin sender's second exponent e'_S, still
	// needed on a warm run to answer the pair-encryption phase; nil for
	// the other protocols.
	ExtKey *commutative.Key
}

// memoryBytes is the entry's accounting size for the cache bound.
func (e *CacheEntry) memoryBytes() int64 {
	if e == nil || e.Set == nil {
		return 0
	}
	m := e.Set.MemoryBytes()
	if e.ExtKey != nil {
		m += 64 // exponent plus header, same order as the set's key
	}
	return m
}

// SenderSetCache amortizes the bulk-exponentiation phase of sender-side
// protocol runs across a series of queries: each slot holds one
// CacheEntry under a SetCacheKey, bounded in memory with
// least-recently-used eviction, and Rotate flushes everything at once
// for explicit key rotation.
//
// Exponent-reuse guarantee: a cached exponent is only ever replayed for
// the exact SetCacheKey it was created under, and the key names the
// peer identity.  Two different peers therefore never see values
// encrypted under the same exponent — the cache narrows each exponent's
// lifetime from "one session" to "one (peer, table, version, protocol)
// series", it never widens it.  Rotation (Rotate, or cmd/psiserver's
// -cache-rotate interval) bounds that lifetime in time as well.  The
// guarantee presumes the key's PeerHost really distinguishes peers:
// with an unauthenticated remote-address identity, parties sharing a
// NAT or proxy alias into one slot, so such deployments must supply an
// authenticated identity (party.Server.PeerIdentity) or leave the
// cache disabled, as it is by default.
//
// The zero value is not usable; call NewSenderSetCache.  All methods
// are safe for concurrent use.
type SenderSetCache struct {
	mu       sync.Mutex
	maxBytes int64
	bytes    int64
	ll       *list.List // front = most recently used
	slots    map[SetCacheKey]*list.Element
	stats    *obs.CacheStats
}

// lruItem is what the LRU list elements hold.  size is the entry's
// accounting size at admission time: removal must subtract exactly what
// admission added, so the size is captured once rather than recomputed.
// (Recomputing at removal — as an earlier version did — let any entry
// whose memoryBytes changed while cached, e.g. by an ExtKey attached
// after Put, unbalance the byte budget on every Rotate/eviction until
// the bound drifted useless.)
type lruItem struct {
	key   SetCacheKey
	entry *CacheEntry
	size  int64
}

// NewSenderSetCache returns a cache bounded to roughly maxBytes of
// precomputed state (maxBytes <= 0 means unbounded).  stats, when
// non-nil, receives the hit/miss/eviction/rotation census — psiserver
// passes its obs registry's Cache() so the counters surface on
// /metrics.
func NewSenderSetCache(maxBytes int64, stats *obs.CacheStats) *SenderSetCache {
	return &SenderSetCache{
		maxBytes: maxBytes,
		ll:       list.New(),
		slots:    make(map[SetCacheKey]*list.Element),
		stats:    stats,
	}
}

// Lookup returns the entry cached under k, marking it most recently
// used, or (nil, false) on a miss.  Hit/miss counters are recorded.
func (c *SenderSetCache) Lookup(k SetCacheKey) (*CacheEntry, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.slots[k]
	if !ok {
		c.stats.AddMiss()
		return nil, false
	}
	c.ll.MoveToFront(el)
	c.stats.AddHit()
	return el.Value.(*lruItem).entry, true
}

// LookupStale returns an entry cached for the same slot — peer, table,
// protocol, shard — at a *different* data version, together with that
// version, or (nil, 0, false) when none exists.  It is the entry point
// of the delta-upgrade path: a stale entry is normally unreachable
// garbage awaiting displacement, but with a DeltaSource it is raw
// material — the pinned key and sorted ciphertexts only need the churn
// re-encrypted.  LookupStale records neither a hit nor a miss (the
// preceding Lookup already counted the miss) and does not touch LRU
// order; the upgrade's Put re-admits the slot at the front.
func (c *SenderSetCache) LookupStale(k SetCacheKey) (*CacheEntry, uint64, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for el := c.ll.Front(); el != nil; el = el.Next() {
		ik := el.Value.(*lruItem).key
		if ik.PeerHost == k.PeerHost && ik.Table == k.Table && ik.Protocol == k.Protocol &&
			ik.Shard == k.Shard && ik.Shards == k.Shards && ik.Version != k.Version {
			return el.Value.(*lruItem).entry, ik.Version, true
		}
	}
	return nil, 0, false
}

// Put stores entry under k, displacing any previous entry for the same
// key and — because a version bump makes the old state permanently
// unreachable — any entry for the same (peer, table, protocol) at a
// different version.  It then evicts least-recently-used entries until
// the cache fits its memory bound.  An entry larger than the whole
// bound is not cached at all.
func (c *SenderSetCache) Put(k SetCacheKey, entry *CacheEntry) {
	size := entry.memoryBytes()
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.slots[k]; ok {
		c.removeLocked(el, true)
	}
	// Drop superseded versions of the same slot: they can never be
	// looked up again, so letting them age out of the LRU would only
	// waste the memory budget.
	for el := c.ll.Front(); el != nil; {
		next := el.Next()
		ik := el.Value.(*lruItem).key
		if ik.PeerHost == k.PeerHost && ik.Table == k.Table && ik.Protocol == k.Protocol && ik.Version != k.Version {
			c.removeLocked(el, true)
		}
		el = next
	}
	if c.maxBytes > 0 && size > c.maxBytes {
		return
	}
	el := c.ll.PushFront(&lruItem{key: k, entry: entry, size: size})
	c.slots[k] = el
	c.bytes += size
	for c.maxBytes > 0 && c.bytes > c.maxBytes {
		c.removeLocked(c.ll.Back(), true)
	}
}

// Rotate invalidates every entry at once: the explicit key-rotation
// path.  Every pinned exponent is discarded; the next session per slot
// will draw a fresh key and repopulate.
func (c *SenderSetCache) Rotate() {
	c.mu.Lock()
	defer c.mu.Unlock()
	n := int64(c.ll.Len())
	for el := c.ll.Front(); el != nil; {
		next := el.Next()
		c.removeLocked(el, false)
		el = next
	}
	c.stats.AddRotation(n)
}

// Len reports the number of cached entries.
func (c *SenderSetCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// MemoryBytes reports the current accounting size of the cached state.
func (c *SenderSetCache) MemoryBytes() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.bytes
}

// removeLocked unlinks one element; countEviction selects whether it
// shows up in the eviction census (rotation accounts for its removals
// itself).
func (c *SenderSetCache) removeLocked(el *list.Element, countEviction bool) {
	item := el.Value.(*lruItem)
	c.ll.Remove(el)
	delete(c.slots, item.key)
	c.bytes -= item.size
	if countEviction {
		c.stats.AddEviction()
	}
}

// cacheLookup consults the configured cache for this run's slot.
func (s *session) cacheLookup() (*CacheEntry, bool) {
	if s.cfg.SetCache == nil {
		return nil, false
	}
	return s.cfg.SetCache.Lookup(s.cfg.CacheKey)
}

// cachePut populates this run's slot after a miss.
func (s *session) cachePut(entry *CacheEntry) {
	if s.cfg.SetCache != nil {
		s.cfg.SetCache.Put(s.cfg.CacheKey, entry)
	}
}

// ownEncryptedSet is the sender-side precomputation phase shared by the
// intersection, intersection-size and equijoin-size protocols: hash the
// own values, draw a fresh key, bulk-encrypt, and reorder
// lexicographically — or, on a cache hit, replay all of it (key
// included) from an earlier run against the same peer.  A miss
// populates the slot, so the work is paid once per
// (peer, table, version, protocol) series rather than once per session.
// The returned vector is shared with the cache on the hit path; callers
// must not mutate it.
func (s *session) ownEncryptedSet(ctx context.Context, vs [][]byte) (*commutative.Key, []*big.Int, error) {
	var start time.Time
	if s.lat != nil {
		start = time.Now()
	}
	if ent, ok := s.cacheLookup(); ok {
		if s.lat != nil {
			s.lat.Record(obs.LatCacheHit, time.Since(start))
		}
		return ent.Set.Key(), ent.Set.Elems(), nil
	}
	// A stale entry for this slot plus a delta source turns the miss
	// into an upgrade: re-encrypt only the churn under the pinned key.
	if ent, ok := s.upgradeCachedEntry(ctx, len(vs), false); ok {
		return ent.Set.Key(), ent.Set.Elems(), nil
	}
	sp := obs.StartSpan(ctx, "hash-to-group")
	xs, err := s.hashSet(vs)
	sp.End()
	if err != nil {
		return nil, nil, s.abort(ctx, err)
	}
	k, err := s.cfg.Scheme.GenerateKey(s.cfg.Rand)
	if err != nil {
		return nil, nil, s.abort(ctx, fmt.Errorf("core: generating e_S: %w", err))
	}
	sp = obs.StartSpan(ctx, "bulk-encrypt")
	ys, err := s.encryptSet(ctx, k, xs)
	sp.End()
	if err != nil {
		return nil, nil, s.abort(ctx, err)
	}
	sorted := sortedCopy(ys)
	if s.cfg.SetCache != nil {
		if cs, err := commutative.CachedSetFromSorted(k, sorted, nil); err == nil {
			s.cachePut(&CacheEntry{Set: cs})
		}
	}
	if s.lat != nil {
		s.lat.Record(obs.LatCacheMiss, time.Since(start))
	}
	return k, sorted, nil
}
