package core

import (
	"context"
	"sync"
	"testing"

	"minshare/internal/costmodel"
	"minshare/internal/group"
	"minshare/internal/kenc"
	"minshare/internal/obs"
	"minshare/internal/transport"
	"minshare/internal/wire"
)

// These tests are the observability tentpole's headline check: they run
// each protocol over an in-memory pipe with both endpoints instrumented
// through obs sessions, and assert that the *observed* counters — modular
// exponentiations, frames, payload and on-wire bytes — equal the paper's
// Section 6.1 closed forms as encoded in internal/costmodel.  Exact
// equality, not approximation: the fixed-width codec makes every byte
// accountable.

// runObservedPair runs a receiver/sender pair over a pipe with each
// endpoint attached to its own obs session in reg, and returns the two
// session snapshots.
func runObservedPair[R, S any](
	t *testing.T,
	reg *obs.Registry,
	protocol string,
	recvFn func(ctx context.Context, conn transport.Conn) (R, error),
	sendFn func(ctx context.Context, conn transport.Conn) (S, error),
) (recvSnap, sendSnap obs.SessionSnapshot) {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	connR, connS := transport.Pipe()
	defer connR.Close()

	sessR := reg.StartSession(obs.SessionInfo{Protocol: protocol, Role: "receiver"})
	sessS := reg.StartSession(obs.SessionInfo{Protocol: protocol, Role: "sender"})

	type sendOut struct {
		snap obs.SessionSnapshot
		err  error
	}
	ch := make(chan sendOut, 1)
	go func() {
		_, err := sendFn(obs.WithSession(ctx, sessS), connS)
		ch <- sendOut{sessS.End(err), err}
	}()
	_, rErr := recvFn(obs.WithSession(ctx, sessR), connR)
	recvSnap = sessR.End(rErr)
	sOut := <-ch
	if rErr != nil {
		t.Fatalf("receiver: %v", rErr)
	}
	if sOut.err != nil {
		t.Fatalf("sender: %v", sOut.err)
	}
	return recvSnap, sOut.snap
}

// checkWireCost asserts that R's observed frame/byte counters equal the
// census and that S's are the mirror image.
func checkWireCost(t *testing.T, want costmodel.WireCost, r, s obs.CounterSnapshot) {
	t.Helper()
	if r.FramesSent != want.FramesSent || r.FramesRecv != want.FramesRecv {
		t.Errorf("R frames = %d sent / %d recv, want %d / %d",
			r.FramesSent, r.FramesRecv, want.FramesSent, want.FramesRecv)
	}
	if r.PayloadBytesSent != want.PayloadBytesSent {
		t.Errorf("R payload sent = %d, want %d", r.PayloadBytesSent, want.PayloadBytesSent)
	}
	if r.PayloadBytesRecv != want.PayloadBytesRecv {
		t.Errorf("R payload recv = %d, want %d", r.PayloadBytesRecv, want.PayloadBytesRecv)
	}
	if r.WireBytesSent != want.WireBytesSent() {
		t.Errorf("R wire sent = %d, want %d", r.WireBytesSent, want.WireBytesSent())
	}
	if r.WireBytesRecv != want.WireBytesRecv() {
		t.Errorf("R wire recv = %d, want %d", r.WireBytesRecv, want.WireBytesRecv())
	}
	// The sender's counters are the same exchange seen from the other
	// endpoint.
	if s.FramesSent != want.FramesRecv || s.FramesRecv != want.FramesSent {
		t.Errorf("S frames = %d sent / %d recv, want mirror %d / %d",
			s.FramesSent, s.FramesRecv, want.FramesRecv, want.FramesSent)
	}
	if s.PayloadBytesSent != want.PayloadBytesRecv || s.PayloadBytesRecv != want.PayloadBytesSent {
		t.Errorf("S payload = %d sent / %d recv, want mirror %d / %d",
			s.PayloadBytesSent, s.PayloadBytesRecv, want.PayloadBytesRecv, want.PayloadBytesSent)
	}
	if s.WireBytesSent != want.WireBytesRecv() || s.WireBytesRecv != want.WireBytesSent() {
		t.Errorf("S wire = %d sent / %d recv, want mirror %d / %d",
			s.WireBytesSent, s.WireBytesRecv, want.WireBytesRecv(), want.WireBytesSent())
	}
}

func TestCostModelCrossCheckIntersection(t *testing.T) {
	const nR, nS, shared = 7, 5, 3
	vR, vS := overlapping(nR, nS, shared)
	reg := obs.NewRegistry()

	r, s := runObservedPair(t, reg, "intersection",
		func(ctx context.Context, conn transport.Conn) (*IntersectionResult, error) {
			return IntersectionReceiver(ctx, testConfig(1), conn, vR)
		},
		func(ctx context.Context, conn transport.Conn) (*SenderInfo, error) {
			return IntersectionSender(ctx, testConfig(2), conn, vS)
		})

	// Computation: 2(|V_S|+|V_R|) modular exponentiations across both
	// parties (Section 6.1).
	ops := costmodel.IntersectionOps(nS, nR)
	if got := r.Counters.ModExps() + s.Counters.ModExps(); got != ops.Ce {
		t.Errorf("observed modexps = %d, want Ce = %d", got, ops.Ce)
	}

	// Communication: exact byte census, both payload and on-wire.
	elemLen := group.TestGroup().ElementLen()
	want := costmodel.IntersectionWireCost(nS, nR, elemLen)
	checkWireCost(t, want, r.Counters, s.Counters)

	// Stripping the fixed envelope from the observed payload recovers the
	// paper's (|V_S|+2|V_R|)·k bit formula exactly.  Three element vectors
	// cross the wire: Y_R, Y_S, and the re-encryptions of Y_R.
	observed := costmodel.WireCost{
		FramesSent: r.Counters.FramesSent, FramesRecv: r.Counters.FramesRecv,
		PayloadBytesSent: r.Counters.PayloadBytesSent, PayloadBytesRecv: r.Counters.PayloadBytesRecv,
	}
	k := 8 * elemLen
	if gotBits := 8 * observed.ElementPayloadBytes(3, 0); float64(gotBits) != costmodel.IntersectionCommBits(nS, nR, k) {
		t.Errorf("observed codeword bits = %d, want %v", gotBits, costmodel.IntersectionCommBits(nS, nR, k))
	}

	// Each party draws exactly one commutative key.
	if r.Counters.KeyGens != 1 || s.Counters.KeyGens != 1 {
		t.Errorf("keygens = %d/%d, want 1/1", r.Counters.KeyGens, s.Counters.KeyGens)
	}
}

func TestCostModelCrossCheckIntersectionSize(t *testing.T) {
	const nR, nS, shared = 6, 4, 2
	vR, vS := overlapping(nR, nS, shared)
	reg := obs.NewRegistry()

	r, s := runObservedPair(t, reg, "intersection-size",
		func(ctx context.Context, conn transport.Conn) (*SizeResult, error) {
			return IntersectionSizeReceiver(ctx, testConfig(1), conn, vR)
		},
		func(ctx context.Context, conn transport.Conn) (*SenderInfo, error) {
			return IntersectionSizeSender(ctx, testConfig(2), conn, vS)
		})

	ops := costmodel.IntersectionSizeOps(nS, nR)
	if got := r.Counters.ModExps() + s.Counters.ModExps(); got != ops.Ce {
		t.Errorf("observed modexps = %d, want Ce = %d", got, ops.Ce)
	}
	elemLen := group.TestGroup().ElementLen()
	checkWireCost(t, costmodel.IntersectionSizeWireCost(nS, nR, elemLen), r.Counters, s.Counters)
}

func TestCostModelCrossCheckJoinSize(t *testing.T) {
	// Multisets: mR rows over nR distinct values, likewise for S.  The
	// census runs on row counts, not distinct counts (Section 5.2).
	vR := [][]byte{[]byte("a"), []byte("a"), []byte("b"), []byte("c"), []byte("c")}
	vS := [][]byte{[]byte("a"), []byte("c"), []byte("c"), []byte("d")}
	mR, mS := len(vR), len(vS)
	reg := obs.NewRegistry()

	r, s := runObservedPair(t, reg, "equijoin-size",
		func(ctx context.Context, conn transport.Conn) (*JoinSizeResult, error) {
			return EquijoinSizeReceiver(ctx, testConfig(1), conn, vR)
		},
		func(ctx context.Context, conn transport.Conn) (*JoinSizeSenderInfo, error) {
			return EquijoinSizeSender(ctx, testConfig(2), conn, vS)
		})

	// Same complexity as the intersection protocol, on multiset sizes.
	ops := costmodel.IntersectionSizeOps(mS, mR)
	if got := r.Counters.ModExps() + s.Counters.ModExps(); got != ops.Ce {
		t.Errorf("observed modexps = %d, want Ce = %d", got, ops.Ce)
	}
	elemLen := group.TestGroup().ElementLen()
	checkWireCost(t, costmodel.JoinSizeWireCost(mS, mR, elemLen), r.Counters, s.Counters)
}

func TestCostModelCrossCheckEquijoin(t *testing.T) {
	const nR, nS, shared = 6, 4, 2
	const extPlainLen = 24 // uniform ext(v) length so k' is a single constant
	vR, vS := overlapping(nR, nS, shared)
	records := make([]JoinRecord, len(vS))
	for i, v := range vS {
		ext := make([]byte, extPlainLen)
		copy(ext, "ext for ")
		copy(ext[8:], v)
		records[i] = JoinRecord{Value: v, Ext: ext}
	}
	reg := obs.NewRegistry()

	r, s := runObservedPair(t, reg, "equijoin",
		func(ctx context.Context, conn transport.Conn) (*JoinResult, error) {
			return EquijoinReceiver(ctx, testConfig(1), conn, vR)
		},
		func(ctx context.Context, conn transport.Conn) (*SenderInfo, error) {
			return EquijoinSender(ctx, testConfig(2), conn, records)
		})

	// Computation: 2|V_S| + 5|V_R| modular exponentiations (Section 6.1).
	ops := costmodel.JoinOps(nS, nR, shared)
	if got := r.Counters.ModExps() + s.Counters.ModExps(); got != ops.Ce {
		t.Errorf("observed modexps = %d, want Ce = %d", got, ops.Ce)
	}
	// Payload-cipher operations: S encrypts |V_S| ext payloads, R decrypts
	// one per intersection member — the CK(|V_S| + |V_S∩V_R|) term.
	if got := int64(s.Counters.PayloadEncrypts + r.Counters.PayloadDecrypts); got != ops.CK {
		t.Errorf("observed K operations = %d, want CK = %d", got, ops.CK)
	}

	// Communication: the ext ciphertext width k' is a property of the
	// configured cipher; measure it rather than hard-coding.
	g := group.TestGroup()
	elemLen := g.ElementLen()
	extLen := kenc.NewHybrid(g).CiphertextLen(extPlainLen)
	if extLen < 0 {
		t.Fatalf("cipher rejects %d-byte payloads", extPlainLen)
	}
	want := costmodel.JoinWireCost(nS, nR, elemLen, extLen)
	checkWireCost(t, want, r.Counters, s.Counters)

	// Codeword bits: (|V_S|+3|V_R|)·k + |V_S|·k'.  Three counted vectors
	// (Y_R, the pairs, the ext pairs) and |V_S| ext length prefixes.
	observed := costmodel.WireCost{
		FramesSent: r.Counters.FramesSent, FramesRecv: r.Counters.FramesRecv,
		PayloadBytesSent: r.Counters.PayloadBytesSent, PayloadBytesRecv: r.Counters.PayloadBytesRecv,
	}
	k, kPrime := 8*elemLen, 8*extLen
	if gotBits := 8 * observed.ElementPayloadBytes(3, nS); float64(gotBits) != costmodel.JoinCommBits(nS, nR, k, kPrime) {
		t.Errorf("observed codeword bits = %d, want %v", gotBits, costmodel.JoinCommBits(nS, nR, k, kPrime))
	}

	// R draws one key, S draws two (e_S and e'_S).
	if r.Counters.KeyGens != 1 || s.Counters.KeyGens != 2 {
		t.Errorf("keygens = %d/%d, want 1/2", r.Counters.KeyGens, s.Counters.KeyGens)
	}
}

// Per-backend cross-checks: the Section 6.1 censuses are symbolic in
// the group, so they must certify unchanged over the curve backend —
// one C_e is one scalar multiplication there, one codeword is one
// 32-byte point, and the only envelope difference is the single
// backend-code byte each handshake header grows by.

func TestCostModelCrossCheckIntersectionEC25519(t *testing.T) {
	const nR, nS, shared = 7, 5, 3
	vR, vS := overlapping(nR, nS, shared)
	reg := obs.NewRegistry()

	r, s := runObservedPair(t, reg, "intersection",
		func(ctx context.Context, conn transport.Conn) (*IntersectionResult, error) {
			return IntersectionReceiver(ctx, ecConfig(1), conn, vR)
		},
		func(ctx context.Context, conn transport.Conn) (*SenderInfo, error) {
			return IntersectionSender(ctx, ecConfig(2), conn, vS)
		})

	// Computation: same 2(|V_S|+|V_R|) C_e census, now counting scalar
	// multiplications.
	ops := costmodel.IntersectionOps(nS, nR)
	if got := r.Counters.ModExps() + s.Counters.ModExps(); got != ops.Ce {
		t.Errorf("observed scalar mults = %d, want Ce = %d", got, ops.Ce)
	}

	// Communication: byte-exact census with k = 256 and the one-byte
	// header extension.
	ec := group.EC25519()
	hdrLen := wire.HeaderLen(ec.Code())
	want := costmodel.IntersectionWireCost(nS, nR, ec.ElementLen()).WithHeaderLen(hdrLen)
	checkWireCost(t, want, r.Counters, s.Counters)

	// Stripping the (extended) envelope still recovers (|V_S|+2|V_R|)·k
	// exactly.
	observed := costmodel.WireCost{
		FramesSent: r.Counters.FramesSent, FramesRecv: r.Counters.FramesRecv,
		PayloadBytesSent: r.Counters.PayloadBytesSent, PayloadBytesRecv: r.Counters.PayloadBytesRecv,
	}
	extra := hdrLen - wire.EncodedHeaderLen
	k := 8 * ec.ElementLen()
	if gotBits := 8 * (observed.ElementPayloadBytes(3, 0) - 2*extra); float64(gotBits) != costmodel.IntersectionCommBits(nS, nR, k) {
		t.Errorf("observed codeword bits = %d, want %v", gotBits, costmodel.IntersectionCommBits(nS, nR, k))
	}
	if r.Counters.KeyGens != 1 || s.Counters.KeyGens != 1 {
		t.Errorf("keygens = %d/%d, want 1/1", r.Counters.KeyGens, s.Counters.KeyGens)
	}
}

func TestCostModelCrossCheckEquijoinEC25519(t *testing.T) {
	const nR, nS, shared = 6, 4, 2
	const extPlainLen = 24
	vR, vS := overlapping(nR, nS, shared)
	records := make([]JoinRecord, len(vS))
	for i, v := range vS {
		ext := make([]byte, extPlainLen)
		copy(ext, "ext for ")
		copy(ext[8:], v)
		records[i] = JoinRecord{Value: v, Ext: ext}
	}
	reg := obs.NewRegistry()

	r, s := runObservedPair(t, reg, "equijoin",
		func(ctx context.Context, conn transport.Conn) (*JoinResult, error) {
			return EquijoinReceiver(ctx, ecConfig(1), conn, vR)
		},
		func(ctx context.Context, conn transport.Conn) (*SenderInfo, error) {
			return EquijoinSender(ctx, ecConfig(2), conn, records)
		})

	ops := costmodel.JoinOps(nS, nR, shared)
	if got := r.Counters.ModExps() + s.Counters.ModExps(); got != ops.Ce {
		t.Errorf("observed scalar mults = %d, want Ce = %d", got, ops.Ce)
	}
	if got := int64(s.Counters.PayloadEncrypts + r.Counters.PayloadDecrypts); got != ops.CK {
		t.Errorf("observed K operations = %d, want CK = %d", got, ops.CK)
	}

	ec := group.EC25519()
	extLen := kenc.NewHybrid(ec).CiphertextLen(extPlainLen)
	if extLen < 0 {
		t.Fatalf("cipher rejects %d-byte payloads", extPlainLen)
	}
	want := costmodel.JoinWireCost(nS, nR, ec.ElementLen(), extLen).WithHeaderLen(wire.HeaderLen(ec.Code()))
	checkWireCost(t, want, r.Counters, s.Counters)
}

// Chunked cross-checks: the same closed-form certification with both
// parties streaming (ChunkSize > 0).  The Section 6.1 codeword bits must
// be byte-for-byte unchanged — streaming only re-frames the envelope —
// and the frame counts must equal 1 header + (⌈n/c⌉ + 2) frames per
// streamed vector, exactly.

func TestCostModelCrossCheckIntersectionChunked(t *testing.T) {
	const nR, nS, shared, chunk = 7, 5, 3, 3
	vR, vS := overlapping(nR, nS, shared)
	reg := obs.NewRegistry()

	cfgR, cfgS := testConfig(1), testConfig(2)
	cfgR.ChunkSize, cfgS.ChunkSize = chunk, chunk
	r, s := runObservedPair(t, reg, "intersection",
		func(ctx context.Context, conn transport.Conn) (*IntersectionResult, error) {
			return IntersectionReceiver(ctx, cfgR, conn, vR)
		},
		func(ctx context.Context, conn transport.Conn) (*SenderInfo, error) {
			return IntersectionSender(ctx, cfgS, conn, vS)
		})

	// Computation is untouched by streaming: same Ce.
	ops := costmodel.IntersectionOps(nS, nR)
	if got := r.Counters.ModExps() + s.Counters.ModExps(); got != ops.Ce {
		t.Errorf("observed modexps = %d, want Ce = %d", got, ops.Ce)
	}

	elemLen := group.TestGroup().ElementLen()
	want := costmodel.IntersectionWireCostChunked(nS, nR, elemLen, chunk)
	checkWireCost(t, want, r.Counters, s.Counters)

	// The envelope is exactly ⌈n/c⌉ chunk frames per vector: R ships Y_R
	// in ⌈7/3⌉ = 3 chunks, and receives Y_S in ⌈5/3⌉ = 2 plus the aligned
	// reply in 3.
	qR, qS := costmodel.StreamChunks(nR, chunk), costmodel.StreamChunks(nS, chunk)
	if qR != 3 || qS != 2 {
		t.Fatalf("StreamChunks = %d/%d, want 3/2", qR, qS)
	}
	if r.Counters.FramesSent != 1+(qR+2) || r.Counters.FramesRecv != 1+(qS+2)+(qR+2) {
		t.Errorf("R frames = %d sent / %d recv, want %d / %d",
			r.Counters.FramesSent, r.Counters.FramesRecv, 1+(qR+2), 1+(qS+2)+(qR+2))
	}

	// Stripping the streamed envelope recovers the identical
	// (|V_S|+2|V_R|)·k codeword bits: streaming moves no extra element
	// bytes.  Three streamed vectors, qS + 2·qR chunk frames.
	observed := costmodel.WireCost{
		FramesSent: r.Counters.FramesSent, FramesRecv: r.Counters.FramesRecv,
		PayloadBytesSent: r.Counters.PayloadBytesSent, PayloadBytesRecv: r.Counters.PayloadBytesRecv,
	}
	k := 8 * elemLen
	if gotBits := 8 * observed.StreamedElementPayloadBytes(3, qS+2*qR, 0); float64(gotBits) != costmodel.IntersectionCommBits(nS, nR, k) {
		t.Errorf("observed codeword bits = %d, want %v", gotBits, costmodel.IntersectionCommBits(nS, nR, k))
	}
	legacy := costmodel.IntersectionWireCost(nS, nR, elemLen)
	if got, lg := observed.StreamedElementPayloadBytes(3, qS+2*qR, 0), legacy.ElementPayloadBytes(3, 0); got != lg {
		t.Errorf("streamed codeword bytes = %d, legacy = %d; must be identical", got, lg)
	}
}

func TestCostModelCrossCheckIntersectionSizeChunked(t *testing.T) {
	const nR, nS, shared, chunk = 6, 4, 2, 3
	vR, vS := overlapping(nR, nS, shared)
	reg := obs.NewRegistry()

	cfgR, cfgS := testConfig(1), testConfig(2)
	cfgR.ChunkSize, cfgS.ChunkSize = chunk, chunk
	r, s := runObservedPair(t, reg, "intersection-size",
		func(ctx context.Context, conn transport.Conn) (*SizeResult, error) {
			return IntersectionSizeReceiver(ctx, cfgR, conn, vR)
		},
		func(ctx context.Context, conn transport.Conn) (*SenderInfo, error) {
			return IntersectionSizeSender(ctx, cfgS, conn, vS)
		})

	ops := costmodel.IntersectionSizeOps(nS, nR)
	if got := r.Counters.ModExps() + s.Counters.ModExps(); got != ops.Ce {
		t.Errorf("observed modexps = %d, want Ce = %d", got, ops.Ce)
	}
	elemLen := group.TestGroup().ElementLen()
	checkWireCost(t, costmodel.IntersectionSizeWireCostChunked(nS, nR, elemLen, chunk), r.Counters, s.Counters)
}

func TestCostModelCrossCheckJoinSizeChunked(t *testing.T) {
	const chunk = 3
	vR := [][]byte{[]byte("a"), []byte("a"), []byte("b"), []byte("c"), []byte("c")}
	vS := [][]byte{[]byte("a"), []byte("c"), []byte("c"), []byte("d")}
	mR, mS := len(vR), len(vS)
	reg := obs.NewRegistry()

	cfgR, cfgS := testConfig(1), testConfig(2)
	cfgR.ChunkSize, cfgS.ChunkSize = chunk, chunk
	r, s := runObservedPair(t, reg, "equijoin-size",
		func(ctx context.Context, conn transport.Conn) (*JoinSizeResult, error) {
			return EquijoinSizeReceiver(ctx, cfgR, conn, vR)
		},
		func(ctx context.Context, conn transport.Conn) (*JoinSizeSenderInfo, error) {
			return EquijoinSizeSender(ctx, cfgS, conn, vS)
		})

	ops := costmodel.IntersectionSizeOps(mS, mR)
	if got := r.Counters.ModExps() + s.Counters.ModExps(); got != ops.Ce {
		t.Errorf("observed modexps = %d, want Ce = %d", got, ops.Ce)
	}
	elemLen := group.TestGroup().ElementLen()
	checkWireCost(t, costmodel.JoinSizeWireCostChunked(mS, mR, elemLen, chunk), r.Counters, s.Counters)
}

func TestCostModelCrossCheckEquijoinChunked(t *testing.T) {
	const nR, nS, shared, chunk = 6, 4, 2, 3
	const extPlainLen = 24
	vR, vS := overlapping(nR, nS, shared)
	records := make([]JoinRecord, len(vS))
	for i, v := range vS {
		ext := make([]byte, extPlainLen)
		copy(ext, "ext for ")
		copy(ext[8:], v)
		records[i] = JoinRecord{Value: v, Ext: ext}
	}
	reg := obs.NewRegistry()

	cfgR, cfgS := testConfig(1), testConfig(2)
	cfgR.ChunkSize, cfgS.ChunkSize = chunk, chunk
	r, s := runObservedPair(t, reg, "equijoin",
		func(ctx context.Context, conn transport.Conn) (*JoinResult, error) {
			return EquijoinReceiver(ctx, cfgR, conn, vR)
		},
		func(ctx context.Context, conn transport.Conn) (*SenderInfo, error) {
			return EquijoinSender(ctx, cfgS, conn, records)
		})

	ops := costmodel.JoinOps(nS, nR, shared)
	if got := r.Counters.ModExps() + s.Counters.ModExps(); got != ops.Ce {
		t.Errorf("observed modexps = %d, want Ce = %d", got, ops.Ce)
	}
	if got := int64(s.Counters.PayloadEncrypts + r.Counters.PayloadDecrypts); got != ops.CK {
		t.Errorf("observed K operations = %d, want CK = %d", got, ops.CK)
	}

	g := group.TestGroup()
	elemLen := g.ElementLen()
	extLen := kenc.NewHybrid(g).CiphertextLen(extPlainLen)
	if extLen < 0 {
		t.Fatalf("cipher rejects %d-byte payloads", extPlainLen)
	}
	want := costmodel.JoinWireCostChunked(nS, nR, elemLen, extLen, chunk)
	checkWireCost(t, want, r.Counters, s.Counters)

	// Codeword bits unchanged: (|V_S|+3|V_R|)·k + |V_S|·k'.  Three
	// streamed vectors (Y_R in qR chunks, the pair reply mirroring those
	// qR boundaries, the ext pairs in qS chunks), |V_S| length prefixes.
	qR, qS := costmodel.StreamChunks(nR, chunk), costmodel.StreamChunks(nS, chunk)
	if r.Counters.FramesRecv != 1+(qR+2)+(qS+2) {
		t.Errorf("R frames recv = %d, want %d", r.Counters.FramesRecv, 1+(qR+2)+(qS+2))
	}
	observed := costmodel.WireCost{
		FramesSent: r.Counters.FramesSent, FramesRecv: r.Counters.FramesRecv,
		PayloadBytesSent: r.Counters.PayloadBytesSent, PayloadBytesRecv: r.Counters.PayloadBytesRecv,
	}
	k, kPrime := 8*elemLen, 8*extLen
	if gotBits := 8 * observed.StreamedElementPayloadBytes(3, 2*qR+qS, nS); float64(gotBits) != costmodel.JoinCommBits(nS, nR, k, kPrime) {
		t.Errorf("observed codeword bits = %d, want %v", gotBits, costmodel.JoinCommBits(nS, nR, k, kPrime))
	}
}

// TestObservedCountersConcurrent runs several instrumented protocol pairs
// in parallel against one registry and checks that the per-session and
// process-global aggregates stay exact under contention.  Run with -race
// this also exercises every counter and span path for data races.
func TestObservedCountersConcurrent(t *testing.T) {
	const runs = 4
	const nR, nS, shared = 5, 4, 2
	reg := obs.NewRegistry()
	perRun := costmodel.IntersectionOps(nS, nR).Ce

	var wg sync.WaitGroup
	for i := 0; i < runs; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			vR, vS := overlapping(nR, nS, shared)
			cfg := Config{Group: group.TestGroup(), Parallelism: 4} // crypto/rand, real worker pool
			ctx := context.Background()
			connR, connS := transport.Pipe()
			defer connR.Close()
			sessR := reg.StartSession(obs.SessionInfo{Protocol: "intersection", Role: "receiver"})
			sessS := reg.StartSession(obs.SessionInfo{Protocol: "intersection", Role: "sender"})
			type sendOut struct {
				snap obs.SessionSnapshot
				err  error
			}
			ch := make(chan sendOut, 1)
			go func() {
				_, err := IntersectionSender(obs.WithSession(ctx, sessS), cfg, connS, vS)
				ch <- sendOut{sessS.End(err), err}
			}()
			_, rErr := IntersectionReceiver(obs.WithSession(ctx, sessR), cfg, connR, vR)
			r := sessR.End(rErr)
			s := <-ch
			if rErr != nil || s.err != nil {
				t.Errorf("run %d: receiver err %v, sender err %v", i, rErr, s.err)
				return
			}
			if got := r.Counters.ModExps() + s.snap.Counters.ModExps(); got != perRun {
				t.Errorf("run %d: modexps = %d, want %d", i, got, perRun)
			}
		}(i)
	}
	wg.Wait()

	global := reg.Global().Snapshot()
	if got := global.ModExps(); got != runs*perRun {
		t.Errorf("global modexps = %d, want %d", got, runs*perRun)
	}
	snap := reg.Snapshot()
	if snap.SessionsFinished != 2*runs || snap.SessionsActive != 0 || snap.SessionsFailed != 0 {
		t.Errorf("registry sessions = %d finished / %d active / %d failed, want %d/0/0",
			snap.SessionsFinished, snap.SessionsActive, snap.SessionsFailed, 2*runs)
	}
}
