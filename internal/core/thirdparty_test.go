package core

import (
	"context"
	"testing"

	"minshare/internal/transport"
)

// runThirdParty wires up the three-party topology of Figure 2 over
// in-memory pipes and runs A, B and the analyst T concurrently.
func runThirdParty(t *testing.T, vA, vB [][]byte) (*ThirdPartySizeResult, *ThirdPartyPeerInfo, *ThirdPartyPeerInfo) {
	t.Helper()
	ctx := context.Background()

	abA, abB := transport.Pipe() // A <-> B
	atA, atT := transport.Pipe() // A <-> T
	btB, btT := transport.Pipe() // B <-> T
	defer abA.Close()
	defer atA.Close()
	defer btB.Close()

	cfgA, cfgB, cfgT := testConfig(1), testConfig(2), testConfig(3)

	type aOut struct {
		info *ThirdPartyPeerInfo
		err  error
	}
	chA := make(chan aOut, 1)
	chB := make(chan aOut, 1)
	go func() {
		info, err := ThirdPartyPartyA(ctx, cfgA, abA, atA, vA)
		chA <- aOut{info, err}
	}()
	go func() {
		info, err := ThirdPartyPartyB(ctx, cfgB, abB, btB, vB)
		chB <- aOut{info, err}
	}()
	res, err := ThirdPartyAnalyst(ctx, cfgT, atT, btT)
	if err != nil {
		t.Fatalf("analyst: %v", err)
	}
	a := <-chA
	if a.err != nil {
		t.Fatalf("party A: %v", a.err)
	}
	b := <-chB
	if b.err != nil {
		t.Fatalf("party B: %v", b.err)
	}
	return res, a.info, b.info
}

func TestThirdPartyIntersectionSize(t *testing.T) {
	vA, vB := overlapping(9, 12, 5)
	res, aInfo, bInfo := runThirdParty(t, vA, vB)
	if res.IntersectionSize != 5 {
		t.Errorf("T's intersection size = %d, want 5", res.IntersectionSize)
	}
	if res.SizeA != 9 || res.SizeB != 12 {
		t.Errorf("T's sizes = (%d,%d), want (9,12)", res.SizeA, res.SizeB)
	}
	// The data parties learn each other's sizes and nothing about overlap.
	if aInfo.PeerSetSize != 12 {
		t.Errorf("A learned |V_B| = %d, want 12", aInfo.PeerSetSize)
	}
	if bInfo.PeerSetSize != 9 {
		t.Errorf("B learned |V_A| = %d, want 9", bInfo.PeerSetSize)
	}
}

func TestThirdPartyDisjointAndIdentical(t *testing.T) {
	vA, vB := overlapping(4, 4, 0)
	res, _, _ := runThirdParty(t, vA, vB)
	if res.IntersectionSize != 0 {
		t.Errorf("disjoint size = %d", res.IntersectionSize)
	}
	vA, vB = overlapping(6, 6, 6)
	res, _, _ = runThirdParty(t, vA, vB)
	if res.IntersectionSize != 6 {
		t.Errorf("identical size = %d", res.IntersectionSize)
	}
}

func TestThirdPartyEmpty(t *testing.T) {
	res, _, _ := runThirdParty(t, nil, vals("b", 3))
	if res.IntersectionSize != 0 || res.SizeA != 0 || res.SizeB != 3 {
		t.Errorf("empty A: %+v", res)
	}
}

// TestThirdPartyMedicalQuery runs the full Figure 2 algorithm: four
// intersection sizes over the partitioned id sets give the researcher
// the 2×2 contingency table and nothing about individual ids.
func TestThirdPartyMedicalQuery(t *testing.T) {
	// ids 0..19 took the drug.  R side: ids with the DNA pattern.
	patternIDs := vals("id-", 12)           // V'_R: ids 0-11 have the pattern
	allR := vals("id-", 30)                 // everyone R knows about
	drugIDs := vals("id-", 20)              // V_S: took the drug
	adverseIDs := drugIDs[:8]               // V'_S: ids 0-7 had a reaction
	noPattern := allR[len(patternIDs):]     // V_R - V'_R: ids 12-29
	noReaction := drugIDs[len(adverseIDs):] // V_S - V'_S: ids 8-19

	run := func(a, b [][]byte) int {
		res, _, _ := runThirdParty(t, a, b)
		return res.IntersectionSize
	}
	// Figure 2's four IntersectionSize calls.
	got := [4]int{
		run(patternIDs, adverseIDs), // pattern ∧ reaction
		run(patternIDs, noReaction), // pattern ∧ ¬reaction
		run(noPattern, adverseIDs),  // ¬pattern ∧ reaction
		run(noPattern, noReaction),  // ¬pattern ∧ ¬reaction
	}
	// ids 0-7 adverse, all have pattern (0-11): cell1 = 8.
	// ids 8-19 no reaction; of those, 8-11 have pattern: cell2 = 4.
	// no-pattern ids are 12-29; adverse are 0-7: cell3 = 0.
	// no-pattern ∧ no-reaction: ids 12-19: cell4 = 8.
	want := [4]int{8, 4, 0, 8}
	if got != want {
		t.Errorf("contingency table %v, want %v", got, want)
	}
	// Sanity: the four cells partition the drug takers.
	if got[0]+got[1]+got[2]+got[3] != len(drugIDs) {
		t.Errorf("cells sum to %d, want %d", got[0]+got[1]+got[2]+got[3], len(drugIDs))
	}
}
