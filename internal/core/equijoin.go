package core

import (
	"context"
	"fmt"
	"math/big"
	"time"

	"minshare/internal/commutative"
	"minshare/internal/obs"
	"minshare/internal/transport"
	"minshare/internal/wire"
)

// JoinRecord is one (value, extra-information) pair on S's side of the
// equijoin: ext(v) is everything in T_S pertaining to v — in the paper's
// words, "all records in T_S where T_S.A = v" — serialized by the caller
// (package reldb provides the serialization used by the applications).
type JoinRecord struct {
	Value []byte
	Ext   []byte
}

// JoinMatch is one joined value as learned by R: the value, and S's
// decrypted ext(v).
type JoinMatch struct {
	Value []byte
	Ext   []byte
}

// JoinResult is what party R learns from the equijoin protocol:
// V_S ∩ V_R with ext(v) for each element, plus |V_S|.
type JoinResult struct {
	// Matches holds one entry per v ∈ V_S ∩ V_R, in R's input order.
	Matches []JoinMatch
	// SenderSetSize is |V_S|.
	SenderSetSize int
	// SenderDataVersion is the data version S announced in its
	// handshake header (0 if S is unversioned).
	SenderDataVersion uint64
}

// EquijoinReceiver runs party R of the equijoin protocol of Section 4.3.
//
// Steps executed here (numbering from Section 4.3):
//
//	1-2. hash V_R, draw e_R, compute Y_R
//	3.   send Y_R sorted
//	6.   apply f_eR^{-1} to both encrypted components of each aligned
//	     reply, obtaining ⟨f_eS(h(v)), f_e'S(h(v))⟩ per v ∈ V_R
//	7.   match S's ⟨f_eS(h(v)), K(κ(v), ext(v))⟩ pairs on the first
//	     entry and decrypt ext(v) with κ(v) = f_e'S(h(v))
//	8.   return the matches (the caller computes T_S ⋈ T_R from them)
func EquijoinReceiver(ctx context.Context, cfg Config, conn transport.Conn, values [][]byte) (*JoinResult, error) {
	if cfg.Shards > 1 {
		return shardedEquijoinReceiver(ctx, cfg, conn, values)
	}
	s := newSession(ctx, cfg, conn)
	st, err := s.equijoinReceiverRun(ctx, dedup(values))
	if err != nil {
		return nil, err
	}
	return st.result(s.peerVersion), nil
}

// equijoinState is the receiver-side state of one equijoin run that a
// standing query retains.  The pushed elements of a SubUpdate arrive as
// f_eS(h(v)) — exactly the keys of extByElem — so folding in a delta
// needs no exponentiations at all: update the map, then re-decrypt only
// the affected positions with the retained κ values.
type equijoinState struct {
	vR        [][]byte
	order     []int
	singleS   []*big.Int
	kappas    []*big.Int
	extByElem map[string][]byte
	matched   []*JoinMatch
	posByKey  map[string]int
	peerSize  int
	ky        *keyer
}

// result assembles the matches in R's input order.
func (st *equijoinState) result(peerVersion uint64) *JoinResult {
	res := &JoinResult{SenderSetSize: st.peerSize, SenderDataVersion: peerVersion}
	for _, jm := range st.matched {
		if jm != nil {
			res.Matches = append(res.Matches, *jm)
		}
	}
	return res
}

// equijoinReceiverRun executes the single-pipeline receiver body and
// returns the retained state (the exported entry point derives the
// result and drops it; the standing variant keeps it live).
func (s *session) equijoinReceiverRun(ctx context.Context, vR [][]byte) (*equijoinState, error) {
	peerSize, err := s.handshake(ctx, wire.ProtoEquijoin, len(vR), true)
	if err != nil {
		return nil, err
	}

	// Steps 1-2.
	sp := obs.StartSpan(ctx, "hash-to-group")
	xR, err := s.hashSet(vR)
	sp.End()
	if err != nil {
		return nil, s.abort(ctx, err)
	}
	eR, err := s.cfg.Scheme.GenerateKey(s.cfg.Rand)
	if err != nil {
		return nil, s.abort(ctx, fmt.Errorf("core: generating e_R: %w", err))
	}
	sp = obs.StartSpan(ctx, "bulk-encrypt")
	yR, err := s.encryptSet(ctx, eR, xR)
	sp.End()
	if err != nil {
		return nil, s.abort(ctx, err)
	}

	// Step 3: send Y_R sorted, remembering the permutation.
	sp = obs.StartSpan(ctx, "exchange")
	order := sortIndicesByElem(yR)
	sortedYR := make([]*big.Int, len(yR))
	for pos, idx := range order {
		sortedYR[pos] = yR[idx]
	}
	if err := s.sendElems(ctx, sortedYR); err != nil {
		sp.End()
		return nil, err
	}

	// Steps 4+6 pipelined: receive ⟨f_eS(y), f_e'S(y)⟩ aligned with
	// sortedYR (S preserves order instead of echoing y — the Section 6.1
	// optimization applied to the 3-tuples) and strip R's own layer from
	// both components chunk by chunk:
	// f_eR^{-1}(f_eS(f_eR(h(v)))) = f_eS(h(v)) and likewise for e'_S.
	singleS, kappas, err := s.recvPairsDecrypt(ctx, eR, len(vR), "f_eS(Y_R)", "f_e'S(Y_R)")
	if err != nil {
		sp.End()
		return nil, err
	}

	// Step 5 (peer): receive the ⟨f_eS(h(v)), c(v)⟩ pairs, sorted by the
	// first entry.
	extElems, extCts, err := s.recvExtPairs(ctx, peerSize, "f_eS(h(V_S))")
	sp.End()
	if err != nil {
		return nil, err
	}

	// Step 7: index S's pairs by first entry and match.
	sp = obs.StartSpan(ctx, "match-join")
	defer sp.End()
	ky := s.newKeyer()
	extByElem := make(map[string][]byte, len(extElems))
	for i, e := range extElems {
		extByElem[ky.key(e)] = extCts[i]
	}
	posByKey := make(map[string]int, len(vR))
	matched := make([]*JoinMatch, len(vR))
	for pos, idx := range order {
		k := ky.key(singleS[pos])
		posByKey[k] = pos
		ct, hit := extByElem[k]
		if !hit {
			continue
		}
		ext, err := s.cfg.Cipher.Decrypt(kappas[pos], ct)
		if err != nil {
			return nil, s.abort(ctx, fmt.Errorf("core: decrypting ext(v): %w", err))
		}
		if s.counters != nil {
			s.counters.AddPayloadDecrypts(1)
		}
		matched[idx] = &JoinMatch{Value: vR[idx], Ext: ext}
	}
	return &equijoinState{
		vR:        vR,
		order:     order,
		singleS:   singleS,
		kappas:    kappas,
		extByElem: extByElem,
		matched:   matched,
		posByKey:  posByKey,
		peerSize:  peerSize,
		ky:        ky,
	}, nil
}

// EquijoinSender runs party S of the equijoin protocol of Section 4.3.
// records may repeat a value only with an identical Ext; conflicting
// duplicates are rejected, since ext(v) is defined per distinct value.
func EquijoinSender(ctx context.Context, cfg Config, conn transport.Conn, records []JoinRecord) (*SenderInfo, error) {
	if cfg.Shards > 1 {
		return shardedEquijoinSender(ctx, cfg, conn, records)
	}
	s := newSession(ctx, cfg, conn)
	vS, exts, err := dedupRecords(records)
	if err != nil {
		return nil, err
	}
	info, _, _, _, _, err := s.equijoinSenderRun(ctx, vS, exts)
	return info, err
}

// equijoinSenderRun executes the single-pipeline sender body and
// additionally returns the pinned keys and the sorted step-5 pairs so a
// standing sender can keep serving deltas.
func (s *session) equijoinSenderRun(ctx context.Context, vS, exts [][]byte) (*SenderInfo, *commutative.Key, *commutative.Key, []*big.Int, [][]byte, error) {
	peerSize, err := s.handshake(ctx, wire.ProtoEquijoin, len(vS), false)
	if err != nil {
		return nil, nil, nil, nil, nil, err
	}

	// Step 1: hash V_S; draw the two secret keys e_S and e'_S — or, on a
	// cache hit, replay the pinned keys together with the precomputed
	// step-5 pairs from an earlier run against this peer.  Both keys are
	// still needed live: the steps 3-4 pair exchange below encrypts R's
	// fresh Y_R under them on every run, warm or cold.
	var (
		xS          []*big.Int
		eS, ePrimeS *commutative.Key
		outElems    []*big.Int
		outExts     [][]byte
	)
	// precompute accumulates the cache-miss-path precomputation time
	// (step 1 here plus step 5 below); the exchange in between is not the
	// cache's to answer for, so it stays out of the histogram.
	var precompute time.Duration
	var phaseStart time.Time
	if s.lat != nil {
		phaseStart = time.Now()
	}
	ent, warm := s.cacheLookup()
	if warm {
		eS, ePrimeS = ent.Set.Key(), ent.ExtKey
		outElems, outExts = ent.Set.Elems(), ent.Set.Payload()
		if s.lat != nil {
			s.lat.Record(obs.LatCacheHit, time.Since(phaseStart))
		}
	} else if ent, warm = s.upgradeCachedEntry(ctx, len(vS), true); warm {
		// A stale entry was upgraded by delta: the pinned keys replay and
		// the step-5 pairs are already current (upgradeCachedEntry records
		// its own latency).
		eS, ePrimeS = ent.Set.Key(), ent.ExtKey
		outElems, outExts = ent.Set.Elems(), ent.Set.Payload()
	} else {
		sp := obs.StartSpan(ctx, "hash-to-group")
		xS, err = s.hashSet(vS)
		sp.End()
		if err != nil {
			return nil, nil, nil, nil, nil, s.abort(ctx, err)
		}
		eS, err = s.cfg.Scheme.GenerateKey(s.cfg.Rand)
		if err != nil {
			return nil, nil, nil, nil, nil, s.abort(ctx, fmt.Errorf("core: generating e_S: %w", err))
		}
		ePrimeS, err = s.cfg.Scheme.GenerateKey(s.cfg.Rand)
		if err != nil {
			return nil, nil, nil, nil, nil, s.abort(ctx, fmt.Errorf("core: generating e'_S: %w", err))
		}
		if s.lat != nil {
			precompute += time.Since(phaseStart)
		}
	}

	// Steps 3-4 pipelined: receive Y_R and reply with the aligned
	// ⟨f_eS(y), f_e'S(y)⟩ pairs — in streaming mode each chunk of Y_R is
	// double-encrypted and its pair chunk shipped while the next chunk
	// is still in flight.
	sp := obs.StartSpan(ctx, "exchange")
	_, err = s.recvEncryptPairsSend(ctx, eS, ePrimeS, peerSize, "Y_R")
	sp.End()
	if err != nil {
		return nil, nil, nil, nil, nil, err
	}

	// Step 5: for each v ∈ V_S, form ⟨f_eS(h(v)), K(f_e'S(h(v)), ext(v))⟩
	// — skipped wholesale on a warm run, which ships the cached pairs.
	if !warm {
		if s.lat != nil {
			phaseStart = time.Now()
		}
		sp = obs.StartSpan(ctx, "bulk-encrypt")
		firsts, err := s.encryptSet(ctx, eS, xS)
		if err != nil {
			sp.End()
			return nil, nil, nil, nil, nil, s.abort(ctx, err)
		}
		kappas, err := s.encryptSet(ctx, ePrimeS, xS)
		sp.End()
		if err != nil {
			return nil, nil, nil, nil, nil, s.abort(ctx, err)
		}
		sp = obs.StartSpan(ctx, "payload-encrypt")
		ciphertexts := make([][]byte, len(vS))
		for i := range vS {
			ciphertexts[i], err = s.cfg.Cipher.Encrypt(kappas[i], exts[i])
			if err != nil {
				sp.End()
				return nil, nil, nil, nil, nil, s.abort(ctx, fmt.Errorf("core: encrypting ext(v): %w", err))
			}
			if s.counters != nil {
				s.counters.AddPayloadEncrypts(1)
			}
		}
		sp.End()
		// Ship in lexicographic order of the first entry.
		perm := sortIndicesByElem(firsts)
		outElems = make([]*big.Int, len(vS))
		outExts = make([][]byte, len(vS))
		for pos, idx := range perm {
			outElems[pos] = firsts[idx]
			outExts[pos] = ciphertexts[idx]
		}
		if s.cfg.SetCache != nil {
			if cs, cerr := commutative.CachedSetFromSorted(eS, outElems, outExts); cerr == nil {
				s.cachePut(&CacheEntry{Set: cs, ExtKey: ePrimeS})
			}
		}
		if s.lat != nil {
			s.lat.Record(obs.LatCacheMiss, precompute+time.Since(phaseStart))
		}
	}
	sp = obs.StartSpan(ctx, "send-pairs")
	err = s.sendExtPairs(ctx, outElems, outExts)
	sp.End()
	if err != nil {
		return nil, nil, nil, nil, nil, err
	}
	return &SenderInfo{ReceiverSetSize: peerSize}, eS, ePrimeS, outElems, outExts, nil
}

// dedupRecords splits records into parallel value/ext slices with
// duplicates removed, rejecting a value that appears with two different
// Ext payloads.
func dedupRecords(records []JoinRecord) (values [][]byte, exts [][]byte, err error) {
	seen := make(map[string]int, len(records))
	for _, rec := range records {
		k := string(rec.Value)
		if i, dup := seen[k]; dup {
			if !valuesEqual(exts[i], rec.Ext) {
				return nil, nil, fmt.Errorf("core: value %q has conflicting ext payloads", rec.Value)
			}
			continue
		}
		seen[k] = len(values)
		values = append(values, rec.Value)
		exts = append(exts, rec.Ext)
	}
	return values, exts, nil
}
