package core

import (
	"context"
	"errors"
	"math/big"
	"testing"
	"time"

	"minshare/internal/transport"
	"minshare/internal/wire"
)

// TestFaultTransportFailures drives each protocol over transports that
// fail at every possible message index and asserts the run errors out
// rather than returning a (necessarily wrong) result.
func TestFaultTransportFailures(t *testing.T) {
	vR, vS := overlapping(4, 5, 2)
	recs := mkRecords(vS)

	protocols := map[string]struct {
		recv func(ctx context.Context, cfg Config, conn transport.Conn) error
		send func(ctx context.Context, cfg Config, conn transport.Conn) error
	}{
		"intersection": {
			recv: func(ctx context.Context, cfg Config, conn transport.Conn) error {
				_, err := IntersectionReceiver(ctx, cfg, conn, vR)
				return err
			},
			send: func(ctx context.Context, cfg Config, conn transport.Conn) error {
				_, err := IntersectionSender(ctx, cfg, conn, vS)
				return err
			},
		},
		"equijoin": {
			recv: func(ctx context.Context, cfg Config, conn transport.Conn) error {
				_, err := EquijoinReceiver(ctx, cfg, conn, vR)
				return err
			},
			send: func(ctx context.Context, cfg Config, conn transport.Conn) error {
				_, err := EquijoinSender(ctx, cfg, conn, recs)
				return err
			},
		},
		"intersection-size": {
			recv: func(ctx context.Context, cfg Config, conn transport.Conn) error {
				_, err := IntersectionSizeReceiver(ctx, cfg, conn, vR)
				return err
			},
			send: func(ctx context.Context, cfg Config, conn transport.Conn) error {
				_, err := IntersectionSizeSender(ctx, cfg, conn, vS)
				return err
			},
		},
		"equijoin-size": {
			recv: func(ctx context.Context, cfg Config, conn transport.Conn) error {
				_, err := EquijoinSizeReceiver(ctx, cfg, conn, vR)
				return err
			},
			send: func(ctx context.Context, cfg Config, conn transport.Conn) error {
				_, err := EquijoinSizeSender(ctx, cfg, conn, vS)
				return err
			},
		},
	}

	for name, p := range protocols {
		p := p
		for failAt := int64(1); failAt <= 3; failAt++ {
			failAt := failAt
			t.Run(name+"/recv-fails", func(t *testing.T) {
				ctx, cancel := context.WithCancel(context.Background())
				defer cancel()
				connR, connS := transport.Pipe()
				defer connR.Close()
				fault := transport.NewFault(connR)
				fault.FailRecvAt = failAt

				ch := make(chan error, 1)
				go func() { ch <- p.send(ctx, testConfig(2), connS) }()
				rErr := p.recv(ctx, testConfig(1), fault)
				if rErr == nil {
					t.Fatalf("receiver succeeded despite recv fault at %d", failAt)
				}
				cancel() // release a possibly blocked sender
				<-ch
			})
		}
	}
}

// TestFaultCorruptedHeader corrupts the header frame R receives (the
// flipped byte lands in the group digest); the handshake must reject it.
func TestFaultCorruptedHeader(t *testing.T) {
	vR, vS := overlapping(4, 5, 2)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	connR, connS := transport.Pipe()
	defer connR.Close()
	fault := transport.NewFault(connR)
	fault.CorruptRecvAt = 1

	ch := make(chan error, 1)
	go func() {
		_, err := IntersectionSender(ctx, testConfig(2), connS, vS)
		ch <- err
	}()
	_, rErr := IntersectionReceiver(ctx, testConfig(1), fault, vR)
	if rErr == nil {
		t.Fatal("receiver accepted corrupted header")
	}
	cancel()
	<-ch
}

// TestFaultCorruptedElementFrame flips a byte inside an element vector.
// A flipped group element is just a different group element, so this is
// fundamentally undetectable at the protocol layer (Figure 1 delegates
// integrity to the secure-communication layer); what the protocol MUST
// guarantee is a clean completion — a valid result or a clean error,
// never a panic.
func TestFaultCorruptedElementFrame(t *testing.T) {
	vR, vS := overlapping(4, 5, 2)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	connR, connS := transport.Pipe()
	defer connR.Close()
	fault := transport.NewFault(connR)
	fault.CorruptRecvAt = 2 // Y_S

	ch := make(chan error, 1)
	go func() {
		_, err := IntersectionSender(ctx, testConfig(2), connS, vS)
		ch <- err
	}()
	res, rErr := IntersectionReceiver(ctx, testConfig(1), fault, vR)
	if rErr == nil && len(res.Values) > 2 {
		t.Errorf("corruption invented intersection values: %d", len(res.Values))
	}
	cancel()
	<-ch
}

// TestFaultTruncatedFrame truncates a frame; decoding must fail cleanly.
func TestFaultTruncatedFrame(t *testing.T) {
	vR, vS := overlapping(4, 5, 2)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	connR, connS := transport.Pipe()
	defer connR.Close()
	fault := transport.NewFault(connR)
	fault.TruncateRecvAt = 2

	ch := make(chan error, 1)
	go func() {
		_, err := IntersectionSender(ctx, testConfig(2), connS, vS)
		ch <- err
	}()
	_, rErr := IntersectionReceiver(ctx, testConfig(1), fault, vR)
	if !errors.Is(rErr, ErrMalformedReply) {
		t.Fatalf("err = %v, want ErrMalformedReply", rErr)
	}
	cancel()
	<-ch
}

// maliciousPeer drives the raw wire protocol by hand to deliver
// rule-breaking replies.
type maliciousPeer struct {
	cfg   Config
	conn  transport.Conn
	codec *wire.Codec
}

func newMalicious(cfg Config, conn transport.Conn) *maliciousPeer {
	cfg = cfg.normalized()
	return &maliciousPeer{cfg: cfg, conn: conn, codec: wire.NewCodec(cfg.Group)}
}

func (m *maliciousPeer) send(ctx context.Context, t *testing.T, msg wire.Message) {
	t.Helper()
	data, err := m.codec.Encode(msg)
	if err != nil {
		t.Errorf("malicious encode: %v", err)
		return
	}
	if err := m.conn.Send(ctx, data); err != nil {
		t.Logf("malicious send: %v", err) // receiver may already have hung up
	}
}

func (m *maliciousPeer) recv(ctx context.Context, t *testing.T) wire.Message {
	t.Helper()
	data, err := m.conn.Recv(ctx)
	if err != nil {
		t.Logf("malicious recv: %v", err)
		return nil
	}
	msg, err := m.codec.Decode(data)
	if err != nil {
		t.Errorf("malicious decode: %v", err)
		return nil
	}
	return msg
}

func (m *maliciousPeer) header(n int) wire.Header {
	return wire.Header{
		Protocol:    wire.ProtoIntersection,
		GroupBits:   uint32(m.cfg.Group.Bits()),
		GroupDigest: wire.GroupDigest(m.cfg.Group),
		SetSize:     uint64(n),
	}
}

// TestRejectsUnsortedReply: a sender that ships an unsorted Y_S violates
// the protocol (footnote 3); the receiver must reject it.
func TestRejectsUnsortedReply(t *testing.T) {
	vR := vals("r", 3)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	connR, connS := transport.Pipe()
	defer connR.Close()

	done := make(chan struct{})
	go func() {
		defer close(done)
		m := newMalicious(testConfig(2), connS)
		if m.recv(ctx, t) == nil { // R's header
			return
		}
		m.send(ctx, t, m.header(2))
		if m.recv(ctx, t) == nil { // Y_R
			return
		}
		// Build two valid group elements in DESCENDING order.
		a := m.cfg.Oracle.HashString("zzz")
		b := m.cfg.Oracle.HashString("aaa")
		hi, lo := a, b
		if hi.Cmp(lo) < 0 {
			hi, lo = lo, hi
		}
		m.send(ctx, t, wire.Elements{Elems: []*big.Int{hi, lo}})
	}()

	_, err := IntersectionReceiver(ctx, testConfig(1), connR, vR)
	if !errors.Is(err, ErrMalformedReply) {
		t.Fatalf("err = %v, want ErrMalformedReply (unsorted)", err)
	}
	cancel()
	<-done
}

// TestRejectsNonGroupElements: replies containing non-residues must be
// rejected before any use.
func TestRejectsNonGroupElements(t *testing.T) {
	vR := vals("r", 2)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	connR, connS := transport.Pipe()
	defer connR.Close()

	done := make(chan struct{})
	go func() {
		defer close(done)
		m := newMalicious(testConfig(2), connS)
		if m.recv(ctx, t) == nil {
			return
		}
		m.send(ctx, t, m.header(1))
		if m.recv(ctx, t) == nil {
			return
		}
		m.send(ctx, t, wire.Elements{Elems: []*big.Int{big.NewInt(0)}})
	}()

	_, err := IntersectionReceiver(ctx, testConfig(1), connR, vR)
	if !errors.Is(err, ErrMalformedReply) {
		t.Fatalf("err = %v, want ErrMalformedReply (non-member)", err)
	}
	cancel()
	<-done
}

// TestRejectsCardinalityMismatch: a sender announcing |V_S|=5 but sending
// 3 elements must be caught.
func TestRejectsCardinalityMismatch(t *testing.T) {
	vR := vals("r", 2)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	connR, connS := transport.Pipe()
	defer connR.Close()

	done := make(chan struct{})
	go func() {
		defer close(done)
		m := newMalicious(testConfig(2), connS)
		if m.recv(ctx, t) == nil {
			return
		}
		m.send(ctx, t, m.header(5)) // lies: announces 5
		if m.recv(ctx, t) == nil {
			return
		}
		elems := []*big.Int{m.cfg.Oracle.HashString("a")}
		m.send(ctx, t, wire.Elements{Elems: sortedCopy(elems)})
	}()

	_, err := IntersectionReceiver(ctx, testConfig(1), connR, vR)
	if !errors.Is(err, ErrMalformedReply) {
		t.Fatalf("err = %v, want ErrMalformedReply (cardinality)", err)
	}
	cancel()
	<-done
}

// TestPeerErrorMessageSurfaces: an explicit ErrorMsg from the peer must
// surface as ErrPeerFailure.
func TestPeerErrorMessageSurfaces(t *testing.T) {
	vR := vals("r", 2)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	connR, connS := transport.Pipe()
	defer connR.Close()

	done := make(chan struct{})
	go func() {
		defer close(done)
		m := newMalicious(testConfig(2), connS)
		if m.recv(ctx, t) == nil {
			return
		}
		m.send(ctx, t, wire.ErrorMsg{Text: "sender exploded"})
	}()

	_, err := IntersectionReceiver(ctx, testConfig(1), connR, vR)
	if !errors.Is(err, ErrPeerFailure) {
		t.Fatalf("err = %v, want ErrPeerFailure", err)
	}
	cancel()
	<-done
}

// TestContextCancellationMidProtocol: cancelling the context while the
// peer is silent aborts the run.
func TestContextCancellationMidProtocol(t *testing.T) {
	vR := vals("r", 2)
	ctx, cancel := context.WithCancel(context.Background())
	connR, _ := transport.Pipe() // no peer will ever answer
	defer connR.Close()
	cancel()
	if _, err := IntersectionReceiver(ctx, testConfig(1), connR, vR); err == nil {
		t.Fatal("cancelled run returned nil error")
	}
}

// TestReceiverAbortsOnStalledSender: a receiver talking through the idle
// -timeout decorator abandons a sender that answers the handshake and
// then goes silent — within one idle interval, without leaking the run's
// goroutines or waiting on the whole-session context.
func TestReceiverAbortsOnStalledSender(t *testing.T) {
	vR := vals("r", 3)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	connR, connS := transport.Pipe()
	defer connR.Close()

	done := make(chan struct{})
	go func() {
		defer close(done)
		m := newMalicious(testConfig(2), connS)
		if m.recv(ctx, t) == nil { // R's header
			return
		}
		m.send(ctx, t, m.header(4))
		// ... and stall: never send Y_S.
	}()

	start := time.Now()
	_, err := IntersectionReceiver(ctx, testConfig(1), transport.WithIdleTimeout(connR, 100*time.Millisecond), vR)
	if !errors.Is(err, transport.ErrIdleTimeout) {
		t.Fatalf("err = %v, want ErrIdleTimeout", err)
	}
	if d := time.Since(start); d > 3*time.Second {
		t.Errorf("receiver took %v to abandon the stalled sender", d)
	}
	cancel()
	<-done
}
