package core

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"

	"minshare/internal/costmodel"
	"minshare/internal/obs"
	"minshare/internal/transport"
	"minshare/internal/wire"
)

// These tests certify the delta-maintenance tentpole against the
// costmodel closed forms the same way the cache tests certify the warm
// forms: a delta-upgraded requery must cost exactly
// IntersectionDeltaOps / JoinDeltaOps, and one standing-query update
// must cost exactly IntersectionUpdateOps / JoinUpdateOps and
// *DeltaWireCost — operation for operation, byte for byte.

// scriptedSource is a DeltaSource tests drive by hand.
type scriptedSource struct {
	mu     sync.Mutex
	ver    uint64
	deltas []SetDelta
	notify chan struct{}
	broken bool // DeltaSince answers !ok, as a sealed change log would
}

func newScriptedSource(ver uint64) *scriptedSource {
	return &scriptedSource{ver: ver, notify: make(chan struct{})}
}

func (f *scriptedSource) Version() uint64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.ver
}

func (f *scriptedSource) DeltaSince(from uint64) (SetDelta, bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.broken {
		return SetDelta{}, false
	}
	out := SetDelta{From: from, To: from}
	for out.To < f.ver {
		found := false
		for _, d := range f.deltas {
			if d.From == out.To {
				out.Inserted = append(out.Inserted, d.Inserted...)
				out.Updated = append(out.Updated, d.Updated...)
				out.Deleted = append(out.Deleted, d.Deleted...)
				out.To = d.To
				found = true
				break
			}
		}
		if !found {
			return SetDelta{}, false
		}
	}
	return out, true
}

func (f *scriptedSource) Wait(ctx context.Context, from uint64) error {
	for {
		f.mu.Lock()
		if f.ver > from {
			f.mu.Unlock()
			return nil
		}
		ch := f.notify
		f.mu.Unlock()
		select {
		case <-ch:
		case <-ctx.Done():
			return ctx.Err()
		}
	}
}

// push appends one delta step and wakes waiters.
func (f *scriptedSource) push(d SetDelta) {
	f.mu.Lock()
	f.ver = d.To
	f.deltas = append(f.deltas, d)
	ch := f.notify
	f.notify = make(chan struct{})
	f.mu.Unlock()
	close(ch)
}

func (f *scriptedSource) breakLog() {
	f.mu.Lock()
	f.broken = true
	f.mu.Unlock()
}

func addOpCounts(os ...costmodel.OpCounts) costmodel.OpCounts {
	var t costmodel.OpCounts
	for _, o := range os {
		t.Ce += o.Ce
		t.Ch += o.Ch
		t.CK += o.CK
		t.SortElems += o.SortElems
	}
	return t
}

// checkHashes asserts the observed oracle-hash census equals exactly
// twice the closed form's Ch: every value a party hashes is hashed once
// by the §3.2.2 collision sweep and once for the protocol, so the
// factor is structural, not approximate.
func checkHashes(t *testing.T, wantCh int64, r, s obs.SessionSnapshot) {
	t.Helper()
	if got := r.Counters.OracleHashes + s.Counters.OracleHashes; got != 2*wantCh {
		t.Errorf("total oracle hashes = %d, want 2·Ch = %d", got, 2*wantCh)
	}
}

func addWireCosts(ws ...costmodel.WireCost) costmodel.WireCost {
	var t costmodel.WireCost
	for _, w := range ws {
		t.FramesSent += w.FramesSent
		t.FramesRecv += w.FramesRecv
		t.PayloadBytesSent += w.PayloadBytesSent
		t.PayloadBytesRecv += w.PayloadBytesRecv
	}
	return t
}

// rec builds the JoinRecord for value v with a fixed-width ext so every
// payload ciphertext has the same length (the wire census assumes it).
func rec(v []byte) JoinRecord {
	return JoinRecord{Value: v, Ext: []byte(fmt.Sprintf("ext|%-12s", v))}
}

func TestStandingIntersectionExactUpdateCost(t *testing.T) {
	const nR, nS, shared = 7, 5, 3
	vR, vS := overlapping(nR, nS, shared)
	src := newScriptedSource(1)
	elemLen := wire.NewCodec(testConfig(0).normalized().Group).ElemLen()

	reg := obs.NewRegistry()
	var results []*IntersectionResult
	r, s := runObservedPair(t, reg, "standing-intersection",
		func(ctx context.Context, conn transport.Conn) (struct{}, error) {
			cfg := testConfig(1)
			q, err := IntersectionReceiverStanding(ctx, cfg, conn, vR)
			if err != nil {
				return struct{}{}, err
			}
			results = append(results, q.Result())

			// Update 1: S gains only-r-0 (a new match) and loses common-0.
			src.push(SetDelta{From: 1, To: 2,
				Inserted: []JoinRecord{{Value: []byte("only-r-0")}},
				Deleted:  [][]byte{[]byte("common-0")}})
			res, err := q.Await(ctx)
			if err != nil {
				return struct{}{}, err
			}
			results = append(results, res)

			// Update 2: the fresh value churns right back out.
			src.push(SetDelta{From: 2, To: 3,
				Inserted: []JoinRecord{{Value: []byte("only-s-9")}},
				Deleted:  [][]byte{[]byte("only-r-0")}})
			res, err = q.Await(ctx)
			if err != nil {
				return struct{}{}, err
			}
			results = append(results, res)
			if got := q.Version(); got != 3 {
				t.Errorf("receiver version = %d, want 3", got)
			}
			return struct{}{}, q.Close(ctx)
		},
		func(ctx context.Context, conn transport.Conn) (*SenderInfo, error) {
			cfg := testConfig(2)
			cfg.DataVersion = 1
			cfg.DeltaSource = src
			cfg.DeltaChurnMax = 1 // the tiny test set churns over the default bound
			return IntersectionSenderStanding(ctx, cfg, conn, vS)
		})

	// Result correctness at each version.
	wants := [][]string{
		{"common-0", "common-1", "common-2"},
		{"common-1", "common-2", "only-r-0"},
		{"common-1", "common-2"},
	}
	if len(results) != len(wants) {
		t.Fatalf("got %d results, want %d", len(results), len(wants))
	}
	for i, want := range wants {
		got := sortedStrings(results[i].Values)
		if len(got) != len(want) {
			t.Fatalf("result %d = %v, want %v", i, got, want)
		}
		for j := range want {
			if got[j] != want[j] {
				t.Fatalf("result %d = %v, want %v", i, got, want)
			}
		}
	}
	if got, want := results[2].SenderSetSize, nS; got != want {
		t.Errorf("sender set size after churn = %d, want %d", got, want)
	}

	// Computation: base census plus exactly IntersectionUpdateOps per
	// update — 2(nIns+nDel) modexps, (nIns+nDel) oracle hashes.
	want := addOpCounts(
		costmodel.IntersectionOps(nS, nR),
		costmodel.IntersectionUpdateOps(1, 1),
		costmodel.IntersectionUpdateOps(1, 1),
	)
	if got := r.Counters.ModExps() + s.Counters.ModExps(); got != want.Ce {
		t.Errorf("total modexps = %d, want %d", got, want.Ce)
	}
	checkHashes(t, want.Ch, r, s)
	// The receiver hashes nothing during updates (2 per value, base run
	// only) and the sender draws no new keys after the base run.
	if r.Counters.OracleHashes != int64(2*nR) {
		t.Errorf("receiver hashes = %d, want %d", r.Counters.OracleHashes, 2*nR)
	}
	if got := r.Counters.KeyGens + s.Counters.KeyGens; got != 2 {
		t.Errorf("total keygens = %d, want 2", got)
	}

	// Communication: base census + subscribe + one delta census per
	// update + the client's closing SubEnd, byte for byte.
	wantWire := addWireCosts(
		costmodel.IntersectionWireCost(nS, nR, elemLen),
		costmodel.SubscribeWireCost(),
		costmodel.IntersectionDeltaWireCost(1, 1, elemLen),
		costmodel.IntersectionDeltaWireCost(1, 1, elemLen),
		costmodel.SubEndWireCost(),
	)
	checkWireCost(t, wantWire, r.Counters, s.Counters)
}

func TestStandingJoinExactUpdateCost(t *testing.T) {
	const nR, nS, shared = 6, 5, 3
	vR, vS := overlapping(nR, nS, shared)
	records := make([]JoinRecord, len(vS))
	for i, v := range vS {
		records[i] = rec(v)
	}
	src := newScriptedSource(1)
	cfg0 := testConfig(0).normalized()
	elemLen := wire.NewCodec(cfg0.Group).ElemLen()
	extLen := cfg0.Cipher.CiphertextLen(len(rec([]byte("x")).Ext))

	reg := obs.NewRegistry()
	var results []*JoinResult
	r, s := runObservedPair(t, reg, "standing-equijoin",
		func(ctx context.Context, conn transport.Conn) (struct{}, error) {
			cfg := testConfig(1)
			q, err := EquijoinReceiverStanding(ctx, cfg, conn, vR)
			if err != nil {
				return struct{}{}, err
			}
			results = append(results, q.Result())

			// One update with all three shapes: an insert that becomes a
			// new match, an ext-only update of an existing match, and a
			// deletion of a matched value.  nUps=2, nDel=1, newMatches=2.
			updated := rec([]byte("common-0"))
			updated.Ext = []byte(fmt.Sprintf("EXT|%-12s", "common-0"))
			src.push(SetDelta{From: 1, To: 2,
				Inserted: []JoinRecord{rec([]byte("only-r-0"))},
				Updated:  []JoinRecord{updated},
				Deleted:  [][]byte{[]byte("common-1")}})
			res, err := q.Await(ctx)
			if err != nil {
				return struct{}{}, err
			}
			results = append(results, res)
			return struct{}{}, q.Close(ctx)
		},
		func(ctx context.Context, conn transport.Conn) (*SenderInfo, error) {
			cfg := testConfig(2)
			cfg.DataVersion = 1
			cfg.DeltaSource = src
			cfg.DeltaChurnMax = 1
			return EquijoinSenderStanding(ctx, cfg, conn, records)
		})

	if len(results) != 2 {
		t.Fatalf("got %d results, want 2", len(results))
	}
	byVal := func(res *JoinResult) map[string]string {
		m := map[string]string{}
		for _, jm := range res.Matches {
			m[string(jm.Value)] = string(jm.Ext)
		}
		return m
	}
	base := byVal(results[0])
	if len(base) != shared || base["common-0"] != string(rec([]byte("common-0")).Ext) {
		t.Fatalf("base matches = %v", base)
	}
	after := byVal(results[1])
	wantAfter := map[string]string{
		"common-0": fmt.Sprintf("EXT|%-12s", "common-0"),
		"common-2": string(rec([]byte("common-2")).Ext),
		"only-r-0": string(rec([]byte("only-r-0")).Ext),
	}
	if len(after) != len(wantAfter) {
		t.Fatalf("matches after update = %v, want %v", after, wantAfter)
	}
	for k, v := range wantAfter {
		if after[k] != v {
			t.Errorf("match %q ext = %q, want %q", k, after[k], v)
		}
	}
	if got, want := results[1].SenderSetSize, nS; got != want {
		t.Errorf("sender set size after update = %d, want %d", got, want)
	}

	// Computation: base census plus exactly JoinUpdateOps(2, 1, 2).  The
	// receiver's update cost is payload decryptions alone — its modexp
	// and hash counters must equal the plain one-shot receiver's.
	want := addOpCounts(
		costmodel.JoinOps(nS, nR, shared),
		costmodel.JoinUpdateOps(2, 1, 2),
	)
	if got := r.Counters.ModExps() + s.Counters.ModExps(); got != want.Ce {
		t.Errorf("total modexps = %d, want %d", got, want.Ce)
	}
	checkHashes(t, want.Ch, r, s)
	if got := r.Counters.PayloadEncrypts + s.Counters.PayloadEncrypts +
		r.Counters.PayloadDecrypts + s.Counters.PayloadDecrypts; got != want.CK {
		t.Errorf("total payload ops = %d, want %d", got, want.CK)
	}
	// Receiver Ce = 3|V_R| (encrypt Y_R, strip both pair components) —
	// all of it from the base run, none from the update.
	if got, want := r.Counters.ModExps(), int64(3*nR); got != want {
		t.Errorf("receiver modexps = %d, want %d (zero spent on the update)", got, want)
	}

	wantWire := addWireCosts(
		costmodel.JoinWireCost(nS, nR, elemLen, extLen),
		costmodel.SubscribeWireCost(),
		costmodel.JoinDeltaWireCost(2, 1, elemLen, extLen),
		costmodel.SubEndWireCost(),
	)
	checkWireCost(t, wantWire, r.Counters, s.Counters)
}

// A standing sender facing a receiver that never subscribes must behave
// exactly like the one-shot sender: same transcript (certified by the
// wire census), clean nil return when the peer hangs up.
func TestStandingSenderServesOneShotReceiver(t *testing.T) {
	const nR, nS, shared = 5, 4, 2
	vR, vS := overlapping(nR, nS, shared)
	src := newScriptedSource(1)
	elemLen := wire.NewCodec(testConfig(0).normalized().Group).ElemLen()

	reg := obs.NewRegistry()
	var res *IntersectionResult
	r, s := runObservedPair(t, reg, "standing-vs-oneshot",
		func(ctx context.Context, conn transport.Conn) (*IntersectionResult, error) {
			var err error
			res, err = IntersectionReceiver(ctx, testConfig(1), conn, vR)
			// Hang up, as a one-shot client does.
			conn.Close()
			return res, err
		},
		func(ctx context.Context, conn transport.Conn) (*SenderInfo, error) {
			cfg := testConfig(2)
			cfg.DataVersion = 1
			cfg.DeltaSource = src
			return IntersectionSenderStanding(ctx, cfg, conn, vS)
		})

	if got := sortedStrings(res.Values); len(got) != shared {
		t.Errorf("intersection = %v, want %d values", got, shared)
	}
	// Byte-identical to a plain run: the standing machinery adds nothing
	// to the wire until a Subscribe arrives.
	checkWireCost(t, costmodel.IntersectionWireCost(nS, nR, elemLen), r.Counters, s.Counters)
}

// When the sender cannot produce a delta (sealed change log), it must
// end the subscription gracefully: the receiver's Await returns
// ErrSubscriptionEnded, the last result stays valid, and both sides
// return nil.
func TestStandingSubscriptionEndsOnUnavailableDelta(t *testing.T) {
	const nR, nS, shared = 5, 4, 2
	vR, vS := overlapping(nR, nS, shared)
	src := newScriptedSource(1)

	reg := obs.NewRegistry()
	runObservedPair(t, reg, "standing-ends",
		func(ctx context.Context, conn transport.Conn) (struct{}, error) {
			q, err := IntersectionReceiverStanding(ctx, testConfig(1), conn, vR)
			if err != nil {
				return struct{}{}, err
			}
			src.breakLog()
			src.push(SetDelta{From: 1, To: 2, Inserted: []JoinRecord{{Value: []byte("only-r-0")}}})
			if _, err := q.Await(ctx); !errors.Is(err, ErrSubscriptionEnded) {
				t.Errorf("Await after sealed log = %v, want ErrSubscriptionEnded", err)
			}
			if len(q.Result().Values) != shared {
				t.Errorf("last result lost after subscription end")
			}
			// Await after the end keeps reporting the terminal state.
			if _, err := q.Await(ctx); !errors.Is(err, ErrSubscriptionEnded) {
				t.Errorf("second Await = %v, want ErrSubscriptionEnded", err)
			}
			return struct{}{}, nil
		},
		func(ctx context.Context, conn transport.Conn) (*SenderInfo, error) {
			cfg := testConfig(2)
			cfg.DataVersion = 1
			cfg.DeltaSource = src
			return IntersectionSenderStanding(ctx, cfg, conn, vS)
		})
}

// A delta over the churn bound likewise ends the subscription instead
// of pushing a near-full-set update.
func TestStandingSubscriptionEndsOverChurnBound(t *testing.T) {
	const nR, nS, shared = 5, 4, 2
	vR, vS := overlapping(nR, nS, shared)
	src := newScriptedSource(1)

	reg := obs.NewRegistry()
	runObservedPair(t, reg, "standing-churn",
		func(ctx context.Context, conn transport.Conn) (struct{}, error) {
			q, err := IntersectionReceiverStanding(ctx, testConfig(1), conn, vR)
			if err != nil {
				return struct{}{}, err
			}
			// 3 of 4 values churn: way past the 25% default bound.
			src.push(SetDelta{From: 1, To: 2,
				Deleted: [][]byte{[]byte("common-0"), []byte("common-1"), []byte("only-s-0")}})
			if _, err := q.Await(ctx); !errors.Is(err, ErrSubscriptionEnded) {
				t.Errorf("Await over churn bound = %v, want ErrSubscriptionEnded", err)
			}
			return struct{}{}, nil
		},
		func(ctx context.Context, conn transport.Conn) (*SenderInfo, error) {
			cfg := testConfig(2)
			cfg.DataVersion = 1
			cfg.DeltaSource = src
			return IntersectionSenderStanding(ctx, cfg, conn, vS)
		})
}

func TestStandingRejectsShardedConfig(t *testing.T) {
	cfg := testConfig(1)
	cfg.Shards = 4
	connR, connS := transport.Pipe()
	defer connR.Close()
	defer connS.Close()
	if _, err := IntersectionReceiverStanding(context.Background(), cfg, connR, vals("v", 3)); !errors.Is(err, errStandingSharded) {
		t.Errorf("sharded standing receiver = %v, want errStandingSharded", err)
	}
	cfg.DeltaSource = newScriptedSource(1)
	if _, err := IntersectionSenderStanding(context.Background(), cfg, connS, vals("v", 3)); !errors.Is(err, errStandingSharded) {
		t.Errorf("sharded standing sender = %v, want errStandingSharded", err)
	}
}

// TestCacheDeltaUpgradeIntersectionExact certifies the requery path: a
// stale cache entry plus a DeltaSource turns a cold rebuild into an
// O(churn) upgrade, and the total census equals IntersectionDeltaOps
// exactly.
func TestCacheDeltaUpgradeIntersectionExact(t *testing.T) {
	const nR, nS, shared = 7, 5, 3
	vR, vS := overlapping(nR, nS, shared)
	src := newScriptedSource(1)
	reg := obs.NewRegistry()
	cache := NewSenderSetCache(0, reg.Cache())

	run := func(name string, ver uint64, values [][]byte, churnMax float64) (r, s obs.SessionSnapshot, res *IntersectionResult) {
		key := cacheKey(wire.ProtoIntersection)
		key.Version = ver
		cfgS := senderConfig(2, cache, key, 0)
		cfgS.DataVersion = ver
		cfgS.DeltaSource = src
		cfgS.DeltaChurnMax = churnMax
		r, s = runObservedPair(t, reg, name,
			func(ctx context.Context, conn transport.Conn) (*IntersectionResult, error) {
				var err error
				res, err = IntersectionReceiver(ctx, testConfig(int64(ver)), conn, vR)
				return res, err
			},
			func(ctx context.Context, conn transport.Conn) (*SenderInfo, error) {
				return IntersectionSender(ctx, cfgS, conn, values)
			})
		return r, s, res
	}

	// Cold run at version 1 populates the cache.
	r1, s1, _ := run("cold", 1, vS, 1)
	if got, want := r1.Counters.ModExps()+s1.Counters.ModExps(), costmodel.IntersectionOps(nS, nR).Ce; got != want {
		t.Fatalf("cold modexps = %d, want %d", got, want)
	}

	// Churn: one insert (a new match), one delete.  The requery at
	// version 2 must upgrade the stale entry, not rebuild.
	src.push(SetDelta{From: 1, To: 2,
		Inserted: []JoinRecord{{Value: []byte("only-r-0")}},
		Deleted:  [][]byte{[]byte("common-0")}})
	vS2 := append([][]byte{[]byte("only-r-0")}, vS[1:]...) // drop common-0, add only-r-0
	r2, s2, res2 := run("delta", 2, vS2, 1)

	want := costmodel.IntersectionDeltaOps(len(vS2), nR, 1, 1)
	if got := r2.Counters.ModExps() + s2.Counters.ModExps(); got != want.Ce {
		t.Errorf("delta-requery modexps = %d, want %d", got, want.Ce)
	}
	checkHashes(t, want.Ch, r2, s2)
	if s2.Counters.KeyGens != 0 {
		t.Errorf("upgraded sender drew %d keys, want 0", s2.Counters.KeyGens)
	}
	wantVals := []string{"common-1", "common-2", "only-r-0"}
	got := sortedStrings(res2.Values)
	if len(got) != len(wantVals) {
		t.Fatalf("delta-requery result = %v, want %v", got, wantVals)
	}
	for i := range wantVals {
		if got[i] != wantVals[i] {
			t.Fatalf("delta-requery result = %v, want %v", got, wantVals)
		}
	}
	if snap := reg.Cache().Snapshot(); snap.Upgrades != 1 || snap.Rebuilds != 0 {
		t.Errorf("cache upgrades/rebuilds = %d/%d, want 1/0", snap.Upgrades, snap.Rebuilds)
	}

	// Next churn exceeds a tiny bound: the upgrade path must decline,
	// count a rebuild, and fall back to the cold census.
	src.push(SetDelta{From: 2, To: 3,
		Inserted: []JoinRecord{{Value: []byte("only-r-1")}},
		Deleted:  [][]byte{[]byte("common-1")}})
	vS3 := append([][]byte{[]byte("only-r-1")}, vS2[1:]...)
	_, s3, _ := run("over-bound", 3, vS3, 0.01)
	if got, want := s3.Counters.KeyGens, int64(1); got != want {
		t.Errorf("over-bound sender keygens = %d, want %d (cold rebuild)", got, want)
	}
	if snap := reg.Cache().Snapshot(); snap.Upgrades != 1 || snap.Rebuilds != 1 {
		t.Errorf("cache upgrades/rebuilds = %d/%d, want 1/1", snap.Upgrades, snap.Rebuilds)
	}
}

// TestCacheDeltaUpgradeJoinExact is the equijoin counterpart: upserts
// refresh payload ciphertexts under the retained e'_S, and the census
// equals JoinDeltaOps exactly.
func TestCacheDeltaUpgradeJoinExact(t *testing.T) {
	const nR, nS, shared = 6, 5, 3
	vR, vS := overlapping(nR, nS, shared)
	records := make([]JoinRecord, len(vS))
	for i, v := range vS {
		records[i] = rec(v)
	}
	src := newScriptedSource(1)
	reg := obs.NewRegistry()
	cache := NewSenderSetCache(0, reg.Cache())

	run := func(name string, ver uint64, recs []JoinRecord) (r, s obs.SessionSnapshot, res *JoinResult) {
		key := cacheKey(wire.ProtoEquijoin)
		key.Version = ver
		cfgS := senderConfig(2, cache, key, 0)
		cfgS.DataVersion = ver
		cfgS.DeltaSource = src
		cfgS.DeltaChurnMax = 1
		r, s = runObservedPair(t, reg, name,
			func(ctx context.Context, conn transport.Conn) (*JoinResult, error) {
				var err error
				res, err = EquijoinReceiver(ctx, testConfig(int64(ver)), conn, vR)
				return res, err
			},
			func(ctx context.Context, conn transport.Conn) (*SenderInfo, error) {
				return EquijoinSender(ctx, cfgS, conn, recs)
			})
		return r, s, res
	}

	r1, s1, _ := run("cold", 1, records)
	if got, want := r1.Counters.ModExps()+s1.Counters.ModExps(), costmodel.JoinOps(nS, nR, shared).Ce; got != want {
		t.Fatalf("cold modexps = %d, want %d", got, want)
	}

	// Churn: insert only-r-0 (new match), update common-0's ext, delete
	// common-1.  nUps=2, nDel=1.
	updated := rec([]byte("common-0"))
	updated.Ext = []byte(fmt.Sprintf("EXT|%-12s", "common-0"))
	src.push(SetDelta{From: 1, To: 2,
		Inserted: []JoinRecord{rec([]byte("only-r-0"))},
		Updated:  []JoinRecord{updated},
		Deleted:  [][]byte{[]byte("common-1")}})
	recs2 := []JoinRecord{rec([]byte("only-r-0")), updated}
	for _, v := range vS {
		if string(v) != "common-0" && string(v) != "common-1" {
			recs2 = append(recs2, rec(v))
		}
	}
	r2, s2, res2 := run("delta", 2, recs2)

	// Intersection after churn: common-0, common-2, only-r-0.
	const nInt2 = 3
	want := costmodel.JoinDeltaOps(len(recs2), nR, 2, 1, nInt2)
	if got := r2.Counters.ModExps() + s2.Counters.ModExps(); got != want.Ce {
		t.Errorf("delta-requery modexps = %d, want %d", got, want.Ce)
	}
	checkHashes(t, want.Ch, r2, s2)
	if got := r2.Counters.PayloadEncrypts + s2.Counters.PayloadEncrypts +
		r2.Counters.PayloadDecrypts + s2.Counters.PayloadDecrypts; got != want.CK {
		t.Errorf("delta-requery payload ops = %d, want %d", got, want.CK)
	}
	if s2.Counters.KeyGens != 0 {
		t.Errorf("upgraded sender drew %d keys, want 0", s2.Counters.KeyGens)
	}
	exts := map[string]string{}
	for _, jm := range res2.Matches {
		exts[string(jm.Value)] = string(jm.Ext)
	}
	if len(exts) != nInt2 || exts["common-0"] != string(updated.Ext) {
		t.Errorf("delta-requery matches = %v", exts)
	}
}
