package core

import (
	"context"
	"testing"

	"minshare/internal/oracle"
	"minshare/internal/transport"
	"minshare/internal/wire"
)

func runNaive(t *testing.T, vR, vS [][]byte) (*NaiveResult, *SenderInfo) {
	t.Helper()
	cfgR, cfgS := testConfig(1), testConfig(2)
	return runPair(t,
		func(ctx context.Context, conn transport.Conn) (*NaiveResult, error) {
			return NaiveHashReceiver(ctx, cfgR, conn, vR)
		},
		func(ctx context.Context, conn transport.Conn) (*SenderInfo, error) {
			return NaiveHashSender(ctx, cfgS, conn, vS)
		})
}

func TestNaiveProtocolIsCorrect(t *testing.T) {
	// Section 3.1: the naive protocol *does* compute the intersection.
	vR, vS := overlapping(6, 9, 3)
	res, _ := runNaive(t, vR, vS)
	if len(res.Values) != 3 {
		t.Errorf("|intersection| = %d, want 3", len(res.Values))
	}
}

// TestNaiveProtocolIsBroken reproduces the attack of Section 3.1: "For
// any arbitrary value v ... R can simply compute h(v) and check whether
// h(v) ∈ X_S" — with a small domain, R recovers V_S completely.
func TestNaiveProtocolIsBroken(t *testing.T) {
	domain := vals("patient-", 50) // the (small) value domain V
	vS := [][]byte{domain[3], domain[17], domain[42]}
	vR := [][]byte{domain[3]} // R legitimately shares only one value

	res, _ := runNaive(t, vR, vS)
	if len(res.Values) != 1 {
		t.Fatalf("legitimate intersection = %d, want 1", len(res.Values))
	}

	// The dictionary attack on R's received view recovers ALL of V_S.
	o := oracle.New(testConfig(1).Group)
	recovered := NaiveDictionaryAttack(o, res.HashedSenderSet, domain)
	if len(recovered) != 3 {
		t.Fatalf("attack recovered %d values, want all 3 of V_S", len(recovered))
	}
	got := map[string]bool{}
	for _, v := range recovered {
		got[string(v)] = true
	}
	for _, v := range vS {
		if !got[string(v)] {
			t.Errorf("attack missed %q", v)
		}
	}
}

// TestRealProtocolResistsDictionaryAttack runs the same attack against
// the *real* intersection protocol's transcript and shows it recovers
// nothing: the commutative encryption of the hashes is exactly what
// Section 3.3 adds over Section 3.1.
func TestRealProtocolResistsDictionaryAttack(t *testing.T) {
	domain := vals("patient-", 50)
	vS := [][]byte{domain[3], domain[17], domain[42]}
	vR := [][]byte{domain[3]}

	cfgR, cfgS := testConfig(1), testConfig(2)
	ctx := context.Background()
	connR, connS := transport.Pipe()
	defer connR.Close()
	tapR := transport.NewTap(connR)

	ch := make(chan error, 1)
	go func() {
		_, err := IntersectionSender(ctx, cfgS, connS, vS)
		ch <- err
	}()
	res, err := IntersectionReceiver(ctx, cfgR, tapR, vR)
	if err != nil {
		t.Fatal(err)
	}
	if err := <-ch; err != nil {
		t.Fatal(err)
	}
	if len(res.Values) != 1 {
		t.Fatalf("intersection = %d, want 1", len(res.Values))
	}

	// Collect every group element R received and attack them all.
	codec := wire.NewCodec(cfgR.Group)
	o := oracle.New(cfgR.Group)
	var recovered int
	for _, frame := range tapR.Received() {
		m, err := codec.Decode(frame)
		if err != nil {
			t.Fatalf("decoding tapped frame: %v", err)
		}
		if el, ok := m.(wire.Elements); ok {
			recovered += len(DictionaryAttackElements(o, el.Elems, domain))
		}
	}
	if recovered != 0 {
		t.Fatalf("dictionary attack recovered %d values from the REAL protocol transcript", recovered)
	}
}

func TestNaiveEmptySets(t *testing.T) {
	res, _ := runNaive(t, nil, nil)
	if len(res.Values) != 0 {
		t.Error("empty naive run produced values")
	}
}
