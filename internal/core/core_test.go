package core

import (
	"context"
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"minshare/internal/group"
	"minshare/internal/transport"
)

// testConfig returns a Config over the small test group with a seeded
// randomness source, suitable for fast deterministic protocol runs.
func testConfig(seed int64) Config {
	return Config{
		Group:       group.TestGroup(),
		Rand:        rand.New(rand.NewSource(seed)),
		Parallelism: 1, // deterministic consumption of the seeded source
	}
}

// vals builds the value set {prefix0, prefix1, ..., prefix(n-1)}.
func vals(prefix string, n int) [][]byte {
	out := make([][]byte, n)
	for i := range out {
		out[i] = []byte(fmt.Sprintf("%s%d", prefix, i))
	}
	return out
}

// overlapping builds two sets of sizes nR and nS sharing exactly `shared`
// values.
func overlapping(nR, nS, shared int) (vR, vS [][]byte) {
	if shared > nR || shared > nS {
		panic("shared larger than a set")
	}
	common := vals("common-", shared)
	vR = append(append([][]byte{}, common...), vals("only-r-", nR-shared)...)
	vS = append(append([][]byte{}, common...), vals("only-s-", nS-shared)...)
	return vR, vS
}

// plaintextIntersection is the reference computation.
func plaintextIntersection(a, b [][]byte) map[string]bool {
	inB := map[string]bool{}
	for _, v := range b {
		inB[string(v)] = true
	}
	out := map[string]bool{}
	for _, v := range a {
		if inB[string(v)] {
			out[string(v)] = true
		}
	}
	return out
}

// runPair executes the receiver and sender halves of a protocol over an
// in-memory pipe and returns both results.
func runPair[R, S any](
	t *testing.T,
	recvFn func(ctx context.Context, conn transport.Conn) (R, error),
	sendFn func(ctx context.Context, conn transport.Conn) (S, error),
) (R, S) {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	connR, connS := transport.Pipe()
	defer connR.Close()

	type sendOut struct {
		res S
		err error
	}
	ch := make(chan sendOut, 1)
	go func() {
		res, err := sendFn(ctx, connS)
		ch <- sendOut{res, err}
	}()
	rRes, rErr := recvFn(ctx, connR)
	sOut := <-ch
	if rErr != nil {
		t.Fatalf("receiver: %v", rErr)
	}
	if sOut.err != nil {
		t.Fatalf("sender: %v", sOut.err)
	}
	return rRes, sOut.res
}

// runPairExpectErr is runPair for failure tests: it returns both errors
// without failing the test.
func runPairExpectErr[R, S any](
	recvFn func(ctx context.Context, conn transport.Conn) (R, error),
	sendFn func(ctx context.Context, conn transport.Conn) (S, error),
) (rErr, sErr error) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	connR, connS := transport.Pipe()
	defer connR.Close()
	defer connS.Close()

	ch := make(chan error, 1)
	go func() {
		_, err := sendFn(ctx, connS)
		if err != nil {
			// Unblock a receiver still waiting on this conn.
			connS.Close()
		}
		ch <- err
	}()
	_, rErr = recvFn(ctx, connR)
	if rErr != nil {
		connR.Close()
	}
	sErr = <-ch
	return rErr, sErr
}

func sortedStrings(bs [][]byte) []string {
	out := make([]string, len(bs))
	for i, b := range bs {
		out[i] = string(b)
	}
	sort.Strings(out)
	return out
}

func TestDedup(t *testing.T) {
	in := [][]byte{[]byte("a"), []byte("b"), []byte("a"), []byte("c"), []byte("b")}
	got := dedup(in)
	if len(got) != 3 {
		t.Fatalf("dedup kept %d values, want 3", len(got))
	}
	want := []string{"a", "b", "c"}
	for i, v := range got {
		if string(v) != want[i] {
			t.Errorf("dedup[%d] = %q, want %q (order must be first-seen)", i, v, want[i])
		}
	}
}

func TestDedupRecords(t *testing.T) {
	recs := []JoinRecord{
		{Value: []byte("a"), Ext: []byte("1")},
		{Value: []byte("b"), Ext: []byte("2")},
		{Value: []byte("a"), Ext: []byte("1")}, // identical dup: fine
	}
	v, e, err := dedupRecords(recs)
	if err != nil || len(v) != 2 || len(e) != 2 {
		t.Fatalf("dedupRecords: %v %v %v", v, e, err)
	}
	recs = append(recs, JoinRecord{Value: []byte("a"), Ext: []byte("DIFFERENT")})
	if _, _, err := dedupRecords(recs); err == nil {
		t.Error("conflicting duplicate accepted")
	}
}

func TestNormalizedDefaults(t *testing.T) {
	var c Config
	n := c.normalized()
	if n.Group == nil || n.Scheme == nil || n.Oracle == nil || n.Cipher == nil || n.Rand == nil {
		t.Error("normalized left nil fields")
	}
	if n.Group.Bits() != 1024 {
		t.Errorf("default group is %d bits, want 1024", n.Group.Bits())
	}
}
