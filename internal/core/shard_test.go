package core

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"reflect"
	"sync"
	"testing"

	"minshare/internal/transport"
)

// shardedConfig is testConfig with a shard count.
func shardedConfig(seed int64, shards, chunk int) Config {
	cfg := testConfig(seed)
	cfg.Shards = shards
	cfg.ChunkSize = chunk
	return cfg
}

func TestShardedIntersectionMatchesUnsharded(t *testing.T) {
	const nR, nS, shared = 23, 19, 9
	vR, vS := overlapping(nR, nS, shared)
	want := plaintextIntersection(vR, vS)

	for _, k := range []int{2, 4, 8} {
		for _, chunk := range []int{0, 5} {
			t.Run(fmt.Sprintf("k=%d chunk=%d", k, chunk), func(t *testing.T) {
				res, info := runPair(t,
					func(ctx context.Context, conn transport.Conn) (*IntersectionResult, error) {
						return IntersectionReceiver(ctx, shardedConfig(1, k, chunk), conn, vR)
					},
					func(ctx context.Context, conn transport.Conn) (*SenderInfo, error) {
						return IntersectionSender(ctx, shardedConfig(2, k, chunk), conn, vS)
					})
				if len(res.Values) != len(want) {
					t.Fatalf("intersection has %d values, want %d", len(res.Values), len(want))
				}
				for _, v := range res.Values {
					if !want[string(v)] {
						t.Errorf("spurious value %q", v)
					}
				}
				// The merge preserves R's input order, like the unsharded run.
				pos := -1
				idx := valueIndex(vR)
				for _, v := range res.Values {
					if p := idx[string(v)]; p <= pos {
						t.Errorf("values out of R's input order at %q", v)
					} else {
						pos = p
					}
				}
				if res.SenderSetSize != nS || info.ReceiverSetSize != nR {
					t.Errorf("sizes: R learned |V_S| = %d (want %d), S learned |V_R| = %d (want %d)",
						res.SenderSetSize, nS, info.ReceiverSetSize, nR)
				}
			})
		}
	}
}

func TestShardedIntersectionSize(t *testing.T) {
	const nR, nS, shared = 17, 21, 6
	vR, vS := overlapping(nR, nS, shared)
	res, info := runPair(t,
		func(ctx context.Context, conn transport.Conn) (*SizeResult, error) {
			return IntersectionSizeReceiver(ctx, shardedConfig(3, 4, 0), conn, vR)
		},
		func(ctx context.Context, conn transport.Conn) (*SenderInfo, error) {
			return IntersectionSizeSender(ctx, shardedConfig(4, 4, 0), conn, vS)
		})
	if res.IntersectionSize != shared {
		t.Errorf("size = %d, want %d", res.IntersectionSize, shared)
	}
	if res.SenderSetSize != nS || info.ReceiverSetSize != nR {
		t.Errorf("sizes: %d/%d, want %d/%d", res.SenderSetSize, info.ReceiverSetSize, nS, nR)
	}
}

func TestShardedEquijoin(t *testing.T) {
	const nR, nS, shared = 15, 13, 5
	vR, vS := overlapping(nR, nS, shared)
	records := make([]JoinRecord, len(vS))
	for i, v := range vS {
		records[i] = JoinRecord{Value: v, Ext: append([]byte("ext-of-"), v...)}
	}
	res, info := runPair(t,
		func(ctx context.Context, conn transport.Conn) (*JoinResult, error) {
			return EquijoinReceiver(ctx, shardedConfig(5, 4, 3), conn, vR)
		},
		func(ctx context.Context, conn transport.Conn) (*SenderInfo, error) {
			return EquijoinSender(ctx, shardedConfig(6, 4, 3), conn, records)
		})
	want := plaintextIntersection(vR, vS)
	if len(res.Matches) != len(want) {
		t.Fatalf("%d matches, want %d", len(res.Matches), len(want))
	}
	for _, m := range res.Matches {
		if !want[string(m.Value)] {
			t.Errorf("spurious match %q", m.Value)
		}
		if wantExt := append([]byte("ext-of-"), m.Value...); !bytes.Equal(m.Ext, wantExt) {
			t.Errorf("match %q carries ext %q, want %q", m.Value, m.Ext, wantExt)
		}
	}
	if res.SenderSetSize != nS || info.ReceiverSetSize != nR {
		t.Errorf("sizes: %d/%d, want %d/%d", res.SenderSetSize, info.ReceiverSetSize, nS, nR)
	}
}

func TestShardedEquijoinSize(t *testing.T) {
	// Multisets with duplicates: dup counts multiply in the join size.
	vR := [][]byte{[]byte("a"), []byte("a"), []byte("b"), []byte("c"), []byte("x")}
	vS := [][]byte{[]byte("a"), []byte("b"), []byte("b"), []byte("b"), []byte("y"), []byte("y")}
	// join on a: 2*1, on b: 1*3 → 5.
	res, info := runPair(t,
		func(ctx context.Context, conn transport.Conn) (*JoinSizeResult, error) {
			return EquijoinSizeReceiver(ctx, shardedConfig(7, 3, 0), conn, vR)
		},
		func(ctx context.Context, conn transport.Conn) (*JoinSizeSenderInfo, error) {
			return EquijoinSizeSender(ctx, shardedConfig(8, 3, 0), conn, vS)
		})
	if res.JoinSize != 5 {
		t.Errorf("join size = %d, want 5", res.JoinSize)
	}
	if res.SenderMultisetSize != len(vS) || info.ReceiverMultisetSize != len(vR) {
		t.Errorf("multiset sizes: %d/%d, want %d/%d", res.SenderMultisetSize, info.ReceiverMultisetSize, len(vS), len(vR))
	}
	// S's distribution: a×1, b×3, y×2 → {1:1, 3:1, 2:1}; R's: a×2, b,c,x ×1 → {2:1, 1:3}.
	if want := map[int]int{1: 1, 2: 1, 3: 1}; !reflect.DeepEqual(res.SenderDuplicateDistribution, want) {
		t.Errorf("sender dup distribution = %v, want %v", res.SenderDuplicateDistribution, want)
	}
	if want := map[int]int{1: 3, 2: 1}; !reflect.DeepEqual(info.ReceiverDuplicateDistribution, want) {
		t.Errorf("receiver dup distribution = %v, want %v", info.ReceiverDuplicateDistribution, want)
	}
}

// TestShardMismatchFailsExplicitly: differently-sharded parties must
// fail the handshake with ErrShardMismatch (or see the peer's abort),
// never run a protocol over inconsistent partitions.
func TestShardMismatchFailsExplicitly(t *testing.T) {
	vR, vS := overlapping(6, 6, 2)
	for _, tc := range []struct {
		name   string
		kR, kS int
	}{
		{"sharded vs unsharded", 4, 0},
		{"unsharded vs sharded", 0, 4},
		{"4 vs 8", 4, 8},
	} {
		t.Run(tc.name, func(t *testing.T) {
			rErr, sErr := runPairExpectErr(
				func(ctx context.Context, conn transport.Conn) (*IntersectionResult, error) {
					return IntersectionReceiver(ctx, shardedConfig(1, tc.kR, 0), conn, vR)
				},
				func(ctx context.Context, conn transport.Conn) (*SenderInfo, error) {
					return IntersectionSender(ctx, shardedConfig(2, tc.kS, 0), conn, vS)
				})
			if rErr == nil || sErr == nil {
				t.Fatalf("mixed shard counts succeeded: receiver err %v, sender err %v", rErr, sErr)
			}
			mismatch := func(err error) bool {
				return errors.Is(err, ErrShardMismatch) || errors.Is(err, ErrPeerFailure)
			}
			if !mismatch(rErr) || !mismatch(sErr) {
				t.Errorf("errors are not explicit shard mismatches: receiver %v, sender %v", rErr, sErr)
			}
			if !errors.Is(rErr, ErrShardMismatch) && !errors.Is(sErr, ErrShardMismatch) {
				t.Errorf("neither side reported ErrShardMismatch: receiver %v, sender %v", rErr, sErr)
			}
		})
	}
}

func TestShardCountOutOfRange(t *testing.T) {
	vR, _ := overlapping(4, 4, 1)
	cfg := shardedConfig(1, transport.MaxShards+1, 0)
	a, b := transport.Pipe()
	defer a.Close()
	defer b.Close()
	if _, err := IntersectionReceiver(context.Background(), cfg, a, vR); err == nil {
		t.Error("shard count beyond transport.MaxShards accepted")
	}
}

// recordingConn taps every frame crossing a Conn, for transcript
// byte-identity checks.
type recordingConn struct {
	transport.Conn
	mu     sync.Mutex
	frames [][]byte
}

func (r *recordingConn) Send(ctx context.Context, frame []byte) error {
	r.mu.Lock()
	r.frames = append(r.frames, append([]byte(nil), frame...))
	r.mu.Unlock()
	return r.Conn.Send(ctx, frame)
}

func (r *recordingConn) transcript() [][]byte {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.frames
}

// TestShardsOneByteIdenticalTranscript pins the k=1 compatibility
// guarantee end to end: a session configured with Shards = 1 (or 0)
// produces exactly the pre-shard wire transcript, frame for frame and
// byte for byte.
func TestShardsOneByteIdenticalTranscript(t *testing.T) {
	const nR, nS, shared = 9, 7, 3
	vR, vS := overlapping(nR, nS, shared)

	capture := func(shards int) (recvFrames, sendFrames [][]byte) {
		connR, connS := transport.Pipe()
		defer connR.Close()
		rc := &recordingConn{Conn: connR}
		sc := &recordingConn{Conn: connS}
		cfgR, cfgS := testConfig(11), testConfig(12)
		cfgR.Shards, cfgS.Shards = shards, shards
		ctx := context.Background()
		done := make(chan error, 1)
		go func() {
			_, err := IntersectionSender(ctx, cfgS, sc, vS)
			done <- err
		}()
		if _, err := IntersectionReceiver(ctx, cfgR, rc, vR); err != nil {
			t.Fatal(err)
		}
		if err := <-done; err != nil {
			t.Fatal(err)
		}
		return rc.transcript(), sc.transcript()
	}

	r0, s0 := capture(0)
	r1, s1 := capture(1)
	for _, side := range []struct {
		name string
		a, b [][]byte
	}{{"receiver", r0, r1}, {"sender", s0, s1}} {
		if len(side.a) != len(side.b) {
			t.Fatalf("%s: %d frames with Shards=0 vs %d with Shards=1", side.name, len(side.a), len(side.b))
		}
		for i := range side.a {
			if !bytes.Equal(side.a[i], side.b[i]) {
				t.Errorf("%s frame %d differs between Shards=0 and Shards=1\n got %x\nwant %x",
					side.name, i, side.b[i], side.a[i])
			}
		}
	}
}

// TestShardPartitionDeterministic: both parties must bucket a value
// identically, and every value must land in exactly one bucket.
func TestShardPartitionDeterministic(t *testing.T) {
	ctx := context.Background()
	s1 := newSession(ctx, testConfig(1), nil)
	s2 := newSession(ctx, testConfig(99), nil)

	values := vals("v-", 64)
	const k = 8
	b1, idx1 := s1.shardPartition(values, k)
	b2, _ := s2.shardPartition(values, k)

	total := 0
	for i := range b1 {
		total += len(b1[i])
		if len(b1[i]) != len(b2[i]) {
			t.Fatalf("shard %d: parties disagree on bucket size (%d vs %d)", i, len(b1[i]), len(b2[i]))
		}
		for j := range b1[i] {
			if !bytes.Equal(b1[i][j], b2[i][j]) {
				t.Fatalf("shard %d entry %d: parties disagree", i, j)
			}
			if !bytes.Equal(values[idx1[i][j]], b1[i][j]) {
				t.Fatalf("shard %d entry %d: index map broken", i, j)
			}
		}
	}
	if total != len(values) {
		t.Errorf("buckets cover %d values, want %d", total, len(values))
	}
}
