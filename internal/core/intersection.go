package core

import (
	"context"
	"fmt"
	"math/big"

	"minshare/internal/commutative"
	"minshare/internal/obs"
	"minshare/internal/transport"
	"minshare/internal/wire"
)

// IntersectionResult is what party R learns from the intersection
// protocol: the set V_S ∩ V_R and the size |V_S| — exactly the contract
// of Section 2.2.1 — and nothing else.
type IntersectionResult struct {
	// Values is V_S ∩ V_R, in R's input order.
	Values [][]byte
	// SenderSetSize is |V_S| (part of the permitted information I).
	SenderSetSize int
	// SenderDataVersion is the data version S announced in its
	// handshake header (0 if S is unversioned).  A receiver that caches
	// results can compare it across runs to detect a stale counterpart.
	SenderDataVersion uint64
}

// SenderInfo is what party S learns from a protocol run: only |V_R|.
type SenderInfo struct {
	// ReceiverSetSize is |V_R|.
	ReceiverSetSize int
}

// IntersectionReceiver runs party R of the intersection protocol of
// Section 3.3 over conn.  values may contain duplicates; the distinct
// set V_R is used, as the paper prescribes.
//
// Protocol steps executed here (numbering from Section 3.3):
//
//	1-2. hash V_R, draw e_R, compute Y_R = f_eR(h(V_R))
//	3.   send Y_R to S, reordered lexicographically
//	5.   encrypt each y ∈ Y_S with e_R, giving Z_S; pair the aligned
//	     replies ⟨f_eR(h(v)), f_eS(f_eR(h(v)))⟩ back with their v
//	6.   select all v ∈ V_R whose double encryption lands in Z_S
func IntersectionReceiver(ctx context.Context, cfg Config, conn transport.Conn, values [][]byte) (*IntersectionResult, error) {
	if cfg.Shards > 1 {
		return shardedIntersectionReceiver(ctx, cfg, conn, values)
	}
	s := newSession(ctx, cfg, conn)
	st, err := s.intersectionReceiverRun(ctx, dedup(values))
	if err != nil {
		return nil, err
	}
	return st.result(s.peerVersion), nil
}

// intersectionState is the receiver-side state of one intersection run
// that a standing query retains: everything needed to fold a pushed
// delta into the result for O(churn) work.  zSet holds the
// double-encrypted sender values f_eR(f_eS(h(v))); doubles[pos] is the
// double encryption of R's own value at sorted position pos, and order
// maps sorted positions back to input indices.
type intersectionState struct {
	vR       [][]byte
	eR       *commutative.Key
	order    []int
	doubles  []*big.Int
	zSet     map[string]struct{}
	peerSize int
	ky       *keyer
}

// result evaluates the membership test over the current zSet.
func (st *intersectionState) result(peerVersion uint64) *IntersectionResult {
	inIntersection := make([]bool, len(st.vR))
	for pos, idx := range st.order {
		if _, hit := st.zSet[st.ky.key(st.doubles[pos])]; hit {
			inIntersection[idx] = true
		}
	}
	res := &IntersectionResult{SenderSetSize: st.peerSize, SenderDataVersion: peerVersion}
	for i, v := range st.vR {
		if inIntersection[i] {
			res.Values = append(res.Values, v)
		}
	}
	return res
}

// intersectionReceiverRun executes the single-pipeline receiver body
// and returns the retained state (the exported entry point derives the
// result and drops it; the standing variant keeps it live).
func (s *session) intersectionReceiverRun(ctx context.Context, vR [][]byte) (*intersectionState, error) {
	peerSize, err := s.handshake(ctx, wire.ProtoIntersection, len(vR), true)
	if err != nil {
		return nil, err
	}

	// Step 1: hash the set (with the §3.2.2 collision check) and draw e_R.
	sp := obs.StartSpan(ctx, "hash-to-group")
	xR, err := s.hashSet(vR)
	sp.End()
	if err != nil {
		return nil, s.abort(ctx, err)
	}
	eR, err := s.cfg.Scheme.GenerateKey(s.cfg.Rand)
	if err != nil {
		return nil, s.abort(ctx, fmt.Errorf("core: generating e_R: %w", err))
	}

	// Step 2: Y_R = f_eR(h(V_R)).
	sp = obs.StartSpan(ctx, "bulk-encrypt")
	yR, err := s.encryptSet(ctx, eR, xR)
	sp.End()
	if err != nil {
		return nil, s.abort(ctx, err)
	}

	// Step 3: ship Y_R sorted.  Remember which value sits at each sorted
	// position so the aligned reply of step 4(b) can be matched back.
	sp = obs.StartSpan(ctx, "exchange")
	order := sortIndicesByElem(yR)
	sortedYR := make([]*big.Int, len(yR))
	for pos, idx := range order {
		sortedYR[pos] = yR[idx]
	}
	if err := s.sendElems(ctx, sortedYR); err != nil {
		sp.End()
		return nil, err
	}

	// Steps 4(a)+5 pipelined: receive Y_S (sorted, |V_S| elements) and
	// compute Z_S = f_eR(Y_S), each chunk re-encrypted while the next is
	// in flight.
	_, zS, err := s.recvReencryptStream(ctx, eR, peerSize, "Y_S", true)
	if err != nil {
		sp.End()
		return nil, err
	}

	// Step 4(b): receive f_eS(y) for each y ∈ Y_R, aligned with the
	// sorted order of step 3 (S "does not retransmit the y's back but
	// just preserves the original order" — the Section 6.1 optimization).
	doubles, err := s.recvElems(ctx, len(vR), "f_eS(Y_R)", false)
	sp.End()
	if err != nil {
		return nil, err
	}

	sp = obs.StartSpan(ctx, "match")
	defer sp.End()
	ky := s.newKeyer()
	zSet := make(map[string]struct{}, len(zS))
	for _, z := range zS {
		zSet[ky.key(z)] = struct{}{}
	}

	// Step 6 (v ∈ V_S ∩ V_R iff f_eS(f_eR(h(v))) ∈ Z_S) is evaluated by
	// result() over the retained state.
	return &intersectionState{
		vR:       vR,
		eR:       eR,
		order:    order,
		doubles:  doubles,
		zSet:     zSet,
		peerSize: peerSize,
		ky:       ky,
	}, nil
}

// IntersectionSender runs party S of the intersection protocol of
// Section 3.3 over conn.  S learns only |V_R|.
func IntersectionSender(ctx context.Context, cfg Config, conn transport.Conn, values [][]byte) (*SenderInfo, error) {
	if cfg.Shards > 1 {
		return shardedIntersectionSender(ctx, cfg, conn, values)
	}
	s := newSession(ctx, cfg, conn)
	info, _, _, err := s.intersectionSenderRun(ctx, dedup(values))
	return info, err
}

// intersectionSenderRun executes the single-pipeline sender body and
// additionally returns e_S and the sorted encrypted set so a standing
// sender can keep serving deltas under the pinned key.
func (s *session) intersectionSenderRun(ctx context.Context, vS [][]byte) (*SenderInfo, *commutative.Key, []*big.Int, error) {
	peerSize, err := s.handshake(ctx, wire.ProtoIntersection, len(vS), false)
	if err != nil {
		return nil, nil, nil, err
	}

	// Step 1-2: hash V_S, draw e_S, compute Y_S — or, on a cache hit,
	// replay the whole phase (hashing, key draw, bulk exponentiation,
	// lexicographic reordering) from an earlier run against this peer.
	eS, sortedYS, err := s.ownEncryptedSet(ctx, vS)
	if err != nil {
		return nil, nil, nil, err
	}

	// Step 3 (peer) + step 4(a): receive Y_R and ship Y_S reordered
	// lexicographically.  The two vectors are independent, so streaming
	// mode runs the halves full-duplex; legacy mode keeps the lock-step
	// recv-then-send order.
	sp := obs.StartSpan(ctx, "exchange")
	var yR []*big.Int
	err = s.duplex(ctx, true,
		func(ctx context.Context) error { return s.sendElems(ctx, sortedYS) },
		func(ctx context.Context) error {
			var rerr error
			yR, rerr = s.recvElems(ctx, peerSize, "Y_R", true)
			return rerr
		})
	sp.End()
	if err != nil {
		return nil, nil, nil, err
	}

	// Step 4(b): encrypt each y ∈ Y_R with e_S and send back, preserving
	// the received order so R can match without the y's being repeated —
	// chunk i on the wire while chunk i+1 is still exponentiating.
	if _, err := s.streamEncryptSend(ctx, eS, yR); err != nil {
		return nil, nil, nil, err
	}
	return &SenderInfo{ReceiverSetSize: peerSize}, eS, sortedYS, nil
}

// sortIndicesByElem returns a permutation perm such that
// elems[perm[0]] <= elems[perm[1]] <= ... in numeric (= wire
// lexicographic) order.
func sortIndicesByElem(elems []*big.Int) []int {
	perm := make([]int, len(elems))
	for i := range perm {
		perm[i] = i
	}
	sortSlice(perm, func(a, b int) bool { return elems[a].Cmp(elems[b]) < 0 })
	return perm
}
