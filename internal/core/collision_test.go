package core

import (
	"context"
	"errors"
	"math/big"
	"testing"

	"minshare/internal/group"
	"minshare/internal/transport"
	"minshare/internal/wire"
)

// tinyGroupConfig returns a config over QR(23) — 11 elements, so hash
// collisions among a dozen values are essentially certain.  This
// exercises the Section 3.2.2 pre-flight collision check.
func tinyGroupConfig(seed int64) Config {
	cfg := testConfig(seed)
	cfg.Group = group.MustNew(big.NewInt(23))
	return cfg
}

func TestHashCollisionDetectedBeforeSending(t *testing.T) {
	cfg := tinyGroupConfig(1)
	values := vals("v", 20) // 20 values into an 11-element domain

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	connR, connS := transport.Pipe()
	defer connR.Close()
	tap := transport.NewTap(connR)

	done := make(chan struct{})
	go func() {
		// A peer that would answer the handshake, so the failure we see
		// comes from the collision check, not a hung handshake.
		defer close(done)
		m := newMalicious(tinyGroupConfig(2), connS)
		if m.recv(ctx, t) == nil {
			return
		}
		m.send(ctx, t, m.header(1))
		m.recv(ctx, t) // either the abort ErrorMsg or nothing
	}()

	_, err := IntersectionReceiver(ctx, cfg, tap, values)
	if !errors.Is(err, ErrHashCollision) {
		t.Fatalf("err = %v, want ErrHashCollision", err)
	}
	// Crucially, no element vector left the machine — only the header
	// and the abort notice.
	for _, frame := range tap.Sent() {
		codec := newSession(ctx, cfg, nil).codec
		m, decErr := codec.Decode(frame)
		if decErr != nil {
			continue
		}
		if m.Kind() == 2 /* wire.KindElements */ {
			t.Fatal("encrypted set was sent despite a local hash collision")
		}
	}
	cancel()
	<-done
}

func TestHashCollisionAllProtocols(t *testing.T) {
	values := vals("v", 20)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	run := func(name string, proto wire.Protocol, f func(conn transport.Conn) error) {
		connR, connS := transport.Pipe()
		defer connR.Close()
		go func() {
			m := newMalicious(tinyGroupConfig(2), connS)
			if m.recv(ctx, t) == nil {
				return
			}
			hdr := m.header(1)
			hdr.Protocol = proto
			m.send(ctx, t, hdr)
		}()
		if err := f(connR); !errors.Is(err, ErrHashCollision) {
			t.Errorf("%s: err = %v, want ErrHashCollision", name, err)
		}
	}
	run("intersection-size", wire.ProtoIntersectionSize, func(conn transport.Conn) error {
		_, err := IntersectionSizeReceiver(ctx, tinyGroupConfig(1), conn, values)
		return err
	})
	run("equijoin-size", wire.ProtoEquijoinSize, func(conn transport.Conn) error {
		_, err := EquijoinSizeReceiver(ctx, tinyGroupConfig(1), conn, values)
		return err
	})
	run("equijoin", wire.ProtoEquijoin, func(conn transport.Conn) error {
		_, err := EquijoinReceiver(ctx, tinyGroupConfig(1), conn, values)
		return err
	})
}

// TestThirdPartyPeerFailurePropagates: if party B dies, party A and the
// analyst report errors instead of hanging or fabricating counts.
func TestThirdPartyPeerFailurePropagates(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	abA, abB := transport.Pipe()
	atA, atT := transport.Pipe()
	_, btT := transport.Pipe()
	defer abA.Close()
	defer atA.Close()

	// Party B: immediately closes its peer connection.
	abB.Close()

	errA := make(chan error, 1)
	go func() {
		_, err := ThirdPartyPartyA(ctx, testConfig(1), abA, atA, vals("a", 3))
		errA <- err
	}()
	analystErr := make(chan error, 1)
	go func() {
		_, err := ThirdPartyAnalyst(ctx, testConfig(3), atT, btT)
		analystErr <- err
	}()

	if err := <-errA; err == nil {
		t.Error("party A succeeded despite dead peer")
	}
	cancel() // release the analyst, which never hears from either side
	if err := <-analystErr; err == nil {
		t.Error("analyst succeeded despite dead parties")
	}
}

// TestSenderSideCollisionAborts: the sender detects collisions in ITS
// set too and notifies the receiver.
func TestSenderSideCollisionAborts(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	connR, connS := transport.Pipe()
	defer connR.Close()

	sErr := make(chan error, 1)
	go func() {
		_, err := IntersectionSizeSender(ctx, tinyGroupConfig(2), connS, vals("v", 20))
		sErr <- err
	}()
	// The receiver has a clean small set that cannot collide.
	_, rErr := IntersectionSizeReceiver(ctx, tinyGroupConfig(1), connR, vals("x", 1))
	if err := <-sErr; !errors.Is(err, ErrHashCollision) {
		t.Errorf("sender err = %v, want ErrHashCollision", err)
	}
	if rErr == nil {
		t.Error("receiver succeeded despite sender abort")
	}
}
