package core

import (
	"context"
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"io"
	"sync"

	"minshare/internal/obs"
	"minshare/internal/transport"
	"minshare/internal/wire"
)

// Shard-parallel protocol execution.
//
// The paper's application estimates (Section 6.2) assume "P processors
// that we can utilize in parallel"; this file supplies the distribution
// mechanism.  The random oracle h doubles as a partitioner: both
// parties split their value sets into k buckets by a shared hash prefix
// of h(v), so V_S ∩ V_R = ∪_i (V_S,i ∩ V_R,i) exactly — a value's
// bucket depends only on h(v), which both parties compute identically —
// and one logical run becomes k independent sub-protocols.  The
// sub-sessions run concurrently over a single connection, multiplexed
// by transport.Mux with per-shard flow control, and a coordinator
// merges the sub-results back into the unsharded result shape.
//
// Wire compatibility: the outer handshake announces the shard count
// (wire.Header.Shards); each sub-session then runs the classic
// protocol, byte-identical to an unsharded run of its bucket, inside
// its mux stream.  A session with Shards <= 1 never reaches this file
// and is byte-identical to pre-shard releases end to end.
//
// Leakage: each sub-handshake announces that bucket's size, so the
// peer learns the per-shard split of the set — the only information a
// sharded run reveals beyond its unsharded counterpart.  The split is
// a uniform multinomial over k bins (the partitioner hashes through
// SHA-256), and leakage.ShardSplit quantifies the bits it carries.
//
// Failure atomicity: one failing shard cancels every sibling via the
// fan-out context, the mux poisons all streams on any transport error,
// and the coordinator returns only an error — never a partial merge.

// shardOf maps one hashed element to its bucket.  The prefix is taken
// from SHA-256 of the element's fixed-width wire encoding rather than
// from h(v)'s own top bits: h(v) is uniform on [0, p) (or on the curve
// encoding), so its raw top bits are biased wherever the modulus is not
// a power of two, and the paper's oracle already models h as random —
// deriving the prefix through a hash keeps every bucket binomially
// balanced regardless of the group.
func shardOf(buf []byte, k int) int {
	sum := sha256.Sum256(buf)
	return int(binary.BigEndian.Uint64(sum[:8]) % uint64(k))
}

// shardPartition splits values into k buckets keyed by the shard of
// h(v), returning for each bucket the values and their indices in the
// input slice (for order-preserving merges).  Hashing goes through the
// session's (observed) oracle, so the partition pass is visible to the
// cost accounting: a sharded run pays each value's oracle hash twice,
// once here and once inside its sub-protocol.
func (s *session) shardPartition(values [][]byte, k int) (buckets [][][]byte, indices [][]int) {
	xs := s.cfg.Oracle.HashAll(values)
	buckets = make([][][]byte, k)
	indices = make([][]int, k)
	buf := make([]byte, s.codec.ElemLen())
	for i, x := range xs {
		x.FillBytes(buf)
		sh := shardOf(buf, k)
		buckets[sh] = append(buckets[sh], values[i])
		indices[sh] = append(indices[sh], i)
	}
	return buckets, indices
}

// lockedReader serializes a shared randomness source across the
// concurrent sub-sessions.  crypto/rand.Reader is already safe, so the
// wrapper is only applied to caller-supplied sources (seeded test
// streams), which are typically not.
type lockedReader struct {
	mu sync.Mutex
	r  io.Reader
}

func (l *lockedReader) Read(p []byte) (int, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.r.Read(p)
}

// shardBaseConfig prepares the template config the sub-sessions derive
// from: sub-runs are themselves unsharded, and a shared Rand must
// tolerate concurrent key draws.
func shardBaseConfig(cfg Config) Config {
	cfg.Shards = 0
	if cfg.Rand != nil {
		cfg.Rand = &lockedReader{r: cfg.Rand}
	}
	return cfg
}

// shardConfig specializes the template for bucket i of k.  The cache
// key gains the shard coordinates so cached sender state replays only
// for the same partition of the same partitioning (see SetCacheKey).
func shardConfig(cfg Config, i, k int) Config {
	cfg.CacheKey.Shard = uint8(i)
	cfg.CacheKey.Shards = uint8(k)
	return cfg
}

// checkShardCount validates a coordinator's configured shard count
// before any traffic is exchanged.
func checkShardCount(k int) error {
	if k < 2 || k > transport.MaxShards {
		return fmt.Errorf("core: shard count %d out of range [2, %d]", k, transport.MaxShards)
	}
	return nil
}

// shardFanout runs one sub-protocol per shard concurrently and gathers
// their results.  The first failure cancels every sibling — sub-session
// sends and receives observe the fan-out context, and the failing
// shard's own abort has already notified the peer's counterpart, whose
// coordinator cancels symmetrically — so a sharded session fails
// atomically on both sides.  shardFanout returns either all k results
// or the root-cause error, never a mix.
func shardFanout[R any](ctx context.Context, k int, run func(ctx context.Context, i int) (R, error)) ([]R, error) {
	fctx, cancel := context.WithCancel(ctx)
	defer cancel()
	results := make([]R, k)
	var (
		wg       sync.WaitGroup
		failOnce sync.Once
		firstErr error
	)
	wg.Add(k)
	for i := 0; i < k; i++ {
		go func(i int) {
			defer wg.Done()
			sp := obs.StartSpan(fctx, fmt.Sprintf("shard-%d", i))
			defer sp.End()
			r, err := run(fctx, i)
			if err != nil {
				// First error wins: later failures are usually the
				// cancellation echo of this one.
				failOnce.Do(func() {
					firstErr = err
					cancel()
				})
				return
			}
			results[i] = r
		}(i)
	}
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}
	return results, nil
}

// shardSession opens a sharded run: outer handshake on the raw conn
// (announcing the total size and the shard count), then the mux.  The
// returned mux is started; the caller must Stop it.  No frame may touch
// the raw conn after this returns.
func shardSession(ctx context.Context, outer *session, proto wire.Protocol, mySize int, sendFirst bool, conn transport.Conn) (peerTotal int, mux *transport.Mux, err error) {
	peerTotal, err = outer.handshake(ctx, proto, mySize, sendFirst)
	if err != nil {
		return 0, nil, err
	}
	mux, err = transport.NewMux(conn, outer.cfg.Shards)
	if err != nil {
		return 0, nil, outer.abort(ctx, err)
	}
	mux.Start()
	return peerTotal, mux, nil
}

// checkShardSizeSum verifies that the per-shard sizes the peer's
// sub-handshakes announced add up to the total its outer handshake
// declared.  A mismatch means the peer partitioned a different set
// than it announced (or partitioned dishonestly); the session fails
// rather than returning a result built from inconsistent claims.
func checkShardSizeSum(sizes []int, total int) error {
	sum := 0
	for _, n := range sizes {
		sum += n
	}
	if sum != total {
		return fmt.Errorf("%w: peer shard sizes sum to %d, its handshake announced %d", ErrMalformedReply, sum, total)
	}
	return nil
}

// valueIndex maps each (distinct) value to its position in vs.
func valueIndex(vs [][]byte) map[string]int {
	idx := make(map[string]int, len(vs))
	for i, v := range vs {
		idx[string(v)] = i
	}
	return idx
}

// --- Intersection ---

func shardedIntersectionReceiver(ctx context.Context, cfg Config, conn transport.Conn, values [][]byte) (*IntersectionResult, error) {
	if err := checkShardCount(cfg.Shards); err != nil {
		return nil, err
	}
	outer := newSession(ctx, cfg, conn)
	vR := dedup(values)
	peerTotal, mux, err := shardSession(ctx, outer, wire.ProtoIntersection, len(vR), true, conn)
	if err != nil {
		return nil, err
	}
	defer mux.Stop()
	buckets, _ := outer.shardPartition(vR, cfg.Shards)
	base := shardBaseConfig(cfg)
	results, err := shardFanout(ctx, cfg.Shards, func(ctx context.Context, i int) (*IntersectionResult, error) {
		return IntersectionReceiver(ctx, shardConfig(base, i, cfg.Shards), mux.Shard(i), buckets[i])
	})
	if err != nil {
		return nil, err
	}
	sizes := make([]int, len(results))
	for i, r := range results {
		sizes[i] = r.SenderSetSize
	}
	if err := checkShardSizeSum(sizes, peerTotal); err != nil {
		return nil, err
	}

	// Merge back into R's input order: buckets partition vR, so each
	// match names a unique input position.
	idx := valueIndex(vR)
	matched := make([]bool, len(vR))
	for _, r := range results {
		for _, v := range r.Values {
			matched[idx[string(v)]] = true
		}
	}
	res := &IntersectionResult{SenderSetSize: peerTotal, SenderDataVersion: outer.peerVersion}
	for i, v := range vR {
		if matched[i] {
			res.Values = append(res.Values, v)
		}
	}
	return res, nil
}

func shardedIntersectionSender(ctx context.Context, cfg Config, conn transport.Conn, values [][]byte) (*SenderInfo, error) {
	return shardedSetSender(ctx, cfg, conn, values, wire.ProtoIntersection, IntersectionSender)
}

// shardedSetSender is the shared sender-side coordinator for the three
// protocols whose sender learns only |V_R|: partition the (deduplicated)
// own set, fan out, and verify the peer's per-shard sizes against its
// announced total.
func shardedSetSender(ctx context.Context, cfg Config, conn transport.Conn, values [][]byte, proto wire.Protocol, sender func(context.Context, Config, transport.Conn, [][]byte) (*SenderInfo, error)) (*SenderInfo, error) {
	if err := checkShardCount(cfg.Shards); err != nil {
		return nil, err
	}
	outer := newSession(ctx, cfg, conn)
	vS := dedup(values)
	peerTotal, mux, err := shardSession(ctx, outer, proto, len(vS), false, conn)
	if err != nil {
		return nil, err
	}
	defer mux.Stop()
	buckets, _ := outer.shardPartition(vS, cfg.Shards)
	base := shardBaseConfig(cfg)
	results, err := shardFanout(ctx, cfg.Shards, func(ctx context.Context, i int) (*SenderInfo, error) {
		return sender(ctx, shardConfig(base, i, cfg.Shards), mux.Shard(i), buckets[i])
	})
	if err != nil {
		return nil, err
	}
	sizes := make([]int, len(results))
	for i, r := range results {
		sizes[i] = r.ReceiverSetSize
	}
	if err := checkShardSizeSum(sizes, peerTotal); err != nil {
		return nil, err
	}
	return &SenderInfo{ReceiverSetSize: peerTotal}, nil
}

// --- Intersection size ---

func shardedIntersectionSizeReceiver(ctx context.Context, cfg Config, conn transport.Conn, values [][]byte) (*SizeResult, error) {
	if err := checkShardCount(cfg.Shards); err != nil {
		return nil, err
	}
	outer := newSession(ctx, cfg, conn)
	vR := dedup(values)
	peerTotal, mux, err := shardSession(ctx, outer, wire.ProtoIntersectionSize, len(vR), true, conn)
	if err != nil {
		return nil, err
	}
	defer mux.Stop()
	buckets, _ := outer.shardPartition(vR, cfg.Shards)
	base := shardBaseConfig(cfg)
	results, err := shardFanout(ctx, cfg.Shards, func(ctx context.Context, i int) (*SizeResult, error) {
		return IntersectionSizeReceiver(ctx, shardConfig(base, i, cfg.Shards), mux.Shard(i), buckets[i])
	})
	if err != nil {
		return nil, err
	}
	sizes := make([]int, len(results))
	size := 0
	for i, r := range results {
		sizes[i] = r.SenderSetSize
		size += r.IntersectionSize
	}
	if err := checkShardSizeSum(sizes, peerTotal); err != nil {
		return nil, err
	}
	return &SizeResult{IntersectionSize: size, SenderSetSize: peerTotal, SenderDataVersion: outer.peerVersion}, nil
}

func shardedIntersectionSizeSender(ctx context.Context, cfg Config, conn transport.Conn, values [][]byte) (*SenderInfo, error) {
	return shardedSetSender(ctx, cfg, conn, values, wire.ProtoIntersectionSize, IntersectionSizeSender)
}

// --- Equijoin ---

func shardedEquijoinReceiver(ctx context.Context, cfg Config, conn transport.Conn, values [][]byte) (*JoinResult, error) {
	if err := checkShardCount(cfg.Shards); err != nil {
		return nil, err
	}
	outer := newSession(ctx, cfg, conn)
	vR := dedup(values)
	peerTotal, mux, err := shardSession(ctx, outer, wire.ProtoEquijoin, len(vR), true, conn)
	if err != nil {
		return nil, err
	}
	defer mux.Stop()
	buckets, _ := outer.shardPartition(vR, cfg.Shards)
	base := shardBaseConfig(cfg)
	results, err := shardFanout(ctx, cfg.Shards, func(ctx context.Context, i int) (*JoinResult, error) {
		return EquijoinReceiver(ctx, shardConfig(base, i, cfg.Shards), mux.Shard(i), buckets[i])
	})
	if err != nil {
		return nil, err
	}
	sizes := make([]int, len(results))
	for i, r := range results {
		sizes[i] = r.SenderSetSize
	}
	if err := checkShardSizeSum(sizes, peerTotal); err != nil {
		return nil, err
	}

	idx := valueIndex(vR)
	matched := make([]*JoinMatch, len(vR))
	for _, r := range results {
		for j := range r.Matches {
			m := r.Matches[j]
			matched[idx[string(m.Value)]] = &m
		}
	}
	res := &JoinResult{SenderSetSize: peerTotal, SenderDataVersion: outer.peerVersion}
	for _, m := range matched {
		if m != nil {
			res.Matches = append(res.Matches, *m)
		}
	}
	return res, nil
}

func shardedEquijoinSender(ctx context.Context, cfg Config, conn transport.Conn, records []JoinRecord) (*SenderInfo, error) {
	if err := checkShardCount(cfg.Shards); err != nil {
		return nil, err
	}
	// Dedup (and detect conflicting payloads) before partitioning so the
	// outer handshake announces |V_S| of the same set the buckets cover.
	vS, exts, err := dedupRecords(records)
	if err != nil {
		return nil, err
	}
	outer := newSession(ctx, cfg, conn)
	peerTotal, mux, err := shardSession(ctx, outer, wire.ProtoEquijoin, len(vS), false, conn)
	if err != nil {
		return nil, err
	}
	defer mux.Stop()
	buckets, indices := outer.shardPartition(vS, cfg.Shards)
	recBuckets := make([][]JoinRecord, cfg.Shards)
	for sh := range buckets {
		recs := make([]JoinRecord, len(buckets[sh]))
		for j, i := range indices[sh] {
			recs[j] = JoinRecord{Value: vS[i], Ext: exts[i]}
		}
		recBuckets[sh] = recs
	}
	base := shardBaseConfig(cfg)
	results, err := shardFanout(ctx, cfg.Shards, func(ctx context.Context, i int) (*SenderInfo, error) {
		return EquijoinSender(ctx, shardConfig(base, i, cfg.Shards), mux.Shard(i), recBuckets[i])
	})
	if err != nil {
		return nil, err
	}
	sizes := make([]int, len(results))
	for i, r := range results {
		sizes[i] = r.ReceiverSetSize
	}
	if err := checkShardSizeSum(sizes, peerTotal); err != nil {
		return nil, err
	}
	return &SenderInfo{ReceiverSetSize: peerTotal}, nil
}

// --- Equijoin size (multisets) ---

func shardedEquijoinSizeReceiver(ctx context.Context, cfg Config, conn transport.Conn, values [][]byte) (*JoinSizeResult, error) {
	if err := checkShardCount(cfg.Shards); err != nil {
		return nil, err
	}
	outer := newSession(ctx, cfg, conn)
	// Multiset protocol: no dedup — every copy of a value partitions to
	// the same bucket, so each bucket is the full sub-multiset.
	peerTotal, mux, err := shardSession(ctx, outer, wire.ProtoEquijoinSize, len(values), true, conn)
	if err != nil {
		return nil, err
	}
	defer mux.Stop()
	buckets, _ := outer.shardPartition(values, cfg.Shards)
	base := shardBaseConfig(cfg)
	results, err := shardFanout(ctx, cfg.Shards, func(ctx context.Context, i int) (*JoinSizeResult, error) {
		return EquijoinSizeReceiver(ctx, shardConfig(base, i, cfg.Shards), mux.Shard(i), buckets[i])
	})
	if err != nil {
		return nil, err
	}
	sizes := make([]int, len(results))
	res := &JoinSizeResult{
		SenderMultisetSize:          peerTotal,
		SenderDuplicateDistribution: make(map[int]int),
		SenderDataVersion:           outer.peerVersion,
	}
	for i, r := range results {
		sizes[i] = r.SenderMultisetSize
		res.JoinSize += r.JoinSize
		// Distinct values never span shards, so the per-shard duplicate
		// distributions are disjoint and merge by addition.
		for d, n := range r.SenderDuplicateDistribution {
			res.SenderDuplicateDistribution[d] += n
		}
	}
	if err := checkShardSizeSum(sizes, peerTotal); err != nil {
		return nil, err
	}
	return res, nil
}

func shardedEquijoinSizeSender(ctx context.Context, cfg Config, conn transport.Conn, values [][]byte) (*JoinSizeSenderInfo, error) {
	if err := checkShardCount(cfg.Shards); err != nil {
		return nil, err
	}
	outer := newSession(ctx, cfg, conn)
	peerTotal, mux, err := shardSession(ctx, outer, wire.ProtoEquijoinSize, len(values), false, conn)
	if err != nil {
		return nil, err
	}
	defer mux.Stop()
	buckets, _ := outer.shardPartition(values, cfg.Shards)
	base := shardBaseConfig(cfg)
	results, err := shardFanout(ctx, cfg.Shards, func(ctx context.Context, i int) (*JoinSizeSenderInfo, error) {
		return EquijoinSizeSender(ctx, shardConfig(base, i, cfg.Shards), mux.Shard(i), buckets[i])
	})
	if err != nil {
		return nil, err
	}
	sizes := make([]int, len(results))
	info := &JoinSizeSenderInfo{
		ReceiverMultisetSize:          peerTotal,
		ReceiverDuplicateDistribution: make(map[int]int),
	}
	for i, r := range results {
		sizes[i] = r.ReceiverMultisetSize
		for d, n := range r.ReceiverDuplicateDistribution {
			info.ReceiverDuplicateDistribution[d] += n
		}
	}
	if err := checkShardSizeSum(sizes, peerTotal); err != nil {
		return nil, err
	}
	return info, nil
}
