package core

import (
	"context"
	"errors"
	"reflect"
	"testing"
	"testing/quick"

	"minshare/internal/group"
	"minshare/internal/transport"
)

func runIntersection(t *testing.T, vR, vS [][]byte) (*IntersectionResult, *SenderInfo) {
	t.Helper()
	cfgR, cfgS := testConfig(1), testConfig(2)
	return runPair(t,
		func(ctx context.Context, conn transport.Conn) (*IntersectionResult, error) {
			return IntersectionReceiver(ctx, cfgR, conn, vR)
		},
		func(ctx context.Context, conn transport.Conn) (*SenderInfo, error) {
			return IntersectionSender(ctx, cfgS, conn, vS)
		})
}

func TestIntersectionBasic(t *testing.T) {
	vR, vS := overlapping(10, 15, 4)
	res, sInfo := runIntersection(t, vR, vS)

	want := plaintextIntersection(vR, vS)
	if len(res.Values) != len(want) {
		t.Fatalf("|intersection| = %d, want %d", len(res.Values), len(want))
	}
	for _, v := range res.Values {
		if !want[string(v)] {
			t.Errorf("spurious value %q", v)
		}
	}
	if res.SenderSetSize != 15 {
		t.Errorf("R learned |V_S| = %d, want 15", res.SenderSetSize)
	}
	if sInfo.ReceiverSetSize != 10 {
		t.Errorf("S learned |V_R| = %d, want 10", sInfo.ReceiverSetSize)
	}
}

func TestIntersectionEdgeCases(t *testing.T) {
	cases := []struct {
		name   string
		nR, nS int
		shared int
	}{
		{"disjoint", 5, 7, 0},
		{"R subset of S", 4, 10, 4},
		{"S subset of R", 10, 3, 3},
		{"identical", 6, 6, 6},
		{"singletons equal", 1, 1, 1},
		{"singletons distinct", 1, 1, 0},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			vR, vS := overlapping(tc.nR, tc.nS, tc.shared)
			res, _ := runIntersection(t, vR, vS)
			if len(res.Values) != tc.shared {
				t.Errorf("|intersection| = %d, want %d", len(res.Values), tc.shared)
			}
		})
	}
}

func TestIntersectionEmptySets(t *testing.T) {
	for _, tc := range []struct {
		name   string
		vR, vS [][]byte
	}{
		{"both empty", nil, nil},
		{"R empty", nil, vals("s", 5)},
		{"S empty", vals("r", 5), nil},
	} {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			res, _ := runIntersection(t, tc.vR, tc.vS)
			if len(res.Values) != 0 {
				t.Errorf("nonempty intersection %v", res.Values)
			}
		})
	}
}

func TestIntersectionDuplicateInputs(t *testing.T) {
	// Duplicates must be removed: the protocols operate on sets.
	vR := [][]byte{[]byte("x"), []byte("x"), []byte("y")}
	vS := [][]byte{[]byte("x"), []byte("z"), []byte("z")}
	res, sInfo := runIntersection(t, vR, vS)
	if got := sortedStrings(res.Values); !reflect.DeepEqual(got, []string{"x"}) {
		t.Errorf("intersection = %v, want [x]", got)
	}
	if res.SenderSetSize != 2 {
		t.Errorf("|V_S| = %d, want 2 (deduped)", res.SenderSetSize)
	}
	if sInfo.ReceiverSetSize != 2 {
		t.Errorf("|V_R| = %d, want 2 (deduped)", sInfo.ReceiverSetSize)
	}
}

func TestIntersectionPreservesReceiverOrder(t *testing.T) {
	vR := [][]byte{[]byte("c"), []byte("a"), []byte("b")}
	vS := [][]byte{[]byte("a"), []byte("b"), []byte("c")}
	res, _ := runIntersection(t, vR, vS)
	got := make([]string, len(res.Values))
	for i, v := range res.Values {
		got[i] = string(v)
	}
	if !reflect.DeepEqual(got, []string{"c", "a", "b"}) {
		t.Errorf("result order %v, want R's input order [c a b]", got)
	}
}

func TestIntersectionProperty(t *testing.T) {
	// Random set pairs: protocol output must equal plaintext intersection.
	f := func(seedR, seedS uint8) bool {
		nR := int(seedR%12) + 1
		nS := int(seedS%12) + 1
		shared := int(seedR+seedS) % (min(nR, nS) + 1)
		vR, vS := overlapping(nR, nS, shared)
		res, _ := runIntersection(t, vR, vS)
		return len(res.Values) == shared
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 12}); err != nil {
		t.Error(err)
	}
}

func TestIntersectionGroupMismatch(t *testing.T) {
	cfgR := testConfig(1)
	cfgS := testConfig(2)
	cfgS.Group = group.MustBuiltin(group.Bits512)
	rErr, sErr := runPairExpectErr(
		func(ctx context.Context, conn transport.Conn) (*IntersectionResult, error) {
			return IntersectionReceiver(ctx, cfgR, conn, vals("r", 3))
		},
		func(ctx context.Context, conn transport.Conn) (*SenderInfo, error) {
			return IntersectionSender(ctx, cfgS, conn, vals("s", 3))
		})
	if rErr == nil && sErr == nil {
		t.Fatal("group mismatch went undetected")
	}
	if rErr != nil && !errors.Is(rErr, ErrGroupMismatch) && !errors.Is(rErr, ErrPeerFailure) {
		t.Errorf("receiver error = %v", rErr)
	}
	if sErr != nil && !errors.Is(sErr, ErrGroupMismatch) && !errors.Is(sErr, ErrPeerFailure) {
		t.Errorf("sender error = %v", sErr)
	}
}

func TestProtocolMismatch(t *testing.T) {
	// R runs intersection, S runs intersection-size: both must abort.
	rErr, sErr := runPairExpectErr(
		func(ctx context.Context, conn transport.Conn) (*IntersectionResult, error) {
			return IntersectionReceiver(ctx, testConfig(1), conn, vals("r", 3))
		},
		func(ctx context.Context, conn transport.Conn) (*SenderInfo, error) {
			return IntersectionSizeSender(ctx, testConfig(2), conn, vals("s", 3))
		})
	if rErr == nil && sErr == nil {
		t.Fatal("protocol mismatch went undetected")
	}
}
