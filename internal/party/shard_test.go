package party

import (
	"context"
	"errors"
	"strings"
	"testing"

	"minshare/internal/core"
	"minshare/internal/group"
	"minshare/internal/transport"
)

// shardedPipeClient is pipeClient with a shard-parallel receiver config.
func shardedPipeClient(t *testing.T, srv *Server, shards int) *Client {
	t.Helper()
	cfg := core.Config{Group: group.TestGroup(), Shards: shards}
	return NewClientConnFunc(cfg, func(ctx context.Context) (transport.Conn, error) {
		cConn, sConn := transport.Pipe()
		go func() {
			defer sConn.Close()
			if err := srv.HandleConn(ctx, "test-peer", sConn); err != nil {
				t.Logf("server: %v", err)
			}
		}()
		return cConn, nil
	})
}

func TestServerAdoptsShardedSessions(t *testing.T) {
	// The server's own Config leaves Shards at zero; it must adopt the
	// client's negotiated count from the handshake header and answer
	// through the sharded coordinator.
	srv := testServer(Policy{})
	client := shardedPipeClient(t, srv, 4)
	ctx := context.Background()
	query := [][]byte{[]byte("b"), []byte("x"), []byte("d"), []byte("q"), []byte("a")}

	res, err := client.Intersect(ctx, query)
	if err != nil {
		t.Fatalf("sharded Intersect: %v", err)
	}
	if len(res.Values) != 3 {
		t.Errorf("intersection = %d values, want 3", len(res.Values))
	}

	join, err := client.Join(ctx, query)
	if err != nil {
		t.Fatalf("sharded Join: %v", err)
	}
	if len(join.Matches) != 3 {
		t.Errorf("join matches = %d, want 3", len(join.Matches))
	}
	for _, m := range join.Matches {
		if want := "ext-" + string(m.Value); string(m.Ext) != want {
			t.Errorf("ext = %q, want %q", m.Ext, want)
		}
	}

	size, err := client.IntersectSize(ctx, query)
	if err != nil {
		t.Fatalf("sharded IntersectSize: %v", err)
	}
	if size.IntersectionSize != 3 {
		t.Errorf("size = %d, want 3", size.IntersectionSize)
	}
}

func TestPolicyShardCap(t *testing.T) {
	srv := testServer(Policy{MaxShards: 2})
	ctx := context.Background()
	q := [][]byte{[]byte("a"), []byte("b")}

	// Within the cap: answered.
	if _, err := shardedPipeClient(t, srv, 2).Intersect(ctx, q); err != nil {
		t.Fatalf("in-cap sharded session rejected: %v", err)
	}
	// Above the cap: refused with the policy reason on the wire.
	_, err := shardedPipeClient(t, srv, 4).Intersect(ctx, q)
	if err == nil {
		t.Fatal("over-cap shard count accepted")
	}
	if !errors.Is(err, core.ErrPeerFailure) {
		t.Errorf("client error = %v, want peer failure carrying policy text", err)
	}
	if !strings.Contains(err.Error(), "shard") {
		t.Errorf("error text %q lacks shard reason", err)
	}
}

func TestPolicyShardCapOneRefusesSharding(t *testing.T) {
	srv := testServer(Policy{MaxShards: 1})
	ctx := context.Background()

	if _, err := shardedPipeClient(t, srv, 2).Intersect(ctx, [][]byte{[]byte("a")}); err == nil {
		t.Fatal("MaxShards=1 server accepted a sharded session")
	}
	// Classic single sessions still pass.
	if _, err := pipeClient(t, srv).Intersect(ctx, [][]byte{[]byte("a")}); err != nil {
		t.Fatalf("unsharded session rejected: %v", err)
	}
}
