package party

import (
	"context"
	"fmt"
	"sync/atomic"
	"testing"

	"minshare/internal/core"
	"minshare/internal/obs"
	"minshare/internal/transport"
)

// TestServerEncryptedSetCache drives the cache through the server path:
// a repeat query from the same peer must hit, and a data-version bump
// (the table changed under the server) must miss and re-announce the
// new version in the handshake.
func TestServerEncryptedSetCache(t *testing.T) {
	var version atomic.Uint64
	version.Store(1)
	var stats obs.CacheStats

	srv := testServer(Policy{})
	srv.SetCache = core.NewSenderSetCache(0, &stats)
	srv.TableName = "t"
	srv.DataVersion = version.Load

	client := pipeClient(t, srv)
	ctx := context.Background()
	query := [][]byte{[]byte("b"), []byte("x"), []byte("d")}

	res1, err := client.Intersect(ctx, query)
	if err != nil {
		t.Fatalf("Intersect: %v", err)
	}
	if res1.SenderDataVersion != 1 {
		t.Errorf("announced version = %d, want 1", res1.SenderDataVersion)
	}
	res2, err := client.Intersect(ctx, query)
	if err != nil {
		t.Fatalf("Intersect (warm): %v", err)
	}
	if len(res2.Values) != len(res1.Values) {
		t.Errorf("warm intersection = %d values, cold = %d", len(res2.Values), len(res1.Values))
	}
	if snap := stats.Snapshot(); snap.Hits != 1 || snap.Misses != 1 {
		t.Errorf("after repeat query: %+v, want 1 hit / 1 miss", snap)
	}

	// The table changes: the next session must see a fresh slot.
	version.Store(2)
	res3, err := client.Intersect(ctx, query)
	if err != nil {
		t.Fatalf("Intersect (post-update): %v", err)
	}
	if res3.SenderDataVersion != 2 {
		t.Errorf("announced version = %d, want 2", res3.SenderDataVersion)
	}
	if snap := stats.Snapshot(); snap.Hits != 1 || snap.Misses != 2 {
		t.Errorf("after version bump: %+v, want 1 hit / 2 misses", snap)
	}
	if srv.SetCache.Len() != 1 {
		t.Errorf("cache len = %d, want 1 (stale version pruned)", srv.SetCache.Len())
	}
}

// TestPeerIdentityKeysCacheSlots simulates two distinct parties arriving
// from the same transport address (one NAT, one proxy): with a
// PeerIdentity hook telling them apart, each must get its own slot —
// and so its own pinned exponent — instead of warming each other's
// cache.
func TestPeerIdentityKeysCacheSlots(t *testing.T) {
	var stats obs.CacheStats
	var calls atomic.Int64

	srv := testServer(Policy{})
	srv.SetCache = core.NewSenderSetCache(0, &stats)
	srv.TableName = "t"
	srv.PeerIdentity = func(remote string, conn transport.Conn) (string, bool) {
		// Every session is a different authenticated party behind the
		// shared address.
		return fmt.Sprintf("party-%d", calls.Add(1)), true
	}

	client := pipeClient(t, srv)
	ctx := context.Background()
	query := [][]byte{[]byte("b"), []byte("d")}
	for i := 0; i < 2; i++ {
		if _, err := client.Intersect(ctx, query); err != nil {
			t.Fatalf("Intersect %d: %v", i, err)
		}
	}
	if snap := stats.Snapshot(); snap.Hits != 0 || snap.Misses != 2 {
		t.Errorf("distinct identities shared cache state: %+v, want 0 hits / 2 misses", snap)
	}
	if srv.SetCache.Len() != 2 {
		t.Errorf("cache len = %d, want 2 (one slot per identity)", srv.SetCache.Len())
	}
}

// TestPeerIdentityUnresolvedBypassesCache pins the fail-closed choice: a
// configured hook that cannot authenticate the peer must skip the cache
// for the session (cold protocol run, no slot) rather than fall back to
// the spoofable remote address.
func TestPeerIdentityUnresolvedBypassesCache(t *testing.T) {
	var stats obs.CacheStats

	srv := testServer(Policy{})
	srv.SetCache = core.NewSenderSetCache(0, &stats)
	srv.TableName = "t"
	srv.PeerIdentity = func(remote string, conn transport.Conn) (string, bool) { return "", false }

	client := pipeClient(t, srv)
	query := [][]byte{[]byte("b"), []byte("d")}
	res, err := client.Intersect(context.Background(), query)
	if err != nil {
		t.Fatalf("Intersect: %v", err)
	}
	if len(res.Values) != 2 {
		t.Errorf("intersection = %d values, want 2", len(res.Values))
	}
	if snap := stats.Snapshot(); snap.Hits != 0 || snap.Misses != 0 {
		t.Errorf("cache consulted despite unresolved identity: %+v", snap)
	}
	if srv.SetCache.Len() != 0 {
		t.Errorf("cache len = %d, want 0", srv.SetCache.Len())
	}
}
