package party

import (
	"context"
	"sync/atomic"
	"testing"

	"minshare/internal/core"
	"minshare/internal/obs"
)

// TestServerEncryptedSetCache drives the cache through the server path:
// a repeat query from the same peer must hit, and a data-version bump
// (the table changed under the server) must miss and re-announce the
// new version in the handshake.
func TestServerEncryptedSetCache(t *testing.T) {
	var version atomic.Uint64
	version.Store(1)
	var stats obs.CacheStats

	srv := testServer(Policy{})
	srv.SetCache = core.NewSenderSetCache(0, &stats)
	srv.TableName = "t"
	srv.DataVersion = version.Load

	client := pipeClient(t, srv)
	ctx := context.Background()
	query := [][]byte{[]byte("b"), []byte("x"), []byte("d")}

	res1, err := client.Intersect(ctx, query)
	if err != nil {
		t.Fatalf("Intersect: %v", err)
	}
	if res1.SenderDataVersion != 1 {
		t.Errorf("announced version = %d, want 1", res1.SenderDataVersion)
	}
	res2, err := client.Intersect(ctx, query)
	if err != nil {
		t.Fatalf("Intersect (warm): %v", err)
	}
	if len(res2.Values) != len(res1.Values) {
		t.Errorf("warm intersection = %d values, cold = %d", len(res2.Values), len(res1.Values))
	}
	if snap := stats.Snapshot(); snap.Hits != 1 || snap.Misses != 1 {
		t.Errorf("after repeat query: %+v, want 1 hit / 1 miss", snap)
	}

	// The table changes: the next session must see a fresh slot.
	version.Store(2)
	res3, err := client.Intersect(ctx, query)
	if err != nil {
		t.Fatalf("Intersect (post-update): %v", err)
	}
	if res3.SenderDataVersion != 2 {
		t.Errorf("announced version = %d, want 2", res3.SenderDataVersion)
	}
	if snap := stats.Snapshot(); snap.Hits != 1 || snap.Misses != 2 {
		t.Errorf("after version bump: %+v, want 1 hit / 2 misses", snap)
	}
	if srv.SetCache.Len() != 1 {
		t.Errorf("cache len = %d, want 1 (stale version pruned)", srv.SetCache.Len())
	}
}
