package party

import (
	"context"
	"errors"
	"fmt"
	"net"
	"strings"
	"testing"

	"minshare/internal/core"
	"minshare/internal/group"
	"minshare/internal/leakage"
	"minshare/internal/obs"
	"minshare/internal/transport"
	"minshare/internal/wire"
)

func testServer(policy Policy) *Server {
	values := [][]byte{[]byte("a"), []byte("b"), []byte("c"), []byte("d")}
	recs := make([]core.JoinRecord, len(values))
	for i, v := range values {
		recs[i] = core.JoinRecord{Value: v, Ext: append([]byte("ext-"), v...)}
	}
	return &Server{
		Config:   core.Config{Group: group.TestGroup()},
		Values:   values,
		Records:  recs,
		Multiset: [][]byte{[]byte("a"), []byte("a"), []byte("b")},
		Policy:   policy,
	}
}

// pipeClient builds a client whose every dial spawns a fresh pipe served
// by srv on the other end.
func pipeClient(t *testing.T, srv *Server) *Client {
	t.Helper()
	cfg := core.Config{Group: group.TestGroup()}
	return NewClientConnFunc(cfg, func(ctx context.Context) (transport.Conn, error) {
		cConn, sConn := transport.Pipe()
		go func() {
			defer sConn.Close()
			if err := srv.HandleConn(ctx, "test-peer", sConn); err != nil {
				t.Logf("server: %v", err)
			}
		}()
		return cConn, nil
	})
}

func TestServerAnswersAllProtocols(t *testing.T) {
	srv := testServer(Policy{})
	client := pipeClient(t, srv)
	ctx := context.Background()
	query := [][]byte{[]byte("b"), []byte("x"), []byte("d")}

	res, err := client.Intersect(ctx, query)
	if err != nil {
		t.Fatalf("Intersect: %v", err)
	}
	if len(res.Values) != 2 {
		t.Errorf("intersection = %d values", len(res.Values))
	}

	size, err := client.IntersectSize(ctx, query)
	if err != nil {
		t.Fatalf("IntersectSize: %v", err)
	}
	if size.IntersectionSize != 2 {
		t.Errorf("size = %d", size.IntersectionSize)
	}

	join, err := client.Join(ctx, query)
	if err != nil {
		t.Fatalf("Join: %v", err)
	}
	if len(join.Matches) != 2 {
		t.Errorf("join matches = %d", len(join.Matches))
	}
	for _, m := range join.Matches {
		if want := "ext-" + string(m.Value); string(m.Ext) != want {
			t.Errorf("ext = %q, want %q", m.Ext, want)
		}
	}

	js, err := client.JoinSize(ctx, [][]byte{[]byte("a"), []byte("b"), []byte("b")})
	if err != nil {
		t.Fatalf("JoinSize: %v", err)
	}
	if js.JoinSize != 1*2+2*1 { // a: 1×2, b: 2×1
		t.Errorf("join size = %d, want 4", js.JoinSize)
	}
}

func TestServerOverTCP(t *testing.T) {
	srv := testServer(Policy{})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	done := make(chan struct{})
	go func() {
		defer close(done)
		_ = srv.Serve(ctx, ln)
	}()

	client := NewClient(ln.Addr().String(), core.Config{Group: group.TestGroup()})
	res, err := client.Intersect(ctx, [][]byte{[]byte("a"), []byte("zz")})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Values) != 1 || string(res.Values[0]) != "a" {
		t.Errorf("result %v", res.Values)
	}
	// A second session on a fresh connection also works.
	size, err := client.IntersectSize(ctx, [][]byte{[]byte("c")})
	if err != nil {
		t.Fatal(err)
	}
	if size.IntersectionSize != 1 {
		t.Errorf("size = %d", size.IntersectionSize)
	}
	cancel()
	<-done
}

func TestPolicyProtocolRestriction(t *testing.T) {
	srv := testServer(Policy{AllowedProtocols: []wire.Protocol{wire.ProtoIntersectionSize}})
	client := pipeClient(t, srv)
	ctx := context.Background()

	if _, err := client.IntersectSize(ctx, [][]byte{[]byte("a")}); err != nil {
		t.Fatalf("allowed protocol rejected: %v", err)
	}
	_, err := client.Intersect(ctx, [][]byte{[]byte("a")})
	if err == nil {
		t.Fatal("disallowed protocol accepted")
	}
	if !errors.Is(err, core.ErrPeerFailure) {
		t.Errorf("client error = %v, want peer failure carrying policy text", err)
	}
	if !strings.Contains(err.Error(), "not allowed") {
		t.Errorf("error text %q lacks reason", err)
	}
}

func TestPolicySizeBounds(t *testing.T) {
	srv := testServer(Policy{MinPeerSetSize: 2, MaxPeerSetSize: 3})
	client := pipeClient(t, srv)
	ctx := context.Background()

	if _, err := client.Intersect(ctx, [][]byte{[]byte("a")}); err == nil {
		t.Error("tiny peer set accepted")
	}
	if _, err := client.Intersect(ctx, [][]byte{[]byte("a"), []byte("b"), []byte("c"), []byte("d")}); err == nil {
		t.Error("huge peer set accepted")
	}
	if _, err := client.Intersect(ctx, [][]byte{[]byte("a"), []byte("b")}); err != nil {
		t.Errorf("in-bounds set rejected: %v", err)
	}
}

func TestPolicyQueryBudget(t *testing.T) {
	srv := testServer(Policy{MaxQueriesPerPeer: 2})
	client := pipeClient(t, srv)
	ctx := context.Background()
	q := [][]byte{[]byte("a")}

	for i := 0; i < 2; i++ {
		if _, err := client.IntersectSize(ctx, q); err != nil {
			t.Fatalf("query %d rejected: %v", i, err)
		}
	}
	if _, err := client.IntersectSize(ctx, q); err == nil {
		t.Fatal("budget not enforced")
	}
}

func TestServerWithoutJoinRecords(t *testing.T) {
	srv := testServer(Policy{})
	srv.Records = nil
	client := pipeClient(t, srv)
	_, err := client.Join(context.Background(), [][]byte{[]byte("a")})
	if err == nil {
		t.Fatal("join answered without records")
	}
}

func TestAuditorIntegration(t *testing.T) {
	srv := testServer(Policy{})
	srv.Auditor = leakage.NewAuditor(leakage.AuditPolicy{MaxQueries: 1, MaxOverlapFraction: 1})
	client := pipeClient(t, srv)
	ctx := context.Background()

	if _, err := client.IntersectSize(ctx, [][]byte{[]byte("a")}); err != nil {
		t.Fatalf("first query: %v", err)
	}
	if _, err := client.IntersectSize(ctx, [][]byte{[]byte("b")}); err == nil {
		t.Fatal("auditor budget not enforced")
	}
	trail := srv.Auditor.Trail()
	if len(trail) != 1 || trail[0].Protocol != "intersection-size" {
		t.Errorf("audit trail = %+v", trail)
	}
}

func TestServerRejectsGarbageFirstFrame(t *testing.T) {
	srv := testServer(Policy{})
	cConn, sConn := transport.Pipe()
	defer cConn.Close()
	ctx := context.Background()
	done := make(chan error, 1)
	go func() { done <- srv.HandleConn(ctx, "p", sConn) }()
	if err := cConn.Send(ctx, []byte{0xFF, 0x00}); err != nil {
		t.Fatal(err)
	}
	if err := <-done; err == nil {
		t.Fatal("garbage first frame accepted")
	}
}

func TestConcurrentClients(t *testing.T) {
	srv := testServer(Policy{})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go srv.Serve(ctx, ln)

	const n = 4
	errs := make(chan error, n)
	for i := 0; i < n; i++ {
		go func(i int) {
			client := NewClient(ln.Addr().String(), core.Config{Group: group.TestGroup()})
			res, err := client.Intersect(ctx, [][]byte{[]byte("a"), []byte(fmt.Sprintf("nope-%d", i))})
			if err == nil && len(res.Values) != 1 {
				err = fmt.Errorf("client %d got %d values", i, len(res.Values))
			}
			errs <- err
		}(i)
	}
	for i := 0; i < n; i++ {
		if err := <-errs; err != nil {
			t.Error(err)
		}
	}
}

// TestServerObservability: with an obs registry attached, every answered
// session lands in the registry with full counters, the summary line is
// logged, and the audit trail carries the observed stats.
func TestServerObservability(t *testing.T) {
	srv := testServer(Policy{})
	srv.Obs = obs.NewRegistry()
	srv.Auditor = leakage.NewAuditor(leakage.AuditPolicy{MaxOverlapFraction: 1})
	var logLines []string
	srv.Logf = func(format string, args ...any) {
		logLines = append(logLines, fmt.Sprintf(format, args...))
	}
	client := pipeClient(t, srv)
	ctx := context.Background()

	if _, err := client.Intersect(ctx, [][]byte{[]byte("b"), []byte("x")}); err != nil {
		t.Fatalf("Intersect: %v", err)
	}
	if _, err := client.IntersectSize(ctx, [][]byte{[]byte("a")}); err != nil {
		t.Fatalf("IntersectSize: %v", err)
	}

	snap := srv.Obs.Snapshot()
	if snap.SessionsFinished != 2 || snap.SessionsFailed != 0 || snap.SessionsActive != 0 {
		t.Fatalf("sessions = %d finished / %d failed / %d active, want 2/0/0",
			snap.SessionsFinished, snap.SessionsFailed, snap.SessionsActive)
	}
	// 2 intersection-family runs against a 4-value server set with peer
	// sets of 2 and 1: the server performs (nS + nR) exponentiations per
	// run = (4+2) + (4+1).
	if got := snap.Global.ModExps(); got != 11 {
		t.Errorf("global modexps = %d, want 11", got)
	}
	first := snap.Recent[0]
	if first.Info.Protocol != "intersection" || first.Info.Role != "sender" ||
		first.Info.Peer != "test-peer" || first.Info.LocalSetSize != 4 || first.Info.PeerSetSize != 2 {
		t.Errorf("session info = %+v", first.Info)
	}
	if first.Counters.FramesSent != 3 || first.Counters.FramesRecv != 2 {
		t.Errorf("sender frames = %d sent / %d recv, want 3/2",
			first.Counters.FramesSent, first.Counters.FramesRecv)
	}
	if len(first.Spans) == 0 {
		t.Error("session has no phase spans")
	}

	var summary string
	for _, l := range logLines {
		if strings.Contains(l, "outcome=\"ok\"") {
			summary = l
			break
		}
	}
	if summary == "" || !strings.Contains(summary, "modexp=") || !strings.Contains(summary, "spans=") {
		t.Errorf("no per-session summary in log: %q", logLines)
	}

	trail := srv.Auditor.Trail()
	if len(trail) != 2 {
		t.Fatalf("audit trail has %d entries, want 2", len(trail))
	}
	if trail[0].Stats.Bytes != first.Counters.TotalWireBytes() || trail[0].Stats.Bytes == 0 {
		t.Errorf("audit stats bytes = %d, want %d", trail[0].Stats.Bytes, first.Counters.TotalWireBytes())
	}
	if trail[0].Stats.Duration <= 0 || trail[0].Stats.Spans == "" {
		t.Errorf("audit stats incomplete: %+v", trail[0].Stats)
	}
}

// TestServerObservabilityRecordsFailures: a refused protocol still ends
// its obs session with the failure outcome.
func TestServerObservabilityRecordsFailures(t *testing.T) {
	srv := testServer(Policy{})
	srv.Records = nil // disable equijoin
	srv.Obs = obs.NewRegistry()
	client := pipeClient(t, srv)

	if _, err := client.Join(context.Background(), [][]byte{[]byte("a")}); err == nil {
		t.Fatal("Join succeeded against a server without records")
	}
	snap := srv.Obs.Snapshot()
	if snap.SessionsFinished != 1 || snap.SessionsFailed != 1 {
		t.Errorf("sessions = %d finished / %d failed, want 1/1", snap.SessionsFinished, snap.SessionsFailed)
	}
	if len(snap.Recent) != 1 || snap.Recent[0].Outcome == "ok" || snap.Recent[0].Outcome == "" {
		t.Errorf("recent = %+v", snap.Recent)
	}
}
