package party

import (
	"context"
	"fmt"

	"minshare/internal/core"
	"minshare/internal/reldb"
)

// TableBinding binds a Server to one live reldb table attribute.  It is
// the glue between the storage layer's row vocabulary and the protocol
// layer's set vocabulary: per-session snapshots of the attribute's
// distinct values (with their ext(v) row groups) replace the Server's
// static Values/Records/Multiset fields, the table version stamps each
// session for cache keying, and the attribute's change log is exposed
// as the core.DeltaSource behind cache delta-upgrades and standing
// queries.
type TableBinding struct {
	src *reldb.AttributeSource
}

// BindTable builds a binding for column col of table t.  The column is
// validated once here; Snapshot and the delta source never fail on it
// afterwards.
func BindTable(t *reldb.Table, col string) (*TableBinding, error) {
	if _, err := t.Schema().ColumnIndex(col); err != nil {
		return nil, fmt.Errorf("party: binding table %s: %w", t.Name(), err)
	}
	return &TableBinding{src: reldb.NewAttributeSource(t, col)}, nil
}

// MustBindTable is BindTable for known-good columns; it panics on error.
func MustBindTable(t *reldb.Table, col string) *TableBinding {
	b, err := BindTable(t, col)
	if err != nil {
		panic(err)
	}
	return b
}

// TableName reports the bound table's name (the cache-key table label).
func (b *TableBinding) TableName() string { return b.src.Table().Name() }

// Version reports the bound table's current data version.
func (b *TableBinding) Version() uint64 { return b.src.Version() }

// DeltaSource exposes the bound attribute's change log in the protocol
// layer's vocabulary (core deliberately does not import reldb).
func (b *TableBinding) DeltaSource() core.DeltaSource { return attrDeltaSource{src: b.src} }

// tableSnapshot is one consistent view of the bound attribute: every
// field reflects the same data version, so a session's announced
// version always matches the values it serves — the invariant the
// standing-query version chain builds on.
type tableSnapshot struct {
	// Version is the table version the snapshot reflects.
	Version uint64
	// Values holds the distinct column values (the set protocols' V_S).
	Values [][]byte
	// Records pairs each distinct value with its serialized ext(v) row
	// group (the equijoin's input).
	Records []core.JoinRecord
	// Multiset holds one value per row, duplicates preserved (the
	// equijoin-size protocol's T_S.A).
	Multiset [][]byte
}

// Snapshot captures a consistent view of the bound attribute.  The
// table's fine-grained locks cover each read individually, not the
// group, so the version is re-checked after reading and the snapshot
// retried if a writer slipped in between.
func (b *TableBinding) Snapshot() tableSnapshot {
	t, col := b.src.Table(), b.src.Column()
	for {
		ver := b.src.Version()
		values, exts, err := t.ExtPayloads(col)
		if err != nil {
			// The column was validated in BindTable and schemas are
			// immutable; reaching this is a programming error.
			panic(err)
		}
		multiset, err := t.ColumnValues(col)
		if err != nil {
			panic(err)
		}
		if b.src.Version() != ver {
			continue
		}
		snap := tableSnapshot{Version: ver, Values: values, Multiset: multiset}
		snap.Records = make([]core.JoinRecord, len(values))
		for i, v := range values {
			snap.Records[i] = core.JoinRecord{Value: v, Ext: exts[i]}
		}
		return snap
	}
}

// attrDeltaSource adapts reldb.AttributeSource to core.DeltaSource,
// translating row-group deltas into the protocol layer's value/ext
// records.
type attrDeltaSource struct {
	src *reldb.AttributeSource
}

// Version reports the current data version.
func (a attrDeltaSource) Version() uint64 { return a.src.Version() }

// Wait blocks until the version moves past from or ctx ends.
func (a attrDeltaSource) Wait(ctx context.Context, from uint64) error {
	return a.src.Wait(ctx, from)
}

// DeltaSince reports the attribute's changes since version from, or
// ok=false when the change log cannot reconstruct them.
func (a attrDeltaSource) DeltaSince(from uint64) (core.SetDelta, bool) {
	d, ok := a.src.DeltaSince(from)
	if !ok {
		return core.SetDelta{}, false
	}
	out := core.SetDelta{From: d.From, To: d.To, Deleted: d.Deleted}
	if len(d.Inserted) > 0 {
		out.Inserted = make([]core.JoinRecord, len(d.Inserted))
		for i, v := range d.Inserted {
			out.Inserted[i] = core.JoinRecord{Value: v, Ext: d.InsertedExt[i]}
		}
	}
	if len(d.Updated) > 0 {
		out.Updated = make([]core.JoinRecord, len(d.Updated))
		for i, v := range d.Updated {
			out.Updated[i] = core.JoinRecord{Value: v, Ext: d.UpdatedExt[i]}
		}
	}
	return out, true
}
