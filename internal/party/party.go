// Package party turns the role functions of internal/core into a
// long-running service: an enterprise runs a Server fronting one table
// attribute, and remote receivers connect to run any of the paper's
// protocols against it.  This is the deployment shape the paper's
// motivating applications assume — autonomous enterprises answering
// minimal-sharing queries — plus the Section 2.3 first line of defence:
// every incoming query passes a policy gate (allowed protocols, peer set
// size bounds, per-peer budgets) and lands in an audit trail.
package party

import (
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"minshare/internal/core"
	"minshare/internal/group"
	"minshare/internal/leakage"
	"minshare/internal/obs"
	"minshare/internal/transport"
	"minshare/internal/wire"
)

// Policy gates incoming sessions (Section 2.3's query scrutiny).
type Policy struct {
	// AllowedProtocols lists the protocols this server answers; empty
	// means all.
	AllowedProtocols []wire.Protocol
	// MaxPeerSetSize rejects sessions whose peer announces a larger set
	// (0 = unlimited).  Huge announced sets are a resource-exhaustion
	// vector as well as a privacy one.
	MaxPeerSetSize int
	// MinPeerSetSize rejects tiny peer sets (tracker-style isolation of
	// individuals; 0 = no minimum).
	MinPeerSetSize int
	// MaxQueriesPerPeer bounds answered sessions per remote address
	// (0 = unlimited).
	MaxQueriesPerPeer int
}

// ErrPolicy reports a session rejected by policy.
var ErrPolicy = errors.New("party: session rejected by policy")

func (p Policy) allows(proto wire.Protocol) bool {
	if len(p.AllowedProtocols) == 0 {
		return true
	}
	for _, a := range p.AllowedProtocols {
		if a == proto {
			return true
		}
	}
	return false
}

// Server answers protocol sessions as party S over a fixed dataset.
type Server struct {
	// Config is the shared cryptographic setup.
	Config core.Config
	// Values backs the set protocols (intersection, intersection size);
	// duplicates are removed by the protocols themselves.
	Values [][]byte
	// Records backs the equijoin; nil disables it.
	Records []core.JoinRecord
	// Multiset backs the equijoin-size protocol (values with
	// duplicates); nil falls back to Values.
	Multiset [][]byte
	// Policy gates sessions; the zero value allows everything.
	Policy Policy
	// Auditor, when non-nil, records every answered session and can veto
	// on its own criteria (budget, overlap of the served set).
	Auditor *leakage.Auditor
	// Obs, when non-nil, attributes each answered session to an
	// observability session in this registry: crypto-op and byte counters,
	// per-phase spans, and a summary line per session.  Nil keeps the
	// protocol hot path uninstrumented.
	Obs *obs.Registry
	// Logf, when non-nil, receives one line per session.
	Logf func(format string, args ...any)

	mu      sync.Mutex
	perPeer map[string]int
}

func (s *Server) logf(format string, args ...any) {
	if s.Logf != nil {
		s.Logf(format, args...)
	}
}

// Serve accepts sessions until the listener closes or ctx is cancelled.
// Each connection carries exactly one protocol session and is handled on
// its own goroutine.
func (s *Server) Serve(ctx context.Context, ln net.Listener) error {
	go func() {
		<-ctx.Done()
		ln.Close()
	}()
	var wg sync.WaitGroup
	defer wg.Wait()
	for {
		nc, err := ln.Accept()
		if err != nil {
			if ctx.Err() != nil {
				return ctx.Err()
			}
			return fmt.Errorf("party: accept: %w", err)
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			peer := nc.RemoteAddr().String()
			conn := transport.NewTCP(nc)
			defer conn.Close()
			if err := s.handle(ctx, peer, conn); err != nil {
				s.logf("party: session with %s failed: %v", peer, err)
			}
		}()
	}
}

// HandleConn answers a single session on an established transport (used
// by tests and by in-process deployments over pipes).  peer names the
// remote for policy accounting.
func (s *Server) HandleConn(ctx context.Context, peer string, conn transport.Conn) error {
	return s.handle(ctx, peer, conn)
}

func (s *Server) handle(ctx context.Context, peer string, conn transport.Conn) error {
	// The receiver speaks first: read its header to learn which protocol
	// it wants, then hand the role function a transport that replays the
	// frame.
	first, err := conn.Recv(ctx)
	if err != nil {
		return fmt.Errorf("party: reading session header: %w", err)
	}
	cfg := s.Config
	g := cfg.Group
	if g == nil {
		g = group.Default()
	}
	codec := wire.NewCodec(g)
	msg, err := codec.Decode(first)
	if err != nil {
		return fmt.Errorf("party: decoding session header: %w", err)
	}
	hdr, ok := msg.(wire.Header)
	if !ok {
		return fmt.Errorf("party: first frame is %v, want header", msg.Kind())
	}

	if err := s.checkPolicy(peer, hdr); err != nil {
		// Tell the peer why before hanging up.
		if data, encErr := codec.Encode(wire.ErrorMsg{Text: err.Error()}); encErr == nil {
			_ = conn.Send(ctx, data)
		}
		return err
	}

	replay := &replayConn{Conn: conn, pending: first}
	s.logf("party: %s running %v (peer set size %d)", peer, hdr.Protocol, hdr.SetSize)

	// Attribute the run to an observability session.  The header frame
	// already consumed above is re-counted when replayConn hands it back
	// through the instrumented core session, so the byte census stays
	// complete.
	var osess *obs.Session
	if s.Obs != nil {
		osess = s.Obs.StartSession(obs.SessionInfo{
			Protocol:     hdr.Protocol.String(),
			Peer:         peer,
			Role:         "sender",
			LocalSetSize: s.localSetSize(hdr.Protocol),
			PeerSetSize:  int(hdr.SetSize),
		})
		ctx = obs.WithSession(ctx, osess)
	}

	switch hdr.Protocol {
	case wire.ProtoIntersection:
		_, err = core.IntersectionSender(ctx, cfg, replay, s.Values)
	case wire.ProtoIntersectionSize:
		_, err = core.IntersectionSizeSender(ctx, cfg, replay, s.Values)
	case wire.ProtoEquijoin:
		if s.Records == nil {
			err = s.refuse(ctx, conn, codec, "server does not serve equijoin")
		} else {
			_, err = core.EquijoinSender(ctx, cfg, replay, s.Records)
		}
	case wire.ProtoEquijoinSize:
		values := s.Multiset
		if values == nil {
			values = s.Values
		}
		_, err = core.EquijoinSizeSender(ctx, cfg, replay, values)
	default:
		err = s.refuse(ctx, conn, codec, fmt.Sprintf("unsupported protocol %v", hdr.Protocol))
	}

	var stats leakage.SessionStats
	if osess != nil {
		snap := osess.End(err)
		stats = leakage.SessionStats{
			Bytes:    snap.Counters.TotalWireBytes(),
			Duration: snap.Duration,
			Spans:    obs.RenderSpans(snap.Spans),
		}
		s.logf("party: session %d with %s: protocol=%v outcome=%q duration=%s modexp=%d oracle_hashes=%d wire_bytes=%d spans=%q",
			snap.ID, peer, hdr.Protocol, snap.Outcome,
			snap.Duration.Round(time.Microsecond),
			snap.Counters.ModExps(), snap.Counters.OracleHashes,
			snap.Counters.TotalWireBytes(), stats.Spans)
	}
	if err != nil {
		return err
	}

	s.record(peer, hdr, stats)
	return nil
}

// localSetSize reports how many values this server commits to a run of
// the given protocol, for session metadata.
func (s *Server) localSetSize(proto wire.Protocol) int {
	switch proto {
	case wire.ProtoEquijoin:
		return len(s.Records)
	case wire.ProtoEquijoinSize:
		if s.Multiset != nil {
			return len(s.Multiset)
		}
	}
	return len(s.Values)
}

func (s *Server) refuse(ctx context.Context, conn transport.Conn, codec *wire.Codec, why string) error {
	if data, err := codec.Encode(wire.ErrorMsg{Text: why}); err == nil {
		_ = conn.Send(ctx, data)
	}
	return fmt.Errorf("%w: %s", ErrPolicy, why)
}

func (s *Server) checkPolicy(peer string, hdr wire.Header) error {
	if !s.Policy.allows(hdr.Protocol) {
		return fmt.Errorf("%w: protocol %v not allowed", ErrPolicy, hdr.Protocol)
	}
	if s.Policy.MaxPeerSetSize > 0 && hdr.SetSize > uint64(s.Policy.MaxPeerSetSize) {
		return fmt.Errorf("%w: peer set size %d above limit %d", ErrPolicy, hdr.SetSize, s.Policy.MaxPeerSetSize)
	}
	if s.Policy.MinPeerSetSize > 0 && hdr.SetSize < uint64(s.Policy.MinPeerSetSize) {
		return fmt.Errorf("%w: peer set size %d below minimum %d", ErrPolicy, hdr.SetSize, s.Policy.MinPeerSetSize)
	}
	s.mu.Lock()
	count := s.perPeer[peer]
	s.mu.Unlock()
	if s.Policy.MaxQueriesPerPeer > 0 && count >= s.Policy.MaxQueriesPerPeer {
		return fmt.Errorf("%w: peer %s exhausted its %d-query budget", ErrPolicy, peer, s.Policy.MaxQueriesPerPeer)
	}
	if s.Auditor != nil {
		if err := s.Auditor.Check(peer, hdr.Protocol.String(), s.Values); err != nil {
			return fmt.Errorf("%w: %v", ErrPolicy, err)
		}
	}
	return nil
}

func (s *Server) record(peer string, hdr wire.Header, stats leakage.SessionStats) {
	s.mu.Lock()
	if s.perPeer == nil {
		s.perPeer = make(map[string]int)
	}
	s.perPeer[peer]++
	s.mu.Unlock()
	if s.Auditor != nil {
		_ = s.Auditor.ApproveSession(peer, hdr.Protocol.String(), s.Values, stats)
	}
}

// replayConn hands back an already-consumed frame on the first Recv.
type replayConn struct {
	transport.Conn
	mu      sync.Mutex
	pending []byte
}

func (r *replayConn) Recv(ctx context.Context) ([]byte, error) {
	r.mu.Lock()
	if p := r.pending; p != nil {
		r.pending = nil
		r.mu.Unlock()
		return p, nil
	}
	r.mu.Unlock()
	return r.Conn.Recv(ctx)
}
