// Package party turns the role functions of internal/core into a
// long-running service: an enterprise runs a Server fronting one table
// attribute, and remote receivers connect to run any of the paper's
// protocols against it.  This is the deployment shape the paper's
// motivating applications assume — autonomous enterprises answering
// minimal-sharing queries — plus the Section 2.3 first line of defence:
// every incoming query passes a policy gate (allowed protocols, peer set
// size bounds, per-peer budgets) and lands in an audit trail.
package party

import (
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"minshare/internal/core"
	"minshare/internal/group"
	"minshare/internal/leakage"
	"minshare/internal/obs"
	"minshare/internal/transport"
	"minshare/internal/wire"
)

// Policy gates incoming sessions (Section 2.3's query scrutiny).
type Policy struct {
	// AllowedProtocols lists the protocols this server answers; empty
	// means all.
	AllowedProtocols []wire.Protocol
	// MaxPeerSetSize rejects sessions whose peer announces a larger set
	// (0 = unlimited).  Huge announced sets are a resource-exhaustion
	// vector as well as a privacy one.
	MaxPeerSetSize int
	// MinPeerSetSize rejects tiny peer sets (tracker-style isolation of
	// individuals; 0 = no minimum).
	MinPeerSetSize int
	// MaxQueriesPerPeer bounds answered sessions per remote *host*
	// (0 = unlimited).  Accounting is keyed by the host part of the
	// remote address — net.SplitHostPort — so the budget spans TCP
	// connections: a peer cannot reset it by reconnecting from a fresh
	// ephemeral port.
	MaxQueriesPerPeer int
	// MaxShards caps the shard count this server will adopt from a
	// peer's sharded handshake (core.Config.Shards).  0 accepts anything
	// up to the transport limit; 1 refuses shard-parallel sessions
	// outright.  Each shard costs the server a concurrent sub-session,
	// so an unbounded count is a resource-amplification vector.
	MaxShards int
}

// ErrPolicy reports a session rejected by policy.
var ErrPolicy = errors.New("party: session rejected by policy")

// ErrSaturated reports a session refused because the server already runs
// MaxSessions concurrent sessions.  Unlike ErrPolicy it is a transient
// condition: the same query may succeed once load subsides.
var ErrSaturated = errors.New("party: server saturated")

// Timeouts bounds the phases of a served session.  Zero fields disable
// the corresponding limit.  The three deadlines map onto the protocol
// timeline: Handshake covers the wait for the peer's opening header (a
// connection that never speaks), Idle covers every subsequent frame gap
// (a peer that stalls mid-stream), and Session caps the whole run (a
// peer that trickles frames forever, each inside the idle allowance).
type Timeouts struct {
	// Handshake bounds the wait for the session-opening header frame.
	Handshake time.Duration
	// Idle bounds every single Send/Recv after the handshake.
	Idle time.Duration
	// Session bounds the whole session wall-clock.
	Session time.Duration
}

func (p Policy) allows(proto wire.Protocol) bool {
	if len(p.AllowedProtocols) == 0 {
		return true
	}
	for _, a := range p.AllowedProtocols {
		if a == proto {
			return true
		}
	}
	return false
}

// Server answers protocol sessions as party S over a fixed dataset.
type Server struct {
	// Config is the shared cryptographic setup.
	Config core.Config
	// Values backs the set protocols (intersection, intersection size);
	// duplicates are removed by the protocols themselves.
	Values [][]byte
	// Records backs the equijoin; nil disables it.
	Records []core.JoinRecord
	// Multiset backs the equijoin-size protocol (values with
	// duplicates); nil falls back to Values.
	Multiset [][]byte
	// Policy gates sessions; the zero value allows everything.
	Policy Policy
	// Timeouts bounds session phases; the zero value imposes none.
	Timeouts Timeouts
	// MaxSessions caps concurrent in-flight sessions (0 = unlimited).
	// Arrivals beyond the cap are refused immediately with a wire error
	// (the peer sees ErrPeerFailure carrying the saturation text) instead
	// of queueing — under overload, fast rejection beats silent latency.
	MaxSessions int
	// DrainTimeout bounds graceful shutdown: once Serve's context is
	// cancelled the server stops accepting and lets in-flight sessions
	// finish for up to this long before force-cancelling them.  Zero
	// cancels in-flight sessions immediately on shutdown.
	DrainTimeout time.Duration
	// SetCache, when non-nil, caches the server's encrypted own-set
	// state across sessions so a peer's repeated queries against an
	// unchanged table skip the bulk-exponentiation phase.  Slots are
	// keyed per (peer identity, TableName, DataVersion, protocol); see
	// core.SenderSetCache for the exponent-reuse guarantee.
	//
	// CAVEAT — peer identity.  Without PeerIdentity, the slot identity
	// is the remote IP, which is NOT an authenticated peer identity:
	// distinct parties behind one NAT or proxy share an IP and would
	// share a slot's pinned exponent, weakening the no-reuse-across-
	// peers guarantee to "no reuse across source addresses".  Deployments
	// where that aliasing is possible must either set PeerIdentity to an
	// authenticated identity or leave the cache off (it is off by
	// default).
	SetCache *core.SenderSetCache
	// PeerIdentity, when non-nil, supplies the authenticated identity
	// that keys this session's cache slot — e.g. a TLS client-certificate
	// fingerprint recovered from the connection, or an identity asserted
	// by a fronting proxy.  remote is the transport-level remote address;
	// conn is the session's connection for transports that can surface
	// credentials via type assertion.  Returning ok=false means no
	// identity could be established and the cache is bypassed for that
	// session (the protocol still runs, cold).  When nil, the unauthenticated
	// remote host is used — see the SetCache caveat.
	PeerIdentity func(remote string, conn transport.Conn) (identity string, ok bool)
	// TableName names the served table for cache keying; only
	// meaningful with SetCache.
	TableName string
	// DataVersion, when non-nil, reports the served table's current
	// monotonic version (reldb.Table.Version) for cache keying and the
	// handshake's version tag.  It is called once per session and must
	// be safe for concurrent use; nil means version 0.
	DataVersion func() uint64
	// Source, when non-nil, binds the server to a live table attribute.
	// Each session then serves a consistent snapshot of the attribute in
	// place of the static Values/Records/Multiset fields, DataVersion
	// and TableName default to the table's, and the attribute's change
	// log becomes the core.DeltaSource behind cache delta-upgrades and
	// standing queries.
	Source *TableBinding
	// DeltaChurnMax forwards to core.Config.DeltaChurnMax: the fraction
	// of the served set a delta may touch before the delta-upgrade and
	// standing-query paths fall back to a full rebuild (0 = the core
	// default, negative disables delta upgrades).  Only meaningful with
	// Source.
	DeltaChurnMax float64
	// Standing serves standing queries: after an unsharded intersection
	// or equijoin completes, a subscribing receiver holds the session
	// open and is pushed encrypted deltas as the bound table changes.
	// Requires Source; classic receivers that hang up after the base
	// run see byte-identical sessions either way.
	Standing bool
	// Auditor, when non-nil, records every answered session and can veto
	// on its own criteria (budget, overlap of the served set).
	Auditor *leakage.Auditor
	// Obs, when non-nil, attributes each answered session to an
	// observability session in this registry: crypto-op and byte counters,
	// per-phase spans, and a summary line per session.  Nil keeps the
	// protocol hot path uninstrumented.
	Obs *obs.Registry
	// Logf, when non-nil, receives one line per session.
	Logf func(format string, args ...any)

	mu      sync.Mutex
	perPeer map[string]int

	limitOnce sync.Once
	sem       chan struct{}
	inFlight  atomic.Int64
}

func (s *Server) logf(format string, args ...any) {
	if s.Logf != nil {
		s.Logf(format, args...)
	}
}

// lifecycle returns the obs lifecycle census (nil-safe: inert without a
// registry).
func (s *Server) lifecycle() *obs.Lifecycle { return s.Obs.Lifecycle() }

// group returns the configured group backend, defaulted.
func (s *Server) group() group.Backend {
	if g := s.Config.Group; g != nil {
		return g
	}
	return group.Default()
}

// peerHost reduces a remote address to its policy-accounting key: the
// host part of host:port.  Keying by the full address would hand every
// TCP connection a fresh budget (each dial arrives from a new ephemeral
// port), turning MaxQueriesPerPeer into a per-connection no-op.
func peerHost(peer string) string {
	if host, _, err := net.SplitHostPort(peer); err == nil {
		return host
	}
	return peer
}

// cachePeerIdentity resolves the identity that keys this session's
// encrypted-set cache slot: the authenticated PeerIdentity when the
// server configures one, the unauthenticated remote host otherwise.
// ok=false means the session must run without the cache.
func (s *Server) cachePeerIdentity(peer string, conn transport.Conn) (string, bool) {
	if s.PeerIdentity != nil {
		return s.PeerIdentity(peer, conn)
	}
	return peerHost(peer), true
}

// acquireSlot claims a concurrent-session slot; the release function is
// non-nil iff a slot was claimed.  ok is false when the server is
// saturated.
func (s *Server) acquireSlot() (release func(), ok bool) {
	s.limitOnce.Do(func() {
		if s.MaxSessions > 0 {
			s.sem = make(chan struct{}, s.MaxSessions)
		}
	})
	if s.sem == nil {
		return func() {}, true
	}
	select {
	case s.sem <- struct{}{}:
		return func() { <-s.sem }, true
	default:
		return nil, false
	}
}

// Serve accepts sessions until the listener closes or ctx is cancelled.
// Each connection carries exactly one protocol session and is handled on
// its own goroutine.
//
// Transient accept failures — EMFILE under an accept storm, aborted
// connections — are retried with exponential backoff (5ms doubling to
// 1s, the net/http pattern) instead of killing the server; only a
// non-transient listener error or cancellation ends the loop.
//
// Shutdown drains gracefully: cancelling ctx stops the accept loop, then
// in-flight sessions may finish for up to DrainTimeout before being
// force-cancelled.  Serve returns ctx.Err() after the drain completes.
func (s *Server) Serve(ctx context.Context, ln net.Listener) error {
	// Sessions run under their own cancellation root so that shutdown can
	// stop accepting without instantly killing work in flight.
	sctx, cancelSessions := context.WithCancel(context.WithoutCancel(ctx))
	defer cancelSessions()
	go func() {
		<-ctx.Done()
		ln.Close() // lint:ignore errclose listener close is the shutdown signal; Accept surfaces the resulting error
	}()
	var wg sync.WaitGroup
	var tempDelay time.Duration
	for {
		nc, err := ln.Accept()
		if err != nil {
			if ctx.Err() != nil {
				return s.drainSessions(ctx.Err(), &wg, cancelSessions)
			}
			var ne net.Error
			if errors.As(err, &ne) && ne.Temporary() {
				if tempDelay == 0 {
					tempDelay = 5 * time.Millisecond
				} else {
					tempDelay *= 2
				}
				if tempDelay > time.Second {
					tempDelay = time.Second
				}
				s.lifecycle().AddAcceptRetry()
				s.logf("party: accept error: %v; retrying in %v", err, tempDelay)
				select {
				case <-time.After(tempDelay):
					continue
				case <-ctx.Done():
					return s.drainSessions(ctx.Err(), &wg, cancelSessions)
				}
			}
			return s.drainSessions(fmt.Errorf("party: accept: %w", err), &wg, cancelSessions)
		}
		tempDelay = 0
		wg.Add(1)
		go func() {
			defer wg.Done()
			peer := nc.RemoteAddr().String()
			conn := transport.NewTCP(nc)
			defer func() { _ = conn.Close() }()
			if err := s.handle(sctx, peer, conn); err != nil {
				s.logf("party: session with %s failed: %v", peer, err)
			}
		}()
	}
}

// drainSessions finishes a Serve run: it waits for in-flight sessions up
// to DrainTimeout, force-cancels the stragglers, and returns cause.
func (s *Server) drainSessions(cause error, wg *sync.WaitGroup, cancel context.CancelFunc) error {
	idle := make(chan struct{})
	go func() {
		wg.Wait()
		close(idle)
	}()
	if d := s.DrainTimeout; d > 0 {
		if n := s.inFlight.Load(); n > 0 {
			s.lifecycle().AddDrain()
			s.logf("party: draining %d in-flight sessions (up to %v)", n, d)
		}
		t := time.NewTimer(d)
		defer t.Stop()
		select {
		case <-idle:
			return cause
		case <-t.C:
			n := s.inFlight.Load()
			s.lifecycle().AddDrainForced(n)
			s.logf("party: drain deadline hit; force-cancelling %d sessions", n)
		}
	}
	cancel()
	<-idle
	return cause
}

// HandleConn answers a single session on an established transport (used
// by tests and by in-process deployments over pipes).  peer names the
// remote for policy accounting.
func (s *Server) HandleConn(ctx context.Context, peer string, conn transport.Conn) error {
	return s.handle(ctx, peer, conn)
}

// handle runs the session lifecycle around runSession: the saturation
// gate, the in-flight census, and the classification of timeout
// evictions into the obs lifecycle counters.
func (s *Server) handle(ctx context.Context, peer string, conn transport.Conn) error {
	release, ok := s.acquireSlot()
	if !ok {
		s.lifecycle().AddSaturationReject()
		err := fmt.Errorf("%w: %d concurrent sessions", ErrSaturated, s.MaxSessions)
		// Tell the peer before hanging up, briefly: a saturated server
		// must not spend long on a slow rejectee either.
		sendCtx, cancel := context.WithTimeout(ctx, 2*time.Second)
		defer cancel()
		codec := wire.NewCodec(s.group())
		if data, encErr := codec.Encode(wire.ErrorMsg{Text: err.Error()}); encErr == nil {
			_ = conn.Send(sendCtx, data)
		}
		return err
	}
	defer release()
	s.inFlight.Add(1)
	defer s.inFlight.Add(-1)

	if d := s.Timeouts.Session; d > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, d)
		defer cancel()
	}
	if d := s.Timeouts.Idle; d > 0 {
		conn = transport.WithIdleTimeout(conn, d)
	}
	err := s.runSession(ctx, peer, conn)
	switch {
	case errors.Is(err, errHandshakeTimeout):
		s.lifecycle().AddHandshakeTimeout()
	case errors.Is(err, transport.ErrIdleTimeout):
		s.lifecycle().AddIdleTimeout()
	case errors.Is(err, context.DeadlineExceeded) && s.Timeouts.Session > 0:
		s.lifecycle().AddSessionTimeout()
	}
	return err
}

// errHandshakeTimeout marks a session whose opening header never arrived
// within Timeouts.Handshake.
var errHandshakeTimeout = errors.New("party: handshake timeout")

// recvHeader reads the session-opening frame under the handshake
// allowance.
func (s *Server) recvHeader(ctx context.Context, conn transport.Conn) ([]byte, error) {
	hctx := ctx
	if d := s.Timeouts.Handshake; d > 0 {
		var cancel context.CancelFunc
		hctx, cancel = context.WithTimeout(ctx, d)
		defer cancel()
	}
	first, err := conn.Recv(hctx)
	if err != nil && ctx.Err() == nil &&
		(hctx.Err() == context.DeadlineExceeded || errors.Is(err, context.DeadlineExceeded) || errors.Is(err, transport.ErrIdleTimeout)) {
		// Any per-operation timeout while waiting for the opening header
		// is a handshake failure: the peer connected and never spoke.
		return nil, fmt.Errorf("%w: %v", errHandshakeTimeout, err)
	}
	return first, err
}

func (s *Server) runSession(ctx context.Context, peer string, conn transport.Conn) error {
	// The receiver speaks first: read its header to learn which protocol
	// it wants, then hand the role function a transport that replays the
	// frame.
	first, err := s.recvHeader(ctx, conn)
	if err != nil {
		return fmt.Errorf("party: reading session header: %w", err)
	}
	cfg := s.Config
	g := s.group()
	cfg.Group = g
	codec := wire.NewCodec(g)
	msg, err := codec.Decode(first)
	if err != nil {
		return fmt.Errorf("party: decoding session header: %w", err)
	}
	hdr, ok := msg.(wire.Header)
	if !ok {
		return fmt.Errorf("party: first frame is %v, want header", msg.Kind())
	}

	if err := s.checkPolicy(peer, hdr); err != nil {
		// Tell the peer why before hanging up.
		if data, encErr := codec.Encode(wire.ErrorMsg{Text: err.Error()}); encErr == nil {
			_ = conn.Send(ctx, data)
		}
		return err
	}

	// Adopt the peer's shard count: the coordinator's outer handshake
	// (running over the replayed header) verifies the agreement, and the
	// policy gate above has already bounded it.  Shards <= 1 leaves the
	// classic single-session path untouched.
	if hdr.Shards > 1 {
		cfg.Shards = int(hdr.Shards)
	}

	replay := &replayConn{Conn: conn, pending: first}
	s.logf("party: %s running %v (peer set size %d, shards %d)", peer, hdr.Protocol, hdr.SetSize, normalizedShards(hdr.Shards))

	// Stamp the run with the served table's version and, when caching is
	// enabled, point it at this peer's slot.  The slot identity is the
	// authenticated PeerIdentity when configured — the only key that
	// makes the no-exponent-reuse guarantee hold across NATs/proxies —
	// and otherwise falls back to the peer *host* (not the per-connection
	// address, which would defeat cross-session reuse).  A configured
	// PeerIdentity that cannot identify the peer bypasses the cache for
	// the session rather than falling back to the spoofable address.
	if s.DataVersion != nil {
		cfg.DataVersion = s.DataVersion()
	}
	// A table binding replaces the static dataset with a consistent
	// snapshot: values, records, multiset, and the announced version all
	// reflect the same instant, which is what lets a standing session's
	// delta chain start exactly where the base run left off.
	values, records, multiset := s.Values, s.Records, s.Multiset
	tableName := s.TableName
	if s.Source != nil {
		snap := s.Source.Snapshot()
		values, multiset = snap.Values, snap.Multiset
		records = snap.Records
		cfg.DataVersion = snap.Version
		cfg.DeltaSource = s.Source.DeltaSource()
		cfg.DeltaChurnMax = s.DeltaChurnMax
		if tableName == "" {
			tableName = s.Source.TableName()
		}
	}
	if s.SetCache != nil {
		if id, ok := s.cachePeerIdentity(peer, conn); ok {
			cfg.SetCache = s.SetCache
			cfg.CacheKey = core.SetCacheKey{
				PeerHost: id,
				Table:    tableName,
				Version:  cfg.DataVersion,
				Protocol: hdr.Protocol,
			}
		}
	}

	// Attribute the run to an observability session.  The header frame
	// already consumed above is re-counted when replayConn hands it back
	// through the instrumented core session, so the byte census stays
	// complete.
	var osess *obs.Session
	if s.Obs != nil {
		osess = s.Obs.StartSession(obs.SessionInfo{
			Protocol:     hdr.Protocol.String(),
			Peer:         peer,
			Role:         "sender",
			LocalSetSize: localSetSize(hdr.Protocol, values, records, multiset),
			PeerSetSize:  int(hdr.SetSize),
		})
		ctx = obs.WithSession(ctx, osess)
	}

	// Standing service needs a delta source and an unsharded session (a
	// table-level delta spans all hash partitions); everything else runs
	// the classic one-shot senders.
	standing := s.Standing && s.Source != nil && normalizedShards(hdr.Shards) == 1
	switch hdr.Protocol {
	case wire.ProtoIntersection:
		if standing {
			_, err = core.IntersectionSenderStanding(ctx, cfg, replay, values)
		} else {
			_, err = core.IntersectionSender(ctx, cfg, replay, values)
		}
	case wire.ProtoIntersectionSize:
		_, err = core.IntersectionSizeSender(ctx, cfg, replay, values)
	case wire.ProtoEquijoin:
		switch {
		case records == nil:
			err = s.refuse(ctx, conn, codec, "server does not serve equijoin")
		case standing:
			_, err = core.EquijoinSenderStanding(ctx, cfg, replay, records)
		default:
			_, err = core.EquijoinSender(ctx, cfg, replay, records)
		}
	case wire.ProtoEquijoinSize:
		if multiset == nil {
			multiset = values
		}
		_, err = core.EquijoinSizeSender(ctx, cfg, replay, multiset)
	default:
		err = s.refuse(ctx, conn, codec, fmt.Sprintf("unsupported protocol %v", hdr.Protocol))
	}

	var stats leakage.SessionStats
	if osess != nil {
		snap := osess.End(err)
		stats = leakage.SessionStats{
			Bytes:    snap.Counters.TotalWireBytes(),
			Duration: snap.Duration,
			Spans:    obs.RenderSpans(snap.Spans),
		}
		s.logf("party: session %d trace=%s with %s: protocol=%v outcome=%q duration=%s modexp=%d oracle_hashes=%d wire_bytes=%d spans=%q",
			snap.ID, snap.TraceID, peer, hdr.Protocol, snap.Outcome,
			snap.Duration.Round(time.Microsecond),
			snap.Counters.ModExps(), snap.Counters.OracleHashes,
			snap.Counters.TotalWireBytes(), stats.Spans)
	}
	if err != nil {
		return err
	}

	s.record(peer, hdr, stats)
	return nil
}

// localSetSize reports how many values the server commits to a run of
// the given protocol over the session's dataset, for session metadata.
func localSetSize(proto wire.Protocol, values [][]byte, records []core.JoinRecord, multiset [][]byte) int {
	switch proto {
	case wire.ProtoEquijoin:
		return len(records)
	case wire.ProtoEquijoinSize:
		if multiset != nil {
			return len(multiset)
		}
	}
	return len(values)
}

func (s *Server) refuse(ctx context.Context, conn transport.Conn, codec *wire.Codec, why string) error {
	if data, err := codec.Encode(wire.ErrorMsg{Text: why}); err == nil {
		_ = conn.Send(ctx, data)
	}
	return fmt.Errorf("%w: %s", ErrPolicy, why)
}

func (s *Server) checkPolicy(peer string, hdr wire.Header) error {
	if !s.Policy.allows(hdr.Protocol) {
		return fmt.Errorf("%w: protocol %v not allowed", ErrPolicy, hdr.Protocol)
	}
	if s.Policy.MaxPeerSetSize > 0 && hdr.SetSize > uint64(s.Policy.MaxPeerSetSize) {
		return fmt.Errorf("%w: peer set size %d above limit %d", ErrPolicy, hdr.SetSize, s.Policy.MaxPeerSetSize)
	}
	if s.Policy.MinPeerSetSize > 0 && hdr.SetSize < uint64(s.Policy.MinPeerSetSize) {
		return fmt.Errorf("%w: peer set size %d below minimum %d", ErrPolicy, hdr.SetSize, s.Policy.MinPeerSetSize)
	}
	if k := int(hdr.Shards); k > 1 {
		if k > transport.MaxShards {
			return fmt.Errorf("%w: shard count %d above transport limit %d", ErrPolicy, k, transport.MaxShards)
		}
		if s.Policy.MaxShards > 0 && k > s.Policy.MaxShards {
			return fmt.Errorf("%w: shard count %d above limit %d", ErrPolicy, k, s.Policy.MaxShards)
		}
	}
	host := peerHost(peer)
	s.mu.Lock()
	count := s.perPeer[host]
	s.mu.Unlock()
	if s.Policy.MaxQueriesPerPeer > 0 && count >= s.Policy.MaxQueriesPerPeer {
		return fmt.Errorf("%w: peer %s exhausted its %d-query budget", ErrPolicy, host, s.Policy.MaxQueriesPerPeer)
	}
	if s.Auditor != nil {
		if err := s.Auditor.Check(peer, hdr.Protocol.String(), s.Values); err != nil {
			return fmt.Errorf("%w: %v", ErrPolicy, err)
		}
	}
	return nil
}

func (s *Server) record(peer string, hdr wire.Header, stats leakage.SessionStats) {
	s.mu.Lock()
	if s.perPeer == nil {
		s.perPeer = make(map[string]int)
	}
	s.perPeer[peerHost(peer)]++
	s.mu.Unlock()
	if s.Auditor != nil {
		_ = s.Auditor.ApproveSession(peer, hdr.Protocol.String(), s.Values, stats)
	}
}

// normalizedShards maps the header's shard byte to the effective
// sub-session count (<= 1 means the classic single session).
func normalizedShards(k uint8) int {
	if k <= 1 {
		return 1
	}
	return int(k)
}

// replayConn hands back an already-consumed frame on the first Recv.
type replayConn struct {
	transport.Conn
	mu      sync.Mutex
	pending []byte
}

func (r *replayConn) Recv(ctx context.Context) ([]byte, error) {
	r.mu.Lock()
	if p := r.pending; p != nil {
		r.pending = nil
		r.mu.Unlock()
		return p, nil
	}
	r.mu.Unlock()
	return r.Conn.Recv(ctx)
}
