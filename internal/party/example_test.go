package party_test

import (
	"context"
	"fmt"
	"net"
	"time"

	"minshare/internal/core"
	"minshare/internal/group"
	"minshare/internal/party"
)

// A complete networked deployment: a Server answering queries over one
// value set, and a Client with retry enabled for transient connection
// failures.  Every call dials a fresh connection, runs one protocol
// session, and hangs up.
func ExampleClient() {
	srv := &party.Server{
		Config: core.Config{Group: group.TestGroup()},
		Values: [][]byte{[]byte("ann"), []byte("bob"), []byte("carol")},
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		fmt.Println("listen:", err)
		return
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	done := make(chan struct{})
	go func() {
		defer close(done)
		_ = srv.Serve(ctx, ln)
	}()

	client := party.NewClient(ln.Addr().String(), core.Config{Group: group.TestGroup()})
	client.Retry = party.Retry{Attempts: 3, BaseDelay: 50 * time.Millisecond}

	res, err := client.Intersect(ctx, [][]byte{[]byte("bob"), []byte("zoe")})
	if err != nil {
		fmt.Println("intersect:", err)
		return
	}
	for _, v := range res.Values {
		fmt.Printf("shared: %s\n", v)
	}

	cancel()
	<-done

	// Output:
	// shared: bob
}
