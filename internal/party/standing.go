package party

import (
	"context"
	"fmt"

	"minshare/internal/core"
	"minshare/internal/transport"
)

// StandingIntersect is a client-held standing intersection: the base
// result plus the open subscription that keeps it current.  The
// connection stays dedicated to the subscription until Close.
type StandingIntersect struct {
	q    *core.StandingIntersection
	conn transport.Conn
	end  func(error)
}

// IntersectStanding runs the intersection protocol and subscribes to
// the server's updates.  Unlike the one-shot calls the connection
// outlives the method: the caller owns the returned handle and must
// Close it.  Dial failures are retried under the client's Retry policy;
// a session that reached the server is never re-run (see Retry).
func (c *Client) IntersectStanding(ctx context.Context, values [][]byte) (*StandingIntersect, error) {
	ctx, end := c.observe(ctx, "intersection", len(values))
	conn, q, err := standingDial(ctx, c, func(conn transport.Conn) (*core.StandingIntersection, error) {
		return core.IntersectionReceiverStanding(ctx, c.cfg, conn, values)
	})
	if err != nil {
		end(err)
		return nil, err
	}
	return &StandingIntersect{q: q, conn: conn, end: end}, nil
}

// Result returns the base run's intersection.
func (s *StandingIntersect) Result() *core.IntersectionResult { return s.q.Result() }

// Version reports the server data version the current result reflects.
func (s *StandingIntersect) Version() uint64 { return s.q.Version() }

// Await blocks for the next pushed update and returns the refreshed
// intersection, or core.ErrSubscriptionEnded once the server has ended
// the subscription (the last result stays valid).
func (s *StandingIntersect) Await(ctx context.Context) (*core.IntersectionResult, error) {
	return s.q.Await(ctx)
}

// Close ends the subscription and releases the connection.
func (s *StandingIntersect) Close(ctx context.Context) error {
	err := s.q.Close(ctx)
	_ = s.conn.Close()
	s.end(err)
	return err
}

// StandingJoinQuery is a client-held standing equijoin; see
// StandingIntersect.
type StandingJoinQuery struct {
	q    *core.StandingJoin
	conn transport.Conn
	end  func(error)
}

// JoinStanding runs the equijoin protocol and subscribes to the
// server's updates.  The caller owns the returned handle and must
// Close it.
func (c *Client) JoinStanding(ctx context.Context, values [][]byte) (*StandingJoinQuery, error) {
	ctx, end := c.observe(ctx, "equijoin", len(values))
	conn, q, err := standingDial(ctx, c, func(conn transport.Conn) (*core.StandingJoin, error) {
		return core.EquijoinReceiverStanding(ctx, c.cfg, conn, values)
	})
	if err != nil {
		end(err)
		return nil, err
	}
	return &StandingJoinQuery{q: q, conn: conn, end: end}, nil
}

// Result returns the base run's join result.
func (s *StandingJoinQuery) Result() *core.JoinResult { return s.q.Result() }

// Version reports the server data version the current result reflects.
func (s *StandingJoinQuery) Version() uint64 { return s.q.Version() }

// Await blocks for the next pushed update and returns the refreshed
// join result, or core.ErrSubscriptionEnded once the server has ended
// the subscription.
func (s *StandingJoinQuery) Await(ctx context.Context) (*core.JoinResult, error) {
	return s.q.Await(ctx)
}

// Close ends the subscription and releases the connection.
func (s *StandingJoinQuery) Close(ctx context.Context) error {
	err := s.q.Close(ctx)
	_ = s.conn.Close()
	s.end(err)
	return err
}

// standingDial is withConn for sessions that outlive the call: same
// dial-retry policy and same never-rerun rule, but on success the
// connection is handed to the caller instead of closed.
func standingDial[Q any](ctx context.Context, c *Client, run func(transport.Conn) (*Q, error)) (transport.Conn, *Q, error) {
	attempts := c.Retry.Attempts
	if attempts < 1 {
		attempts = 1
	}
	var err error
	for attempt := 0; attempt < attempts; attempt++ {
		if attempt > 0 {
			if !c.retryPause(ctx, attempt-1) {
				return nil, nil, err
			}
		}
		var conn transport.Conn
		conn, err = c.dial(ctx)
		if err != nil {
			err = fmt.Errorf("party: dialing %s: %w", c.addr, err)
			if ctx.Err() != nil {
				return nil, nil, err
			}
			continue // nothing reached the peer: safe to retry
		}
		probe := &sendProbe{Conn: conn}
		var q *Q
		q, err = run(probe)
		if err == nil {
			return probe, q, nil
		}
		_ = conn.Close()
		if probe.attempted.Load() || ctx.Err() != nil {
			// The peer may have seen our header: never re-run.
			return nil, nil, err
		}
	}
	return nil, nil, err
}
