package party

import (
	"context"
	"errors"
	"testing"
	"time"

	"minshare/internal/core"
	"minshare/internal/group"
	"minshare/internal/obs"
	"minshare/internal/reldb"
)

// standingTable builds a live table with one row per value in vals.
func standingTable(t *testing.T, vals ...string) *reldb.Table {
	t.Helper()
	tbl := reldb.NewTable("accounts", reldb.MustSchema(
		reldb.Column{Name: "v", Type: reldb.TypeString},
		reldb.Column{Name: "note", Type: reldb.TypeString},
	))
	for _, v := range vals {
		tbl.MustInsert(reldb.String(v), reldb.String("note-"+v))
	}
	return tbl
}

func standingServer(tbl *reldb.Table) *Server {
	return &Server{
		Config: core.Config{Group: group.TestGroup()},
		Source: MustBindTable(tbl, "v"),
		// The tiny test sets churn over the default quarter-set bound.
		DeltaChurnMax: 1,
		Standing:      true,
	}
}

func enc(s string) []byte { return reldb.String(s).Encode() }

func valueSet(res *core.IntersectionResult) map[string]bool {
	out := make(map[string]bool, len(res.Values))
	for _, v := range res.Values {
		dv, err := reldb.DecodeValue(v)
		if err != nil {
			out[string(v)] = true
			continue
		}
		out[dv.AsString()] = true
	}
	return out
}

// TestStandingServerPushesUpdates drives a standing intersection
// end-to-end through HandleConn: base run, a push per table mutation,
// and a clean client-side close.
func TestStandingServerPushesUpdates(t *testing.T) {
	tbl := standingTable(t, "a", "b", "c", "d")
	srv := standingServer(tbl)
	client := pipeClient(t, srv)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	q, err := client.IntersectStanding(ctx, [][]byte{enc("b"), enc("d"), enc("x")})
	if err != nil {
		t.Fatalf("IntersectStanding: %v", err)
	}
	defer q.Close(ctx)
	if got := valueSet(q.Result()); !got["b"] || !got["d"] || len(got) != 2 {
		t.Fatalf("base intersection = %v", got)
	}
	if q.Version() != tbl.Version() {
		t.Fatalf("base version = %d, table at %d", q.Version(), tbl.Version())
	}

	// The server notices the insert and pushes: "x" joins the result.
	tbl.MustInsert(reldb.String("x"), reldb.String("note-x"))
	res, err := q.Await(ctx)
	if err != nil {
		t.Fatalf("Await after insert: %v", err)
	}
	if got := valueSet(res); !got["x"] || len(got) != 3 {
		t.Fatalf("after insert intersection = %v", got)
	}

	// A deletion shrinks it again.
	tbl.Delete(func(r reldb.Row) bool { return r[0].AsString() == "b" })
	res, err = q.Await(ctx)
	if err != nil {
		t.Fatalf("Await after delete: %v", err)
	}
	if got := valueSet(res); got["b"] || len(got) != 2 {
		t.Fatalf("after delete intersection = %v", got)
	}
	if q.Version() != tbl.Version() {
		t.Errorf("version = %d, table at %d", q.Version(), tbl.Version())
	}

	if err := q.Close(ctx); err != nil {
		t.Fatalf("Close: %v", err)
	}
}

// TestStandingServerJoinUpdatesExt verifies a standing equijoin sees
// ext(v) changes: an updated row group reaches the subscriber as a
// fresh payload without a new protocol run.
func TestStandingServerJoinUpdatesExt(t *testing.T) {
	tbl := standingTable(t, "a", "b", "c")
	srv := standingServer(tbl)
	client := pipeClient(t, srv)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	q, err := client.JoinStanding(ctx, [][]byte{enc("a"), enc("c")})
	if err != nil {
		t.Fatalf("JoinStanding: %v", err)
	}
	defer q.Close(ctx)
	base := q.Result()
	if len(base.Matches) != 2 {
		t.Fatalf("base matches = %d, want 2", len(base.Matches))
	}
	var aExt []byte
	for _, m := range base.Matches {
		if dv, err := reldb.DecodeValue(m.Value); err == nil && dv.AsString() == "a" {
			aExt = m.Ext
		}
	}
	if aExt == nil {
		t.Fatal("no match for a in base result")
	}

	// Rewriting a's row group changes ext(a) but not set membership.
	tbl.Delete(func(r reldb.Row) bool { return r[0].AsString() == "a" })
	tbl.MustInsert(reldb.String("a"), reldb.String("REWRITTEN"))
	res, err := q.Await(ctx)
	if err != nil {
		t.Fatalf("Await: %v", err)
	}
	if len(res.Matches) != 2 {
		t.Fatalf("matches after update = %d, want 2", len(res.Matches))
	}
	for _, m := range res.Matches {
		dv, err := reldb.DecodeValue(m.Value)
		if err != nil || dv.AsString() != "a" {
			continue
		}
		rows, err := reldb.DecodeRows(m.Ext, 2)
		if err != nil {
			t.Fatalf("decoding updated ext: %v", err)
		}
		if len(rows) != 1 || rows[0][1].AsString() != "REWRITTEN" {
			t.Errorf("updated ext rows = %v", rows)
		}
	}
}

// TestStandingServerServesOneShotClients certifies a Standing server is
// invisible to classic receivers: every one-shot protocol still runs,
// and the equijoin-size path (which has no standing mode) works off the
// bound table's multiset.
func TestStandingServerServesOneShotClients(t *testing.T) {
	tbl := standingTable(t, "a", "b", "c", "d")
	tbl.MustInsert(reldb.String("a"), reldb.String("dup")) // multiset: a twice
	srv := standingServer(tbl)
	client := pipeClient(t, srv)
	ctx := context.Background()
	query := [][]byte{enc("a"), enc("x"), enc("d")}

	res, err := client.Intersect(ctx, query)
	if err != nil {
		t.Fatalf("Intersect: %v", err)
	}
	if len(res.Values) != 2 {
		t.Errorf("intersection = %d values, want 2", len(res.Values))
	}
	size, err := client.IntersectSize(ctx, query)
	if err != nil {
		t.Fatalf("IntersectSize: %v", err)
	}
	if size.IntersectionSize != 2 {
		t.Errorf("size = %d, want 2", size.IntersectionSize)
	}
	join, err := client.Join(ctx, query)
	if err != nil {
		t.Fatalf("Join: %v", err)
	}
	if len(join.Matches) != 2 {
		t.Errorf("join matches = %d, want 2", len(join.Matches))
	}
	js, err := client.JoinSize(ctx, [][]byte{enc("a")})
	if err != nil {
		t.Fatalf("JoinSize: %v", err)
	}
	if js.JoinSize != 2 {
		t.Errorf("join size = %d, want 2 (a appears twice)", js.JoinSize)
	}
}

// TestStandingServerShardedFallsBack runs a sharded session against a
// Standing server: table-level deltas cannot follow hash partitions, so
// the classic shard path must answer it.
func TestStandingServerShardedFallsBack(t *testing.T) {
	tbl := standingTable(t, "a", "b", "c", "d", "e", "f")
	srv := standingServer(tbl)
	cfg := core.Config{Group: group.TestGroup(), Shards: 2}
	client := NewClientConnFunc(cfg, pipeClient(t, srv).dial)

	res, err := client.Intersect(context.Background(), [][]byte{enc("b"), enc("e"), enc("x")})
	if err != nil {
		t.Fatalf("sharded Intersect: %v", err)
	}
	if len(res.Values) != 2 {
		t.Errorf("sharded intersection = %d values, want 2", len(res.Values))
	}
}

// TestStandingServerSubscriptionSurvivesChurnEnd: a delta over the
// churn bound ends the subscription with a clean SubEnd rather than an
// error, and the last result stays valid.
func TestStandingServerChurnEndsSubscription(t *testing.T) {
	tbl := standingTable(t, "a", "b", "c", "d")
	srv := standingServer(tbl)
	srv.DeltaChurnMax = 0.01 // any churn on a 4-value set exceeds this
	client := pipeClient(t, srv)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	q, err := client.IntersectStanding(ctx, [][]byte{enc("a"), enc("b")})
	if err != nil {
		t.Fatalf("IntersectStanding: %v", err)
	}
	defer q.Close(ctx)
	tbl.MustInsert(reldb.String("zz"), reldb.String("over-bound"))
	if _, err := q.Await(ctx); !errors.Is(err, core.ErrSubscriptionEnded) {
		t.Fatalf("Await = %v, want ErrSubscriptionEnded", err)
	}
	if got := valueSet(q.Result()); !got["a"] || !got["b"] || len(got) != 2 {
		t.Errorf("retained result = %v", got)
	}
}

// TestStandingServerCacheDeltaUpgrade pairs the binding with the sender
// cache: a repeat one-shot query after a small mutation must hit the
// delta-upgrade path (one upgrade, zero rebuilds) and still answer
// correctly.
func TestStandingServerCacheDeltaUpgrade(t *testing.T) {
	tbl := standingTable(t, "a", "b", "c", "d")
	reg := obs.NewRegistry()
	srv := standingServer(tbl)
	srv.SetCache = core.NewSenderSetCache(1<<20, reg.Cache())
	srv.Obs = reg
	client := pipeClient(t, srv)
	ctx := context.Background()
	query := [][]byte{enc("a"), enc("x"), enc("zz")}

	if _, err := client.Intersect(ctx, query); err != nil {
		t.Fatalf("cold Intersect: %v", err)
	}
	tbl.MustInsert(reldb.String("zz"), reldb.String("new"))
	res, err := client.Intersect(ctx, query)
	if err != nil {
		t.Fatalf("warm Intersect: %v", err)
	}
	if got := valueSet(res); !got["a"] || !got["zz"] || len(got) != 2 {
		t.Fatalf("upgraded intersection = %v", got)
	}
	snap := reg.Cache().Snapshot()
	if snap.Upgrades != 1 || snap.Rebuilds != 0 {
		t.Errorf("cache upgrades/rebuilds = %d/%d, want 1/0", snap.Upgrades, snap.Rebuilds)
	}
}
