package party

import (
	"context"
	"fmt"

	"minshare/internal/core"
	"minshare/internal/transport"
)

// Client runs receiver-side protocols against a Server.  Each call opens
// a fresh connection (a server connection carries exactly one session).
type Client struct {
	addr string
	cfg  core.Config
	// dial is swappable for tests; defaults to TCP.
	dial func(ctx context.Context) (transport.Conn, error)
}

// NewClient returns a client for the server at addr.
func NewClient(addr string, cfg core.Config) *Client {
	c := &Client{addr: addr, cfg: cfg}
	c.dial = func(ctx context.Context) (transport.Conn, error) {
		return transport.Dial(ctx, "tcp", addr)
	}
	return c
}

// NewClientConnFunc returns a client using a custom connection factory
// (in-process pipes in tests, TLS dialers in deployments).
func NewClientConnFunc(cfg core.Config, dial func(ctx context.Context) (transport.Conn, error)) *Client {
	return &Client{cfg: cfg, dial: dial}
}

func (c *Client) withConn(ctx context.Context, f func(conn transport.Conn) error) error {
	conn, err := c.dial(ctx)
	if err != nil {
		return fmt.Errorf("party: dialing %s: %w", c.addr, err)
	}
	defer conn.Close()
	return f(conn)
}

// Intersect runs the intersection protocol against the server.
func (c *Client) Intersect(ctx context.Context, values [][]byte) (*core.IntersectionResult, error) {
	var res *core.IntersectionResult
	err := c.withConn(ctx, func(conn transport.Conn) error {
		var err error
		res, err = core.IntersectionReceiver(ctx, c.cfg, conn, values)
		return err
	})
	return res, err
}

// IntersectSize runs the intersection-size protocol against the server.
func (c *Client) IntersectSize(ctx context.Context, values [][]byte) (*core.SizeResult, error) {
	var res *core.SizeResult
	err := c.withConn(ctx, func(conn transport.Conn) error {
		var err error
		res, err = core.IntersectionSizeReceiver(ctx, c.cfg, conn, values)
		return err
	})
	return res, err
}

// Join runs the equijoin protocol against the server.
func (c *Client) Join(ctx context.Context, values [][]byte) (*core.JoinResult, error) {
	var res *core.JoinResult
	err := c.withConn(ctx, func(conn transport.Conn) error {
		var err error
		res, err = core.EquijoinReceiver(ctx, c.cfg, conn, values)
		return err
	})
	return res, err
}

// JoinSize runs the equijoin-size protocol against the server; values is
// a multiset.
func (c *Client) JoinSize(ctx context.Context, values [][]byte) (*core.JoinSizeResult, error) {
	var res *core.JoinSizeResult
	err := c.withConn(ctx, func(conn transport.Conn) error {
		var err error
		res, err = core.EquijoinSizeReceiver(ctx, c.cfg, conn, values)
		return err
	})
	return res, err
}
