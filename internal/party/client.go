package party

import (
	"context"
	"fmt"
	"math/rand/v2"
	"sync/atomic"
	"time"

	"minshare/internal/core"
	"minshare/internal/obs"
	"minshare/internal/transport"
)

// Retry configures client-side backoff for transient connection
// -establishment failures: refused or timed-out dials, TLS handshakes
// that never complete, a listener mid-restart.
//
// What is — deliberately — never retried is a session whose first frame
// already reached the peer.  A protocol run is not idempotent once the
// server has read the opening header: it has learned |V_R| (the paper's
// permitted additional information I), charged the per-host query
// budget, and written the audit trail.  Re-running silently would turn
// one logical query into several observed ones, so any failure after
// the first delivered frame — including a policy rejection or a
// saturated-server refusal, which the peer only reports after reading
// the header — surfaces to the caller, who alone can decide to query
// again.
type Retry struct {
	// Attempts is the total number of tries, including the first
	// (0 or 1 = no retry).
	Attempts int
	// BaseDelay is the backoff before the first retry; it doubles per
	// attempt.  Defaults to 50ms.
	BaseDelay time.Duration
	// MaxDelay caps the backoff.  Defaults to 2s.
	MaxDelay time.Duration
}

// backoff returns the jittered pause before retry n (0-based): the
// exponential delay min(MaxDelay, BaseDelay·2ⁿ) with its upper half
// randomized so synchronized clients reconnecting to a restarted server
// spread out instead of stampeding.
func (r Retry) backoff(n int) time.Duration {
	base, max := r.BaseDelay, r.MaxDelay
	if base <= 0 {
		base = 50 * time.Millisecond
	}
	if max <= 0 {
		max = 2 * time.Second
	}
	d := base
	for i := 0; i < n && d < max; i++ {
		d *= 2
	}
	if d > max {
		d = max
	}
	return d/2 + rand.N(d/2+1)
}

// Client runs receiver-side protocols against a Server.  Each call opens
// a fresh connection (a server connection carries exactly one session).
type Client struct {
	addr string
	cfg  core.Config
	// dial is swappable for tests; defaults to TCP.
	dial func(ctx context.Context) (transport.Conn, error)

	// Retry, when Attempts > 1, re-dials after transient
	// connection-establishment failures; see the Retry doc for what is
	// never retried.  Settable until the first call.
	Retry Retry
	// Obs, when non-nil, counts retries in the registry's lifecycle
	// census.
	Obs *obs.Registry
}

// NewClient returns a client for the server at addr.
func NewClient(addr string, cfg core.Config) *Client {
	c := &Client{addr: addr, cfg: cfg}
	c.dial = func(ctx context.Context) (transport.Conn, error) {
		return transport.Dial(ctx, "tcp", addr)
	}
	return c
}

// NewClientConnFunc returns a client using a custom connection factory
// (in-process pipes in tests, TLS dialers in deployments).
func NewClientConnFunc(cfg core.Config, dial func(ctx context.Context) (transport.Conn, error)) *Client {
	return &Client{cfg: cfg, dial: dial}
}

// sendProbe marks the moment a session stops being safely retryable: it
// records that a Send was attempted, whether or not it succeeded — a
// failed write may still have delivered bytes the peer acted on.
type sendProbe struct {
	transport.Conn
	attempted atomic.Bool
}

func (p *sendProbe) Send(ctx context.Context, frame []byte) error {
	p.attempted.Store(true)
	return p.Conn.Send(ctx, frame)
}

// retryPause sleeps out the jittered backoff before retry n and counts
// it; false means ctx ended first and the caller must give up.
func (c *Client) retryPause(ctx context.Context, n int) bool {
	t := time.NewTimer(c.Retry.backoff(n))
	select {
	case <-t.C:
	case <-ctx.Done():
		t.Stop()
		return false
	}
	c.Obs.Lifecycle().AddClientRetry()
	return true
}

func (c *Client) withConn(ctx context.Context, f func(conn transport.Conn) error) error {
	attempts := c.Retry.Attempts
	if attempts < 1 {
		attempts = 1
	}
	var err error
	for attempt := 0; attempt < attempts; attempt++ {
		if attempt > 0 {
			if !c.retryPause(ctx, attempt-1) {
				return err
			}
		}
		var conn transport.Conn
		conn, err = c.dial(ctx)
		if err != nil {
			err = fmt.Errorf("party: dialing %s: %w", c.addr, err)
			if ctx.Err() != nil {
				return err
			}
			continue // nothing reached the peer: safe to retry
		}
		probe := &sendProbe{Conn: conn}
		err = f(probe)
		_ = conn.Close()
		if err == nil || probe.attempted.Load() || ctx.Err() != nil {
			// Success, or the peer may have seen our header — either way
			// this attempt is the last.
			return err
		}
	}
	return err
}

// observe attaches a client-side obs session to ctx when the client has
// a registry and the caller did not already supply a session of its own,
// so every Client call is counted, span-timed, and trace-stitched with
// the server without the caller touching the obs API.  The returned end
// function closes the session with the run's outcome; with no registry
// (or a caller-provided session) both returns are pass-throughs.
func (c *Client) observe(ctx context.Context, protocol string, localSet int) (context.Context, func(error)) {
	if c.Obs == nil || obs.SessionFrom(ctx) != nil {
		return ctx, func(error) {}
	}
	sess := c.Obs.StartSession(obs.SessionInfo{
		Protocol:     protocol,
		Peer:         c.addr,
		Role:         "receiver",
		LocalSetSize: localSet,
	})
	return obs.WithSession(ctx, sess), func(err error) { sess.End(err) }
}

// Intersect runs the intersection protocol against the server.
func (c *Client) Intersect(ctx context.Context, values [][]byte) (*core.IntersectionResult, error) {
	ctx, end := c.observe(ctx, "intersection", len(values))
	var res *core.IntersectionResult
	err := c.withConn(ctx, func(conn transport.Conn) error {
		var err error
		res, err = core.IntersectionReceiver(ctx, c.cfg, conn, values)
		return err
	})
	end(err)
	return res, err
}

// IntersectSize runs the intersection-size protocol against the server.
func (c *Client) IntersectSize(ctx context.Context, values [][]byte) (*core.SizeResult, error) {
	ctx, end := c.observe(ctx, "intersection-size", len(values))
	var res *core.SizeResult
	err := c.withConn(ctx, func(conn transport.Conn) error {
		var err error
		res, err = core.IntersectionSizeReceiver(ctx, c.cfg, conn, values)
		return err
	})
	end(err)
	return res, err
}

// Join runs the equijoin protocol against the server.
func (c *Client) Join(ctx context.Context, values [][]byte) (*core.JoinResult, error) {
	ctx, end := c.observe(ctx, "equijoin", len(values))
	var res *core.JoinResult
	err := c.withConn(ctx, func(conn transport.Conn) error {
		var err error
		res, err = core.EquijoinReceiver(ctx, c.cfg, conn, values)
		return err
	})
	end(err)
	return res, err
}

// JoinSize runs the equijoin-size protocol against the server; values is
// a multiset.
func (c *Client) JoinSize(ctx context.Context, values [][]byte) (*core.JoinSizeResult, error) {
	ctx, end := c.observe(ctx, "equijoin-size", len(values))
	var res *core.JoinSizeResult
	err := c.withConn(ctx, func(conn transport.Conn) error {
		var err error
		res, err = core.EquijoinSizeReceiver(ctx, c.cfg, conn, values)
		return err
	})
	end(err)
	return res, err
}
