package party

import (
	"context"
	"errors"
	"fmt"
	"net"
	"runtime"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"minshare/internal/core"
	"minshare/internal/group"
	"minshare/internal/obs"
	"minshare/internal/transport"
	"minshare/internal/wire"
)

// waitGoroutines waits for the goroutine count to settle back to base,
// failing the test if stalled-session goroutines leaked.
func waitGoroutines(t *testing.T, base int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		if runtime.NumGoroutine() <= base {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines = %d, want <= %d: session leak", runtime.NumGoroutine(), base)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// --- MaxQueriesPerPeer regression -----------------------------------------

// TestQueryBudgetSpansConnections is the regression test for the
// host:port accounting bug: the per-peer budget must be charged to the
// remote *host*, so reconnecting from a fresh ephemeral port (which
// every TCP dial does) cannot reset it.  The N+1-th connection from one
// host must be rejected with ErrPolicy.
func TestQueryBudgetSpansConnections(t *testing.T) {
	const budget = 2
	srv := testServer(Policy{MaxQueriesPerPeer: budget})
	ctx := context.Background()
	cfg := core.Config{Group: group.TestGroup()}

	var port atomic.Int64
	port.Store(40000)
	srvErrs := make(chan error, budget+1)
	// Every dial presents the same host from a brand-new port, exactly
	// like a real client reconnecting.
	client := NewClientConnFunc(cfg, func(ctx context.Context) (transport.Conn, error) {
		peer := fmt.Sprintf("192.0.2.7:%d", port.Add(1))
		cConn, sConn := transport.Pipe()
		go func() {
			defer sConn.Close()
			srvErrs <- srv.HandleConn(ctx, peer, sConn)
		}()
		return cConn, nil
	})

	q := [][]byte{[]byte("a")}
	for i := 0; i < budget; i++ {
		if _, err := client.IntersectSize(ctx, q); err != nil {
			t.Fatalf("query %d within budget rejected: %v", i, err)
		}
		if err := <-srvErrs; err != nil {
			t.Fatalf("server error on query %d: %v", i, err)
		}
	}
	if _, err := client.IntersectSize(ctx, q); err == nil {
		t.Fatal("budget did not span connections: N+1-th connection answered")
	} else if !strings.Contains(err.Error(), "budget") {
		t.Errorf("client error %q lacks the budget reason", err)
	}
	if err := <-srvErrs; !errors.Is(err, ErrPolicy) {
		t.Errorf("server error = %v, want ErrPolicy", err)
	}
}

// --- accept-loop robustness -----------------------------------------------

// tempErr is a transient net.Error, like EMFILE or ECONNABORTED.
type tempErr struct{}

func (tempErr) Error() string   { return "accept: too many open files (injected)" }
func (tempErr) Timeout() bool   { return false }
func (tempErr) Temporary() bool { return true }

// fakeListener scripts Accept results: errors and connections in order,
// then blocks until closed.
type fakeListener struct {
	events chan any // error or net.Conn
	closed chan struct{}
	addr   net.TCPAddr
}

func newFakeListener() *fakeListener {
	return &fakeListener{events: make(chan any, 16), closed: make(chan struct{})}
}

func (l *fakeListener) Accept() (net.Conn, error) {
	select {
	case ev := <-l.events:
		if err, ok := ev.(error); ok {
			return nil, err
		}
		return ev.(net.Conn), nil
	case <-l.closed:
		return nil, net.ErrClosed
	}
}

func (l *fakeListener) Close() error {
	select {
	case <-l.closed:
	default:
		close(l.closed)
	}
	return nil
}

func (l *fakeListener) Addr() net.Addr { return &l.addr }

// TestServeSurvivesAcceptErrorStorm: a storm of transient accept errors
// must not kill the server — it backs off, keeps retrying, and still
// answers the session that eventually arrives.  Regression test for the
// one-EMFILE-kills-the-server bug.
func TestServeSurvivesAcceptErrorStorm(t *testing.T) {
	srv := testServer(Policy{})
	srv.Obs = obs.NewRegistry()
	ln := newFakeListener()
	const storm = 6
	for i := 0; i < storm; i++ {
		ln.events <- tempErr{}
	}
	clientNC, serverNC := net.Pipe()
	ln.events <- serverNC

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	served := make(chan error, 1)
	go func() { served <- srv.Serve(ctx, ln) }()

	client := NewClientConnFunc(core.Config{Group: group.TestGroup()},
		func(ctx context.Context) (transport.Conn, error) {
			return transport.NewTCP(clientNC), nil
		})
	res, err := client.IntersectSize(context.Background(), [][]byte{[]byte("a")})
	if err != nil {
		t.Fatalf("session after accept storm failed: %v", err)
	}
	if res.IntersectionSize != 1 {
		t.Errorf("size = %d, want 1", res.IntersectionSize)
	}
	if got := srv.Obs.Lifecycle().Snapshot().AcceptRetries; got != storm {
		t.Errorf("accept_retries = %d, want %d", got, storm)
	}

	cancel()
	if err := <-served; !errors.Is(err, context.Canceled) {
		t.Errorf("Serve returned %v, want context.Canceled", err)
	}
}

// TestServeReturnsOnFatalAcceptError: a non-transient accept failure
// still ends the loop (with the cause), rather than spinning forever.
func TestServeReturnsOnFatalAcceptError(t *testing.T) {
	srv := testServer(Policy{})
	ln := newFakeListener()
	fatal := errors.New("listener torn out of the wall")
	ln.events <- fatal

	err := srv.Serve(context.Background(), ln)
	if !errors.Is(err, fatal) {
		t.Fatalf("Serve returned %v, want the fatal accept error", err)
	}
}

// --- timeouts -------------------------------------------------------------

// scriptedPeer speaks raw frames against a Server for timeout tests.
type scriptedPeer struct {
	t     *testing.T
	conn  transport.Conn
	codec *wire.Codec
	g     *group.Group
}

func newScriptedPeer(t *testing.T, conn transport.Conn) *scriptedPeer {
	g := group.TestGroup()
	return &scriptedPeer{t: t, conn: conn, codec: wire.NewCodec(g), g: g}
}

func (p *scriptedPeer) sendHeader(proto wire.Protocol, n int) {
	p.t.Helper()
	hdr := wire.Header{
		Protocol:    proto,
		GroupBits:   uint32(p.g.Bits()),
		GroupDigest: wire.GroupDigest(p.g),
		SetSize:     uint64(n),
	}
	data, err := p.codec.Encode(hdr)
	if err != nil {
		p.t.Fatalf("encode header: %v", err)
	}
	if err := p.conn.Send(context.Background(), data); err != nil {
		p.t.Errorf("send header: %v", err)
	}
}

// TestHandshakeTimeoutEvictsSilentPeer: a peer that connects and never
// sends its header is evicted within the handshake allowance.
func TestHandshakeTimeoutEvictsSilentPeer(t *testing.T) {
	srv := testServer(Policy{})
	srv.Obs = obs.NewRegistry()
	srv.Timeouts = Timeouts{Handshake: 100 * time.Millisecond}

	cConn, sConn := transport.Pipe()
	defer cConn.Close()
	start := time.Now()
	err := srv.HandleConn(context.Background(), "silent:1", sConn)
	if err == nil {
		t.Fatal("silent peer was not evicted")
	}
	if !errors.Is(err, errHandshakeTimeout) {
		t.Errorf("err = %v, want handshake timeout", err)
	}
	if d := time.Since(start); d > 3*time.Second {
		t.Errorf("eviction took %v", d)
	}
	if got := srv.Obs.Lifecycle().Snapshot().HandshakeTimeouts; got != 1 {
		t.Errorf("handshake_timeouts = %d, want 1", got)
	}
}

// TestIdleTimeoutEvictsMidStreamStaller: a peer that completes the
// handshake and then stalls must be evicted by the per-frame idle
// allowance, counted as an idle (not handshake) timeout.
func TestIdleTimeoutEvictsMidStreamStaller(t *testing.T) {
	srv := testServer(Policy{})
	srv.Obs = obs.NewRegistry()
	srv.Timeouts = Timeouts{Handshake: time.Second, Idle: 100 * time.Millisecond}

	cConn, sConn := transport.Pipe()
	defer cConn.Close()
	done := make(chan error, 1)
	go func() { done <- srv.HandleConn(context.Background(), "staller:1", sConn) }()

	peer := newScriptedPeer(t, cConn)
	peer.sendHeader(wire.ProtoIntersection, 3)
	if _, err := cConn.Recv(context.Background()); err != nil { // server's header
		t.Fatalf("reading server header: %v", err)
	}
	// ... and now stall: never send Y_R.
	select {
	case err := <-done:
		if !errors.Is(err, transport.ErrIdleTimeout) {
			t.Errorf("err = %v, want ErrIdleTimeout", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("mid-stream staller was not evicted")
	}
	lc := srv.Obs.Lifecycle().Snapshot()
	if lc.IdleTimeouts != 1 || lc.HandshakeTimeouts != 0 {
		t.Errorf("lifecycle = %+v, want exactly one idle timeout", lc)
	}
	// The failed run still landed in the session registry.
	snap := srv.Obs.Snapshot()
	if snap.SessionsFailed != 1 {
		t.Errorf("sessions_failed = %d, want 1", snap.SessionsFailed)
	}
}

// TestSessionTimeoutCapsWholeRun: with only the whole-session deadline
// set, a stalled run is evicted and counted as a session timeout.
func TestSessionTimeoutCapsWholeRun(t *testing.T) {
	srv := testServer(Policy{})
	srv.Obs = obs.NewRegistry()
	srv.Timeouts = Timeouts{Session: 150 * time.Millisecond}

	cConn, sConn := transport.Pipe()
	defer cConn.Close()
	done := make(chan error, 1)
	go func() { done <- srv.HandleConn(context.Background(), "slow:1", sConn) }()

	peer := newScriptedPeer(t, cConn)
	peer.sendHeader(wire.ProtoIntersection, 3)
	if _, err := cConn.Recv(context.Background()); err != nil {
		t.Fatalf("reading server header: %v", err)
	}
	select {
	case err := <-done:
		if !errors.Is(err, context.DeadlineExceeded) {
			t.Errorf("err = %v, want DeadlineExceeded", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("session deadline did not fire")
	}
	if got := srv.Obs.Lifecycle().Snapshot().SessionTimeouts; got != 1 {
		t.Errorf("session_timeouts = %d, want 1", got)
	}
}

// TestStalledPeersDoNotStarveHealthySessions is the acceptance test: two
// peers that connect over real TCP and never speak are evicted by the
// handshake allowance while a healthy session completes concurrently,
// and nothing leaks.
func TestStalledPeersDoNotStarveHealthySessions(t *testing.T) {
	base := runtime.NumGoroutine()
	srv := testServer(Policy{})
	srv.Obs = obs.NewRegistry()
	srv.Timeouts = Timeouts{Handshake: 200 * time.Millisecond, Idle: 2 * time.Second}

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	served := make(chan error, 1)
	go func() { served <- srv.Serve(ctx, ln) }()

	// Two stalled peers: connect, never send.
	var stalled []net.Conn
	for i := 0; i < 2; i++ {
		nc, err := net.Dial("tcp", ln.Addr().String())
		if err != nil {
			t.Fatal(err)
		}
		defer nc.Close()
		stalled = append(stalled, nc)
	}

	// A healthy session races the stalled ones.
	client := NewClient(ln.Addr().String(), core.Config{Group: group.TestGroup()})
	res, err := client.Intersect(context.Background(), [][]byte{[]byte("a"), []byte("zz")})
	if err != nil {
		t.Fatalf("healthy session failed alongside stalled peers: %v", err)
	}
	if len(res.Values) != 1 || string(res.Values[0]) != "a" {
		t.Errorf("result = %v", res.Values)
	}

	// The stalled peers must be disconnected within the allowance: the
	// server closes the conn, so a read observes EOF.
	for i, nc := range stalled {
		nc.SetReadDeadline(time.Now().Add(5 * time.Second))
		if _, err := nc.Read(make([]byte, 1)); err == nil {
			t.Errorf("stalled conn %d still open after handshake allowance", i)
		}
	}
	deadline := time.Now().Add(5 * time.Second)
	for srv.Obs.Lifecycle().Snapshot().HandshakeTimeouts < 2 && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if got := srv.Obs.Lifecycle().Snapshot().HandshakeTimeouts; got != 2 {
		t.Errorf("handshake_timeouts = %d, want 2", got)
	}

	cancel()
	if err := <-served; !errors.Is(err, context.Canceled) {
		t.Errorf("Serve returned %v", err)
	}
	waitGoroutines(t, base)
}

// --- saturation -----------------------------------------------------------

// TestSaturationRejectsExplicitly: the MaxSessions+1-th concurrent
// session is refused immediately with a wire error the peer can read —
// not queued, not silently dropped — and a slot freeing up readmits.
func TestSaturationRejectsExplicitly(t *testing.T) {
	srv := testServer(Policy{})
	srv.Obs = obs.NewRegistry()
	srv.MaxSessions = 1
	ctx := context.Background()

	// Occupy the only slot with a session that holds it until released.
	holdC, holdS := transport.Pipe()
	holding := make(chan error, 1)
	go func() { holding <- srv.HandleConn(ctx, "holder:1", holdS) }()
	deadline := time.Now().Add(5 * time.Second)
	for srv.inFlight.Load() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("holder session never started")
		}
		time.Sleep(time.Millisecond)
	}

	// The second arrival is refused with the saturation reason.
	client := pipeClient(t, srv)
	_, err := client.IntersectSize(ctx, [][]byte{[]byte("a")})
	if err == nil {
		t.Fatal("second session answered beyond MaxSessions")
	}
	if !errors.Is(err, core.ErrPeerFailure) || !strings.Contains(err.Error(), "saturated") {
		t.Errorf("client error = %v, want peer failure carrying saturation text", err)
	}
	if got := srv.Obs.Lifecycle().Snapshot().SaturationRejects; got != 1 {
		t.Errorf("saturation_rejects = %d, want 1", got)
	}

	// Release the slot; the next session goes through.
	holdC.Close()
	<-holding
	if _, err := client.IntersectSize(ctx, [][]byte{[]byte("a")}); err != nil {
		t.Fatalf("session after slot freed failed: %v", err)
	}
}

// --- graceful drain -------------------------------------------------------

// TestGracefulDrainLetsInFlightSessionsFinish: cancelling Serve's
// context mid-session stops accepting but lets the in-flight run finish
// inside the drain allowance; the client still gets its full result.
func TestGracefulDrainLetsInFlightSessionsFinish(t *testing.T) {
	base := runtime.NumGoroutine()
	srv := testServer(Policy{})
	srv.Obs = obs.NewRegistry()
	srv.DrainTimeout = 10 * time.Second

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	served := make(chan error, 1)
	go func() { served <- srv.Serve(ctx, ln) }()

	// A deliberately slow client: every frame crosses a 120ms-RTT link,
	// so the session is still in flight when shutdown begins.
	slow := NewClientConnFunc(core.Config{Group: group.TestGroup()},
		func(ctx context.Context) (transport.Conn, error) {
			inner, err := transport.Dial(ctx, "tcp", ln.Addr().String())
			if err != nil {
				return nil, err
			}
			return transport.NewLatency(inner, 120*time.Millisecond), nil
		})
	type result struct {
		res *core.IntersectionResult
		err error
	}
	got := make(chan result, 1)
	go func() {
		res, err := slow.Intersect(context.Background(), [][]byte{[]byte("a"), []byte("b"), []byte("zz")})
		got <- result{res, err}
	}()

	// Shut down as soon as the session is registered in flight.
	deadline := time.Now().Add(5 * time.Second)
	for srv.inFlight.Load() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("session never started")
		}
		time.Sleep(time.Millisecond)
	}
	cancel()

	r := <-got
	if r.err != nil {
		t.Fatalf("in-flight session killed by graceful shutdown: %v", r.err)
	}
	if len(r.res.Values) != 2 {
		t.Errorf("intersection = %d values, want 2", len(r.res.Values))
	}
	if err := <-served; !errors.Is(err, context.Canceled) {
		t.Errorf("Serve returned %v, want context.Canceled", err)
	}
	lc := srv.Obs.Lifecycle().Snapshot()
	if lc.Drains != 1 || lc.DrainForced != 0 {
		t.Errorf("lifecycle = %+v, want one clean drain", lc)
	}
	waitGoroutines(t, base)
}

// TestDrainDeadlineForceCancelsStragglers: a session still stalled when
// the drain deadline hits is force-cancelled, so shutdown completes
// promptly even with a peer wedged in a read.
func TestDrainDeadlineForceCancelsStragglers(t *testing.T) {
	base := runtime.NumGoroutine()
	srv := testServer(Policy{})
	srv.Obs = obs.NewRegistry()
	srv.DrainTimeout = 150 * time.Millisecond

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	served := make(chan error, 1)
	go func() { served <- srv.Serve(ctx, ln) }()

	// A peer that connects and wedges: no timeouts are configured, so
	// only the drain deadline can evict it.
	nc, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer nc.Close()
	deadline := time.Now().Add(5 * time.Second)
	for srv.inFlight.Load() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("wedged session never started")
		}
		time.Sleep(time.Millisecond)
	}

	cancel()
	select {
	case err := <-served:
		if !errors.Is(err, context.Canceled) {
			t.Errorf("Serve returned %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Serve still draining 5s after the 150ms drain deadline")
	}
	lc := srv.Obs.Lifecycle().Snapshot()
	if lc.Drains != 1 || lc.DrainForced != 1 || lc.DrainCancelled != 1 {
		t.Errorf("lifecycle = %+v, want one forced drain cancelling one session", lc)
	}
	waitGoroutines(t, base)
}

// --- client retry ---------------------------------------------------------

// TestClientRetriesTransientDialFailures: flaky dials are retried with
// backoff until the server answers; the retries land in the lifecycle
// census.
func TestClientRetriesTransientDialFailures(t *testing.T) {
	srv := testServer(Policy{})
	reg := obs.NewRegistry()
	var dials atomic.Int64
	client := NewClientConnFunc(core.Config{Group: group.TestGroup()},
		func(ctx context.Context) (transport.Conn, error) {
			if dials.Add(1) <= 2 {
				return nil, errors.New("connection refused (injected)")
			}
			cConn, sConn := transport.Pipe()
			go func() {
				defer sConn.Close()
				_ = srv.HandleConn(ctx, "flaky:1", sConn)
			}()
			return cConn, nil
		})
	client.Retry = Retry{Attempts: 4, BaseDelay: time.Millisecond, MaxDelay: 5 * time.Millisecond}
	client.Obs = reg

	res, err := client.IntersectSize(context.Background(), [][]byte{[]byte("a")})
	if err != nil {
		t.Fatalf("retried session failed: %v", err)
	}
	if res.IntersectionSize != 1 {
		t.Errorf("size = %d, want 1", res.IntersectionSize)
	}
	if got := dials.Load(); got != 3 {
		t.Errorf("dials = %d, want 3 (two failures, one success)", got)
	}
	if got := reg.Lifecycle().Snapshot().ClientRetries; got != 2 {
		t.Errorf("client_retries = %d, want 2", got)
	}
}

// TestClientRetryGivesUpAfterAttempts: a dead server exhausts the
// attempt budget and surfaces the dial error.
func TestClientRetryGivesUpAfterAttempts(t *testing.T) {
	var dials atomic.Int64
	refused := errors.New("connection refused (injected)")
	client := NewClientConnFunc(core.Config{Group: group.TestGroup()},
		func(ctx context.Context) (transport.Conn, error) {
			dials.Add(1)
			return nil, refused
		})
	client.Retry = Retry{Attempts: 3, BaseDelay: time.Millisecond}

	_, err := client.IntersectSize(context.Background(), [][]byte{[]byte("a")})
	if !errors.Is(err, refused) {
		t.Fatalf("err = %v, want the dial error", err)
	}
	if got := dials.Load(); got != 3 {
		t.Errorf("dials = %d, want 3", got)
	}
}

// TestClientNeverRetriesDeliveredSession is the acceptance test for the
// non-idempotency rule: once the client's opening header has been
// delivered, a failure must NOT trigger a re-run — the peer has already
// learned |V_R| and charged the query budget.  The scripted peer reads
// the header and kills the connection; the client must fail after
// exactly one dial despite a generous retry budget.
func TestClientNeverRetriesDeliveredSession(t *testing.T) {
	var dials atomic.Int64
	headerSeen := make(chan struct{}, 8)
	client := NewClientConnFunc(core.Config{Group: group.TestGroup()},
		func(ctx context.Context) (transport.Conn, error) {
			dials.Add(1)
			cConn, sConn := transport.Pipe()
			go func() {
				// Scripted peer: consume the handshake, then fail the
				// connection without answering.
				if _, err := sConn.Recv(context.Background()); err == nil {
					headerSeen <- struct{}{}
				}
				sConn.Close()
			}()
			return cConn, nil
		})
	client.Retry = Retry{Attempts: 5, BaseDelay: time.Millisecond}

	_, err := client.IntersectSize(context.Background(), [][]byte{[]byte("a")})
	if err == nil {
		t.Fatal("session succeeded against a peer that hung up")
	}
	if got := dials.Load(); got != 1 {
		t.Fatalf("client dialled %d times, want 1: a delivered session must never re-run", got)
	}
	select {
	case <-headerSeen:
	case <-time.After(time.Second):
		t.Fatal("scripted peer never saw the header")
	}
}

// TestRetryBackoffBounds: the jittered exponential backoff stays inside
// [delay/2, delay] with the exponential capped at MaxDelay.
func TestRetryBackoffBounds(t *testing.T) {
	r := Retry{Attempts: 10, BaseDelay: 10 * time.Millisecond, MaxDelay: 80 * time.Millisecond}
	for n := 0; n < 8; n++ {
		want := 10 * time.Millisecond << n
		if want > 80*time.Millisecond {
			want = 80 * time.Millisecond
		}
		for trial := 0; trial < 20; trial++ {
			got := r.backoff(n)
			if got < want/2 || got > want {
				t.Fatalf("backoff(%d) = %v, want within [%v, %v]", n, got, want/2, want)
			}
		}
	}
}
