package simulate

import (
	"context"
	"math/rand"
	"reflect"
	"testing"

	"minshare/internal/commutative"
	"minshare/internal/core"
	"minshare/internal/group"
	"minshare/internal/oracle"
	"minshare/internal/transport"
	"minshare/internal/wire"
)

func bs(ss ...string) [][]byte {
	out := make([][]byte, len(ss))
	for i, s := range ss {
		out[i] = []byte(s)
	}
	return out
}

func TestSimulateSenderViewShape(t *testing.T) {
	g := group.TestGroup()
	rng := rand.New(rand.NewSource(1))
	v, err := SimulateSenderView(g, 12, rng)
	if err != nil {
		t.Fatal(err)
	}
	if len(v.YR) != 12 {
		t.Fatalf("|Y_R| = %d", len(v.YR))
	}
	for i, e := range v.YR {
		if !g.Contains(e) {
			t.Errorf("element %d not in group", i)
		}
		if i > 0 && v.YR[i-1].Cmp(e) > 0 {
			t.Error("simulated Y_R not sorted")
		}
	}
}

// TestSenderViewRealVsSimulatedStatistics compares the REAL S view
// (captured from genuine protocol runs) against the simulator's output
// on a small group: element byte histograms must agree within a generous
// chi-square bound.  Both are points in the same distribution family —
// (encrypted hashes of unknown values) vs (uniform residues) — and under
// DDH no statistic separates them; this test catches gross
// implementation biases (e.g. unsorted output, structured elements).
func TestSenderViewRealVsSimulatedStatistics(t *testing.T) {
	g := group.MustBuiltin(group.Bits64)
	const runs = 150
	const nR = 8

	var realBytes, simBytes []byte
	for i := 0; i < runs; i++ {
		cfgR := core.Config{Group: g, Rand: rand.New(rand.NewSource(int64(1000 + i))), Parallelism: 1}
		cfgS := core.Config{Group: g, Rand: rand.New(rand.NewSource(int64(5000 + i))), Parallelism: 1}
		vR := bs("a", "b", "c", "d", "e", "f", "g", "h")
		vS := bs("a", "b", "zz")

		ctx := context.Background()
		connR, connS := transport.Pipe()
		tapS := transport.NewTap(connS)
		ch := make(chan error, 1)
		go func() {
			_, err := core.IntersectionSender(ctx, cfgS, tapS, vS)
			ch <- err
		}()
		if _, err := core.IntersectionReceiver(ctx, cfgR, connR, vR); err != nil {
			t.Fatal(err)
		}
		if err := <-ch; err != nil {
			t.Fatal(err)
		}
		codec := wire.NewCodec(g)
		for _, f := range tapS.Received() {
			m, err := codec.Decode(f)
			if err != nil {
				t.Fatal(err)
			}
			if el, ok := m.(wire.Elements); ok {
				for _, e := range el.Elems {
					b := make([]byte, g.ElementLen())
					copy(b[g.ElementLen()-len(e.Bytes()):], e.Bytes())
					realBytes = append(realBytes, b...)
				}
			}
		}
		connR.Close()

		sim, err := SimulateSenderView(g, nR, rand.New(rand.NewSource(int64(9000+i))))
		if err != nil {
			t.Fatal(err)
		}
		for _, e := range sim.YR {
			b := make([]byte, g.ElementLen())
			copy(b[g.ElementLen()-len(e.Bytes()):], e.Bytes())
			simBytes = append(simBytes, b...)
		}
	}

	if len(realBytes) != len(simBytes) {
		t.Fatalf("sample sizes differ: %d vs %d", len(realBytes), len(simBytes))
	}
	// Chi-square over 16 buckets of the byte values.
	const buckets = 16
	var hr, hs [buckets]float64
	for i := range realBytes {
		hr[realBytes[i]>>4]++
		hs[simBytes[i]>>4]++
	}
	chi := 0.0
	for i := 0; i < buckets; i++ {
		if hr[i]+hs[i] == 0 {
			continue
		}
		d := hr[i] - hs[i]
		chi += d * d / (hr[i] + hs[i])
	}
	// 15 degrees of freedom; the 99.9% quantile is ≈ 37.7.  Use a
	// generous bound — the point is catching gross structure, not
	// borderline drift.
	if chi > 60 {
		t.Errorf("chi-square = %.1f: real and simulated S views differ grossly", chi)
	}
	t.Logf("chi-square(real vs simulated S view) = %.2f over %d samples", chi, len(realBytes))
}

// TestReceiverSimulatorFunctionalConsistency: running R's own output
// algorithm on the SIMULATED view must return exactly the intersection
// the simulator was given — the minimum bar for indistinguishability.
func TestReceiverSimulatorFunctionalConsistency(t *testing.T) {
	g := group.TestGroup()
	o := oracle.New(g)
	scheme := commutative.NewPowerFn(g)
	rng := rand.New(rand.NewSource(7))
	eR, err := scheme.GenerateKey(rng)
	if err != nil {
		t.Fatal(err)
	}

	vR := bs("a", "b", "c", "d", "e")
	intersection := bs("b", "d")
	const senderSetSize = 6

	view, err := SimulateReceiverView(g, o, scheme, eR, vR, intersection, senderSetSize, rng)
	if err != nil {
		t.Fatal(err)
	}
	if len(view.YS) != senderSetSize {
		t.Fatalf("|Y_S| = %d, want %d", len(view.YS), senderSetSize)
	}
	if len(view.Doubles) != len(vR) {
		t.Fatalf("|doubles| = %d, want %d", len(view.Doubles), len(vR))
	}
	for i := 1; i < len(view.YS); i++ {
		if view.YS[i-1].Cmp(view.YS[i]) > 0 {
			t.Fatal("simulated Y_S not sorted")
		}
	}

	got, err := RecoverIntersection(scheme, o, eR, vR, view)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(sortedStrings(got), sortedStrings(intersection)) {
		t.Errorf("recovered %v from simulated view, want %v", sortedStrings(got), sortedStrings(intersection))
	}
}

// TestReceiverSimulatorMatchesRealOutputs: the real view and the
// simulated view, fed through the same output computation, agree for a
// sweep of intersection patterns.
func TestReceiverSimulatorMatchesRealOutputs(t *testing.T) {
	g := group.TestGroup()
	for _, tc := range []struct {
		vR, vS []string
	}{
		{[]string{"a", "b"}, []string{"a", "b"}},
		{[]string{"a", "b", "c"}, []string{"x", "y"}},
		{[]string{"a", "b", "c", "d"}, []string{"b", "d", "q", "r", "s"}},
	} {
		cfgR := core.Config{Group: g, Rand: rand.New(rand.NewSource(1)), Parallelism: 1}
		cfgS := core.Config{Group: g, Rand: rand.New(rand.NewSource(2)), Parallelism: 1}
		ctx := context.Background()
		connR, connS := transport.Pipe()
		ch := make(chan error, 1)
		go func() {
			_, err := core.IntersectionSender(ctx, cfgS, connS, bs(tc.vS...))
			ch <- err
		}()
		res, err := core.IntersectionReceiver(ctx, cfgR, connR, bs(tc.vR...))
		if err != nil {
			t.Fatal(err)
		}
		if err := <-ch; err != nil {
			t.Fatal(err)
		}
		connR.Close()

		// Simulate with ONLY R's entitled knowledge and compare outputs.
		o := oracle.New(g)
		scheme := commutative.NewPowerFn(g)
		rng := rand.New(rand.NewSource(3))
		eR, _ := scheme.GenerateKey(rng)
		view, err := SimulateReceiverView(g, o, scheme, eR, bs(tc.vR...), res.Values, res.SenderSetSize, rng)
		if err != nil {
			t.Fatal(err)
		}
		simOut, err := RecoverIntersection(scheme, o, eR, bs(tc.vR...), view)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(sortedStrings(simOut), sortedStrings(res.Values)) {
			t.Errorf("vR=%v vS=%v: simulated output %v != real output %v",
				tc.vR, tc.vS, sortedStrings(simOut), sortedStrings(res.Values))
		}
	}
}

func TestSizeSimulatorFunctionalConsistency(t *testing.T) {
	g := group.TestGroup()
	scheme := commutative.NewPowerFn(g)
	rng := rand.New(rand.NewSource(11))
	eR, _ := scheme.GenerateKey(rng)

	for _, tc := range []struct{ nR, nS, inter int }{
		{5, 7, 3}, {4, 4, 0}, {6, 6, 6}, {1, 9, 1},
	} {
		view, err := SimulateSizeReceiverView(g, scheme, eR, tc.nR, tc.nS, tc.inter, rng)
		if err != nil {
			t.Fatalf("%+v: %v", tc, err)
		}
		if len(view.YS) != tc.nS || len(view.ZR) != tc.nR {
			t.Fatalf("%+v: shapes %d/%d", tc, len(view.YS), len(view.ZR))
		}
		got, err := RecoverIntersectionSize(scheme, eR, view)
		if err != nil {
			t.Fatal(err)
		}
		if got != tc.inter {
			t.Errorf("%+v: recovered size %d", tc, got)
		}
	}
}

func TestSimulatorInputValidation(t *testing.T) {
	g := group.TestGroup()
	o := oracle.New(g)
	scheme := commutative.NewPowerFn(g)
	rng := rand.New(rand.NewSource(13))
	eR, _ := scheme.GenerateKey(rng)

	if _, err := SimulateReceiverView(g, o, scheme, eR, bs("a"), bs("a", "b"), 1, rng); err == nil {
		t.Error("intersection larger than |V_S| accepted")
	}
	if _, err := SimulateSizeReceiverView(g, scheme, eR, 2, 2, 5, rng); err == nil {
		t.Error("impossible sizes accepted")
	}
}

func sortedStrings(bs [][]byte) []string {
	out := make([]string, len(bs))
	for i, b := range bs {
		out[i] = string(b)
	}
	for i := 0; i < len(out); i++ {
		for j := i + 1; j < len(out); j++ {
			if out[j] < out[i] {
				out[i], out[j] = out[j], out[i]
			}
		}
	}
	return out
}
