// Package simulate implements the simulators from the paper's security
// proofs (Statements 2, 4 and 6).
//
// The proofs argue semi-honest security by construction: for each party,
// a simulator — given ONLY what that party is entitled to learn —
// produces a fake protocol view whose distribution is computationally
// indistinguishable from the real one.  This package makes those
// simulators executable.  Tests then check everything that can be
// checked without solving DDH:
//
//   - Shape equality: the simulated view has exactly the real view's
//     message structure (counts, sortedness, group membership).
//   - Functional consistency: running the receiver's output computation
//     on the simulated view returns exactly the intersection the
//     simulator was given — a distinguisher running R's own algorithm
//     sees no difference.
//   - Statistical closeness: over many runs on a small group, byte
//     histograms of real and simulated views agree within chi-square
//     tolerance.
//
// A distinguisher that beat these simulators would, per Lemmas 1-3 of
// the paper, break the Decisional Diffie-Hellman assumption.
package simulate

import (
	"fmt"
	"io"
	"math/big"
	"sort"

	"minshare/internal/commutative"
	"minshare/internal/group"
	"minshare/internal/oracle"
)

// SenderView is everything party S receives (beyond the header) in the
// intersection, intersection-size and equijoin protocols: the sorted
// encrypted set Y_R.
type SenderView struct {
	YR []*big.Int
}

// SimulateSenderView implements the Statement 2 simulator for S: "the
// simulator generates |V_R| random values z_i ∈r DomF and orders them
// lexicographically."  It needs only |V_R| — which is precisely the
// point.
func SimulateSenderView(g *group.Group, nR int, r io.Reader) (*SenderView, error) {
	elems := make([]*big.Int, nR)
	for i := range elems {
		var err error
		elems[i], err = g.RandomElement(r)
		if err != nil {
			return nil, fmt.Errorf("simulate: sampling z_%d: %w", i, err)
		}
	}
	sortElems(elems)
	return &SenderView{YR: elems}, nil
}

// ReceiverView is everything party R receives (beyond the header) in the
// intersection protocol: the sorted Y_S, and the f_eS(y) replies aligned
// with the sorted Y_R that R sent.
type ReceiverView struct {
	YS      []*big.Int // sorted, |V_S| elements
	Doubles []*big.Int // aligned with R's sorted Y_R
}

// SimulateReceiverView implements the Statement 2 simulator for R.  Its
// inputs are exactly the values the proof allows: V_R itself, R's own
// key e_R and hash oracle (part of R's state), the intersection
// V_S ∩ V_R, and the size |V_S|.  V_S − V_R is NOT available.
//
// Following the proof: choose a fresh key ẽ_S; Y_S contains
// f_ẽS(h(v)) for v in the intersection plus |V_S − V_R| random group
// elements; the step-4(b) replies encrypt each y ∈ Y_R with ẽ_S.
func SimulateReceiverView(
	g *group.Group,
	o *oracle.Oracle,
	scheme commutative.Scheme,
	eR *commutative.Key,
	vR [][]byte,
	intersection [][]byte,
	senderSetSize int,
	r io.Reader,
) (*ReceiverView, error) {
	if len(intersection) > senderSetSize {
		return nil, fmt.Errorf("simulate: intersection (%d) larger than |V_S| (%d)", len(intersection), senderSetSize)
	}
	tildeES, err := scheme.GenerateKey(r)
	if err != nil {
		return nil, fmt.Errorf("simulate: sampling ẽ_S: %w", err)
	}

	// Y_S: f_ẽS(h(v)) for intersection values + random padding.
	ys := make([]*big.Int, 0, senderSetSize)
	for _, v := range intersection {
		enc, err := scheme.Encrypt(tildeES, o.Hash(v))
		if err != nil {
			return nil, err
		}
		ys = append(ys, enc)
	}
	for len(ys) < senderSetSize {
		z, err := g.RandomElement(r)
		if err != nil {
			return nil, err
		}
		ys = append(ys, z)
	}
	sortElems(ys)

	// Step 4(b): encrypt each y of R's sorted Y_R with ẽ_S, preserving
	// order — exactly what the real S does with e_S.
	yR := make([]*big.Int, len(vR))
	for i, v := range vR {
		yR[i], err = scheme.Encrypt(eR, o.Hash(v))
		if err != nil {
			return nil, err
		}
	}
	sortElems(yR)
	doubles := make([]*big.Int, len(yR))
	for i, y := range yR {
		doubles[i], err = scheme.Encrypt(tildeES, y)
		if err != nil {
			return nil, err
		}
	}
	return &ReceiverView{YS: ys, Doubles: doubles}, nil
}

// RecoverIntersection runs party R's step 5-6 output computation on a
// (real or simulated) receiver view: encrypt Y_S under e_R and match
// the aligned doubles.  Functional consistency of the simulator means
// this returns exactly the intersection it was built from.
func RecoverIntersection(
	scheme commutative.Scheme,
	o *oracle.Oracle,
	eR *commutative.Key,
	vR [][]byte,
	view *ReceiverView,
) ([][]byte, error) {
	// Rebuild R's sorted order of Y_R (the simulator and the real
	// protocol both align replies with it).
	type pair struct {
		y *big.Int
		v []byte
	}
	pairs := make([]pair, len(vR))
	for i, v := range vR {
		y, err := scheme.Encrypt(eR, o.Hash(v))
		if err != nil {
			return nil, err
		}
		pairs[i] = pair{y: y, v: v}
	}
	sort.Slice(pairs, func(i, j int) bool { return pairs[i].y.Cmp(pairs[j].y) < 0 })

	zs := make(map[string]struct{}, len(view.YS))
	for _, y := range view.YS {
		z, err := scheme.Encrypt(eR, y)
		if err != nil {
			return nil, err
		}
		zs[string(z.Bytes())] = struct{}{}
	}
	var out [][]byte
	for pos, p := range pairs {
		if pos >= len(view.Doubles) {
			return nil, fmt.Errorf("simulate: view has %d doubles for %d values", len(view.Doubles), len(pairs))
		}
		if _, hit := zs[string(view.Doubles[pos].Bytes())]; hit {
			out = append(out, p.v)
		}
	}
	return out, nil
}

// SizeReceiverView is R's incoming view of the intersection-size
// protocol: sorted Y_S and the DETACHED sorted Z_R.
type SizeReceiverView struct {
	YS []*big.Int
	ZR []*big.Int
}

// SimulateSizeReceiverView implements the Statement 6 simulator for R:
// generate n = |V_S ∪ V_R| random elements y_1..y_n standing for
// f_eS(h(v)); Y_S is the first m = |V_S| of them; Z_R encrypts with e_R
// the n − t elements standing for V_R's values (t = |V_S − V_R|), i.e.
// |V_R| of them, chosen so that exactly |V_S ∩ V_R| coincide with Y_S
// members.
func SimulateSizeReceiverView(
	g *group.Group,
	scheme commutative.Scheme,
	eR *commutative.Key,
	nR, senderSetSize, intersectionSize int,
	r io.Reader,
) (*SizeReceiverView, error) {
	if intersectionSize > senderSetSize || intersectionSize > nR {
		return nil, fmt.Errorf("simulate: impossible sizes |∩|=%d |V_S|=%d |V_R|=%d", intersectionSize, senderSetSize, nR)
	}
	t := senderSetSize - intersectionSize // |V_S − V_R|
	n := senderSetSize + nR - intersectionSize
	ys := make([]*big.Int, n)
	for i := range ys {
		var err error
		ys[i], err = g.RandomElement(r)
		if err != nil {
			return nil, err
		}
	}
	yS := append([]*big.Int(nil), ys[:senderSetSize]...)
	sortElems(yS)
	zr := make([]*big.Int, 0, nR)
	for _, y := range ys[t:] { // V_R's stand-ins: intersection + R-only
		z, err := scheme.Encrypt(eR, y)
		if err != nil {
			return nil, err
		}
		zr = append(zr, z)
	}
	sortElems(zr)
	return &SizeReceiverView{YS: yS, ZR: zr}, nil
}

// RecoverIntersectionSize runs R's final step on a (real or simulated)
// size view: |f_eR(Y_S) ∩ Z_R|.
func RecoverIntersectionSize(scheme commutative.Scheme, eR *commutative.Key, view *SizeReceiverView) (int, error) {
	zSet := make(map[string]struct{}, len(view.YS))
	for _, y := range view.YS {
		z, err := scheme.Encrypt(eR, y)
		if err != nil {
			return 0, err
		}
		zSet[string(z.Bytes())] = struct{}{}
	}
	n := 0
	for _, z := range view.ZR {
		if _, hit := zSet[string(z.Bytes())]; hit {
			n++
		}
	}
	return n, nil
}

func sortElems(xs []*big.Int) {
	sort.Slice(xs, func(i, j int) bool { return xs[i].Cmp(xs[j]) < 0 })
}
