package wire

import (
	"bytes"
	"errors"
	"math/big"
	"math/rand"
	"testing"
	"testing/quick"

	"minshare/internal/group"
)

func testCodec() (*Codec, *group.Group) {
	g := group.TestGroup()
	return NewCodec(g), g
}

func randElems(t testing.TB, g *group.Group, n int, seed int64) []*big.Int {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	out := make([]*big.Int, n)
	for i := range out {
		var err error
		out[i], err = g.RandomElement(rng)
		if err != nil {
			t.Fatal(err)
		}
	}
	return out
}

func roundTrip(t *testing.T, c *Codec, m Message) Message {
	t.Helper()
	data, err := c.Encode(m)
	if err != nil {
		t.Fatalf("Encode(%v): %v", m.Kind(), err)
	}
	got, err := c.Decode(data)
	if err != nil {
		t.Fatalf("Decode(%v): %v", m.Kind(), err)
	}
	if got.Kind() != m.Kind() {
		t.Fatalf("kind changed: %v -> %v", m.Kind(), got.Kind())
	}
	return got
}

func TestHeaderRoundTrip(t *testing.T) {
	c, g := testCodec()
	h := Header{
		Protocol:    ProtoEquijoin,
		GroupBits:   uint32(g.Bits()),
		GroupDigest: GroupDigest(g),
		SetSize:     123456789,
		SetVersion:  42,
		TraceID:     [16]byte{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16},
		SpanID:      0xDEADBEEFCAFEF00D,
	}
	got := roundTrip(t, c, h).(Header)
	if got != h {
		t.Errorf("header round trip: got %+v, want %+v", got, h)
	}
	data, err := c.Encode(h)
	if err != nil {
		t.Fatal(err)
	}
	if len(data) != EncodedHeaderLen {
		t.Errorf("encoded header is %d bytes, want EncodedHeaderLen = %d", len(data), EncodedHeaderLen)
	}
}

// TestHeaderDecodeLegacy pins mixed-version interop across all three
// header generations: a pre-trace peer's 54-byte header (no trace
// context) must decode with a zero TraceID/SpanID ("untraced"), and a
// pre-S27 peer's 46-byte header (no set-version field either) must also
// decode with SetVersion 0 ("unversioned") — neither may fail the
// handshake as truncated.  The five accepted lengths (46/54/78/79/80)
// are the rows of the wire-evolution table in DESIGN.md §10.2; any new
// header field must add a row there and a case here.
func TestHeaderDecodeLegacy(t *testing.T) {
	c, g := testCodec()
	h := Header{
		Protocol:    ProtoIntersection,
		GroupBits:   uint32(g.Bits()),
		GroupDigest: GroupDigest(g),
		SetSize:     987654321,
		SetVersion:  42,
		TraceID:     [16]byte{0xAA, 0xBB, 0xCC, 0xDD, 0xEE, 0xFF, 1, 2, 3, 4, 5, 6, 7, 8, 9, 0x10},
		SpanID:      0x1234567890ABCDEF,
	}
	data, err := c.Encode(h)
	if err != nil {
		t.Fatal(err)
	}

	cases := []struct {
		name string
		data []byte
		want Header
	}{
		{"pre-trace 54-byte", data[:PreTraceEncodedHeaderLen], func() Header {
			w := h
			w.TraceID = [16]byte{}
			w.SpanID = 0
			return w
		}()},
		{"pre-S27 46-byte", data[:LegacyEncodedHeaderLen], func() Header {
			w := h
			w.TraceID = [16]byte{}
			w.SpanID = 0
			w.SetVersion = 0
			return w
		}()},
	}
	for _, tc := range cases {
		msg, err := c.Decode(tc.data)
		if err != nil {
			t.Fatalf("%s: Decode: %v", tc.name, err)
		}
		got, ok := msg.(Header)
		if !ok {
			t.Fatalf("%s: decoded %T, want Header", tc.name, msg)
		}
		if got != tc.want {
			t.Errorf("%s: got %+v, want %+v", tc.name, got, tc.want)
		}
	}

	// Any other length stays a decode error.
	for _, n := range []int{
		LegacyEncodedHeaderLen - 1,
		LegacyEncodedHeaderLen + 3,
		PreTraceEncodedHeaderLen - 1,
		PreTraceEncodedHeaderLen + 3,
		EncodedHeaderLen - 1,
	} {
		if _, err := c.Decode(data[:n]); err == nil {
			t.Errorf("%d-byte header decoded without error", n)
		}
	}
}

func TestElementsRoundTrip(t *testing.T) {
	c, g := testCodec()
	for _, n := range []int{0, 1, 7, 100} {
		want := randElems(t, g, n, int64(n))
		got := roundTrip(t, c, Elements{Elems: want}).(Elements)
		if len(got.Elems) != n {
			t.Fatalf("n=%d: got %d elements", n, len(got.Elems))
		}
		for i := range want {
			if got.Elems[i].Cmp(want[i]) != 0 {
				t.Fatalf("n=%d: element %d mismatch", n, i)
			}
		}
	}
}

func TestElementsFixedWidth(t *testing.T) {
	// Small elements must be zero-padded: a vector of n elements is
	// exactly 1 + 4 + n*ElemLen bytes, the paper's n·k bits.
	c, _ := testCodec()
	small := []*big.Int{big.NewInt(4), big.NewInt(9)}
	data, err := c.Encode(Elements{Elems: small})
	if err != nil {
		t.Fatal(err)
	}
	if want := 1 + 4 + 2*c.ElemLen(); len(data) != want {
		t.Errorf("encoded %d bytes, want %d", len(data), want)
	}
	got, err := c.Decode(data)
	if err != nil {
		t.Fatal(err)
	}
	if got.(Elements).Elems[0].Int64() != 4 || got.(Elements).Elems[1].Int64() != 9 {
		t.Error("small elements corrupted by padding")
	}
}

func TestPairsRoundTrip(t *testing.T) {
	c, g := testCodec()
	a := randElems(t, g, 5, 10)
	b := randElems(t, g, 5, 11)
	got := roundTrip(t, c, Pairs{A: a, B: b}).(Pairs)
	for i := range a {
		if got.A[i].Cmp(a[i]) != 0 || got.B[i].Cmp(b[i]) != 0 {
			t.Fatalf("pair %d mismatch", i)
		}
	}
}

func TestTriplesRoundTrip(t *testing.T) {
	c, g := testCodec()
	a := randElems(t, g, 4, 20)
	b := randElems(t, g, 4, 21)
	cc := randElems(t, g, 4, 22)
	got := roundTrip(t, c, Triples{A: a, B: b, C: cc}).(Triples)
	for i := range a {
		if got.A[i].Cmp(a[i]) != 0 || got.B[i].Cmp(b[i]) != 0 || got.C[i].Cmp(cc[i]) != 0 {
			t.Fatalf("triple %d mismatch", i)
		}
	}
}

func TestExtPairsRoundTrip(t *testing.T) {
	c, g := testCodec()
	elems := randElems(t, g, 3, 30)
	exts := [][]byte{[]byte("alpha"), {}, []byte("a longer ext(v) record payload")}
	got := roundTrip(t, c, ExtPairs{Elem: elems, Ext: exts}).(ExtPairs)
	for i := range elems {
		if got.Elem[i].Cmp(elems[i]) != 0 {
			t.Fatalf("extpair elem %d mismatch", i)
		}
		if string(got.Ext[i]) != string(exts[i]) {
			t.Fatalf("extpair ext %d mismatch", i)
		}
	}
}

func TestErrorMsgRoundTrip(t *testing.T) {
	c, _ := testCodec()
	got := roundTrip(t, c, ErrorMsg{Text: "peer failure: group mismatch"}).(ErrorMsg)
	if got.Text != "peer failure: group mismatch" {
		t.Errorf("text = %q", got.Text)
	}
}

func TestLengthMismatches(t *testing.T) {
	c, g := testCodec()
	a := randElems(t, g, 2, 40)
	b := randElems(t, g, 3, 41)
	if _, err := c.Encode(Pairs{A: a, B: b}); err == nil {
		t.Error("mismatched Pairs accepted")
	}
	if _, err := c.Encode(Triples{A: a, B: a, C: b}); err == nil {
		t.Error("mismatched Triples accepted")
	}
	if _, err := c.Encode(ExtPairs{Elem: a, Ext: [][]byte{{1}}}); err == nil {
		t.Error("mismatched ExtPairs accepted")
	}
}

func TestDecodeRejectsGarbage(t *testing.T) {
	c, g := testCodec()
	valid, err := c.Encode(Elements{Elems: randElems(t, g, 3, 50)})
	if err != nil {
		t.Fatal(err)
	}

	cases := []struct {
		name string
		data []byte
		want error
	}{
		{"empty", nil, ErrTruncated},
		{"bad kind", []byte{0xEE, 0, 0, 0, 0}, ErrBadKind},
		{"truncated body", valid[:len(valid)-5], ErrTruncated},
		{"trailing bytes", append(append([]byte(nil), valid...), 0x00), ErrTrailing},
		{"short header", []byte{byte(KindHeader), 1, 2}, ErrTruncated},
		{"truncated count", []byte{byte(KindElements), 0, 0}, ErrTruncated},
	}
	for _, tc := range cases {
		if _, err := c.Decode(tc.data); !errors.Is(err, tc.want) {
			t.Errorf("%s: err = %v, want %v", tc.name, err, tc.want)
		}
	}
}

func TestDecodeRejectsHugeCount(t *testing.T) {
	c, _ := testCodec()
	data := []byte{byte(KindElements), 0xFF, 0xFF, 0xFF, 0xFF}
	if _, err := c.Decode(data); !errors.Is(err, ErrTooLarge) {
		t.Errorf("err = %v, want ErrTooLarge", err)
	}
}

func TestDecodeExtPairTruncatedExt(t *testing.T) {
	c, g := testCodec()
	data, err := c.Encode(ExtPairs{Elem: randElems(t, g, 1, 60), Ext: [][]byte{[]byte("hello")}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Decode(data[:len(data)-2]); !errors.Is(err, ErrTruncated) {
		t.Errorf("err = %v, want ErrTruncated", err)
	}
}

func TestDecodeNeverPanicsProperty(t *testing.T) {
	c, _ := testCodec()
	f := func(data []byte) bool {
		_, _ = c.Decode(data) // must not panic
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestKindAndProtocolStrings(t *testing.T) {
	kinds := []Kind{KindHeader, KindElements, KindPairs, KindTriples, KindExtPairs, KindError, Kind(99)}
	for _, k := range kinds {
		if k.String() == "" {
			t.Errorf("Kind(%d).String() empty", k)
		}
	}
	protos := []Protocol{ProtoIntersection, ProtoEquijoin, ProtoIntersectionSize, ProtoEquijoinSize, ProtoNaiveHash, Protocol(99)}
	for _, p := range protos {
		if p.String() == "" {
			t.Errorf("Protocol(%d).String() empty", p)
		}
	}
}

func TestGroupDigestDistinguishesGroups(t *testing.T) {
	a := GroupDigest(group.MustBuiltin(group.Bits256))
	b := GroupDigest(group.MustBuiltin(group.Bits512))
	if a == b {
		t.Error("distinct groups share a digest")
	}
}

// TestGoldenVectors pins the exact byte layouts documented in
// DESIGN.md Section 10 ("Wire-format reference").  Any change to an
// encoding must update both this test and the spec.  The 64-bit
// builtin group keeps ElementLen at 8 so the vectors stay readable.
func TestGoldenVectors(t *testing.T) {
	g := group.MustBuiltin(group.Bits64)
	c := NewCodec(g)
	if got := g.ElementLen(); got != 8 {
		t.Fatalf("ElementLen = %d, want 8", got)
	}
	e := func(v int64) *big.Int { return big.NewInt(v) }

	digest := GroupDigest(g)
	header := Header{
		Protocol:    ProtoEquijoin,
		GroupBits:   64,
		GroupDigest: digest,
		SetSize:     0x0102030405060708,
		SetVersion:  0x1122334455667788,
		TraceID: [16]byte{0xA1, 0xA2, 0xA3, 0xA4, 0xA5, 0xA6, 0xA7, 0xA8,
			0xB1, 0xB2, 0xB3, 0xB4, 0xB5, 0xB6, 0xB7, 0xB8},
		SpanID: 0xC1C2C3C4C5C6C7C8,
	}
	wantHeader := []byte{
		1,           // kind
		2,           // protocol: equijoin
		0, 0, 0, 64, // group bits
	}
	wantHeader = append(wantHeader, digest[:]...)                                   // offsets 6-37
	wantHeader = append(wantHeader, 1, 2, 3, 4, 5, 6, 7, 8)                         // set size, offsets 38-45
	wantHeader = append(wantHeader, 0x11, 0x22, 0x33, 0x44, 0x55, 0x66, 0x77, 0x88) // set version, 46-53
	wantHeader = append(wantHeader, 0xA1, 0xA2, 0xA3, 0xA4, 0xA5, 0xA6, 0xA7, 0xA8,
		0xB1, 0xB2, 0xB3, 0xB4, 0xB5, 0xB6, 0xB7, 0xB8) // trace id, offsets 54-69
	wantHeader = append(wantHeader, 0xC1, 0xC2, 0xC3, 0xC4, 0xC5, 0xC6, 0xC7, 0xC8) // span id, offsets 70-77

	cases := []struct {
		name string
		msg  Message
		want []byte
	}{
		{"header", header, wantHeader},
		{"elements", Elements{Elems: []*big.Int{e(0x0102), e(3)}}, []byte{
			2,          // kind
			0, 0, 0, 2, // entry count
			0, 0, 0, 0, 0, 0, 1, 2,
			0, 0, 0, 0, 0, 0, 0, 3,
		}},
		{"pairs", Pairs{A: []*big.Int{e(1), e(3)}, B: []*big.Int{e(2), e(4)}}, []byte{
			3,          // kind
			0, 0, 0, 2, // entry count (a pair is one entry)
			0, 0, 0, 0, 0, 0, 0, 1, // a0
			0, 0, 0, 0, 0, 0, 0, 2, // b0
			0, 0, 0, 0, 0, 0, 0, 3, // a1
			0, 0, 0, 0, 0, 0, 0, 4, // b1
		}},
		{"triples", Triples{A: []*big.Int{e(1)}, B: []*big.Int{e(2)}, C: []*big.Int{e(3)}}, []byte{
			4,          // kind
			0, 0, 0, 1, // entry count
			0, 0, 0, 0, 0, 0, 0, 1,
			0, 0, 0, 0, 0, 0, 0, 2,
			0, 0, 0, 0, 0, 0, 0, 3,
		}},
		{"extpairs", ExtPairs{Elem: []*big.Int{e(5)}, Ext: [][]byte{[]byte("hi")}}, []byte{
			5,          // kind
			0, 0, 0, 1, // entry count
			0, 0, 0, 0, 0, 0, 0, 5, // element
			0, 0, 0, 2, // ext length
			'h', 'i',
		}},
		{"error", ErrorMsg{Text: "no"}, []byte{
			6,          // kind
			0, 0, 0, 2, // length
			'n', 'o',
		}},
		{"stream begin", StreamBegin{Inner: KindPairs, Count: 7}, []byte{
			7,          // kind
			3,          // inner kind: pairs
			0, 0, 0, 7, // total entry count
		}},
		{"stream chunk", StreamChunk{Elems: []*big.Int{e(1), e(2)}}, []byte{
			8,          // kind
			0, 0, 0, 2, // elements in this chunk
			0, 0, 0, 0, 0, 0, 0, 1,
			0, 0, 0, 0, 0, 0, 0, 2,
		}},
		{"stream ext chunk", StreamExtChunk{Elem: []*big.Int{e(9)}, Ext: [][]byte{{0xAB}}}, []byte{
			9,          // kind
			0, 0, 0, 1, // entries in this chunk
			0, 0, 0, 0, 0, 0, 0, 9,
			0, 0, 0, 1, // ext length
			0xAB,
		}},
		{"stream end", StreamEnd{Chunks: 3}, []byte{
			10,         // kind
			0, 0, 0, 3, // chunk count
		}},
		{"subscribe", Subscribe{FromVersion: 0x0102030405060708}, []byte{
			11,                     // kind
			1, 2, 3, 4, 5, 6, 7, 8, // from-version
		}},
		{"sub update", SubUpdate{
			From: 7, To: 9, HasExt: true,
			Upserts:   []*big.Int{e(5)},
			UpsertExt: [][]byte{{0xCD}},
			Deleted:   []*big.Int{e(6)},
		}, []byte{
			12,                     // kind
			0, 0, 0, 0, 0, 0, 0, 7, // from
			0, 0, 0, 0, 0, 0, 0, 9, // to
			1,          // ext flag
			0, 0, 0, 1, // upsert count
			0, 0, 0, 0, 0, 0, 0, 5, // upsert element
			0, 0, 0, 1, // ext length
			0xCD,
			0, 0, 0, 1, // delete count
			0, 0, 0, 0, 0, 0, 0, 6, // deleted element
		}},
		{"sub update bare", SubUpdate{
			From: 1, To: 2,
			Upserts: []*big.Int{e(5)},
			Deleted: nil,
		}, []byte{
			12,                     // kind
			0, 0, 0, 0, 0, 0, 0, 1, // from
			0, 0, 0, 0, 0, 0, 0, 2, // to
			0,          // ext flag
			0, 0, 0, 1, // upsert count
			0, 0, 0, 0, 0, 0, 0, 5, // upsert element
			0, 0, 0, 0, // delete count
		}},
		{"sub ack", SubAck{Version: 9}, []byte{
			13,                     // kind
			0, 0, 0, 0, 0, 0, 0, 9, // version
		}},
		{"sub end", SubEnd{Code: SubEndClient}, []byte{
			14, // kind
			1,  // code: client done
		}},
	}
	for _, tc := range cases {
		data, err := c.Encode(tc.msg)
		if err != nil {
			t.Errorf("%s: Encode: %v", tc.name, err)
			continue
		}
		if !bytes.Equal(data, tc.want) {
			t.Errorf("%s: encoding diverges from DESIGN.md Section 10\n got %x\nwant %x", tc.name, data, tc.want)
		}
		if _, err := c.Decode(data); err != nil {
			t.Errorf("%s: Decode: %v", tc.name, err)
		}
	}
}
