package wire

import (
	"errors"
	"math/big"
	"testing"

	"minshare/internal/group"
)

func TestSubscribeRoundTrip(t *testing.T) {
	c := NewCodec(group.MustBuiltin(group.Bits64))
	got := roundTrip(t, c, Subscribe{FromVersion: 42}).(Subscribe)
	if got.FromVersion != 42 {
		t.Errorf("round-trip FromVersion = %d, want 42", got.FromVersion)
	}
}

func TestSubUpdateRoundTrip(t *testing.T) {
	c := NewCodec(group.MustBuiltin(group.Bits64))
	e := func(v int64) *big.Int { return big.NewInt(v) }

	for _, tc := range []struct {
		name string
		msg  SubUpdate
	}{
		{"bare", SubUpdate{From: 3, To: 5, Upserts: []*big.Int{e(1), e(2)}, Deleted: []*big.Int{e(9)}}},
		{"ext", SubUpdate{From: 3, To: 5, HasExt: true,
			Upserts: []*big.Int{e(1), e(2)}, UpsertExt: [][]byte{[]byte("a"), {}},
			Deleted: []*big.Int{e(9)}}},
		{"empty", SubUpdate{From: 1, To: 2}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			got := roundTrip(t, c, tc.msg).(SubUpdate)
			if got.From != tc.msg.From || got.To != tc.msg.To || got.HasExt != tc.msg.HasExt {
				t.Errorf("round-trip envelope = %+v, want %+v", got, tc.msg)
			}
			if len(got.Upserts) != len(tc.msg.Upserts) || len(got.Deleted) != len(tc.msg.Deleted) {
				t.Fatalf("round-trip shape %d/%d, want %d/%d",
					len(got.Upserts), len(got.Deleted), len(tc.msg.Upserts), len(tc.msg.Deleted))
			}
			for i := range tc.msg.Upserts {
				if got.Upserts[i].Cmp(tc.msg.Upserts[i]) != 0 {
					t.Errorf("upsert %d = %v, want %v", i, got.Upserts[i], tc.msg.Upserts[i])
				}
				if tc.msg.HasExt && string(got.UpsertExt[i]) != string(tc.msg.UpsertExt[i]) {
					t.Errorf("upsert ext %d = %q, want %q", i, got.UpsertExt[i], tc.msg.UpsertExt[i])
				}
			}
			for i := range tc.msg.Deleted {
				if got.Deleted[i].Cmp(tc.msg.Deleted[i]) != 0 {
					t.Errorf("deleted %d = %v, want %v", i, got.Deleted[i], tc.msg.Deleted[i])
				}
			}
		})
	}
}

func TestSubUpdateValidation(t *testing.T) {
	c := NewCodec(group.MustBuiltin(group.Bits64))
	e := func(v int64) *big.Int { return big.NewInt(v) }

	// Ext vector out of step with the flag.
	if _, err := c.Encode(SubUpdate{HasExt: true, Upserts: []*big.Int{e(1)}}); err == nil {
		t.Error("ext flag without exts encoded, want error")
	}
	if _, err := c.Encode(SubUpdate{Upserts: []*big.Int{e(1)}, UpsertExt: [][]byte{{1}}}); err == nil {
		t.Error("exts without ext flag encoded, want error")
	}

	// Unknown ext flag byte on the wire.
	data, err := c.Encode(SubUpdate{From: 1, To: 2})
	if err != nil {
		t.Fatal(err)
	}
	data[17] = 7 // flag offset: kind(1) + from(8) + to(8)
	if _, err := c.Decode(data); err == nil {
		t.Error("flag byte 7 decoded, want error")
	}

	// Truncated entries.
	data, err = c.Encode(SubUpdate{From: 1, To: 2, Upserts: []*big.Int{e(1)}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Decode(data[:len(data)-3]); !errors.Is(err, ErrTruncated) {
		t.Errorf("truncated decode err = %v, want ErrTruncated", err)
	}
}

func TestSubEndValidation(t *testing.T) {
	c := NewCodec(group.MustBuiltin(group.Bits64))
	if _, err := c.Encode(SubEnd{Code: 9}); err == nil {
		t.Error("invalid close code encoded, want error")
	}
	if _, err := c.Decode([]byte{byte(KindSubEnd), 9}); err == nil {
		t.Error("invalid close code decoded, want error")
	}
	got := roundTrip(t, c, SubEnd{Code: SubEndServer}).(SubEnd)
	if got.Code != SubEndServer {
		t.Errorf("round-trip code = %d, want server", got.Code)
	}
}

// The encoded-size constants the cost model charges must match the
// codec byte for byte.
func TestSubEncodedSizes(t *testing.T) {
	c := NewCodec(group.MustBuiltin(group.Bits64))
	elemLen := c.ElemLen()

	check := func(name string, m Message, want int) {
		t.Helper()
		data, err := c.Encode(m)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(data) != want {
			t.Errorf("%s encodes to %d bytes, want %d", name, len(data), want)
		}
	}
	check("subscribe", Subscribe{FromVersion: 1}, EncodedSubscribeLen)
	check("sub ack", SubAck{Version: 1}, EncodedSubAckLen)
	check("sub end", SubEnd{Code: SubEndClient}, EncodedSubEndLen)
	check("empty sub update", SubUpdate{From: 1, To: 2}, EncodedSubUpdateBaseLen)
	check("bare sub update", SubUpdate{From: 1, To: 2,
		Upserts: []*big.Int{big.NewInt(1)}, Deleted: []*big.Int{big.NewInt(2)}},
		EncodedSubUpdateBaseLen+2*elemLen)
	check("ext sub update", SubUpdate{From: 1, To: 2, HasExt: true,
		Upserts: []*big.Int{big.NewInt(1)}, UpsertExt: [][]byte{[]byte("abc")},
		Deleted: []*big.Int{big.NewInt(2)}},
		EncodedSubUpdateBaseLen+2*elemLen+int(ExtLenOverhead)+3)
}
