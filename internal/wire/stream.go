package wire

import (
	"fmt"
	"math/big"
)

// Stream message family (PR 2).
//
// A bulk vector can cross the wire either as one legacy frame
// (Elements / Pairs / ExtPairs) or as a *stream*: a StreamBegin frame
// announcing the inner vector kind and total entry count, followed by
// ⌈n/chunkSize⌉ chunk frames carrying contiguous runs of entries, and
// a StreamEnd frame echoing the chunk count.  Streams let a sender put
// the first elements on the wire while later ones are still being
// exponentiated, and let the receiver validate and re-encrypt each
// chunk while the next is in flight — the pipeline the core package
// builds on top of this vocabulary.
//
// The chunk encodings reuse the vector layouts byte-for-byte: a
// streamed vector carries exactly the same element codewords as its
// one-shot form, plus the fixed Begin/End envelope and one count
// prefix per chunk.  The cost model (internal/costmodel) charges the
// envelope exactly.

// Stream message kinds, continuing the Kind enumeration of wire.go
// (KindError = 6) without disturbing the legacy values.
const (
	// KindStreamBegin opens a streamed vector.
	KindStreamBegin Kind = iota + 7
	// KindStreamChunk carries a run of elements of a streamed Elements
	// or Pairs vector.
	KindStreamChunk
	// KindStreamExtChunk carries a run of ⟨element, ciphertext⟩ entries
	// of a streamed ExtPairs vector.
	KindStreamExtChunk
	// KindStreamEnd closes a streamed vector.
	KindStreamEnd
)

// Encoded sizes of the stream envelope, used by the cost model to
// account for streamed traffic exactly.
const (
	// EncodedStreamBeginLen is the full encoded size of a StreamBegin:
	// kind(1) + inner kind(1) + entry count(4).
	EncodedStreamBeginLen = 1 + 1 + 4
	// EncodedStreamEndLen is the full encoded size of a StreamEnd:
	// kind(1) + chunk count(4).
	EncodedStreamEndLen = 1 + 4
)

// StreamBegin opens a streamed vector: the chunks that follow carry,
// between them, exactly Count entries of the Inner vector kind
// (KindElements, KindPairs, or KindExtPairs; a pair counts as one
// entry).
type StreamBegin struct {
	Inner Kind
	Count uint32
}

// Kind implements Message.
func (StreamBegin) Kind() Kind { return KindStreamBegin }

// StreamChunk carries a contiguous run of group elements of a streamed
// Elements or Pairs vector.  For an inner kind of KindPairs the
// elements interleave the two components: a0 b0 a1 b1 ….
type StreamChunk struct {
	Elems []*big.Int
}

// Kind implements Message.
func (StreamChunk) Kind() Kind { return KindStreamChunk }

// StreamExtChunk carries a contiguous run of ⟨element, ciphertext⟩
// entries of a streamed ExtPairs vector.
type StreamExtChunk struct {
	Elem []*big.Int
	Ext  [][]byte
}

// Kind implements Message.
func (StreamExtChunk) Kind() Kind { return KindStreamExtChunk }

// StreamEnd closes a streamed vector, echoing the number of chunk
// frames for a final consistency check.
type StreamEnd struct {
	Chunks uint32
}

// Kind implements Message.
func (StreamEnd) Kind() Kind { return KindStreamEnd }

// streamInnerOK reports whether k may appear as a StreamBegin inner
// kind.
func streamInnerOK(k Kind) bool {
	return k == KindElements || k == KindPairs || k == KindExtPairs
}

func (c *Codec) encodeStreamBegin(buf []byte, v StreamBegin) ([]byte, error) {
	if !streamInnerOK(v.Inner) {
		return nil, fmt.Errorf("wire: %v cannot be streamed", v.Inner)
	}
	buf = append(buf, byte(v.Inner))
	return putCount(buf, int(v.Count)), nil
}

func (c *Codec) decodeStreamBegin(buf []byte) (Message, error) {
	if len(buf) < 1 {
		return nil, ErrTruncated
	}
	inner := Kind(buf[0])
	if !streamInnerOK(inner) {
		return nil, fmt.Errorf("%w: stream of kind %d", ErrBadKind, buf[0])
	}
	n, buf, err := getCount(buf[1:])
	if err != nil {
		return nil, err
	}
	if err := trailing(buf); err != nil {
		return nil, err
	}
	return StreamBegin{Inner: inner, Count: uint32(n)}, nil
}

func (c *Codec) encodeStreamChunk(buf []byte, v StreamChunk) []byte {
	buf = putCount(buf, len(v.Elems))
	for _, e := range v.Elems {
		buf = c.putElem(buf, e)
	}
	return buf
}

func (c *Codec) decodeStreamChunk(buf []byte) (Message, error) {
	n, buf, err := getCount(buf)
	if err != nil {
		return nil, err
	}
	v := StreamChunk{Elems: make([]*big.Int, n)}
	for i := 0; i < n; i++ {
		if v.Elems[i], buf, err = c.getElem(buf); err != nil {
			return nil, err
		}
	}
	if err := trailing(buf); err != nil {
		return nil, err
	}
	return v, nil
}

func (c *Codec) encodeStreamExtChunk(buf []byte, v StreamExtChunk) ([]byte, error) {
	if len(v.Elem) != len(v.Ext) {
		return nil, fmt.Errorf("wire: ext chunk length mismatch %d != %d", len(v.Elem), len(v.Ext))
	}
	buf = putCount(buf, len(v.Elem))
	for i := range v.Elem {
		buf = c.putElem(buf, v.Elem[i])
		buf = putCount(buf, len(v.Ext[i]))
		buf = append(buf, v.Ext[i]...)
	}
	return buf, nil
}

func (c *Codec) decodeStreamExtChunk(buf []byte) (Message, error) {
	n, buf, err := getCount(buf)
	if err != nil {
		return nil, err
	}
	v := StreamExtChunk{Elem: make([]*big.Int, n), Ext: make([][]byte, n)}
	for i := 0; i < n; i++ {
		if v.Elem[i], buf, err = c.getElem(buf); err != nil {
			return nil, err
		}
		var l int
		if l, buf, err = getCount(buf); err != nil {
			return nil, err
		}
		if len(buf) < l {
			return nil, ErrTruncated
		}
		v.Ext[i] = append([]byte(nil), buf[:l]...)
		buf = buf[l:]
	}
	if err := trailing(buf); err != nil {
		return nil, err
	}
	return v, nil
}

func (c *Codec) encodeStreamEnd(buf []byte, v StreamEnd) []byte {
	return putCount(buf, int(v.Chunks))
}

func (c *Codec) decodeStreamEnd(buf []byte) (Message, error) {
	n, buf, err := getCount(buf)
	if err != nil {
		return nil, err
	}
	if err := trailing(buf); err != nil {
		return nil, err
	}
	return StreamEnd{Chunks: uint32(n)}, nil
}
