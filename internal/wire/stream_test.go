package wire

import (
	"errors"
	"testing"
)

func TestStreamBeginRoundTrip(t *testing.T) {
	c, _ := testCodec()
	for _, inner := range []Kind{KindElements, KindPairs, KindExtPairs} {
		b := StreamBegin{Inner: inner, Count: 12345}
		got := roundTrip(t, c, b).(StreamBegin)
		if got != b {
			t.Errorf("stream begin round trip: got %+v, want %+v", got, b)
		}
	}
}

func TestStreamBeginRejectsBadInner(t *testing.T) {
	c, _ := testCodec()
	for _, inner := range []Kind{KindInvalid, KindHeader, KindError, KindStreamChunk, Kind(99)} {
		if _, err := c.Encode(StreamBegin{Inner: inner, Count: 1}); err == nil {
			t.Errorf("encoding stream of %v accepted", inner)
		}
	}
	// A decoded begin with a non-vector inner kind must be rejected too.
	data := []byte{byte(KindStreamBegin), byte(KindHeader), 0, 0, 0, 1}
	if _, err := c.Decode(data); !errors.Is(err, ErrBadKind) {
		t.Errorf("decode bad inner: err = %v, want ErrBadKind", err)
	}
}

func TestStreamBeginEncodedLen(t *testing.T) {
	c, _ := testCodec()
	data, err := c.Encode(StreamBegin{Inner: KindElements, Count: 7})
	if err != nil {
		t.Fatal(err)
	}
	if len(data) != EncodedStreamBeginLen {
		t.Errorf("encoded %d bytes, want EncodedStreamBeginLen = %d", len(data), EncodedStreamBeginLen)
	}
	end, err := c.Encode(StreamEnd{Chunks: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(end) != EncodedStreamEndLen {
		t.Errorf("encoded end %d bytes, want EncodedStreamEndLen = %d", len(end), EncodedStreamEndLen)
	}
}

func TestStreamChunkRoundTrip(t *testing.T) {
	c, g := testCodec()
	for _, n := range []int{0, 1, 5, 64} {
		want := randElems(t, g, n, int64(100+n))
		got := roundTrip(t, c, StreamChunk{Elems: want}).(StreamChunk)
		if len(got.Elems) != n {
			t.Fatalf("n=%d: got %d elements", n, len(got.Elems))
		}
		for i := range want {
			if got.Elems[i].Cmp(want[i]) != 0 {
				t.Fatalf("n=%d: element %d mismatch", n, i)
			}
		}
	}
}

func TestStreamChunkMatchesElementsLayout(t *testing.T) {
	// A chunk carries exactly the same codeword bytes as the one-shot
	// Elements message — only the kind byte differs.  The cost model's
	// "payload bits unchanged" invariant rests on this.
	c, g := testCodec()
	elems := randElems(t, g, 4, 7)
	asChunk, err := c.Encode(StreamChunk{Elems: elems})
	if err != nil {
		t.Fatal(err)
	}
	asVector, err := c.Encode(Elements{Elems: elems})
	if err != nil {
		t.Fatal(err)
	}
	if len(asChunk) != len(asVector) {
		t.Fatalf("chunk is %d bytes, one-shot vector %d", len(asChunk), len(asVector))
	}
	if string(asChunk[1:]) != string(asVector[1:]) {
		t.Error("chunk body differs from one-shot vector body")
	}
}

func TestStreamExtChunkRoundTrip(t *testing.T) {
	c, g := testCodec()
	elems := randElems(t, g, 3, 70)
	exts := [][]byte{[]byte("alpha"), {}, []byte("a longer ext(v) record payload")}
	got := roundTrip(t, c, StreamExtChunk{Elem: elems, Ext: exts}).(StreamExtChunk)
	for i := range elems {
		if got.Elem[i].Cmp(elems[i]) != 0 {
			t.Fatalf("ext chunk elem %d mismatch", i)
		}
		if string(got.Ext[i]) != string(exts[i]) {
			t.Fatalf("ext chunk ext %d mismatch", i)
		}
	}
	if _, err := c.Encode(StreamExtChunk{Elem: elems, Ext: exts[:2]}); err == nil {
		t.Error("mismatched StreamExtChunk accepted")
	}
}

func TestStreamEndRoundTrip(t *testing.T) {
	c, _ := testCodec()
	got := roundTrip(t, c, StreamEnd{Chunks: 42}).(StreamEnd)
	if got.Chunks != 42 {
		t.Errorf("chunks = %d, want 42", got.Chunks)
	}
}

func TestStreamDecodeRejectsGarbage(t *testing.T) {
	c, g := testCodec()
	validChunk, err := c.Encode(StreamChunk{Elems: randElems(t, g, 2, 80)})
	if err != nil {
		t.Fatal(err)
	}
	validExt, err := c.Encode(StreamExtChunk{Elem: randElems(t, g, 1, 81), Ext: [][]byte{[]byte("hello")}})
	if err != nil {
		t.Fatal(err)
	}

	cases := []struct {
		name string
		data []byte
		want error
	}{
		{"begin empty body", []byte{byte(KindStreamBegin)}, ErrTruncated},
		{"begin truncated count", []byte{byte(KindStreamBegin), byte(KindElements), 0, 0}, ErrTruncated},
		{"begin trailing", []byte{byte(KindStreamBegin), byte(KindElements), 0, 0, 0, 1, 0xAA}, ErrTrailing},
		{"begin huge count", []byte{byte(KindStreamBegin), byte(KindElements), 0xFF, 0xFF, 0xFF, 0xFF}, ErrTooLarge},
		{"chunk truncated body", validChunk[:len(validChunk)-3], ErrTruncated},
		{"chunk trailing", append(append([]byte(nil), validChunk...), 0x00), ErrTrailing},
		{"chunk huge count", []byte{byte(KindStreamChunk), 0xFF, 0xFF, 0xFF, 0xFF}, ErrTooLarge},
		{"ext chunk truncated ext", validExt[:len(validExt)-2], ErrTruncated},
		{"end truncated", []byte{byte(KindStreamEnd), 0, 0}, ErrTruncated},
		{"end trailing", []byte{byte(KindStreamEnd), 0, 0, 0, 1, 0xBB}, ErrTrailing},
	}
	for _, tc := range cases {
		if _, err := c.Decode(tc.data); !errors.Is(err, tc.want) {
			t.Errorf("%s: err = %v, want %v", tc.name, err, tc.want)
		}
	}
}

func TestStreamKindStrings(t *testing.T) {
	for _, k := range []Kind{KindStreamBegin, KindStreamChunk, KindStreamExtChunk, KindStreamEnd} {
		if s := k.String(); s == "" || s[0] == 'k' {
			t.Errorf("Kind(%d).String() = %q, want a named stream kind", k, s)
		}
	}
}

func TestStreamKindsDoNotCollide(t *testing.T) {
	// The stream family continues the legacy enumeration; a collision
	// would corrupt every mixed-version session.
	legacy := []Kind{KindInvalid, KindHeader, KindElements, KindPairs, KindTriples, KindExtPairs, KindError}
	for _, s := range []Kind{KindStreamBegin, KindStreamChunk, KindStreamExtChunk, KindStreamEnd} {
		for _, l := range legacy {
			if s == l {
				t.Fatalf("stream kind %d collides with legacy kind %v", uint8(s), l)
			}
		}
	}
	if KindStreamBegin != 7 {
		t.Errorf("KindStreamBegin = %d, want 7 (wire compatibility pin)", KindStreamBegin)
	}
}

func TestStreamedVectorByteAccounting(t *testing.T) {
	// A streamed n-element vector costs Begin + ⌈n/c⌉ chunk frames +
	// End, with exactly the same n·k codeword bytes as the one-shot
	// form plus VectorOverhead per chunk frame.
	c, g := testCodec()
	elems := randElems(t, g, 7, 90)
	const chunk = 3
	total := 0
	frames := 0
	for off := 0; off < len(elems); off += chunk {
		end := off + chunk
		if end > len(elems) {
			end = len(elems)
		}
		data, err := c.Encode(StreamChunk{Elems: elems[off:end]})
		if err != nil {
			t.Fatal(err)
		}
		total += len(data)
		frames++
	}
	if frames != 3 { // ⌈7/3⌉
		t.Fatalf("frames = %d, want 3", frames)
	}
	wantPayload := frames*VectorOverhead + len(elems)*c.ElemLen()
	if total != wantPayload {
		t.Errorf("chunk payload bytes = %d, want %d", total, wantPayload)
	}
}
