package wire

import (
	"bytes"
	"errors"
	"testing"

	"minshare/internal/group"
)

// TestHeaderShardRoundTrip covers the shard-announcing header layout for
// both the default safe-prime backend (whose backend byte appears ONLY
// because the shard byte needs a fixed position) and a non-default one.
func TestHeaderShardRoundTrip(t *testing.T) {
	c, g := testCodec()
	for _, tc := range []struct {
		name    string
		backend group.Code
	}{
		{"default backend", 0},
		{"ec25519 backend", group.CodeEC25519},
	} {
		h := Header{
			Protocol:    ProtoIntersection,
			GroupBits:   uint32(g.Bits()),
			GroupDigest: GroupDigest(g),
			SetSize:     1 << 20,
			Backend:     tc.backend,
			Shards:      8,
		}
		data, err := c.Encode(h)
		if err != nil {
			t.Fatalf("%s: Encode: %v", tc.name, err)
		}
		if len(data) != ShardEncodedHeaderLen {
			t.Errorf("%s: encoded %d bytes, want ShardEncodedHeaderLen = %d", tc.name, len(data), ShardEncodedHeaderLen)
		}
		got, err := c.Decode(data)
		if err != nil {
			t.Fatalf("%s: Decode: %v", tc.name, err)
		}
		if got.(Header) != h {
			t.Errorf("%s: round trip: got %+v, want %+v", tc.name, got, h)
		}
	}
}

// TestHeaderShardByteIdentity pins the k=1 guarantee of the sharding
// negotiation: Shards = 0 and Shards = 1 both encode to exactly the
// pre-shard byte layout, for the default backend (78 bytes, no trailing
// bytes at all) and a non-default one (79 bytes, backend byte only).
// An unsharded session is therefore byte-identical to every release
// before the shard field existed.
func TestHeaderShardByteIdentity(t *testing.T) {
	c, g := testCodec()
	base := Header{
		Protocol:    ProtoEquijoin,
		GroupBits:   uint32(g.Bits()),
		GroupDigest: GroupDigest(g),
		SetSize:     42,
		SetVersion:  7,
	}
	for _, backend := range []group.Code{0, group.CodeEC25519} {
		preShard := base
		preShard.Backend = backend
		want, err := c.Encode(preShard)
		if err != nil {
			t.Fatal(err)
		}
		if int64(len(want)) != HeaderLen(backend) {
			t.Fatalf("backend %v: pre-shard header is %d bytes, want %d", backend, len(want), HeaderLen(backend))
		}
		for _, k := range []uint8{0, 1} {
			h := preShard
			h.Shards = k
			data, err := c.Encode(h)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(data, want) {
				t.Errorf("backend %v, Shards=%d: encoding diverges from the pre-shard layout\n got %x\nwant %x", backend, k, data, want)
			}
			if int64(len(data)) != ShardedHeaderLen(backend, int(k)) {
				t.Errorf("backend %v, Shards=%d: %d bytes, ShardedHeaderLen says %d", backend, k, len(data), ShardedHeaderLen(backend, int(k)))
			}
		}
	}
	if got := ShardedHeaderLen(0, 8); got != ShardEncodedHeaderLen {
		t.Errorf("ShardedHeaderLen(0, 8) = %d, want %d", got, ShardEncodedHeaderLen)
	}
}

// TestHeaderShardGolden pins the exact trailing-byte layout of a sharded
// header (DESIGN.md Section 10.2): …span id, backend byte (present even
// when zero), shard count.
func TestHeaderShardGolden(t *testing.T) {
	g := group.MustBuiltin(group.Bits64)
	c := NewCodec(g)
	digest := GroupDigest(g)
	h := Header{
		Protocol:    ProtoIntersection,
		GroupBits:   64,
		GroupDigest: digest,
		SetSize:     0x0102030405060708,
		Shards:      8,
	}
	want := []byte{
		1,           // kind
		1,           // protocol: intersection
		0, 0, 0, 64, // group bits
	}
	want = append(want, digest[:]...)           // group digest
	want = append(want, 1, 2, 3, 4, 5, 6, 7, 8) // set size
	want = append(want, make([]byte, 8)...)     // set version (unversioned)
	want = append(want, make([]byte, 16)...)    // trace id (untraced)
	want = append(want, make([]byte, 8)...)     // span id
	want = append(want, 0)                      // backend byte: default, forced by the shard byte
	want = append(want, 8)                      // shard count
	data, err := c.Encode(h)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(data, want) {
		t.Errorf("sharded header diverges from DESIGN.md Section 10.2\n got %x\nwant %x", data, want)
	}
}

// TestHeaderShardDecodeRejectsAliases: a sharded-layout header whose
// shard byte is 0 or 1 would alias the unsharded encodings, so the
// decoder rejects it outright.
func TestHeaderShardDecodeRejectsAliases(t *testing.T) {
	c, g := testCodec()
	h := Header{
		Protocol:    ProtoIntersection,
		GroupBits:   uint32(g.Bits()),
		GroupDigest: GroupDigest(g),
		SetSize:     9,
		Shards:      2,
	}
	data, err := c.Encode(h)
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range []byte{0, 1} {
		bad := append([]byte(nil), data...)
		bad[len(bad)-1] = b
		if _, err := c.Decode(bad); !errors.Is(err, ErrBadShards) {
			t.Errorf("shard byte %d: err = %v, want ErrBadShards", b, err)
		}
	}
}
