package wire

import (
	"math/big"
	"testing"

	"minshare/internal/group"
)

// FuzzDecode hammers the codec with arbitrary bytes: it must never
// panic, and everything it accepts must re-encode to an equivalent
// message.  Run with `go test -fuzz FuzzDecode ./internal/wire` for a
// real campaign; seeds alone run in normal `go test`.
func FuzzDecode(f *testing.F) {
	g := group.TestGroup()
	codec := NewCodec(g)

	// Seeds: one valid message of each kind plus corrupted variants.
	x, _ := g.RandomElement(nil)
	y, _ := g.RandomElement(nil)
	for _, m := range []Message{
		Header{Protocol: ProtoIntersection, GroupBits: 256, GroupDigest: GroupDigest(g), SetSize: 7},
		Elements{Elems: []*big.Int{x, y}},
		Pairs{A: []*big.Int{x}, B: []*big.Int{y}},
		Triples{A: []*big.Int{x}, B: []*big.Int{y}, C: []*big.Int{x}},
		ExtPairs{Elem: []*big.Int{x}, Ext: [][]byte{[]byte("payload")}},
		ErrorMsg{Text: "boom"},
		StreamBegin{Inner: KindElements, Count: 7},
		StreamBegin{Inner: KindPairs, Count: 4},
		StreamChunk{Elems: []*big.Int{x, y}},
		StreamExtChunk{Elem: []*big.Int{x}, Ext: [][]byte{[]byte("payload")}},
		StreamEnd{Chunks: 3},
	} {
		data, err := codec.Encode(m)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(data)
		if len(data) > 2 {
			corrupt := append([]byte(nil), data...)
			corrupt[len(corrupt)/2] ^= 0xFF
			f.Add(corrupt)
			f.Add(corrupt[:len(corrupt)-1])
		}
	}
	f.Add([]byte{})
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF, 0xFF})

	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := codec.Decode(data)
		if err != nil {
			return // rejected: fine
		}
		// Accepted messages must re-encode without error.
		out, err := codec.Encode(m)
		if err != nil {
			t.Fatalf("decoded message failed to re-encode: %v", err)
		}
		back, err := codec.Decode(out)
		if err != nil {
			t.Fatalf("re-encoded message failed to decode: %v", err)
		}
		if back.Kind() != m.Kind() {
			t.Fatalf("kind drifted: %v -> %v", m.Kind(), back.Kind())
		}
	})
}
